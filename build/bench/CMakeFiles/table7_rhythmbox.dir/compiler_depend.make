# Empty compiler generated dependencies file for table7_rhythmbox.
# This may be replaced when dependencies are built.
