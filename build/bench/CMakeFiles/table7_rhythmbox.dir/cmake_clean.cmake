file(REMOVE_RECURSE
  "CMakeFiles/table7_rhythmbox.dir/table7_rhythmbox.cpp.o"
  "CMakeFiles/table7_rhythmbox.dir/table7_rhythmbox.cpp.o.d"
  "table7_rhythmbox"
  "table7_rhythmbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_rhythmbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
