file(REMOVE_RECURSE
  "CMakeFiles/table9_logreg.dir/table9_logreg.cpp.o"
  "CMakeFiles/table9_logreg.dir/table9_logreg.cpp.o.d"
  "table9_logreg"
  "table9_logreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
