# Empty compiler generated dependencies file for table9_logreg.
# This may be replaced when dependencies are built.
