# Empty compiler generated dependencies file for table5_bc.
# This may be replaced when dependencies are built.
