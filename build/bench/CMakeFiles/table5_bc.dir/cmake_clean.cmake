file(REMOVE_RECURSE
  "CMakeFiles/table5_bc.dir/table5_bc.cpp.o"
  "CMakeFiles/table5_bc.dir/table5_bc.cpp.o.d"
  "table5_bc"
  "table5_bc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_bc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
