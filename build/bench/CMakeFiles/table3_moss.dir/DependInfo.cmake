
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_moss.cpp" "bench/CMakeFiles/table3_moss.dir/table3_moss.cpp.o" "gcc" "bench/CMakeFiles/table3_moss.dir/table3_moss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/sbi_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sbi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sbi_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/logreg/CMakeFiles/sbi_logreg.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/sbi_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/sbi_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sbi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/sbi_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/subjects/CMakeFiles/sbi_subjects.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sbi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
