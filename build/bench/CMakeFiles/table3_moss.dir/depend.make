# Empty dependencies file for table3_moss.
# This may be replaced when dependencies are built.
