file(REMOVE_RECURSE
  "CMakeFiles/table3_moss.dir/table3_moss.cpp.o"
  "CMakeFiles/table3_moss.dir/table3_moss.cpp.o.d"
  "table3_moss"
  "table3_moss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_moss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
