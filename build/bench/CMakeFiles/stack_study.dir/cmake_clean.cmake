file(REMOVE_RECURSE
  "CMakeFiles/stack_study.dir/stack_study.cpp.o"
  "CMakeFiles/stack_study.dir/stack_study.cpp.o.d"
  "stack_study"
  "stack_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
