# Empty dependencies file for stack_study.
# This may be replaced when dependencies are built.
