file(REMOVE_RECURSE
  "CMakeFiles/table8_minruns.dir/table8_minruns.cpp.o"
  "CMakeFiles/table8_minruns.dir/table8_minruns.cpp.o.d"
  "table8_minruns"
  "table8_minruns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_minruns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
