# Empty dependencies file for table8_minruns.
# This may be replaced when dependencies are built.
