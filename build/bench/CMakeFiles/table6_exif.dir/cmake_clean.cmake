file(REMOVE_RECURSE
  "CMakeFiles/table6_exif.dir/table6_exif.cpp.o"
  "CMakeFiles/table6_exif.dir/table6_exif.cpp.o.d"
  "table6_exif"
  "table6_exif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_exif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
