# Empty compiler generated dependencies file for table6_exif.
# This may be replaced when dependencies are built.
