# Empty dependencies file for table4_ccrypt.
# This may be replaced when dependencies are built.
