file(REMOVE_RECURSE
  "CMakeFiles/table4_ccrypt.dir/table4_ccrypt.cpp.o"
  "CMakeFiles/table4_ccrypt.dir/table4_ccrypt.cpp.o.d"
  "table4_ccrypt"
  "table4_ccrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ccrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
