# Empty dependencies file for table1_ranking.
# This may be replaced when dependencies are built.
