file(REMOVE_RECURSE
  "CMakeFiles/table1_ranking.dir/table1_ranking.cpp.o"
  "CMakeFiles/table1_ranking.dir/table1_ranking.cpp.o.d"
  "table1_ranking"
  "table1_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
