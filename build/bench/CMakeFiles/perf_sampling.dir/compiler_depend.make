# Empty compiler generated dependencies file for perf_sampling.
# This may be replaced when dependencies are built.
