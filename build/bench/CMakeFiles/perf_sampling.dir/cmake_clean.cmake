file(REMOVE_RECURSE
  "CMakeFiles/perf_sampling.dir/perf_sampling.cpp.o"
  "CMakeFiles/perf_sampling.dir/perf_sampling.cpp.o.d"
  "perf_sampling"
  "perf_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
