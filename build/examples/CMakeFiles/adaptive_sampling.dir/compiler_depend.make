# Empty compiler generated dependencies file for adaptive_sampling.
# This may be replaced when dependencies are built.
