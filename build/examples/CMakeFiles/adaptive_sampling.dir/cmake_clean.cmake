file(REMOVE_RECURSE
  "CMakeFiles/adaptive_sampling.dir/adaptive_sampling.cpp.o"
  "CMakeFiles/adaptive_sampling.dir/adaptive_sampling.cpp.o.d"
  "adaptive_sampling"
  "adaptive_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
