# Empty dependencies file for multi_bug_triage.
# This may be replaced when dependencies are built.
