file(REMOVE_RECURSE
  "CMakeFiles/multi_bug_triage.dir/multi_bug_triage.cpp.o"
  "CMakeFiles/multi_bug_triage.dir/multi_bug_triage.cpp.o.d"
  "multi_bug_triage"
  "multi_bug_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_bug_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
