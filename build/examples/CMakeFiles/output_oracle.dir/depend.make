# Empty dependencies file for output_oracle.
# This may be replaced when dependencies are built.
