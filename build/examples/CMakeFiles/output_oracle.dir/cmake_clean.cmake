file(REMOVE_RECURSE
  "CMakeFiles/output_oracle.dir/output_oracle.cpp.o"
  "CMakeFiles/output_oracle.dir/output_oracle.cpp.o.d"
  "output_oracle"
  "output_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/output_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
