# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/lang_tests[1]_include.cmake")
include("/root/repo/build/tests/runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/instrument_tests[1]_include.cmake")
include("/root/repo/build/tests/feedback_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/logreg_tests[1]_include.cmake")
include("/root/repo/build/tests/harness_tests[1]_include.cmake")
include("/root/repo/build/tests/vm_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
