file(REMOVE_RECURSE
  "CMakeFiles/vm_tests.dir/vm/DifferentialTest.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/DifferentialTest.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/FuzzDifferentialTest.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/FuzzDifferentialTest.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/VMTest.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/VMTest.cpp.o.d"
  "vm_tests"
  "vm_tests.pdb"
  "vm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
