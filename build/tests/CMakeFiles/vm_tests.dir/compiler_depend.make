# Empty compiler generated dependencies file for vm_tests.
# This may be replaced when dependencies are built.
