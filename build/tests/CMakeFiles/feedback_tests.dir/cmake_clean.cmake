file(REMOVE_RECURSE
  "CMakeFiles/feedback_tests.dir/feedback/ReportTest.cpp.o"
  "CMakeFiles/feedback_tests.dir/feedback/ReportTest.cpp.o.d"
  "feedback_tests"
  "feedback_tests.pdb"
  "feedback_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
