# Empty dependencies file for feedback_tests.
# This may be replaced when dependencies are built.
