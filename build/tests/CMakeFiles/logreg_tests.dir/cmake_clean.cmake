file(REMOVE_RECURSE
  "CMakeFiles/logreg_tests.dir/logreg/LogRegTest.cpp.o"
  "CMakeFiles/logreg_tests.dir/logreg/LogRegTest.cpp.o.d"
  "logreg_tests"
  "logreg_tests.pdb"
  "logreg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logreg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
