# Empty compiler generated dependencies file for logreg_tests.
# This may be replaced when dependencies are built.
