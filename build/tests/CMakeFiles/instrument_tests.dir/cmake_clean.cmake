file(REMOVE_RECURSE
  "CMakeFiles/instrument_tests.dir/instrument/CollectorTest.cpp.o"
  "CMakeFiles/instrument_tests.dir/instrument/CollectorTest.cpp.o.d"
  "CMakeFiles/instrument_tests.dir/instrument/SamplingPlanTest.cpp.o"
  "CMakeFiles/instrument_tests.dir/instrument/SamplingPlanTest.cpp.o.d"
  "CMakeFiles/instrument_tests.dir/instrument/SitesTest.cpp.o"
  "CMakeFiles/instrument_tests.dir/instrument/SitesTest.cpp.o.d"
  "instrument_tests"
  "instrument_tests.pdb"
  "instrument_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
