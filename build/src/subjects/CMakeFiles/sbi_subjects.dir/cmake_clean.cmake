file(REMOVE_RECURSE
  "CMakeFiles/sbi_subjects.dir/Bc.cpp.o"
  "CMakeFiles/sbi_subjects.dir/Bc.cpp.o.d"
  "CMakeFiles/sbi_subjects.dir/CCrypt.cpp.o"
  "CMakeFiles/sbi_subjects.dir/CCrypt.cpp.o.d"
  "CMakeFiles/sbi_subjects.dir/Exif.cpp.o"
  "CMakeFiles/sbi_subjects.dir/Exif.cpp.o.d"
  "CMakeFiles/sbi_subjects.dir/Moss.cpp.o"
  "CMakeFiles/sbi_subjects.dir/Moss.cpp.o.d"
  "CMakeFiles/sbi_subjects.dir/Rhythmbox.cpp.o"
  "CMakeFiles/sbi_subjects.dir/Rhythmbox.cpp.o.d"
  "CMakeFiles/sbi_subjects.dir/SubjectUtil.cpp.o"
  "CMakeFiles/sbi_subjects.dir/SubjectUtil.cpp.o.d"
  "libsbi_subjects.a"
  "libsbi_subjects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_subjects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
