# Empty dependencies file for sbi_subjects.
# This may be replaced when dependencies are built.
