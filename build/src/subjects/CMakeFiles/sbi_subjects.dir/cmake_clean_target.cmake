file(REMOVE_RECURSE
  "libsbi_subjects.a"
)
