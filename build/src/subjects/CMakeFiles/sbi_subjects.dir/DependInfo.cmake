
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/subjects/Bc.cpp" "src/subjects/CMakeFiles/sbi_subjects.dir/Bc.cpp.o" "gcc" "src/subjects/CMakeFiles/sbi_subjects.dir/Bc.cpp.o.d"
  "/root/repo/src/subjects/CCrypt.cpp" "src/subjects/CMakeFiles/sbi_subjects.dir/CCrypt.cpp.o" "gcc" "src/subjects/CMakeFiles/sbi_subjects.dir/CCrypt.cpp.o.d"
  "/root/repo/src/subjects/Exif.cpp" "src/subjects/CMakeFiles/sbi_subjects.dir/Exif.cpp.o" "gcc" "src/subjects/CMakeFiles/sbi_subjects.dir/Exif.cpp.o.d"
  "/root/repo/src/subjects/Moss.cpp" "src/subjects/CMakeFiles/sbi_subjects.dir/Moss.cpp.o" "gcc" "src/subjects/CMakeFiles/sbi_subjects.dir/Moss.cpp.o.d"
  "/root/repo/src/subjects/Rhythmbox.cpp" "src/subjects/CMakeFiles/sbi_subjects.dir/Rhythmbox.cpp.o" "gcc" "src/subjects/CMakeFiles/sbi_subjects.dir/Rhythmbox.cpp.o.d"
  "/root/repo/src/subjects/SubjectUtil.cpp" "src/subjects/CMakeFiles/sbi_subjects.dir/SubjectUtil.cpp.o" "gcc" "src/subjects/CMakeFiles/sbi_subjects.dir/SubjectUtil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sbi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
