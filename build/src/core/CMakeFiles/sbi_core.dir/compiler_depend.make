# Empty compiler generated dependencies file for sbi_core.
# This may be replaced when dependencies are built.
