
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Aggregator.cpp" "src/core/CMakeFiles/sbi_core.dir/Aggregator.cpp.o" "gcc" "src/core/CMakeFiles/sbi_core.dir/Aggregator.cpp.o.d"
  "/root/repo/src/core/Analysis.cpp" "src/core/CMakeFiles/sbi_core.dir/Analysis.cpp.o" "gcc" "src/core/CMakeFiles/sbi_core.dir/Analysis.cpp.o.d"
  "/root/repo/src/core/Scores.cpp" "src/core/CMakeFiles/sbi_core.dir/Scores.cpp.o" "gcc" "src/core/CMakeFiles/sbi_core.dir/Scores.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/feedback/CMakeFiles/sbi_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/sbi_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sbi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sbi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/sbi_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
