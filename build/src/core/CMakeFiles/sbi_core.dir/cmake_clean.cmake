file(REMOVE_RECURSE
  "CMakeFiles/sbi_core.dir/Aggregator.cpp.o"
  "CMakeFiles/sbi_core.dir/Aggregator.cpp.o.d"
  "CMakeFiles/sbi_core.dir/Analysis.cpp.o"
  "CMakeFiles/sbi_core.dir/Analysis.cpp.o.d"
  "CMakeFiles/sbi_core.dir/Scores.cpp.o"
  "CMakeFiles/sbi_core.dir/Scores.cpp.o.d"
  "libsbi_core.a"
  "libsbi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
