file(REMOVE_RECURSE
  "libsbi_core.a"
)
