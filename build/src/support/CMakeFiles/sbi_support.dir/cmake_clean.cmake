file(REMOVE_RECURSE
  "CMakeFiles/sbi_support.dir/Random.cpp.o"
  "CMakeFiles/sbi_support.dir/Random.cpp.o.d"
  "CMakeFiles/sbi_support.dir/Stats.cpp.o"
  "CMakeFiles/sbi_support.dir/Stats.cpp.o.d"
  "CMakeFiles/sbi_support.dir/StringUtils.cpp.o"
  "CMakeFiles/sbi_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/sbi_support.dir/TextTable.cpp.o"
  "CMakeFiles/sbi_support.dir/TextTable.cpp.o.d"
  "CMakeFiles/sbi_support.dir/Thermometer.cpp.o"
  "CMakeFiles/sbi_support.dir/Thermometer.cpp.o.d"
  "libsbi_support.a"
  "libsbi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
