# Empty dependencies file for sbi_support.
# This may be replaced when dependencies are built.
