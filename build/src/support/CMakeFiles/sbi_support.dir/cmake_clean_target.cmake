file(REMOVE_RECURSE
  "libsbi_support.a"
)
