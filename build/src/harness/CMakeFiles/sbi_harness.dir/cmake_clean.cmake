file(REMOVE_RECURSE
  "CMakeFiles/sbi_harness.dir/Campaign.cpp.o"
  "CMakeFiles/sbi_harness.dir/Campaign.cpp.o.d"
  "CMakeFiles/sbi_harness.dir/HtmlReport.cpp.o"
  "CMakeFiles/sbi_harness.dir/HtmlReport.cpp.o.d"
  "CMakeFiles/sbi_harness.dir/Tables.cpp.o"
  "CMakeFiles/sbi_harness.dir/Tables.cpp.o.d"
  "libsbi_harness.a"
  "libsbi_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
