file(REMOVE_RECURSE
  "libsbi_harness.a"
)
