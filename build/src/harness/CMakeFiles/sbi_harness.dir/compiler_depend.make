# Empty compiler generated dependencies file for sbi_harness.
# This may be replaced when dependencies are built.
