
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logreg/LogReg.cpp" "src/logreg/CMakeFiles/sbi_logreg.dir/LogReg.cpp.o" "gcc" "src/logreg/CMakeFiles/sbi_logreg.dir/LogReg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/feedback/CMakeFiles/sbi_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sbi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/sbi_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/sbi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/sbi_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
