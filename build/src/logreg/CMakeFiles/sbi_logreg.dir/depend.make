# Empty dependencies file for sbi_logreg.
# This may be replaced when dependencies are built.
