file(REMOVE_RECURSE
  "CMakeFiles/sbi_logreg.dir/LogReg.cpp.o"
  "CMakeFiles/sbi_logreg.dir/LogReg.cpp.o.d"
  "libsbi_logreg.a"
  "libsbi_logreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_logreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
