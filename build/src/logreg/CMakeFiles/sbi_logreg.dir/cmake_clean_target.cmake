file(REMOVE_RECURSE
  "libsbi_logreg.a"
)
