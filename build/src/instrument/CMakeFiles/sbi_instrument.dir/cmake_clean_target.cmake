file(REMOVE_RECURSE
  "libsbi_instrument.a"
)
