file(REMOVE_RECURSE
  "CMakeFiles/sbi_instrument.dir/Collector.cpp.o"
  "CMakeFiles/sbi_instrument.dir/Collector.cpp.o.d"
  "CMakeFiles/sbi_instrument.dir/Sites.cpp.o"
  "CMakeFiles/sbi_instrument.dir/Sites.cpp.o.d"
  "libsbi_instrument.a"
  "libsbi_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
