# Empty dependencies file for sbi_instrument.
# This may be replaced when dependencies are built.
