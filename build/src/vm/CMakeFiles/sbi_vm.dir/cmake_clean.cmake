file(REMOVE_RECURSE
  "CMakeFiles/sbi_vm.dir/Compiler.cpp.o"
  "CMakeFiles/sbi_vm.dir/Compiler.cpp.o.d"
  "CMakeFiles/sbi_vm.dir/VM.cpp.o"
  "CMakeFiles/sbi_vm.dir/VM.cpp.o.d"
  "libsbi_vm.a"
  "libsbi_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
