# Empty compiler generated dependencies file for sbi_vm.
# This may be replaced when dependencies are built.
