file(REMOVE_RECURSE
  "libsbi_vm.a"
)
