# Empty compiler generated dependencies file for sbi_feedback.
# This may be replaced when dependencies are built.
