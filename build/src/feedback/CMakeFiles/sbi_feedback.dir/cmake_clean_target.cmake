file(REMOVE_RECURSE
  "libsbi_feedback.a"
)
