file(REMOVE_RECURSE
  "CMakeFiles/sbi_feedback.dir/Report.cpp.o"
  "CMakeFiles/sbi_feedback.dir/Report.cpp.o.d"
  "libsbi_feedback.a"
  "libsbi_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
