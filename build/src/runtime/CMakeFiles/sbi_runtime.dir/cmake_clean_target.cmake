file(REMOVE_RECURSE
  "libsbi_runtime.a"
)
