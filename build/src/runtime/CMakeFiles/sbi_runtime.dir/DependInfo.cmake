
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Interp.cpp" "src/runtime/CMakeFiles/sbi_runtime.dir/Interp.cpp.o" "gcc" "src/runtime/CMakeFiles/sbi_runtime.dir/Interp.cpp.o.d"
  "/root/repo/src/runtime/Semantics.cpp" "src/runtime/CMakeFiles/sbi_runtime.dir/Semantics.cpp.o" "gcc" "src/runtime/CMakeFiles/sbi_runtime.dir/Semantics.cpp.o.d"
  "/root/repo/src/runtime/Value.cpp" "src/runtime/CMakeFiles/sbi_runtime.dir/Value.cpp.o" "gcc" "src/runtime/CMakeFiles/sbi_runtime.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/sbi_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sbi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
