file(REMOVE_RECURSE
  "CMakeFiles/sbi_runtime.dir/Interp.cpp.o"
  "CMakeFiles/sbi_runtime.dir/Interp.cpp.o.d"
  "CMakeFiles/sbi_runtime.dir/Semantics.cpp.o"
  "CMakeFiles/sbi_runtime.dir/Semantics.cpp.o.d"
  "CMakeFiles/sbi_runtime.dir/Value.cpp.o"
  "CMakeFiles/sbi_runtime.dir/Value.cpp.o.d"
  "libsbi_runtime.a"
  "libsbi_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
