# Empty dependencies file for sbi_runtime.
# This may be replaced when dependencies are built.
