file(REMOVE_RECURSE
  "libsbi_lang.a"
)
