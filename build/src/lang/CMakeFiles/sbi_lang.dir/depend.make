# Empty dependencies file for sbi_lang.
# This may be replaced when dependencies are built.
