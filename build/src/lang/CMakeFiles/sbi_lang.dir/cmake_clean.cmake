file(REMOVE_RECURSE
  "CMakeFiles/sbi_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/sbi_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/sbi_lang.dir/Intrinsics.cpp.o"
  "CMakeFiles/sbi_lang.dir/Intrinsics.cpp.o.d"
  "CMakeFiles/sbi_lang.dir/Lexer.cpp.o"
  "CMakeFiles/sbi_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/sbi_lang.dir/Parser.cpp.o"
  "CMakeFiles/sbi_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/sbi_lang.dir/Sema.cpp.o"
  "CMakeFiles/sbi_lang.dir/Sema.cpp.o.d"
  "libsbi_lang.a"
  "libsbi_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
