file(REMOVE_RECURSE
  "CMakeFiles/sbi.dir/sbi.cpp.o"
  "CMakeFiles/sbi.dir/sbi.cpp.o.d"
  "sbi"
  "sbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
