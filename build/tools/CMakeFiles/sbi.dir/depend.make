# Empty dependencies file for sbi.
# This may be replaced when dependencies are built.
