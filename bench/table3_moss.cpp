//===- bench/table3_moss.cpp - Reproduce Table 3 --------------------------===//
//
// Table 3 of the paper: the MOSS validation study. Nine bugs are seeded
// (six real historical MOSS bugs plus three variations in the paper; nine
// structurally matching bugs here), the elimination algorithm runs over the
// labeled reports, and each selected predicate is shown with its initial
// and effective thermometers plus, per ground-truth bug, the number of
// failing runs that both exhibit the bug and observe the predicate true.
//
// Expected shape (paper):
//  - the top |bugs| predicates cover every bug that ever causes a failure,
//    roughly one predictor per bug (plus an occasional sub-bug predictor);
//  - bug 7 (the harmless overrun) is never strongly predicted but shows up
//    in other predictors' failing runs;
//  - bug 8 never occurs at all;
//  - bug 9 (output-only) is isolated thanks to the output oracle;
//  - below the covering prefix, predicates are redundant with the ones
//    above (visible as diluted effective thermometers).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/4000);
  std::printf("== Table 3: MOSS failure predictors (nonuniform sampling) "
              "==\n");
  std::printf("runs: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
  CampaignResult Result = runCampaign(mossSubject(), Options);

  std::printf("runs: %zu successful, %zu failing\n", Result.numSuccessful(),
              Result.numFailing());
  std::printf("%-6s %-28s %10s %10s\n", "bug", "kind", "triggered",
              "failing");
  for (const auto &Stats : Result.Bugs) {
    const BugSpec &Spec = mossSubject().Bugs[static_cast<size_t>(
        Stats.BugId - 1)];
    std::printf("#%-5d %-28s %10zu %10zu\n", Stats.BugId, Spec.Kind.c_str(),
                Stats.Triggered, Stats.TriggeredAndFailed);
  }
  std::printf("\n");

  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();

  std::vector<int> BugIds = {1, 2, 3, 4, 5, 6, 7, 9};
  std::printf("%s\n", renderSelectedList(Result.Sites, Result.Reports,
                                         Analysis.Selected, BugIds,
                                         /*TopK=*/21)
                          .c_str());

  std::printf("(bug 8 is seeded but never triggered; its column would be "
              "all zeros, so it is omitted, as in the paper)\n\n");

  for (size_t I = 0; I < Analysis.Selected.size() && I < 8; ++I)
    std::printf("%s", renderAffinity(Result.Sites, Analysis.Selected[I])
                          .c_str());
  return 0;
}
