//===- bench/table4_ccrypt.cpp - Reproduce Table 4 ------------------------===//
//
// Table 4 of the paper: CCRYPT 1.2's single input-validation bug. The
// elimination algorithm retains a very short list (the paper shows two
// predicates, a sub-bug predictor plus the natural one), and the affinity
// list links them: the companion predicate appears at the top of the main
// predictor's affinity list, telling the engineer both point at one bug.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/4000);
  std::printf("== Table 4: predictors for CCRYPT ==\n");
  std::printf("runs: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
  CampaignResult Result = runCampaign(ccryptSubject(), Options);

  std::printf("runs: %zu successful, %zu failing\n\n",
              Result.numSuccessful(), Result.numFailing());

  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();

  std::printf("%s\n", renderSelectedList(Result.Sites, Result.Reports,
                                         Analysis.Selected, {1})
                          .c_str());
  for (const SelectedPredicate &Entry : Analysis.Selected)
    std::printf("%s", renderAffinity(Result.Sites, Entry).c_str());
  std::printf("\nPaper shape: every retained predicate points at the one "
              "prompt-path bug, and\naffinity links them as a single "
              "cause.\n");
  return 0;
}
