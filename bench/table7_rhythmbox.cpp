//===- bench/table7_rhythmbox.cpp - Reproduce Table 7 ----------------------===//
//
// Table 7 of the paper: RHYTHMBOX 0.6.5, an event-driven program. Two
// distinct bugs are isolated: a dispose/timer race and an unsafe
// object-library usage pattern whose crash surfaces later in the renderer.
// The paper notes the second bug's chosen predicate was not useful
// directly but its affinity list was — so the affinity lists are printed
// for every retained predicate.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/4000);
  std::printf("== Table 7: predictors for RHYTHMBOX ==\n");
  std::printf("runs: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
  CampaignResult Result = runCampaign(rhythmboxSubject(), Options);

  std::printf("runs: %zu successful, %zu failing (the paper's RHYTHMBOX "
              "study also had more\nfailures than successes)\n",
              Result.numSuccessful(), Result.numFailing());
  for (const auto &Stats : Result.Bugs)
    std::printf("  bug #%d: triggered in %zu runs (%zu failing)\n",
                Stats.BugId, Stats.Triggered, Stats.TriggeredAndFailed);
  std::printf("\n");

  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();

  std::printf("%s\n", renderSelectedList(Result.Sites, Result.Reports,
                                         Analysis.Selected, {1, 2})
                          .c_str());
  for (const SelectedPredicate &Entry : Analysis.Selected)
    std::printf("%s", renderAffinity(Result.Sites, Entry).c_str());
  std::printf("\nPaper shape: distinct predictors for the race and for the "
              "unsafe API pattern;\nthe affinity lists collect the related "
              "predicates an engineer would read next.\n");
  return 0;
}
