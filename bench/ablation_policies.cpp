//===- bench/ablation_policies.cpp - Run-discard policies (Section 5) -----===//
//
// Section 5 of the paper proposes three ways to "fix" a bug during
// iterative elimination:
//
//   (1) discard all runs where R(P) = 1          (the default),
//   (2) discard only failing runs where R(P) = 1,
//   (3) relabel failing runs where R(P) = 1 as successes.
//
// They differ in how much code coverage the remaining population keeps:
// (1) is the most conservative, (3) preserves every run. The paper proves
// that right after P is selected, Increase(not P) is ordered
// (3) >= (2) >= (1) = 0 when defined. This bench runs MOSS under all three
// policies and compares the selected lists and per-bug coverage.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/2500);
  std::printf("== Ablation: the three run-discard proposals of Section 5 "
              "==\n");
  std::printf("subject: moss, runs: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
  CampaignResult Result = runCampaign(mossSubject(), Options);
  std::printf("runs: %zu successful, %zu failing\n\n",
              Result.numSuccessful(), Result.numFailing());

  std::vector<int> BugIds = {1, 2, 3, 4, 5, 6, 9};

  TextTable Table;
  std::vector<std::string> Header = {"Policy", "Selected", "Bugs covered"};
  Table.setHeader(std::move(Header));

  for (DiscardPolicy Policy :
       {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
        DiscardPolicy::RelabelFailingRuns}) {
    AnalysisOptions Opts;
    Opts.Policy = Policy;
    Opts.ComputeAffinity = false;
    CauseIsolator Isolator(Result.Sites, Result.Reports, Opts);
    AnalysisResult Analysis = Isolator.run();

    size_t Covered = 0;
    for (int Bug : BugIds)
      for (const SelectedPredicate &Entry : Analysis.Selected)
        if (failingRunsWithPredAndBug(Result.Reports, Entry.Pred, Bug) > 0) {
          ++Covered;
          break;
        }
    Table.addRow({discardPolicyName(Policy),
                  format("%zu", Analysis.Selected.size()),
                  format("%zu of %zu", Covered, BugIds.size())});

    std::printf("-- %s: top selections --\n", discardPolicyName(Policy));
    std::printf("%s\n", renderSelectedList(Result.Sites, Result.Reports,
                                           Analysis.Selected, BugIds,
                                           /*TopK=*/8)
                            .c_str());
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("Paper shape: all three policies keep a predictor per "
              "covered bug (Lemma 3.1);\npolicies (2)/(3) preserve more "
              "coverage and tend to select more predicates.\n");
  return 0;
}
