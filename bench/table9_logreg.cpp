//===- bench/table9_logreg.cpp - Reproduce Table 9 -------------------------===//
//
// Table 9 of the paper: the top ten predicates selected by l1-regularized
// logistic regression for MOSS — the baseline the elimination algorithm is
// compared against in Section 4.4. The paper's striking finding: every one
// of the baseline's picks is a sub-bug or super-bug predictor. Each pick
// here is annotated with its ground-truth coverage so the same diagnosis
// can be read off directly:
//
//   super-bug: its failing runs span many different bugs (it predicts
//              "something failed", e.g. long-command-line predicates);
//   sub-bug:   its failing runs are a small, highly deterministic slice of
//              one bug's failures.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"
#include "logreg/LogReg.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/2500);
  std::printf("== Table 9: results of l1-regularized logistic regression "
              "for MOSS ==\n");
  std::printf("runs: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
  CampaignResult Result = runCampaign(mossSubject(), Options);

  std::vector<double> LambdaPath = {0.05, 0.02, 0.01, 0.005, 0.002, 0.001};
  LogRegModel Model = trainForSparsity(Result.Reports, /*MaxActive=*/40,
                                       LambdaPath);
  std::printf("trained: %d nonzero weights, %d iterations, objective "
              "%.5f\n\n",
              Model.numNonzero(), Model.Iterations, Model.FinalObjective);

  // Bug 7 (the harmless overrun) co-occurs with roughly half of all
  // failures without causing any; counting it would mislabel broad
  // predicates as its predictors, so diagnosis runs over the real causes.
  std::vector<int> BugIds = {1, 2, 3, 4, 5, 6, 9};
  std::vector<size_t> BugFailTotals;
  for (int Bug : BugIds) {
    size_t N = 0;
    for (const FeedbackReport &Report : Result.Reports.reports())
      if (Report.Failed && Report.hasBug(Bug))
        ++N;
    BugFailTotals.push_back(N);
  }

  auto diagnoseAndPrint = [&](const std::vector<std::pair<uint32_t, double>>
                                  &Picks) {
    std::printf("%-12s %-58s %s\n", "Coefficient", "Predicate",
                "Diagnosis");
    for (const auto &[Pred, Weight] : Picks) {
    // Ground-truth coverage of this predicate's failing runs.
    size_t TotalF = 0;
    for (const FeedbackReport &Report : Result.Reports.reports())
      if (Report.Failed && Report.observedTrue(Pred))
        ++TotalF;
    size_t BugsTouched = 0;
    int DominantBug = 0;
    size_t DominantCount = 0;
    for (size_t I = 0; I < BugIds.size(); ++I) {
      size_t N = failingRunsWithPredAndBug(Result.Reports, Pred, BugIds[I]);
      if (N > 0)
        ++BugsTouched;
      if (N > DominantCount) {
        DominantCount = N;
        DominantBug = BugIds[I];
      }
    }
    size_t DominantTotal = 0;
    for (size_t I = 0; I < BugIds.size(); ++I)
      if (BugIds[I] == DominantBug)
        DominantTotal = BugFailTotals[I];

    std::string Diagnosis;
    if (TotalF == 0) {
      Diagnosis = "no failing coverage";
    } else if (BugsTouched >= 3 &&
               DominantCount * 2 < TotalF + BugsTouched) {
      Diagnosis = format("super-bug (%zu bugs)", BugsTouched);
    } else if (DominantTotal > 0 && DominantCount * 2 < DominantTotal) {
      Diagnosis = format("sub-bug of #%d (%zu of %zu failures)",
                         DominantBug, DominantCount, DominantTotal);
    } else {
      Diagnosis = format("predictor of #%d (%zu of %zu failures)",
                         DominantBug, DominantCount, DominantTotal);
    }
    std::printf("%12.6f %-58s %s\n", Weight,
                Result.Sites.predicate(Pred).Text.c_str(),
                Diagnosis.c_str());
    }
  };

  std::printf("top failure-predicting (positive) coefficients — the "
              "paper's Table 9 view:\n");
  diagnoseAndPrint(Model.topPositive(10));

  std::printf("\ntop coefficients by magnitude (negative weights mark "
              "late-execution predicates\nthat crashed runs never reach — "
              "success indicators):\n");
  diagnoseAndPrint(Model.topByMagnitude(10));

  std::printf("\nPaper shape: the regression's picks are dominated by "
              "sub-bug and super-bug\npredictors — it optimizes global "
              "prediction, not per-bug isolation.\n");
  return 0;
}
