//===- bench/table5_bc.cpp - Reproduce Table 5 -----------------------------===//
//
// Table 5 of the paper: GNU BC 1.06's heap buffer overrun. Two properties
// matter: the retained predicates point at the overrun site (the array
// count crossing the 32-entry table capacity), and the crash stacks are
// useless — the failure surfaces in the summary walk long after the
// overrun, so the stack names print_summary, not array_define.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <cstdio>
#include <map>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/4000);
  std::printf("== Table 5: predictors for BC ==\n");
  std::printf("runs: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
  CampaignResult Result = runCampaign(bcSubject(), Options);

  std::printf("runs: %zu successful, %zu failing\n\n",
              Result.numSuccessful(), Result.numFailing());

  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();

  std::printf("%s\n", renderSelectedList(Result.Sites, Result.Reports,
                                         Analysis.Selected, {1})
                          .c_str());
  for (const SelectedPredicate &Entry : Analysis.Selected)
    std::printf("%s", renderAffinity(Result.Sites, Entry).c_str());

  // The paper's point about this bug: the stack at the crash carries no
  // information about the cause. Show where the crashes actually land.
  std::map<std::string, size_t> CrashSites;
  for (const FeedbackReport &Report : Result.Reports.reports())
    if (Report.Trap != TrapKind::None && !Report.StackSignature.empty()) {
      size_t Sep = Report.StackSignature.find('>');
      ++CrashSites[Sep == std::string::npos
                       ? Report.StackSignature
                       : Report.StackSignature.substr(0, Sep)];
    }
  std::printf("\ncrash locations (top stack frame) vs. the true cause "
              "(array_define):\n");
  for (const auto &[Site, Count] : CrashSites)
    std::printf("  %6zu crashes at %s\n", Count, Site.c_str());
  std::printf("\nPaper shape: the predictors name the overrun condition "
              "(array count vs. the\n32-entry capacity) even though every "
              "crash happens far away in the summary walk.\n");
  return 0;
}
