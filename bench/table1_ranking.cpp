//===- bench/table1_ranking.cpp - Reproduce Table 1 -----------------------===//
//
// Table 1 of the paper: why neither raw failure counts nor raw Increase
// scores are good importance metrics, using MOSS without redundancy
// elimination:
//
//   (a) sorting by F(P) surfaces predicates that fail a lot but also
//       succeed a lot (huge S, tiny Increase): super-bug predictors and
//       weakly correlated noise;
//   (b) sorting by Increase(P) surfaces near-deterministic predicates with
//       tiny F: sub-bug predictors;
//   (c) the harmonic-mean Importance balances both.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <algorithm>
#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/4000);
  std::printf("== Table 1: comparison of ranking strategies for MOSS "
              "(no redundancy elimination) ==\n");
  std::printf("runs: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
  CampaignResult Result = runCampaign(mossSubject(), Options);

  CauseIsolator Isolator(Result.Sites, Result.Reports);
  std::vector<uint32_t> Survivors = Isolator.prune();
  RunView View = RunView::allOf(Result.Reports);
  std::vector<RankedPredicate> Ranked = Isolator.rank(Survivors, View);
  uint64_t NumF = Result.numFailing();

  auto copySortedBy = [&](auto Less) {
    std::vector<RankedPredicate> Copy = Ranked;
    std::stable_sort(Copy.begin(), Copy.end(), Less);
    return Copy;
  };

  std::printf("(a) sort descending by F(P) — many failing runs, but the "
              "wide white bands show huge S(P):\n");
  auto ByF = copySortedBy([](const RankedPredicate &A,
                             const RankedPredicate &B) {
    return A.Scores.counts().F > B.Scores.counts().F;
  });
  std::printf("%s\n",
              renderRankedList(Result.Sites, ByF, 8, NumF).c_str());

  std::printf("(b) sort descending by Increase(P) — near-deterministic "
              "sub-bug predictors with tiny F(P):\n");
  auto ByIncrease = copySortedBy([](const RankedPredicate &A,
                                    const RankedPredicate &B) {
    return A.Scores.increase().Value > B.Scores.increase().Value;
  });
  std::printf("%s\n",
              renderRankedList(Result.Sites, ByIncrease, 8, NumF).c_str());

  std::printf("(c) sort descending by harmonic-mean Importance — balanced "
              "specificity and sensitivity:\n");
  std::printf("%s\n",
              renderRankedList(Result.Sites, Ranked, 8, NumF).c_str());

  // Quantify the paper's qualitative claims.
  auto meanOver = [&](const std::vector<RankedPredicate> &List, auto Proj) {
    double Sum = 0.0;
    size_t N = std::min<size_t>(8, List.size());
    for (size_t I = 0; I < N; ++I)
      Sum += Proj(List[I]);
    return N == 0 ? 0.0 : Sum / static_cast<double>(N);
  };
  std::printf("top-8 means:             F(P)        S(P)    Increase\n");
  std::printf("  (a) by F        %10.1f  %10.1f  %10.3f\n",
              meanOver(ByF, [](const auto &E) {
                return double(E.Scores.counts().F);
              }),
              meanOver(ByF, [](const auto &E) {
                return double(E.Scores.counts().S);
              }),
              meanOver(ByF, [](const auto &E) {
                return E.Scores.increase().Value;
              }));
  std::printf("  (b) by Increase %10.1f  %10.1f  %10.3f\n",
              meanOver(ByIncrease, [](const auto &E) {
                return double(E.Scores.counts().F);
              }),
              meanOver(ByIncrease, [](const auto &E) {
                return double(E.Scores.counts().S);
              }),
              meanOver(ByIncrease, [](const auto &E) {
                return E.Scores.increase().Value;
              }));
  std::printf("  (c) harmonic    %10.1f  %10.1f  %10.3f\n",
              meanOver(Ranked, [](const auto &E) {
                return double(E.Scores.counts().F);
              }),
              meanOver(Ranked, [](const auto &E) {
                return double(E.Scores.counts().S);
              }),
              meanOver(Ranked, [](const auto &E) {
                return E.Scores.increase().Value;
              }));
  return 0;
}
