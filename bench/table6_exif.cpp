//===- bench/table6_exif.cpp - Reproduce Table 6 ---------------------------===//
//
// Table 6 of the paper: EXIF 0.6.9's three previously unknown crashing
// bugs, each isolated by a distinct retained predicate. The bench also
// replays the paper's bug-3 walk-through: a failing run's stack names only
// the save path (main > save_data > save_entry > mnote_save), while the
// retained predicate points at the loader condition o + s > buf_size —
// the information the stack cannot provide.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/8000);
  std::printf("== Table 6: predictors for EXIF ==\n");
  std::printf("runs: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
  CampaignResult Result = runCampaign(exifSubject(), Options);

  std::printf("runs: %zu successful, %zu failing\n", Result.numSuccessful(),
              Result.numFailing());
  for (const auto &Stats : Result.Bugs)
    std::printf("  bug #%d: triggered in %zu runs (%zu failing)\n",
                Stats.BugId, Stats.Triggered, Stats.TriggeredAndFailed);
  std::printf("\n");

  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();

  std::printf("%s\n", renderSelectedList(Result.Sites, Result.Reports,
                                         Analysis.Selected, {1, 2, 3})
                          .c_str());

  // The paper's bug-3 narrative: the crash stack is in the save path, far
  // from the loader bug the predicate names.
  for (const FeedbackReport &Report : Result.Reports.reports())
    if (Report.Failed && Report.hasBug(3) &&
        Report.Trap == TrapKind::NullDeref) {
      std::printf("a bug-3 failing run's stack at the crash:\n  %s\n",
                  Report.StackSignature.c_str());
      std::printf("(the crash is in the save path; the retained predicate "
                  "points at the\nmaker-note loader's o + s > buf_size "
                  "bail-out, like the paper's Figure-free\nwalk-through)\n");
      break;
    }
  return 0;
}
