//===- bench/table8_minruns.cpp - Reproduce Table 8 ------------------------===//
//
// Table 8 of the paper: how many runs are needed? For each bug's chosen
// predictor P, the study finds the minimum N such that
// Importance_full(P) - Importance_N(P) < 0.2, and reports N together with
// F(P) at that N. The paper's findings, which this bench reproduces in
// shape:
//
//   - N varies by orders of magnitude across bugs (rare bugs need many
//     more runs);
//   - the absolute number of failing-run observations needed is small and
//     stable (the paper: 10-40 failing runs per bug);
//   - results degrade gracefully: rare bugs' predictors drop out first.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/6000);
  std::printf("== Table 8: minimum number of runs needed ==\n");
  std::printf("runs per study: %zu, seed: %llu, threshold: "
              "Importance drop < 0.2\n\n",
              Config.Runs, static_cast<unsigned long long>(Config.Seed));

  TextTable Table;
  Table.setHeader({"Study", "Bug", "Predictor", "N", "F(P) at N",
                   "Importance(full)"});

  for (const Subject *Subj : allSubjects()) {
    CampaignOptions Options;
    Options.NumRuns = Config.Runs;
    Options.Seed = Config.Seed;
    Options.Threads = Config.Threads;
    CampaignResult Result = runCampaign(*Subj, Options);

    CauseIsolator Isolator(Result.Sites, Result.Reports);
    AnalysisResult Analysis = Isolator.run();

    std::vector<int> BugIds;
    for (const BugSpec &Bug : Subj->Bugs)
      BugIds.push_back(Bug.Id);
    auto Predictors =
        choosePredictorPerBug(Result.Reports, Analysis.Selected, BugIds);

    auto Grid = defaultMinRunsGrid(Result.Reports.size());
    auto Rows = computeMinimumRuns(Result.Sites, Result.Reports, Predictors,
                                   Grid);
    for (const MinRunsRow &Row : Rows) {
      Table.addRow({Subj->Name, format("#%d", Row.BugId),
                    Result.Sites.predicate(Row.Pred).Text,
                    Row.MinRuns == 0 ? std::string(">max")
                                     : format("%zu", Row.MinRuns),
                    format("%llu",
                           static_cast<unsigned long long>(Row.FAtMinRuns)),
                    format("%.3f", Row.FullImportance)});
    }
    Table.addSeparator();
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("Paper shape: N spans orders of magnitude across bugs, while "
              "F(P) at N stays in\nthe tens — a predictor stabilizes after "
              "a few dozen observed failures.\n");
  return 0;
}
