//===- bench/stack_study.cpp - Stack-trace clustering study (Section 6) ---===//
//
// Section 6 of the paper evaluates the industry heuristic of clustering
// crash reports by stack trace. Across the paper's experiments "in about
// half the cases the stack is useful in isolating the cause of a bug; in
// the other half the stack contains essentially no information". In MOSS
// only bugs #2 and #5 had truly unique signature stacks; BC, EXIF (bug 3),
// and RHYTHMBOX crashed so long after the bad behaviour that stacks were
// of limited or no use.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/4000);
  std::printf("== Stack-trace clustering study (Section 6) ==\n");
  std::printf("runs per study: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  size_t UsefulBugs = 0, TotalBugs = 0;

  for (const Subject *Subj : allSubjects()) {
    CampaignOptions Options;
    Options.NumRuns = Config.Runs;
    Options.Seed = Config.Seed;
  Options.Threads = Config.Threads;
    CampaignResult Result = runCampaign(*Subj, Options);

    std::vector<int> BugIds;
    std::vector<std::string> Causes;
    for (const BugSpec &Bug : Subj->Bugs) {
      BugIds.push_back(Bug.Id);
      Causes.push_back(Bug.CauseFunction);
    }
    auto Rows = computeStackStudy(Result.Reports, BugIds, Causes);

    std::printf("-- %s --\n", Subj->Name.c_str());
    TextTable Table;
    Table.setHeader({"Bug", "Crashing runs", "Crash locations",
                     "Full signatures", "Unique?", "Names the cause?"});
    for (const StackStudyRow &Row : Rows) {
      if (Row.CrashingRuns == 0)
        continue;
      // A stack is useful only if the crash location is both unique to
      // the bug AND inside the defect's function.
      bool NamesCause = Row.CrashesNamingCause * 2 > Row.CrashingRuns;
      bool Useful = Row.UniqueLocation && NamesCause;
      Table.addRow({format("#%d", Row.BugId),
                    format("%zu", Row.CrashingRuns),
                    format("%zu", Row.DistinctLocations),
                    format("%zu", Row.DistinctSignatures),
                    Row.UniqueLocation ? "yes" : "no",
                    NamesCause ? "yes" : "no"});
      ++TotalBugs;
      if (Useful)
        ++UsefulBugs;
    }
    std::printf("%s\n", Table.render().c_str());
  }

  std::printf("stacks are useful (unique AND naming the cause) for %zu of "
              "%zu crashing bugs\n(paper: about half across all "
              "experiments; one cause can crash in many places, one\nplace "
              "can serve many causes, and a crash far from the defect "
              "names nothing)\n",
              UsefulBugs, TotalBugs);
  return 0;
}
