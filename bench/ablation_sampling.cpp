//===- bench/ablation_sampling.cpp - Sampling validation (Section 4) ------===//
//
// Section 4's sampling validation: the paper compared every study's
// results against results obtained with no sampling at all and judged the
// differences minor (logically equivalent predicates swapped, slightly
// different tail ordering). This bench runs MOSS and EXIF under
//
//   full          complete monitoring (rate 1.0 everywhere),
//   adaptive      the nonuniform plan (the paper's configuration),
//   uniform 1/100 the naive fixed-rate plan,
//
// and reports how much of the full-monitoring elimination list each
// sampled configuration recovers (same predicate, or another predicate at
// the same site — the "logically equivalent" case).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>
#include <set>

using namespace sbi;

namespace {

struct ModeResult {
  std::string Name;
  std::vector<SelectedPredicate> Selected;
};

ModeResult runMode(const Subject &Subj, const BenchConfig &Config,
                   SamplingMode Mode, const char *Name) {
  CampaignOptions Options;
  Options.NumRuns = Config.Runs;
  Options.Seed = Config.Seed;
    Options.Threads = Config.Threads;
  Options.Mode = Mode;
  CampaignResult Result = runCampaign(Subj, Options);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  return {Name, Analysis.Selected};
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/2500);
  std::printf("== Ablation: sampled vs. unsampled analysis (Section 4) "
              "==\n");
  std::printf("runs per configuration: %zu, seed: %llu\n\n", Config.Runs,
              static_cast<unsigned long long>(Config.Seed));

  for (const Subject *Subj : {&mossSubject(), &exifSubject()}) {
    std::printf("-- %s --\n", Subj->Name.c_str());

    // Sites are identical across modes (same program), so predicate and
    // site ids are directly comparable.
    CampaignResult Reference;
    {
      CampaignOptions Options;
      Options.NumRuns = Config.Runs;
      Options.Seed = Config.Seed;
    Options.Threads = Config.Threads;
      Options.Mode = SamplingMode::None;
      Reference = runCampaign(*Subj, Options);
    }
    CauseIsolator RefIsolator(Reference.Sites, Reference.Reports);
    AnalysisResult RefAnalysis = RefIsolator.run();

    std::set<uint32_t> RefPreds, RefSites;
    for (const SelectedPredicate &Entry : RefAnalysis.Selected) {
      RefPreds.insert(Entry.Pred);
      RefSites.insert(Reference.Sites.predicate(Entry.Pred).Site);
    }

    TextTable Table;
    Table.setHeader({"Mode", "Selected", "Same predicate", "Same site",
                     "New"});
    Table.addRow({"full (reference)",
                  format("%zu", RefAnalysis.Selected.size()),
                  format("%zu", RefAnalysis.Selected.size()),
                  format("%zu", RefAnalysis.Selected.size()), "0"});

    for (auto [Mode, Name] :
         {std::pair{SamplingMode::Adaptive, "adaptive"},
          std::pair{SamplingMode::Uniform, "uniform 1/100"}}) {
      ModeResult Result = runMode(*Subj, Config, Mode, Name);
      size_t SamePred = 0, SameSite = 0, New = 0;
      for (const SelectedPredicate &Entry : Result.Selected) {
        if (RefPreds.count(Entry.Pred))
          ++SamePred;
        else if (RefSites.count(Reference.Sites.predicate(Entry.Pred).Site))
          ++SameSite;
        else
          ++New;
      }
      Table.addRow({Result.Name, format("%zu", Result.Selected.size()),
                    format("%zu", SamePred), format("%zu", SamePred + SameSite),
                    format("%zu", New)});
    }
    std::printf("%s\n", Table.render().c_str());
  }
  std::printf("Paper shape: adaptive sampling recovers (nearly) the full-"
              "monitoring list, often\nvia logically equivalent predicates "
              "at the same site; naive uniform 1/100 loses\nrarely-executed "
              "predicates, which is why the nonuniform plan exists.\n");
  return 0;
}
