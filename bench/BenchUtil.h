//===- bench/BenchUtil.h - Shared flags for the table benches -------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny command-line handling shared by the bench binaries that regenerate
/// the paper's tables: --runs=N and --seed=S scale each experiment, and
/// SBI_BENCH_RUNS / SBI_BENCH_SEED do the same from the environment (so
/// `for b in build/bench/*; do $b; done` can be scaled globally).
///
//===----------------------------------------------------------------------===//

#ifndef SBI_BENCH_BENCHUTIL_H
#define SBI_BENCH_BENCHUTIL_H

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sbi {

struct BenchConfig {
  size_t Runs;
  uint64_t Seed;
  /// Campaign worker threads (0 = one per hardware thread). Results are
  /// bit-identical for any value; this only changes wall time.
  size_t Threads;
};

inline BenchConfig parseBenchConfig(int Argc, char **Argv,
                                    size_t DefaultRuns) {
  BenchConfig Config{DefaultRuns, 20050612, 0};
  if (const char *Env = std::getenv("SBI_BENCH_RUNS"))
    Config.Runs = static_cast<size_t>(std::strtoull(Env, nullptr, 10));
  if (const char *Env = std::getenv("SBI_BENCH_SEED"))
    Config.Seed = std::strtoull(Env, nullptr, 10);
  if (const char *Env = std::getenv("SBI_BENCH_THREADS"))
    Config.Threads = static_cast<size_t>(std::strtoull(Env, nullptr, 10));
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--runs=", 7) == 0)
      Config.Runs = static_cast<size_t>(std::strtoull(Argv[I] + 7, nullptr,
                                                      10));
    else if (std::strncmp(Argv[I], "--seed=", 7) == 0)
      Config.Seed = std::strtoull(Argv[I] + 7, nullptr, 10);
    else if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      Config.Threads = static_cast<size_t>(
          std::strtoull(Argv[I] + 10, nullptr, 10));
  }
  if (Config.Runs == 0)
    Config.Runs = DefaultRuns;
  return Config;
}

} // namespace sbi

#endif // SBI_BENCH_BENCHUTIL_H
