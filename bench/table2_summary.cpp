//===- bench/table2_summary.cpp - Reproduce Table 2 -----------------------===//
//
// Table 2 of the paper: summary statistics for the five bug-isolation
// studies — lines of code, successful/failing run counts, instrumentation
// sites, and the predicate-count funnel (initial -> Increase > 0 ->
// elimination output). The paper's headline here is the 3-4 order-of-
// magnitude reduction in predicates the user must examine.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sbi;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseBenchConfig(Argc, Argv, /*DefaultRuns=*/3000);
  std::printf("== Table 2: summary statistics for bug isolation "
              "experiments ==\n");
  std::printf("runs per study: %zu, seed: %llu (paper: ~32,000 runs)\n\n",
              Config.Runs, static_cast<unsigned long long>(Config.Seed));

  TextTable Table;
  Table.setHeader({"Study", "LoC", "Successful", "Failing", "Sites",
                   "Initial preds", "Increase>0", "Elimination"});

  for (const Subject *Subj : allSubjects()) {
    CampaignOptions Options;
    Options.NumRuns = Config.Runs;
    Options.Seed = Config.Seed;
    Options.Threads = Config.Threads;
    CampaignResult Result = runCampaign(*Subj, Options);

    CauseIsolator Isolator(Result.Sites, Result.Reports);
    AnalysisResult Analysis = Isolator.run();

    Table.addRow({Subj->Name, format("%d", Result.LinesOfCode),
                  format("%zu", Result.numSuccessful()),
                  format("%zu", Result.numFailing()),
                  format("%u", Result.Sites.numSites()),
                  format("%u", Result.Sites.numPredicates()),
                  format("%zu", Analysis.PrunedSurvivors.size()),
                  format("%zu", Analysis.Selected.size())});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("Paper shape: Increase>0 removes ~99%% of predicates;\n"
              "elimination reduces the survivors by another 1-2 orders of "
              "magnitude.\n");
  return 0;
}
