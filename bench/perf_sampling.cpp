//===- bench/perf_sampling.cpp - Instrumentation overhead (Section 2) -----===//
//
// Section 2's overhead claim: sparse random sampling keeps instrumentation
// cost low ("a sampling rate of 1/100 keeps the performance overhead low,
// often unmeasurable"). This google-benchmark binary executes a pool of
// MOSS inputs under increasing levels of monitoring:
//
//   uninstrumented    no observer at all,
//   uniform 1/1000,
//   uniform 1/100     the paper's default rate,
//   uniform 1/10,
//   adaptive          the nonuniform plan of Section 4,
//   full              complete monitoring (rate 1.0).
//
// Expected shape: cost grows with the effective sampling rate; uniform
// 1/100 sits well below full monitoring. Two honest deviations from the
// paper's absolute numbers: (a) our interpreter pays a fixed observer
// dispatch per dynamic event even when the sample is skipped, while CBI's
// compiled fast path bypasses instrumentation entirely, so the floor is
// higher than "unmeasurable"; (b) the adaptive plan targets ~100 samples
// per site per run, and on subjects this small most sites are reached
// fewer than 100 times, so adaptive deliberately approaches complete
// monitoring — its overhead win materializes on programs whose hot sites
// execute orders of magnitude more often than the target.
//
//===----------------------------------------------------------------------===//

#include "harness/Campaign.h"
#include "instrument/Collector.h"
#include "runtime/Interp.h"
#include "subjects/Subjects.h"
#include "support/Random.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <benchmark/benchmark.h>

using namespace sbi;

namespace {

/// Shared fixture state: the compiled MOSS program, its sites, and a pool
/// of non-crashing inputs drawn from the study's real input distribution
/// (crashing runs end early and would understate the overhead).
struct MossFixture {
  std::unique_ptr<Program> Prog;
  CompiledProgram Bytecode;
  SiteTable Sites;
  std::vector<std::vector<std::string>> InputPool;

  static const MossFixture &get() {
    static MossFixture Fixture = [] {
      MossFixture F;
      F.Prog = compileSubjectSource(mossSubject().Source, "moss");
      F.Bytecode = compileProgram(*F.Prog);
      F.Sites = SiteTable::build(*F.Prog);
      Rng InputRng(0xfeedbeefULL);
      while (F.InputPool.size() < 16) {
        std::vector<std::string> Args = mossSubject().GenerateInput(InputRng);
        RunConfig Config;
        Config.Args = Args;
        Config.OverrunPad = 4;
        if (!runProgram(*F.Prog, Config).failed())
          F.InputPool.push_back(std::move(Args));
      }
      return F;
    }();
    return Fixture;
  }
};

void runOnce(benchmark::State &State, ReportCollector *Collector,
             uint64_t &RunSeed, bool UseVM = false) {
  const MossFixture &Fixture = MossFixture::get();
  uint64_t Steps = 0;
  size_t Next = 0;
  for (auto _ : State) {
    RunConfig Config;
    Config.Args = Fixture.InputPool[Next];
    Next = (Next + 1) % Fixture.InputPool.size();
    Config.OverrunPad = 4;
    Config.Observer = Collector;
    if (Collector)
      Collector->beginRun(RunSeed++);
    RunOutcome Outcome = UseVM ? runCompiled(Fixture.Bytecode, Config)
                               : runProgram(*Fixture.Prog, Config);
    benchmark::DoNotOptimize(Outcome.ExitCode);
    Steps += Outcome.Steps;
    if (Collector) {
      RawReport Report = Collector->takeReport();
      benchmark::DoNotOptimize(Report.TruePredicates.size());
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}

void BM_Uninstrumented(benchmark::State &State) {
  uint64_t Seed = 1;
  runOnce(State, nullptr, Seed);
}

void BM_UniformRate(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  double Rate = 1.0 / static_cast<double>(State.range(0));
  ReportCollector Collector(
      Fixture.Sites, SamplingPlan::uniform(Fixture.Sites.numSites(), Rate));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed);
}

void BM_Adaptive(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  // Train the plan on a handful of runs, outside the timed region.
  ReportCollector Trainer(Fixture.Sites,
                          SamplingPlan::full(Fixture.Sites.numSites()));
  std::vector<double> Mean(Fixture.Sites.numSites(), 0.0);
  Rng InputRng(0x1234ULL);
  const int TrainingRuns = 60;
  for (int Run = 0; Run < TrainingRuns; ++Run) {
    RunConfig Config;
    Config.Args = mossSubject().GenerateInput(InputRng);
    Config.OverrunPad = 4;
    Config.Observer = &Trainer;
    Trainer.beginRun(static_cast<uint64_t>(Run));
    runProgram(*Fixture.Prog, Config);
    for (const auto &[Site, Count] : Trainer.takeReport().SiteObservations)
      Mean[Site] += static_cast<double>(Count) / TrainingRuns;
  }
  ReportCollector Collector(Fixture.Sites, SamplingPlan::adaptive(Mean));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed);
}

void BM_FullMonitoring(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  ReportCollector Collector(Fixture.Sites,
                            SamplingPlan::full(Fixture.Sites.numSites()));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed);
}

} // namespace

void BM_UninstrumentedVM(benchmark::State &State) {
  uint64_t Seed = 1;
  runOnce(State, nullptr, Seed, /*UseVM=*/true);
}

void BM_FullMonitoringVM(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  ReportCollector Collector(Fixture.Sites,
                            SamplingPlan::full(Fixture.Sites.numSites()));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed, /*UseVM=*/true);
}

BENCHMARK(BM_Uninstrumented);
BENCHMARK(BM_UninstrumentedVM);
BENCHMARK(BM_FullMonitoringVM);
BENCHMARK(BM_UniformRate)->Arg(1000)->Arg(100)->Arg(10);
BENCHMARK(BM_Adaptive);
BENCHMARK(BM_FullMonitoring);

BENCHMARK_MAIN();
