//===- bench/perf_sampling.cpp - Instrumentation overhead (Section 2) -----===//
//
// Section 2's overhead claim: sparse random sampling keeps instrumentation
// cost low ("a sampling rate of 1/100 keeps the performance overhead low,
// often unmeasurable"). This google-benchmark binary executes a pool of
// MOSS inputs under increasing levels of monitoring:
//
//   uninstrumented    no observer at all,
//   uniform 1/1000,
//   uniform 1/100     the paper's default rate,
//   uniform 1/10,
//   adaptive          the nonuniform plan of Section 4,
//   full              complete monitoring (rate 1.0).
//
// Expected shape: cost grows with the effective sampling rate; uniform
// 1/100 sits well below full monitoring. Two honest deviations from the
// paper's absolute numbers: (a) our interpreter pays a fixed observer
// dispatch per dynamic event even when the sample is skipped, while CBI's
// compiled fast path bypasses instrumentation entirely, so the floor is
// higher than "unmeasurable"; (b) the adaptive plan targets ~100 samples
// per site per run, and on subjects this small most sites are reached
// fewer than 100 times, so adaptive deliberately approaches complete
// monitoring — its overhead win materializes on programs whose hot sites
// execute orders of magnitude more often than the target.
//
// Besides the google-benchmark suites, the binary has four study modes:
//
//   --prune-bench[=PATH]     the static-pruning throughput study: full
//                            32k-run MOSS campaigns with and without
//                            --static-prune on both execution engines,
//                            recording wall time, runs/sec, prune stats,
//                            and a retained-predicate ranking check into
//                            BENCH_sampling.json (the committed copy is
//                            the reference measurement EXPERIMENTS.md
//                            cites);
//   --smoke[=PATH]           the same study at 2048 runs, sized for the
//                            CI bench-sampling-smoke gate;
//   --dispatch-bench[=PATH]  the VM-dispatch study: both engines at the
//                            paper's 1/100 uniform rate, recording
//                            runs/sec, the selected dispatch strategy,
//                            the VM's speedup, and a cross-engine report
//                            bit-identity check into BENCH_dispatch.json;
//   --dispatch-smoke[=PATH]  the dispatch study at 1024 runs, for CI.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "instrument/Collector.h"
#include "runtime/Interp.h"
#include "subjects/Subjects.h"
#include "support/Random.h"
#include "vm/Bytecode.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

using namespace sbi;

namespace {

/// Shared fixture state: the compiled MOSS program, its sites, and a pool
/// of non-crashing inputs drawn from the study's real input distribution
/// (crashing runs end early and would understate the overhead).
struct MossFixture {
  std::unique_ptr<Program> Prog;
  CompiledProgram Bytecode;
  SiteTable Sites;
  std::vector<std::vector<std::string>> InputPool;

  static const MossFixture &get() {
    static MossFixture Fixture = [] {
      MossFixture F;
      F.Prog = compileSubjectSource(mossSubject().Source, "moss");
      F.Bytecode = compileProgram(*F.Prog);
      F.Sites = SiteTable::build(*F.Prog);
      Rng InputRng(0xfeedbeefULL);
      while (F.InputPool.size() < 16) {
        std::vector<std::string> Args = mossSubject().GenerateInput(InputRng);
        RunConfig Config;
        Config.Args = Args;
        Config.OverrunPad = 4;
        if (!runProgram(*F.Prog, Config).failed())
          F.InputPool.push_back(std::move(Args));
      }
      return F;
    }();
    return Fixture;
  }
};

void runOnce(benchmark::State &State, ReportCollector *Collector,
             uint64_t &RunSeed, bool UseVM = false) {
  const MossFixture &Fixture = MossFixture::get();
  uint64_t Steps = 0;
  size_t Next = 0;
  for (auto _ : State) {
    RunConfig Config;
    Config.Args = Fixture.InputPool[Next];
    Next = (Next + 1) % Fixture.InputPool.size();
    Config.OverrunPad = 4;
    Config.Observer = Collector;
    if (Collector)
      Collector->beginRun(RunSeed++);
    RunOutcome Outcome = UseVM ? runCompiled(Fixture.Bytecode, Config)
                               : runProgram(*Fixture.Prog, Config);
    benchmark::DoNotOptimize(Outcome.ExitCode);
    Steps += Outcome.Steps;
    if (Collector) {
      RawReport Report = Collector->takeReport();
      benchmark::DoNotOptimize(Report.TruePredicates.size());
    }
  }
  State.SetItemsProcessed(static_cast<int64_t>(Steps));
}

void BM_Uninstrumented(benchmark::State &State) {
  uint64_t Seed = 1;
  runOnce(State, nullptr, Seed);
}

void BM_UniformRate(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  double Rate = 1.0 / static_cast<double>(State.range(0));
  ReportCollector Collector(
      Fixture.Sites, SamplingPlan::uniform(Fixture.Sites.numSites(), Rate));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed);
}

void BM_Adaptive(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  // Train the plan on a handful of runs, outside the timed region.
  ReportCollector Trainer(Fixture.Sites,
                          SamplingPlan::full(Fixture.Sites.numSites()));
  std::vector<double> Mean(Fixture.Sites.numSites(), 0.0);
  Rng InputRng(0x1234ULL);
  const int TrainingRuns = 60;
  for (int Run = 0; Run < TrainingRuns; ++Run) {
    RunConfig Config;
    Config.Args = mossSubject().GenerateInput(InputRng);
    Config.OverrunPad = 4;
    Config.Observer = &Trainer;
    Trainer.beginRun(static_cast<uint64_t>(Run));
    runProgram(*Fixture.Prog, Config);
    for (const auto &[Site, Count] : Trainer.takeReport().SiteObservations)
      Mean[Site] += static_cast<double>(Count) / TrainingRuns;
  }
  ReportCollector Collector(Fixture.Sites, SamplingPlan::adaptive(Mean));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed);
}

void BM_FullMonitoring(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  ReportCollector Collector(Fixture.Sites,
                            SamplingPlan::full(Fixture.Sites.numSites()));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed);
}

} // namespace

void BM_UninstrumentedVM(benchmark::State &State) {
  uint64_t Seed = 1;
  runOnce(State, nullptr, Seed, /*UseVM=*/true);
}

void BM_UniformRateVM(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  double Rate = 1.0 / static_cast<double>(State.range(0));
  ReportCollector Collector(
      Fixture.Sites, SamplingPlan::uniform(Fixture.Sites.numSites(), Rate));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed, /*UseVM=*/true);
}

void BM_FullMonitoringVM(benchmark::State &State) {
  const MossFixture &Fixture = MossFixture::get();
  ReportCollector Collector(Fixture.Sites,
                            SamplingPlan::full(Fixture.Sites.numSites()));
  uint64_t Seed = 1;
  runOnce(State, &Collector, Seed, /*UseVM=*/true);
}

BENCHMARK(BM_Uninstrumented);
BENCHMARK(BM_UninstrumentedVM);
BENCHMARK(BM_FullMonitoringVM);
BENCHMARK(BM_UniformRate)->Arg(1000)->Arg(100)->Arg(10);
BENCHMARK(BM_UniformRateVM)->Arg(1000)->Arg(100)->Arg(10);
BENCHMARK(BM_Adaptive);
BENCHMARK(BM_FullMonitoring);

namespace {

/// The static-pruning throughput study: NumRuns-run MOSS campaigns, pruned
/// and unpruned, one per execution engine, single-threaded so runs/sec is
/// a per-core number (32768 for the reference measurement, 2048 for the CI
/// smoke gate). Also re-checks the pruning contract at benchmark scale:
/// retained-predicate rankings bit-identical under the default analysis,
/// every prune stat recorded alongside the timing.
int runPruneBench(const std::string &OutPath, size_t NumRuns) {
  using Clock = std::chrono::steady_clock;

  struct Row {
    const char *EngineName;
    Engine Exec;
    bool Pruned;
    double WallMs = 0.0;
    double RunsPerSec = 0.0;
    CampaignResult Result = {};
  };
  Row Rows[] = {{"interp", Engine::Interpreter, false},
                {"interp", Engine::Interpreter, true},
                {"vm", Engine::VM, false},
                {"vm", Engine::VM, true}};

  // Open the output up front: an unwritable path should fail before the
  // campaigns, not twenty minutes after.
  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "prune-bench: cannot write %s\n", OutPath.c_str());
    return 1;
  }

  for (Row &R : Rows) {
    CampaignOptions Options;
    Options.NumRuns = NumRuns;
    Options.Threads = 1;
    Options.Exec = R.Exec;
    Options.StaticPrune = R.Pruned;
    Clock::time_point Start = Clock::now();
    R.Result = runCampaign(mossSubject(), Options);
    std::chrono::duration<double, std::milli> Wall = Clock::now() - Start;
    R.WallMs = Wall.count();
    R.RunsPerSec = static_cast<double>(NumRuns) / (R.WallMs / 1000.0);
    std::fprintf(stderr, "prune-bench: %s %s: %.1f ms, %.1f runs/sec\n",
                 R.EngineName, R.Pruned ? "pruned" : "unpruned", R.WallMs,
                 R.RunsPerSec);
  }

  // The contract check at this scale: for each engine, the pruned
  // campaign's retained-predicate ranking must match the unpruned one.
  bool RankingsMatch = true;
  for (size_t E = 0; E < 2; ++E) {
    const Row &Unpruned = Rows[E * 2];
    const Row &Pruned = Rows[E * 2 + 1];
    AnalysisOptions Options;
    AnalysisResult A =
        CauseIsolator(Unpruned.Result.Sites, Unpruned.Result.Reports, Options)
            .run();
    AnalysisResult B =
        CauseIsolator(Pruned.Result.Sites, Pruned.Result.Reports, Options)
            .run();
    RankingsMatch = RankingsMatch && prunedRankingsMatch(A, B);
  }

  const PruneResult &Prune = Rows[1].Result.Prune;
  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"bench\": \"perf_sampling.static_prune\",\n");
  std::fprintf(Out, "  \"subject\": \"moss\",\n");
  std::fprintf(Out, "  \"runs\": %zu,\n", NumRuns);
  std::fprintf(Out, "  \"threads\": 1,\n");
  std::fprintf(Out,
               "  \"prune\": {\"sites\": %u, \"pruned\": %u, \"unreachable\": "
               "%u, \"constant_outcome\": %u, \"live\": %u},\n",
               Prune.numSites(), Prune.numPruned(), Prune.numUnreachable(),
               Prune.numConstant(), Prune.numLive());
  std::fprintf(Out, "  \"configs\": [\n");
  for (size_t I = 0; I < 4; ++I) {
    const Row &R = Rows[I];
    std::fprintf(Out,
                 "    {\"engine\": \"%s\", \"static_prune\": %s, \"wall_ms\": "
                 "%.3f, \"runs_per_sec\": %.1f}%s\n",
                 R.EngineName, R.Pruned ? "true" : "false", R.WallMs,
                 R.RunsPerSec, I + 1 < 4 ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"interp_speedup\": %.3f,\n",
               Rows[1].RunsPerSec / Rows[0].RunsPerSec);
  std::fprintf(Out, "  \"vm_speedup\": %.3f,\n",
               Rows[3].RunsPerSec / Rows[2].RunsPerSec);
  std::fprintf(Out, "  \"retained_rankings_identical\": %s\n",
               RankingsMatch ? "true" : "false");
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  std::fprintf(stderr, "prune-bench: wrote %s\n", OutPath.c_str());
  return RankingsMatch ? 0 : 1;
}

/// The VM-dispatch throughput study: same-seed MOSS campaigns at the
/// paper's 1/100 uniform rate on both execution engines, single-threaded.
/// Records runs/sec per engine, the VM's speedup over the interpreter, the
/// dispatch strategy the build selected (computed goto vs. portable
/// switch), and whether the two engines' feedback reports stayed
/// bit-identical — the determinism half of the dispatch contract, measured
/// at benchmark scale rather than test scale.
int runDispatchBench(const std::string &OutPath, size_t NumRuns) {
  using Clock = std::chrono::steady_clock;

  struct Row {
    const char *EngineName;
    Engine Exec;
    double WallMs = 0.0;
    double RunsPerSec = 0.0;
    CampaignResult Result = {};
  };
  Row Rows[] = {{"interp", Engine::Interpreter}, {"vm", Engine::VM}};

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "dispatch-bench: cannot write %s\n",
                 OutPath.c_str());
    return 1;
  }

  for (Row &R : Rows) {
    CampaignOptions Options;
    Options.NumRuns = NumRuns;
    Options.Threads = 1;
    Options.Mode = SamplingMode::Uniform;
    Options.UniformRate = 0.01;
    Options.Exec = R.Exec;
    Clock::time_point Start = Clock::now();
    R.Result = runCampaign(mossSubject(), Options);
    std::chrono::duration<double, std::milli> Wall = Clock::now() - Start;
    R.WallMs = Wall.count();
    R.RunsPerSec = static_cast<double>(NumRuns) / (R.WallMs / 1000.0);
    std::fprintf(stderr, "dispatch-bench: %s: %.1f ms, %.1f runs/sec\n",
                 R.EngineName, R.WallMs, R.RunsPerSec);
  }

  // The determinism contract: same seed, same sampling plan, same
  // per-site RNG streams => same reports, engine notwithstanding. (Stack
  // signatures are excluded: line attribution differs between engines by
  // documented convention.)
  bool Identical =
      Rows[0].Result.Reports.size() == Rows[1].Result.Reports.size();
  for (size_t Run = 0; Identical && Run < Rows[0].Result.Reports.size();
       ++Run) {
    const FeedbackReport &A = Rows[0].Result.Reports[Run];
    const FeedbackReport &B = Rows[1].Result.Reports[Run];
    Identical = A.Failed == B.Failed && A.Trap == B.Trap &&
                A.ExitCode == B.ExitCode && A.BugMask == B.BugMask &&
                A.Counts.SiteObservations == B.Counts.SiteObservations &&
                A.Counts.TruePredicates == B.Counts.TruePredicates;
  }

  std::fprintf(Out, "{\n");
  std::fprintf(Out, "  \"bench\": \"perf_sampling.dispatch\",\n");
  std::fprintf(Out, "  \"subject\": \"moss\",\n");
  std::fprintf(Out, "  \"runs\": %zu,\n", NumRuns);
  std::fprintf(Out, "  \"threads\": 1,\n");
  std::fprintf(Out, "  \"sampling\": \"uniform-1/100\",\n");
  std::fprintf(Out, "  \"vm_dispatch\": \"%s\",\n", vmDispatchKind());
  std::fprintf(Out, "  \"configs\": [\n");
  for (size_t I = 0; I < 2; ++I) {
    const Row &R = Rows[I];
    std::fprintf(Out,
                 "    {\"engine\": \"%s\", \"wall_ms\": %.3f, "
                 "\"runs_per_sec\": %.1f}%s\n",
                 R.EngineName, R.WallMs, R.RunsPerSec, I + 1 < 2 ? "," : "");
  }
  std::fprintf(Out, "  ],\n");
  std::fprintf(Out, "  \"vm_dispatch_speedup\": %.3f,\n",
               Rows[1].RunsPerSec / Rows[0].RunsPerSec);
  std::fprintf(Out, "  \"reports_identical\": %s\n",
               Identical ? "true" : "false");
  std::fprintf(Out, "}\n");
  std::fclose(Out);
  std::fprintf(stderr, "dispatch-bench: wrote %s\n", OutPath.c_str());
  return Identical ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg == "--prune-bench")
      return runPruneBench("BENCH_sampling.json", 32768);
    if (Arg.rfind("--prune-bench=", 0) == 0)
      return runPruneBench(std::string(Arg.substr(14)), 32768);
    if (Arg == "--smoke")
      return runPruneBench("BENCH_sampling_smoke.json", 2048);
    if (Arg.rfind("--smoke=", 0) == 0)
      return runPruneBench(std::string(Arg.substr(8)), 2048);
    if (Arg == "--dispatch-bench")
      return runDispatchBench("BENCH_dispatch.json", 8192);
    if (Arg.rfind("--dispatch-bench=", 0) == 0)
      return runDispatchBench(std::string(Arg.substr(17)), 8192);
    if (Arg == "--dispatch-smoke")
      return runDispatchBench("BENCH_dispatch_smoke.json", 1024);
    if (Arg.rfind("--dispatch-smoke=", 0) == 0)
      return runDispatchBench(std::string(Arg.substr(17)), 1024);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
