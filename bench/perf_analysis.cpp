//===- bench/perf_analysis.cpp - Analysis scalability ----------------------===//
//
// The paper's title claim is scalability: the Increase test plus iterative
// elimination must digest feedback from hundreds of thousands of
// predicates over tens of thousands of runs. This binary does two things:
//
//   1. An engine comparison at the paper's 32,000-run scale: the full
//      elimination + affinity phase under all three Section 5 discard
//      policies, once with the reference rescan engine and once with the
//      inverted-index/delta engine, verifying bit-identical results and
//      writing machine-readable timings to BENCH_analysis.json.
//
//   2. google-benchmark micro-benches of the three analysis stages
//      (aggregation, pruning, elimination) on synthetic report sets of
//      varying size, now covering both engines.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "core/InvertedIndex.h"
#include "feedback/Corpus.h"
#include "feedback/Report.h"
#include "instrument/Sites.h"
#include "lang/Sema.h"
#include "obs/Telemetry.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>

using namespace sbi;

namespace {

/// Builds a synthetic world: a trivial program whose site table is
/// irrelevant except for predicate->site structure, plus reports drawn
/// from a planted multi-bug model.
struct SyntheticWorld {
  std::unique_ptr<Program> Prog;
  SiteTable Sites;
  ReportSet Reports;
};

/// A tiny MicroC program with enough assignments to mint the requested
/// number of six-way sites.
std::unique_ptr<Program> syntheticProgram(size_t NumSites) {
  std::string Source = "fn main() {\n  int a = 1;\n";
  // Each additional assignment pairs with all previously declared ints and
  // the function's constants, so sites grow quadratically; generate until
  // the estimate is met.
  size_t Vars = 1;
  size_t SitesMinted = 0;
  while (SitesMinted < NumSites && Vars < 2000) {
    Source += "  int v" + std::to_string(Vars) + " = " +
              std::to_string(Vars % 7) + ";\n";
    SitesMinted += Vars + 6; // pair vars + capped constants, approximate
    ++Vars;
  }
  Source += "  println(a);\n}\n";
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  assert(Prog && "synthetic program must compile");
  return Prog;
}

SyntheticWorld buildWorld(size_t NumSitesTarget, size_t NumRuns,
                          size_t TruePredsPerRun, size_t NumBugs = 2) {
  SyntheticWorld World;
  World.Prog = syntheticProgram(NumSitesTarget);
  World.Sites = SiteTable::build(*World.Prog);

  uint32_t NumSites = World.Sites.numSites();
  uint32_t NumPreds = World.Sites.numPredicates();
  World.Reports = ReportSet(NumSites, NumPreds);

  Rng R(0xabcdefULL);
  // NumBugs planted bugs, each predicted by one dedicated site, with
  // trigger rates and failure probabilities cycling over an order of
  // magnitude so the elimination loop has a long tail of selections.
  const double TriggerRates[] = {0.02, 0.012, 0.008, 0.005, 0.003};
  const double FailProbs[] = {0.9, 0.8, 0.7};
  std::vector<uint32_t> BugSites(NumBugs);
  for (size_t Bug = 0; Bug < NumBugs; ++Bug)
    BugSites[Bug] = static_cast<uint32_t>(
        (Bug * static_cast<size_t>(NumSites)) / NumBugs);

  for (size_t Run = 0; Run < NumRuns; ++Run) {
    FeedbackReport Report;
    std::vector<std::pair<uint32_t, uint32_t>> SitesSeen;
    std::vector<std::pair<uint32_t, uint32_t>> PredsTrue;
    for (size_t K = 0; K < TruePredsPerRun; ++K) {
      uint32_t Site = static_cast<uint32_t>(R.nextBelow(NumSites));
      SitesSeen.emplace_back(Site, 1);
      const SiteInfo &Info = World.Sites.site(Site);
      uint32_t Pred =
          Info.FirstPredicate +
          static_cast<uint32_t>(R.nextBelow(Info.NumPredicates));
      PredsTrue.emplace_back(Pred, 1);
    }
    for (size_t Bug = 0; Bug < NumBugs; ++Bug) {
      if (!R.nextBernoulli(TriggerRates[Bug % 5]))
        continue;
      SitesSeen.emplace_back(BugSites[Bug], 1);
      PredsTrue.emplace_back(World.Sites.site(BugSites[Bug]).FirstPredicate,
                             1);
      if (R.nextBernoulli(FailProbs[Bug % 3]))
        Report.Failed = true;
    }

    auto normalize = [](std::vector<std::pair<uint32_t, uint32_t>> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end(),
                          [](const auto &A, const auto &B) {
                            return A.first == B.first;
                          }),
              V.end());
    };
    normalize(SitesSeen);
    normalize(PredsTrue);
    Report.Counts.SiteObservations = std::move(SitesSeen);
    Report.Counts.TruePredicates = std::move(PredsTrue);
    World.Reports.add(std::move(Report));
  }
  return World;
}

const SyntheticWorld &worldFor(int64_t Scale) {
  static std::map<int64_t, SyntheticWorld> Cache;
  auto It = Cache.find(Scale);
  if (It == Cache.end())
    It = Cache
             .emplace(Scale,
                      buildWorld(static_cast<size_t>(Scale) * 1000,
                                 static_cast<size_t>(Scale) * 500, 200))
             .first;
  return It->second;
}

// --- Engine comparison at the paper's 32,000-run scale --------------------

double runEngineMs(const SyntheticWorld &World, DiscardPolicy Policy,
                   AnalysisEngine Engine, const InvertedIndex *SharedIndex,
                   AnalysisResult &Result) {
  AnalysisOptions Options;
  Options.Policy = Policy;
  Options.Engine = Engine;
  Options.ComputeAffinity = true;
  Options.SharedIndex = SharedIndex;
  CauseIsolator Isolator(World.Sites, World.Reports, Options);
  auto Start = std::chrono::steady_clock::now();
  Result = Isolator.run();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

// --- v1 text vs. SBI-CORPUS v2 size and ingestion throughput --------------

struct CorpusBenchResult {
  uint64_t V1Bytes = 0;
  uint64_t V2Bytes = 0;
  size_t Shards = 0;
  double V1ParseMs = 0.0;
  double V2Ingest1Ms = 0.0; // single ingestion thread
  double V2IngestNMs = 0.0; // one thread per core
  size_t IngestThreads = 1;
  bool Ok = false;
};

/// Serializes \p World's reports both ways — the v1 text format parsed via
/// ReportSet::deserialize, and an SBI-CORPUS v2 shard directory streamed
/// via ingestCorpus — and measures file size plus ingestion throughput of
/// each. The corpus lands in a scratch directory that is removed
/// afterwards.
CorpusBenchResult corpusComparison(const SyntheticWorld &World) {
  CorpusBenchResult R;

  std::string V1 = World.Reports.serialize();
  R.V1Bytes = V1.size();

  auto Start = std::chrono::steady_clock::now();
  ReportSet Parsed;
  if (!ReportSet::deserialize(V1, Parsed)) {
    std::fprintf(stderr, "perf_analysis: v1 reparse failed\n");
    return R;
  }
  auto End = std::chrono::steady_clock::now();
  R.V1ParseMs = std::chrono::duration<double, std::milli>(End - Start).count();

  std::string Dir = (std::filesystem::temp_directory_path() /
                     "sbi-perf-analysis-corpus")
                        .string();
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec);
  std::string Error;
  if (!writeCorpus(World.Reports, Dir, /*ReportsPerShard=*/4096, Error)) {
    std::fprintf(stderr, "perf_analysis: writeCorpus: %s\n", Error.c_str());
    return R;
  }
  for (const std::string &Shard : listCorpusShards(Dir)) {
    R.V2Bytes += std::filesystem::file_size(Shard, Ec);
    ++R.Shards;
  }

  R.IngestThreads = std::max<size_t>(1, std::thread::hardware_concurrency());
  auto ingestMs = [&](size_t Threads, double &OutMs) {
    RunProfiles Runs;
    CorpusIngestStats Stats;
    if (!ingestCorpus(Dir, Runs, Threads, Error, &Stats)) {
      std::fprintf(stderr, "perf_analysis: ingestCorpus: %s\n",
                   Error.c_str());
      return false;
    }
    OutMs = Stats.Seconds * 1000.0;
    return Runs.size() == World.Reports.size();
  };
  R.Ok = ingestMs(1, R.V2Ingest1Ms) && ingestMs(R.IngestThreads, R.V2IngestNMs);
  std::filesystem::remove_all(Dir, Ec);

  auto MBps = [](uint64_t Bytes, double Ms) {
    return Ms > 0.0 ? (static_cast<double>(Bytes) / 1e6) / (Ms / 1000.0) : 0.0;
  };
  std::printf("# corpus formats, %zu reports\n", World.Reports.size());
  std::printf("v1 text    %9.1f MB   parse  %8.1f ms   %7.1f MB/s\n",
              static_cast<double>(R.V1Bytes) / 1e6, R.V1ParseMs,
              MBps(R.V1Bytes, R.V1ParseMs));
  std::printf("v2 corpus  %9.1f MB   ingest %8.1f ms   %7.1f MB/s   "
              "(1 thread, %zu shards)\n",
              static_cast<double>(R.V2Bytes) / 1e6, R.V2Ingest1Ms,
              MBps(R.V2Bytes, R.V2Ingest1Ms), R.Shards);
  std::printf("v2 corpus  %9.1f MB   ingest %8.1f ms   %7.1f MB/s   "
              "(%zu threads)\n",
              static_cast<double>(R.V2Bytes) / 1e6, R.V2IngestNMs,
              MBps(R.V2Bytes, R.V2IngestNMs), R.IngestThreads);
  std::printf("v2/v1 size %.3f\n", R.V1Bytes ? static_cast<double>(R.V2Bytes) /
                                                   static_cast<double>(R.V1Bytes)
                                             : 0.0);
  return R;
}

/// Times elimination + affinity under both engines for every policy,
/// checks bit-identical results, prints a table, and writes
/// BENCH_analysis.json. Returns false if any policy's results diverge.
bool engineComparison() {
  constexpr size_t NumRuns = 32000;
  std::printf("# engine comparison: elimination + affinity, %zu runs\n",
              NumRuns);
  SyntheticWorld World =
      buildWorld(/*NumSitesTarget=*/4000, NumRuns, /*TruePredsPerRun=*/200,
                 /*NumBugs=*/32);
  std::printf("# %u sites, %u predicates, %zu failing runs\n",
              World.Sites.numSites(), World.Sites.numPredicates(),
              World.Reports.numFailing());

  // The index depends only on the report set, so a tool comparing policies
  // (or re-analyzing as reports stream in) builds it once; time it
  // separately from the per-policy elimination + affinity phase.
  auto BuildStart = std::chrono::steady_clock::now();
  InvertedIndex Index = InvertedIndex::build(World.Reports);
  auto BuildEnd = std::chrono::steady_clock::now();
  double IndexBuildMs =
      std::chrono::duration<double, std::milli>(BuildEnd - BuildStart)
          .count();
  std::printf("# one-time index build: %.1f ms (%zu postings)\n",
              IndexBuildMs, Index.numPostings());

  const DiscardPolicy Policies[] = {DiscardPolicy::DiscardAllRuns,
                                    DiscardPolicy::DiscardFailingRuns,
                                    DiscardPolicy::RelabelFailingRuns};
  struct Row {
    const char *Policy;
    double RescanMs;
    double IncrementalMs;
    size_t Selections;
    bool Identical;
  };
  std::vector<Row> Rows;
  bool AllIdentical = true;
  double TotalRescan = 0.0, TotalIncremental = 0.0;
  for (DiscardPolicy Policy : Policies) {
    AnalysisResult Rescan, Incremental;
    double RescanMs =
        runEngineMs(World, Policy, AnalysisEngine::Rescan, nullptr, Rescan);
    double IncrementalMs = runEngineMs(
        World, Policy, AnalysisEngine::Incremental, &Index, Incremental);
    bool Identical = bitIdentical(Rescan, Incremental);
    AllIdentical = AllIdentical && Identical;
    TotalRescan += RescanMs;
    TotalIncremental += IncrementalMs;
    Rows.push_back({discardPolicyName(Policy), RescanMs, IncrementalMs,
                    Rescan.Selected.size(), Identical});
    std::printf("%-22s rescan %9.1f ms   incremental %8.1f ms   %5.1fx   "
                "%zu selected   results %s\n",
                discardPolicyName(Policy), RescanMs, IncrementalMs,
                RescanMs / IncrementalMs, Rescan.Selected.size(),
                Identical ? "identical" : "DIVERGED");
  }
  std::printf("%-22s rescan %9.1f ms   incremental %8.1f ms   %5.1fx\n",
              "total", TotalRescan, TotalIncremental,
              TotalRescan / TotalIncremental);
  std::printf("%-22s rescan %9.1f ms   incremental %8.1f ms   %5.1fx\n",
              "total incl. build", TotalRescan,
              TotalIncremental + IndexBuildMs,
              TotalRescan / (TotalIncremental + IndexBuildMs));
  std::printf("\n");

  CorpusBenchResult Corpus = corpusComparison(World);
  AllIdentical = AllIdentical && Corpus.Ok;

  // One extra pass with telemetry on — outside every timed loop, so the
  // numbers above measure the untouched (telemetry-off) hot path — to
  // collect the analysis phase breakdown embedded in the JSON artifact.
  Telemetry::setEnabled(true);
  {
    AnalysisResult Instrumented;
    runEngineMs(World, DiscardPolicy::DiscardAllRuns,
                AnalysisEngine::Incremental, &Index, Instrumented);
  }
  Telemetry::setEnabled(false);
  std::string TelemetryJson = Telemetry::toJson();

  FILE *Json = std::fopen("BENCH_analysis.json", "w");
  if (!Json) {
    std::fprintf(stderr, "perf_analysis: cannot write BENCH_analysis.json\n");
    return false;
  }
  std::fprintf(Json, "{\n  \"bench\": \"perf_analysis.engine_comparison\",\n");
  std::fprintf(Json, "  \"runs\": %zu,\n  \"sites\": %u,\n", NumRuns,
               World.Sites.numSites());
  std::fprintf(Json, "  \"predicates\": %u,\n  \"failing_runs\": %zu,\n",
               World.Sites.numPredicates(), World.Reports.numFailing());
  std::fprintf(Json, "  \"index_build_ms\": %.3f,\n", IndexBuildMs);
  std::fprintf(Json, "  \"policies\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(Json,
                 "    {\"policy\": \"%s\", \"rescan_ms\": %.3f, "
                 "\"incremental_ms\": %.3f, \"speedup\": %.3f, "
                 "\"selections\": %zu, \"bit_identical\": %s}%s\n",
                 R.Policy, R.RescanMs, R.IncrementalMs,
                 R.RescanMs / R.IncrementalMs, R.Selections,
                 R.Identical ? "true" : "false",
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Json, "  ],\n");
  std::fprintf(Json,
               "  \"total_rescan_ms\": %.3f,\n"
               "  \"total_incremental_ms\": %.3f,\n"
               "  \"total_incremental_plus_build_ms\": %.3f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"speedup_incl_build\": %.3f,\n",
               TotalRescan, TotalIncremental, TotalIncremental + IndexBuildMs,
               TotalRescan / TotalIncremental,
               TotalRescan / (TotalIncremental + IndexBuildMs));
  std::fprintf(Json,
               "  \"corpus\": {\"reports\": %zu, \"v1_bytes\": %llu, "
               "\"v2_bytes\": %llu, \"v2_shards\": %zu, "
               "\"v1_parse_ms\": %.3f, \"v2_ingest_1t_ms\": %.3f, "
               "\"v2_ingest_ms\": %.3f, \"ingest_threads\": %zu},\n",
               World.Reports.size(),
               static_cast<unsigned long long>(Corpus.V1Bytes),
               static_cast<unsigned long long>(Corpus.V2Bytes), Corpus.Shards,
               Corpus.V1ParseMs, Corpus.V2Ingest1Ms, Corpus.V2IngestNMs,
               Corpus.IngestThreads);
  std::fprintf(Json, "  \"telemetry\": ");
  std::fwrite(TelemetryJson.data(), 1, TelemetryJson.size(), Json);
  std::fprintf(Json, "\n}\n");
  std::fclose(Json);
  std::printf("# wrote BENCH_analysis.json\n\n");
  return AllIdentical;
}

// --- google-benchmark micro-benches ---------------------------------------

void BM_Aggregation(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  RunView View = RunView::allOf(World.Reports);
  for (auto _ : State) {
    Aggregates Agg = Aggregates::compute(World.Reports, View);
    benchmark::DoNotOptimize(Agg.numFailing());
  }
  State.counters["preds"] =
      static_cast<double>(World.Sites.numPredicates());
  State.counters["runs"] = static_cast<double>(World.Reports.size());
}

void BM_IndexBuild(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  for (auto _ : State) {
    InvertedIndex Index = InvertedIndex::build(World.Reports);
    benchmark::DoNotOptimize(Index.numPostings());
  }
  State.counters["runs"] = static_cast<double>(World.Reports.size());
}

void BM_Pruning(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  CauseIsolator Isolator(World.Sites, World.Reports);
  for (auto _ : State) {
    auto Survivors = Isolator.prune();
    benchmark::DoNotOptimize(Survivors.size());
  }
}

void eliminationBench(benchmark::State &State, AnalysisEngine Engine) {
  const SyntheticWorld &World = worldFor(State.range(0));
  AnalysisOptions Options;
  Options.ComputeAffinity = false;
  Options.Engine = Engine;
  CauseIsolator Isolator(World.Sites, World.Reports, Options);
  for (auto _ : State) {
    AnalysisResult Result = Isolator.run();
    benchmark::DoNotOptimize(Result.Selected.size());
  }
}

void BM_FullEliminationRescan(benchmark::State &State) {
  eliminationBench(State, AnalysisEngine::Rescan);
}

void BM_FullEliminationIncremental(benchmark::State &State) {
  eliminationBench(State, AnalysisEngine::Incremental);
}

} // namespace

BENCHMARK(BM_Aggregation)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_IndexBuild)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_Pruning)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_FullEliminationRescan)->Arg(1)->Arg(4);
BENCHMARK(BM_FullEliminationIncremental)->Arg(1)->Arg(4);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  bool Identical = engineComparison();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return Identical ? 0 : 1;
}
