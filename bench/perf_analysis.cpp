//===- bench/perf_analysis.cpp - Analysis scalability ----------------------===//
//
// The paper's title claim is scalability: the Increase test plus iterative
// elimination must digest feedback from hundreds of thousands of
// predicates over tens of thousands of runs. This binary does three
// things:
//
//   1. An engine comparison at the paper's 32,000-run scale and at one
//      million runs: the full elimination + affinity phase under all three
//      Section 5 discard policies, with the reference rescan engine, the
//      inverted-index/delta engine, and the dense bit-matrix engine,
//      verifying bit-identical results and writing machine-readable
//      timings to BENCH_analysis.json. The million-run population is
//      generated straight into RunProfiles — no ReportSet is ever
//      materialized at that scale.
//
//   2. google-benchmark micro-benches of the analysis stages (aggregation,
//      index/bitset build, pruning, elimination) on synthetic report sets
//      of varying size, covering all engines.
//
//   3. `--smoke`: a fast three-engine agreement check (no JSON, no micro
//      benches) for CI — exits non-zero if any engine pair diverges.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "core/BitMatrix.h"
#include "core/InvertedIndex.h"
#include "feedback/Corpus.h"
#include "feedback/Report.h"
#include "instrument/Sites.h"
#include "lang/Sema.h"
#include "obs/Telemetry.h"
#include "obs/Tracer.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string_view>
#include <thread>

using namespace sbi;

namespace {

/// Builds a synthetic world: a trivial program whose site table is
/// irrelevant except for predicate->site structure, plus reports drawn
/// from a planted multi-bug model.
struct SyntheticWorld {
  std::unique_ptr<Program> Prog;
  SiteTable Sites;
  ReportSet Reports;
};

/// A tiny MicroC program with enough assignments to mint the requested
/// number of six-way sites.
std::unique_ptr<Program> syntheticProgram(size_t NumSites) {
  std::string Source = "fn main() {\n  int a = 1;\n";
  // Each additional assignment pairs with all previously declared ints and
  // the function's constants, so sites grow quadratically; generate until
  // the estimate is met.
  size_t Vars = 1;
  size_t SitesMinted = 0;
  while (SitesMinted < NumSites && Vars < 2000) {
    Source += "  int v" + std::to_string(Vars) + " = " +
              std::to_string(Vars % 7) + ";\n";
    SitesMinted += Vars + 6; // pair vars + capped constants, approximate
    ++Vars;
  }
  Source += "  println(a);\n}\n";
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  assert(Prog && "synthetic program must compile");
  return Prog;
}

SyntheticWorld buildWorld(size_t NumSitesTarget, size_t NumRuns,
                          size_t TruePredsPerRun, size_t NumBugs = 2) {
  SyntheticWorld World;
  World.Prog = syntheticProgram(NumSitesTarget);
  World.Sites = SiteTable::build(*World.Prog);

  uint32_t NumSites = World.Sites.numSites();
  uint32_t NumPreds = World.Sites.numPredicates();
  World.Reports = ReportSet(NumSites, NumPreds);

  Rng R(0xabcdefULL);
  // NumBugs planted bugs, each predicted by one dedicated site, with
  // trigger rates and failure probabilities cycling over an order of
  // magnitude so the elimination loop has a long tail of selections.
  const double TriggerRates[] = {0.02, 0.012, 0.008, 0.005, 0.003};
  const double FailProbs[] = {0.9, 0.8, 0.7};
  std::vector<uint32_t> BugSites(NumBugs);
  for (size_t Bug = 0; Bug < NumBugs; ++Bug)
    BugSites[Bug] = static_cast<uint32_t>(
        (Bug * static_cast<size_t>(NumSites)) / NumBugs);

  for (size_t Run = 0; Run < NumRuns; ++Run) {
    FeedbackReport Report;
    std::vector<std::pair<uint32_t, uint32_t>> SitesSeen;
    std::vector<std::pair<uint32_t, uint32_t>> PredsTrue;
    for (size_t K = 0; K < TruePredsPerRun; ++K) {
      uint32_t Site = static_cast<uint32_t>(R.nextBelow(NumSites));
      SitesSeen.emplace_back(Site, 1);
      const SiteInfo &Info = World.Sites.site(Site);
      uint32_t Pred =
          Info.FirstPredicate +
          static_cast<uint32_t>(R.nextBelow(Info.NumPredicates));
      PredsTrue.emplace_back(Pred, 1);
    }
    for (size_t Bug = 0; Bug < NumBugs; ++Bug) {
      if (!R.nextBernoulli(TriggerRates[Bug % 5]))
        continue;
      SitesSeen.emplace_back(BugSites[Bug], 1);
      PredsTrue.emplace_back(World.Sites.site(BugSites[Bug]).FirstPredicate,
                             1);
      if (R.nextBernoulli(FailProbs[Bug % 3]))
        Report.Failed = true;
    }

    auto normalize = [](std::vector<std::pair<uint32_t, uint32_t>> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end(),
                          [](const auto &A, const auto &B) {
                            return A.first == B.first;
                          }),
              V.end());
    };
    normalize(SitesSeen);
    normalize(PredsTrue);
    Report.Counts.SiteObservations = std::move(SitesSeen);
    Report.Counts.TruePredicates = std::move(PredsTrue);
    World.Reports.add(std::move(Report));
  }
  return World;
}

/// The same planted-bug model streamed straight into the compact CSR
/// store: at a million runs a ReportSet would cost gigabytes of per-report
/// vector overhead that the analysis never looks at. \p TriggerScale
/// scales the bug trigger rates down so the failing fraction (and with it
/// the bitset engine's failing-column matrix) stays realistic as the run
/// count grows.
RunProfiles buildProfilesWorld(const SiteTable &Sites, size_t NumRuns,
                               size_t TruePredsPerRun, size_t NumBugs,
                               double TriggerScale) {
  uint32_t NumSites = Sites.numSites();
  RunProfiles Runs(NumSites, Sites.numPredicates());
  Runs.reserveRuns(NumRuns);

  Rng R(0xabcdefULL);
  const double TriggerRates[] = {0.02, 0.012, 0.008, 0.005, 0.003};
  const double FailProbs[] = {0.9, 0.8, 0.7};
  std::vector<uint32_t> BugSites(NumBugs);
  for (size_t Bug = 0; Bug < NumBugs; ++Bug)
    BugSites[Bug] = static_cast<uint32_t>(
        (Bug * static_cast<size_t>(NumSites)) / NumBugs);

  std::vector<uint32_t> SitesSeen, PredsTrue;
  for (size_t Run = 0; Run < NumRuns; ++Run) {
    SitesSeen.clear();
    PredsTrue.clear();
    bool Failed = false;
    for (size_t K = 0; K < TruePredsPerRun; ++K) {
      uint32_t Site = static_cast<uint32_t>(R.nextBelow(NumSites));
      SitesSeen.push_back(Site);
      const SiteInfo &Info = Sites.site(Site);
      PredsTrue.push_back(Info.FirstPredicate +
                          static_cast<uint32_t>(
                              R.nextBelow(Info.NumPredicates)));
    }
    for (size_t Bug = 0; Bug < NumBugs; ++Bug) {
      if (!R.nextBernoulli(TriggerRates[Bug % 5] * TriggerScale))
        continue;
      SitesSeen.push_back(BugSites[Bug]);
      PredsTrue.push_back(Sites.site(BugSites[Bug]).FirstPredicate);
      if (R.nextBernoulli(FailProbs[Bug % 3]))
        Failed = true;
    }
    auto normalize = [](std::vector<uint32_t> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end()), V.end());
    };
    normalize(SitesSeen);
    normalize(PredsTrue);
    Runs.beginRun(Failed);
    for (uint32_t Site : SitesSeen)
      Runs.addSite(Site);
    for (uint32_t Pred : PredsTrue)
      Runs.addPred(Pred);
  }
  return Runs;
}

const SyntheticWorld &worldFor(int64_t Scale) {
  static std::map<int64_t, SyntheticWorld> Cache;
  auto It = Cache.find(Scale);
  if (It == Cache.end())
    It = Cache
             .emplace(Scale,
                      buildWorld(static_cast<size_t>(Scale) * 1000,
                                 static_cast<size_t>(Scale) * 500, 200))
             .first;
  return It->second;
}

// --- Engine comparison ------------------------------------------------------

double engineMs(const SiteTable &Sites, const RunProfiles &Runs,
                DiscardPolicy Policy, AnalysisEngine Engine,
                const InvertedIndex *SharedIndex,
                const BitsetIndex *SharedBitset, AnalysisResult &Result) {
  AnalysisOptions Options;
  Options.Policy = Policy;
  Options.Engine = Engine;
  Options.ComputeAffinity = true;
  Options.SharedIndex = SharedIndex;
  Options.SharedBitset = SharedBitset;
  CauseIsolator Isolator(Sites, Runs, Options);
  auto Start = std::chrono::steady_clock::now();
  Result = Isolator.run();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

struct PolicyRow {
  const char *Policy = "";
  double RescanMs = 0.0;
  double IncrementalMs = 0.0;
  double BitsetMs = 0.0;
  size_t Selections = 0;
  bool Identical = true;
};

struct ScaleResult {
  const char *Name = "";
  size_t Runs = 0;
  uint32_t Sites = 0;
  uint32_t Preds = 0;
  size_t Failing = 0;
  size_t Postings = 0;
  double IndexBuildMs = 0.0;
  double BitsetBuildMs = 0.0;
  size_t BitsetBytes = 0;
  std::vector<PolicyRow> Rows;
  double TotalRescan = 0.0;
  double TotalIncremental = 0.0;
  double TotalBitset = 0.0;
  bool AllIdentical = true;

  /// Elimination + per-policy aggregation only (the builds are shared
  /// across policies and reported separately).
  double speedup() const { return TotalIncremental / TotalBitset; }
  /// One-shot cost including each engine's one-time build.
  double speedupInclBuild() const {
    return (TotalIncremental + IndexBuildMs) / (TotalBitset + BitsetBuildMs);
  }
};

/// Times elimination + affinity under all three engines for every policy
/// over one run population, checking that every engine pair is
/// bit-identical. Both shared build products are timed separately — a tool
/// comparing policies (or re-analyzing as reports stream in) pays each
/// build once.
ScaleResult compareEngines(const char *Name, const SiteTable &Sites,
                           const RunProfiles &Runs) {
  ScaleResult R;
  R.Name = Name;
  R.Runs = Runs.size();
  R.Sites = Sites.numSites();
  R.Preds = Sites.numPredicates();
  R.Failing = Runs.numFailing();
  R.Postings = Runs.numPostings();
  std::printf("# scale %s: %zu runs, %u sites, %u predicates, %zu failing, "
              "%zu postings\n",
              Name, R.Runs, R.Sites, R.Preds, R.Failing, R.Postings);

  auto Start = std::chrono::steady_clock::now();
  InvertedIndex Index = InvertedIndex::build(Runs);
  auto End = std::chrono::steady_clock::now();
  R.IndexBuildMs =
      std::chrono::duration<double, std::milli>(End - Start).count();

  Start = std::chrono::steady_clock::now();
  BitsetIndex Bitset = BitsetIndex::build(Runs, Sites);
  End = std::chrono::steady_clock::now();
  R.BitsetBuildMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  R.BitsetBytes = Bitset.matrixBytes();
  std::printf("# one-time builds: inverted index %.1f ms, bit-matrices "
              "%.1f ms (%.1f MB)\n",
              R.IndexBuildMs, R.BitsetBuildMs,
              static_cast<double>(R.BitsetBytes) / 1e6);
  std::fflush(stdout);

  const DiscardPolicy Policies[] = {DiscardPolicy::DiscardAllRuns,
                                    DiscardPolicy::DiscardFailingRuns,
                                    DiscardPolicy::RelabelFailingRuns};
  for (DiscardPolicy Policy : Policies) {
    PolicyRow Row;
    Row.Policy = discardPolicyName(Policy);
    AnalysisResult Rescan, Incremental, BitsetResult;
    Row.RescanMs = engineMs(Sites, Runs, Policy, AnalysisEngine::Rescan,
                            nullptr, nullptr, Rescan);
    Row.IncrementalMs =
        engineMs(Sites, Runs, Policy, AnalysisEngine::Incremental, &Index,
                 nullptr, Incremental);
    Row.BitsetMs = engineMs(Sites, Runs, Policy, AnalysisEngine::Bitset,
                            nullptr, &Bitset, BitsetResult);
    Row.Selections = Rescan.Selected.size();
    Row.Identical = bitIdentical(Rescan, Incremental) &&
                    bitIdentical(Rescan, BitsetResult);
    R.AllIdentical = R.AllIdentical && Row.Identical;
    R.TotalRescan += Row.RescanMs;
    R.TotalIncremental += Row.IncrementalMs;
    R.TotalBitset += Row.BitsetMs;
    std::printf("%-22s rescan %9.1f ms   incremental %8.1f ms   bitset "
                "%8.1f ms   %5.1fx   %zu selected   results %s\n",
                Row.Policy, Row.RescanMs, Row.IncrementalMs, Row.BitsetMs,
                Row.IncrementalMs / Row.BitsetMs, Row.Selections,
                Row.Identical ? "identical" : "DIVERGED");
    std::fflush(stdout);
    R.Rows.push_back(Row);
  }
  std::printf("%-22s rescan %9.1f ms   incremental %8.1f ms   bitset "
              "%8.1f ms   %5.1fx  (incremental/bitset)\n",
              "total", R.TotalRescan, R.TotalIncremental, R.TotalBitset,
              R.speedup());
  std::printf("%-22s                    incremental %8.1f ms   bitset "
              "%8.1f ms   %5.1fx  (incremental/bitset)\n",
              "total incl. build", R.TotalIncremental + R.IndexBuildMs,
              R.TotalBitset + R.BitsetBuildMs, R.speedupInclBuild());
  std::printf("\n");
  return R;
}

void emitScaleJson(FILE *Json, const ScaleResult &R, bool Last) {
  std::fprintf(Json,
               "    {\n"
               "      \"name\": \"%s\",\n"
               "      \"runs\": %zu,\n"
               "      \"sites\": %u,\n"
               "      \"predicates\": %u,\n"
               "      \"failing_runs\": %zu,\n"
               "      \"postings\": %zu,\n"
               "      \"index_build_ms\": %.3f,\n"
               "      \"bitset_build_ms\": %.3f,\n"
               "      \"bitset_matrix_bytes\": %zu,\n"
               "      \"policies\": [\n",
               R.Name, R.Runs, R.Sites, R.Preds, R.Failing, R.Postings,
               R.IndexBuildMs, R.BitsetBuildMs, R.BitsetBytes);
  for (size_t I = 0; I < R.Rows.size(); ++I) {
    const PolicyRow &Row = R.Rows[I];
    std::fprintf(Json,
                 "        {\"policy\": \"%s\", \"rescan_ms\": %.3f, "
                 "\"incremental_ms\": %.3f, \"bitset_ms\": %.3f, "
                 "\"selections\": %zu, \"bit_identical\": %s}%s\n",
                 Row.Policy, Row.RescanMs, Row.IncrementalMs, Row.BitsetMs,
                 Row.Selections, Row.Identical ? "true" : "false",
                 I + 1 < R.Rows.size() ? "," : "");
  }
  std::fprintf(Json,
               "      ],\n"
               "      \"total_rescan_ms\": %.3f,\n"
               "      \"total_incremental_ms\": %.3f,\n"
               "      \"total_bitset_ms\": %.3f,\n"
               "      \"speedup\": %.3f,\n"
               "      \"speedup_incl_build\": %.3f\n"
               "    }%s\n",
               R.TotalRescan, R.TotalIncremental, R.TotalBitset, R.speedup(),
               R.speedupInclBuild(), Last ? "" : ",");
}

// --- v1 text vs. SBI-CORPUS v2 size and ingestion throughput --------------

struct CorpusBenchResult {
  uint64_t V1Bytes = 0;
  uint64_t V2Bytes = 0;
  size_t Shards = 0;
  double V1ParseMs = 0.0;
  double V2Ingest1Ms = 0.0; // single ingestion thread
  double V2IngestNMs = 0.0; // one thread per core
  size_t IngestThreads = 1;
  bool Ok = false;
};

/// Serializes \p World's reports both ways — the v1 text format parsed via
/// ReportSet::deserialize, and an SBI-CORPUS v2 shard directory streamed
/// via ingestCorpus — and measures file size plus ingestion throughput of
/// each. The corpus lands in a scratch directory that is removed
/// afterwards.
CorpusBenchResult corpusComparison(const SyntheticWorld &World) {
  CorpusBenchResult R;

  std::string V1 = World.Reports.serialize();
  R.V1Bytes = V1.size();

  auto Start = std::chrono::steady_clock::now();
  ReportSet Parsed;
  if (!ReportSet::deserialize(V1, Parsed)) {
    std::fprintf(stderr, "perf_analysis: v1 reparse failed\n");
    return R;
  }
  auto End = std::chrono::steady_clock::now();
  R.V1ParseMs = std::chrono::duration<double, std::milli>(End - Start).count();

  std::string Dir = (std::filesystem::temp_directory_path() /
                     "sbi-perf-analysis-corpus")
                        .string();
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec);
  std::string Error;
  if (!writeCorpus(World.Reports, Dir, /*ReportsPerShard=*/4096, Error)) {
    std::fprintf(stderr, "perf_analysis: writeCorpus: %s\n", Error.c_str());
    return R;
  }
  for (const std::string &Shard : listCorpusShards(Dir)) {
    R.V2Bytes += std::filesystem::file_size(Shard, Ec);
    ++R.Shards;
  }

  R.IngestThreads = std::max<size_t>(1, std::thread::hardware_concurrency());
  auto ingestMs = [&](size_t Threads, double &OutMs) {
    RunProfiles Runs;
    CorpusIngestStats Stats;
    if (!ingestCorpus(Dir, Runs, Threads, Error, &Stats)) {
      std::fprintf(stderr, "perf_analysis: ingestCorpus: %s\n",
                   Error.c_str());
      return false;
    }
    OutMs = Stats.Seconds * 1000.0;
    return Runs.size() == World.Reports.size();
  };
  R.Ok = ingestMs(1, R.V2Ingest1Ms) && ingestMs(R.IngestThreads, R.V2IngestNMs);
  std::filesystem::remove_all(Dir, Ec);

  auto MBps = [](uint64_t Bytes, double Ms) {
    return Ms > 0.0 ? (static_cast<double>(Bytes) / 1e6) / (Ms / 1000.0) : 0.0;
  };
  std::printf("# corpus formats, %zu reports\n", World.Reports.size());
  std::printf("v1 text    %9.1f MB   parse  %8.1f ms   %7.1f MB/s\n",
              static_cast<double>(R.V1Bytes) / 1e6, R.V1ParseMs,
              MBps(R.V1Bytes, R.V1ParseMs));
  std::printf("v2 corpus  %9.1f MB   ingest %8.1f ms   %7.1f MB/s   "
              "(1 thread, %zu shards)\n",
              static_cast<double>(R.V2Bytes) / 1e6, R.V2Ingest1Ms,
              MBps(R.V2Bytes, R.V2Ingest1Ms), R.Shards);
  std::printf("v2 corpus  %9.1f MB   ingest %8.1f ms   %7.1f MB/s   "
              "(%zu threads)\n",
              static_cast<double>(R.V2Bytes) / 1e6, R.V2IngestNMs,
              MBps(R.V2Bytes, R.V2IngestNMs), R.IngestThreads);
  std::printf("v2/v1 size %.3f\n", R.V1Bytes ? static_cast<double>(R.V2Bytes) /
                                                   static_cast<double>(R.V1Bytes)
                                             : 0.0);
  return R;
}

// --- Tracing overhead ------------------------------------------------------

struct TracingBenchResult {
  double OffMs = 0.0;
  double OnMs = 0.0;
  double OverheadPct = 0.0;
  uint64_t Events = 0;
};

/// The flight recorder's cost contract: zero when disabled (the spans
/// compile to one relaxed load and branch), under 2% when enabled at the
/// analysis layer's span rate. Runs the bitset elimination over the 32k
/// world with tracing off, then on, and reports the relative delta.
TracingBenchResult tracingOverhead(const SiteTable &Sites,
                                   const RunProfiles &Runs) {
  TracingBenchResult R;
  const int Reps = 5;
  auto oneMs = [&] {
    AnalysisResult Result;
    return engineMs(Sites, Runs, DiscardPolicy::DiscardAllRuns,
                    AnalysisEngine::Bitset, nullptr, nullptr, Result);
  };
  oneMs(); // Warm caches so off/on see the same machine state.
  // Interleave off/on reps (a monotone warm-up drift would otherwise
  // bias whichever mode runs second) and keep the minimum of each —
  // the least-disturbed observation — rather than a noise-averaged mean.
  double OffMin = 0.0, OnMin = 0.0;
  for (int I = 0; I < Reps; ++I) {
    double Off = oneMs();
    Tracer::setEnabled(true);
    double On = oneMs();
    Tracer::setEnabled(false);
    if (I == 0 || Off < OffMin)
      OffMin = Off;
    if (I == 0 || On < OnMin)
      OnMin = On;
  }
  R.OffMs = OffMin;
  R.OnMs = OnMin;
  R.Events = Tracer::instance().recordedTotal();
  Tracer::instance().reset();
  R.OverheadPct =
      R.OffMs > 0.0 ? 100.0 * (R.OnMs - R.OffMs) / R.OffMs : 0.0;
  std::printf("# tracing overhead (bitset elimination, 32k runs): "
              "off %.1f ms, on %.1f ms, %+.2f%% (%llu events)\n\n",
              R.OffMs, R.OnMs, R.OverheadPct,
              static_cast<unsigned long long>(R.Events));
  return R;
}

/// The full comparison: both scales, the corpus formats, one instrumented
/// pass for the phase breakdown, then BENCH_analysis.json. Returns false
/// if any engine pair diverged at any scale.
bool engineComparison() {
  // --- The paper's 32,000-run scale (in-memory ReportSet world). --------
  std::printf("# engine comparison: elimination + affinity\n");
  CorpusBenchResult Corpus;
  TracingBenchResult Tracing;
  std::string TelemetryJson;
  ScaleResult Scale32k;
  {
    SyntheticWorld World = buildWorld(/*NumSitesTarget=*/4000,
                                      /*NumRuns=*/32000,
                                      /*TruePredsPerRun=*/200,
                                      /*NumBugs=*/32);
    RunProfiles Runs = RunProfiles::fromReports(World.Reports);
    Scale32k = compareEngines("32k", World.Sites, Runs);

    Corpus = corpusComparison(World);

    Tracing = tracingOverhead(World.Sites, Runs);

    // One extra pass with telemetry on — outside every timed loop, so the
    // numbers above measure the untouched (telemetry-off) hot path — to
    // collect the analysis phase breakdown embedded in the JSON artifact.
    Telemetry::setEnabled(true);
    {
      AnalysisResult Instrumented;
      engineMs(World.Sites, Runs, DiscardPolicy::DiscardAllRuns,
               AnalysisEngine::Bitset, nullptr, nullptr, Instrumented);
    }
    Telemetry::setEnabled(false);
    TelemetryJson = Telemetry::toJson();
  } // The 32k ReportSet world frees here, before the million-run build.

  // --- One million runs, streamed straight into RunProfiles. ------------
  // Fewer sites than the 32k world (floods of runs, not floods of
  // predicates, are what this scale stresses) at the same ~200
  // observations-per-run feedback density, trigger rates scaled down so
  // ~3-4% of runs fail.
  ScaleResult Scale1M;
  {
    std::unique_ptr<Program> Prog = syntheticProgram(600);
    SiteTable Sites = SiteTable::build(*Prog);
    RunProfiles Runs = buildProfilesWorld(Sites, /*NumRuns=*/1000000,
                                          /*TruePredsPerRun=*/200,
                                          /*NumBugs=*/16,
                                          /*TriggerScale=*/0.25);
    Scale1M = compareEngines("1M", Sites, Runs);
  }

  bool AllIdentical =
      Scale32k.AllIdentical && Scale1M.AllIdentical && Corpus.Ok;

  FILE *Json = std::fopen("BENCH_analysis.json", "w");
  if (!Json) {
    std::fprintf(stderr, "perf_analysis: cannot write BENCH_analysis.json\n");
    return false;
  }
  std::fprintf(Json, "{\n  \"bench\": \"perf_analysis.engine_comparison\",\n");
  std::fprintf(Json, "  \"scales\": [\n");
  emitScaleJson(Json, Scale32k, /*Last=*/false);
  emitScaleJson(Json, Scale1M, /*Last=*/true);
  std::fprintf(Json, "  ],\n");
  std::fprintf(Json,
               "  \"corpus\": {\"reports\": %zu, \"v1_bytes\": %llu, "
               "\"v2_bytes\": %llu, \"v2_shards\": %zu, "
               "\"v1_parse_ms\": %.3f, \"v2_ingest_1t_ms\": %.3f, "
               "\"v2_ingest_ms\": %.3f, \"ingest_threads\": %zu},\n",
               static_cast<size_t>(Scale32k.Runs),
               static_cast<unsigned long long>(Corpus.V1Bytes),
               static_cast<unsigned long long>(Corpus.V2Bytes), Corpus.Shards,
               Corpus.V1ParseMs, Corpus.V2Ingest1Ms, Corpus.V2IngestNMs,
               Corpus.IngestThreads);
  std::fprintf(Json,
               "  \"tracing\": {\"off_ms\": %.3f, \"on_ms\": %.3f, "
               "\"overhead_pct\": %.3f, \"events\": %llu},\n",
               Tracing.OffMs, Tracing.OnMs, Tracing.OverheadPct,
               static_cast<unsigned long long>(Tracing.Events));
  std::fprintf(Json, "  \"telemetry\": ");
  std::fwrite(TelemetryJson.data(), 1, TelemetryJson.size(), Json);
  std::fprintf(Json, "\n}\n");
  std::fclose(Json);
  std::printf("# wrote BENCH_analysis.json\n\n");
  return AllIdentical;
}

/// `--smoke`: a minutes-not-hours CI gate — small population, all three
/// engines, all three policies, exit status reflects agreement.
bool smokeCheck() {
  std::printf("# smoke: three-engine agreement check\n");
  SyntheticWorld World = buildWorld(/*NumSitesTarget=*/800, /*NumRuns=*/4000,
                                    /*TruePredsPerRun=*/64, /*NumBugs=*/8);
  RunProfiles Runs = RunProfiles::fromReports(World.Reports);
  ScaleResult R = compareEngines("smoke", World.Sites, Runs);

  // The smoke artifact is what CI's benchdiff gate compares against
  // bench/baselines/BENCH_smoke.json; exact metrics (selections,
  // bit_identical) must not move, wall-clock ones get loose thresholds.
  FILE *Json = std::fopen("BENCH_smoke.json", "w");
  if (Json) {
    std::fprintf(Json, "{\n  \"bench\": \"perf_analysis.smoke\",\n");
    std::fprintf(Json, "  \"scales\": [\n");
    emitScaleJson(Json, R, /*Last=*/true);
    std::fprintf(Json, "  ],\n  \"all_identical\": %s\n}\n",
                 R.AllIdentical ? "true" : "false");
    std::fclose(Json);
    std::printf("# wrote BENCH_smoke.json\n");
  } else {
    std::fprintf(stderr, "perf_analysis: cannot write BENCH_smoke.json\n");
  }

  std::printf(R.AllIdentical ? "# smoke OK: all engines bit-identical\n"
                             : "# smoke FAILED: engines diverged\n");
  return R.AllIdentical;
}

// --- google-benchmark micro-benches ---------------------------------------

void BM_Aggregation(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  RunView View = RunView::allOf(World.Reports);
  for (auto _ : State) {
    Aggregates Agg = Aggregates::compute(World.Reports, View);
    benchmark::DoNotOptimize(Agg.numFailing());
  }
  State.counters["preds"] =
      static_cast<double>(World.Sites.numPredicates());
  State.counters["runs"] = static_cast<double>(World.Reports.size());
}

void BM_IndexBuild(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  for (auto _ : State) {
    InvertedIndex Index = InvertedIndex::build(World.Reports);
    benchmark::DoNotOptimize(Index.numPostings());
  }
  State.counters["runs"] = static_cast<double>(World.Reports.size());
}

void BM_BitsetBuild(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  RunProfiles Runs = RunProfiles::fromReports(World.Reports);
  for (auto _ : State) {
    BitsetIndex Index = BitsetIndex::build(Runs, World.Sites);
    benchmark::DoNotOptimize(Index.matrixBytes());
  }
  State.counters["runs"] = static_cast<double>(Runs.size());
}

void BM_Pruning(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  CauseIsolator Isolator(World.Sites, World.Reports);
  for (auto _ : State) {
    auto Survivors = Isolator.prune();
    benchmark::DoNotOptimize(Survivors.size());
  }
}

void eliminationBench(benchmark::State &State, AnalysisEngine Engine) {
  const SyntheticWorld &World = worldFor(State.range(0));
  AnalysisOptions Options;
  Options.ComputeAffinity = false;
  Options.Engine = Engine;
  CauseIsolator Isolator(World.Sites, World.Reports, Options);
  for (auto _ : State) {
    AnalysisResult Result = Isolator.run();
    benchmark::DoNotOptimize(Result.Selected.size());
  }
}

void BM_FullEliminationRescan(benchmark::State &State) {
  eliminationBench(State, AnalysisEngine::Rescan);
}

void BM_FullEliminationIncremental(benchmark::State &State) {
  eliminationBench(State, AnalysisEngine::Incremental);
}

void BM_FullEliminationBitset(benchmark::State &State) {
  eliminationBench(State, AnalysisEngine::Bitset);
}

} // namespace

BENCHMARK(BM_Aggregation)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_IndexBuild)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_BitsetBuild)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_Pruning)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_FullEliminationRescan)->Arg(1)->Arg(4);
BENCHMARK(BM_FullEliminationIncremental)->Arg(1)->Arg(4);
BENCHMARK(BM_FullEliminationBitset)->Arg(1)->Arg(4);

int main(int argc, char **argv) {
  // --smoke is ours, not google-benchmark's; strip it before Initialize.
  for (int I = 1; I < argc; ++I)
    if (std::string_view(argv[I]) == "--smoke")
      return smokeCheck() ? 0 : 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  bool Identical = engineComparison();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return Identical ? 0 : 1;
}
