//===- bench/perf_analysis.cpp - Analysis scalability ----------------------===//
//
// The paper's title claim is scalability: the Increase test plus iterative
// elimination must digest feedback from hundreds of thousands of
// predicates over tens of thousands of runs. This google-benchmark binary
// measures the three analysis stages on synthetic report sets of varying
// size:
//
//   aggregation  one pass of count aggregation (the inner loop of
//                everything else),
//   pruning      the Increase > 0 confidence test over all predicates,
//   elimination  the full iterative algorithm.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "feedback/Report.h"
#include "instrument/Sites.h"
#include "lang/Sema.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace sbi;

namespace {

/// Builds a synthetic world: a trivial program whose site table is
/// irrelevant except for predicate->site structure, plus reports drawn
/// from a planted two-bug model.
struct SyntheticWorld {
  std::unique_ptr<Program> Prog;
  SiteTable Sites;
  ReportSet Reports;
};

/// A tiny MicroC program with enough assignments to mint the requested
/// number of six-way sites.
std::unique_ptr<Program> syntheticProgram(size_t NumSites) {
  std::string Source = "fn main() {\n  int a = 1;\n";
  // Each additional assignment pairs with all previously declared ints and
  // the function's constants, so sites grow quadratically; generate until
  // the estimate is met.
  size_t Vars = 1;
  size_t SitesMinted = 0;
  while (SitesMinted < NumSites && Vars < 2000) {
    Source += "  int v" + std::to_string(Vars) + " = " +
              std::to_string(Vars % 7) + ";\n";
    SitesMinted += Vars + 6; // pair vars + capped constants, approximate
    ++Vars;
  }
  Source += "  println(a);\n}\n";
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  assert(Prog && "synthetic program must compile");
  return Prog;
}

SyntheticWorld buildWorld(size_t NumSitesTarget, size_t NumRuns,
                          size_t TruePredsPerRun) {
  SyntheticWorld World;
  World.Prog = syntheticProgram(NumSitesTarget);
  World.Sites = SiteTable::build(*World.Prog);

  uint32_t NumSites = World.Sites.numSites();
  uint32_t NumPreds = World.Sites.numPredicates();
  World.Reports = ReportSet(NumSites, NumPreds);

  Rng R(0xabcdefULL);
  // Two planted bugs, each predicted by one dedicated site.
  uint32_t BugSiteA = 0;
  uint32_t BugSiteB = NumSites / 2;
  for (size_t Run = 0; Run < NumRuns; ++Run) {
    FeedbackReport Report;
    bool BugA = R.nextBernoulli(0.08);
    bool BugB = R.nextBernoulli(0.03);
    Report.Failed = (BugA && R.nextBernoulli(0.9)) ||
                    (BugB && R.nextBernoulli(0.7));

    std::vector<std::pair<uint32_t, uint32_t>> SitesSeen;
    std::vector<std::pair<uint32_t, uint32_t>> PredsTrue;
    for (size_t K = 0; K < TruePredsPerRun; ++K) {
      uint32_t Site = static_cast<uint32_t>(R.nextBelow(NumSites));
      SitesSeen.emplace_back(Site, 1);
      const SiteInfo &Info = World.Sites.site(Site);
      uint32_t Pred =
          Info.FirstPredicate +
          static_cast<uint32_t>(R.nextBelow(Info.NumPredicates));
      PredsTrue.emplace_back(Pred, 1);
    }
    auto planted = [&](uint32_t Site) {
      SitesSeen.emplace_back(Site, 1);
      PredsTrue.emplace_back(World.Sites.site(Site).FirstPredicate, 1);
    };
    if (BugA)
      planted(BugSiteA);
    if (BugB)
      planted(BugSiteB);

    auto normalize = [](std::vector<std::pair<uint32_t, uint32_t>> &V) {
      std::sort(V.begin(), V.end());
      V.erase(std::unique(V.begin(), V.end(),
                          [](const auto &A, const auto &B) {
                            return A.first == B.first;
                          }),
              V.end());
    };
    normalize(SitesSeen);
    normalize(PredsTrue);
    Report.Counts.SiteObservations = std::move(SitesSeen);
    Report.Counts.TruePredicates = std::move(PredsTrue);
    World.Reports.add(std::move(Report));
  }
  return World;
}

const SyntheticWorld &worldFor(int64_t Scale) {
  static std::map<int64_t, SyntheticWorld> Cache;
  auto It = Cache.find(Scale);
  if (It == Cache.end())
    It = Cache
             .emplace(Scale,
                      buildWorld(static_cast<size_t>(Scale) * 1000,
                                 static_cast<size_t>(Scale) * 500, 200))
             .first;
  return It->second;
}

void BM_Aggregation(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  RunView View = RunView::allOf(World.Reports);
  for (auto _ : State) {
    Aggregates Agg = Aggregates::compute(World.Reports, View);
    benchmark::DoNotOptimize(Agg.numFailing());
  }
  State.counters["preds"] =
      static_cast<double>(World.Sites.numPredicates());
  State.counters["runs"] = static_cast<double>(World.Reports.size());
}

void BM_Pruning(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  CauseIsolator Isolator(World.Sites, World.Reports);
  for (auto _ : State) {
    auto Survivors = Isolator.prune();
    benchmark::DoNotOptimize(Survivors.size());
  }
}

void BM_FullElimination(benchmark::State &State) {
  const SyntheticWorld &World = worldFor(State.range(0));
  AnalysisOptions Options;
  Options.ComputeAffinity = false;
  CauseIsolator Isolator(World.Sites, World.Reports, Options);
  for (auto _ : State) {
    AnalysisResult Result = Isolator.run();
    benchmark::DoNotOptimize(Result.Selected.size());
  }
}

} // namespace

BENCHMARK(BM_Aggregation)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_Pruning)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_FullElimination)->Arg(1)->Arg(4);

BENCHMARK_MAIN();
