//===- tests/feedback/ReportTest.cpp - Feedback report tests --------------===//

#include "feedback/Report.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

FeedbackReport makeReport(bool Failed,
                          std::vector<std::pair<uint32_t, uint32_t>> Sites,
                          std::vector<std::pair<uint32_t, uint32_t>> Preds) {
  FeedbackReport Report;
  Report.Failed = Failed;
  Report.Counts.SiteObservations = std::move(Sites);
  Report.Counts.TruePredicates = std::move(Preds);
  return Report;
}

} // namespace

TEST(FeedbackReportTest, ObservedTrueBinarySearch) {
  FeedbackReport Report =
      makeReport(false, {{0, 1}}, {{3, 2}, {7, 1}, {100, 5}});
  EXPECT_TRUE(Report.observedTrue(3));
  EXPECT_TRUE(Report.observedTrue(7));
  EXPECT_TRUE(Report.observedTrue(100));
  EXPECT_FALSE(Report.observedTrue(0));
  EXPECT_FALSE(Report.observedTrue(5));
  EXPECT_FALSE(Report.observedTrue(101));
}

TEST(FeedbackReportTest, ZeroCountIsNotObservedTrue) {
  FeedbackReport Report = makeReport(false, {}, {{4, 0}});
  EXPECT_FALSE(Report.observedTrue(4));
}

TEST(FeedbackReportTest, SiteObserved) {
  FeedbackReport Report = makeReport(false, {{2, 3}, {9, 1}}, {});
  EXPECT_TRUE(Report.siteObserved(2));
  EXPECT_TRUE(Report.siteObserved(9));
  EXPECT_FALSE(Report.siteObserved(5));
}

TEST(FeedbackReportTest, BugMask) {
  FeedbackReport Report;
  Report.BugMask = FeedbackReport::bugBit(1) | FeedbackReport::bugBit(9);
  EXPECT_TRUE(Report.hasBug(1));
  EXPECT_TRUE(Report.hasBug(9));
  EXPECT_FALSE(Report.hasBug(2));
}

TEST(FeedbackReportTest, BugBitEnforcesOneBased63Contract) {
  // Regression: bugBit used to mask with `BugId & 63`, so id 64 aliased to
  // bit 0 and id 0 was representable despite the documented 1-based
  // contract. Out-of-range ids must map to no bit at all.
  EXPECT_EQ(FeedbackReport::bugBit(0), 0u);
  EXPECT_EQ(FeedbackReport::bugBit(64), 0u);
  EXPECT_EQ(FeedbackReport::bugBit(65), 0u);
  EXPECT_EQ(FeedbackReport::bugBit(-1), 0u);
  EXPECT_EQ(FeedbackReport::bugBit(127), 0u); // Used to alias id 63.
  for (int Id = 1; Id <= 63; ++Id)
    EXPECT_EQ(FeedbackReport::bugBit(Id), 1ull << Id) << "id " << Id;

  FeedbackReport Report;
  Report.BugMask = FeedbackReport::bugBit(1) | FeedbackReport::bugBit(63);
  EXPECT_FALSE(Report.hasBug(64)) << "id 64 must not alias another bug";
  EXPECT_FALSE(Report.hasBug(0));
  EXPECT_FALSE(Report.hasBug(-1));
  EXPECT_TRUE(Report.hasBug(63));
  EXPECT_FALSE(Report.hasBug(127)) << "id 127 must not alias id 63";
}

TEST(ReportSetTest, Counting) {
  ReportSet Set(10, 60);
  Set.add(makeReport(true, {}, {}));
  Set.add(makeReport(false, {}, {}));
  Set.add(makeReport(true, {}, {}));
  EXPECT_EQ(Set.size(), 3u);
  EXPECT_EQ(Set.numFailing(), 2u);
  EXPECT_EQ(Set.numSuccessful(), 1u);
  EXPECT_EQ(Set.numSites(), 10u);
  EXPECT_EQ(Set.numPredicates(), 60u);
}

TEST(ReportSetTest, SerializeRoundTrip) {
  ReportSet Set(4, 24);
  FeedbackReport A = makeReport(true, {{0, 2}, {3, 1}}, {{5, 1}, {20, 9}});
  A.Trap = TrapKind::NullDeref;
  A.ExitCode = 0;
  A.StackSignature = "f@3>main@10";
  A.BugMask = FeedbackReport::bugBit(2);
  Set.add(A);
  FeedbackReport B = makeReport(false, {{1, 1}}, {});
  Set.add(B);

  std::string Text = Set.serialize();
  ReportSet Out;
  ASSERT_TRUE(ReportSet::deserialize(Text, Out));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out.numSites(), 4u);
  EXPECT_EQ(Out.numPredicates(), 24u);
  EXPECT_TRUE(Out[0].Failed);
  EXPECT_EQ(Out[0].Trap, TrapKind::NullDeref);
  EXPECT_EQ(Out[0].StackSignature, "f@3>main@10");
  EXPECT_TRUE(Out[0].hasBug(2));
  EXPECT_EQ(Out[0].Counts.SiteObservations, A.Counts.SiteObservations);
  EXPECT_EQ(Out[0].Counts.TruePredicates, A.Counts.TruePredicates);
  EXPECT_FALSE(Out[1].Failed);
  EXPECT_TRUE(Out[1].StackSignature.empty());
}

TEST(ReportSetTest, SerializeEmptySet) {
  ReportSet Set(0, 0);
  ReportSet Out;
  ASSERT_TRUE(ReportSet::deserialize(Set.serialize(), Out));
  EXPECT_EQ(Out.size(), 0u);
}

TEST(ReportSetTest, DeserializeRejectsGarbage) {
  ReportSet Out;
  EXPECT_FALSE(ReportSet::deserialize("", Out));
  EXPECT_FALSE(ReportSet::deserialize("not a report file", Out));
  EXPECT_FALSE(ReportSet::deserialize("SBI-REPORTS v1\n", Out));
  EXPECT_FALSE(ReportSet::deserialize(
      "SBI-REPORTS v1\n1 1 1\nR bogus\n", Out));
}

TEST(ReportSetTest, DeserializeRejectsTruncated) {
  ReportSet Set(2, 12);
  Set.add(makeReport(true, {{0, 1}}, {{3, 1}}));
  std::string Text = Set.serialize();
  ReportSet Out;
  EXPECT_FALSE(
      ReportSet::deserialize(Text.substr(0, Text.size() / 2), Out));
}

TEST(ReportSetTest, DeserializeFailureLeavesOutputUntouched) {
  ReportSet Out(7, 8);
  Out.add(makeReport(true, {}, {}));
  EXPECT_FALSE(ReportSet::deserialize("garbage", Out));
  EXPECT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out.numSites(), 7u);
}

namespace {

/// A two-report set exercising every serialized field, for malformed-input
/// fuzzing.
ReportSet fuzzFixture() {
  ReportSet Set(6, 30);
  FeedbackReport A = makeReport(true, {{0, 2}, {3, 1}}, {{5, 1}, {20, 9}});
  A.StackSignature = "f@3>main@10";
  A.BugMask = FeedbackReport::bugBit(2);
  Set.add(A);
  Set.add(makeReport(false, {{1, 1}, {4, 2}}, {{7, 3}}));
  return Set;
}

/// deserialize must fail AND leave the output exactly as it was.
void expectRejected(const std::string &Text, const char *What) {
  ReportSet Out(7, 8);
  Out.add(makeReport(true, {{2, 1}}, {{3, 1}}));
  EXPECT_FALSE(ReportSet::deserialize(Text, Out)) << What;
  EXPECT_EQ(Out.size(), 1u) << What;
  EXPECT_EQ(Out.numSites(), 7u) << What;
  EXPECT_EQ(Out.numPredicates(), 8u) << What;
  EXPECT_EQ(Out[0].Counts.SiteObservations,
            (std::vector<std::pair<uint32_t, uint32_t>>{{2, 1}}))
      << What;
}

} // namespace

TEST(ReportSetTest, DeserializeRejectsTruncationAtEveryLineBoundary) {
  std::string Text = fuzzFixture().serialize();
  // Cut after each newline except the final one: every proper line-prefix
  // of a report file is malformed.
  for (size_t Pos = Text.find('\n'); Pos != std::string::npos && Pos + 1 < Text.size();
       Pos = Text.find('\n', Pos + 1))
    expectRejected(Text.substr(0, Pos + 1),
                   ("truncated at byte " + std::to_string(Pos + 1)).c_str());
}

TEST(ReportSetTest, DeserializeRejectsMidTokenTruncation) {
  std::string Text = fuzzFixture().serialize();
  expectRejected(Text.substr(0, Text.size() / 4), "quarter");
  expectRejected(Text.substr(0, Text.size() / 2), "half");
  expectRejected(Text.substr(0, (3 * Text.size()) / 4), "three quarters");
}

TEST(ReportSetTest, DeserializeRejectsCountsExceedingSpace) {
  // An S/P entry count larger than the number of sites/predicates cannot
  // be a valid sorted duplicate-free list (and used to drive a huge
  // reserve()).
  expectRejected("SBI-REPORTS v1\n2 12 1\nR 1 0 0 0 -\nS 3 0:1 1:1 2:1\nP 0\n",
                 "site count exceeds NumSites");
  expectRejected("SBI-REPORTS v1\n2 3 1\nR 1 0 0 0 -\nS 0\nP 4 0:1 1:1 2:1 3:1\n",
                 "pred count exceeds NumPredicates");
  expectRejected("SBI-REPORTS v1\n2 3 1\nR 1 0 0 0 -\nS 0\nP 99999999 0:1\n",
                 "absurd count");
}

TEST(ReportSetTest, DeserializeRejectsOutOfRangeIds) {
  expectRejected("SBI-REPORTS v1\n2 12 1\nR 1 0 0 0 -\nS 1 2:1\nP 0\n",
                 "site id == NumSites");
  expectRejected("SBI-REPORTS v1\n2 12 1\nR 1 0 0 0 -\nS 0\nP 1 12:1\n",
                 "pred id == NumPredicates");
  expectRejected("SBI-REPORTS v1\n2 12 1\nR 1 0 0 0 -\nS 0\nP 1 99:1\n",
                 "pred id way out of range");
}

TEST(ReportSetTest, DeserializeRejectsDuplicateAndUnsortedEntries) {
  expectRejected("SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 2 5:1 5:1\n",
                 "duplicate predicate entry");
  expectRejected("SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 2 7:1 5:1\n",
                 "unsorted predicate entries");
  expectRejected("SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 2 3:1 3:2\nP 0\n",
                 "duplicate site entry");
}

TEST(ReportSetTest, DeserializeRejectsMalformedPairs) {
  expectRejected("SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 1 5\n",
                 "missing colon");
  expectRejected("SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 1 :1\n",
                 "missing id");
  expectRejected("SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 1 5:\n",
                 "missing count");
  expectRejected("SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 1 x:1\n",
                 "non-numeric id");
  expectRejected("SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 1 -1:1\n",
                 "negative id");
  // std::stoul would have thrown std::out_of_range here and crashed.
  expectRejected(
      "SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 1 99999999999999999999:1\n",
      "id overflowing uint32");
  expectRejected(
      "SBI-REPORTS v1\n4 12 1\nR 1 0 0 0 -\nS 0\nP 1 5:99999999999999999999\n",
      "count overflowing uint32");
}

TEST(ReportSetTest, DeserializeAcceptsCampaignShapedRoundTrip) {
  // Round-trip of a set with every field populated and multiple sorted
  // entries per line must keep working after the validation tightening.
  ReportSet Set = fuzzFixture();
  ReportSet Out;
  ASSERT_TRUE(ReportSet::deserialize(Set.serialize(), Out));
  ASSERT_EQ(Out.size(), Set.size());
  for (size_t I = 0; I < Set.size(); ++I) {
    EXPECT_EQ(Out[I].Failed, Set[I].Failed);
    EXPECT_EQ(Out[I].BugMask, Set[I].BugMask);
    EXPECT_EQ(Out[I].StackSignature, Set[I].StackSignature);
    EXPECT_EQ(Out[I].Counts.SiteObservations, Set[I].Counts.SiteObservations);
    EXPECT_EQ(Out[I].Counts.TruePredicates, Set[I].Counts.TruePredicates);
  }
}

TEST(ReportSetTest, SerializeDropsZeroCountPairs) {
  // Zero-count entries mean "present in the sparse list but never
  // observed"; observedTrue/siteObserved already treat them as absent, so
  // serialize must too — otherwise a set round-trips into one that
  // compares unequal and bloats the file with dead pairs.
  ReportSet Set(5, 9);
  Set.add(makeReport(true, {{0, 2}, {1, 0}, {4, 1}}, {{2, 0}, {3, 7}}));
  Set.add(makeReport(false, {{2, 0}}, {{0, 0}, {8, 0}}));

  std::string Text = Set.serialize();
  EXPECT_NE(Text.find("S 2 0:2 4:1\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("P 1 3:7\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("S 0\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("P 0\n"), std::string::npos) << Text;

  ReportSet Out;
  ASSERT_TRUE(ReportSet::deserialize(Text, Out));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Counts.SiteObservations,
            (std::vector<std::pair<uint32_t, uint32_t>>{{0, 2}, {4, 1}}));
  EXPECT_EQ(Out[0].Counts.TruePredicates,
            (std::vector<std::pair<uint32_t, uint32_t>>{{3, 7}}));
  EXPECT_TRUE(Out[1].Counts.SiteObservations.empty());
  EXPECT_TRUE(Out[1].Counts.TruePredicates.empty());
  // A second round trip is a fixed point: normalization already happened.
  EXPECT_EQ(Out.serialize(), Text);
}

TEST(ReportSetTest, SerializeSortsHandAssembledEntries) {
  // deserialize rejects unsorted pair lists, so a hand-assembled set with
  // out-of-order entries must not produce an unreadable file.
  ReportSet Set(6, 6);
  Set.add(makeReport(true, {{3, 1}, {0, 2}}, {{5, 1}, {1, 4}, {2, 0}}));

  ReportSet Out;
  ASSERT_TRUE(ReportSet::deserialize(Set.serialize(), Out));
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Counts.SiteObservations,
            (std::vector<std::pair<uint32_t, uint32_t>>{{0, 2}, {3, 1}}));
  EXPECT_EQ(Out[0].Counts.TruePredicates,
            (std::vector<std::pair<uint32_t, uint32_t>>{{1, 4}, {5, 1}}));
}
