//===- tests/feedback/ReportTest.cpp - Feedback report tests --------------===//

#include "feedback/Report.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

FeedbackReport makeReport(bool Failed,
                          std::vector<std::pair<uint32_t, uint32_t>> Sites,
                          std::vector<std::pair<uint32_t, uint32_t>> Preds) {
  FeedbackReport Report;
  Report.Failed = Failed;
  Report.Counts.SiteObservations = std::move(Sites);
  Report.Counts.TruePredicates = std::move(Preds);
  return Report;
}

} // namespace

TEST(FeedbackReportTest, ObservedTrueBinarySearch) {
  FeedbackReport Report =
      makeReport(false, {{0, 1}}, {{3, 2}, {7, 1}, {100, 5}});
  EXPECT_TRUE(Report.observedTrue(3));
  EXPECT_TRUE(Report.observedTrue(7));
  EXPECT_TRUE(Report.observedTrue(100));
  EXPECT_FALSE(Report.observedTrue(0));
  EXPECT_FALSE(Report.observedTrue(5));
  EXPECT_FALSE(Report.observedTrue(101));
}

TEST(FeedbackReportTest, ZeroCountIsNotObservedTrue) {
  FeedbackReport Report = makeReport(false, {}, {{4, 0}});
  EXPECT_FALSE(Report.observedTrue(4));
}

TEST(FeedbackReportTest, SiteObserved) {
  FeedbackReport Report = makeReport(false, {{2, 3}, {9, 1}}, {});
  EXPECT_TRUE(Report.siteObserved(2));
  EXPECT_TRUE(Report.siteObserved(9));
  EXPECT_FALSE(Report.siteObserved(5));
}

TEST(FeedbackReportTest, BugMask) {
  FeedbackReport Report;
  Report.BugMask = FeedbackReport::bugBit(1) | FeedbackReport::bugBit(9);
  EXPECT_TRUE(Report.hasBug(1));
  EXPECT_TRUE(Report.hasBug(9));
  EXPECT_FALSE(Report.hasBug(2));
}

TEST(ReportSetTest, Counting) {
  ReportSet Set(10, 60);
  Set.add(makeReport(true, {}, {}));
  Set.add(makeReport(false, {}, {}));
  Set.add(makeReport(true, {}, {}));
  EXPECT_EQ(Set.size(), 3u);
  EXPECT_EQ(Set.numFailing(), 2u);
  EXPECT_EQ(Set.numSuccessful(), 1u);
  EXPECT_EQ(Set.numSites(), 10u);
  EXPECT_EQ(Set.numPredicates(), 60u);
}

TEST(ReportSetTest, SerializeRoundTrip) {
  ReportSet Set(4, 24);
  FeedbackReport A = makeReport(true, {{0, 2}, {3, 1}}, {{5, 1}, {20, 9}});
  A.Trap = TrapKind::NullDeref;
  A.ExitCode = 0;
  A.StackSignature = "f@3>main@10";
  A.BugMask = FeedbackReport::bugBit(2);
  Set.add(A);
  FeedbackReport B = makeReport(false, {{1, 1}}, {});
  Set.add(B);

  std::string Text = Set.serialize();
  ReportSet Out;
  ASSERT_TRUE(ReportSet::deserialize(Text, Out));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out.numSites(), 4u);
  EXPECT_EQ(Out.numPredicates(), 24u);
  EXPECT_TRUE(Out[0].Failed);
  EXPECT_EQ(Out[0].Trap, TrapKind::NullDeref);
  EXPECT_EQ(Out[0].StackSignature, "f@3>main@10");
  EXPECT_TRUE(Out[0].hasBug(2));
  EXPECT_EQ(Out[0].Counts.SiteObservations, A.Counts.SiteObservations);
  EXPECT_EQ(Out[0].Counts.TruePredicates, A.Counts.TruePredicates);
  EXPECT_FALSE(Out[1].Failed);
  EXPECT_TRUE(Out[1].StackSignature.empty());
}

TEST(ReportSetTest, SerializeEmptySet) {
  ReportSet Set(0, 0);
  ReportSet Out;
  ASSERT_TRUE(ReportSet::deserialize(Set.serialize(), Out));
  EXPECT_EQ(Out.size(), 0u);
}

TEST(ReportSetTest, DeserializeRejectsGarbage) {
  ReportSet Out;
  EXPECT_FALSE(ReportSet::deserialize("", Out));
  EXPECT_FALSE(ReportSet::deserialize("not a report file", Out));
  EXPECT_FALSE(ReportSet::deserialize("SBI-REPORTS v1\n", Out));
  EXPECT_FALSE(ReportSet::deserialize(
      "SBI-REPORTS v1\n1 1 1\nR bogus\n", Out));
}

TEST(ReportSetTest, DeserializeRejectsTruncated) {
  ReportSet Set(2, 12);
  Set.add(makeReport(true, {{0, 1}}, {{3, 1}}));
  std::string Text = Set.serialize();
  ReportSet Out;
  EXPECT_FALSE(
      ReportSet::deserialize(Text.substr(0, Text.size() / 2), Out));
}

TEST(ReportSetTest, DeserializeFailureLeavesOutputUntouched) {
  ReportSet Out(7, 8);
  Out.add(makeReport(true, {}, {}));
  EXPECT_FALSE(ReportSet::deserialize("garbage", Out));
  EXPECT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out.numSites(), 7u);
}
