//===- tests/feedback/CorpusTest.cpp - SBI-CORPUS v2 format tests ---------===//
//
// Three layers of coverage for the binary sharded corpus:
//
//  1. A golden-file test that hand-encodes a shard byte by byte from the
//     layout documented in feedback/Corpus.h and requires CorpusWriter to
//     produce exactly those bytes. Any change to the on-disk format —
//     header field order, varint scheme, zigzag, delta encoding, footer or
//     trailer layout, the FNV-1a constants — fails this test.
//
//  2. Fuzz-style corruption tests: every truncation point, bit flips over
//     the whole record region, and targeted mutations that reach each
//     decode-level rejection (zero deltas, zero counts, out-of-range ids,
//     lying footer offsets). Malformed shards must be rejected with a
//     diagnostic, never crash.
//
//  3. Round-trip and equivalence tests: v1 -> v2 -> v1 preserves the
//     serialized set, ingestCorpus matches RunProfiles::fromReports for
//     any thread count, and zero-count pairs normalize away on write.
//
//===----------------------------------------------------------------------===//

#include "feedback/Corpus.h"
#include "feedback/RunProfiles.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace sbi;

namespace {

// --- Local byte-building helpers (independent of the implementation) -----

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putVar(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

uint32_t fnv1a32(const std::string &Bytes, size_t Begin, size_t End) {
  uint32_t Hash = 2166136261u;
  for (size_t I = Begin; I < End; ++I) {
    Hash ^= static_cast<uint8_t>(Bytes[I]);
    Hash *= 16777619u;
  }
  return Hash;
}

// --- Filesystem helpers ---------------------------------------------------

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "sbi-corpus-test-" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

// --- Fixtures -------------------------------------------------------------

FeedbackReport makeReport(bool Failed,
                          std::vector<std::pair<uint32_t, uint32_t>> Sites,
                          std::vector<std::pair<uint32_t, uint32_t>> Preds) {
  FeedbackReport R;
  R.Failed = Failed;
  R.Counts.SiteObservations = std::move(Sites);
  R.Counts.TruePredicates = std::move(Preds);
  return R;
}

/// The set behind the golden shard. Exercises: negative exit code (zigzag),
/// multi-byte varint (count 300), stack signature presence/absence, delta
/// gaps > 1, and a zero-count site pair the writer must drop.
ReportSet goldenSet() {
  ReportSet Set(3, 5);

  FeedbackReport R0 = makeReport(true, {{0, 300}, {2, 1}}, {{1, 3}, {4, 1}});
  R0.Trap = TrapKind::NullDeref;
  R0.ExitCode = -2;
  R0.BugMask = FeedbackReport::bugBit(2);
  R0.StackSignature = "f@1";
  Set.add(R0);

  FeedbackReport R1 = makeReport(false, {{1, 1}, {2, 0}}, {{3, 2}});
  Set.add(R1);
  return Set;
}

/// Hand-encoded bytes of goldenSet() as one shard with id 7, built purely
/// from the documented layout.
std::string goldenShardBytes() {
  std::string B;
  // Header.
  B.append(CorpusMagic, sizeof(CorpusMagic));
  putU32(B, CorpusVersion);
  putU32(B, 0);  // flags
  putU32(B, 7);  // shard id
  putU32(B, 3);  // sites
  putU32(B, 5);  // predicates
  putU32(B, 2);  // records
  EXPECT_EQ(B.size(), CorpusHeaderSize);

  // Record 0: failed, NullDeref trap, exit -2, bug 2, stack "f@1".
  uint64_t Offset0 = B.size();
  B.push_back(0x03); // flags: failed | has-stack
  B.push_back(0x01); // trap: NullDeref
  putVar(B, 3);      // zigzag(-2)
  putVar(B, FeedbackReport::bugBit(2));
  putVar(B, 3); // stack length
  B += "f@1";
  putVar(B, 2);   // site pairs
  putVar(B, 0);   // site 0 (absolute)
  putVar(B, 300); // count 300 -> two-byte varint 0xAC 0x02
  putVar(B, 2);   // gap to site 2
  putVar(B, 1);
  putVar(B, 2); // pred pairs
  putVar(B, 1); // pred 1 (absolute)
  putVar(B, 3);
  putVar(B, 3); // gap to pred 4
  putVar(B, 1);

  // Record 1: successful, no stack; the {2, 0} site pair is dropped.
  uint64_t Offset1 = B.size();
  B.push_back(0x00); // flags
  B.push_back(0x00); // trap
  putVar(B, 0);      // zigzag(0)
  putVar(B, 0);      // bug mask
  putVar(B, 1);      // site pairs (zero-count entry gone)
  putVar(B, 1);
  putVar(B, 1);
  putVar(B, 1); // pred pairs
  putVar(B, 3);
  putVar(B, 2);

  // Footer + trailer.
  uint64_t FooterStart = B.size();
  putU64(B, Offset0);
  putU64(B, Offset1);
  putU64(B, FooterStart);
  putU32(B, 2);
  putU32(B, fnv1a32(B, CorpusHeaderSize, FooterStart));
  B.append(CorpusFooterMagic, sizeof(CorpusFooterMagic));
  return B;
}

std::string writeGoldenShard(const std::string &Dir) {
  std::string Path = Dir + "/" + corpusShardName(0);
  CorpusWriter Writer;
  std::string Error;
  EXPECT_TRUE(Writer.open(Path, 7, 3, 5, Error)) << Error;
  ReportSet Set = goldenSet();
  for (const FeedbackReport &R : Set.reports())
    EXPECT_TRUE(Writer.append(R, Error)) << Error;
  EXPECT_TRUE(Writer.finalize(Error)) << Error;
  return Path;
}

/// A corrupted shard must be rejected — by open() or by some later next()
/// — with a non-empty diagnostic, and must never crash or return more
/// records than the mutation allows.
void expectShardRejected(const std::string &Bytes, const std::string &What) {
  std::string Path =
      ::testing::TempDir() + "sbi-corpus-test-corrupt.sbic";
  writeFileBytes(Path, Bytes);
  CorpusReader Reader;
  std::string Error;
  if (!Reader.open(Path, Error)) {
    EXPECT_FALSE(Error.empty()) << What;
    return;
  }
  FeedbackReport Report;
  size_t Decoded = 0;
  while (Reader.next(Report, Error)) {
    ++Decoded;
    ASSERT_LE(Decoded, size_t(1) << 20) << What << ": runaway decode";
  }
  EXPECT_FALSE(Error.empty()) << What << ": corrupt shard decoded clean";
}

/// Recomputes the trailer hash after a deliberate record-region mutation,
/// so the mutation reaches the decoder instead of tripping the hash check.
void rehash(std::string &Bytes) {
  ASSERT_GE(Bytes.size(), CorpusHeaderSize + CorpusTrailerSize);
  size_t Trailer = Bytes.size() - CorpusTrailerSize;
  uint64_t FooterStart = 0;
  for (int I = 7; I >= 0; --I)
    FooterStart = (FooterStart << 8) | static_cast<uint8_t>(Bytes[Trailer + I]);
  uint32_t Hash = fnv1a32(Bytes, CorpusHeaderSize, FooterStart);
  for (int I = 0; I < 4; ++I)
    Bytes[Trailer + 12 + I] = static_cast<char>((Hash >> (8 * I)) & 0xff);
}

// --- Golden layout --------------------------------------------------------

TEST(CorpusGolden, WriterEmitsExactDocumentedBytes) {
  std::string Dir = freshDir("golden");
  std::string Path = writeGoldenShard(Dir);
  EXPECT_EQ(readFileBytes(Path), goldenShardBytes());
}

TEST(CorpusGolden, ReaderDecodesHandEncodedShard) {
  // The inverse direction: a shard built from the spec alone (never
  // touched by CorpusWriter) must decode to the normalized set.
  std::string Dir = freshDir("golden-read");
  std::string Path = Dir + "/" + corpusShardName(0);
  writeFileBytes(Path, goldenShardBytes());

  CorpusReader Reader;
  std::string Error;
  ASSERT_TRUE(Reader.open(Path, Error)) << Error;
  EXPECT_EQ(Reader.header().ShardId, 7u);
  EXPECT_EQ(Reader.header().NumSites, 3u);
  EXPECT_EQ(Reader.header().NumPredicates, 5u);
  EXPECT_EQ(Reader.header().NumReports, 2u);

  FeedbackReport R;
  ASSERT_TRUE(Reader.next(R, Error)) << Error;
  EXPECT_TRUE(R.Failed);
  EXPECT_EQ(R.Trap, TrapKind::NullDeref);
  EXPECT_EQ(R.ExitCode, -2);
  EXPECT_EQ(R.BugMask, FeedbackReport::bugBit(2));
  EXPECT_EQ(R.StackSignature, "f@1");
  EXPECT_EQ(R.Counts.SiteObservations,
            (std::vector<std::pair<uint32_t, uint32_t>>{{0, 300}, {2, 1}}));
  EXPECT_EQ(R.Counts.TruePredicates,
            (std::vector<std::pair<uint32_t, uint32_t>>{{1, 3}, {4, 1}}));

  ASSERT_TRUE(Reader.next(R, Error)) << Error;
  EXPECT_FALSE(R.Failed);
  EXPECT_EQ(R.Trap, TrapKind::None);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_TRUE(R.StackSignature.empty());
  EXPECT_EQ(R.Counts.SiteObservations,
            (std::vector<std::pair<uint32_t, uint32_t>>{{1, 1}}));
  EXPECT_EQ(R.Counts.TruePredicates,
            (std::vector<std::pair<uint32_t, uint32_t>>{{3, 2}}));

  EXPECT_FALSE(Reader.next(R, Error));
  EXPECT_TRUE(Error.empty()) << Error;
}

TEST(CorpusGolden, SeekUsesFooterOffsets) {
  std::string Dir = freshDir("golden-seek");
  std::string Path = writeGoldenShard(Dir);

  CorpusReader Reader;
  std::string Error;
  ASSERT_TRUE(Reader.open(Path, Error)) << Error;
  ASSERT_TRUE(Reader.seek(1));
  FeedbackReport R;
  ASSERT_TRUE(Reader.next(R, Error)) << Error;
  EXPECT_FALSE(R.Failed);
  EXPECT_EQ(R.Counts.TruePredicates,
            (std::vector<std::pair<uint32_t, uint32_t>>{{3, 2}}));
  // Back to the start: record 0 again.
  ASSERT_TRUE(Reader.seek(0));
  ASSERT_TRUE(Reader.next(R, Error)) << Error;
  EXPECT_TRUE(R.Failed);
  // Seeking to the end position is allowed and reads cleanly as "done".
  ASSERT_TRUE(Reader.seek(2));
  EXPECT_FALSE(Reader.next(R, Error));
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_FALSE(Reader.seek(3)); // Past the end.
}

// --- Writer input validation ----------------------------------------------

TEST(CorpusWriterTest, RejectsUnsortedDuplicateAndOutOfRangeIds) {
  std::string Dir = freshDir("writer-validate");
  struct Case {
    const char *Name;
    FeedbackReport Report;
  };
  std::vector<Case> Cases;
  Cases.push_back({"unsorted sites", makeReport(false, {{2, 1}, {0, 1}}, {})});
  Cases.push_back({"duplicate sites", makeReport(false, {{1, 1}, {1, 2}}, {})});
  Cases.push_back({"site out of range", makeReport(false, {{3, 1}}, {})});
  Cases.push_back({"unsorted preds", makeReport(false, {}, {{4, 1}, {1, 1}})});
  Cases.push_back({"pred out of range", makeReport(false, {}, {{5, 1}})});

  for (size_t I = 0; I < Cases.size(); ++I) {
    std::string Path = Dir + "/" + corpusShardName(static_cast<uint32_t>(I));
    CorpusWriter Writer;
    std::string Error;
    ASSERT_TRUE(Writer.open(Path, 0, 3, 5, Error)) << Error;
    EXPECT_FALSE(Writer.append(Cases[I].Report, Error)) << Cases[I].Name;
    EXPECT_FALSE(Error.empty()) << Cases[I].Name;
  }
}

TEST(CorpusWriterTest, DropsZeroCountPairsButKeepsLaterEntries) {
  std::string Dir = freshDir("writer-zero");
  std::string Path = Dir + "/" + corpusShardName(0);
  CorpusWriter Writer;
  std::string Error;
  ASSERT_TRUE(Writer.open(Path, 0, 4, 4, Error)) << Error;
  // Zero-count entries sandwiched between real ones: the real ones must
  // survive with correct delta encoding across the gap.
  ASSERT_TRUE(Writer.append(
      makeReport(true, {{0, 1}, {1, 0}, {3, 2}}, {{0, 0}, {2, 5}}), Error))
      << Error;
  ASSERT_TRUE(Writer.finalize(Error)) << Error;

  CorpusReader Reader;
  ASSERT_TRUE(Reader.open(Path, Error)) << Error;
  FeedbackReport R;
  ASSERT_TRUE(Reader.next(R, Error)) << Error;
  EXPECT_EQ(R.Counts.SiteObservations,
            (std::vector<std::pair<uint32_t, uint32_t>>{{0, 1}, {3, 2}}));
  EXPECT_EQ(R.Counts.TruePredicates,
            (std::vector<std::pair<uint32_t, uint32_t>>{{2, 5}}));
}

// --- Corruption: reject, never crash --------------------------------------

TEST(CorpusCorruption, EveryTruncationIsRejected) {
  std::string Shard = goldenShardBytes();
  for (size_t Len = 0; Len < Shard.size(); ++Len)
    expectShardRejected(Shard.substr(0, Len),
                        "truncated to " + std::to_string(Len) + " bytes");
}

TEST(CorpusCorruption, EveryRecordByteFlipIsRejected) {
  // Without rehashing, any single-byte change in the record region must
  // trip the FNV-1a check (or an earlier structural check) at open time.
  std::string Shard = goldenShardBytes();
  size_t FooterStart = Shard.size() - CorpusTrailerSize - 2 * 8;
  for (size_t I = CorpusHeaderSize; I < FooterStart; ++I) {
    std::string Mutated = Shard;
    Mutated[I] = static_cast<char>(Mutated[I] ^ 0x40);
    expectShardRejected(Mutated, "flip at byte " + std::to_string(I));
  }
}

TEST(CorpusCorruption, HeaderAndTrailerMutationsAreRejected) {
  std::string Shard = goldenShardBytes();
  size_t Trailer = Shard.size() - CorpusTrailerSize;

  auto mutated = [&](size_t At, char To) {
    std::string M = Shard;
    M[At] = To;
    return M;
  };
  expectShardRejected(mutated(0, 'X'), "bad magic");
  expectShardRejected(mutated(8, 3), "bad version");
  expectShardRejected(mutated(28, 3), "header count != footer count");
  expectShardRejected(mutated(Trailer, static_cast<char>(Shard[Trailer] + 1)),
                      "footer start off by one");
  expectShardRejected(mutated(Trailer + 8, 3), "trailer count mismatch");
  expectShardRejected(mutated(Trailer + 16, 'X'), "bad footer magic");
  expectShardRejected(mutated(Trailer + 12,
                              static_cast<char>(Shard[Trailer + 12] ^ 1)),
                      "hash flip");
  // Footer offsets: record 1's offset pushed past record 0's.
  std::string M = Shard;
  M[Trailer - 16] = M[Trailer - 8]; // offset[0] = offset[1]
  expectShardRejected(M, "footer offsets out of order");
}

TEST(CorpusCorruption, DecodeLevelMutationsAreRejected) {
  // Targeted mutations inside record bytes, rehashed so they reach the
  // decoder. Offsets below follow the goldenShardBytes() layout: record 0
  // starts at 32 with an 8-byte head — flags, trap, exit, mask, stack
  // length, "f@1" — so the site pair block begins at 32 + 8.
  std::string Shard = goldenShardBytes();
  size_t R0 = CorpusHeaderSize;

  auto mutatedRehashed = [&](size_t At, char To) {
    std::string M = Shard;
    M[At] = To;
    rehash(M);
    return M;
  };
  // Site pair count 2 -> 0x80: varint continuation byte that never ends
  // within the record.
  expectShardRejected(mutatedRehashed(R0 + 8, static_cast<char>(0x80)),
                      "unterminated varint");
  // First site id 0 -> 3: out of range (numSites = 3).
  expectShardRejected(mutatedRehashed(R0 + 9, 3), "site id out of range");
  // Gap to the second site 2 -> 0: zero delta, ids would not be ascending.
  expectShardRejected(mutatedRehashed(R0 + 12, 0), "zero site delta");
  // Second site count 1 -> 0: zero counts never appear on disk.
  expectShardRejected(mutatedRehashed(R0 + 13, 0), "zero site count");
  // First pred id 1 -> 5: out of range (numPredicates = 5).
  expectShardRejected(mutatedRehashed(R0 + 15, 5), "pred id out of range");
  // Site pair count 2 -> 1: record no longer ends at the footer offset.
  expectShardRejected(mutatedRehashed(R0 + 8, 1),
                      "record does not end at footer offset");
  // Stack length 3 -> 200: runs past the end of the record region.
  expectShardRejected(mutatedRehashed(R0 + 4, static_cast<char>(200)),
                      "stack length out of bounds");
}

// --- Round trips ----------------------------------------------------------

/// A messy ten-report set: overlapping bugs, zero-count entries, traps,
/// stacks, empty observation lists, and ids spread over the full range.
ReportSet roundTripSet() {
  ReportSet Set(40, 160);
  for (uint32_t I = 0; I < 10; ++I) {
    FeedbackReport R;
    R.Failed = I % 3 == 0;
    if (R.Failed) {
      R.Trap = I % 2 ? TrapKind::OutOfBounds : TrapKind::None;
      R.ExitCode = I % 2 ? -1 : static_cast<int>(I);
      R.BugMask = FeedbackReport::bugBit(1 + static_cast<int>(I % 2));
      if (I % 2)
        R.StackSignature = "g@7>main@2";
    }
    for (uint32_t S = I % 4; S < 40; S += 3 + I % 5)
      R.Counts.SiteObservations.emplace_back(S, S == 12 ? 0 : 1 + S % 7);
    for (uint32_t P = I % 9; P < 160; P += 5 + I % 7)
      R.Counts.TruePredicates.emplace_back(P, P == 30 ? 0 : 1 + P % 11);
    Set.add(std::move(R));
  }
  // One report with nothing observed at all.
  Set.add(makeReport(false, {}, {}));
  return Set;
}

TEST(CorpusRoundTrip, V1ToV2ToV1PreservesTheSerializedSet) {
  ReportSet Set = roundTripSet();
  std::string Dir = freshDir("roundtrip");
  std::string Error;
  ASSERT_TRUE(writeCorpus(Set, Dir, /*ReportsPerShard=*/4, Error)) << Error;
  EXPECT_EQ(listCorpusShards(Dir).size(), 3u); // ceil(11 / 4)

  ReportSet Out;
  ASSERT_TRUE(readCorpus(Dir, Out, Error)) << Error;
  EXPECT_EQ(Out.numSites(), Set.numSites());
  EXPECT_EQ(Out.numPredicates(), Set.numPredicates());
  ASSERT_EQ(Out.size(), Set.size());
  // serialize() normalizes zero-count pairs away on both sides, so byte
  // equality of the v1 text is exactly "same set modulo normalization".
  EXPECT_EQ(Out.serialize(), Set.serialize());
}

TEST(CorpusRoundTrip, EmptySetYieldsOneValidEmptyShard) {
  ReportSet Set(9, 27);
  std::string Dir = freshDir("empty");
  std::string Error;
  ASSERT_TRUE(writeCorpus(Set, Dir, 1024, Error)) << Error;
  ASSERT_EQ(listCorpusShards(Dir).size(), 1u);

  ReportSet Out;
  ASSERT_TRUE(readCorpus(Dir, Out, Error)) << Error;
  EXPECT_EQ(Out.numSites(), 9u);
  EXPECT_EQ(Out.numPredicates(), 27u);
  EXPECT_EQ(Out.size(), 0u);

  RunProfiles Runs;
  ASSERT_TRUE(ingestCorpus(Dir, Runs, 1, Error)) << Error;
  EXPECT_EQ(Runs.size(), 0u);
  EXPECT_EQ(Runs.numSites(), 9u);
  EXPECT_EQ(Runs.numPredicates(), 27u);
}

TEST(CorpusRoundTrip, ShardsListInFilenameOrder) {
  ReportSet Set = roundTripSet();
  std::string Dir = freshDir("order");
  std::string Error;
  ASSERT_TRUE(writeCorpus(Set, Dir, 2, Error)) << Error;
  std::vector<std::string> Shards = listCorpusShards(Dir);
  ASSERT_EQ(Shards.size(), 6u);
  for (size_t I = 0; I < Shards.size(); ++I) {
    EXPECT_NE(Shards[I].find(corpusShardName(static_cast<uint32_t>(I))),
              std::string::npos);
    if (I)
      EXPECT_LT(Shards[I - 1], Shards[I]);
  }
}

// --- Streaming ingestion --------------------------------------------------

void expectProfilesEqual(const RunProfiles &A, const RunProfiles &B,
                         const std::string &What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  EXPECT_EQ(A.numSites(), B.numSites()) << What;
  EXPECT_EQ(A.numPredicates(), B.numPredicates()) << What;
  for (size_t Run = 0; Run < A.size(); ++Run) {
    EXPECT_EQ(A.failed(Run), B.failed(Run)) << What << " run " << Run;
    EXPECT_EQ(A.bugMask(Run), B.bugMask(Run)) << What << " run " << Run;
    IdSpan SA = A.sites(Run), SB = B.sites(Run);
    ASSERT_EQ(SA.size(), SB.size()) << What << " run " << Run;
    EXPECT_TRUE(std::equal(SA.begin(), SA.end(), SB.begin()))
        << What << " run " << Run;
    IdSpan PA = A.preds(Run), PB = B.preds(Run);
    ASSERT_EQ(PA.size(), PB.size()) << What << " run " << Run;
    EXPECT_TRUE(std::equal(PA.begin(), PA.end(), PB.begin()))
        << What << " run " << Run;
  }
}

TEST(CorpusIngest, MatchesFromReportsForAnyThreadCount) {
  ReportSet Set = roundTripSet();
  std::string Dir = freshDir("ingest");
  std::string Error;
  ASSERT_TRUE(writeCorpus(Set, Dir, 3, Error)) << Error;

  RunProfiles Reference = RunProfiles::fromReports(Set);
  for (size_t Threads : {size_t(1), size_t(2), size_t(7)}) {
    RunProfiles Streamed;
    CorpusIngestStats Stats;
    ASSERT_TRUE(ingestCorpus(Dir, Streamed, Threads, Error, &Stats)) << Error;
    expectProfilesEqual(Reference, Streamed,
                        "threads=" + std::to_string(Threads));
    EXPECT_EQ(Stats.Shards, 4u); // ceil(11 / 3)
    EXPECT_EQ(Stats.Reports, 11u);
    EXPECT_GT(Stats.Bytes, 0u);
  }
}

TEST(CorpusIngest, RejectsDimensionMismatchAcrossShards) {
  std::string Dir = freshDir("dim-mismatch");
  std::string Error;
  // Shard 0: 3x5 dims. Shard 1: 4x5 dims.
  for (uint32_t Shard = 0; Shard < 2; ++Shard) {
    CorpusWriter Writer;
    ASSERT_TRUE(Writer.open(Dir + "/" + corpusShardName(Shard), Shard,
                            3 + Shard, 5, Error))
        << Error;
    ASSERT_TRUE(Writer.append(makeReport(false, {{1, 1}}, {{2, 1}}), Error))
        << Error;
    ASSERT_TRUE(Writer.finalize(Error)) << Error;
  }
  RunProfiles Runs;
  EXPECT_FALSE(ingestCorpus(Dir, Runs, 1, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(CorpusIngest, MissingDirectoryIsAnError) {
  RunProfiles Runs;
  std::string Error;
  EXPECT_FALSE(ingestCorpus(::testing::TempDir() + "sbi-corpus-test-nonexistent",
                            Runs, 1, Error));
  EXPECT_FALSE(Error.empty());
}

// --- RunProfiles ----------------------------------------------------------

TEST(RunProfilesTest, FromReportsDropsZeroCountsAndKeepsLabels) {
  ReportSet Set(6, 8);
  FeedbackReport R0 = makeReport(true, {{0, 2}, {3, 0}, {5, 1}},
                                 {{1, 0}, {2, 4}, {7, 1}});
  R0.BugMask = FeedbackReport::bugBit(3);
  Set.add(R0);
  Set.add(makeReport(false, {}, {}));

  RunProfiles Runs = RunProfiles::fromReports(Set);
  ASSERT_EQ(Runs.size(), 2u);
  EXPECT_TRUE(Runs.failed(0));
  EXPECT_FALSE(Runs.failed(1));
  EXPECT_TRUE(Runs.hasBug(0, 3));
  EXPECT_FALSE(Runs.hasBug(0, 2));

  IdSpan Sites = Runs.sites(0);
  EXPECT_EQ(std::vector<uint32_t>(Sites.begin(), Sites.end()),
            (std::vector<uint32_t>{0, 5}));
  IdSpan Preds = Runs.preds(0);
  EXPECT_EQ(std::vector<uint32_t>(Preds.begin(), Preds.end()),
            (std::vector<uint32_t>{2, 7}));
  EXPECT_EQ(Runs.sites(1).size(), 0u);
  EXPECT_EQ(Runs.preds(1).size(), 0u);

  EXPECT_TRUE(Runs.observedTrue(0, 2));
  EXPECT_FALSE(Runs.observedTrue(0, 1)); // Zero count dropped.
  EXPECT_FALSE(Runs.observedTrue(1, 2));
  EXPECT_EQ(Runs.numFailing(), 1u);
  EXPECT_EQ(Runs.numPostings(), 4u);
}

TEST(RunProfilesTest, AppendRebasesOffsets) {
  RunProfiles A(4, 4);
  A.beginRun(true, FeedbackReport::bugBit(1));
  A.addSite(0);
  A.addSite(2);
  A.addPred(1);

  RunProfiles B(4, 4);
  B.beginRun(false);
  B.addSite(3);
  B.addPred(0);
  B.addPred(2);
  B.beginRun(true);
  B.addPred(3);

  A.append(std::move(B));
  ASSERT_EQ(A.size(), 3u);
  EXPECT_TRUE(A.failed(0));
  EXPECT_FALSE(A.failed(1));
  EXPECT_TRUE(A.failed(2));

  IdSpan S1 = A.sites(1);
  EXPECT_EQ(std::vector<uint32_t>(S1.begin(), S1.end()),
            (std::vector<uint32_t>{3}));
  IdSpan P1 = A.preds(1);
  EXPECT_EQ(std::vector<uint32_t>(P1.begin(), P1.end()),
            (std::vector<uint32_t>{0, 2}));
  IdSpan P2 = A.preds(2);
  EXPECT_EQ(std::vector<uint32_t>(P2.begin(), P2.end()),
            (std::vector<uint32_t>{3}));
  EXPECT_EQ(A.sites(2).size(), 0u);
  EXPECT_TRUE(A.observedTrue(2, 3));
  EXPECT_FALSE(A.observedTrue(2, 0));
}

} // namespace
