//===- tests/harness/HtmlReportTest.cpp - HTML report tests ----------------===//

#include "harness/HtmlReport.h"

#include "core/Analysis.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

struct Fixture {
  CampaignResult Campaign;
  AnalysisResult Analysis;

  Fixture() {
    CampaignOptions Options;
    Options.NumRuns = 250;
    Options.TrainingRuns = 40;
    Options.Seed = 909;
    Campaign = runCampaign(exifSubject(), Options);
    CauseIsolator Isolator(Campaign.Sites, Campaign.Reports);
    Analysis = Isolator.run();
  }

  static const Fixture &get() {
    static Fixture F;
    return F;
  }
};

} // namespace

TEST(HtmlReportTest, IsSelfContainedDocument) {
  const Fixture &F = Fixture::get();
  std::string Html =
      renderHtmlReport(F.Campaign.Sites, F.Campaign.Reports, F.Analysis);
  EXPECT_EQ(Html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(Html.find("</html>"), std::string::npos);
  // Self-contained: no external references.
  EXPECT_EQ(Html.find("http://"), std::string::npos);
  EXPECT_EQ(Html.find("src="), std::string::npos);
  EXPECT_EQ(Html.find("<script"), std::string::npos);
}

TEST(HtmlReportTest, ContainsEverySelectedPredicate) {
  const Fixture &F = Fixture::get();
  std::string Html =
      renderHtmlReport(F.Campaign.Sites, F.Campaign.Reports, F.Analysis);
  for (const SelectedPredicate &Entry : F.Analysis.Selected) {
    // The raw text may contain HTML-escaped characters; check a stable
    // fragment (the site function name).
    const auto &Site =
        F.Campaign.Sites.site(F.Campaign.Sites.predicate(Entry.Pred).Site);
    EXPECT_NE(Html.find(Site.Function), std::string::npos);
  }
  // Thermometer bands are present.
  EXPECT_NE(Html.find("class=\"ctx\""), std::string::npos);
  EXPECT_NE(Html.find("class=\"inc\""), std::string::npos);
}

TEST(HtmlReportTest, EscapesPredicateText) {
  const Fixture &F = Fixture::get();
  std::string Html =
      renderHtmlReport(F.Campaign.Sites, F.Campaign.Reports, F.Analysis);
  // EXIF predictors contain "(o + s) > mn_buf_size"; the '>' must be
  // escaped inside code spans.
  EXPECT_NE(Html.find("&gt;"), std::string::npos);
  // And no bare "<" from predicate text leaks outside tags: every '<' in
  // the document starts an HTML tag (crude check: "< " never appears).
  EXPECT_EQ(Html.find("< "), std::string::npos);
}

TEST(HtmlReportTest, TopKTruncates) {
  const Fixture &F = Fixture::get();
  HtmlReportOptions Options;
  Options.TopK = 1;
  std::string Html = renderHtmlReport(F.Campaign.Sites, F.Campaign.Reports,
                                      F.Analysis, Options);
  EXPECT_EQ(Html.find("affinity-1\""), std::string::npos);
  EXPECT_NE(Html.find("affinity-0\""), std::string::npos);
}

TEST(HtmlReportTest, CampaignOverloadAddsTitleAndGroundTruth) {
  const Fixture &F = Fixture::get();
  HtmlReportOptions Options;
  Options.ShowGroundTruth = true;
  std::string Html = renderHtmlReport(F.Campaign, F.Analysis, Options);
  EXPECT_NE(Html.find("report: exif"), std::string::npos);
  EXPECT_NE(Html.find("Ground truth"), std::string::npos);
  EXPECT_NE(Html.find("#3"), std::string::npos);
}

TEST(HtmlReportTest, CampaignOverloadAddsRunSummaryHeader) {
  const Fixture &F = Fixture::get();
  // The fixture ran a real campaign in this process, so the campaign
  // summary gauges exist in the metrics registry and the header renders.
  std::string Html = renderHtmlReport(F.Campaign, F.Analysis);
  EXPECT_NE(Html.find("<div class=\"summary\">"), std::string::npos);
  EXPECT_NE(Html.find("<b>250</b>runs"), std::string::npos);
  EXPECT_NE(Html.find("failing"), std::string::npos);
  EXPECT_NE(Html.find(F.Campaign.Plan.name()), std::string::npos);
  EXPECT_NE(Html.find("campaign wall time"), std::string::npos);
  // The base overload knows nothing of campaigns and stays header-free.
  std::string Base =
      renderHtmlReport(F.Campaign.Sites, F.Campaign.Reports, F.Analysis);
  EXPECT_EQ(Base.find("<div class=\"summary\">"), std::string::npos);
}

TEST(HtmlReportTest, AffinityAnchorsLink) {
  const Fixture &F = Fixture::get();
  std::string Html =
      renderHtmlReport(F.Campaign.Sites, F.Campaign.Reports, F.Analysis);
  // Each main-table row anchor has a matching affinity section id.
  for (size_t I = 0; I < F.Analysis.Selected.size(); ++I) {
    std::string Anchor = "href=\"#affinity-" + std::to_string(I) + "\"";
    std::string Target = "id=\"affinity-" + std::to_string(I) + "\"";
    EXPECT_NE(Html.find(Anchor), std::string::npos) << I;
    EXPECT_NE(Html.find(Target), std::string::npos) << I;
  }
}
