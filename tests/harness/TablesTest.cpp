//===- tests/harness/TablesTest.cpp - Table helpers and derived studies ---===//

#include "harness/Tables.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

CampaignResult smallCampaign(const Subject &Subj, size_t Runs = 200) {
  CampaignOptions Options;
  Options.NumRuns = Runs;
  Options.TrainingRuns = 40;
  Options.Seed = 4242;
  return runCampaign(Subj, Options);
}

} // namespace

TEST(TablesTest, GridShape) {
  auto Grid = defaultMinRunsGrid(25000);
  ASSERT_FALSE(Grid.empty());
  EXPECT_EQ(Grid.front(), 100u);
  EXPECT_EQ(Grid.back(), 25000u);
  for (size_t I = 1; I < Grid.size(); ++I)
    EXPECT_LT(Grid[I - 1], Grid[I]);
}

TEST(TablesTest, GridClipsToSetSize) {
  auto Grid = defaultMinRunsGrid(450);
  EXPECT_EQ(Grid.back(), 450u);
  for (size_t N : Grid)
    EXPECT_LE(N, 450u);
}

TEST(TablesTest, PredicateLabelContainsTextAndLocation) {
  CampaignResult Result = smallCampaign(ccryptSubject(), 60);
  std::string Label = predicateLabel(Result.Sites, 0);
  EXPECT_NE(Label.find('@'), std::string::npos);
  EXPECT_NE(Label.find(Result.Sites.predicate(0).Text),
            std::string::npos);
}

TEST(TablesTest, FailingRunsWithPredAndBugCountsIntersection) {
  CampaignResult Result = smallCampaign(ccryptSubject());
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  ASSERT_FALSE(Analysis.Selected.empty());
  uint32_t Pred = Analysis.Selected[0].Pred;
  size_t WithBug = failingRunsWithPredAndBug(Result.Reports, Pred, 1);
  size_t Failing = Result.Reports.numFailing();
  EXPECT_GT(WithBug, 0u);
  EXPECT_LE(WithBug, Failing);
  // Bug 99 never exists.
  EXPECT_EQ(failingRunsWithPredAndBug(Result.Reports, Pred, 20), 0u);
}

TEST(TablesTest, ChoosePredictorPerBugPicksCoveringPredicate) {
  CampaignResult Result = smallCampaign(exifSubject(), 600);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  auto Predictors =
      choosePredictorPerBug(Result.Reports, Analysis.Selected, {1, 2, 3});
  for (const auto &[Bug, Pred] : Predictors)
    EXPECT_GT(failingRunsWithPredAndBug(Result.Reports, Pred, Bug), 0u);
}

TEST(TablesTest, MinimumRunsMonotoneInThreshold) {
  CampaignResult Result = smallCampaign(ccryptSubject(), 500);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  auto Predictors =
      choosePredictorPerBug(Result.Reports, Analysis.Selected, {1});
  ASSERT_FALSE(Predictors.empty());
  auto Grid = defaultMinRunsGrid(Result.Reports.size());
  auto Strict = computeMinimumRuns(Result.Sites, Result.Reports, Predictors,
                                   Grid, /*Threshold=*/0.05);
  auto Loose = computeMinimumRuns(Result.Sites, Result.Reports, Predictors,
                                  Grid, /*Threshold=*/0.5);
  ASSERT_EQ(Strict.size(), 1u);
  ASSERT_EQ(Loose.size(), 1u);
  if (Strict[0].MinRuns != 0 && Loose[0].MinRuns != 0)
    EXPECT_LE(Loose[0].MinRuns, Strict[0].MinRuns);
}

TEST(TablesTest, MinimumRunsFAtNIsBoundedByN) {
  CampaignResult Result = smallCampaign(ccryptSubject(), 500);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  auto Predictors =
      choosePredictorPerBug(Result.Reports, Analysis.Selected, {1});
  auto Grid = defaultMinRunsGrid(Result.Reports.size());
  auto Rows =
      computeMinimumRuns(Result.Sites, Result.Reports, Predictors, Grid);
  for (const MinRunsRow &Row : Rows)
    if (Row.MinRuns > 0)
      EXPECT_LE(Row.FAtMinRuns, Row.MinRuns);
}

TEST(TablesTest, RenderersProduceNonEmptyOutput) {
  CampaignResult Result = smallCampaign(ccryptSubject());
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  ASSERT_FALSE(Analysis.Selected.empty());

  RunView View = RunView::allOf(Result.Reports);
  auto Ranked = Isolator.rank(Analysis.PrunedSurvivors, View);
  std::string RankedText = renderRankedList(Result.Sites, Ranked, 5,
                                            Result.Reports.numFailing());
  EXPECT_NE(RankedText.find("Thermometer"), std::string::npos);

  std::string SelectedText = renderSelectedList(
      Result.Sites, Result.Reports, Analysis.Selected, {1});
  EXPECT_NE(SelectedText.find("Initial"), std::string::npos);
  EXPECT_NE(SelectedText.find("#1"), std::string::npos);

  std::string AffinityText =
      renderAffinity(Result.Sites, Analysis.Selected[0]);
  EXPECT_NE(AffinityText.find("affinity"), std::string::npos);
}

TEST(TablesTest, StackStudyCraftedScenario) {
  // Two bugs: bug 1 crashes at a unique location; bug 2 shares its crash
  // location with bug 1 in some runs.
  ReportSet Set(4, 24);
  auto addCrash = [&](int Bug, const std::string &Stack) {
    FeedbackReport Report;
    Report.Failed = true;
    Report.Trap = TrapKind::NullDeref;
    Report.StackSignature = Stack;
    Report.BugMask = FeedbackReport::bugBit(Bug);
    Set.add(Report);
  };
  for (int I = 0; I < 10; ++I)
    addCrash(1, "f@3>main@9");
  for (int I = 0; I < 5; ++I)
    addCrash(2, "g@7>main@11");
  for (int I = 0; I < 5; ++I)
    addCrash(2, "f@3>main@9"); // Bug 2 sometimes crashes at bug 1's site.

  auto Rows = computeStackStudy(Set, {1, 2});
  ASSERT_EQ(Rows.size(), 2u);
  EXPECT_EQ(Rows[0].BugId, 1);
  EXPECT_EQ(Rows[0].CrashingRuns, 10u);
  EXPECT_EQ(Rows[0].DistinctLocations, 1u);
  EXPECT_FALSE(Rows[0].UniqueLocation)
      << "bug 2 also crashes at f@3, so the location is not unique";
  EXPECT_EQ(Rows[1].DistinctLocations, 2u);
  EXPECT_FALSE(Rows[1].UniqueLocation);
}

TEST(TablesTest, StackStudyUniqueLocation) {
  ReportSet Set(4, 24);
  auto addCrash = [&](int Bug, const std::string &Stack) {
    FeedbackReport Report;
    Report.Failed = true;
    Report.Trap = TrapKind::OutOfBounds;
    Report.StackSignature = Stack;
    Report.BugMask = FeedbackReport::bugBit(Bug);
    Set.add(Report);
  };
  for (int I = 0; I < 8; ++I)
    addCrash(1, "alpha@1>main@2");
  for (int I = 0; I < 8; ++I)
    addCrash(2, "beta@5>main@2");
  auto Rows = computeStackStudy(Set, {1, 2});
  EXPECT_TRUE(Rows[0].UniqueLocation);
  EXPECT_TRUE(Rows[1].UniqueLocation);
}

TEST(TablesTest, CrashFunctionExtraction) {
  EXPECT_EQ(crashFunctionOf("mnote_save@117"), "mnote_save");
  EXPECT_EQ(crashFunctionOf("main@9"), "main");
  EXPECT_EQ(crashFunctionOf("noline"), "noline");
  EXPECT_EQ(crashFunctionOf(""), "");
}

TEST(TablesTest, StackStudyCauseAttribution) {
  ReportSet Set(4, 24);
  auto addCrash = [&](int Bug, const std::string &Stack) {
    FeedbackReport Report;
    Report.Failed = true;
    Report.Trap = TrapKind::NullDeref;
    Report.StackSignature = Stack;
    Report.BugMask = FeedbackReport::bugBit(Bug);
    Set.add(Report);
  };
  // Bug 1's defect is in "loader" but it crashes in "saver".
  for (int I = 0; I < 6; ++I)
    addCrash(1, "saver@9>main@2");
  auto Rows = computeStackStudy(Set, {1}, {"loader"});
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_TRUE(Rows[0].UniqueLocation);
  EXPECT_EQ(Rows[0].CrashesNamingCause, 0u)
      << "a unique location that never names the cause is still useless";

  ReportSet Set2(4, 24);
  FeedbackReport Direct;
  Direct.Failed = true;
  Direct.Trap = TrapKind::NullDeref;
  Direct.StackSignature = "loader@4>main@2";
  Direct.BugMask = FeedbackReport::bugBit(1);
  Set2.add(Direct);
  auto Rows2 = computeStackStudy(Set2, {1}, {"loader"});
  EXPECT_EQ(Rows2[0].CrashesNamingCause, 1u);
}

TEST(TablesTest, StackStudyIgnoresNonCrashes) {
  ReportSet Set(4, 24);
  FeedbackReport Clean;
  Clean.Failed = true; // Failed by exit code, no trap, no stack.
  Clean.BugMask = FeedbackReport::bugBit(1);
  Set.add(Clean);
  auto Rows = computeStackStudy(Set, {1});
  EXPECT_EQ(Rows[0].CrashingRuns, 0u);
}
