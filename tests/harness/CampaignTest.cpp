//===- tests/harness/CampaignTest.cpp - Campaign driver tests -------------===//

#include "harness/Campaign.h"

#include "obs/Telemetry.h"
#include "runtime/Interp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

using namespace sbi;

namespace {

CampaignOptions smallOptions(size_t Runs = 150) {
  CampaignOptions Options;
  Options.NumRuns = Runs;
  Options.TrainingRuns = 40;
  Options.Seed = 777;
  return Options;
}

} // namespace

TEST(CampaignTest, ProducesOneReportPerRun) {
  CampaignResult Result = runCampaign(ccryptSubject(), smallOptions());
  EXPECT_EQ(Result.Reports.size(), 150u);
  EXPECT_EQ(Result.Reports.numPredicates(), Result.Sites.numPredicates());
  EXPECT_EQ(Result.Reports.numSites(), Result.Sites.numSites());
}

TEST(CampaignTest, HasBothLabels) {
  CampaignResult Result = runCampaign(ccryptSubject(), smallOptions());
  EXPECT_GT(Result.numFailing(), 0u);
  EXPECT_GT(Result.numSuccessful(), 0u);
}

TEST(CampaignTest, DeterministicForSameSeed) {
  CampaignResult A = runCampaign(exifSubject(), smallOptions());
  CampaignResult B = runCampaign(exifSubject(), smallOptions());
  ASSERT_EQ(A.Reports.size(), B.Reports.size());
  for (size_t I = 0; I < A.Reports.size(); ++I) {
    EXPECT_EQ(A.Reports[I].Failed, B.Reports[I].Failed);
    EXPECT_EQ(A.Reports[I].Counts.TruePredicates,
              B.Reports[I].Counts.TruePredicates);
    EXPECT_EQ(A.Reports[I].BugMask, B.Reports[I].BugMask);
  }
}

TEST(CampaignTest, DifferentSeedsDiffer) {
  CampaignOptions OtherSeed = smallOptions();
  OtherSeed.Seed = 778;
  CampaignResult A = runCampaign(exifSubject(), smallOptions());
  CampaignResult B = runCampaign(exifSubject(), OtherSeed);
  size_t Differences = 0;
  for (size_t I = 0; I < A.Reports.size(); ++I)
    Differences += A.Reports[I].Counts.TruePredicates !=
                           B.Reports[I].Counts.TruePredicates
                       ? 1
                       : 0;
  EXPECT_GT(Differences, A.Reports.size() / 2);
}

TEST(CampaignTest, FailedLabelMatchesTrapOrExit) {
  CampaignResult Result = runCampaign(bcSubject(), smallOptions());
  for (const FeedbackReport &Report : Result.Reports.reports()) {
    if (Report.Trap != TrapKind::None || Report.ExitCode != 0)
      EXPECT_TRUE(Report.Failed);
  }
}

TEST(CampaignTest, CrashedRunsHaveStacks) {
  CampaignResult Result = runCampaign(rhythmboxSubject(), smallOptions());
  for (const FeedbackReport &Report : Result.Reports.reports())
    if (Report.Trap != TrapKind::None)
      EXPECT_FALSE(Report.StackSignature.empty());
}

TEST(CampaignTest, AdaptivePlanHasMixedRates) {
  CampaignResult Result = runCampaign(mossSubject(), smallOptions(100));
  size_t FullRate = 0, Reduced = 0;
  for (uint32_t Site = 0; Site < Result.Plan.numSites(); ++Site) {
    double Rate = Result.Plan.rate(Site);
    EXPECT_GE(Rate, 0.01 - 1e-12);
    EXPECT_LE(Rate, 1.0);
    if (Rate >= 1.0)
      ++FullRate;
    else
      ++Reduced;
  }
  // Rarely executed sites get rate 1.0; hot loop sites get reduced rates.
  EXPECT_GT(FullRate, 0u);
  EXPECT_GT(Reduced, 0u);
}

TEST(CampaignTest, UniformModeUsesRequestedRate) {
  CampaignOptions Options = smallOptions(50);
  Options.Mode = SamplingMode::Uniform;
  Options.UniformRate = 0.02;
  CampaignResult Result = runCampaign(ccryptSubject(), Options);
  for (uint32_t Site = 0; Site < Result.Plan.numSites(); ++Site)
    EXPECT_DOUBLE_EQ(Result.Plan.rate(Site), 0.02);
}

TEST(CampaignTest, NoSamplingObservesEverySiteOnEveryReach) {
  CampaignOptions Options = smallOptions(50);
  Options.Mode = SamplingMode::None;
  CampaignResult Result = runCampaign(ccryptSubject(), Options);
  for (uint32_t Site = 0; Site < Result.Plan.numSites(); ++Site)
    EXPECT_DOUBLE_EQ(Result.Plan.rate(Site), 1.0);
}

TEST(CampaignTest, BugStatsAreConsistent) {
  CampaignResult Result = runCampaign(mossSubject(), smallOptions());
  ASSERT_EQ(Result.Bugs.size(), mossSubject().Bugs.size());
  for (const auto &Stats : Result.Bugs) {
    EXPECT_LE(Stats.TriggeredAndFailed, Stats.Triggered);
    EXPECT_LE(Stats.Triggered, Result.Reports.size());
  }
}

TEST(CampaignTest, BugMasksMatchBugStats) {
  CampaignResult Result = runCampaign(exifSubject(), smallOptions());
  for (const auto &Stats : Result.Bugs) {
    size_t FromMasks = 0;
    for (const FeedbackReport &Report : Result.Reports.reports())
      FromMasks += Report.hasBug(Stats.BugId) ? 1 : 0;
    EXPECT_EQ(FromMasks, Stats.Triggered);
  }
}

TEST(CampaignTest, LinesOfCodeReported) {
  CampaignResult Result = runCampaign(bcSubject(), smallOptions(20));
  EXPECT_GT(Result.LinesOfCode, 100);
}

TEST(CampaignTest, ThreadsZeroMeansHardwareThreadsAndStillRuns) {
  // Threads = 0 is "one per hardware thread"; since
  // std::thread::hardware_concurrency() may itself report 0, the resolved
  // worker count must be clamped to at least one or the campaign would
  // silently execute nothing. Identical reports double as the
  // bit-identity check for the auto-detected thread count.
  CampaignOptions Options = smallOptions(60);
  Options.Threads = 1;
  CampaignResult Serial = runCampaign(ccryptSubject(), Options);
  Options.Threads = 0;
  CampaignResult Auto = runCampaign(ccryptSubject(), Options);
  ASSERT_EQ(Auto.Reports.size(), 60u);
  for (size_t I = 0; I < Serial.Reports.size(); ++I) {
    EXPECT_EQ(Serial.Reports[I].Failed, Auto.Reports[I].Failed) << I;
    EXPECT_EQ(Serial.Reports[I].Counts.TruePredicates,
              Auto.Reports[I].Counts.TruePredicates)
        << I;
  }
}

TEST(CampaignTest, ParallelCampaignIsBitIdenticalToSerial) {
  CampaignOptions Options = smallOptions(160);
  CampaignResult Serial = runCampaign(mossSubject(), Options);
  Options.Threads = 4;
  CampaignResult Parallel = runCampaign(mossSubject(), Options);
  ASSERT_EQ(Serial.Reports.size(), Parallel.Reports.size());
  for (size_t I = 0; I < Serial.Reports.size(); ++I) {
    EXPECT_EQ(Serial.Reports[I].Failed, Parallel.Reports[I].Failed) << I;
    EXPECT_EQ(Serial.Reports[I].BugMask, Parallel.Reports[I].BugMask) << I;
    EXPECT_EQ(Serial.Reports[I].StackSignature,
              Parallel.Reports[I].StackSignature)
        << I;
    EXPECT_EQ(Serial.Reports[I].Counts.TruePredicates,
              Parallel.Reports[I].Counts.TruePredicates)
        << I;
    EXPECT_EQ(Serial.Reports[I].Counts.SiteObservations,
              Parallel.Reports[I].Counts.SiteObservations)
        << I;
  }
  ASSERT_EQ(Serial.Bugs.size(), Parallel.Bugs.size());
  for (size_t I = 0; I < Serial.Bugs.size(); ++I)
    EXPECT_EQ(Serial.Bugs[I].Triggered, Parallel.Bugs[I].Triggered);
}

TEST(CampaignTest, EnginesProduceIdenticalCampaigns) {
  CampaignOptions Options = smallOptions(120);
  CampaignResult ViaInterp = runCampaign(exifSubject(), Options);
  Options.Exec = Engine::VM;
  CampaignResult ViaVM = runCampaign(exifSubject(), Options);
  ASSERT_EQ(ViaInterp.Reports.size(), ViaVM.Reports.size());
  for (size_t I = 0; I < ViaInterp.Reports.size(); ++I) {
    EXPECT_EQ(ViaInterp.Reports[I].Failed, ViaVM.Reports[I].Failed) << I;
    EXPECT_EQ(ViaInterp.Reports[I].Trap, ViaVM.Reports[I].Trap) << I;
    EXPECT_EQ(ViaInterp.Reports[I].BugMask, ViaVM.Reports[I].BugMask) << I;
    EXPECT_EQ(ViaInterp.Reports[I].Counts.TruePredicates,
              ViaVM.Reports[I].Counts.TruePredicates)
        << I;
    EXPECT_EQ(ViaInterp.Reports[I].Counts.SiteObservations,
              ViaVM.Reports[I].Counts.SiteObservations)
        << I;
  }
}

TEST(CampaignTest, CompileSubjectSourceWorksForAllSubjects) {
  for (const Subject *Subj : allSubjects()) {
    EXPECT_NE(compileSubjectSource(Subj->Source, Subj->Name), nullptr);
    EXPECT_NE(compileSubjectSource(Subj->GoldenSource, Subj->Name),
              nullptr);
  }
}

TEST(CampaignTest, ProgressCallbackCoversTheWholeRunLoop) {
  CampaignOptions Options = smallOptions(120);
  Options.Threads = 4;
  std::mutex Mu;
  size_t Calls = 0, MaxDone = 0, Total = 0;
  Options.Progress = [&](size_t Done, size_t T) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Calls;
    MaxDone = std::max(MaxDone, Done);
    Total = T;
  };
  runCampaign(ccryptSubject(), Options);
  EXPECT_GT(Calls, 0u);
  EXPECT_EQ(Total, 120u);
  // The completion call always fires, whatever the reporting stride.
  EXPECT_EQ(MaxDone, 120u);
}

TEST(CampaignTest, TelemetryDoesNotPerturbCampaignResults) {
  // Reach-stat tracking wraps every sampling decision; it must never
  // change one. A telemetry-on campaign must stay bit-identical to the
  // telemetry-off campaign with the same seed.
  CampaignOptions Options = smallOptions(100);
  ASSERT_FALSE(Telemetry::enabled());
  CampaignResult Off = runCampaign(mossSubject(), Options);
  Telemetry::setEnabled(true);
  CampaignResult On = runCampaign(mossSubject(), Options);
  Telemetry::setEnabled(false);
  ASSERT_EQ(Off.Reports.size(), On.Reports.size());
  for (size_t I = 0; I < Off.Reports.size(); ++I) {
    EXPECT_EQ(Off.Reports[I].Failed, On.Reports[I].Failed) << I;
    EXPECT_EQ(Off.Reports[I].Counts.TruePredicates,
              On.Reports[I].Counts.TruePredicates)
        << I;
    EXPECT_EQ(Off.Reports[I].Counts.SiteObservations,
              On.Reports[I].Counts.SiteObservations)
        << I;
  }
}

TEST(CampaignTest, SummaryGaugesDescribeTheMostRecentCampaign) {
  CampaignOptions Options = smallOptions(90);
  CampaignResult Result = runCampaign(exifSubject(), Options);
  const MetricsRegistry &Metrics = Telemetry::metrics();
  const Gauge *Runs = Metrics.findGauge("campaign.runs");
  const Gauge *Failing = Metrics.findGauge("campaign.failing");
  const Label *Mode = Metrics.findLabel("campaign.sampling_mode");
  ASSERT_NE(Runs, nullptr);
  ASSERT_NE(Failing, nullptr);
  ASSERT_NE(Mode, nullptr);
  EXPECT_EQ(Runs->value(), 90.0);
  EXPECT_EQ(Failing->value(), static_cast<double>(Result.numFailing()));
  EXPECT_EQ(Mode->value(), Result.Plan.name());
}

TEST(CampaignTest, TelemetryRecordsRealizedSamplingRates) {
  CampaignOptions Options = smallOptions(150);
  Telemetry::setEnabled(true);
  runCampaign(mossSubject(), Options);
  Telemetry::setEnabled(false);
  const MetricsRegistry &Metrics = Telemetry::metrics();
  // moss has sites of all three schemes; with adaptive sampling over 150
  // runs the realized per-scheme rate must track the reach-weighted
  // planned rate closely (fair Bernoulli coin).
  for (const char *SchemeName : {"branches", "returns", "scalar_pairs"}) {
    const Gauge *Planned = Metrics.findGauge(
        std::string("campaign.sampling.") + SchemeName + ".planned_rate");
    const Gauge *Realized = Metrics.findGauge(
        std::string("campaign.sampling.") + SchemeName + ".realized_rate");
    ASSERT_NE(Planned, nullptr) << SchemeName;
    ASSERT_NE(Realized, nullptr) << SchemeName;
    EXPECT_GT(Realized->value(), 0.0) << SchemeName;
    EXPECT_LE(Realized->value(), 1.0) << SchemeName;
    EXPECT_NEAR(Realized->value(), Planned->value(),
                0.05 * std::max(Planned->value(), 0.01))
        << SchemeName;
  }
}
