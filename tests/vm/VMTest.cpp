//===- tests/vm/VMTest.cpp - Bytecode compiler and VM unit tests ----------===//

#include "vm/Compiler.h"
#include "vm/VM.h"

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

struct Compiled {
  std::unique_ptr<Program> Prog;
  CompiledProgram Code;

  explicit Compiled(const std::string &Source) {
    std::vector<Diagnostic> Diags;
    Prog = parseAndAnalyze(Source, Diags);
    EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
    if (Prog)
      Code = compileProgram(*Prog);
  }

  RunOutcome run(std::vector<std::string> Args = {}, size_t Pad = 4) {
    RunConfig Config;
    Config.Args = std::move(Args);
    Config.OverrunPad = Pad;
    return runCompiled(Code, Config);
  }
};

} // namespace

TEST(VMTest, HelloWorld) {
  Compiled C("fn main() { println(\"hello vm\"); }");
  EXPECT_EQ(C.run().Output, "hello vm\n");
}

TEST(VMTest, ArithmeticAndControlFlow) {
  Compiled C(R"(fn main() {
  int sum = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i % 3 == 0) { continue; }
    if (i == 8) { break; }
    sum = sum + i;
  }
  println(sum);
})");
  EXPECT_EQ(C.run().Output, "19\n"); // 1 + 2 + 4 + 5 + 7.
}

TEST(VMTest, Recursion) {
  Compiled C(R"(
fn fact(int n) {
  if (n < 2) { return 1; }
  return n * fact(n - 1);
}
fn main() { println(fact(10)); })");
  EXPECT_EQ(C.run().Output, "3628800\n");
}

TEST(VMTest, ShortCircuitSkipsRhs) {
  Compiled C(R"(
int hits = 0;
fn touch() { hits = hits + 1; return 1; }
fn main() {
  int a = 0 && touch();
  int b = 1 || touch();
  println(hits);
  println(a);
  println(b);
})");
  EXPECT_EQ(C.run().Output, "0\n0\n1\n");
}

TEST(VMTest, GlobalsInitialize) {
  Compiled C(R"(
int base = 5;
int derived = base * base;
fn main() { println(derived); })");
  EXPECT_EQ(C.run().Output, "25\n");
}

TEST(VMTest, TrapsMatchContract) {
  Compiled Null(R"(
record R { x; }
fn main() { rec r = null; println(r.x); })");
  EXPECT_EQ(Null.run().Trap, TrapKind::NullDeref);

  Compiled Oob("fn main() { arr a = mkarray(2); a[99] = 1; }");
  EXPECT_EQ(Oob.run().Trap, TrapKind::OutOfBounds);

  Compiled Div("fn main() { int z = 0; println(3 / z); }");
  EXPECT_EQ(Div.run().Trap, TrapKind::DivByZero);
}

TEST(VMTest, SilentOverrunPadding) {
  Compiled C(R"(fn main() {
  arr a = mkarray(2);
  a[2] = 7;
  println(a[2]);
})");
  EXPECT_EQ(C.run({}, /*Pad=*/4).Output, "7\n");
  EXPECT_EQ(C.run({}, /*Pad=*/0).Trap, TrapKind::OutOfBounds);
}

TEST(VMTest, StackTraceShape) {
  Compiled C(R"(
fn inner() { trap("deep"); return 0; }
fn outer() { return inner(); }
fn main() { outer(); })");
  RunOutcome Outcome = C.run();
  ASSERT_EQ(Outcome.StackTrace.size(), 3u);
  EXPECT_EQ(Outcome.StackTrace[0].substr(0, 6), "inner@");
  EXPECT_EQ(Outcome.StackTrace[2].substr(0, 5), "main@");
}

TEST(VMTest, MainReturnIsExitCode) {
  Compiled C("fn main() { return 4; }");
  EXPECT_EQ(C.run().ExitCode, 4);
}

TEST(VMTest, StepLimit) {
  Compiled C("fn main() { while (1) { } }");
  RunConfig Config;
  Config.StepLimit = 5000;
  RunOutcome Outcome = runCompiled(C.Code, Config);
  EXPECT_EQ(Outcome.Trap, TrapKind::StepLimit);
}

TEST(VMTest, DisassemblyIsReadable) {
  Compiled C("fn main() { println(1 + 2); }");
  std::string Text = C.Code.disassemble();
  EXPECT_NE(Text.find("chunk main"), std::string::npos);
  EXPECT_NE(Text.find("push.int"), std::string::npos);
  EXPECT_NE(Text.find("call.intrinsic"), std::string::npos);
}

TEST(VMTest, ArgsAndBugMarkers) {
  Compiled C(R"(fn main() {
  println(arg(0));
  __bug(4);
  println(nargs());
})");
  RunOutcome Outcome = C.run({"alpha", "beta"});
  EXPECT_EQ(Outcome.Output, "alpha\n2\n");
  EXPECT_EQ(Outcome.BugsTriggered, (std::vector<int>{4}));
}

TEST(VMTest, CorruptedChunkUnderflowTrapsInsteadOfUB) {
  // A hand-mangled chunk that pops an empty operand stack. This must be a
  // hard BadBytecode trap — not an assert compiled out under NDEBUG — so
  // malformed bytecode cannot read freed memory in Release builds.
  CompiledProgram Code;
  Code.InitChunk.Name = "<globals>";
  Code.InitChunk.Code.push_back({Opcode::Halt, 0, 0, 0, 0, 1});
  Chunk Main;
  Main.Name = "main";
  Main.Code.push_back({Opcode::Pop, 0, 0, 0, 0, 2});
  Main.Code.push_back({Opcode::PushUnit, 0, 0, 0, 0, 3});
  Main.Code.push_back({Opcode::Return, 0, 0, 0, 0, 3});
  Code.Chunks.push_back(std::move(Main));
  Code.MainChunk = 0;
  Code.flatten();

  RunConfig Config;
  RunOutcome Outcome = runCompiled(Code, Config);
  EXPECT_EQ(Outcome.Trap, TrapKind::BadBytecode);
  EXPECT_EQ(Outcome.TrapMessage, "operand stack underflow");
  ASSERT_FALSE(Outcome.StackTrace.empty());
  EXPECT_EQ(Outcome.StackTrace[0].substr(0, 5), "main@");
}

TEST(VMTest, CorruptedJumpTargetTraps) {
  // A jump whose target lies outside the instruction stream must trap
  // instead of running off into unrelated memory.
  CompiledProgram Code;
  Code.InitChunk.Name = "<globals>";
  Code.InitChunk.Code.push_back({Opcode::Halt, 0, 0, 0, 0, 1});
  Chunk Main;
  Main.Name = "main";
  Main.Code.push_back({Opcode::Jump, 99999, 0, 0, 0, 2});
  Code.Chunks.push_back(std::move(Main));
  Code.MainChunk = 0;
  Code.flatten();

  RunConfig Config;
  RunOutcome Outcome = runCompiled(Code, Config);
  EXPECT_EQ(Outcome.Trap, TrapKind::BadBytecode);
  EXPECT_EQ(Outcome.TrapMessage, "program counter out of range");
}

TEST(VMTest, SuperinstructionsPreserveBehavior) {
  // The peephole pass must fuse at least the load-local+observed-branch
  // pair in a counting loop, and the fused program must behave identically.
  Compiled C(R"(fn main() {
  int sum = 0;
  for (int i = 0; i < 100; i = i + 1) { sum = sum + i; }
  println(sum);
})");
  std::string Text = C.Code.disassemble();
  EXPECT_NE(Text.find("local."), std::string::npos) << Text;
  EXPECT_EQ(C.run().Output, "4950\n");
}
