//===- tests/vm/FuzzDifferentialTest.cpp - Random-program engine fuzzing --===//
//
// Grammar-directed differential fuzzing: generate random well-formed
// MicroC programs (termination guaranteed by construction — the only loops
// are counted), run each on both engines, and require identical outcomes.
// Unlike the subject-based differential tests, these programs explore odd
// corners no hand-written subject reaches: deeply nested expressions,
// shadowing, division by freshly computed zeros, out-of-range indexing,
// string/char arithmetic, and call chains.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"
#include "runtime/Interp.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

/// Generates random, always-terminating MicroC programs.
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Out.clear();
    FunctionNames.clear();

    int NumGlobals = static_cast<int>(R.nextInRange(0, 3));
    for (int I = 0; I < NumGlobals; ++I) {
      Globals.push_back(format("g%d", I));
      Out += format("int g%d = %d;\n", I,
                    static_cast<int>(R.nextInRange(-20, 20)));
    }
    Out += "str gtext = \"" + randomWord() + "\";\n";

    int NumFunctions = static_cast<int>(R.nextInRange(0, 3));
    for (int I = 0; I < NumFunctions; ++I)
      emitFunction(format("f%d", I));
    emitMain();
    return Out;
  }

private:
  std::string randomWord() {
    std::string Word;
    size_t Len = static_cast<size_t>(R.nextInRange(1, 10));
    for (size_t I = 0; I < Len; ++I)
      Word += static_cast<char>('a' + R.nextBelow(26));
    return Word;
  }

  void emitFunction(const std::string &Name) {
    int NumParams = static_cast<int>(R.nextInRange(1, 3));
    Locals.clear();
    std::string Params;
    for (int I = 0; I < NumParams; ++I) {
      if (I)
        Params += ", ";
      Params += format("int p%d", I);
      Locals.push_back(format("p%d", I));
    }
    Out += format("fn %s(%s) {\n", Name.c_str(), Params.c_str());
    emitBlock(2, /*Depth=*/0);
    Out += format("  return %s;\n}\n", expr(2).c_str());
    FunctionNames.push_back({Name, NumParams});
  }

  void emitMain() {
    Locals.clear();
    Out += "fn main() {\n";
    emitBlock(4, /*Depth=*/0);
    Out += format("  println(%s);\n", expr(2).c_str());
    Out += "}\n";
  }

  void emitBlock(int MaxStatements, int Depth) {
    // Lexical scoping: locals declared inside the block are not visible
    // after it closes.
    size_t Visible = Locals.size();
    int NumStatements =
        static_cast<int>(R.nextInRange(1, std::max(1, MaxStatements)));
    for (int I = 0; I < NumStatements; ++I)
      emitStmt(Depth);
    Locals.resize(Visible);
  }

  void emitStmt(int Depth) {
    std::string Indent(static_cast<size_t>(2 * (Depth + 1)), ' ');
    double Roll = R.nextDouble();
    size_t LocalsBefore = Locals.size();

    if (Roll < 0.30 || Locals.empty()) {
      std::string Name = format("v%zu", NextLocal++);
      Out += Indent + format("int %s = %s;\n", Name.c_str(),
                             expr(2).c_str());
      Locals.push_back(Name);
      (void)LocalsBefore;
      return;
    }
    if (Roll < 0.50) {
      std::string Target = pickAssignable();
      if (!Target.empty()) {
        Out += Indent + format("%s = %s;\n", Target.c_str(),
                               expr(2).c_str());
        return;
      }
      // No assignable variable in scope; fall through to a declaration.
      std::string Name = format("v%zu", NextLocal++);
      Out += Indent + format("int %s = %s;\n", Name.c_str(),
                             expr(2).c_str());
      Locals.push_back(Name);
      return;
    }
    if (Roll < 0.62 && Depth < 2) {
      Out += Indent + format("if (%s) {\n", expr(1).c_str());
      emitBlock(2, Depth + 1);
      if (R.nextBernoulli(0.5)) {
        Out += Indent + "} else {\n";
        emitBlock(2, Depth + 1);
      }
      Out += Indent + "}\n";
      return;
    }
    if (Roll < 0.74 && Depth < 2) {
      // Counted loop: termination by construction.
      std::string Counter = format("i%zu", NextLocal++);
      Out += Indent + format("for (int %s = 0; %s < %d; %s = %s + 1) {\n",
                             Counter.c_str(), Counter.c_str(),
                             static_cast<int>(R.nextInRange(1, 6)),
                             Counter.c_str(), Counter.c_str());
      // The counter is readable inside the body but never an assignment
      // target: that is what guarantees termination.
      Locals.push_back(Counter);
      Counters.push_back(Counter);
      emitBlock(2, Depth + 1);
      Out += Indent + "}\n";
      Counters.pop_back();
      Locals.pop_back();
      return;
    }
    if (Roll < 0.84) {
      Out += Indent + format("println(%s);\n", expr(1).c_str());
      return;
    }
    if (Roll < 0.92) {
      // A small array workout; indices may run out of bounds, which both
      // engines must handle identically.
      std::string Name = format("a%zu", NextLocal++);
      Out += Indent + format("arr %s = mkarray(%d);\n", Name.c_str(),
                             static_cast<int>(R.nextInRange(1, 5)));
      Out += Indent + format("%s[%s] = %s;\n", Name.c_str(),
                             expr(1).c_str(), expr(1).c_str());
      Out += Indent + format("println(%s[%s]);\n", Name.c_str(),
                             expr(1).c_str());
      return;
    }
    Out += Indent + format("println(charat(gtext, %s));\n", expr(1).c_str());
  }

  std::string pickVar() {
    if (!Locals.empty() && (Globals.empty() || R.nextBernoulli(0.7)))
      return Locals[R.nextBelow(Locals.size())];
    if (!Globals.empty())
      return Globals[R.nextBelow(Globals.size())];
    return Locals[R.nextBelow(Locals.size())];
  }

  bool isCounter(const std::string &Name) const {
    for (const std::string &Counter : Counters)
      if (Counter == Name)
        return true;
    return false;
  }

  /// A variable that may be written without breaking loop termination;
  /// empty when none exists.
  std::string pickAssignable() {
    for (int Attempt = 0; Attempt < 8; ++Attempt) {
      std::string Name = pickVar();
      if (!isCounter(Name))
        return Name;
    }
    return std::string();
  }

  std::string expr(int Depth) {
    double Roll = R.nextDouble();
    if (Depth <= 0 || Roll < 0.25)
      return format("%d", static_cast<int>(R.nextInRange(-9, 9)));
    if (Roll < 0.50 && !(Locals.empty() && Globals.empty()))
      return pickVar();
    if (Roll < 0.80) {
      static const char *Ops[] = {"+", "-",  "*",  "/",  "%", "<",
                                  "<=", ">", ">=", "==", "!=", "&&",
                                  "||"};
      const char *Op = Ops[R.nextBelow(13)];
      return format("(%s %s %s)", expr(Depth - 1).c_str(), Op,
                    expr(Depth - 1).c_str());
    }
    if (Roll < 0.88)
      return format("(-%s)", expr(Depth - 1).c_str());
    if (Roll < 0.94 && !FunctionNames.empty()) {
      const auto &[Name, Arity] = FunctionNames[R.nextBelow(
          FunctionNames.size())];
      std::string Call = Name + "(";
      for (int I = 0; I < Arity; ++I) {
        if (I)
          Call += ", ";
        Call += expr(Depth - 1);
      }
      return Call + ")";
    }
    static const char *Unary[] = {"len(gtext)", "atoi(gtext)", "nargs()"};
    return Unary[R.nextBelow(3)];
  }

  Rng R;
  std::string Out;
  std::vector<std::string> Globals;
  std::vector<std::string> Locals;
  std::vector<std::string> Counters;
  std::vector<std::pair<std::string, int>> FunctionNames;
  size_t NextLocal = 0;
};

} // namespace

class FuzzDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferentialTest, RandomProgramsAgreeAcrossEngines) {
  Rng Seeder(GetParam());
  int Generated = 0, Compiled = 0;
  for (int Attempt = 0; Attempt < 120; ++Attempt) {
    ProgramGenerator Generator(Seeder.next());
    std::string Source = Generator.generate();
    ++Generated;

    std::vector<Diagnostic> Diags;
    auto Prog = parseAndAnalyze(Source, Diags);
    ASSERT_NE(Prog, nullptr)
        << "generator must produce valid programs:\n"
        << renderDiagnostics(Diags) << "\n"
        << Source;
    ++Compiled;
    CompiledProgram Code = compileProgram(*Prog);

    for (int Input = 0; Input < 3; ++Input) {
      RunConfig Config;
      Config.Args = {"7", "frob"};
      Config.OverrunPad = static_cast<size_t>(Seeder.nextBelow(4));
      Config.StepLimit = 500'000;

      RunOutcome A = runProgram(*Prog, Config);
      RunOutcome B = runCompiled(Code, Config);
      // Termination is by construction; the step budget must never be the
      // thing that stops a run (the engines count different step units).
      ASSERT_NE(A.Trap, TrapKind::StepLimit) << Source;
      ASSERT_NE(B.Trap, TrapKind::StepLimit) << Source;
      ASSERT_EQ(A.Trap, B.Trap) << Source;
      ASSERT_EQ(A.TrapMessage, B.TrapMessage) << Source;
      ASSERT_EQ(A.Output, B.Output) << Source;
      ASSERT_EQ(A.ExitCode, B.ExitCode) << Source;
    }
  }
  EXPECT_EQ(Generated, Compiled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Values(101, 202, 303, 404));
