//===- tests/vm/DifferentialTest.cpp - Engine equivalence tests -----------===//
//
// The VM's contract: identical observable behaviour to the tree-walking
// interpreter — output, trap kind and message, exit code, ground-truth bug
// markers, and the exact sequence of instrumentation events (so that
// collected feedback reports are bit-identical, including under sampling
// with the same seed). These tests sweep every bundled subject across
// hundreds of random inputs and hold both engines to that contract.
//
//===----------------------------------------------------------------------===//

#include "instrument/Collector.h"
#include "instrument/Sites.h"
#include "lang/Sema.h"
#include "runtime/Interp.h"
#include "runtime/Semantics.h"
#include "subjects/Subjects.h"
#include "support/Random.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

void expectSameOutcome(const RunOutcome &A, const RunOutcome &B,
                       const std::string &Context) {
  EXPECT_EQ(A.Trap, B.Trap) << Context;
  EXPECT_EQ(A.TrapMessage, B.TrapMessage) << Context;
  EXPECT_EQ(A.ExitCode, B.ExitCode) << Context;
  EXPECT_EQ(A.Output, B.Output) << Context;
  EXPECT_EQ(A.BugsTriggered, B.BugsTriggered) << Context;
  // Stack traces agree on the frame sequence; lines may differ by the
  // engines' different notion of "current position".
  ASSERT_EQ(A.StackTrace.size(), B.StackTrace.size()) << Context;
  for (size_t I = 0; I < A.StackTrace.size(); ++I) {
    std::string FuncA = A.StackTrace[I].substr(0, A.StackTrace[I].find('@'));
    std::string FuncB = B.StackTrace[I].substr(0, B.StackTrace[I].find('@'));
    EXPECT_EQ(FuncA, FuncB) << Context << " frame " << I;
  }
}

class SubjectDifferentialTest
    : public ::testing::TestWithParam<const Subject *> {};

} // namespace

TEST_P(SubjectDifferentialTest, OutcomesMatchAcrossEngines) {
  const Subject &Subj = *GetParam();
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Subj.Source, Diags);
  ASSERT_NE(Prog, nullptr) << renderDiagnostics(Diags);
  CompiledProgram Code = compileProgram(*Prog);

  Rng Seeder(0xD1FF);
  for (int Run = 0; Run < 250; ++Run) {
    Rng InputRng(Seeder.next());
    RunConfig Config;
    Config.Args = Subj.GenerateInput(InputRng);
    Config.OverrunPad = static_cast<size_t>(InputRng.nextBelow(8));

    RunOutcome FromInterp = runProgram(*Prog, Config);
    RunOutcome FromVM = runCompiled(Code, Config);
    expectSameOutcome(FromInterp, FromVM,
                      Subj.Name + " run " + std::to_string(Run));
    if (::testing::Test::HasFailure())
      return; // One detailed failure is enough.
  }
}

TEST_P(SubjectDifferentialTest, FullRateReportsAreBitIdentical) {
  const Subject &Subj = *GetParam();
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Subj.Source, Diags);
  ASSERT_NE(Prog, nullptr) << renderDiagnostics(Diags);
  CompiledProgram Code = compileProgram(*Prog);
  SiteTable Sites = SiteTable::build(*Prog);

  ReportCollector InterpCollector(Sites, SamplingPlan::full(Sites.numSites()));
  ReportCollector VMCollector(Sites, SamplingPlan::full(Sites.numSites()));

  Rng Seeder(0xD2FF);
  for (int Run = 0; Run < 60; ++Run) {
    Rng InputRng(Seeder.next());
    RunConfig Config;
    Config.Args = Subj.GenerateInput(InputRng);
    Config.OverrunPad = static_cast<size_t>(InputRng.nextBelow(8));

    Config.Observer = &InterpCollector;
    InterpCollector.beginRun(7);
    runProgram(*Prog, Config);
    RawReport FromInterp = InterpCollector.takeReport();

    Config.Observer = &VMCollector;
    VMCollector.beginRun(7);
    runCompiled(Code, Config);
    RawReport FromVM = VMCollector.takeReport();

    ASSERT_EQ(FromInterp.SiteObservations, FromVM.SiteObservations)
        << Subj.Name << " run " << Run;
    ASSERT_EQ(FromInterp.TruePredicates, FromVM.TruePredicates)
        << Subj.Name << " run " << Run;
  }
}

TEST_P(SubjectDifferentialTest, SampledReportsMatchUnderSameSeed) {
  // Stronger than outcome equality: the engines must emit instrumentation
  // events in the same order, so the geometric skip-counting consumes the
  // sampling RNG identically.
  const Subject &Subj = *GetParam();
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Subj.Source, Diags);
  ASSERT_NE(Prog, nullptr) << renderDiagnostics(Diags);
  CompiledProgram Code = compileProgram(*Prog);
  SiteTable Sites = SiteTable::build(*Prog);

  ReportCollector InterpCollector(
      Sites, SamplingPlan::uniform(Sites.numSites(), 0.07));
  ReportCollector VMCollector(
      Sites, SamplingPlan::uniform(Sites.numSites(), 0.07));

  Rng Seeder(0xD3FF);
  for (int Run = 0; Run < 40; ++Run) {
    Rng InputRng(Seeder.next());
    RunConfig Config;
    Config.Args = Subj.GenerateInput(InputRng);
    Config.OverrunPad = static_cast<size_t>(InputRng.nextBelow(8));
    uint64_t SampleSeed = Seeder.next();

    Config.Observer = &InterpCollector;
    InterpCollector.beginRun(SampleSeed);
    runProgram(*Prog, Config);
    RawReport FromInterp = InterpCollector.takeReport();

    Config.Observer = &VMCollector;
    VMCollector.beginRun(SampleSeed);
    runCompiled(Code, Config);
    RawReport FromVM = VMCollector.takeReport();

    ASSERT_EQ(FromInterp.SiteObservations, FromVM.SiteObservations)
        << Subj.Name << " run " << Run;
    ASSERT_EQ(FromInterp.TruePredicates, FromVM.TruePredicates)
        << Subj.Name << " run " << Run;
  }
}

TEST_P(SubjectDifferentialTest, GoldenBuildsMatchToo) {
  const Subject &Subj = *GetParam();
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Subj.GoldenSource, Diags);
  ASSERT_NE(Prog, nullptr) << renderDiagnostics(Diags);
  CompiledProgram Code = compileProgram(*Prog);

  Rng Seeder(0xD4FF);
  for (int Run = 0; Run < 100; ++Run) {
    Rng InputRng(Seeder.next());
    RunConfig Config;
    Config.Args = Subj.GenerateInput(InputRng);
    Config.OverrunPad = static_cast<size_t>(InputRng.nextBelow(8));
    RunOutcome FromInterp = runProgram(*Prog, Config);
    RunOutcome FromVM = runCompiled(Code, Config);
    expectSameOutcome(FromInterp, FromVM,
                      Subj.Name + "-golden run " + std::to_string(Run));
    if (::testing::Test::HasFailure())
      return;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, SubjectDifferentialTest,
                         ::testing::ValuesIn(allSubjects()),
                         [](const auto &Info) { return Info.param->Name; });

TEST(OutputCapTest, TruncatesByteExactlyAtCapInBothEngines) {
  // 1000-byte writes do not divide MaxOutputBytes, so the final print that
  // crosses the cap must be truncated mid-write: both engines retain exactly
  // MaxOutputBytes. (The old behavior dropped the whole overflowing write,
  // and only in one engine, so outputs diverged at the boundary.)
  const char *Source = R"(fn main() {
  str S = "x";
  int I = 0;
  while (I < 10) { S = strcat(S, S); I = I + 1; }
  S = substr(S, 0, 1000);
  int N = 0;
  while (N < 1049) { print(S); N = N + 1; }
})";
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  ASSERT_TRUE(Prog) << "parse failed";
  CompiledProgram Code = compileProgram(*Prog);

  RunConfig Config;
  RunOutcome FromInterp = runProgram(*Prog, Config);
  RunOutcome FromVM = runCompiled(Code, Config);
  EXPECT_EQ(FromInterp.Output.size(), MaxOutputBytes);
  EXPECT_EQ(FromVM.Output.size(), MaxOutputBytes);
  EXPECT_EQ(FromInterp.Output, FromVM.Output);
  EXPECT_EQ(FromInterp.Trap, TrapKind::None);
  EXPECT_EQ(FromVM.Trap, TrapKind::None);
}
