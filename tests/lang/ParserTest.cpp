//===- tests/lang/ParserTest.cpp - Parser unit tests ----------------------===//

#include "lang/Parser.h"

#include "lang/AstPrinter.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

std::unique_ptr<Program> parseOk(std::string_view Source) {
  std::vector<Diagnostic> Diags;
  auto Prog = Parser::parse(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  return Prog;
}

std::string firstError(std::string_view Source) {
  std::vector<Diagnostic> Diags;
  auto Prog = Parser::parse(Source, Diags);
  if (Prog)
    return "";
  EXPECT_FALSE(Diags.empty());
  return Diags.empty() ? "" : Diags[0].Message;
}

/// Parses "fn main() { return <expr>; }" and prints the expression back.
std::string roundTripExpr(const std::string &Expr) {
  auto Prog = parseOk("fn main() { return " + Expr + "; }");
  if (!Prog)
    return "<parse error>";
  auto &Return = static_cast<ReturnStmt &>(*Prog->Functions[0]->Body->Body[0]);
  return exprToString(*Return.Value);
}

} // namespace

TEST(ParserTest, EmptyProgram) {
  auto Prog = parseOk("");
  EXPECT_TRUE(Prog->Functions.empty());
  EXPECT_TRUE(Prog->Globals.empty());
  EXPECT_TRUE(Prog->Records.empty());
}

TEST(ParserTest, FunctionWithParams) {
  auto Prog = parseOk("fn add(int a, int b) { return a + b; }");
  ASSERT_EQ(Prog->Functions.size(), 1u);
  const FuncDecl &Func = *Prog->Functions[0];
  EXPECT_EQ(Func.Name, "add");
  ASSERT_EQ(Func.Params.size(), 2u);
  EXPECT_EQ(Func.Params[0].Name, "a");
  EXPECT_EQ(Func.Params[1].Kind, VarKind::Int);
}

TEST(ParserTest, AllParamKinds) {
  auto Prog = parseOk("fn f(int a, str b, arr c, rec d) { return 0; }");
  const FuncDecl &Func = *Prog->Functions[0];
  EXPECT_EQ(Func.Params[0].Kind, VarKind::Int);
  EXPECT_EQ(Func.Params[1].Kind, VarKind::Str);
  EXPECT_EQ(Func.Params[2].Kind, VarKind::Arr);
  EXPECT_EQ(Func.Params[3].Kind, VarKind::Rec);
}

TEST(ParserTest, Globals) {
  auto Prog = parseOk("int x = 5;\nstr s;\narr a = null;\n");
  ASSERT_EQ(Prog->Globals.size(), 3u);
  EXPECT_EQ(Prog->Globals[0]->Name, "x");
  EXPECT_NE(Prog->Globals[0]->Init, nullptr);
  EXPECT_EQ(Prog->Globals[1]->Init, nullptr);
}

TEST(ParserTest, RecordDecl) {
  auto Prog = parseOk("record Point { x; y; }");
  ASSERT_EQ(Prog->Records.size(), 1u);
  EXPECT_EQ(Prog->Records[0]->Name, "Point");
  EXPECT_EQ(Prog->Records[0]->fieldIndex("y"), 1);
  EXPECT_EQ(Prog->Records[0]->fieldIndex("z"), -1);
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  EXPECT_EQ(roundTripExpr("1 + 2 * 3"), "1 + (2 * 3)");
  EXPECT_EQ(roundTripExpr("(1 + 2) * 3"), "(1 + 2) * 3");
}

TEST(ParserTest, PrecedenceComparisonOverLogic) {
  EXPECT_EQ(roundTripExpr("a < b && c > d"), "(a < b) && (c > d)");
  EXPECT_EQ(roundTripExpr("a == b || c != d"), "(a == b) || (c != d)");
}

TEST(ParserTest, PrecedenceAndOverOr) {
  EXPECT_EQ(roundTripExpr("a || b && c"), "a || (b && c)");
}

TEST(ParserTest, LeftAssociativity) {
  EXPECT_EQ(roundTripExpr("a - b - c"), "(a - b) - c");
  EXPECT_EQ(roundTripExpr("a / b / c"), "(a / b) / c");
}

TEST(ParserTest, UnaryOperators) {
  EXPECT_EQ(roundTripExpr("-x + !y"), "-x + !y");
  EXPECT_EQ(roundTripExpr("-(x + y)"), "-(x + y)");
}

TEST(ParserTest, PostfixChains) {
  EXPECT_EQ(roundTripExpr("a[1].f"), "a[1].f");
  EXPECT_EQ(roundTripExpr("m[i][j]"), "m[i][j]");
  EXPECT_EQ(roundTripExpr("p.q.r"), "p.q.r");
}

TEST(ParserTest, Calls) {
  EXPECT_EQ(roundTripExpr("f()"), "f()");
  EXPECT_EQ(roundTripExpr("g(1, x, \"s\")"), "g(1, x, \"s\")");
}

TEST(ParserTest, NewExpression) {
  EXPECT_EQ(roundTripExpr("new Point"), "new Point");
}

TEST(ParserTest, IfElseChain) {
  auto Prog = parseOk(R"(
fn main() {
  if (1) { return 1; } else if (2) { return 2; } else { return 3; }
}
)");
  auto &If = static_cast<IfStmt &>(*Prog->Functions[0]->Body->Body[0]);
  ASSERT_NE(If.Else, nullptr);
  EXPECT_EQ(If.Else->Kind, StmtKind::If);
}

TEST(ParserTest, WhileAndFor) {
  auto Prog = parseOk(R"(
fn main() {
  while (1) { break; }
  for (int i = 0; i < 10; i = i + 1) { continue; }
  for (;;) { break; }
}
)");
  auto &Body = Prog->Functions[0]->Body->Body;
  ASSERT_EQ(Body.size(), 3u);
  EXPECT_EQ(Body[0]->Kind, StmtKind::While);
  auto &For = static_cast<ForStmt &>(*Body[1]);
  EXPECT_NE(For.Init, nullptr);
  EXPECT_NE(For.Cond, nullptr);
  EXPECT_NE(For.Step, nullptr);
  auto &Bare = static_cast<ForStmt &>(*Body[2]);
  EXPECT_EQ(Bare.Init, nullptr);
  EXPECT_EQ(Bare.Cond, nullptr);
  EXPECT_EQ(Bare.Step, nullptr);
}

TEST(ParserTest, AssignmentTargets) {
  auto Prog = parseOk(R"(
fn main() {
  int x = 0;
  x = 1;
  arr a = mkarray(3);
  a[0] = 2;
}
)");
  auto &Body = Prog->Functions[0]->Body->Body;
  EXPECT_EQ(Body[1]->Kind, StmtKind::Assign);
  EXPECT_EQ(Body[3]->Kind, StmtKind::Assign);
}

TEST(ParserTest, AssignToCallIsError) {
  EXPECT_NE(firstError("fn main() { f() = 3; }"), "");
}

TEST(ParserTest, MissingSemicolonIsError) {
  EXPECT_NE(firstError("fn main() { int x = 1 }"), "");
}

TEST(ParserTest, UnbalancedBraceIsError) {
  EXPECT_NE(firstError("fn main() { if (1) { }"), "");
}

TEST(ParserTest, GarbageAtTopLevelIsError) {
  EXPECT_NE(firstError("42;"), "");
}

TEST(ParserTest, NodeIdsAreUniqueAndDense) {
  auto Prog = parseOk("fn main() { int x = 1 + 2; if (x) { x = 3; } }");
  EXPECT_GT(Prog->NumNodeIds, 5);
  // Spot-check a couple of ids are within range and distinct.
  auto &Decl = static_cast<VarDeclStmt &>(*Prog->Functions[0]->Body->Body[0]);
  auto &If = static_cast<IfStmt &>(*Prog->Functions[0]->Body->Body[1]);
  EXPECT_NE(Decl.Id, If.Id);
  EXPECT_LT(Decl.Id, Prog->NumNodeIds);
  EXPECT_LT(If.Id, Prog->NumNodeIds);
}

TEST(ParserTest, CountsLines) {
  auto Prog = parseOk("fn main() {\n  return 0;\n}\n");
  EXPECT_EQ(Prog->NumLines, 4);
}

TEST(ParserTest, LexErrorPropagates) {
  EXPECT_NE(firstError("fn main() { int x = $; }"), "");
}
