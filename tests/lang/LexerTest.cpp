//===- tests/lang/LexerTest.cpp - Lexer unit tests ------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

std::vector<TokenKind> kindsOf(std::string_view Source) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : Lexer::lexAll(Source))
    Kinds.push_back(T.Kind);
  return Kinds;
}

} // namespace

TEST(LexerTest, EmptyInput) {
  auto Tokens = Lexer::lexAll("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
}

TEST(LexerTest, Keywords) {
  auto Kinds = kindsOf("fn record int str arr rec if else while for "
                       "return break continue null new");
  std::vector<TokenKind> Expected = {
      TokenKind::KwFn,     TokenKind::KwRecord,   TokenKind::KwInt,
      TokenKind::KwStr,    TokenKind::KwArr,      TokenKind::KwRec,
      TokenKind::KwIf,     TokenKind::KwElse,     TokenKind::KwWhile,
      TokenKind::KwFor,    TokenKind::KwReturn,   TokenKind::KwBreak,
      TokenKind::KwContinue, TokenKind::KwNull,   TokenKind::KwNew,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, IdentifiersAreNotKeywords) {
  auto Tokens = Lexer::lexAll("iffy whiled _x x_1");
  ASSERT_EQ(Tokens.size(), 5u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_TRUE(Tokens[I].is(TokenKind::Identifier));
  EXPECT_EQ(Tokens[0].Text, "iffy");
  EXPECT_EQ(Tokens[2].Text, "_x");
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = Lexer::lexAll("0 7 1234567");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 7);
  EXPECT_EQ(Tokens[2].IntValue, 1234567);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto Tokens = Lexer::lexAll(R"("hello" "a\nb" "q\"q" "back\\slash")");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].Text, "hello");
  EXPECT_EQ(Tokens[1].Text, "a\nb");
  EXPECT_EQ(Tokens[2].Text, "q\"q");
  EXPECT_EQ(Tokens[3].Text, "back\\slash");
}

TEST(LexerTest, UnterminatedString) {
  auto Tokens = Lexer::lexAll("\"oops");
  EXPECT_TRUE(Tokens.back().is(TokenKind::Error));
}

TEST(LexerTest, UnknownEscape) {
  auto Tokens = Lexer::lexAll(R"("bad\q")");
  EXPECT_TRUE(Tokens.back().is(TokenKind::Error));
}

TEST(LexerTest, Operators) {
  auto Kinds = kindsOf("+ - * / % < <= > >= == != && || ! = . , ;");
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,        TokenKind::Minus,    TokenKind::Star,
      TokenKind::Slash,       TokenKind::Percent,  TokenKind::Less,
      TokenKind::LessEqual,   TokenKind::Greater,  TokenKind::GreaterEqual,
      TokenKind::EqualEqual,  TokenKind::NotEqual, TokenKind::AmpAmp,
      TokenKind::PipePipe,    TokenKind::Bang,     TokenKind::Assign,
      TokenKind::Dot,         TokenKind::Comma,    TokenKind::Semicolon,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, MaximalMunch) {
  // "<=" must not lex as "<" "=".
  auto Kinds = kindsOf("a<=b==c");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::LessEqual,
                                     TokenKind::Identifier,
                                     TokenKind::EqualEqual,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, SingleAmpIsError) {
  auto Tokens = Lexer::lexAll("a & b");
  EXPECT_TRUE(Tokens[1].is(TokenKind::Error));
}

TEST(LexerTest, LineComments) {
  auto Kinds = kindsOf("a // this is ignored\nb");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, BlockComments) {
  auto Kinds = kindsOf("a /* multi\nline\ncomment */ b");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, LineNumbersTracked) {
  auto Tokens = Lexer::lexAll("a\nb\n\nc");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Line, 1);
  EXPECT_EQ(Tokens[1].Line, 2);
  EXPECT_EQ(Tokens[2].Line, 4);
}

TEST(LexerTest, LineNumbersThroughBlockComments) {
  auto Tokens = Lexer::lexAll("/* a\nb\n*/ x");
  EXPECT_EQ(Tokens[0].Line, 3);
}

TEST(LexerTest, UnexpectedCharacter) {
  auto Tokens = Lexer::lexAll("a $ b");
  EXPECT_TRUE(Tokens[1].is(TokenKind::Error));
}

TEST(LexerTest, BracketsAndBraces) {
  auto Kinds = kindsOf("( ) { } [ ]");
  std::vector<TokenKind> Expected = {TokenKind::LParen,   TokenKind::RParen,
                                     TokenKind::LBrace,   TokenKind::RBrace,
                                     TokenKind::LBracket, TokenKind::RBracket,
                                     TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, TokenKindNamesAreNonNull) {
  for (int K = 0; K <= static_cast<int>(TokenKind::Error); ++K)
    EXPECT_NE(tokenKindName(static_cast<TokenKind>(K)), nullptr);
}
