//===- tests/lang/IntrinsicsTest.cpp - Intrinsic table tests --------------===//

#include "lang/Intrinsics.h"

#include <gtest/gtest.h>

using namespace sbi;

TEST(IntrinsicsTest, LookupKnownNames) {
  const IntrinsicInfo *Print = lookupIntrinsic("print");
  ASSERT_NE(Print, nullptr);
  EXPECT_EQ(Print->Id, Intrinsic::Print);
  EXPECT_EQ(Print->Arity, 1);
  EXPECT_FALSE(Print->ReturnsInt);

  const IntrinsicInfo *Strcmp = lookupIntrinsic("strcmp");
  ASSERT_NE(Strcmp, nullptr);
  EXPECT_EQ(Strcmp->Arity, 2);
  EXPECT_TRUE(Strcmp->ReturnsInt);

  const IntrinsicInfo *BugMark = lookupIntrinsic("__bug");
  ASSERT_NE(BugMark, nullptr);
  EXPECT_EQ(BugMark->Id, Intrinsic::BugMark);
}

TEST(IntrinsicsTest, LookupUnknownReturnsNull) {
  EXPECT_EQ(lookupIntrinsic("no_such_builtin"), nullptr);
  EXPECT_EQ(lookupIntrinsic(""), nullptr);
  EXPECT_EQ(lookupIntrinsic("Print"), nullptr); // Case-sensitive.
}

TEST(IntrinsicsTest, TableOrderMatchesEnumValues) {
  // intrinsicInfo(int) indexes the table by enum value; every entry's Id
  // must round-trip.
  for (int I = 0; I <= static_cast<int>(Intrinsic::Trap); ++I)
    EXPECT_EQ(static_cast<int>(intrinsicInfo(I).Id), I);
}

TEST(IntrinsicsTest, EveryEntryIsLookupConsistent) {
  for (int I = 0; I <= static_cast<int>(Intrinsic::Trap); ++I) {
    const IntrinsicInfo &Info = intrinsicInfo(I);
    const IntrinsicInfo *Found = lookupIntrinsic(Info.Name);
    ASSERT_NE(Found, nullptr) << Info.Name;
    EXPECT_EQ(Found, &Info);
  }
}

TEST(IntrinsicsTest, ScalarReturnersAreExactlyTheDocumentedSet) {
  // The "returns" instrumentation scheme keys off ReturnsInt; pin the set
  // so adding an intrinsic forces a deliberate decision.
  std::vector<std::string> Returners;
  for (int I = 0; I <= static_cast<int>(Intrinsic::Trap); ++I)
    if (intrinsicInfo(I).ReturnsInt)
      Returners.push_back(intrinsicInfo(I).Name);
  EXPECT_EQ(Returners,
            (std::vector<std::string>{"len", "charat", "strcmp", "atoi",
                                      "nargs", "abs", "min", "max"}));
}
