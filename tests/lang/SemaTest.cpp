//===- tests/lang/SemaTest.cpp - Semantic analysis unit tests -------------===//

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

std::unique_ptr<Program> analyzeOk(std::string_view Source) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  return Prog;
}

std::string firstError(std::string_view Source) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  if (Prog)
    return "";
  EXPECT_FALSE(Diags.empty());
  return Diags.empty() ? "" : Diags[0].Message;
}

} // namespace

TEST(SemaTest, MinimalProgram) {
  auto Prog = analyzeOk("fn main() { }");
  EXPECT_EQ(Prog->Functions[0]->NumLocals, 0);
}

TEST(SemaTest, MissingMainIsError) {
  EXPECT_NE(firstError("fn notmain() { }"), "");
}

TEST(SemaTest, MainWithParamsIsError) {
  EXPECT_NE(firstError("fn main(int x) { }"), "");
}

TEST(SemaTest, UndeclaredVariableIsError) {
  EXPECT_NE(firstError("fn main() { x = 1; }"), "");
}

TEST(SemaTest, UseBeforeDeclarationIsError) {
  EXPECT_NE(firstError("fn main() { int y = x; int x = 1; }"), "");
}

TEST(SemaTest, RedeclarationInSameScopeIsError) {
  EXPECT_NE(firstError("fn main() { int x = 1; int x = 2; }"), "");
}

TEST(SemaTest, ShadowingAcrossScopesIsAllowed) {
  analyzeOk("fn main() { int x = 1; { int x = 2; println(x); } }");
}

TEST(SemaTest, GlobalsResolveInFunctions) {
  auto Prog = analyzeOk("int g = 7;\nfn main() { g = g + 1; }");
  auto &Assign = static_cast<AssignStmt &>(*Prog->Functions[0]->Body->Body[0]);
  auto &Target = static_cast<VarRefExpr &>(*Assign.Target);
  EXPECT_TRUE(Target.Slot.IsGlobal);
  EXPECT_EQ(Target.Slot.Index, 0);
}

TEST(SemaTest, GlobalInitMayOnlyUseEarlierGlobals) {
  analyzeOk("int a = 1;\nint b = a + 1;\nfn main() { }");
  EXPECT_NE(firstError("int b = a + 1;\nint a = 1;\nfn main() { }"), "");
}

TEST(SemaTest, LocalSlotsAssigned) {
  auto Prog = analyzeOk(R"(
fn f(int p, str q) {
  int a = 0;
  { int b = 1; println(b); }
  { int c = 2; println(c); }
  return a;
}
fn main() { f(1, "x"); }
)");
  const FuncDecl &Func = *Prog->Functions[0];
  // p, q, a occupy 3 slots; b and c reuse the same 4th slot.
  EXPECT_EQ(Func.NumLocals, 4);
}

TEST(SemaTest, BreakOutsideLoopIsError) {
  EXPECT_NE(firstError("fn main() { break; }"), "");
}

TEST(SemaTest, ContinueOutsideLoopIsError) {
  EXPECT_NE(firstError("fn main() { continue; }"), "");
}

TEST(SemaTest, BreakInsideLoopIsFine) {
  analyzeOk("fn main() { while (1) { break; } }");
  analyzeOk("fn main() { for (;;) { continue; } }");
}

TEST(SemaTest, CallArityChecked) {
  EXPECT_NE(firstError("fn f(int a) { return a; }\nfn main() { f(); }"), "");
  EXPECT_NE(firstError("fn f(int a) { return a; }\nfn main() { f(1, 2); }"),
            "");
}

TEST(SemaTest, IntrinsicArityChecked) {
  EXPECT_NE(firstError("fn main() { len(); }"), "");
  EXPECT_NE(firstError("fn main() { substr(\"a\", 1); }"), "");
}

TEST(SemaTest, UndefinedFunctionIsError) {
  EXPECT_NE(firstError("fn main() { mystery(); }"), "");
}

TEST(SemaTest, ShadowingBuiltinIsError) {
  EXPECT_NE(firstError("fn len(int x) { return x; }\nfn main() { }"), "");
}

TEST(SemaTest, DuplicateFunctionIsError) {
  EXPECT_NE(firstError("fn f() { }\nfn f() { }\nfn main() { }"), "");
}

TEST(SemaTest, UnknownRecordIsError) {
  EXPECT_NE(firstError("fn main() { rec r = new Nope; }"), "");
}

TEST(SemaTest, DuplicateRecordIsError) {
  EXPECT_NE(firstError("record R { x; }\nrecord R { y; }\nfn main() { }"),
            "");
}

TEST(SemaTest, DuplicateFieldIsError) {
  EXPECT_NE(firstError("record R { x; x; }\nfn main() { }"), "");
}

TEST(SemaTest, RecordResolved) {
  auto Prog = analyzeOk("record R { x; }\nfn main() { rec r = new R; }");
  auto &Decl = static_cast<VarDeclStmt &>(*Prog->Functions[0]->Body->Body[0]);
  auto &New = static_cast<NewExpr &>(*Decl.Init);
  ASSERT_NE(New.Record, nullptr);
  EXPECT_EQ(New.Record->Name, "R");
}

TEST(SemaTest, IntrinsicResolved) {
  auto Prog = analyzeOk("fn main() { println(1); }");
  auto &Stmt = static_cast<ExprStmt &>(*Prog->Functions[0]->Body->Body[0]);
  auto &Call = static_cast<CallExpr &>(*Stmt.E);
  EXPECT_EQ(Call.Target, nullptr);
  EXPECT_GE(Call.IntrinsicId, 0);
}

TEST(SemaTest, UserFunctionResolved) {
  auto Prog = analyzeOk("fn f() { return 1; }\nfn main() { f(); }");
  auto &Stmt = static_cast<ExprStmt &>(*Prog->Functions[1]->Body->Body[0]);
  auto &Call = static_cast<CallExpr &>(*Stmt.E);
  ASSERT_NE(Call.Target, nullptr);
  EXPECT_EQ(Call.Target->Name, "f");
}

// --- Scalar-pairs scope annotations (the data Sema feeds Section 2's
// scalar-pairs scheme) ---------------------------------------------------

TEST(SemaScalarPairsTest, AssignSeesInScopeInts) {
  auto Prog = analyzeOk(R"(
int g = 1;
fn main() {
  int a = 0;
  int b = 0;
  str s = "";
  b = 5;
}
)");
  auto &Body = Prog->Functions[0]->Body->Body;
  auto &Assign = static_cast<AssignStmt &>(*Body[3]);
  ASSERT_TRUE(Assign.TargetIsIntVar);
  // Visible: g (global), a. Not b (the target), not s (wrong kind).
  std::vector<std::string> Names;
  for (const ScopedIntVar &Var : Assign.VisibleIntVars)
    Names.push_back(Var.Name);
  EXPECT_EQ(Names, (std::vector<std::string>{"g", "a"}));
}

TEST(SemaScalarPairsTest, DeclWithInitSeesEarlierInts) {
  auto Prog = analyzeOk("fn main() { int a = 0; int b = a + 1; }");
  auto &Decl = static_cast<VarDeclStmt &>(*Prog->Functions[0]->Body->Body[1]);
  ASSERT_EQ(Decl.VisibleIntVars.size(), 1u);
  EXPECT_EQ(Decl.VisibleIntVars[0].Name, "a");
}

TEST(SemaScalarPairsTest, DeclWithoutInitHasNoPairs) {
  auto Prog = analyzeOk("fn main() { int a = 0; int b; }");
  auto &Decl = static_cast<VarDeclStmt &>(*Prog->Functions[0]->Body->Body[1]);
  EXPECT_TRUE(Decl.VisibleIntVars.empty());
}

TEST(SemaScalarPairsTest, NonIntAssignGetsNoPairs) {
  auto Prog = analyzeOk("fn main() { int a = 0; str s = \"\"; s = \"x\"; }");
  auto &Assign = static_cast<AssignStmt &>(*Prog->Functions[0]->Body->Body[2]);
  EXPECT_FALSE(Assign.TargetIsIntVar);
  EXPECT_TRUE(Assign.VisibleIntVars.empty());
}

TEST(SemaScalarPairsTest, ElementAssignGetsNoPairs) {
  auto Prog = analyzeOk(
      "fn main() { int a = 0; arr v = mkarray(2); v[0] = a; }");
  auto &Assign = static_cast<AssignStmt &>(*Prog->Functions[0]->Body->Body[2]);
  EXPECT_FALSE(Assign.TargetIsIntVar);
}

TEST(SemaScalarPairsTest, OutOfScopeVarsNotVisible) {
  auto Prog = analyzeOk(R"(
fn main() {
  { int hidden = 1; println(hidden); }
  int a = 0;
  a = 2;
}
)");
  auto &Assign = static_cast<AssignStmt &>(*Prog->Functions[0]->Body->Body[2]);
  for (const ScopedIntVar &Var : Assign.VisibleIntVars)
    EXPECT_NE(Var.Name, "hidden");
}

TEST(SemaScalarPairsTest, ParamsAreVisible) {
  auto Prog = analyzeOk("fn f(int p) { int a = p; return a; }\n"
                        "fn main() { f(1); }");
  auto &Decl = static_cast<VarDeclStmt &>(*Prog->Functions[0]->Body->Body[0]);
  ASSERT_EQ(Decl.VisibleIntVars.size(), 1u);
  EXPECT_EQ(Decl.VisibleIntVars[0].Name, "p");
  EXPECT_FALSE(Decl.VisibleIntVars[0].Slot.IsGlobal);
}
