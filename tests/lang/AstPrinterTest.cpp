//===- tests/lang/AstPrinterTest.cpp - Expression printer unit tests ------===//

#include "lang/AstPrinter.h"

#include "instrument/Sites.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "subjects/Subjects.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

std::string print(const std::string &Expr) {
  std::vector<Diagnostic> Diags;
  auto Prog = Parser::parse("fn main() { return " + Expr + "; }", Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  if (!Prog)
    return "<error>";
  auto &Return =
      static_cast<ReturnStmt &>(*Prog->Functions[0]->Body->Body[0]);
  return exprToString(*Return.Value);
}

} // namespace

TEST(AstPrinterTest, Literals) {
  EXPECT_EQ(print("42"), "42");
  EXPECT_EQ(print("0"), "0");
  EXPECT_EQ(print("null"), "null");
  EXPECT_EQ(print("\"hi\""), "\"hi\"");
}

TEST(AstPrinterTest, StringEscapes) {
  EXPECT_EQ(print("\"a\\nb\""), "\"a\\nb\"");
  EXPECT_EQ(print("\"q\\\"q\""), "\"q\\\"q\"");
  EXPECT_EQ(print("\"t\\tt\""), "\"t\\tt\"");
}

TEST(AstPrinterTest, BinaryParenthesization) {
  EXPECT_EQ(print("a + b"), "a + b");
  EXPECT_EQ(print("a + b * c"), "a + (b * c)");
  EXPECT_EQ(print("a % b == 0"), "(a % b) == 0");
}

TEST(AstPrinterTest, UnaryForms) {
  EXPECT_EQ(print("-a"), "-a");
  EXPECT_EQ(print("!a"), "!a");
  EXPECT_EQ(print("!(a && b)"), "!(a && b)");
}

TEST(AstPrinterTest, PostfixForms) {
  EXPECT_EQ(print("a[i + 1]"), "a[i + 1]");
  EXPECT_EQ(print("r.field"), "r.field");
  EXPECT_EQ(print("files[i].language"), "files[i].language");
}

TEST(AstPrinterTest, Calls) {
  EXPECT_EQ(print("strcmp(a, b)"), "strcmp(a, b)");
  EXPECT_EQ(print("nargs()"), "nargs()");
}

TEST(AstPrinterTest, New) { EXPECT_EQ(print("new File"), "new File"); }

TEST(AstPrinterTest, NegativeViaUnary) {
  EXPECT_EQ(print("0 - 1"), "0 - 1");
}

TEST(AstPrinterTest, UnaryBaseOfPostfixKeepsParens) {
  // Postfix binds tighter than prefix: "(-x)[i]" printed without parens
  // would reparse as -(x[i]).
  EXPECT_EQ(print("(-x)[i]"), "(-x)[i]");
  EXPECT_EQ(print("-x[i]"), "-x[i]");
  EXPECT_EQ(print("(!f).done"), "(!f).done");
}

//===----------------------------------------------------------------------===//
// Whole-program round-trips: parse -> print -> reparse -> print must be a
// fixpoint. Equal prints mean structurally equal ASTs (the printer renders
// every structural property and nothing else), which is the printer's
// contract: parser-produced programs survive a round-trip.
//===----------------------------------------------------------------------===//

namespace {

std::string parseAndPrint(const std::string &Source) {
  std::vector<Diagnostic> Diags;
  auto Prog = Parser::parse(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  if (!Prog)
    return "<error>";
  return programToString(*Prog);
}

void expectRoundTrip(const std::string &Source) {
  std::string Once = parseAndPrint(Source);
  ASSERT_NE(Once, "<error>");
  std::string Twice = parseAndPrint(Once);
  EXPECT_EQ(Once, Twice) << "printer is not a reparse fixpoint for:\n"
                         << Source;
}

} // namespace

TEST(AstPrinterRoundTripTest, StatementForms) {
  expectRoundTrip(R"(fn main(int c) {
  int x = 1;
  str s = "hi";
  arr a;
  rec r;
  x = x + 1;
  if (c > 0) { x = 2; } else { x = 3; }
  if (c == 0) x = 4;
  while (x < 10) { x = x + 1; }
  for (int i = 0; i < 3; i = i + 1) { println(i); }
  for (;;) { break; }
  for (; x > 0;) { x = x - 1; continue; }
  return x;
})");
}

TEST(AstPrinterRoundTripTest, RecordsGlobalsAndExpressions) {
  expectRoundTrip(R"(record File {
  name;
  size;
}
int LIMIT = 100;
str banner = "v1";
fn grow(rec f, int by) {
  f.size = f.size + by;
  return f.size;
}
fn main() {
  rec f = new File;
  f.name = "a";
  f.size = 0;
  println(grow(f, LIMIT) % 7 == (0 - 1) * 2);
})");
}

TEST(AstPrinterRoundTripTest, DanglingElseBindsInnermost) {
  // The printer emits no disambiguating braces, so the reparse must
  // reattach the else to the same (innermost) if.
  expectRoundTrip(R"(fn main(int a, int b) {
  if (a > 0)
    if (b > 0) println(1);
    else println(2);
})");
}

TEST(AstPrinterRoundTripTest, UnaryPostfixInteraction) {
  expectRoundTrip(R"(fn main(arr a, int i) {
  println((-a)[i] + -a[i]);
})");
}

TEST(AstPrinterRoundTripTest, AllSubjectsRoundTrip) {
  for (const Subject *Subj : allSubjects()) {
    std::string Once = parseAndPrint(Subj->Source);
    ASSERT_NE(Once, "<error>") << Subj->Name;
    std::string Twice = parseAndPrint(Once);
    EXPECT_EQ(Once, Twice) << Subj->Name;

    // The reparse also preserves the instrumentation view: same sites,
    // same predicate texts in the same order (predicate descriptions are
    // themselves printed expressions).
    std::vector<Diagnostic> Diags;
    auto Orig = parseAndAnalyze(Subj->Source, Diags);
    ASSERT_TRUE(Orig != nullptr) << Subj->Name;
    auto Reparsed = parseAndAnalyze(Once, Diags);
    ASSERT_TRUE(Reparsed != nullptr) << Subj->Name;
    SiteTable A = SiteTable::build(*Orig);
    SiteTable B = SiteTable::build(*Reparsed);
    ASSERT_EQ(A.numSites(), B.numSites()) << Subj->Name;
    ASSERT_EQ(A.numPredicates(), B.numPredicates()) << Subj->Name;
    for (uint32_t P = 0; P < A.numPredicates(); ++P)
      ASSERT_EQ(A.predicate(P).Text, B.predicate(P).Text)
          << Subj->Name << " predicate " << P;
  }
}
