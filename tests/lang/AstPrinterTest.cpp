//===- tests/lang/AstPrinterTest.cpp - Expression printer unit tests ------===//

#include "lang/AstPrinter.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

std::string print(const std::string &Expr) {
  std::vector<Diagnostic> Diags;
  auto Prog = Parser::parse("fn main() { return " + Expr + "; }", Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  if (!Prog)
    return "<error>";
  auto &Return =
      static_cast<ReturnStmt &>(*Prog->Functions[0]->Body->Body[0]);
  return exprToString(*Return.Value);
}

} // namespace

TEST(AstPrinterTest, Literals) {
  EXPECT_EQ(print("42"), "42");
  EXPECT_EQ(print("0"), "0");
  EXPECT_EQ(print("null"), "null");
  EXPECT_EQ(print("\"hi\""), "\"hi\"");
}

TEST(AstPrinterTest, StringEscapes) {
  EXPECT_EQ(print("\"a\\nb\""), "\"a\\nb\"");
  EXPECT_EQ(print("\"q\\\"q\""), "\"q\\\"q\"");
  EXPECT_EQ(print("\"t\\tt\""), "\"t\\tt\"");
}

TEST(AstPrinterTest, BinaryParenthesization) {
  EXPECT_EQ(print("a + b"), "a + b");
  EXPECT_EQ(print("a + b * c"), "a + (b * c)");
  EXPECT_EQ(print("a % b == 0"), "(a % b) == 0");
}

TEST(AstPrinterTest, UnaryForms) {
  EXPECT_EQ(print("-a"), "-a");
  EXPECT_EQ(print("!a"), "!a");
  EXPECT_EQ(print("!(a && b)"), "!(a && b)");
}

TEST(AstPrinterTest, PostfixForms) {
  EXPECT_EQ(print("a[i + 1]"), "a[i + 1]");
  EXPECT_EQ(print("r.field"), "r.field");
  EXPECT_EQ(print("files[i].language"), "files[i].language");
}

TEST(AstPrinterTest, Calls) {
  EXPECT_EQ(print("strcmp(a, b)"), "strcmp(a, b)");
  EXPECT_EQ(print("nargs()"), "nargs()");
}

TEST(AstPrinterTest, New) { EXPECT_EQ(print("new File"), "new File"); }

TEST(AstPrinterTest, NegativeViaUnary) {
  EXPECT_EQ(print("0 - 1"), "0 - 1");
}
