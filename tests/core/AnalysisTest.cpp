//===- tests/core/AnalysisTest.cpp - Cause-isolation algorithm tests ------===//

#include "core/Analysis.h"

#include "core/BitMatrix.h"
#include "core/InvertedIndex.h"

#include "SyntheticWorld.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace sbi;

namespace {

/// Report builder that can set any predicate offset within a site true,
/// enabling complementary-predicate (P vs not-P) scenarios.
FeedbackReport makeOffsetReport(
    const SiteTable &Sites, bool Failed,
    std::vector<std::pair<uint32_t, uint32_t>> SiteAndOffset,
    std::vector<uint32_t> ObservedOnly = {}) {
  FeedbackReport Report;
  Report.Failed = Failed;
  std::set<uint32_t> All;
  for (const auto &[Site, Offset] : SiteAndOffset)
    All.insert(Site);
  for (uint32_t Site : ObservedOnly)
    All.insert(Site);
  for (uint32_t Site : All)
    Report.Counts.SiteObservations.emplace_back(Site, 1);
  std::set<uint32_t> Preds;
  for (const auto &[Site, Offset] : SiteAndOffset)
    Preds.insert(Sites.site(Site).FirstPredicate + Offset);
  for (uint32_t Pred : Preds)
    Report.Counts.TruePredicates.emplace_back(Pred, 1);
  return Report;
}

} // namespace

TEST(PruningTest, DoomedPathPredicateIsDiscarded) {
  // Site 0: the real cause (true exactly in failing runs, observed
  // everywhere). Site 1: the paper's x == 0 predicate, observed only on
  // the doomed path and always true there.
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  for (int I = 0; I < 30; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {0, 1}));
  for (int I = 0; I < 70; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, false, {}, {0}));

  CauseIsolator Isolator(World.Sites, Set);
  std::vector<uint32_t> Survivors = Isolator.prune();
  std::set<uint32_t> Surviving(Survivors.begin(), Survivors.end());
  EXPECT_TRUE(Surviving.count(World.predOf(0)));
  EXPECT_FALSE(Surviving.count(World.predOf(1)))
      << "Failure = Context = 1.0 predicates must not survive";
}

TEST(PruningTest, InvariantPredicateIsDiscarded) {
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  for (int I = 0; I < 25; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {2}));
  for (int I = 0; I < 75; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, false, {2}));
  CauseIsolator Isolator(World.Sites, Set);
  for (uint32_t Survivor : Isolator.prune())
    EXPECT_NE(Survivor, World.predOf(2));
}

TEST(PruningTest, LowConfidencePredicateIsDiscarded) {
  // A mildly positive Increase from very few observations: the point
  // estimate is above zero but the 95% interval is not.
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {3}));
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {3}));
  Set.add(SyntheticWorld::makeReport(World.Sites, false, {3}));
  for (int I = 0; I < 8; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {}, {3}));
  for (int I = 0; I < 19; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, false, {}, {3}));
  // Failure = 2/3 vs Context = 10/30: positive but uncertain.
  RunView View = RunView::allOf(Set);
  Aggregates Agg = Aggregates::compute(Set, View);
  PredicateScores Scores = Agg.scores(World.predOf(3), World.Sites);
  ASSERT_GT(Scores.increase().Value, 0.0);
  CauseIsolator Isolator(World.Sites, Set);
  for (uint32_t Survivor : Isolator.prune())
    EXPECT_NE(Survivor, World.predOf(3));
}

TEST(EliminationTest, TwoBugsGetTwoPredictors) {
  SyntheticWorld World(12);
  ReportSet Set = World.emptySet();
  // Bug A (common): predicted by site 0. Bug B (rarer): by site 1.
  // Everything is also observed at sites 0 and 1 so Context is meaningful.
  for (int I = 0; I < 60; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}, {1},
                                       FeedbackReport::bugBit(1)));
  for (int I = 0; I < 20; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {1}, {0},
                                       FeedbackReport::bugBit(2)));
  for (int I = 0; I < 200; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, false, {}, {0, 1}));

  CauseIsolator Isolator(World.Sites, Set);
  AnalysisResult Result = Isolator.run();
  ASSERT_GE(Result.Selected.size(), 2u);
  EXPECT_EQ(Result.Selected[0].Pred, World.predOf(0))
      << "the more important bug's predictor is selected first";
  EXPECT_EQ(Result.Selected[1].Pred, World.predOf(1));
}

TEST(EliminationTest, RedundantPredicatesCollapseToOne) {
  SyntheticWorld World(12);
  ReportSet Set = World.emptySet();
  // Sites 0 and 1 are perfectly redundant (always true together).
  for (int I = 0; I < 40; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {0, 1}));
  for (int I = 0; I < 160; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, false, {}, {0, 1}));

  CauseIsolator Isolator(World.Sites, Set);
  AnalysisResult Result = Isolator.run();
  // The first selection covers every failing run, so exactly one of the
  // two is selected.
  ASSERT_EQ(Result.Selected.size(), 1u);
  // And the redundant partner tops its affinity list.
  ASSERT_FALSE(Result.Selected[0].Affinity.empty());
  uint32_t Partner = Result.Selected[0].Pred == World.predOf(0)
                         ? World.predOf(1)
                         : World.predOf(0);
  EXPECT_EQ(Result.Selected[0].Affinity[0].first, Partner);
}

TEST(EliminationTest, EffectiveScoresReflectDilution) {
  SyntheticWorld World(12);
  ReportSet Set = World.emptySet();
  // Bug A at site 0 (strong); site 1 is a sub-predictor: true in half of
  // bug A's failing runs plus a few unique failures of bug B.
  for (int I = 0; I < 30; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {0, 1}, {}));
  for (int I = 0; I < 30; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}, {1}));
  for (int I = 0; I < 12; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {1}, {0}));
  for (int I = 0; I < 150; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, false, {}, {0, 1}));

  CauseIsolator Isolator(World.Sites, Set);
  AnalysisResult Result = Isolator.run();
  ASSERT_GE(Result.Selected.size(), 2u);
  const SelectedPredicate *Second = nullptr;
  for (const SelectedPredicate &Entry : Result.Selected)
    if (Entry.Pred == World.predOf(1))
      Second = &Entry;
  ASSERT_NE(Second, nullptr);
  // By the time site 1 is selected, its shared runs are gone: the
  // effective F is the 12 unique failures, well below the initial 42.
  EXPECT_EQ(Second->InitialScores.counts().F, 42u);
  EXPECT_EQ(Second->EffectiveScores.counts().F, 12u);
  EXPECT_LT(Second->FailingRunsAtSelection, 72u);
}

TEST(EliminationTest, DeterministicAcrossCalls) {
  SyntheticWorld World(12);
  ReportSet Set = World.emptySet();
  Rng R(99);
  for (int I = 0; I < 150; ++I) {
    bool BugA = R.nextBernoulli(0.2);
    bool BugB = R.nextBernoulli(0.1);
    std::vector<uint32_t> True;
    if (BugA)
      True.push_back(0);
    if (BugB)
      True.push_back(1);
    if (R.nextBernoulli(0.5))
      True.push_back(2); // Noise.
    Set.add(SyntheticWorld::makeReport(World.Sites, BugA || BugB, True,
                                       {0, 1, 2}));
  }
  CauseIsolator Isolator(World.Sites, Set);
  AnalysisResult A = Isolator.run();
  AnalysisResult B = Isolator.run();
  ASSERT_EQ(A.Selected.size(), B.Selected.size());
  for (size_t I = 0; I < A.Selected.size(); ++I)
    EXPECT_EQ(A.Selected[I].Pred, B.Selected[I].Pred);
}

TEST(EliminationTest, MaxSelectionsHonored) {
  SyntheticWorld World(24);
  ReportSet Set = World.emptySet();
  // Ten independent "bugs", each with its own predictor site.
  for (uint32_t Bug = 0; Bug < 10; ++Bug)
    for (int I = 0; I < 12; ++I)
      Set.add(SyntheticWorld::makeReport(World.Sites, true, {Bug},
                                         {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  for (int I = 0; I < 100; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, false, {},
                                       {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  AnalysisOptions Options;
  Options.MaxSelections = 3;
  CauseIsolator Isolator(World.Sites, Set, Options);
  EXPECT_EQ(Isolator.run().Selected.size(), 3u);
}

// --- Lemma 3.1: every covered bug keeps a predictor ----------------------

class LemmaCoverageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaCoverageTest, EveryCoveredBugGetsAPredictor) {
  SyntheticWorld World(24);
  Rng R(GetParam());
  ReportSet Set = World.emptySet();

  constexpr int NumBugs = 4;
  // Bug k is predicted by site k; rates differ by an order of magnitude.
  double Rates[NumBugs] = {0.2, 0.1, 0.05, 0.02};
  for (int I = 0; I < 600; ++I) {
    std::vector<uint32_t> True;
    uint64_t Mask = 0;
    for (int Bug = 0; Bug < NumBugs; ++Bug)
      if (R.nextBernoulli(Rates[Bug])) {
        True.push_back(static_cast<uint32_t>(Bug));
        Mask |= FeedbackReport::bugBit(Bug + 1);
      }
    bool Failed = Mask != 0;
    // Noise predicate, uncorrelated.
    if (R.nextBernoulli(0.3))
      True.push_back(10);
    Set.add(SyntheticWorld::makeReport(World.Sites, Failed, True,
                                       {0, 1, 2, 3, 10}, Mask));
  }

  CauseIsolator Isolator(World.Sites, Set);
  AnalysisResult Result = Isolator.run();

  // Lemma 3.1: each bug that causes at least one failing run where its
  // predictor is observed true must be covered by some selected predicate.
  for (int Bug = 1; Bug <= NumBugs; ++Bug) {
    size_t BugFailures = 0;
    for (const FeedbackReport &Report : Set.reports())
      if (Report.Failed && Report.hasBug(Bug))
        ++BugFailures;
    if (BugFailures == 0)
      continue;
    bool Covered = false;
    for (const SelectedPredicate &Entry : Result.Selected)
      for (const FeedbackReport &Report : Set.reports())
        if (Report.Failed && Report.hasBug(Bug) &&
            Report.observedTrue(Entry.Pred)) {
          Covered = true;
          break;
        }
    EXPECT_TRUE(Covered) << "bug " << Bug << " (seed " << GetParam()
                         << ", " << BugFailures << " failures) uncovered";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaCoverageTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Section 5: the three run-discard policies ----------------------------

namespace {

/// Two anti-correlated bugs: bug A's predictor P is site 0's Lt predicate
/// (offset 0); bug B's predictor is the complementary Ge predicate
/// (offset 3) of the SAME site. Every run observes site 0 and exactly one
/// of the two predicates is true, like P and not-P in Section 5. Bug A
/// dominates, so Increase(not-P) is initially negative.
ReportSet antiCorrelatedSet(const SyntheticWorld &World) {
  ReportSet Set =
      ReportSet(World.Sites.numSites(), World.Sites.numPredicates());
  for (int I = 0; I < 80; ++I) // Bug A failures: P true.
    Set.add(makeOffsetReport(World.Sites, true, {{0, 0}}));
  for (int I = 0; I < 30; ++I) // Bug B failures: not-P true.
    Set.add(makeOffsetReport(World.Sites, true, {{0, 3}}));
  for (int I = 0; I < 20; ++I) // Successes: P true (innocuously).
    Set.add(makeOffsetReport(World.Sites, false, {{0, 0}}));
  for (int I = 0; I < 70; ++I) // Successes: not-P true.
    Set.add(makeOffsetReport(World.Sites, false, {{0, 3}}));
  return Set;
}

} // namespace

TEST(PolicyTest, NotPInitiallyFailsThePruningTest) {
  SyntheticWorld World(8);
  ReportSet Set = antiCorrelatedSet(World);
  uint32_t NotP = World.Sites.site(0).FirstPredicate + 3;
  RunView View = RunView::allOf(Set);
  Aggregates Agg = Aggregates::compute(Set, View);
  // Overshadowed by the anti-correlated dominant bug (Section 5).
  EXPECT_LT(Agg.scores(NotP, World.Sites).increase().Value, 0.0);
}

TEST(PolicyTest, RetainingPoliciesIsolateAntiCorrelatedBugs) {
  // Under proposals (2) and (3), not-P must not be discarded early and is
  // found once P's runs are handled.
  SyntheticWorld World(8);
  ReportSet Set = antiCorrelatedSet(World);
  uint32_t P = World.Sites.site(0).FirstPredicate + 0;
  uint32_t NotP = World.Sites.site(0).FirstPredicate + 3;

  for (DiscardPolicy Policy : {DiscardPolicy::DiscardFailingRuns,
                               DiscardPolicy::RelabelFailingRuns}) {
    AnalysisOptions Options;
    Options.Policy = Policy;
    CauseIsolator Isolator(World.Sites, Set, Options);
    AnalysisResult Result = Isolator.run();
    std::set<uint32_t> Picked;
    for (const SelectedPredicate &Entry : Result.Selected)
      Picked.insert(Entry.Pred);
    EXPECT_TRUE(Picked.count(P)) << discardPolicyName(Policy);
    EXPECT_TRUE(Picked.count(NotP)) << discardPolicyName(Policy);
  }
}

TEST(PolicyTest, DiscardAllFindsOnlyOneOfTheComplements) {
  // Under proposal (1), once P's runs are discarded, every remaining run
  // observing the site has not-P true, so Increase(not-P) is exactly 0 and
  // not-P can never rise; "only one of P or not-P can have positive
  // predictive power".
  SyntheticWorld World(8);
  ReportSet Set = antiCorrelatedSet(World);
  uint32_t P = World.Sites.site(0).FirstPredicate + 0;
  uint32_t NotP = World.Sites.site(0).FirstPredicate + 3;

  CauseIsolator Isolator(World.Sites, Set);
  AnalysisResult Result = Isolator.run();
  std::set<uint32_t> Picked;
  for (const SelectedPredicate &Entry : Result.Selected)
    Picked.insert(Entry.Pred);
  EXPECT_TRUE(Picked.count(P));
  EXPECT_FALSE(Picked.count(NotP));
}

TEST(PolicyTest, ComplementIncreaseNonNegativeAfterSelection) {
  // Section 5: right after P is selected, Increase(not-P) >= 0 under every
  // proposal (when defined). Apply each policy's run-view transformation
  // for P by hand and check the complement's score.
  SyntheticWorld World(8);
  ReportSet Set = antiCorrelatedSet(World);
  uint32_t P = World.Sites.site(0).FirstPredicate + 0;
  uint32_t NotP = World.Sites.site(0).FirstPredicate + 3;

  for (DiscardPolicy Policy :
       {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
        DiscardPolicy::RelabelFailingRuns}) {
    RunView View = RunView::allOf(Set);
    for (size_t Run = 0; Run < Set.size(); ++Run) {
      if (!Set[Run].observedTrue(P))
        continue;
      switch (Policy) {
      case DiscardPolicy::DiscardAllRuns:
        View.Active[Run] = 0;
        break;
      case DiscardPolicy::DiscardFailingRuns:
        if (View.Failed[Run])
          View.Active[Run] = 0;
        break;
      case DiscardPolicy::RelabelFailingRuns:
        if (View.Failed[Run])
          View.Failed[Run] = 0;
        break;
      }
    }
    Aggregates Agg = Aggregates::compute(Set, View);
    PredicateScores Scores = Agg.scores(NotP, World.Sites);
    if (Scores.counts().observed() > 0) {
      EXPECT_GE(Scores.increase().Value, -1e-12)
          << discardPolicyName(Policy);
    }
  }
}

TEST(PolicyTest, RelabelKeepsEveryRunActive) {
  SyntheticWorld World(8);
  ReportSet Set = antiCorrelatedSet(World);
  AnalysisOptions Options;
  Options.Policy = DiscardPolicy::RelabelFailingRuns;
  CauseIsolator Isolator(World.Sites, Set, Options);
  AnalysisResult Result = Isolator.run();
  ASSERT_GE(Result.Selected.size(), 2u);
  // The second selection still sees the full population.
  EXPECT_EQ(Result.Selected[1].ActiveRunsAtSelection, Set.size());
}

TEST(PolicyTest, DiscardFailingKeepsSuccesses) {
  SyntheticWorld World(8);
  ReportSet Set = antiCorrelatedSet(World);
  AnalysisOptions Options;
  Options.Policy = DiscardPolicy::DiscardFailingRuns;
  CauseIsolator Isolator(World.Sites, Set, Options);
  AnalysisResult Result = Isolator.run();
  ASSERT_GE(Result.Selected.size(), 2u);
  // The 80 failing runs with P were discarded; every success remains.
  EXPECT_EQ(Result.Selected[1].ActiveRunsAtSelection, Set.size() - 80);
}

// --- Rescan vs incremental engine differential ----------------------------

namespace {

/// A randomized multi-bug world with noise, shared observations, and both
/// labels, used to differential-test the two aggregation engines.
ReportSet multiBugSet(const SyntheticWorld &World, uint64_t Seed) {
  ReportSet Set =
      ReportSet(World.Sites.numSites(), World.Sites.numPredicates());
  Rng R(Seed);
  constexpr int NumBugs = 5;
  double Rates[NumBugs] = {0.15, 0.1, 0.06, 0.03, 0.015};
  for (int I = 0; I < 500; ++I) {
    std::vector<uint32_t> True;
    bool Failed = false;
    for (int Bug = 0; Bug < NumBugs; ++Bug)
      if (R.nextBernoulli(Rates[Bug])) {
        True.push_back(static_cast<uint32_t>(Bug));
        if (R.nextBernoulli(0.8))
          Failed = true;
      }
    for (uint32_t Noise = 5; Noise < 9; ++Noise)
      if (R.nextBernoulli(0.3))
        True.push_back(Noise);
    Set.add(SyntheticWorld::makeReport(World.Sites, Failed, True,
                                       {0, 1, 2, 3, 4, 5, 6, 7, 8}));
  }
  return Set;
}

} // namespace

class EngineDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineDifferentialTest, EnginesBitIdenticalAcrossPolicies) {
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, GetParam());
  for (DiscardPolicy Policy :
       {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
        DiscardPolicy::RelabelFailingRuns}) {
    AnalysisOptions Rescan;
    Rescan.Policy = Policy;
    Rescan.Engine = AnalysisEngine::Rescan;
    AnalysisOptions Incremental = Rescan;
    Incremental.Engine = AnalysisEngine::Incremental;
    AnalysisOptions Bitset = Rescan;
    Bitset.Engine = AnalysisEngine::Bitset;

    AnalysisResult A = CauseIsolator(World.Sites, Set, Rescan).run();
    AnalysisResult B = CauseIsolator(World.Sites, Set, Incremental).run();
    AnalysisResult C = CauseIsolator(World.Sites, Set, Bitset).run();
    EXPECT_TRUE(bitIdentical(A, B))
        << discardPolicyName(Policy) << " seed " << GetParam();
    EXPECT_TRUE(bitIdentical(A, C))
        << "bitset, " << discardPolicyName(Policy) << " seed " << GetParam();
    EXPECT_FALSE(B.Selected.empty()) << "trivial differential";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferentialTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(EngineDifferentialTest, SharedIndexMatchesOwnedIndex) {
  // A caller may build the index once and reuse it across several run()
  // invocations (the index is immutable); results must match an isolator
  // that builds its own.
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 909);
  InvertedIndex Index = InvertedIndex::build(Set);
  for (DiscardPolicy Policy :
       {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
        DiscardPolicy::RelabelFailingRuns}) {
    AnalysisOptions Owned;
    Owned.Policy = Policy;
    AnalysisOptions Shared = Owned;
    Shared.SharedIndex = &Index;

    AnalysisResult A = CauseIsolator(World.Sites, Set, Owned).run();
    AnalysisResult B = CauseIsolator(World.Sites, Set, Shared).run();
    EXPECT_TRUE(bitIdentical(A, B)) << discardPolicyName(Policy);
    EXPECT_FALSE(B.Selected.empty()) << "trivial differential";
  }
}

TEST(EngineDifferentialTest, SharedBitsetMatchesOwnedBitset) {
  // The BitsetIndex analog of the shared-index contract: one prebuilt
  // bitset reused across all three policies matches per-run() builds.
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 909);
  RunProfiles Runs = RunProfiles::fromReports(Set);
  BitsetIndex Index = BitsetIndex::build(Runs, World.Sites);
  for (DiscardPolicy Policy :
       {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
        DiscardPolicy::RelabelFailingRuns}) {
    AnalysisOptions Owned;
    Owned.Policy = Policy;
    Owned.Engine = AnalysisEngine::Bitset;
    AnalysisOptions Shared = Owned;
    Shared.SharedBitset = &Index;

    AnalysisResult A = CauseIsolator(World.Sites, Set, Owned).run();
    AnalysisResult B = CauseIsolator(World.Sites, Set, Shared).run();
    EXPECT_TRUE(bitIdentical(A, B)) << discardPolicyName(Policy);
    EXPECT_FALSE(B.Selected.empty()) << "trivial differential";
  }
}

TEST(EngineDifferentialTest, BitsetDensityFallbackIsInvisible) {
  // A large, extremely sparse population (one site + one pred per run)
  // trips the density heuristic, so the bitset option silently takes the
  // incremental path — and must still produce identical results.
  SyntheticWorld World(200);
  const uint32_t NumSites = World.Sites.numSites();
  RunProfiles Sparse(NumSites, World.Sites.numPredicates());
  for (uint32_t Run = 0; Run < 16384; ++Run) {
    // Failing/successful pairs observing the same site, the predicate true
    // only in the failing half, so Increase(P) is solidly positive.
    const bool Failed = (Run & 1) != 0;
    Sparse.beginRun(Failed);
    uint32_t Site = (Run / 2) % NumSites;
    Sparse.addSite(Site);
    if (Failed)
      Sparse.addPred(World.Sites.site(Site).FirstPredicate);
  }
  ASSERT_TRUE(BitsetIndex::preferIncremental(Sparse, 1.0 / 256))
      << "fixture no longer trips the fallback";

  AnalysisOptions Bitset;
  Bitset.Engine = AnalysisEngine::Bitset;
  AnalysisOptions Rescan;
  Rescan.Engine = AnalysisEngine::Rescan;
  AnalysisResult A = CauseIsolator(World.Sites, Sparse, Rescan).run();
  AnalysisResult B = CauseIsolator(World.Sites, Sparse, Bitset).run();
  EXPECT_TRUE(bitIdentical(A, B));
  EXPECT_FALSE(B.Selected.empty()) << "trivial differential";
}

TEST(EngineDifferentialTest, AffinityDepthAndCapRespected) {
  // The affinity path is part of the differential contract; also check the
  // top-K cap holds under the incremental engine.
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 55);
  AnalysisOptions Options;
  Options.AffinityTopK = 3;
  AnalysisResult Result = CauseIsolator(World.Sites, Set, Options).run();
  ASSERT_FALSE(Result.Selected.empty());
  for (const SelectedPredicate &Entry : Result.Selected)
    EXPECT_LE(Entry.Affinity.size(), 3u);
}

// --- Ranking ---------------------------------------------------------------

TEST(RankTest, OrdersByImportanceThenF) {
  SyntheticWorld World(12);
  ReportSet Set = World.emptySet();
  for (int I = 0; I < 40; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}, {1, 2}));
  for (int I = 0; I < 10; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, true, {1}, {0, 2}));
  for (int I = 0; I < 100; ++I)
    Set.add(SyntheticWorld::makeReport(World.Sites, false, {2}, {0, 1}));

  CauseIsolator Isolator(World.Sites, Set);
  RunView View = RunView::allOf(Set);
  std::vector<uint32_t> Candidates = {World.predOf(0), World.predOf(1),
                                      World.predOf(2)};
  auto Ranked = Isolator.rank(Candidates, View);
  ASSERT_EQ(Ranked.size(), 3u);
  EXPECT_EQ(Ranked[0].Pred, World.predOf(0));
  EXPECT_EQ(Ranked[1].Pred, World.predOf(1));
  EXPECT_EQ(Ranked[2].Pred, World.predOf(2)); // Zero importance last.
  EXPECT_GE(Ranked[0].Importance, Ranked[1].Importance);
  EXPECT_DOUBLE_EQ(Ranked[2].Importance, 0.0);
}
