//===- tests/core/SyntheticWorld.h - Planted-bug report fixtures ----------===//
//
// Shared fixture for core-analysis tests: a small MicroC program mints a
// real SiteTable, and reports are synthesized directly against it with
// planted bugs, so tests control ground truth exactly.
//
//===----------------------------------------------------------------------===//

#ifndef SBI_TESTS_CORE_SYNTHETICWORLD_H
#define SBI_TESTS_CORE_SYNTHETICWORLD_H

#include "feedback/Report.h"
#include "instrument/Sites.h"
#include "lang/Sema.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sbi {

struct SyntheticWorld {
  std::unique_ptr<Program> Prog;
  SiteTable Sites;

  /// Mints a program with at least \p MinSites six-way scalar-pairs sites.
  explicit SyntheticWorld(size_t MinSites = 24) {
    std::string Source = "fn main() {\n  int a = 1;\n";
    size_t Vars = 1;
    size_t Estimate = 0;
    while (Estimate < MinSites) {
      Source += "  int v" + std::to_string(Vars) + " = " +
                std::to_string(Vars % 5) + ";\n";
      Estimate += Vars;
      ++Vars;
    }
    Source += "  println(a);\n}\n";
    std::vector<Diagnostic> Diags;
    Prog = parseAndAnalyze(Source, Diags);
    EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
    Sites = SiteTable::build(*Prog);
    EXPECT_GE(Sites.numSites(), MinSites);
  }

  ReportSet emptySet() const {
    return ReportSet(Sites.numSites(), Sites.numPredicates());
  }

  /// Adds a report that observed the given sites, with the site's FIRST
  /// predicate true for each entry of \p TrueAtSites, and sites in
  /// \p ObservedOnly merely observed.
  static FeedbackReport makeReport(const SiteTable &Sites, bool Failed,
                                   std::vector<uint32_t> TrueAtSites,
                                   std::vector<uint32_t> ObservedOnly = {},
                                   uint64_t BugMask = 0) {
    FeedbackReport Report;
    Report.Failed = Failed;
    Report.BugMask = BugMask;
    std::vector<uint32_t> AllSites = TrueAtSites;
    AllSites.insert(AllSites.end(), ObservedOnly.begin(),
                    ObservedOnly.end());
    std::sort(AllSites.begin(), AllSites.end());
    AllSites.erase(std::unique(AllSites.begin(), AllSites.end()),
                   AllSites.end());
    for (uint32_t Site : AllSites)
      Report.Counts.SiteObservations.emplace_back(Site, 1);
    std::sort(TrueAtSites.begin(), TrueAtSites.end());
    TrueAtSites.erase(std::unique(TrueAtSites.begin(), TrueAtSites.end()),
                      TrueAtSites.end());
    for (uint32_t Site : TrueAtSites)
      Report.Counts.TruePredicates.emplace_back(
          Sites.site(Site).FirstPredicate, 1);
    return Report;
  }

  /// First predicate id of a site (the one makeReport sets true).
  uint32_t predOf(uint32_t Site) const {
    return Sites.site(Site).FirstPredicate;
  }
};

} // namespace sbi

#endif // SBI_TESTS_CORE_SYNTHETICWORLD_H
