//===- tests/core/ScoresTest.cpp - Score-formula unit tests ---------------===//

#include "core/Scores.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sbi;

TEST(ScoresTest, FailureAndContextFromCounts) {
  PredicateScores Scores({/*F=*/30, /*S=*/10, /*FObs=*/50, /*SObs=*/50});
  EXPECT_NEAR(Scores.failure(), 0.75, 1e-12);
  EXPECT_NEAR(Scores.context(), 0.5, 1e-12);
  EXPECT_NEAR(Scores.increase().Value, 0.25, 1e-12);
}

TEST(ScoresTest, DeterministicBugHasFailureOne) {
  // Deterministic for P: never true in a successful run (S = 0), true in
  // at least one failing run (Section 3.1's definition).
  PredicateScores Scores({/*F=*/20, /*S=*/0, /*FObs=*/40, /*SObs=*/160});
  EXPECT_DOUBLE_EQ(Scores.failure(), 1.0);
  EXPECT_GT(Scores.increase().Value, 0.7);
}

TEST(ScoresTest, PaperXEqualsZeroExample) {
  // The x == 0 example of Section 3.1: the predicate is checked only on a
  // path where the program is already doomed, so Failure = Context = 1 and
  // Increase = 0; the predicate must not survive pruning.
  PredicateScores Scores({/*F=*/50, /*S=*/0, /*FObs=*/50, /*SObs=*/0});
  EXPECT_DOUBLE_EQ(Scores.failure(), 1.0);
  EXPECT_DOUBLE_EQ(Scores.context(), 1.0);
  EXPECT_DOUBLE_EQ(Scores.increase().Value, 0.0);
  EXPECT_FALSE(Scores.survivesIncreaseTest());
}

TEST(ScoresTest, UnreachedPredicateScoresZero) {
  PredicateScores Scores({0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(Scores.failure(), 0.0);
  EXPECT_DOUBLE_EQ(Scores.context(), 0.0);
  EXPECT_FALSE(Scores.survivesIncreaseTest());
}

TEST(ScoresTest, InvariantPredicateScoresZeroIncrease) {
  // A program invariant: true whenever observed, in failures and successes
  // alike.
  PredicateScores Scores({/*F=*/25, /*S=*/75, /*FObs=*/25, /*SObs=*/75});
  EXPECT_NEAR(Scores.increase().Value, 0.0, 1e-12);
  EXPECT_FALSE(Scores.survivesIncreaseTest());
}

TEST(ScoresTest, ConfidenceGateRejectsFewObservations) {
  // Same proportions, different sample sizes: only the large sample passes
  // the 95% gate (this is exactly why the paper attaches intervals).
  PredicateScores Small({/*F=*/2, /*S=*/1, /*FObs=*/4, /*SObs=*/8});
  PredicateScores Large({/*F=*/200, /*S=*/100, /*FObs=*/400, /*SObs=*/800});
  EXPECT_NEAR(Small.increase().Value, Large.increase().Value, 1e-12);
  EXPECT_FALSE(Small.survivesIncreaseTest());
  EXPECT_TRUE(Large.survivesIncreaseTest());
}

TEST(ScoresTest, NeverTrueInFailureNeverSurvives) {
  PredicateScores Scores({/*F=*/0, /*S=*/50, /*FObs=*/100, /*SObs=*/100});
  EXPECT_FALSE(Scores.survivesIncreaseTest());
}

// --- Section 3.2: the hypothesis-test view ------------------------------

struct CountsCase {
  uint64_t F, S, FObs, SObs;
};

class IncreaseEquivalenceTest : public ::testing::TestWithParam<CountsCase> {
};

TEST_P(IncreaseEquivalenceTest, IncreasePositiveIffHeadsProbabilityHigher) {
  // The paper proves Increase(P) > 0 <=> p_f(P) > p_s(P); check the
  // algebraic identity on a grid of count configurations.
  CountsCase C = GetParam();
  PredicateScores Scores({C.F, C.S, C.FObs, C.SObs});
  double Increase = Scores.increase().Value;
  double HeadsF = Scores.headsFailing().value();
  double HeadsS = Scores.headsSuccessful().value();
  EXPECT_EQ(Increase > 1e-12, HeadsF > HeadsS + 1e-12)
      << "F=" << C.F << " S=" << C.S << " FObs=" << C.FObs
      << " SObs=" << C.SObs;
  // And the Z statistic agrees in sign when defined.
  double Z = Scores.zScore();
  if (std::fabs(Increase) > 1e-9 && Z != 0.0)
    EXPECT_EQ(Increase > 0, Z > 0);
}

INSTANTIATE_TEST_SUITE_P(
    CountGrid, IncreaseEquivalenceTest,
    ::testing::Values(CountsCase{10, 5, 20, 30}, CountsCase{5, 10, 20, 30},
                      CountsCase{1, 0, 10, 90}, CountsCase{0, 1, 10, 90},
                      CountsCase{50, 50, 100, 100},
                      CountsCase{30, 10, 40, 40}, CountsCase{10, 30, 40, 40},
                      CountsCase{99, 1, 100, 100}, CountsCase{1, 99, 100, 100},
                      CountsCase{7, 3, 15, 5}, CountsCase{3, 7, 5, 15},
                      CountsCase{12, 0, 12, 48}, CountsCase{0, 0, 10, 10},
                      CountsCase{25, 25, 50, 50}));

// --- Importance ----------------------------------------------------------

TEST(ImportanceTest, ZeroWhenIncreaseNonpositive) {
  PredicateScores Scores({/*F=*/10, /*S=*/90, /*FObs=*/10, /*SObs=*/90});
  EXPECT_DOUBLE_EQ(Scores.importance(100), 0.0);
}

TEST(ImportanceTest, ZeroWhenOnlyOneFailure) {
  // log(F) = 0 when F = 1, so sensitivity is 0 and Importance is 0 (the
  // paper defines division-by-zero cases as 0).
  PredicateScores Scores({/*F=*/1, /*S=*/0, /*FObs=*/2, /*SObs=*/20});
  EXPECT_DOUBLE_EQ(Scores.importance(100), 0.0);
}

TEST(ImportanceTest, ZeroWhenNumFIsOne) {
  PredicateScores Scores({/*F=*/1, /*S=*/0, /*FObs=*/1, /*SObs=*/5});
  EXPECT_DOUBLE_EQ(Scores.importance(1), 0.0);
}

TEST(ImportanceTest, PerfectPredictorOfAllFailuresScoresHigh) {
  PredicateScores Scores({/*F=*/100, /*S=*/0, /*FObs=*/100, /*SObs=*/300});
  double Importance = Scores.importance(100);
  // Increase = 0.75, sensitivity = 1 -> harmonic mean ~0.857.
  EXPECT_NEAR(Importance, 2.0 / (1.0 / 0.75 + 1.0), 1e-9);
}

TEST(ImportanceTest, HarmonicMeanFormula) {
  PredicateScores Scores({/*F=*/50, /*S=*/0, /*FObs=*/50, /*SObs=*/150});
  uint64_t NumF = 200;
  double Increase = Scores.increase().Value;
  double Sens = std::log(50.0) / std::log(200.0);
  EXPECT_NEAR(Scores.importance(NumF),
              2.0 / (1.0 / Increase + 1.0 / Sens), 1e-12);
}

TEST(ImportanceTest, BalancesSubBugAndSuperBug) {
  uint64_t NumF = 1000;
  // Sub-bug predictor: deterministic but tiny coverage.
  PredicateScores SubBug({/*F=*/8, /*S=*/0, /*FObs=*/8, /*SObs=*/80});
  // Super-bug predictor: huge coverage, weak correlation.
  PredicateScores SuperBug(
      {/*F=*/800, /*S=*/2000, /*FObs=*/900, /*SObs=*/2400});
  // Balanced predictor: strong correlation and solid coverage.
  PredicateScores Balanced({/*F=*/300, /*S=*/20, /*FObs=*/320, /*SObs=*/900});
  EXPECT_GT(Balanced.importance(NumF), SubBug.importance(NumF));
  EXPECT_GT(Balanced.importance(NumF), SuperBug.importance(NumF));
}

TEST(ImportanceTest, IntervalShrinksWithData) {
  PredicateScores Small({/*F=*/5, /*S=*/1, /*FObs=*/8, /*SObs=*/20});
  PredicateScores Large({/*F=*/500, /*S=*/100, /*FObs=*/800, /*SObs=*/2000});
  ScoreInterval SmallCI = Small.importanceInterval(50);
  ScoreInterval LargeCI = Large.importanceInterval(5000);
  if (SmallCI.Value > 0 && LargeCI.Value > 0)
    EXPECT_GT(SmallCI.HalfWidth, LargeCI.HalfWidth);
}

TEST(ImportanceTest, IntervalZeroForZeroImportance) {
  PredicateScores Scores({/*F=*/0, /*S=*/10, /*FObs=*/10, /*SObs=*/10});
  ScoreInterval CI = Scores.importanceInterval(100);
  EXPECT_DOUBLE_EQ(CI.Value, 0.0);
  EXPECT_DOUBLE_EQ(CI.HalfWidth, 0.0);
}

// --- Thermometers ---------------------------------------------------------

TEST(ThermometerSpecTest, BandsReflectScores) {
  PredicateScores Scores({/*F=*/60, /*S=*/20, /*FObs=*/100, /*SObs=*/100});
  ThermometerSpec Spec = Scores.thermometer();
  EXPECT_NEAR(Spec.Context, 0.5, 1e-12);
  EXPECT_GT(Spec.IncreaseLowerBound, 0.0);
  EXPECT_GT(Spec.ConfidenceWidth, 0.0);
  EXPECT_EQ(Spec.RunsObservedTrue, 80u);
}

TEST(ThermometerSpecTest, NegativeIncreaseClampsToZero) {
  PredicateScores Scores({/*F=*/5, /*S=*/95, /*FObs=*/50, /*SObs=*/70});
  ThermometerSpec Spec = Scores.thermometer();
  EXPECT_GE(Spec.IncreaseLowerBound, 0.0);
}
