//===- tests/core/InvertedIndexTest.cpp - Incremental engine tests --------===//

#include "core/InvertedIndex.h"

#include "SyntheticWorld.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

/// A randomized report set with mixed labels, noise, and observed-only
/// sites, exercising every count bucket.
ReportSet randomSet(const SyntheticWorld &World, size_t NumRuns,
                    uint64_t Seed) {
  ReportSet Set = World.emptySet();
  Rng R(Seed);
  uint32_t NumSites = World.Sites.numSites();
  for (size_t Run = 0; Run < NumRuns; ++Run) {
    std::vector<uint32_t> True, ObservedOnly;
    for (uint32_t Site = 0; Site < NumSites; ++Site) {
      if (R.nextBernoulli(0.15))
        True.push_back(Site);
      else if (R.nextBernoulli(0.25))
        ObservedOnly.push_back(Site);
    }
    Set.add(SyntheticWorld::makeReport(World.Sites, R.nextBernoulli(0.3),
                                       True, ObservedOnly));
  }
  return Set;
}

/// Asserts that \p Agg matches a from-scratch recomputation under \p View
/// for every predicate.
void expectMatchesRecompute(const SyntheticWorld &World, const ReportSet &Set,
                            const RunView &View, const Aggregates &Agg) {
  Aggregates Fresh = Aggregates::compute(Set, View);
  ASSERT_EQ(Agg.numFailing(), Fresh.numFailing());
  ASSERT_EQ(Agg.numSuccessful(), Fresh.numSuccessful());
  for (uint32_t Pred = 0; Pred < Set.numPredicates(); ++Pred) {
    PredicateCounts A = Agg.counts(Pred, World.Sites);
    PredicateCounts B = Fresh.counts(Pred, World.Sites);
    ASSERT_EQ(A.F, B.F) << "pred " << Pred;
    ASSERT_EQ(A.S, B.S) << "pred " << Pred;
    ASSERT_EQ(A.FObs, B.FObs) << "pred " << Pred;
    ASSERT_EQ(A.SObs, B.SObs) << "pred " << Pred;
  }
}

} // namespace

TEST(InvertedIndexTest, PostingListsMatchReports) {
  SyntheticWorld World(12);
  ReportSet Set = randomSet(World, 60, 42);
  InvertedIndex Index = InvertedIndex::build(Set, /*Threads=*/1);

  ASSERT_EQ(Index.numPredicates(), Set.numPredicates());
  ASSERT_EQ(Index.numSites(), Set.numSites());
  for (uint32_t Pred = 0; Pred < Set.numPredicates(); ++Pred) {
    std::vector<uint32_t> Expected;
    for (size_t Run = 0; Run < Set.size(); ++Run)
      if (Set[Run].observedTrue(Pred))
        Expected.push_back(static_cast<uint32_t>(Run));
    EXPECT_EQ(Index.runsWhereTrue(Pred), Expected) << "pred " << Pred;
  }
  for (uint32_t Site = 0; Site < Set.numSites(); ++Site) {
    std::vector<uint32_t> Expected;
    for (size_t Run = 0; Run < Set.size(); ++Run)
      if (Set[Run].siteObserved(Site))
        Expected.push_back(static_cast<uint32_t>(Run));
    EXPECT_EQ(Index.runsObservingSite(Site), Expected) << "site " << Site;
  }
}

TEST(InvertedIndexTest, ZeroCountEntriesAreNotIndexed) {
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  FeedbackReport Report;
  Report.Counts.SiteObservations = {{0, 0}, {1, 2}};
  Report.Counts.TruePredicates = {{World.predOf(0), 0},
                                  {World.predOf(1), 1}};
  Set.add(std::move(Report));
  InvertedIndex Index = InvertedIndex::build(Set, 1);
  EXPECT_TRUE(Index.runsObservingSite(0).empty());
  EXPECT_EQ(Index.runsObservingSite(1).size(), 1u);
  EXPECT_TRUE(Index.runsWhereTrue(World.predOf(0)).empty());
  EXPECT_EQ(Index.runsWhereTrue(World.predOf(1)).size(), 1u);
}

TEST(InvertedIndexTest, ParallelBuildMatchesSerial) {
  SyntheticWorld World(12);
  // Enough runs that the parallel path actually splits into chunks (the
  // builder falls back to serial below ~4k runs per worker).
  ReportSet Set = randomSet(World, 9000, 7);
  InvertedIndex Serial = InvertedIndex::build(Set, 1);
  for (size_t Threads : {2u, 3u, 8u}) {
    InvertedIndex Parallel = InvertedIndex::build(Set, Threads);
    ASSERT_EQ(Parallel.numPostings(), Serial.numPostings());
    for (uint32_t Pred = 0; Pred < Set.numPredicates(); ++Pred)
      ASSERT_EQ(Parallel.runsWhereTrue(Pred), Serial.runsWhereTrue(Pred))
          << "pred " << Pred << " with " << Threads << " threads";
    for (uint32_t Site = 0; Site < Set.numSites(); ++Site)
      ASSERT_EQ(Parallel.runsObservingSite(Site),
                Serial.runsObservingSite(Site))
          << "site " << Site << " with " << Threads << " threads";
  }
}

TEST(DeltaAggregatesTest, InitialStateMatchesFullScan) {
  SyntheticWorld World(12);
  ReportSet Set = randomSet(World, 80, 11);
  RunView View = RunView::allOf(Set);
  DeltaAggregates Delta(Set, View);
  expectMatchesRecompute(World, Set, View, Delta.aggregates());
}

TEST(DeltaAggregatesTest, RemovalMatchesRecompute) {
  SyntheticWorld World(12);
  ReportSet Set = randomSet(World, 80, 23);
  RunView View = RunView::allOf(Set);
  DeltaAggregates Delta(Set, View);

  Rng R(5);
  for (size_t Run = 0; Run < Set.size(); ++Run) {
    if (!R.nextBernoulli(0.4))
      continue;
    Delta.removeRun(Run, View.Failed[Run]);
    View.Active[Run] = 0;
    // Compare after every mutation, not just at the end, so an
    // off-by-one-run bug cannot cancel out.
    expectMatchesRecompute(World, Set, View, Delta.aggregates());
  }
}

TEST(DeltaAggregatesTest, RelabelMatchesRecompute) {
  SyntheticWorld World(12);
  ReportSet Set = randomSet(World, 80, 31);
  RunView View = RunView::allOf(Set);
  DeltaAggregates Delta(Set, View);

  Rng R(9);
  for (size_t Run = 0; Run < Set.size(); ++Run) {
    if (!View.Failed[Run] || !R.nextBernoulli(0.5))
      continue;
    Delta.relabelRunAsSuccess(Run);
    View.Failed[Run] = 0;
    expectMatchesRecompute(World, Set, View, Delta.aggregates());
  }
}

TEST(DeltaAggregatesTest, MixedMutationSequenceMatchesRecompute) {
  SyntheticWorld World(12);
  ReportSet Set = randomSet(World, 120, 77);
  RunView View = RunView::allOf(Set);
  DeltaAggregates Delta(Set, View);

  Rng R(13);
  for (size_t Run = 0; Run < Set.size(); ++Run) {
    double Roll = R.nextDouble();
    if (Roll < 0.25) {
      Delta.removeRun(Run, View.Failed[Run]);
      View.Active[Run] = 0;
    } else if (Roll < 0.5 && View.Failed[Run]) {
      Delta.relabelRunAsSuccess(Run);
      View.Failed[Run] = 0;
    }
  }
  expectMatchesRecompute(World, Set, View, Delta.aggregates());
}
