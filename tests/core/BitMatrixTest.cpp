//===- tests/core/BitMatrixTest.cpp - Bitset engine units -----------------===//

#include "core/BitMatrix.h"

#include "core/Analysis.h"
#include "SyntheticWorld.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

/// Randomized multi-bug population (same shape as the analysis
/// differential fixtures): planted bugs with different rates, noise
/// predicates, both labels.
ReportSet multiBugSet(const SyntheticWorld &World, uint64_t Seed,
                      int NumRuns = 500) {
  ReportSet Set(World.Sites.numSites(), World.Sites.numPredicates());
  Rng R(Seed);
  constexpr int NumBugs = 5;
  double Rates[NumBugs] = {0.15, 0.1, 0.06, 0.03, 0.015};
  for (int I = 0; I < NumRuns; ++I) {
    std::vector<uint32_t> True;
    bool Failed = false;
    for (int Bug = 0; Bug < NumBugs; ++Bug)
      if (R.nextBernoulli(Rates[Bug])) {
        True.push_back(static_cast<uint32_t>(Bug));
        if (R.nextBernoulli(0.8))
          Failed = true;
      }
    for (uint32_t Noise = 5; Noise < 9; ++Noise)
      if (R.nextBernoulli(0.3))
        True.push_back(Noise);
    Set.add(SyntheticWorld::makeReport(World.Sites, Failed, True,
                                       {0, 1, 2, 3, 4, 5, 6, 7, 8}));
  }
  return Set;
}

void expectSameCounts(const Aggregates &A, const Aggregates &B,
                      const SiteTable &Sites, const char *Label) {
  ASSERT_EQ(A.numFailing(), B.numFailing()) << Label;
  ASSERT_EQ(A.numSuccessful(), B.numSuccessful()) << Label;
  for (uint32_t Pred = 0; Pred < Sites.numPredicates(); ++Pred) {
    PredicateCounts X = A.counts(Pred, Sites), Y = B.counts(Pred, Sites);
    ASSERT_EQ(X.F, Y.F) << Label << " pred " << Pred;
    ASSERT_EQ(X.S, Y.S) << Label << " pred " << Pred;
    ASSERT_EQ(X.FObs, Y.FObs) << Label << " pred " << Pred;
    ASSERT_EQ(X.SObs, Y.SObs) << Label << " pred " << Pred;
  }
}

} // namespace

// --- BitMatrix layout -------------------------------------------------------

TEST(BitMatrixTest, SetTestRoundTrip) {
  BitMatrix M(3, 1000);
  EXPECT_EQ(M.numRows(), 3u);
  EXPECT_EQ(M.numCols(), 1000u);
  EXPECT_EQ(M.numBlocks(), 2u); // 1000 cols / 512 per block.
  const uint64_t Cols[] = {0, 1, 63, 64, 511, 512, 999};
  for (uint64_t Col : Cols) {
    EXPECT_FALSE(M.test(1, Col));
    M.set(1, Col);
    EXPECT_TRUE(M.test(1, Col)) << Col;
    EXPECT_FALSE(M.test(0, Col)) << Col;
    EXPECT_FALSE(M.test(2, Col)) << Col;
  }
  // No accidental neighbors.
  EXPECT_FALSE(M.test(1, 2));
  EXPECT_FALSE(M.test(1, 62));
  EXPECT_FALSE(M.test(1, 65));
}

TEST(BitMatrixTest, BlockRowMatchesMaskWordOrder) {
  // Column c of block B lands in word (c % 512) / 64 of blockRow(B, row) —
  // the same word a plain mask stores at [B * BlockWords + word], which is
  // what lets the kernels AND rows against masks without remapping.
  BitMatrix M(2, 1200);
  M.set(1, 513); // Block 1, word 0, bit 1.
  M.set(1, 1199); // Block 2, word (1199 - 1024) / 64 = 2, bit 47.
  const uint64_t *Row = M.blockRow(1, 1);
  EXPECT_EQ(Row[0], uint64_t(1) << 1);
  Row = M.blockRow(2, 1);
  EXPECT_EQ(Row[2], uint64_t(1) << 47);
  EXPECT_EQ(M.bytes(),
            M.numBlocks() * 2 * BitMatrix::BlockWords * sizeof(uint64_t));
}

// --- BitsetIndex build ------------------------------------------------------

TEST(BitsetIndexTest, InitialAggregatesMatchFullScan) {
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 7);
  RunProfiles Runs = RunProfiles::fromReports(Set);
  BitsetIndex Index = BitsetIndex::build(Runs, World.Sites);
  Aggregates Full = Aggregates::compute(Runs, RunView::allOf(Runs));
  expectSameCounts(Index.initialAggregates(), Full, World.Sites, "initial");
  EXPECT_EQ(Index.numRuns(), Runs.size());
  EXPECT_EQ(Index.numFailing(), Runs.numFailing());
  EXPECT_GT(Index.matrixBytes(), 0u);
}

TEST(BitsetIndexTest, SurvivorsMatchPrune) {
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 11);
  RunProfiles Runs = RunProfiles::fromReports(Set);
  BitsetIndex Index = BitsetIndex::build(Runs, World.Sites);
  CauseIsolator Isolator(World.Sites, Runs);
  EXPECT_EQ(Index.survivors(), Isolator.prune());
  EXPECT_FALSE(Index.survivors().empty()) << "trivial fixture";
}

TEST(BitsetIndexTest, BuildIsThreadCountInvariant) {
  SyntheticWorld World(16);
  // Enough runs to clear the one-worker-per-4096-runs floor, so the
  // parallel chunked path actually executes.
  ReportSet Set = multiBugSet(World, 13, 9000);
  RunProfiles Runs = RunProfiles::fromReports(Set);
  BitsetIndex Serial = BitsetIndex::build(Runs, World.Sites, 1);
  BitsetIndex Parallel = BitsetIndex::build(Runs, World.Sites, 3);
  expectSameCounts(Serial.initialAggregates(), Parallel.initialAggregates(),
                   World.Sites, "threads");
  EXPECT_EQ(Serial.survivors(), Parallel.survivors());

  // The matrices must be word-identical too: analyses sharing either index
  // are bit-identical across every policy.
  for (DiscardPolicy Policy :
       {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
        DiscardPolicy::RelabelFailingRuns}) {
    AnalysisOptions A;
    A.Policy = Policy;
    A.Engine = AnalysisEngine::Bitset;
    A.SharedBitset = &Serial;
    AnalysisOptions B = A;
    B.SharedBitset = &Parallel;
    AnalysisResult RA = CauseIsolator(World.Sites, Runs, A).run();
    AnalysisResult RB = CauseIsolator(World.Sites, Runs, B).run();
    EXPECT_TRUE(bitIdentical(RA, RB)) << discardPolicyName(Policy);
  }
}

// --- BitsetState vs. a mutated-view rescan ---------------------------------

TEST(BitsetStateTest, DiscardFailingMatchesViewRescan) {
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 21);
  RunProfiles Runs = RunProfiles::fromReports(Set);
  BitsetIndex Index = BitsetIndex::build(Runs, World.Sites);
  BitsetState State(Index);

  RunView View = RunView::allOf(Runs);
  ASSERT_FALSE(Index.survivors().empty());
  uint32_t Pred = Index.survivors().front();
  uint64_t Discarded = State.discardFailingRuns(Pred);
  uint64_t Expected = 0;
  for (size_t Run = 0; Run < Runs.size(); ++Run)
    if (View.Failed[Run] && Runs.observedTrue(Run, Pred)) {
      View.Active[Run] = 0;
      ++Expected;
    }
  EXPECT_EQ(Discarded, Expected);
  EXPECT_GT(Discarded, 0u) << "trivial fixture";
  expectSameCounts(State.aggregates(), Aggregates::compute(Runs, View),
                   World.Sites, "discard-failing");
}

TEST(BitsetStateTest, RelabelMatchesViewRescan) {
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 23);
  RunProfiles Runs = RunProfiles::fromReports(Set);
  BitsetIndex Index = BitsetIndex::build(Runs, World.Sites);
  BitsetState State(Index);

  RunView View = RunView::allOf(Runs);
  ASSERT_FALSE(Index.survivors().empty());
  uint32_t Pred = Index.survivors().front();
  uint64_t Relabeled = State.relabelFailingRuns(Pred);
  uint64_t Expected = 0;
  for (size_t Run = 0; Run < Runs.size(); ++Run)
    if (View.Failed[Run] && Runs.observedTrue(Run, Pred)) {
      View.Failed[Run] = 0;
      ++Expected;
    }
  EXPECT_EQ(Relabeled, Expected);
  EXPECT_GT(Relabeled, 0u) << "trivial fixture";
  expectSameCounts(State.aggregates(), Aggregates::compute(Runs, View),
                   World.Sites, "relabel");
}

TEST(BitsetStateTest, DiscardCoveredMatchesViewRescanOnSurvivorRows) {
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 29);
  RunProfiles Runs = RunProfiles::fromReports(Set);
  BitsetIndex Index = BitsetIndex::build(Runs, World.Sites);
  BitsetState State(Index);

  RunView View = RunView::allOf(Runs);
  ASSERT_GE(Index.survivors().size(), 2u);
  // Two successive policy-1 selections, so the second AND runs against an
  // already-shrunk active mask.
  for (uint32_t Pred :
       {Index.survivors().front(), Index.survivors().back()}) {
    uint64_t Discarded = State.discardCoveredRuns(Pred);
    uint64_t Expected = 0;
    for (size_t Run = 0; Run < Runs.size(); ++Run)
      if (View.Active[Run] && Runs.observedTrue(Run, Pred)) {
        View.Active[Run] = 0;
        ++Expected;
      }
    EXPECT_EQ(Discarded, Expected);
    EXPECT_GT(Discarded, 0u) << "trivial fixture";
  }
  // The full-width matrix only carries survivor rows (plus their sites),
  // so the live counts are contractual for exactly those predicates.
  Aggregates Rescan = Aggregates::compute(Runs, View);
  ASSERT_EQ(State.aggregates().numFailing(), Rescan.numFailing());
  ASSERT_EQ(State.aggregates().numSuccessful(), Rescan.numSuccessful());
  for (uint32_t Pred : Index.survivors()) {
    PredicateCounts X = State.aggregates().counts(Pred, World.Sites);
    PredicateCounts Y = Rescan.counts(Pred, World.Sites);
    EXPECT_EQ(X.F, Y.F) << Pred;
    EXPECT_EQ(X.S, Y.S) << Pred;
    EXPECT_EQ(X.FObs, Y.FObs) << Pred;
    EXPECT_EQ(X.SObs, Y.SObs) << Pred;
  }
}

// --- Density fallback heuristic ---------------------------------------------

TEST(BitsetIndexTest, PreferIncrementalThresholds) {
  // Small population: the fail-matrix estimate is far below 1 MiB, so the
  // bitset engine never falls back regardless of density.
  SyntheticWorld World(16);
  ReportSet Set = multiBugSet(World, 31);
  RunProfiles Small = RunProfiles::fromReports(Set);
  EXPECT_FALSE(BitsetIndex::preferIncremental(Small, 1.0 / 256));

  // Large, extremely sparse population (one site + one pred per run over
  // thousands of rows): posting walks win, the heuristic says fall back.
  RunProfiles Sparse(1000, 2000);
  for (int Run = 0; Run < 3000; ++Run) {
    Sparse.beginRun(/*Failed=*/true);
    Sparse.addSite(static_cast<uint32_t>(Run % 1000));
    Sparse.addPred(static_cast<uint32_t>(Run % 2000));
  }
  EXPECT_TRUE(BitsetIndex::preferIncremental(Sparse, 1.0 / 256));
  // A zero threshold disables the fallback outright.
  EXPECT_FALSE(BitsetIndex::preferIncremental(Sparse, 0.0));
}
