//===- tests/core/AggregatorTest.cpp - Count aggregation tests ------------===//

#include "core/Aggregator.h"

#include "SyntheticWorld.h"

#include <gtest/gtest.h>

using namespace sbi;

TEST(RunViewTest, AllOfMirrorsLabels) {
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}));
  Set.add(SyntheticWorld::makeReport(World.Sites, false, {1}));
  RunView View = RunView::allOf(Set);
  EXPECT_EQ(View.numActive(), 2u);
  EXPECT_EQ(View.numActiveFailing(), 1u);
  EXPECT_EQ(View.Failed[0], 1);
  EXPECT_EQ(View.Failed[1], 0);
}

TEST(AggregatorTest, CountsSplitByLabel) {
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  // Site 0 true in 2 failing + 1 successful run; observed-only in 1 more
  // successful run.
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}));
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}));
  Set.add(SyntheticWorld::makeReport(World.Sites, false, {0}));
  Set.add(SyntheticWorld::makeReport(World.Sites, false, {}, {0}));
  RunView View = RunView::allOf(Set);
  Aggregates Agg = Aggregates::compute(Set, View);

  PredicateCounts Counts = Agg.counts(World.predOf(0), World.Sites);
  EXPECT_EQ(Counts.F, 2u);
  EXPECT_EQ(Counts.S, 1u);
  EXPECT_EQ(Counts.FObs, 2u);
  EXPECT_EQ(Counts.SObs, 2u);
  EXPECT_EQ(Agg.numFailing(), 2u);
  EXPECT_EQ(Agg.numSuccessful(), 2u);
}

TEST(AggregatorTest, InactiveRunsExcluded) {
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}));
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}));
  RunView View = RunView::allOf(Set);
  View.Active[0] = 0;
  Aggregates Agg = Aggregates::compute(Set, View);
  EXPECT_EQ(Agg.counts(World.predOf(0), World.Sites).F, 1u);
  EXPECT_EQ(Agg.numFailing(), 1u);
}

TEST(AggregatorTest, RelabeledRunsCountUnderNewLabel) {
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}));
  RunView View = RunView::allOf(Set);
  View.Failed[0] = 0; // Relabel as success (Section 5, proposal 3).
  Aggregates Agg = Aggregates::compute(Set, View);
  PredicateCounts Counts = Agg.counts(World.predOf(0), World.Sites);
  EXPECT_EQ(Counts.F, 0u);
  EXPECT_EQ(Counts.S, 1u);
}

TEST(AggregatorTest, SiteObservationSharedAcrossSitePredicates) {
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  Set.add(SyntheticWorld::makeReport(World.Sites, true, {0}));
  RunView View = RunView::allOf(Set);
  Aggregates Agg = Aggregates::compute(Set, View);
  const SiteInfo &Site = World.Sites.site(0);
  // Every predicate of site 0 shares FObs/SObs, but only the first is true.
  for (uint32_t P = 0; P < Site.NumPredicates; ++P) {
    PredicateCounts Counts =
        Agg.counts(Site.FirstPredicate + P, World.Sites);
    EXPECT_EQ(Counts.FObs, 1u);
    EXPECT_EQ(Counts.F, P == 0 ? 1u : 0u);
  }
}

TEST(AggregatorTest, EmptySet) {
  SyntheticWorld World(8);
  ReportSet Set = World.emptySet();
  RunView View = RunView::allOf(Set);
  Aggregates Agg = Aggregates::compute(Set, View);
  EXPECT_EQ(Agg.numFailing(), 0u);
  EXPECT_EQ(Agg.numSuccessful(), 0u);
  EXPECT_EQ(Agg.counts(0, World.Sites).observed(), 0u);
}
