//===- tests/logreg/LogRegTest.cpp - Logistic-regression baseline tests ---===//

#include "logreg/LogReg.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sbi;

namespace {

FeedbackReport makeRun(bool Failed, std::vector<uint32_t> TruePreds) {
  FeedbackReport Report;
  Report.Failed = Failed;
  std::sort(TruePreds.begin(), TruePreds.end());
  for (uint32_t Pred : TruePreds)
    Report.Counts.TruePredicates.emplace_back(Pred, 1);
  return Report;
}

/// Predicate 0 perfectly separates failures; predicates 1..4 are noise.
ReportSet separableSet(int PerClass = 60) {
  ReportSet Set(10, 10);
  for (int I = 0; I < PerClass; ++I) {
    std::vector<uint32_t> Noise;
    if (I % 2)
      Noise.push_back(1);
    if (I % 3)
      Noise.push_back(2);
    std::vector<uint32_t> Failing = Noise;
    Failing.push_back(0);
    Set.add(makeRun(true, Failing));
    Set.add(makeRun(false, Noise));
  }
  return Set;
}

} // namespace

TEST(LogRegTest, LearnsSeparablePredictor) {
  ReportSet Set = separableSet();
  LogRegOptions Options;
  Options.Lambda = 0.01;
  LogRegModel Model = trainL1LogReg(Set, Options);
  ASSERT_EQ(Model.Weights.size(), 10u);
  EXPECT_GT(Model.Weights[0], 0.5) << "separating feature gets the weight";
  auto Top = Model.topByMagnitude(1);
  ASSERT_EQ(Top.size(), 1u);
  EXPECT_EQ(Top[0].first, 0u);
}

TEST(LogRegTest, PredictionsSeparateClasses) {
  ReportSet Set = separableSet();
  LogRegModel Model = trainL1LogReg(Set, {0.01, 400, 1e-7});
  double FailP = Model.predict(makeRun(true, {0, 1}));
  double OkP = Model.predict(makeRun(false, {1}));
  EXPECT_GT(FailP, 0.8);
  EXPECT_LT(OkP, 0.3);
}

TEST(LogRegTest, L1DrivesNoiseWeightsToZero) {
  ReportSet Set = separableSet();
  LogRegModel Model = trainL1LogReg(Set, {0.05, 400, 1e-7});
  // Noise features 1 and 2 are uninformative; with a real penalty their
  // weights must be exactly zero (the soft-threshold operator zeroes them).
  EXPECT_DOUBLE_EQ(Model.Weights[1], 0.0);
  EXPECT_DOUBLE_EQ(Model.Weights[2], 0.0);
  EXPECT_GT(Model.Weights[0], 0.0);
}

TEST(LogRegTest, SparsityGrowsWithLambda) {
  ReportSet Set(20, 20);
  Rng R(5);
  for (int I = 0; I < 300; ++I) {
    bool Failed = R.nextBernoulli(0.4);
    std::vector<uint32_t> True;
    for (uint32_t P = 0; P < 20; ++P) {
      double Rate = Failed ? 0.2 + 0.02 * P : 0.2;
      if (R.nextBernoulli(Rate))
        True.push_back(P);
    }
    Set.add(makeRun(Failed, True));
  }
  int PrevNonzero = 21;
  for (double Lambda : {0.001, 0.01, 0.05, 0.2}) {
    LogRegModel Model = trainL1LogReg(Set, {Lambda, 300, 1e-8});
    EXPECT_LE(Model.numNonzero(), PrevNonzero)
        << "lambda = " << Lambda;
    PrevNonzero = Model.numNonzero();
  }
}

TEST(LogRegTest, HugeLambdaZeroesEverything) {
  ReportSet Set = separableSet();
  LogRegModel Model = trainL1LogReg(Set, {10.0, 200, 1e-8});
  EXPECT_EQ(Model.numNonzero(), 0);
}

TEST(LogRegTest, InterceptTracksBaseRate) {
  // With no informative features, the intercept should land near the
  // log-odds of the failure rate.
  ReportSet Set(4, 4);
  for (int I = 0; I < 90; ++I)
    Set.add(makeRun(false, {}));
  for (int I = 0; I < 10; ++I)
    Set.add(makeRun(true, {}));
  LogRegModel Model = trainL1LogReg(Set, {0.01, 400, 1e-9});
  double P = 1.0 / (1.0 + std::exp(-Model.Intercept));
  EXPECT_NEAR(P, 0.1, 0.03);
}

TEST(LogRegTest, EmptySetYieldsEmptyModel) {
  ReportSet Set(5, 5);
  LogRegModel Model = trainL1LogReg(Set);
  EXPECT_EQ(Model.numNonzero(), 0);
  EXPECT_DOUBLE_EQ(Model.Intercept, 0.0);
}

TEST(LogRegTest, TopByMagnitudeOrdersAndTruncates) {
  ReportSet Set = separableSet();
  LogRegModel Model = trainL1LogReg(Set, {0.002, 400, 1e-8});
  auto Top = Model.topByMagnitude(3);
  EXPECT_LE(Top.size(), 3u);
  for (size_t I = 1; I < Top.size(); ++I)
    EXPECT_GE(std::fabs(Top[I - 1].second), std::fabs(Top[I].second));
}

TEST(LogRegTest, TopPositiveExcludesNegativeWeights) {
  // Feature 0 predicts failure; feature 3 predicts success (present in
  // every successful run only) and should get a negative weight.
  ReportSet Set(10, 10);
  for (int I = 0; I < 60; ++I) {
    Set.add(makeRun(true, {0}));
    Set.add(makeRun(false, {3}));
  }
  LogRegModel Model = trainL1LogReg(Set, {0.01, 400, 1e-8});
  EXPECT_LT(Model.Weights[3], 0.0);
  for (const auto &[Pred, Weight] : Model.topPositive(10)) {
    EXPECT_GT(Weight, 0.0);
    EXPECT_NE(Pred, 3u);
  }
  auto Top = Model.topPositive(10);
  ASSERT_FALSE(Top.empty());
  EXPECT_EQ(Top[0].first, 0u);
}

TEST(LogRegTest, TrainForSparsityRespectsCap) {
  ReportSet Set = separableSet();
  LogRegModel Model =
      trainForSparsity(Set, /*MaxActive=*/2, {0.2, 0.05, 0.01, 0.001});
  int Active = Model.numNonzero();
  EXPECT_GT(Active, 0);
  EXPECT_LE(Active, 2);
}

TEST(LogRegTest, DeterministicTraining) {
  ReportSet Set = separableSet();
  LogRegModel A = trainL1LogReg(Set, {0.01, 200, 1e-8});
  LogRegModel B = trainL1LogReg(Set, {0.01, 200, 1e-8});
  EXPECT_EQ(A.Weights, B.Weights);
  EXPECT_DOUBLE_EQ(A.Intercept, B.Intercept);
}
