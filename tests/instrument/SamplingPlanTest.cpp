//===- tests/instrument/SamplingPlanTest.cpp - Sampling plan tests --------===//

#include "instrument/Collector.h"

#include <gtest/gtest.h>

using namespace sbi;

TEST(SamplingPlanTest, FullPlanIsAllOnes) {
  SamplingPlan Plan = SamplingPlan::full(5);
  ASSERT_EQ(Plan.numSites(), 5u);
  for (uint32_t S = 0; S < 5; ++S)
    EXPECT_DOUBLE_EQ(Plan.rate(S), 1.0);
}

TEST(SamplingPlanTest, UniformPlanClamps) {
  SamplingPlan Plan = SamplingPlan::uniform(3, 0.01);
  for (uint32_t S = 0; S < 3; ++S)
    EXPECT_DOUBLE_EQ(Plan.rate(S), 0.01);
  EXPECT_DOUBLE_EQ(SamplingPlan::uniform(1, 2.0).rate(0), 1.0);
  EXPECT_DOUBLE_EQ(SamplingPlan::uniform(1, -1.0).rate(0), 0.0);
}

TEST(SamplingPlanTest, AdaptiveRareSitesGetFullRate) {
  // A site reached fewer than TargetSamples times per run is sampled on
  // every reach (Section 4: rarely executed code gets a much higher rate).
  SamplingPlan Plan = SamplingPlan::adaptive({5.0, 99.9, 100.0});
  EXPECT_DOUBLE_EQ(Plan.rate(0), 1.0);
  EXPECT_DOUBLE_EQ(Plan.rate(1), 1.0);
  EXPECT_DOUBLE_EQ(Plan.rate(2), 1.0);
}

TEST(SamplingPlanTest, AdaptiveHotSitesGetProportionalRate) {
  SamplingPlan Plan = SamplingPlan::adaptive({1000.0, 10000.0});
  EXPECT_NEAR(Plan.rate(0), 0.1, 1e-12);
  EXPECT_NEAR(Plan.rate(1), 0.01, 1e-12);
}

TEST(SamplingPlanTest, AdaptiveSnapsNearFullRatesToFull) {
  // Sampling at 100/150 of reaches costs more than it saves; such sites
  // are monitored completely.
  SamplingPlan Plan = SamplingPlan::adaptive({150.0, 190.0, 210.0});
  EXPECT_DOUBLE_EQ(Plan.rate(0), 1.0);
  EXPECT_DOUBLE_EQ(Plan.rate(1), 1.0);
  EXPECT_NEAR(Plan.rate(2), 100.0 / 210.0, 1e-12);
}

TEST(SamplingPlanTest, AdaptiveClampsAtMinimumRate) {
  // The paper clamps at 1/100: even the hottest site keeps that floor.
  SamplingPlan Plan = SamplingPlan::adaptive({1e9});
  EXPECT_DOUBLE_EQ(Plan.rate(0), 0.01);
}

TEST(SamplingPlanTest, AdaptiveNeverReachedSiteGetsFullRate) {
  SamplingPlan Plan = SamplingPlan::adaptive({0.0});
  EXPECT_DOUBLE_EQ(Plan.rate(0), 1.0);
}

TEST(SamplingPlanTest, AdaptiveHonorsCustomTargetAndFloor) {
  SamplingPlan Plan = SamplingPlan::adaptive({1000.0}, /*TargetSamples=*/10,
                                             /*MinRate=*/0.05);
  EXPECT_NEAR(Plan.rate(0), 0.05, 1e-12); // 10/1000 clamped to 0.05.
}

TEST(SamplingPlanTest, NamesDescribeConfiguration) {
  EXPECT_EQ(SamplingPlan::full(1).name(), "full");
  EXPECT_NE(SamplingPlan::uniform(1, 0.01).name().find("uniform"),
            std::string::npos);
  EXPECT_NE(SamplingPlan::adaptive({1.0}).name().find("adaptive"),
            std::string::npos);
}
