//===- tests/instrument/SitesTest.cpp - Site enumeration tests ------------===//

#include "instrument/Sites.h"

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

std::unique_ptr<Program> compile(std::string_view Source) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  return Prog;
}

size_t countScheme(const SiteTable &Table, Scheme S) {
  size_t N = 0;
  for (const SiteInfo &Site : Table.sites())
    N += Site.SchemeKind == S ? 1 : 0;
  return N;
}

} // namespace

TEST(SitesTest, IfIsOneBranchSiteWithTwoPredicates) {
  auto Prog = compile("fn main() { if (1 < 2) { } }");
  SiteTable Table = SiteTable::build(*Prog);
  EXPECT_EQ(countScheme(Table, Scheme::Branches), 1u);
  const SiteInfo &Site = Table.site(0);
  EXPECT_EQ(Site.NumPredicates, 2u);
  EXPECT_EQ(Table.predicate(Site.FirstPredicate).Op, PredicateOp::IsTrue);
  EXPECT_EQ(Table.predicate(Site.FirstPredicate + 1).Op,
            PredicateOp::IsFalse);
}

TEST(SitesTest, LoopsAreBranchSites) {
  auto Prog = compile(R"(fn main() {
  while (0) { }
  for (int i = 0; i < 3; i = i + 1) { }
})");
  SiteTable Table = SiteTable::build(*Prog);
  // while + for conditions. The for's init/step assignments add
  // scalar-pairs sites but no branch sites beyond the condition.
  EXPECT_EQ(countScheme(Table, Scheme::Branches), 2u);
}

TEST(SitesTest, ShortCircuitOperatorsAreBranchSites) {
  auto Prog = compile("fn main() { int x = (1 < 2) && (3 < 4) || (5 < 6); }");
  SiteTable Table = SiteTable::build(*Prog);
  EXPECT_EQ(countScheme(Table, Scheme::Branches), 2u); // One &&, one ||.
}

TEST(SitesTest, ScalarReturningCallsGetSixPredicates) {
  auto Prog = compile(R"(
fn f() { return 1; }
fn main() { int x = f(); })");
  SiteTable Table = SiteTable::build(*Prog);
  ASSERT_EQ(countScheme(Table, Scheme::Returns), 1u);
  for (const SiteInfo &Site : Table.sites())
    if (Site.SchemeKind == Scheme::Returns)
      EXPECT_EQ(Site.NumPredicates, 6u);
}

TEST(SitesTest, IntReturningIntrinsicsAreReturnSites) {
  auto Prog = compile("fn main() { int x = strcmp(\"a\", \"b\"); }");
  SiteTable Table = SiteTable::build(*Prog);
  EXPECT_EQ(countScheme(Table, Scheme::Returns), 1u);
}

TEST(SitesTest, VoidIntrinsicsAreNotReturnSites) {
  auto Prog = compile("fn main() { println(1); exit(0); }");
  SiteTable Table = SiteTable::build(*Prog);
  EXPECT_EQ(countScheme(Table, Scheme::Returns), 0u);
}

TEST(SitesTest, ScalarPairsOneSitePerComparand) {
  auto Prog = compile(R"(fn main() {
  int a = 0;
  int b = 0;
  b = 7;
})");
  SiteTable Table = SiteTable::build(*Prog);
  // Assignment b = 7: one pair site for 'a' plus one per collected
  // constant ({0, 7} -> 2 constants). Declarations with initializers also
  // mint pair sites: a = 0 pairs with constants only, b = 0 pairs with a +
  // constants.
  size_t Pairs = countScheme(Table, Scheme::ScalarPairs);
  // a-decl: 2 (constants 0,7); b-decl: 1 (a) + 2; assignment: 1 (a) + 2.
  EXPECT_EQ(Pairs, 8u);
  for (const SiteInfo &Site : Table.sites())
    if (Site.SchemeKind == Scheme::ScalarPairs)
      EXPECT_EQ(Site.NumPredicates, 6u);
}

TEST(SitesTest, ConstantsAreCappedAndDeduplicated) {
  auto Prog = compile(R"(fn main() {
  int x = 0;
  x = 1; x = 1; x = 2; x = 3; x = 4; x = 5; x = 6; x = 7; x = 8; x = 9;
})");
  SiteOptions Opts;
  Opts.MaxConstantsPerFunction = 3;
  SiteTable Table = SiteTable::build(*Prog, Opts);
  // Each int assignment pairs with at most 3 constants (and no other int
  // vars exist).
  for (const SiteInfo &Site : Table.sites())
    if (Site.SchemeKind == Scheme::ScalarPairs) {
      EXPECT_TRUE(Site.PairIsConstant);
      EXPECT_LE(Site.PairConstant, 2); // Smallest three constants: 0, 1, 2.
    }
}

TEST(SitesTest, SchemesCanBeDisabled) {
  auto Prog = compile(R"(fn main() {
  int a = 0;
  if (a < 1) { a = len("x"); }
})");
  SiteOptions NoBranches;
  NoBranches.Branches = false;
  EXPECT_EQ(countScheme(SiteTable::build(*Prog, NoBranches),
                        Scheme::Branches),
            0u);
  SiteOptions NoReturns;
  NoReturns.Returns = false;
  EXPECT_EQ(countScheme(SiteTable::build(*Prog, NoReturns), Scheme::Returns),
            0u);
  SiteOptions NoPairs;
  NoPairs.ScalarPairs = false;
  EXPECT_EQ(countScheme(SiteTable::build(*Prog, NoPairs),
                        Scheme::ScalarPairs),
            0u);
}

TEST(SitesTest, ExcludedFunctionPrefixSkipsInstrumentation) {
  auto Prog = compile(R"(
fn __lib_helper(int x) {
  if (x > 0) { return x; }
  return 0 - x;
}
fn main() { int y = __lib_helper(0 - 3); })");
  SiteTable Table = SiteTable::build(*Prog);
  for (const SiteInfo &Site : Table.sites())
    EXPECT_NE(Site.Function, "__lib_helper");
  // The call site in main is still a returns site.
  EXPECT_EQ(countScheme(Table, Scheme::Returns), 1u);
}

TEST(SitesTest, NodeRangeLookup) {
  auto Prog = compile(R"(fn main() {
  int a = 0;
  int b = 0;
  a = b + 1;
})");
  SiteTable Table = SiteTable::build(*Prog);
  auto &Assign = static_cast<AssignStmt &>(*Prog->Functions[0]->Body->Body[2]);
  SiteTable::SiteRange Range = Table.sitesForNode(Assign.Id);
  EXPECT_GT(Range.Count, 0u);
  for (uint32_t I = 0; I < Range.Count; ++I) {
    EXPECT_EQ(Table.site(Range.First + I).NodeId, Assign.Id);
    EXPECT_EQ(Table.site(Range.First + I).SchemeKind, Scheme::ScalarPairs);
  }
}

TEST(SitesTest, UnknownNodeHasEmptyRange) {
  auto Prog = compile("fn main() { }");
  SiteTable Table = SiteTable::build(*Prog);
  EXPECT_EQ(Table.sitesForNode(-1).Count, 0u);
  EXPECT_EQ(Table.sitesForNode(999999).Count, 0u);
}

TEST(SitesTest, PredicatesAreContiguousPerSite) {
  auto Prog = compile(R"(fn main() {
  int a = 0;
  if (a < 1) { a = strcmp("x", "y"); }
  while (a > 0) { a = a - 1; }
})");
  SiteTable Table = SiteTable::build(*Prog);
  uint32_t Expected = 0;
  for (const SiteInfo &Site : Table.sites()) {
    EXPECT_EQ(Site.FirstPredicate, Expected);
    Expected += Site.NumPredicates;
  }
  EXPECT_EQ(Expected, Table.numPredicates());
}

TEST(SitesTest, PredicateTextIsReadable) {
  auto Prog = compile(R"(fn main() {
  int limit = 10;
  int i = 0;
  if (i < limit) { }
})");
  SiteTable Table = SiteTable::build(*Prog);
  bool Found = false;
  for (const PredicateInfo &Pred : Table.predicates())
    if (Pred.Text == "i < limit is TRUE")
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(SitesTest, FunctionAndLineAttributed) {
  auto Prog = compile("fn helper(int x) {\n  if (x) { }\n  return 0;\n}\n"
                      "fn main() { helper(1); }");
  SiteTable Table = SiteTable::build(*Prog);
  bool Found = false;
  for (const SiteInfo &Site : Table.sites())
    if (Site.SchemeKind == Scheme::Branches && Site.Function == "helper") {
      EXPECT_EQ(Site.Line, 2);
      Found = true;
    }
  EXPECT_TRUE(Found);
}
