//===- tests/instrument/CollectorTest.cpp - Report collection tests -------===//

#include "instrument/Collector.h"

#include "lang/Sema.h"
#include "runtime/Interp.h"

#include <gtest/gtest.h>

#include <map>

using namespace sbi;

namespace {

struct Harness {
  std::unique_ptr<Program> Prog;
  SiteTable Sites;

  explicit Harness(std::string_view Source) {
    std::vector<Diagnostic> Diags;
    Prog = parseAndAnalyze(Source, Diags);
    EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
    Sites = SiteTable::build(*Prog);
  }

  RawReport collect(ReportCollector &Collector, uint64_t Seed,
                    std::vector<std::string> Args = {}) {
    RunConfig Config;
    Config.Args = std::move(Args);
    Config.OverrunPad = 4;
    Config.Observer = &Collector;
    Collector.beginRun(Seed);
    runProgram(*Prog, Config);
    return Collector.takeReport();
  }

  /// Predicate id by exact text, asserting it exists.
  uint32_t predByText(const std::string &Text) {
    for (const PredicateInfo &Pred : Sites.predicates())
      if (Pred.Text == Text)
        return Pred.Id;
    ADD_FAILURE() << "no predicate with text: " << Text;
    return 0;
  }

  static uint32_t countFor(const RawReport &Report, uint32_t PredId) {
    for (const auto &[Pred, Count] : Report.TruePredicates)
      if (Pred == PredId)
        return Count;
    return 0;
  }

  /// Sums true-counts over ALL predicates sharing \p Text: the same
  /// predicate text can appear at several sites (e.g. one returns site per
  /// call expression).
  uint32_t countForText(const RawReport &Report, const std::string &Text) {
    uint32_t Total = 0;
    for (const PredicateInfo &Pred : Sites.predicates())
      if (Pred.Text == Text)
        Total += countFor(Report, Pred.Id);
    return Total;
  }
};

} // namespace

TEST(CollectorTest, FullMonitoringCountsBranchOutcomesExactly) {
  Harness H(R"(fn main() {
  for (int i = 0; i < 7; i = i + 1) {
    if (i % 2 == 0) { println(i); }
  }
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  // The if executes 7 times: true for i = 0,2,4,6 (4), false for 1,3,5 (3).
  EXPECT_EQ(Harness::countFor(Report, H.predByText("(i % 2) == 0 is TRUE")),
            4u);
  EXPECT_EQ(Harness::countFor(Report, H.predByText("(i % 2) == 0 is FALSE")),
            3u);
  // The loop condition: true 7 times, false once.
  EXPECT_EQ(Harness::countFor(Report, H.predByText("i < 7 is TRUE")), 7u);
  EXPECT_EQ(Harness::countFor(Report, H.predByText("i < 7 is FALSE")), 1u);
}

TEST(CollectorTest, ReturnsSchemeObservesSign) {
  Harness H(R"(
fn signof(int x) {
  if (x < 0) { return 0 - 1; }
  if (x > 0) { return 1; }
  return 0;
}
fn main() {
  int a = signof(0 - 5);
  int b = signof(9);
  int c = signof(0);
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  // Three call sites, each returning a different sign exactly once; the
  // text-keyed counts aggregate across the three sites.
  EXPECT_EQ(H.countForText(Report, "signof < 0"), 1u);
  EXPECT_EQ(H.countForText(Report, "signof > 0"), 1u);
  EXPECT_EQ(H.countForText(Report, "signof == 0"), 1u);
  EXPECT_EQ(H.countForText(Report, "signof != 0"), 2u);
}

TEST(CollectorTest, ScalarPairsCompareAgainstVariables) {
  // 'limit' and 'value' are declared without initializers so only the
  // plain assignment mints pair sites, keeping each text unique.
  Harness H(R"(fn main() {
  int limit;
  int value;
  limit = 10;
  value = 25;
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  EXPECT_EQ(H.countForText(Report, "value > limit"), 1u);
  EXPECT_EQ(H.countForText(Report, "value < limit"), 0u);
  EXPECT_EQ(H.countForText(Report, "value >= limit"), 1u);
  EXPECT_EQ(H.countForText(Report, "value != limit"), 1u);
  EXPECT_EQ(H.countForText(Report, "value == limit"), 0u);
}

TEST(CollectorTest, ScalarPairsSeeDeclarationDefaults) {
  // Declarations initialize their slot immediately (int -> 0), so when
  // 'limit = 10' executes, 'value' reads as its default 0 and the pair is
  // observed against it. Lexically visible ints are always initialized.
  Harness H(R"(fn main() {
  int limit;
  int value;
  limit = 10;
  value = 25;
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  EXPECT_EQ(H.countForText(Report, "limit > value"), 1u);  // 10 > 0
  EXPECT_EQ(H.countForText(Report, "limit != value"), 1u);
  EXPECT_EQ(H.countForText(Report, "limit < value"), 0u);
}

TEST(CollectorTest, ScalarPairsCompareAgainstConstants) {
  Harness H(R"(fn main() {
  int x;
  x = 10;
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  // The only constant in main is 10; the assignment compares the new value
  // against it.
  EXPECT_EQ(H.countForText(Report, "x == 10"), 1u);
  EXPECT_EQ(H.countForText(Report, "x >= 10"), 1u);
  EXPECT_EQ(H.countForText(Report, "x <= 10"), 1u);
  EXPECT_EQ(H.countForText(Report, "x < 10"), 0u);
  EXPECT_EQ(H.countForText(Report, "x > 10"), 0u);
  EXPECT_EQ(H.countForText(Report, "x != 10"), 0u);
}

TEST(CollectorTest, SiteObservationCountsMatchReaches) {
  Harness H(R"(fn main() {
  for (int i = 0; i < 4; i = i + 1) { }
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  // Find the for-condition branch site: observed 5 times (4 true + 1
  // false).
  bool Found = false;
  for (const auto &[Site, Count] : Report.SiteObservations)
    if (H.Sites.site(Site).SchemeKind == Scheme::Branches) {
      EXPECT_EQ(Count, 5u);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(CollectorTest, ReportsAreSortedAndUnique) {
  Harness H(R"(fn main() {
  int a = 0;
  for (int i = 0; i < 20; i = i + 1) { a = a + i; }
  println(a);
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  for (size_t I = 1; I < Report.TruePredicates.size(); ++I)
    EXPECT_LT(Report.TruePredicates[I - 1].first,
              Report.TruePredicates[I].first);
  for (size_t I = 1; I < Report.SiteObservations.size(); ++I)
    EXPECT_LT(Report.SiteObservations[I - 1].first,
              Report.SiteObservations[I].first);
}

TEST(CollectorTest, CollectorIsReusableAcrossRuns) {
  Harness H("fn main() { if (1 < 2) { println(1); } }");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport First = H.collect(Collector, 1);
  RawReport Second = H.collect(Collector, 2);
  ASSERT_EQ(First.TruePredicates.size(), Second.TruePredicates.size());
  for (size_t I = 0; I < First.TruePredicates.size(); ++I) {
    EXPECT_EQ(First.TruePredicates[I], Second.TruePredicates[I]);
  }
}

TEST(CollectorTest, SamplingIsDeterministicPerSeed) {
  Harness H(R"(fn main() {
  int a = 0;
  for (int i = 0; i < 200; i = i + 1) { a = a + 1; }
  println(a);
})");
  ReportCollector A(H.Sites, SamplingPlan::uniform(H.Sites.numSites(), 0.1));
  ReportCollector B(H.Sites, SamplingPlan::uniform(H.Sites.numSites(), 0.1));
  RawReport RA = H.collect(A, 42);
  RawReport RB = H.collect(B, 42);
  EXPECT_EQ(RA.TruePredicates, RB.TruePredicates);
  EXPECT_EQ(RA.SiteObservations, RB.SiteObservations);
}

TEST(CollectorTest, SamplingRateIsRespectedOnAverage) {
  Harness H(R"(fn main() {
  int a = 0;
  for (int i = 0; i < 1000; i = i + 1) { a = a + 1; }
  println(a);
})");
  const double Rate = 0.05;
  ReportCollector Collector(H.Sites,
                            SamplingPlan::uniform(H.Sites.numSites(), Rate));
  // The loop condition site is reached 1001 times per run; across 40 runs,
  // the observed count should be close to 1001 * 40 * rate.
  uint64_t TotalObserved = 0;
  const int Runs = 40;
  for (int Run = 0; Run < Runs; ++Run) {
    RawReport Report =
        H.collect(Collector, static_cast<uint64_t>(Run) + 100);
    for (const auto &[Site, Count] : Report.SiteObservations)
      if (H.Sites.site(Site).SchemeKind == Scheme::Branches)
        TotalObserved += Count;
  }
  double Expected = 1001.0 * Runs * Rate;
  EXPECT_GT(static_cast<double>(TotalObserved), Expected * 0.7);
  EXPECT_LT(static_cast<double>(TotalObserved), Expected * 1.3);
}

TEST(CollectorTest, ZeroRateObservesNothing) {
  Harness H("fn main() { if (1 < 2) { println(1); } }");
  ReportCollector Collector(H.Sites,
                            SamplingPlan::uniform(H.Sites.numSites(), 0.0));
  RawReport Report = H.collect(Collector, 7);
  EXPECT_TRUE(Report.TruePredicates.empty());
  EXPECT_TRUE(Report.SiteObservations.empty());
}

TEST(CollectorTest, JointObservationWithinASite) {
  // When a six-way site is sampled, consistent predicates must be observed
  // together: for any sampled return observation, exactly one of <,==,>
  // and the implied non-strict forms hold.
  Harness H(R"(
fn f(int x) { return x; }
fn main() {
  int a = f(3);
  int b = f(0 - 3);
  int c = f(0);
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  // Each of the 3 call sites observed once; per observation exactly 3 of
  // the 6 predicates hold (e.g. >0 implies >=0 and !=0).
  std::map<uint32_t, uint32_t> TrueBySite;
  for (const auto &[Pred, Count] : Report.TruePredicates) {
    const PredicateInfo &Info = H.Sites.predicate(Pred);
    if (H.Sites.site(Info.Site).SchemeKind == Scheme::Returns)
      TrueBySite[Info.Site] += Count;
  }
  for (const auto &[Site, Count] : TrueBySite)
    EXPECT_EQ(Count, 3u) << "site " << Site;
}

namespace {

/// Observation count for \p Site in \p Report (0 when absent).
uint32_t siteCount(const RawReport &Report, uint32_t Site) {
  for (const auto &[S, Count] : Report.SiteObservations)
    if (S == Site)
      return Count;
  return 0;
}

} // namespace

TEST(CollectorTest, EnabledMaskSilencesExactlyTheMaskedSites) {
  Harness H(R"(fn main() {
  for (int i = 0; i < 30; i = i + 1) {
    if (i % 3 == 0) { println(i); }
  }
})");
  // Mask out every even-numbered site.
  std::vector<uint8_t> Mask(H.Sites.numSites(), 1);
  for (uint32_t S = 0; S < H.Sites.numSites(); S += 2)
    Mask[S] = 0;

  ReportCollector Full(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  ReportCollector Masked(H.Sites, SamplingPlan::full(H.Sites.numSites()),
                         &Mask);
  RawReport A = H.collect(Full, 11);
  RawReport B = H.collect(Masked, 11);
  for (uint32_t S = 0; S < H.Sites.numSites(); ++S) {
    if (Mask[S]) {
      EXPECT_EQ(siteCount(B, S), siteCount(A, S)) << "site " << S;
    } else {
      EXPECT_EQ(siteCount(B, S), 0u) << "site " << S;
    }
  }
}

TEST(CollectorTest, MaskingDoesNotPerturbRetainedSitesUnderSampling) {
  // The regression the per-site RNG streams exist to prevent: each site
  // draws its skip sequence from its own (run seed, site id) stream, so
  // masking any subset of sites leaves every retained site's sampling
  // decisions — and therefore its counts — bit-identical.
  Harness H(R"(fn main() {
  int a = 0;
  for (int i = 0; i < 400; i = i + 1) {
    if (i % 2 == 0) { a = a + i; }
    if (i % 7 == 0) { a = a + 1; }
  }
  println(a);
})");
  std::vector<uint8_t> Mask(H.Sites.numSites(), 1);
  for (uint32_t S = 0; S < H.Sites.numSites(); S += 3)
    Mask[S] = 0;

  for (uint64_t Seed : {1ull, 77ull, 4096ull}) {
    ReportCollector Full(H.Sites,
                         SamplingPlan::uniform(H.Sites.numSites(), 0.1));
    ReportCollector Masked(
        H.Sites, SamplingPlan::uniform(H.Sites.numSites(), 0.1), &Mask);
    RawReport A = H.collect(Full, Seed);
    RawReport B = H.collect(Masked, Seed);

    // Retained sites: identical observation counts and identical
    // true-predicate counts.
    for (const auto &[Site, Count] : B.SiteObservations) {
      EXPECT_TRUE(Mask[Site]) << "masked site " << Site << " observed";
      EXPECT_EQ(Count, siteCount(A, Site)) << "seed " << Seed;
    }
    for (const auto &[Pred, Count] : B.TruePredicates) {
      const PredicateInfo &Info = H.Sites.predicate(Pred);
      EXPECT_TRUE(Mask[Info.Site]);
      EXPECT_EQ(Count, Harness::countFor(A, Pred))
          << "seed " << Seed << " pred " << Pred;
    }
    // And the full run saw everything the masked run saw at retained
    // sites: counts there are equal, so any difference is masked-only.
    for (const auto &[Site, Count] : A.SiteObservations)
      if (Mask[Site])
        EXPECT_EQ(siteCount(B, Site), Count) << "seed " << Seed;
  }
}

TEST(CollectorTest, UninitializedComparandSkipsObservation) {
  // 'b' is declared after the assignment to 'a' executes on the first
  // pass... construct: inside a loop, a's assignment runs while b's slot
  // is stale from the previous iteration's block exit. The collector must
  // simply skip non-int comparands rather than crash.
  Harness H(R"(fn main() {
  int i = 0;
  while (i < 2) {
    int a = 1;
    a = i;
    int b = 2;
    i = i + b - 1;
  }
})");
  ReportCollector Collector(H.Sites, SamplingPlan::full(H.Sites.numSites()));
  RawReport Report = H.collect(Collector, 1);
  EXPECT_FALSE(Report.TruePredicates.empty());
}
