//===- tests/integration/EngineDifferentialTest.cpp - Engine equivalence --===//
//
// The incremental inverted-index engine and the dense bit-matrix engine
// must produce bit-identical AnalysisResults (selections, every score,
// affinity lists) to the reference rescan engine on real subject
// campaigns, for all three Section 5 discard policies. Synthetic
// differentials live in tests/core/AnalysisTest.cpp; this suite covers
// end-to-end reports from actual campaigns, whose observation patterns
// (sampling, overlapping bugs, observed-but-false predicates) are far
// messier.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <gtest/gtest.h>

#include <string>

using namespace sbi;

namespace {

CampaignResult smallCampaign(const Subject &Subj) {
  CampaignOptions Options;
  Options.NumRuns = 400;
  Options.TrainingRuns = 60;
  Options.Seed = 424242;
  return runCampaign(Subj, Options);
}

void expectEnginesAgree(const CampaignResult &Result) {
  for (DiscardPolicy Policy :
       {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
        DiscardPolicy::RelabelFailingRuns}) {
    AnalysisOptions Rescan;
    Rescan.Policy = Policy;
    Rescan.Engine = AnalysisEngine::Rescan;

    AnalysisResult A =
        CauseIsolator(Result.Sites, Result.Reports, Rescan).run();
    EXPECT_FALSE(A.Selected.empty())
        << discardPolicyName(Policy) << ": differential would be trivial";
    EXPECT_EQ(A.Trail.size(), A.Selected.size())
        << discardPolicyName(Policy);

    for (AnalysisEngine Engine :
         {AnalysisEngine::Incremental, AnalysisEngine::Bitset}) {
      AnalysisOptions Other = Rescan;
      Other.Engine = Engine;
      AnalysisResult B =
          CauseIsolator(Result.Sites, Result.Reports, Other).run();
      std::string What = std::string(discardPolicyName(Policy)) + "/" +
                         analysisEngineName(Engine);
      EXPECT_TRUE(bitIdentical(A, B)) << What;

      // The audit trail is part of the engine contract: same selections,
      // same scores, same run accounting at every iteration — so the
      // rendered trail must be byte-identical, not merely equivalent.
      EXPECT_EQ(renderAuditTrail(Result.Sites, A),
                renderAuditTrail(Result.Sites, B))
          << What;
    }
  }
}

} // namespace

TEST(EngineDifferentialTest, MossCampaignAcrossAllPolicies) {
  expectEnginesAgree(smallCampaign(mossSubject()));
}

TEST(EngineDifferentialTest, ExifCampaignAcrossAllPolicies) {
  expectEnginesAgree(smallCampaign(exifSubject()));
}
