//===- tests/integration/SubjectsTest.cpp - Subject-program validation ----===//
//
// These tests pin the properties the paper's studies depend on: golden
// builds never crash, bug trigger rates sit in the intended bands, bug 8
// never fires, bug 7 never causes a failure by itself, and crashes happen
// where the narrative says they do.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

#include "lang/Sema.h"
#include "runtime/Interp.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sbi;

namespace {

struct SubjectRuns {
  std::vector<RunOutcome> Buggy;
  std::vector<RunOutcome> Golden;
};

SubjectRuns exercise(const Subject &Subj, size_t Runs, uint64_t Seed) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Subj.Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  auto Golden = parseAndAnalyze(Subj.GoldenSource, Diags);
  EXPECT_TRUE(Golden != nullptr) << renderDiagnostics(Diags);

  SubjectRuns Result;
  Rng Seeder(Seed);
  for (size_t Run = 0; Run < Runs; ++Run) {
    Rng InputRng(Seeder.next());
    RunConfig Config;
    Config.Args = Subj.GenerateInput(InputRng);
    Config.OverrunPad = static_cast<size_t>(InputRng.nextBelow(8));
    Result.Buggy.push_back(runProgram(*Prog, Config));
    Result.Golden.push_back(runProgram(*Golden, Config));
  }
  return Result;
}

double failureRate(const std::vector<RunOutcome> &Outcomes) {
  size_t Failed = 0;
  for (const RunOutcome &Outcome : Outcomes)
    Failed += Outcome.failed() ? 1 : 0;
  return static_cast<double>(Failed) / static_cast<double>(Outcomes.size());
}

class SubjectParamTest : public ::testing::TestWithParam<const Subject *> {};

} // namespace

TEST_P(SubjectParamTest, SourcesCompile) {
  const Subject &Subj = *GetParam();
  std::vector<Diagnostic> Diags;
  EXPECT_NE(parseAndAnalyze(Subj.Source, Diags), nullptr)
      << renderDiagnostics(Diags);
  EXPECT_NE(parseAndAnalyze(Subj.GoldenSource, Diags), nullptr)
      << renderDiagnostics(Diags);
}

TEST_P(SubjectParamTest, GoldenBuildNeverFails) {
  const Subject &Subj = *GetParam();
  SubjectRuns Runs = exercise(Subj, 300, 0xABCD);
  for (size_t I = 0; I < Runs.Golden.size(); ++I)
    EXPECT_FALSE(Runs.Golden[I].failed())
        << Subj.Name << " golden run " << I << " trapped: "
        << trapKindName(Runs.Golden[I].Trap) << " "
        << Runs.Golden[I].TrapMessage;
}

TEST_P(SubjectParamTest, BuggyBuildFailsSometimesNotAlways) {
  const Subject &Subj = *GetParam();
  SubjectRuns Runs = exercise(Subj, 300, 0xBEEF);
  double Rate = failureRate(Runs.Buggy);
  EXPECT_GT(Rate, 0.02) << Subj.Name;
  EXPECT_LT(Rate, 0.90) << Subj.Name;
}

TEST_P(SubjectParamTest, EveryFailureHasATriggeredBug) {
  // Failures must come from seeded bugs, not incidental interpreter traps.
  const Subject &Subj = *GetParam();
  SubjectRuns Runs = exercise(Subj, 300, 0x1234);
  for (size_t I = 0; I < Runs.Buggy.size(); ++I)
    if (Runs.Buggy[I].crashed())
      EXPECT_FALSE(Runs.Buggy[I].BugsTriggered.empty())
          << Subj.Name << " run " << I << " crashed with "
          << trapKindName(Runs.Buggy[I].Trap) << " ("
          << Runs.Buggy[I].TrapMessage << ") but no __bug marker fired";
}

TEST_P(SubjectParamTest, BugIdsMatchSpecs) {
  const Subject &Subj = *GetParam();
  SubjectRuns Runs = exercise(Subj, 200, 0x777);
  std::vector<int> ValidIds;
  for (const BugSpec &Bug : Subj.Bugs)
    ValidIds.push_back(Bug.Id);
  for (const RunOutcome &Outcome : Runs.Buggy)
    for (int Bug : Outcome.BugsTriggered)
      EXPECT_NE(std::find(ValidIds.begin(), ValidIds.end(), Bug),
                ValidIds.end())
          << Subj.Name << " fired undeclared bug id " << Bug;
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, SubjectParamTest,
                         ::testing::ValuesIn(allSubjects()),
                         [](const auto &Info) { return Info.param->Name; });

// --- MOSS specifics -------------------------------------------------------

TEST(MossSubjectTest, BugEightNeverTriggers) {
  SubjectRuns Runs = exercise(mossSubject(), 400, 0x5555);
  for (const RunOutcome &Outcome : Runs.Buggy)
    for (int Bug : Outcome.BugsTriggered)
      EXPECT_NE(Bug, 8);
}

TEST(MossSubjectTest, BugSevenNeverCausesFailureAlone) {
  // The paper: bug 7's overrun never causes incorrect output or a crash in
  // any run; its failing runs always involve another bug.
  SubjectRuns Runs = exercise(mossSubject(), 400, 0x6666);
  for (size_t I = 0; I < Runs.Buggy.size(); ++I) {
    const RunOutcome &Outcome = Runs.Buggy[I];
    bool OnlyBugSeven = Outcome.BugsTriggered == std::vector<int>{7};
    if (!OnlyBugSeven)
      continue;
    bool OutputDiffers = Outcome.Output != Runs.Golden[I].Output;
    EXPECT_FALSE(Outcome.crashed()) << "run " << I;
    EXPECT_FALSE(OutputDiffers) << "run " << I;
  }
}

TEST(MossSubjectTest, BugSevenDoesTrigger) {
  SubjectRuns Runs = exercise(mossSubject(), 400, 0x6666);
  size_t Count = 0;
  for (const RunOutcome &Outcome : Runs.Buggy)
    for (int Bug : Outcome.BugsTriggered)
      Count += Bug == 7 ? 1 : 0;
  EXPECT_GT(Count, 10u);
}

TEST(MossSubjectTest, BugNineIsOutputOnly) {
  SubjectRuns Runs = exercise(mossSubject(), 500, 0x7777);
  size_t OutputOnlyFailures = 0;
  for (size_t I = 0; I < Runs.Buggy.size(); ++I) {
    const RunOutcome &Outcome = Runs.Buggy[I];
    bool HasBugNine =
        std::find(Outcome.BugsTriggered.begin(), Outcome.BugsTriggered.end(),
                  9) != Outcome.BugsTriggered.end();
    if (HasBugNine && !Outcome.crashed() &&
        Outcome.Output != Runs.Golden[I].Output)
      ++OutputOnlyFailures;
  }
  EXPECT_GT(OutputOnlyFailures, 3u)
      << "bug 9 must produce silent wrong output the oracle can catch";
}

TEST(MossSubjectTest, BugRatesSpreadOverOrders) {
  SubjectRuns Runs = exercise(mossSubject(), 600, 0x8888);
  std::vector<size_t> Counts(10, 0);
  for (const RunOutcome &Outcome : Runs.Buggy)
    for (int Bug : Outcome.BugsTriggered)
      if (Bug >= 1 && Bug <= 9)
        ++Counts[static_cast<size_t>(Bug)];
  // Bug 5 is the most common crashing bug; bug 2 the rarest nonzero one.
  EXPECT_GT(Counts[5], Counts[2] * 3);
}

// --- Per-subject crash-site narratives ------------------------------------

TEST(BcSubjectTest, CrashesFarFromCause) {
  SubjectRuns Runs = exercise(bcSubject(), 400, 0x9999);
  size_t Crashes = 0;
  for (const RunOutcome &Outcome : Runs.Buggy) {
    if (!Outcome.crashed())
      continue;
    ++Crashes;
    ASSERT_FALSE(Outcome.StackTrace.empty());
    // The crash is in the "library" walk, not in array_define.
    EXPECT_EQ(Outcome.StackTrace[0].find("array_define"), std::string::npos);
    EXPECT_NE(Outcome.StackTrace[0].find("__lib_block_walk"),
              std::string::npos);
  }
  EXPECT_GT(Crashes, 10u);
}

TEST(ExifSubjectTest, BugThreeCrashesInSavePath) {
  SubjectRuns Runs = exercise(exifSubject(), 3000, 0xAAAA);
  size_t SavePathCrashes = 0, OtherCrashes = 0;
  for (const RunOutcome &Outcome : Runs.Buggy) {
    bool HasBugThree =
        std::find(Outcome.BugsTriggered.begin(), Outcome.BugsTriggered.end(),
                  3) != Outcome.BugsTriggered.end();
    if (!HasBugThree || !Outcome.crashed())
      continue;
    ASSERT_FALSE(Outcome.StackTrace.empty());
    // Runs where ONLY bug 3 occurred must crash in the save path, far from
    // the loader; runs that also trip bug 1 or 2 may crash earlier.
    if (Outcome.BugsTriggered == std::vector<int>{3}) {
      ++SavePathCrashes;
      EXPECT_NE(Outcome.StackTrace[0].find("mnote_save"),
                std::string::npos)
          << Outcome.StackTrace[0];
    } else {
      ++OtherCrashes;
    }
  }
  EXPECT_GT(SavePathCrashes, 0u);
  (void)OtherCrashes;
}

TEST(ExifSubjectTest, BugRatesAreOrdered) {
  // Bug 1 is the common one; bug 3 is rare (two orders in the paper).
  SubjectRuns Runs = exercise(exifSubject(), 3000, 0xBBBB);
  std::vector<size_t> Counts(4, 0);
  for (const RunOutcome &Outcome : Runs.Buggy)
    for (int Bug : Outcome.BugsTriggered)
      if (Bug >= 1 && Bug <= 3)
        ++Counts[static_cast<size_t>(Bug)];
  EXPECT_GT(Counts[1], Counts[3] * 5);
  EXPECT_GT(Counts[3], 0u);
}

TEST(CCryptSubjectTest, FailuresAreNullDerefAtPrompt) {
  SubjectRuns Runs = exercise(ccryptSubject(), 300, 0xCCCC);
  for (const RunOutcome &Outcome : Runs.Buggy) {
    if (!Outcome.crashed())
      continue;
    EXPECT_EQ(Outcome.Trap, TrapKind::NullDeref);
    ASSERT_FALSE(Outcome.StackTrace.empty());
    EXPECT_NE(Outcome.StackTrace[0].find("main"), std::string::npos);
  }
}

TEST(RhythmboxSubjectTest, BothBugsOccur) {
  SubjectRuns Runs = exercise(rhythmboxSubject(), 400, 0xDDDD);
  size_t BugOne = 0, BugTwo = 0;
  for (const RunOutcome &Outcome : Runs.Buggy)
    for (int Bug : Outcome.BugsTriggered) {
      BugOne += Bug == 1 ? 1 : 0;
      BugTwo += Bug == 2 ? 1 : 0;
    }
  EXPECT_GT(BugOne, 10u);
  EXPECT_GT(BugTwo, 10u);
}

TEST(SubjectRegistryTest, FindSubjectByName) {
  EXPECT_EQ(findSubject("moss"), &mossSubject());
  EXPECT_EQ(findSubject("bc"), &bcSubject());
  EXPECT_EQ(findSubject("nonesuch"), nullptr);
  EXPECT_EQ(allSubjects().size(), 5u);
}

TEST(SubjectRegistryTest, TemplateExpansion) {
  EXPECT_EQ(expandTemplate("a ${X} c", {{"X", "b"}}), "a b c");
  EXPECT_EQ(expandTemplate("${A}${B}", {{"A", "1"}, {"B", "2"}}), "12");
  EXPECT_EQ(expandTemplate("no placeholders", {}), "no placeholders");
}
