//===- tests/integration/StaticPruneTest.cpp - Pruned campaign equivalence ===//
//
// The contract of --static-prune (sa/Prune.h): dropping statically pruned
// sites from instrumentation must leave the analysis outcome untouched.
// Three properties are checked end-to-end on real subjects:
//
//   1. Dynamic soundness — against a fully monitored, unpruned reference
//      campaign, every Unreachable site shows zero observations and every
//      ConstantOutcome site's counts match its static always-true mask in
//      every run (verifyPruneAgainstReports).
//   2. Ranking neutrality — a pruned campaign at the same seed yields
//      retained-predicate rankings bit-identical to the unpruned one, for
//      all three discard policies x all three analysis engines
//      (prunedRankingsMatch: everything except the audit trail's
//      surviving-candidate counts, which legitimately shrink).
//   3. Shard comparability — spilled SBI-CORPUS v2 shards from pruned and
//      unpruned campaigns carry identical dimensions, so corpora remain
//      mergeable and comparable; site ids are never renumbered.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "feedback/Corpus.h"
#include "harness/Campaign.h"
#include "sa/Verify.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

using namespace sbi;

namespace {

CampaignOptions baseOptions() {
  CampaignOptions Options;
  Options.NumRuns = 300;
  Options.TrainingRuns = 60;
  Options.Seed = 8891;
  return Options;
}

} // namespace

TEST(StaticPruneTest, PrunedSitesVerifyAgainstUnprunedReference) {
  // Full monitoring (no sampling) is the strongest reference: every reach
  // of every site is recorded, so a single stray observation of a pruned
  // site fails verification.
  for (const Subject *Subj : allSubjects()) {
    CampaignOptions Options = baseOptions();
    Options.NumRuns = 150;
    Options.Mode = SamplingMode::None;
    CampaignResult Reference = runCampaign(*Subj, Options);

    PruneResult Prune = computePrune(*Reference.Prog, Reference.Sites);
    PruneVerification Verified =
        verifyPruneAgainstReports(Prune, Reference.Sites, Reference.Reports);
    EXPECT_TRUE(Verified.Ok) << Subj->Name << ": " << Verified.FirstError;
    EXPECT_EQ(Verified.RunsChecked, Reference.Reports.size()) << Subj->Name;
  }
}

TEST(StaticPruneTest, RankingsBitIdenticalAcrossPoliciesAndEngines) {
  for (const Subject *Subj : {&mossSubject(), &ccryptSubject()}) {
    CampaignOptions Unpruned = baseOptions();
    CampaignResult Ref = runCampaign(*Subj, Unpruned);

    CampaignOptions Pruned = baseOptions();
    Pruned.StaticPrune = true;
    CampaignResult Cut = runCampaign(*Subj, Pruned);
    ASSERT_TRUE(Cut.StaticPruned);
    EXPECT_GT(Cut.Prune.numPruned(), 0u) << Subj->Name;
    ASSERT_EQ(Ref.Sites.numPredicates(), Cut.Sites.numPredicates());

    for (DiscardPolicy Policy :
         {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
          DiscardPolicy::RelabelFailingRuns}) {
      for (AnalysisEngine Engine :
           {AnalysisEngine::Rescan, AnalysisEngine::Incremental,
            AnalysisEngine::Bitset}) {
        AnalysisOptions Options;
        Options.Policy = Policy;
        Options.Engine = Engine;
        AnalysisResult A = CauseIsolator(Ref.Sites, Ref.Reports, Options).run();
        AnalysisResult B = CauseIsolator(Cut.Sites, Cut.Reports, Options).run();
        EXPECT_TRUE(prunedRankingsMatch(A, B))
            << Subj->Name << "/" << discardPolicyName(Policy) << "/"
            << analysisEngineName(Engine);
        EXPECT_FALSE(A.Selected.empty())
            << Subj->Name << ": trivial differential";
      }
    }
  }
}

TEST(StaticPruneTest, VmEngineAgreesUnderPruning) {
  // The VM honors pruning through compile-time opcode selection rather
  // than the collector mask alone; its pruned observation counts and run
  // labels must match the interpreter's bit for bit. (Stack-signature
  // *line* attribution differs between engines by long-standing
  // convention — see tests/vm/DifferentialTest.cpp — so only the frame
  // function names are compared, same as there.)
  CampaignOptions InterpOptions = baseOptions();
  InterpOptions.StaticPrune = true;
  CampaignResult Interp = runCampaign(mossSubject(), InterpOptions);

  CampaignOptions VmOptions = InterpOptions;
  VmOptions.Exec = Engine::VM;
  CampaignResult Vm = runCampaign(mossSubject(), VmOptions);

  ASSERT_EQ(Interp.Reports.size(), Vm.Reports.size());
  auto frameNames = [](const std::string &Signature) {
    std::string Names;
    bool Skip = false;
    for (char C : Signature) {
      if (C == '@')
        Skip = true;
      else if (C == '>')
        Skip = false;
      if (!Skip)
        Names += C;
    }
    return Names;
  };
  for (size_t Run = 0; Run < Interp.Reports.size(); ++Run) {
    const FeedbackReport &A = Interp.Reports[Run];
    const FeedbackReport &B = Vm.Reports[Run];
    EXPECT_EQ(A.Failed, B.Failed) << "run " << Run;
    EXPECT_EQ(A.Trap, B.Trap) << "run " << Run;
    EXPECT_EQ(A.ExitCode, B.ExitCode) << "run " << Run;
    EXPECT_EQ(A.BugMask, B.BugMask) << "run " << Run;
    EXPECT_EQ(frameNames(A.StackSignature), frameNames(B.StackSignature))
        << "run " << Run;
    EXPECT_EQ(A.Counts.SiteObservations, B.Counts.SiteObservations)
        << "run " << Run;
    EXPECT_EQ(A.Counts.TruePredicates, B.Counts.TruePredicates)
        << "run " << Run;
  }
}

TEST(StaticPruneTest, PrunedRunsNeverObservePrunedSites) {
  CampaignOptions Options = baseOptions();
  Options.StaticPrune = true;
  Options.Mode = SamplingMode::None;
  Options.NumRuns = 100;
  CampaignResult Result = runCampaign(mossSubject(), Options);
  ASSERT_TRUE(Result.StaticPruned);
  for (size_t Run = 0; Run < Result.Reports.size(); ++Run) {
    const FeedbackReport &Report = Result.Reports[Run];
    for (const auto &[Site, Count] : Report.Counts.SiteObservations)
      EXPECT_FALSE(Result.Prune.pruned(Site))
          << "run " << Run << " observed pruned site " << Site;
  }
}

TEST(StaticPruneTest, SpilledShardsStayDimensionCompatible) {
  namespace fs = std::filesystem;
  fs::path Base = fs::temp_directory_path() / "sbi_prune_shards";
  fs::remove_all(Base);
  auto spill = [&](bool Prune) {
    CampaignOptions Options = baseOptions();
    Options.NumRuns = 120;
    Options.StaticPrune = Prune;
    Options.SpillDir = (Base / (Prune ? "pruned" : "unpruned")).string();
    Options.SpillShardReports = 50;
    return runCampaign(mossSubject(), Options);
  };
  CampaignResult Unpruned = spill(false);
  CampaignResult Pruned = spill(true);
  EXPECT_EQ(Unpruned.SpilledReports, Pruned.SpilledReports);
  EXPECT_EQ(Unpruned.SpilledShards, Pruned.SpilledShards);

  auto headerOf = [](const std::string &Dir) {
    std::vector<std::string> Shards = listCorpusShards(Dir);
    EXPECT_FALSE(Shards.empty()) << Dir;
    CorpusReader Reader;
    std::string Error;
    EXPECT_TRUE(Reader.open(Shards.front(), Error)) << Error;
    return Reader.header();
  };
  CorpusShardHeader A = headerOf((Base / "unpruned").string());
  CorpusShardHeader B = headerOf((Base / "pruned").string());
  // Site ids are not renumbered under pruning, so the corpus dimensions —
  // what merge/analyze validate — are identical.
  EXPECT_EQ(A.NumSites, B.NumSites);
  EXPECT_EQ(A.NumPredicates, B.NumPredicates);
  fs::remove_all(Base);
}
