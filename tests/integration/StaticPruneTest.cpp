//===- tests/integration/StaticPruneTest.cpp - Pruned campaign equivalence ===//
//
// The contract of --static-prune (sa/Prune.h): dropping statically pruned
// sites from instrumentation must leave the analysis outcome untouched.
// Three properties are checked end-to-end on real subjects:
//
//   1. Dynamic soundness — against a fully monitored, unpruned reference
//      campaign, every Unreachable site shows zero observations and every
//      ConstantOutcome site's counts match its static always-true mask in
//      every run (verifyPruneAgainstReports).
//   2. Ranking neutrality — a pruned campaign at the same seed yields
//      retained-predicate rankings bit-identical to the unpruned one, for
//      all three discard policies x all three analysis engines
//      (prunedRankingsMatch: everything except the audit trail's
//      surviving-candidate counts, which legitimately shrink).
//   3. Shard comparability — spilled SBI-CORPUS v2 shards from pruned and
//      unpruned campaigns carry identical dimensions, so corpora remain
//      mergeable and comparable; site ids are never renumbered.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "feedback/Corpus.h"
#include "harness/Campaign.h"
#include "sa/Verify.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

using namespace sbi;

namespace {

CampaignOptions baseOptions() {
  CampaignOptions Options;
  Options.NumRuns = 300;
  Options.TrainingRuns = 60;
  Options.Seed = 8891;
  return Options;
}

/// Strips the @line suffixes from a stack signature, keeping only frame
/// function names. Stack-signature *line* attribution differs between
/// engines by long-standing convention — see tests/vm/DifferentialTest.cpp
/// — so equivalence checks compare names alone.
std::string frameNames(const std::string &Signature) {
  std::string Names;
  bool Skip = false;
  for (char C : Signature) {
    if (C == '@')
      Skip = true;
    else if (C == '>')
      Skip = false;
    if (!Skip)
      Names += C;
  }
  return Names;
}

/// The engine-equivalence contract for a pair of same-seed campaigns: run
/// labels, traps, exit codes, bug masks, frame names, and every observation
/// count identical, report for report.
void expectCampaignsEquivalent(const CampaignResult &A,
                               const CampaignResult &B,
                               const std::string &Label) {
  ASSERT_EQ(A.Reports.size(), B.Reports.size()) << Label;
  for (size_t Run = 0; Run < A.Reports.size(); ++Run) {
    const FeedbackReport &RA = A.Reports[Run];
    const FeedbackReport &RB = B.Reports[Run];
    EXPECT_EQ(RA.Failed, RB.Failed) << Label << " run " << Run;
    EXPECT_EQ(RA.Trap, RB.Trap) << Label << " run " << Run;
    EXPECT_EQ(RA.ExitCode, RB.ExitCode) << Label << " run " << Run;
    EXPECT_EQ(RA.BugMask, RB.BugMask) << Label << " run " << Run;
    EXPECT_EQ(frameNames(RA.StackSignature), frameNames(RB.StackSignature))
        << Label << " run " << Run;
    EXPECT_EQ(RA.Counts.SiteObservations, RB.Counts.SiteObservations)
        << Label << " run " << Run;
    EXPECT_EQ(RA.Counts.TruePredicates, RB.Counts.TruePredicates)
        << Label << " run " << Run;
  }
}

} // namespace

TEST(StaticPruneTest, PrunedSitesVerifyAgainstUnprunedReference) {
  // Full monitoring (no sampling) is the strongest reference: every reach
  // of every site is recorded, so a single stray observation of a pruned
  // site fails verification.
  for (const Subject *Subj : allSubjects()) {
    CampaignOptions Options = baseOptions();
    Options.NumRuns = 150;
    Options.Mode = SamplingMode::None;
    CampaignResult Reference = runCampaign(*Subj, Options);

    PruneResult Prune = computePrune(*Reference.Prog, Reference.Sites);
    PruneVerification Verified =
        verifyPruneAgainstReports(Prune, Reference.Sites, Reference.Reports);
    EXPECT_TRUE(Verified.Ok) << Subj->Name << ": " << Verified.FirstError;
    EXPECT_EQ(Verified.RunsChecked, Reference.Reports.size()) << Subj->Name;
  }
}

TEST(StaticPruneTest, RankingsBitIdenticalAcrossPoliciesAndEngines) {
  for (const Subject *Subj : {&mossSubject(), &ccryptSubject()}) {
    CampaignOptions Unpruned = baseOptions();
    CampaignResult Ref = runCampaign(*Subj, Unpruned);

    CampaignOptions Pruned = baseOptions();
    Pruned.StaticPrune = true;
    CampaignResult Cut = runCampaign(*Subj, Pruned);
    ASSERT_TRUE(Cut.StaticPruned);
    EXPECT_GT(Cut.Prune.numPruned(), 0u) << Subj->Name;
    ASSERT_EQ(Ref.Sites.numPredicates(), Cut.Sites.numPredicates());

    for (DiscardPolicy Policy :
         {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
          DiscardPolicy::RelabelFailingRuns}) {
      for (AnalysisEngine Engine :
           {AnalysisEngine::Rescan, AnalysisEngine::Incremental,
            AnalysisEngine::Bitset}) {
        AnalysisOptions Options;
        Options.Policy = Policy;
        Options.Engine = Engine;
        AnalysisResult A = CauseIsolator(Ref.Sites, Ref.Reports, Options).run();
        AnalysisResult B = CauseIsolator(Cut.Sites, Cut.Reports, Options).run();
        EXPECT_TRUE(prunedRankingsMatch(A, B))
            << Subj->Name << "/" << discardPolicyName(Policy) << "/"
            << analysisEngineName(Engine);
        EXPECT_FALSE(A.Selected.empty())
            << Subj->Name << ": trivial differential";
      }
    }
  }
}

TEST(StaticPruneTest, VmEngineAgreesUnderPruning) {
  // The VM honors pruning through compile-time opcode selection rather
  // than the collector mask alone; its pruned observation counts and run
  // labels must match the interpreter's bit for bit. (Stack-signature
  // *line* attribution differs between engines by long-standing
  // convention — see tests/vm/DifferentialTest.cpp — so only the frame
  // function names are compared, same as there.)
  CampaignOptions InterpOptions = baseOptions();
  InterpOptions.StaticPrune = true;
  CampaignResult Interp = runCampaign(mossSubject(), InterpOptions);

  CampaignOptions VmOptions = InterpOptions;
  VmOptions.Exec = Engine::VM;
  CampaignResult Vm = runCampaign(mossSubject(), VmOptions);

  expectCampaignsEquivalent(Interp, Vm, "moss/pruned");
}

TEST(EngineEquivalenceTest, ReportsIdenticalAcrossSubjectsRatesAndPruning) {
  // The full engine-equivalence matrix: every subject, sampling rates
  // {1, 1/100, 1/10000}, pruned and unpruned, interpreter vs. VM at the
  // same seed. The 1/10000 rate exercises the countdown fast path hardest
  // (almost every reach is a hoisted decrement); rate 1 bypasses it
  // entirely; 1/100 is the paper's default. Any divergence in the VM's
  // sampling hoisting, superinstruction fusion, or trap semantics shows up
  // as a report mismatch here.
  struct RateCase {
    SamplingMode Mode;
    double Rate;
    const char *Name;
  };
  const RateCase Rates[] = {
      {SamplingMode::None, 1.0, "full"},
      {SamplingMode::Uniform, 0.01, "uniform-1/100"},
      {SamplingMode::Uniform, 0.0001, "uniform-1/10000"},
  };
  for (const Subject *Subj : allSubjects()) {
    for (const RateCase &Rate : Rates) {
      for (bool Prune : {false, true}) {
        CampaignOptions Options = baseOptions();
        Options.NumRuns = 60;
        Options.Mode = Rate.Mode;
        Options.UniformRate = Rate.Rate;
        Options.StaticPrune = Prune;
        CampaignResult Interp = runCampaign(*Subj, Options);

        CampaignOptions VmOptions = Options;
        VmOptions.Exec = Engine::VM;
        CampaignResult Vm = runCampaign(*Subj, VmOptions);

        expectCampaignsEquivalent(
            Interp, Vm,
            std::string(Subj->Name) + "/" + Rate.Name +
                (Prune ? "/pruned" : "/unpruned"));
      }
    }
  }
}

TEST(StaticPruneTest, PrunedRunsNeverObservePrunedSites) {
  CampaignOptions Options = baseOptions();
  Options.StaticPrune = true;
  Options.Mode = SamplingMode::None;
  Options.NumRuns = 100;
  CampaignResult Result = runCampaign(mossSubject(), Options);
  ASSERT_TRUE(Result.StaticPruned);
  for (size_t Run = 0; Run < Result.Reports.size(); ++Run) {
    const FeedbackReport &Report = Result.Reports[Run];
    for (const auto &[Site, Count] : Report.Counts.SiteObservations)
      EXPECT_FALSE(Result.Prune.pruned(Site))
          << "run " << Run << " observed pruned site " << Site;
  }
}

TEST(StaticPruneTest, SpilledShardsStayDimensionCompatible) {
  namespace fs = std::filesystem;
  fs::path Base = fs::temp_directory_path() / "sbi_prune_shards";
  fs::remove_all(Base);
  auto spill = [&](bool Prune) {
    CampaignOptions Options = baseOptions();
    Options.NumRuns = 120;
    Options.StaticPrune = Prune;
    Options.SpillDir = (Base / (Prune ? "pruned" : "unpruned")).string();
    Options.SpillShardReports = 50;
    return runCampaign(mossSubject(), Options);
  };
  CampaignResult Unpruned = spill(false);
  CampaignResult Pruned = spill(true);
  EXPECT_EQ(Unpruned.SpilledReports, Pruned.SpilledReports);
  EXPECT_EQ(Unpruned.SpilledShards, Pruned.SpilledShards);

  auto headerOf = [](const std::string &Dir) {
    std::vector<std::string> Shards = listCorpusShards(Dir);
    EXPECT_FALSE(Shards.empty()) << Dir;
    CorpusReader Reader;
    std::string Error;
    EXPECT_TRUE(Reader.open(Shards.front(), Error)) << Error;
    return Reader.header();
  };
  CorpusShardHeader A = headerOf((Base / "unpruned").string());
  CorpusShardHeader B = headerOf((Base / "pruned").string());
  // Site ids are not renumbered under pruning, so the corpus dimensions —
  // what merge/analyze validate — are identical.
  EXPECT_EQ(A.NumSites, B.NumSites);
  EXPECT_EQ(A.NumPredicates, B.NumPredicates);
  fs::remove_all(Base);
}
