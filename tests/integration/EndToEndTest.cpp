//===- tests/integration/EndToEndTest.cpp - Full-pipeline validation ------===//
//
// End-to-end checks of the paper's headline claims on small campaigns:
// pruning shrinks the predicate space by orders of magnitude, elimination
// isolates the seeded bugs, the chosen predicates point at the right
// source locations, and sampled analysis agrees with unsampled analysis.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"
#include "logreg/LogReg.h"

#include <gtest/gtest.h>

#include <set>

using namespace sbi;

namespace {

CampaignResult campaign(const Subject &Subj, size_t Runs,
                        SamplingMode Mode = SamplingMode::Adaptive,
                        uint64_t Seed = 99) {
  CampaignOptions Options;
  Options.NumRuns = Runs;
  Options.TrainingRuns = 60;
  Options.Seed = Seed;
  Options.Mode = Mode;
  return runCampaign(Subj, Options);
}

/// The function name a predicate's site lives in.
std::string functionOf(const SiteTable &Sites, uint32_t Pred) {
  return Sites.site(Sites.predicate(Pred).Site).Function;
}

} // namespace

TEST(EndToEndTest, PruningRemovesTwoOrdersOfMagnitude) {
  CampaignResult Result = campaign(mossSubject(), 500);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  std::vector<uint32_t> Survivors = Isolator.prune();
  EXPECT_LT(Survivors.size() * 10, Result.Sites.numPredicates())
      << "the Increase test must remove at least 90% of predicates";
  EXPECT_GT(Survivors.size(), 0u);
}

TEST(EndToEndTest, CCryptPredictorPointsAtPromptPath) {
  CampaignResult Result = campaign(ccryptSubject(), 400);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  ASSERT_FALSE(Analysis.Selected.empty());
  std::string Function = functionOf(Result.Sites, Analysis.Selected[0].Pred);
  EXPECT_TRUE(Function == "prompt_response" || Function == "main")
      << "top predictor was in " << Function;
  // The top predictor covers (nearly) all failures.
  EXPECT_GE(Analysis.Selected[0].InitialScores.counts().F,
            Result.numFailing() * 9 / 10);
}

TEST(EndToEndTest, BcPredictorAtCauseNotCrashSite) {
  CampaignResult Result = campaign(bcSubject(), 500);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  ASSERT_FALSE(Analysis.Selected.empty());
  std::string Function = functionOf(Result.Sites, Analysis.Selected[0].Pred);
  EXPECT_TRUE(Function == "array_define" || Function == "run_stmt")
      << "predictor must name the overrun path, got " << Function;
}

TEST(EndToEndTest, ExifIsolatesThreeBugs) {
  CampaignResult Result = campaign(exifSubject(), 4000);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  // Each of the three bugs gets a predictor among the selections.
  for (int Bug : {1, 2, 3}) {
    bool Covered = false;
    for (const SelectedPredicate &Entry : Analysis.Selected)
      if (failingRunsWithPredAndBug(Result.Reports, Entry.Pred, Bug) > 0)
        Covered = true;
    EXPECT_TRUE(Covered) << "exif bug " << Bug;
  }
}

TEST(EndToEndTest, MossCoversEveryFailingBug) {
  CampaignResult Result = campaign(mossSubject(), 1200);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  for (const auto &Stats : Result.Bugs) {
    if (Stats.TriggeredAndFailed < 8)
      continue; // Too rare at this scale to demand coverage.
    bool Covered = false;
    for (const SelectedPredicate &Entry : Analysis.Selected)
      if (failingRunsWithPredAndBug(Result.Reports, Entry.Pred,
                                    Stats.BugId) > 0)
        Covered = true;
    EXPECT_TRUE(Covered) << "moss bug " << Stats.BugId << " with "
                         << Stats.TriggeredAndFailed << " failures";
  }
}

TEST(EndToEndTest, RhythmboxSeparatesTheTwoBugs) {
  CampaignResult Result = campaign(rhythmboxSubject(), 700);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  ASSERT_GE(Analysis.Selected.size(), 2u);
  // The two top predictors specialize: each dominated by a different bug.
  auto dominant = [&](uint32_t Pred) {
    size_t One = failingRunsWithPredAndBug(Result.Reports, Pred, 1);
    size_t Two = failingRunsWithPredAndBug(Result.Reports, Pred, 2);
    return One > Two ? 1 : 2;
  };
  EXPECT_NE(dominant(Analysis.Selected[0].Pred),
            dominant(Analysis.Selected[1].Pred));
}

TEST(EndToEndTest, SampledAgreesWithUnsampledOnTopPredictors) {
  // Section 4's validation: sampled results match unsampled results up to
  // logically equivalent predicates. Compare top selections at site
  // granularity.
  CampaignResult Full = campaign(exifSubject(), 2500, SamplingMode::None);
  CampaignResult Sampled =
      campaign(exifSubject(), 2500, SamplingMode::Adaptive);

  auto topSites = [](const CampaignResult &Result, size_t K) {
    CauseIsolator Isolator(Result.Sites, Result.Reports);
    AnalysisResult Analysis = Isolator.run();
    std::set<uint32_t> Sites;
    for (size_t I = 0; I < Analysis.Selected.size() && I < K; ++I)
      Sites.insert(
          Result.Sites.predicate(Analysis.Selected[I].Pred).Site);
    return Sites;
  };

  std::set<uint32_t> FullSites = topSites(Full, 3);
  std::set<uint32_t> SampledSites = topSites(Sampled, 3);
  size_t Common = 0;
  for (uint32_t Site : SampledSites)
    Common += FullSites.count(Site);
  EXPECT_GE(Common, 2u)
      << "sampled and unsampled analyses must largely agree";
}

TEST(EndToEndTest, EliminationBeatsLogRegAtBugSeparation) {
  // The Section 4.4 comparison, quantified: count distinct bugs dominated
  // by the top-5 picks of each method.
  CampaignResult Result = campaign(mossSubject(), 900);

  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();

  LogRegModel Model =
      trainForSparsity(Result.Reports, 40, {0.02, 0.01, 0.005});

  auto distinctDominantBugs = [&](const std::vector<uint32_t> &Preds) {
    std::set<int> Bugs;
    for (uint32_t Pred : Preds) {
      int Best = 0;
      size_t BestCount = 0;
      for (int Bug : {1, 2, 3, 4, 5, 6, 7, 9}) {
        size_t N = failingRunsWithPredAndBug(Result.Reports, Pred, Bug);
        if (N > BestCount) {
          BestCount = N;
          Best = Bug;
        }
      }
      if (Best != 0)
        Bugs.insert(Best);
    }
    return Bugs.size();
  };

  std::vector<uint32_t> EliminationTop, LogRegTop;
  for (size_t I = 0; I < Analysis.Selected.size() && I < 5; ++I)
    EliminationTop.push_back(Analysis.Selected[I].Pred);
  for (const auto &[Pred, Weight] : Model.topByMagnitude(5))
    LogRegTop.push_back(Pred);

  EXPECT_GE(distinctDominantBugs(EliminationTop),
            distinctDominantBugs(LogRegTop));
  EXPECT_GE(distinctDominantBugs(EliminationTop), 3u);
}

TEST(EndToEndTest, ReportsSurviveSerializationForAnalysis) {
  CampaignResult Result = campaign(ccryptSubject(), 300);
  std::string Text = Result.Reports.serialize();
  ReportSet Restored;
  ASSERT_TRUE(ReportSet::deserialize(Text, Restored));

  CauseIsolator Before(Result.Sites, Result.Reports);
  CauseIsolator After(Result.Sites, Restored);
  AnalysisResult A = Before.run();
  AnalysisResult B = After.run();
  ASSERT_EQ(A.Selected.size(), B.Selected.size());
  for (size_t I = 0; I < A.Selected.size(); ++I)
    EXPECT_EQ(A.Selected[I].Pred, B.Selected[I].Pred);
}
