//===- tests/integration/CorpusStreamTest.cpp - Streamed-corpus parity ----===//
//
// The SBI-CORPUS v2 streaming path must be a pure representation change:
//
//   * A spill-mode campaign must write the exact corpus bytes that
//     writeCorpus() produces from the equivalent in-memory campaign, for
//     any worker thread count (shard K holds runs [K*S, (K+1)*S) in run
//     order, independent of which thread produced them).
//
//   * Analysis over ingested RunProfiles must be bit-identical — every
//     selection, every score, the rendered audit trail and ranked tables —
//     to analysis over the materialized ReportSet, across all three
//     Section 5 discard policies and both aggregation engines.
//
// Together these close the loop: campaign -> shards on disk -> streamed
// ingestion -> analysis gives the same answer as the all-in-memory
// pipeline, which is what lets `sbi analyze --corpus=DIR` replace
// `sbi analyze --in=FILE` without changing any result.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "feedback/Corpus.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace sbi;

namespace {

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "sbi-corpus-stream-" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

CampaignOptions baseOptions() {
  CampaignOptions Options;
  Options.NumRuns = 300;
  Options.TrainingRuns = 60;
  Options.Seed = 20050612;
  return Options;
}

void expectSameCorpusBytes(const std::string &DirA, const std::string &DirB,
                           const std::string &What) {
  std::vector<std::string> A = listCorpusShards(DirA);
  std::vector<std::string> B = listCorpusShards(DirB);
  ASSERT_EQ(A.size(), B.size()) << What;
  ASSERT_FALSE(A.empty()) << What;
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(std::filesystem::path(A[I]).filename(),
              std::filesystem::path(B[I]).filename())
        << What;
    EXPECT_EQ(readFileBytes(A[I]), readFileBytes(B[I]))
        << What << ": shard " << I << " bytes differ";
  }
}

TEST(CorpusStreamTest, SpillModeWritesTheInMemoryCorpusForAnyThreadCount) {
  const Subject &Subj = ccryptSubject();

  // Reference: in-memory campaign, then convert the ReportSet to a corpus.
  CampaignResult InMemory = runCampaign(Subj, baseOptions());
  std::string RefDir = freshDir("reference");
  std::string Error;
  ASSERT_TRUE(
      writeCorpus(InMemory.Reports, RefDir, /*ReportsPerShard=*/64, Error))
      << Error;

  for (size_t Threads : {size_t(1), size_t(4)}) {
    CampaignOptions Options = baseOptions();
    Options.Threads = Threads;
    Options.SpillDir = freshDir("spill-t" + std::to_string(Threads));
    Options.SpillShardReports = 64;
    CampaignResult Spilled = runCampaign(Subj, Options);

    std::string What = "threads=" + std::to_string(Threads);
    // Reports never materialize in spill mode, but the accounting the
    // tables and summaries need must match the in-memory campaign.
    EXPECT_EQ(Spilled.Reports.size(), 0u) << What;
    EXPECT_EQ(Spilled.SpilledReports, InMemory.Reports.size()) << What;
    EXPECT_EQ(Spilled.SpilledShards, listCorpusShards(RefDir).size()) << What;
    EXPECT_EQ(Spilled.numFailing(), InMemory.Reports.numFailing()) << What;
    EXPECT_EQ(Spilled.numSuccessful(), InMemory.Reports.numSuccessful())
        << What;
    ASSERT_EQ(Spilled.Bugs.size(), InMemory.Bugs.size()) << What;
    for (size_t I = 0; I < Spilled.Bugs.size(); ++I) {
      EXPECT_EQ(Spilled.Bugs[I].BugId, InMemory.Bugs[I].BugId) << What;
      EXPECT_EQ(Spilled.Bugs[I].Triggered, InMemory.Bugs[I].Triggered)
          << What;
      EXPECT_EQ(Spilled.Bugs[I].TriggeredAndFailed,
                InMemory.Bugs[I].TriggeredAndFailed)
          << What;
    }
    expectSameCorpusBytes(RefDir, Options.SpillDir, What);
  }
}

TEST(CorpusStreamTest, StreamedAnalysisIsBitIdenticalAcrossPoliciesAndEngines) {
  CampaignResult Result = runCampaign(ccryptSubject(), baseOptions());
  std::string Dir = freshDir("analyze");
  std::string Error;
  ASSERT_TRUE(writeCorpus(Result.Reports, Dir, /*ReportsPerShard=*/50, Error))
      << Error;

  RunProfiles Streamed;
  ASSERT_TRUE(ingestCorpus(Dir, Streamed, /*Threads=*/3, Error)) << Error;
  ASSERT_EQ(Streamed.size(), Result.Reports.size());

  std::vector<int> BugIds;
  for (const CampaignResult::BugStats &Bug : Result.Bugs)
    BugIds.push_back(Bug.BugId);

  for (DiscardPolicy Policy :
       {DiscardPolicy::DiscardAllRuns, DiscardPolicy::DiscardFailingRuns,
        DiscardPolicy::RelabelFailingRuns}) {
    for (AnalysisEngine Engine :
         {AnalysisEngine::Rescan, AnalysisEngine::Incremental,
          AnalysisEngine::Bitset}) {
      AnalysisOptions Options;
      Options.Policy = Policy;
      Options.Engine = Engine;

      AnalysisResult FromSet =
          CauseIsolator(Result.Sites, Result.Reports, Options).run();
      AnalysisResult FromProfiles =
          CauseIsolator(Result.Sites, Streamed, Options).run();

      std::string What = std::string(discardPolicyName(Policy)) + "/" +
                         analysisEngineName(Engine);
      EXPECT_TRUE(bitIdentical(FromSet, FromProfiles)) << What;
      EXPECT_FALSE(FromSet.Selected.empty())
          << What << ": parity check would be trivial";
      EXPECT_EQ(renderAuditTrail(Result.Sites, FromSet),
                renderAuditTrail(Result.Sites, FromProfiles))
          << What;
      // The full Table 3-style rendering, bug columns included, must not
      // care which store backs it.
      EXPECT_EQ(renderSelectedList(Result.Sites, Result.Reports,
                                   FromSet.Selected, BugIds),
                renderSelectedList(Result.Sites, Streamed,
                                   FromProfiles.Selected, BugIds))
          << What;
    }
  }
}

TEST(CorpusStreamTest, SpilledCorpusAnalyzesLikeTheInMemoryCampaign) {
  // End to end through the spill path itself (not writeCorpus): campaign
  // spills shards, ingestion streams them back, analysis agrees with the
  // in-memory campaign's.
  const Subject &Subj = ccryptSubject();
  CampaignResult InMemory = runCampaign(Subj, baseOptions());

  CampaignOptions Options = baseOptions();
  Options.Threads = 2;
  Options.SpillDir = freshDir("spill-analyze");
  Options.SpillShardReports = 96;
  CampaignResult Spilled = runCampaign(Subj, Options);
  ASSERT_GT(Spilled.SpilledShards, 1u);

  RunProfiles Streamed;
  std::string Error;
  ASSERT_TRUE(ingestCorpus(Options.SpillDir, Streamed, /*Threads=*/2, Error))
      << Error;

  AnalysisResult FromSet =
      CauseIsolator(InMemory.Sites, InMemory.Reports).run();
  AnalysisResult FromCorpus = CauseIsolator(Spilled.Sites, Streamed).run();
  EXPECT_TRUE(bitIdentical(FromSet, FromCorpus));
  EXPECT_FALSE(FromSet.Selected.empty());
  EXPECT_EQ(renderAuditTrail(InMemory.Sites, FromSet),
            renderAuditTrail(Spilled.Sites, FromCorpus));
}

} // namespace
