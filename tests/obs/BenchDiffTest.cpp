//===- tests/obs/BenchDiffTest.cpp - Bench baseline comparator tests ------===//

#include "obs/BenchDiff.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace sbi;

namespace {

// A miniature BENCH_smoke.json: the shape the CI gate diffs.
const char *BaselineFixture = R"({
  "bench": "perf_analysis.smoke",
  "scales": [
    {
      "name": "smoke",
      "runs": 4000,
      "sites": 846,
      "total_bitset_ms": 3.854,
      "total_scalar_ms": 11.2,
      "decode_mb_per_sec": 420.5,
      "speedup": 2.9,
      "all_identical": true
    }
  ]
})";

BenchDiffResult diffOk(const std::string &Baseline,
                       const std::string &Current,
                       const BenchDiffOptions &Options) {
  BenchDiffResult R;
  std::string Error;
  EXPECT_TRUE(diffBenchJson(Baseline, Current, Options, R, Error)) << Error;
  return R;
}

const BenchMetricDiff *metricAt(const BenchDiffResult &R,
                                const std::string &Path) {
  for (const BenchMetricDiff &M : R.Metrics)
    if (M.Path == Path)
      return &M;
  return nullptr;
}

std::string withReplaced(const std::string &Text, const std::string &From,
                         const std::string &To) {
  std::string Out = Text;
  size_t Pos = Out.find(From);
  EXPECT_NE(Pos, std::string::npos) << From;
  Out.replace(Pos, From.size(), To);
  return Out;
}

TEST(BenchDiffTest, IdenticalFilesPass) {
  BenchDiffResult R = diffOk(BaselineFixture, BaselineFixture, {});
  EXPECT_FALSE(R.failed());
  EXPECT_EQ(R.NumRegressed, 0u);
  EXPECT_EQ(R.NumChanged, 0u);
  EXPECT_EQ(R.NumMissing, 0u);
  EXPECT_GT(R.NumOk, 0u);
}

TEST(BenchDiffTest, InjectedTwentyPercentSlowdownFails) {
  // The acceptance fixture: a 20% wall-clock regression must trip a 10%
  // threshold and fail the gate.
  std::string Current = withReplaced(BaselineFixture, "\"total_bitset_ms\": 3.854",
                                     "\"total_bitset_ms\": 4.6248");
  BenchDiffOptions Options;
  Options.DefaultThreshold = 0.1;
  BenchDiffResult R = diffOk(BaselineFixture, Current, Options);

  EXPECT_TRUE(R.failed());
  EXPECT_EQ(R.NumRegressed, 1u);
  const BenchMetricDiff *M = metricAt(R, "scales.0.total_bitset_ms");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Regressed);
  EXPECT_NEAR(M->RelDelta, 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(M->Threshold, 0.1);
}

TEST(BenchDiffTest, WithinThresholdIsOk) {
  std::string Current = withReplaced(BaselineFixture, "\"total_bitset_ms\": 3.854",
                                     "\"total_bitset_ms\": 4.0");
  BenchDiffOptions Options;
  Options.DefaultThreshold = 0.1;
  BenchDiffResult R = diffOk(BaselineFixture, Current, Options);
  EXPECT_FALSE(R.failed());
  const BenchMetricDiff *M = metricAt(R, "scales.0.total_bitset_ms");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Ok);
}

TEST(BenchDiffTest, HigherIsBetterDirectionForThroughput) {
  // decode_mb_per_sec dropping 20% is a regression; rising 20% is an
  // improvement, not a failure.
  BenchDiffOptions Options;
  Options.DefaultThreshold = 0.1;

  std::string Slower = withReplaced(
      BaselineFixture, "\"decode_mb_per_sec\": 420.5", "\"decode_mb_per_sec\": 336.4");
  BenchDiffResult R = diffOk(BaselineFixture, Slower, Options);
  const BenchMetricDiff *M = metricAt(R, "scales.0.decode_mb_per_sec");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Regressed);

  std::string Faster = withReplaced(
      BaselineFixture, "\"decode_mb_per_sec\": 420.5", "\"decode_mb_per_sec\": 504.6");
  R = diffOk(BaselineFixture, Faster, Options);
  M = metricAt(R, "scales.0.decode_mb_per_sec");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Improved);
  EXPECT_FALSE(R.failed());
}

TEST(BenchDiffTest, BoolAndCountMetricsAreExact) {
  // Correctness flag flipping true->false regresses regardless of
  // thresholds; a count changing at all is a Changed failure.
  std::string BrokenFlag = withReplaced(
      BaselineFixture, "\"all_identical\": true", "\"all_identical\": false");
  BenchDiffResult R = diffOk(BaselineFixture, BrokenFlag, {});
  const BenchMetricDiff *M = metricAt(R, "scales.0.all_identical");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Regressed);
  EXPECT_TRUE(R.failed());

  std::string DifferentSites =
      withReplaced(BaselineFixture, "\"sites\": 846", "\"sites\": 850");
  R = diffOk(BaselineFixture, DifferentSites, {});
  M = metricAt(R, "scales.0.sites");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Changed);
  EXPECT_TRUE(R.failed());
}

TEST(BenchDiffTest, MissingFailsAddedPasses) {
  std::string Without = withReplaced(BaselineFixture,
                                     "      \"speedup\": 2.9,\n", "");
  BenchDiffResult R = diffOk(BaselineFixture, Without, {});
  const BenchMetricDiff *M = metricAt(R, "scales.0.speedup");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Missing);
  EXPECT_TRUE(R.failed());

  // Reversed: baseline lacks the metric the current run added.
  R = diffOk(Without, BaselineFixture, {});
  M = metricAt(R, "scales.0.speedup");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Added);
  EXPECT_FALSE(R.failed());
}

TEST(BenchDiffTest, PerMetricRulesOverrideDefault) {
  std::string Current = withReplaced(BaselineFixture, "\"total_bitset_ms\": 3.854",
                                     "\"total_bitset_ms\": 4.6248");
  BenchDiffOptions Options;
  Options.DefaultThreshold = 0.05;
  Options.Rules.push_back({"total_bitset_ms", 0.5});
  BenchDiffResult R = diffOk(BaselineFixture, Current, Options);
  const BenchMetricDiff *M = metricAt(R, "scales.0.total_bitset_ms");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Verdict, BenchVerdict::Ok);
  EXPECT_DOUBLE_EQ(M->Threshold, 0.5);
  EXPECT_FALSE(R.failed());
}

TEST(BenchDiffTest, IgnoredPathsAreSkipped) {
  std::string Current = withReplaced(BaselineFixture, "\"total_scalar_ms\": 11.2",
                                     "\"total_scalar_ms\": 99.0");
  BenchDiffOptions Options;
  Options.Ignore.push_back("total_scalar_ms");
  BenchDiffResult R = diffOk(BaselineFixture, Current, Options);
  EXPECT_EQ(metricAt(R, "scales.0.total_scalar_ms"), nullptr);
  EXPECT_FALSE(R.failed());
}

TEST(BenchDiffTest, MalformedJsonIsAnError) {
  BenchDiffResult R;
  std::string Error;
  EXPECT_FALSE(diffBenchJson("{", BaselineFixture, {}, R, Error));
  EXPECT_FALSE(Error.empty());
  Error.clear();
  EXPECT_FALSE(diffBenchJson(BaselineFixture, "[unclosed", {}, R, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(BenchDiffTest, RendersParseableVerdicts) {
  std::string Current = withReplaced(BaselineFixture, "\"total_bitset_ms\": 3.854",
                                     "\"total_bitset_ms\": 4.6248");
  BenchDiffOptions Options;
  Options.DefaultThreshold = 0.1;
  BenchDiffResult R = diffOk(BaselineFixture, Current, Options);

  std::string Text = renderBenchDiff(R);
  EXPECT_NE(Text.find("total_bitset_ms"), std::string::npos);
  EXPECT_NE(Text.find("FAIL"), std::string::npos);

  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(renderBenchDiffJson(R), Doc, Error)) << Error;
  const json::Value *Metrics = Doc.find("metrics");
  ASSERT_NE(Metrics, nullptr);
  ASSERT_TRUE(Metrics->isArray());
  bool SawRegression = false;
  for (const json::Value &M : Metrics->array())
    SawRegression |= M.stringOr("verdict", "") == "REGRESSED" &&
                     M.stringOr("path", "") == "scales.0.total_bitset_ms";
  EXPECT_TRUE(SawRegression);
}

} // namespace
