//===- tests/obs/TraceSummaryTest.cpp - Trace self-time summary tests -----===//

#include "obs/TraceSummary.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <string>

using namespace sbi;

namespace {

std::string spanEvent(const char *Name, int Tid, double TsUs, double DurUs) {
  return format("{\"name\": \"%s\", \"cat\": \"test\", \"ph\": \"X\", "
                "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                Name, Tid, TsUs, DurUs);
}

std::string traceDoc(const std::string &Events, uint64_t Dropped = 0) {
  return format("{\"displayTimeUnit\": \"ms\", \"otherData\": "
                "{\"recorded_events\": 0, \"dropped_events\": %llu}, "
                "\"traceEvents\": [%s]}",
                static_cast<unsigned long long>(Dropped), Events.c_str());
}

TraceSummary summarizeOk(const std::string &Json) {
  TraceSummary S;
  std::string Error;
  EXPECT_TRUE(summarizeTrace(Json, S, Error)) << Error;
  return S;
}

const SpanStat *statFor(const TraceSummary &S, const std::string &Name) {
  for (const SpanStat &Stat : S.Spans)
    if (Stat.Name == Name)
      return &Stat;
  return nullptr;
}

TEST(TraceSummaryTest, SelfTimeSubtractsNestedSpans) {
  // outer [0, 1000us] contains a [100, 300] and b [500, 200]; a contains
  // leaf [150, 100]. Self(outer) = 1000 - 300 - 200 = 500us.
  std::string Events = spanEvent("outer", 0, 0, 1000) + ",\n" +
                       spanEvent("a", 0, 100, 300) + ",\n" +
                       spanEvent("leaf", 0, 150, 100) + ",\n" +
                       spanEvent("b", 0, 500, 200);
  TraceSummary S = summarizeOk(traceDoc(Events));

  EXPECT_EQ(S.SpanEvents, 4u);
  const SpanStat *Outer = statFor(S, "outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->TotalNs, 1000000000ull / 1000);
  EXPECT_EQ(Outer->SelfNs, 500000000ull / 1000);
  const SpanStat *A = statFor(S, "a");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->TotalNs, 300000u);
  EXPECT_EQ(A->SelfNs, 200000u); // 300 - leaf's 100
  const SpanStat *Leaf = statFor(S, "leaf");
  ASSERT_NE(Leaf, nullptr);
  EXPECT_EQ(Leaf->SelfNs, Leaf->TotalNs);
  EXPECT_EQ(S.WallNs, 1000000u); // 1000us in ns
}

TEST(TraceSummaryTest, SortedBySelfTimeDescending) {
  std::string Events = spanEvent("small", 0, 0, 10) + ",\n" +
                       spanEvent("big", 0, 100, 500) + ",\n" +
                       spanEvent("mid", 0, 700, 50);
  TraceSummary S = summarizeOk(traceDoc(Events));
  ASSERT_EQ(S.Spans.size(), 3u);
  EXPECT_EQ(S.Spans[0].Name, "big");
  EXPECT_EQ(S.Spans[1].Name, "mid");
  EXPECT_EQ(S.Spans[2].Name, "small");
}

TEST(TraceSummaryTest, ThreadsAggregateIndependently) {
  // Same name on two threads; nesting is per-thread, so the tid-1 span
  // does not steal self-time from the tid-0 span it overlaps.
  std::string Events = spanEvent("work", 0, 0, 400) + ",\n" +
                       spanEvent("work", 1, 100, 400) + ",\n" +
                       spanEvent("inner", 1, 200, 100);
  TraceSummary S = summarizeOk(traceDoc(Events));
  const SpanStat *Work = statFor(S, "work");
  ASSERT_NE(Work, nullptr);
  EXPECT_EQ(Work->Count, 2u);
  EXPECT_EQ(Work->TotalNs, 800000u);
  EXPECT_EQ(Work->SelfNs, 700000u); // only tid 1 loses inner's 100us
}

TEST(TraceSummaryTest, InstantAndMetadataEventsCounted) {
  std::string Events =
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"sbi\"}},\n" +
      spanEvent("span", 0, 0, 100) +
      ",\n{\"name\": \"tick\", \"cat\": \"test\", \"ph\": \"i\", "
      "\"pid\": 1, \"tid\": 0, \"ts\": 50.000, \"s\": \"t\"}";
  TraceSummary S = summarizeOk(traceDoc(Events, /*Dropped=*/3));
  EXPECT_EQ(S.SpanEvents, 1u);
  EXPECT_EQ(S.InstantEvents, 1u);
  EXPECT_EQ(S.DroppedEvents, 3u);
}

TEST(TraceSummaryTest, RenderersIncludeEveryRow) {
  std::string Events =
      spanEvent("alpha", 0, 0, 300) + ",\n" + spanEvent("beta", 0, 400, 100);
  TraceSummary S = summarizeOk(traceDoc(Events));

  std::string Table = renderTraceSummary(S, 0);
  EXPECT_NE(Table.find("alpha"), std::string::npos);
  EXPECT_NE(Table.find("beta"), std::string::npos);

  // TopN limits the table but the trailer still reports totals.
  std::string Top1 = renderTraceSummary(S, 1);
  EXPECT_NE(Top1.find("alpha"), std::string::npos);
  EXPECT_EQ(Top1.find("beta"), std::string::npos);

  std::string JsonText = renderTraceSummaryJson(S, 0);
  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(JsonText, Doc, Error)) << Error;
  const json::Value *Spans = Doc.find("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_TRUE(Spans->isArray());
  EXPECT_EQ(Spans->array().size(), 2u);
  EXPECT_EQ(Spans->array()[0].stringOr("name", ""), "alpha");
}

TEST(TraceSummaryTest, MalformedInputsAreErrors) {
  TraceSummary S;
  std::string Error;
  EXPECT_FALSE(summarizeTrace("not json", S, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(summarizeTrace("{\"noTraceEvents\": 1}", S, Error));
  EXPECT_FALSE(summarizeTrace("[1, 2, 3]", S, Error));
}

} // namespace
