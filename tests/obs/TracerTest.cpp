//===- tests/obs/TracerTest.cpp - Span tracer tests -----------------------===//

#include "obs/TraceSink.h"
#include "obs/Tracer.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace sbi;

namespace {

/// Every test runs against the process-wide tracer, so restore the
/// disabled-and-empty state on the way out.
class TracerTest : public ::testing::Test {
protected:
  void SetUp() override {
    Tracer::setEnabled(false);
    Tracer::instance().setBufferCapacity(1 << 16);
    Tracer::instance().reset();
  }
  void TearDown() override {
    Tracer::setEnabled(false);
    Tracer::instance().setBufferCapacity(1 << 16);
    Tracer::instance().reset();
  }
};

json::Value parseTrace(const std::string &Text) {
  json::Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, V, Error)) << Error;
  return V;
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  {
    ScopedSpan Span("noop", "test");
    Span.arg("x", 1);
    Tracer::instance().instant("tick", "test");
  }
  EXPECT_EQ(Tracer::instance().recordedTotal(), 0u);
  EXPECT_EQ(Tracer::instance().droppedTotal(), 0u);
  EXPECT_TRUE(Tracer::instance().buffers().empty());
}

TEST_F(TracerTest, SpanRoundTripsThroughJson) {
  Tracer::setEnabled(true);
  {
    ScopedSpan Outer("outer", "test");
    Outer.arg("runs", 7);
    Outer.arg("shard", 3);
    { ScopedSpan Inner("inner", "test"); }
    Tracer::instance().instant("tick", "test");
  }
  Tracer::setEnabled(false);

  EXPECT_EQ(Tracer::instance().recordedTotal(), 3u);
  json::Value Doc = parseTrace(traceToJson(Tracer::instance()));

  const json::Value *Other = Doc.find("otherData");
  ASSERT_NE(Other, nullptr);
  EXPECT_DOUBLE_EQ(Other->numberOr("recorded_events", -1), 3.0);
  EXPECT_DOUBLE_EQ(Other->numberOr("dropped_events", -1), 0.0);

  const json::Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  const json::Value *OuterEv = nullptr, *InnerEv = nullptr, *Tick = nullptr;
  for (const json::Value &Ev : Events->array()) {
    std::string Name = Ev.stringOr("name", "");
    if (Name == "outer")
      OuterEv = &Ev;
    else if (Name == "inner")
      InnerEv = &Ev;
    else if (Name == "tick")
      Tick = &Ev;
  }
  ASSERT_NE(OuterEv, nullptr);
  ASSERT_NE(InnerEv, nullptr);
  ASSERT_NE(Tick, nullptr);

  EXPECT_EQ(OuterEv->stringOr("ph", ""), "X");
  EXPECT_EQ(OuterEv->stringOr("cat", ""), "test");
  const json::Value *Args = OuterEv->find("args");
  ASSERT_NE(Args, nullptr);
  EXPECT_DOUBLE_EQ(Args->numberOr("runs", -1), 7.0);
  EXPECT_DOUBLE_EQ(Args->numberOr("shard", -1), 3.0);

  // The inner span nests inside the outer one on the same timeline.
  double OuterTs = OuterEv->numberOr("ts", -1);
  double OuterDur = OuterEv->numberOr("dur", -1);
  double InnerTs = InnerEv->numberOr("ts", -1);
  double InnerDur = InnerEv->numberOr("dur", -1);
  EXPECT_LE(OuterTs, InnerTs);
  EXPECT_LE(InnerTs + InnerDur, OuterTs + OuterDur + 0.001);

  EXPECT_EQ(Tick->stringOr("ph", ""), "i");
  EXPECT_DOUBLE_EQ(Tick->numberOr("dur", -1), -1.0); // instants have no dur
}

TEST_F(TracerTest, OverflowDropsAreCounted) {
  Tracer::instance().setBufferCapacity(4);
  Tracer::instance().reset();
  Tracer::setEnabled(true);
  for (int I = 0; I < 10; ++I)
    ScopedSpan Span("tiny", "test");
  Tracer::setEnabled(false);

  EXPECT_EQ(Tracer::instance().recordedTotal(), 4u);
  EXPECT_EQ(Tracer::instance().droppedTotal(), 6u);

  json::Value Doc = parseTrace(traceToJson(Tracer::instance()));
  const json::Value *Other = Doc.find("otherData");
  ASSERT_NE(Other, nullptr);
  EXPECT_DOUBLE_EQ(Other->numberOr("recorded_events", -1), 4.0);
  EXPECT_DOUBLE_EQ(Other->numberOr("dropped_events", -1), 6.0);
}

TEST_F(TracerTest, FlushIsDeterministic) {
  Tracer::setEnabled(true);
  std::vector<std::thread> Workers;
  for (int T = 0; T < 4; ++T) {
    Workers.emplace_back([T] {
      for (int I = 0; I < 50; ++I) {
        ScopedSpan Span("work", "test");
        Span.arg("worker", static_cast<uint64_t>(T));
      }
    });
  }
  for (std::thread &W : Workers)
    W.join();
  Tracer::setEnabled(false);

  std::string First = traceToJson(Tracer::instance());
  std::string Second = traceToJson(Tracer::instance());
  EXPECT_EQ(First, Second);

  json::Value Doc = parseTrace(First);
  const json::Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  // 4 workers x 50 spans, plus process + per-thread metadata events.
  size_t Spans = 0;
  double PrevTs = -1.0;
  for (const json::Value &Ev : Events->array()) {
    if (Ev.stringOr("ph", "") != "X")
      continue;
    ++Spans;
    double Ts = Ev.numberOr("ts", -1);
    EXPECT_GE(Ts, PrevTs); // sorted by start time
    PrevTs = Ts;
  }
  EXPECT_EQ(Spans, 200u);
}

TEST_F(TracerTest, ConcurrentRecordingIsClean) {
  // Exercised under TSan in CI: concurrent producers on distinct buffers
  // plus a reader snapshotting mid-recording must be race-free.
  Tracer::setEnabled(true);
  std::vector<std::thread> Workers;
  for (int T = 0; T < 4; ++T) {
    Workers.emplace_back([] {
      for (int I = 0; I < 500; ++I) {
        ScopedSpan Span("spin", "test");
        Span.arg("n", 1);
      }
    });
  }
  for (int I = 0; I < 20; ++I) {
    std::string Json = traceToJson(Tracer::instance());
    EXPECT_FALSE(Json.empty());
  }
  for (std::thread &W : Workers)
    W.join();
  Tracer::setEnabled(false);
  EXPECT_EQ(Tracer::instance().recordedTotal(), 2000u);
}

TEST_F(TracerTest, ResetDiscardsBuffersAndReacquires) {
  Tracer::setEnabled(true);
  { ScopedSpan Span("before", "test"); }
  EXPECT_EQ(Tracer::instance().recordedTotal(), 1u);

  Tracer::instance().reset();
  EXPECT_EQ(Tracer::instance().recordedTotal(), 0u);
  EXPECT_TRUE(Tracer::instance().buffers().empty());

  // The same thread gets a fresh buffer after the epoch bump.
  { ScopedSpan Span("after", "test"); }
  Tracer::setEnabled(false);
  EXPECT_EQ(Tracer::instance().recordedTotal(), 1u);
  json::Value Doc = parseTrace(traceToJson(Tracer::instance()));
  const json::Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  bool SawAfter = false, SawBefore = false;
  for (const json::Value &Ev : Events->array()) {
    SawAfter |= Ev.stringOr("name", "") == "after";
    SawBefore |= Ev.stringOr("name", "") == "before";
  }
  EXPECT_TRUE(SawAfter);
  EXPECT_FALSE(SawBefore);
}

} // namespace
