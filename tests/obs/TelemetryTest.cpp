//===- tests/obs/TelemetryTest.cpp - Observability layer tests ------------===//
//
// Covers the telemetry subsystem: log2 histogram bucketing at the edges,
// nested phase scopes, counter thread-safety, deterministic and
// well-formed JSON emission, and the double-registration abort that keeps
// two layers from silently aliasing one metric.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Phase.h"
#include "obs/Telemetry.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <thread>
#include <vector>

using namespace sbi;

// --- Histogram bucketing ---------------------------------------------------

TEST(HistogramTest, BucketIndexEdges) {
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex((1ull << 63) - 1), 63u);
  EXPECT_EQ(Histogram::bucketIndex(1ull << 63), 64u);
  EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), 64u);
}

TEST(HistogramTest, BucketFloorsInvertBucketIndex) {
  EXPECT_EQ(Histogram::bucketFloor(0), 0u);
  EXPECT_EQ(Histogram::bucketFloor(1), 1u);
  EXPECT_EQ(Histogram::bucketFloor(2), 2u);
  EXPECT_EQ(Histogram::bucketFloor(3), 4u);
  EXPECT_EQ(Histogram::bucketFloor(64), 1ull << 63);
  // Every bucket's floor maps back into that bucket.
  for (size_t I = 0; I < Histogram::NumBuckets; ++I)
    EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketFloor(I)), I) << I;
}

TEST(HistogramTest, RecordsExtremeValues) {
  MetricsRegistry Registry;
  Histogram &H = Registry.registerHistogram("h");
  H.record(0);
  H.record(1);
  H.record(UINT64_MAX);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), UINT64_MAX);
  // Sum wraps mod 2^64 by design: 0 + 1 + (2^64 - 1) == 0.
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(64), 1u);
  for (size_t I = 2; I < 64; ++I)
    EXPECT_EQ(H.bucketCount(I), 0u) << I;
}

TEST(HistogramTest, EmptyHistogramHasSentinelExtremes) {
  MetricsRegistry Registry;
  Histogram &H = Registry.registerHistogram("h");
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), UINT64_MAX);
  EXPECT_EQ(H.max(), 0u);
}

// --- Phase scopes ----------------------------------------------------------

TEST(PhaseTest, NestedScopesComposePaths) {
  MetricsRegistry Registry;
  {
    ScopedPhase Outer("outer", &Registry);
    {
      ScopedPhase Inner("inner", &Registry);
      ScopedPhase Innermost("leaf", &Registry);
    }
    { ScopedPhase Inner("inner", &Registry); }
  }
  EXPECT_EQ(Registry.phase("outer").Count, 1u);
  EXPECT_EQ(Registry.phase("outer/inner").Count, 2u);
  EXPECT_EQ(Registry.phase("outer/inner/leaf").Count, 1u);
  // A parent's accumulated time includes all of its children's.
  EXPECT_GE(Registry.phase("outer").TotalNanos,
            Registry.phase("outer/inner").TotalNanos);
  EXPECT_GE(Registry.phase("outer/inner").TotalNanos,
            Registry.phase("outer/inner/leaf").TotalNanos);
  // Unknown paths read as zero.
  EXPECT_EQ(Registry.phase("nonesuch").Count, 0u);
  EXPECT_EQ(Registry.phase("nonesuch").TotalNanos, 0u);
}

TEST(PhaseTest, DisabledScopeRecordsNothingAndStaysOffThePath) {
  MetricsRegistry Registry;
  {
    // A disabled (null-registry) outer scope must not distort the path of
    // an enabled scope nested inside it.
    ScopedPhase Disabled("ghost", nullptr);
    ScopedPhase Enabled("real", &Registry);
  }
  EXPECT_EQ(Registry.phase("real").Count, 1u);
  EXPECT_EQ(Registry.phase("ghost").Count, 0u);
  EXPECT_EQ(Registry.phase("ghost/real").Count, 0u);
}

TEST(PhaseTest, DefaultConstructorIsNoOpWhileTelemetryOff) {
  ASSERT_FALSE(Telemetry::enabled());
  { ScopedPhase Off("telemetry_test_unused_phase"); }
  EXPECT_EQ(Telemetry::metrics().phase("telemetry_test_unused_phase").Count,
            0u);
}

// --- Counters and gauges ---------------------------------------------------

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  MetricsRegistry Registry;
  Counter &C = Registry.registerCounter("c");
  constexpr int NumThreads = 8;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(NumThreads) * PerThread);
}

TEST(GaugeTest, LastWriteWins) {
  MetricsRegistry Registry;
  Gauge &G = Registry.registerGauge("g");
  G.set(1.5);
  G.set(-2.25);
  EXPECT_EQ(G.value(), -2.25);
}

// --- JSON emission ---------------------------------------------------------

namespace {

/// A minimal JSON validator: accepts exactly the subset toJson() emits
/// (objects, arrays, strings with escapes, numbers, true/false). Returns
/// true iff the whole input is one well-formed value.
class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : Text(Text) {}

  bool valid() {
    skipSpace();
    if (!value())
      return false;
    skipSpace();
    return Pos == Text.size();
  }

private:
  bool value() {
    if (Pos >= Text.size())
      return false;
    switch (Text[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipSpace();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (!string())
        return false;
      skipSpace();
      if (peek() != ':')
        return false;
      ++Pos;
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipSpace();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (!value())
        return false;
      skipSpace();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // Raw control characters must be escaped.
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos];
        if (E == 'u') {
          for (int I = 1; I <= 4; ++I)
            if (Pos + I >= Text.size() ||
                !std::isxdigit(static_cast<unsigned char>(Text[Pos + I])))
              return false;
          Pos += 4;
        } else if (E != '"' && E != '\\' && E != '/' && E != 'b' &&
                   E != 'f' && E != 'n' && E != 'r' && E != 't') {
          return false;
        }
      }
      ++Pos;
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *Word) {
    for (const char *P = Word; *P; ++P, ++Pos)
      if (Pos >= Text.size() || Text[Pos] != *P)
        return false;
    return true;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

TEST(MetricsJsonTest, EmptyRegistryIsWellFormed) {
  MetricsRegistry Registry;
  std::string Json = Registry.toJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"phases\""), std::string::npos);
}

TEST(MetricsJsonTest, PopulatedRegistryIsWellFormed) {
  MetricsRegistry Registry;
  Registry.registerCounter("runs").add(42);
  Registry.registerGauge("rate").set(0.125);
  Registry.registerGauge("negative").set(-3.5);
  Histogram &H = Registry.registerHistogram("steps");
  H.record(0);
  H.record(7);
  H.record(UINT64_MAX);
  Registry.registerHistogram("empty_hist");
  Registry.recordPhase("campaign", 1'500'000);
  Registry.recordPhase("campaign/run_loop", 1'000'000);
  std::string Json = Registry.toJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"runs\": 42"), std::string::npos) << Json;
  EXPECT_NE(Json.find("campaign/run_loop"), std::string::npos);
}

TEST(MetricsJsonTest, EscapesHostileLabelText) {
  MetricsRegistry Registry;
  Registry.registerLabel("mode").set(
      std::string("quo\"te back\\slash new\nline tab\t ctrl\x01") +
      std::string(1, '\0') + "end");
  std::string Json = Registry.toJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\\\""), std::string::npos);
  EXPECT_NE(Json.find("\\\\"), std::string::npos);
  EXPECT_NE(Json.find("\\n"), std::string::npos);
  EXPECT_NE(Json.find("\\t"), std::string::npos);
  EXPECT_NE(Json.find("\\u0001"), std::string::npos);
  EXPECT_NE(Json.find("\\u0000"), std::string::npos);
}

TEST(MetricsJsonTest, MatchesDocumentedSchema) {
  // DESIGN.md §9 documents the --metrics-out document shape; this test is
  // the schema's executable form. Top level: exactly the five sections, in
  // order. Phases are {"count", "total_ms"}; counters are non-negative
  // integers; gauges are doubles; labels are strings; histograms are
  // {"count", "sum"[, "min", "max"], "buckets": [{"ge", "count"}...]} with
  // min/max present iff count > 0 and only non-empty buckets listed.
  MetricsRegistry Registry;
  Registry.registerCounter("runs.total").add(42);
  Registry.registerGauge("trace.events_recorded").set(1190);
  Registry.registerLabel("subject").set("moss");
  Histogram &H = Registry.registerHistogram("report.bytes");
  H.record(3);
  H.record(900);
  Registry.registerHistogram("empty_hist");
  Registry.recordPhase("campaign", 1'500'000);
  Registry.recordPhase("campaign/run_loop", 1'000'000);

  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(Registry.toJson(), Doc, Error)) << Error;
  ASSERT_TRUE(Doc.isObject());

  ASSERT_EQ(Doc.members().size(), 5u);
  EXPECT_EQ(Doc.members()[0].first, "phases");
  EXPECT_EQ(Doc.members()[1].first, "counters");
  EXPECT_EQ(Doc.members()[2].first, "gauges");
  EXPECT_EQ(Doc.members()[3].first, "labels");
  EXPECT_EQ(Doc.members()[4].first, "histograms");

  const json::Value &Phases = Doc.members()[0].second;
  ASSERT_TRUE(Phases.isObject());
  for (const json::Member &M : Phases.members()) {
    ASSERT_EQ(M.second.members().size(), 2u) << M.first;
    const json::Value *Count = M.second.find("count");
    ASSERT_NE(Count, nullptr);
    EXPECT_TRUE(Count->isInteger());
    const json::Value *TotalMs = M.second.find("total_ms");
    ASSERT_NE(TotalMs, nullptr);
    EXPECT_TRUE(TotalMs->isNumber());
  }
  ASSERT_NE(Phases.find("campaign/run_loop"), nullptr);
  EXPECT_EQ(Phases.find("campaign/run_loop")->find("count")->asInteger(), 1);

  const json::Value &Counters = Doc.members()[1].second;
  ASSERT_TRUE(Counters.isObject());
  for (const json::Member &M : Counters.members()) {
    EXPECT_TRUE(M.second.isInteger()) << M.first;
    EXPECT_GE(M.second.asInteger(), 0) << M.first;
  }
  ASSERT_NE(Counters.find("runs.total"), nullptr);
  EXPECT_EQ(Counters.find("runs.total")->asInteger(), 42);

  const json::Value &Gauges = Doc.members()[2].second;
  ASSERT_TRUE(Gauges.isObject());
  for (const json::Member &M : Gauges.members())
    EXPECT_TRUE(M.second.isNumber()) << M.first;
  ASSERT_NE(Gauges.find("trace.events_recorded"), nullptr);
  EXPECT_DOUBLE_EQ(Gauges.find("trace.events_recorded")->asNumber(), 1190.0);

  const json::Value &Labels = Doc.members()[3].second;
  ASSERT_TRUE(Labels.isObject());
  for (const json::Member &M : Labels.members())
    EXPECT_TRUE(M.second.isString()) << M.first;
  ASSERT_NE(Labels.find("subject"), nullptr);
  EXPECT_EQ(Labels.find("subject")->asString(), "moss");

  const json::Value &Histograms = Doc.members()[4].second;
  ASSERT_TRUE(Histograms.isObject());
  for (const json::Member &M : Histograms.members()) {
    const json::Value &Hist = M.second;
    ASSERT_TRUE(Hist.isObject()) << M.first;
    const json::Value *Count = Hist.find("count");
    ASSERT_NE(Count, nullptr);
    ASSERT_TRUE(Count->isInteger());
    ASSERT_NE(Hist.find("sum"), nullptr);
    bool Populated = Count->asInteger() > 0;
    EXPECT_EQ(Hist.find("min") != nullptr, Populated) << M.first;
    EXPECT_EQ(Hist.find("max") != nullptr, Populated) << M.first;
    const json::Value *Buckets = Hist.find("buckets");
    ASSERT_NE(Buckets, nullptr);
    ASSERT_TRUE(Buckets->isArray());
    int64_t BucketSum = 0;
    for (const json::Value &B : Buckets->array()) {
      ASSERT_TRUE(B.find("ge") && B.find("ge")->isInteger());
      ASSERT_TRUE(B.find("count") && B.find("count")->isInteger());
      EXPECT_GT(B.find("count")->asInteger(), 0); // empty buckets elided
      BucketSum += B.find("count")->asInteger();
    }
    EXPECT_EQ(BucketSum, Count->asInteger()) << M.first;
  }
  const json::Value *Bytes = Histograms.find("report.bytes");
  ASSERT_NE(Bytes, nullptr);
  EXPECT_EQ(Bytes->find("count")->asInteger(), 2);
  EXPECT_EQ(Bytes->find("min")->asInteger(), 3);
  EXPECT_EQ(Bytes->find("max")->asInteger(), 900);
}

TEST(MetricsJsonTest, OutputIsDeterministicAndNameSorted) {
  MetricsRegistry Registry;
  Registry.registerCounter("zebra");
  Registry.registerCounter("aardvark");
  std::string First = Registry.toJson();
  EXPECT_EQ(First, Registry.toJson());
  EXPECT_LT(First.find("aardvark"), First.find("zebra"));
}

// --- Registration discipline -----------------------------------------------

TEST(MetricsRegistryDeathTest, DuplicateRegistrationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry Registry;
  Registry.registerCounter("dup");
  EXPECT_DEATH(Registry.registerCounter("dup"), "registered twice");
  // The name is taken across instrument kinds, too: a gauge may not alias
  // an existing counter.
  EXPECT_DEATH(Registry.registerGauge("dup"), "registered twice");
}

TEST(MetricsRegistryTest, FindReturnsNullForMissingOrMistypedNames) {
  MetricsRegistry Registry;
  Counter &C = Registry.registerCounter("only.counter");
  EXPECT_EQ(Registry.findCounter("only.counter"), &C);
  EXPECT_EQ(Registry.findCounter("nonesuch"), nullptr);
  EXPECT_EQ(Registry.findGauge("only.counter"), nullptr);
  EXPECT_EQ(Registry.findLabel("only.counter"), nullptr);
  EXPECT_EQ(Registry.findHistogram("only.counter"), nullptr);
}

// --- Telemetry switch ------------------------------------------------------

TEST(TelemetryTest, SwitchTogglesProcessWide) {
  ASSERT_FALSE(Telemetry::enabled());
  Telemetry::setEnabled(true);
  EXPECT_TRUE(Telemetry::enabled());
  Telemetry::setEnabled(false);
  EXPECT_FALSE(Telemetry::enabled());
}
