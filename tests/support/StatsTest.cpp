//===- tests/support/StatsTest.cpp - Statistics unit tests ----------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace sbi;

TEST(ProportionTest, ValueAndVariance) {
  Proportion P{30, 100};
  EXPECT_DOUBLE_EQ(P.value(), 0.3);
  EXPECT_NEAR(P.variance(), 0.3 * 0.7 / 100.0, 1e-12);
}

TEST(ProportionTest, ZeroTrials) {
  Proportion P{0, 0};
  EXPECT_DOUBLE_EQ(P.value(), 0.0);
  EXPECT_DOUBLE_EQ(P.variance(), 0.0);
}

TEST(ProportionTest, DegenerateProportionsHaveZeroVariance) {
  EXPECT_DOUBLE_EQ((Proportion{0, 50}).variance(), 0.0);
  EXPECT_DOUBLE_EQ((Proportion{50, 50}).variance(), 0.0);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(normalCdf(3.0), 0.99865, 1e-4);
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normalQuantile(0.975), 1.959963984540054, 1e-6);
  EXPECT_NEAR(normalQuantile(0.025), -1.959963984540054, 1e-6);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double P : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999})
    EXPECT_NEAR(normalCdf(normalQuantile(P)), P, 1e-7) << "P = " << P;
}

TEST(NormalTest, Z95MatchesQuantile) {
  EXPECT_NEAR(Z95, normalQuantile(0.975), 1e-6);
}

TEST(TwoProportionZTest, PositiveWhenFirstLarger) {
  Proportion Pf{80, 100};
  Proportion Ps{20, 100};
  EXPECT_GT(twoProportionZ(Pf, Ps), 0.0);
  EXPECT_LT(twoProportionZ(Ps, Pf), 0.0);
}

TEST(TwoProportionZTest, ZeroWhenEqual) {
  Proportion P{50, 100};
  EXPECT_DOUBLE_EQ(twoProportionZ(P, P), 0.0);
}

TEST(TwoProportionZTest, ZeroVarianceGuard) {
  Proportion A{0, 0};
  Proportion B{0, 0};
  EXPECT_DOUBLE_EQ(twoProportionZ(A, B), 0.0);
}

TEST(TwoProportionZTest, GrowsWithSampleSize) {
  Proportion SmallF{8, 10}, SmallS{2, 10};
  Proportion BigF{800, 1000}, BigS{200, 1000};
  EXPECT_GT(twoProportionZ(BigF, BigS), twoProportionZ(SmallF, SmallS));
}

TEST(DifferenceIntervalTest, CenterAndWidth) {
  Proportion A{90, 100};
  Proportion B{10, 100};
  ScoreInterval Interval = differenceInterval(A, B);
  EXPECT_NEAR(Interval.Value, 0.8, 1e-12);
  double Expected = Z95 * std::sqrt(A.variance() + B.variance());
  EXPECT_NEAR(Interval.HalfWidth, Expected, 1e-12);
  EXPECT_NEAR(Interval.lowerBound(), 0.8 - Expected, 1e-12);
  EXPECT_NEAR(Interval.upperBound(), 0.8 + Expected, 1e-12);
}

TEST(DifferenceIntervalTest, FewObservationsWidenInterval) {
  ScoreInterval Few = differenceInterval({3, 4}, {1, 4});
  ScoreInterval Many = differenceInterval({300, 400}, {100, 400});
  EXPECT_NEAR(Few.Value, Many.Value, 1e-12);
  EXPECT_GT(Few.HalfWidth, Many.HalfWidth * 5);
}

TEST(HarmonicMeanIntervalTest, ExactHarmonicMean) {
  ScoreInterval H = harmonicMeanInterval(0.5, 0.0, 0.5, 0.0);
  EXPECT_NEAR(H.Value, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(H.HalfWidth, 0.0);
}

TEST(HarmonicMeanIntervalTest, AsymmetricComponents) {
  ScoreInterval H = harmonicMeanInterval(1.0, 0.0, 1.0 / 3.0, 0.0);
  EXPECT_NEAR(H.Value, 0.5, 1e-12);
}

TEST(HarmonicMeanIntervalTest, DegenerateInputsYieldZero) {
  EXPECT_DOUBLE_EQ(harmonicMeanInterval(0.0, 0.1, 0.5, 0.1).Value, 0.0);
  EXPECT_DOUBLE_EQ(harmonicMeanInterval(0.5, 0.1, -1.0, 0.1).Value, 0.0);
}

TEST(HarmonicMeanIntervalTest, VarianceWidensInterval) {
  ScoreInterval Tight = harmonicMeanInterval(0.6, 0.001, 0.6, 0.001);
  ScoreInterval Wide = harmonicMeanInterval(0.6, 0.01, 0.6, 0.01);
  EXPECT_GT(Wide.HalfWidth, Tight.HalfWidth);
}

TEST(HarmonicMeanIntervalTest, DominatedByThSmallerComponent) {
  // The harmonic mean is at most twice the smaller component.
  ScoreInterval H = harmonicMeanInterval(0.01, 0.0, 1.0, 0.0);
  EXPECT_LE(H.Value, 0.02);
  EXPECT_GT(H.Value, 0.01);
}

TEST(SafeLogTest, ClampsAtZero) {
  EXPECT_TRUE(std::isfinite(safeLog(0.0)));
  EXPECT_TRUE(std::isfinite(safeLog(-5.0)));
  EXPECT_NEAR(safeLog(1.0), 0.0, 1e-12);
  EXPECT_NEAR(safeLog(std::exp(1.0)), 1.0, 1e-12);
}

TEST(NormalTest, QuantileDomainGuardSurvivesEveryBuildType) {
  // The guard is explicit code, not an assert: the default RelWithDebInfo
  // build (and the CI Release job) defines NDEBUG, so these must hold with
  // asserts compiled out. P outside (0, 1) takes the quantile's true
  // limits instead of feeding log(0) or log(negative) into the tail
  // approximation.
  EXPECT_EQ(normalQuantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normalQuantile(1.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(normalQuantile(-0.25), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normalQuantile(1.5), std::numeric_limits<double>::infinity());
  EXPECT_EQ(normalQuantile(-std::numeric_limits<double>::infinity()),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normalQuantile(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(normalQuantile(std::nan(""))));

  // Interior values stay finite right up to the edges of the domain.
  EXPECT_TRUE(std::isfinite(normalQuantile(1e-300)));
  EXPECT_TRUE(std::isfinite(normalQuantile(1.0 - 1e-16)));
  EXPECT_LT(normalQuantile(1e-300), normalQuantile(0.5));
}
