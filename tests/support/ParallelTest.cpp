//===- tests/support/ParallelTest.cpp - Worker-thread helper tests --------===//

#include "support/Parallel.h"

#include <gtest/gtest.h>

using namespace sbi;

TEST(ParallelTest, HardwareThreadCountIsNeverZero) {
  // std::thread::hardware_concurrency() is allowed to return 0; the
  // wrapper must clamp so "one worker per hardware thread" never means
  // zero workers.
  EXPECT_GE(hardwareThreadCount(), 1u);
}

TEST(ParallelTest, ResolveThreadCountHonorsExplicitRequests) {
  EXPECT_EQ(resolveThreadCount(3, 100), 3u);
  EXPECT_EQ(resolveThreadCount(1, 100), 1u);
}

TEST(ParallelTest, ResolveThreadCountCapsAtUsefulWork) {
  EXPECT_EQ(resolveThreadCount(16, 4), 4u);
  // Even with no work items the resolved count stays positive so loops
  // structured as "spawn N workers" remain well-formed.
  EXPECT_EQ(resolveThreadCount(16, 0), 1u);
  EXPECT_GE(resolveThreadCount(0, 0), 1u);
}

TEST(ParallelTest, ZeroMeansHardwareThreads) {
  EXPECT_EQ(resolveThreadCount(0, 1u << 20), hardwareThreadCount());
}
