//===- tests/support/ThermometerTest.cpp - Thermometer unit tests ---------===//

#include "support/Thermometer.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

size_t countChar(const std::string &S, char C) {
  size_t N = 0;
  for (char X : S)
    N += X == C ? 1 : 0;
  return N;
}

} // namespace

TEST(ThermometerTest, FixedTotalWidth) {
  ThermometerSpec Spec;
  Spec.RunsObservedTrue = 100;
  std::string Bar = renderThermometer(Spec, 20, 1000);
  EXPECT_EQ(Bar.size(), 22u); // 20 cells + brackets.
  EXPECT_EQ(Bar.front(), '[');
  EXPECT_EQ(Bar.back(), ']');
}

TEST(ThermometerTest, ZeroRunsIsEmpty) {
  ThermometerSpec Spec;
  Spec.RunsObservedTrue = 0;
  std::string Bar = renderThermometer(Spec, 20, 1000);
  EXPECT_EQ(countChar(Bar, '#') + countChar(Bar, '=') + countChar(Bar, '~'),
            0u);
}

TEST(ThermometerTest, LengthIsLogScaled) {
  ThermometerSpec Small, Large;
  Small.RunsObservedTrue = 10;
  Small.IncreaseLowerBound = 1.0;
  Large.RunsObservedTrue = 1000;
  Large.IncreaseLowerBound = 1.0;
  std::string SmallBar = renderThermometer(Small, 20, 1000);
  std::string LargeBar = renderThermometer(Large, 20, 1000);
  size_t SmallLen = countChar(SmallBar, '=');
  size_t LargeLen = countChar(LargeBar, '=');
  EXPECT_LT(SmallLen, LargeLen);
  // Log scaling: 100x more runs is far less than 100x longer.
  EXPECT_GT(SmallLen * 4, LargeLen);
}

TEST(ThermometerTest, MaxRunsFillsBar) {
  ThermometerSpec Spec;
  Spec.RunsObservedTrue = 500;
  Spec.Context = 1.0;
  std::string Bar = renderThermometer(Spec, 24, 500);
  EXPECT_EQ(countChar(Bar, '#'), 24u);
}

TEST(ThermometerTest, BandsInOrder) {
  ThermometerSpec Spec;
  Spec.Context = 0.25;
  Spec.IncreaseLowerBound = 0.25;
  Spec.ConfidenceWidth = 0.25;
  Spec.RunsObservedTrue = 1000;
  std::string Bar = renderThermometer(Spec, 20, 1000);
  // Order must be # then = then ~ then spaces.
  size_t LastHash = Bar.rfind('#');
  size_t FirstEq = Bar.find('=');
  size_t LastEq = Bar.rfind('=');
  size_t FirstTilde = Bar.find('~');
  ASSERT_NE(LastHash, std::string::npos);
  ASSERT_NE(FirstEq, std::string::npos);
  ASSERT_NE(FirstTilde, std::string::npos);
  EXPECT_LT(LastHash, FirstEq);
  EXPECT_LT(LastEq, FirstTilde);
}

TEST(ThermometerTest, BandsNeverOverflow) {
  ThermometerSpec Spec;
  Spec.Context = 0.9;
  Spec.IncreaseLowerBound = 0.9; // Deliberately inconsistent inputs.
  Spec.ConfidenceWidth = 0.9;
  Spec.RunsObservedTrue = 1000;
  std::string Bar = renderThermometer(Spec, 20, 1000);
  EXPECT_EQ(Bar.size(), 22u);
  EXPECT_LE(countChar(Bar, '#') + countChar(Bar, '=') + countChar(Bar, '~'),
            20u);
}

TEST(ThermometerTest, TinyButNonzeroShowsSomething) {
  ThermometerSpec Spec;
  Spec.RunsObservedTrue = 1;
  Spec.Context = 1.0;
  std::string Bar = renderThermometer(Spec, 20, 100000);
  EXPECT_GE(countChar(Bar, '#'), 1u);
}
