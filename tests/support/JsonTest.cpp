//===- tests/support/JsonTest.cpp - JSON parser tests ---------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace sbi;
using json::Value;

namespace {

Value parseOk(const std::string &Text) {
  Value V;
  std::string Error;
  EXPECT_TRUE(json::parse(Text, V, Error)) << Text << ": " << Error;
  return V;
}

std::string parseErr(const std::string &Text) {
  Value V;
  std::string Error;
  EXPECT_FALSE(json::parse(Text, V, Error)) << Text;
  return Error;
}

TEST(JsonTest, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool());
  EXPECT_DOUBLE_EQ(parseOk("3.5").asNumber(), 3.5);
  EXPECT_DOUBLE_EQ(parseOk("-0.25e2").asNumber(), -25.0);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
}

TEST(JsonTest, IntegerExactness) {
  Value V = parseOk("42");
  EXPECT_TRUE(V.isInteger());
  EXPECT_EQ(V.asInteger(), 42);
  EXPECT_TRUE(parseOk("-9223372036854775808").isInteger());
  // A fractional literal is a number but not an exact integer.
  EXPECT_FALSE(parseOk("42.5").isInteger());
  // 2^64 overflows int64 and degrades to double.
  Value Big = parseOk("18446744073709551616");
  EXPECT_TRUE(Big.isNumber());
  EXPECT_FALSE(Big.isInteger());
}

TEST(JsonTest, ObjectsPreserveOrderAndLookup) {
  Value V = parseOk("{\"b\": 1, \"a\": 2, \"c\": {\"d\": [1, 2, 3]}}");
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.members()[0].first, "b");
  EXPECT_EQ(V.members()[1].first, "a");
  ASSERT_NE(V.find("a"), nullptr);
  EXPECT_EQ(V.find("a")->asInteger(), 2);
  EXPECT_EQ(V.find("missing"), nullptr);
  const Value *D = (*V.find("c")).find("d");
  ASSERT_NE(D, nullptr);
  ASSERT_TRUE(D->isArray());
  EXPECT_EQ(D->array().size(), 3u);
  EXPECT_EQ(D->array()[2].asInteger(), 3);
}

TEST(JsonTest, TypedGetters) {
  Value V = parseOk("{\"n\": 2.5, \"s\": \"x\"}");
  EXPECT_DOUBLE_EQ(V.numberOr("n", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(V.numberOr("s", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(V.numberOr("missing", 7.0), 7.0);
  EXPECT_EQ(V.stringOr("s", ""), "x");
  EXPECT_EQ(V.stringOr("n", "d"), "d");
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(parseOk("\"a\\n\\t\\\"\\\\b\"").asString(), "a\n\t\"\\b");
  EXPECT_EQ(parseOk("\"\\u0041\"").asString(), "A");
  // Surrogate pair for U+1F600 decodes to 4-byte UTF-8.
  EXPECT_EQ(parseOk("\"\\ud83d\\ude00\"").asString(), "\xf0\x9f\x98\x80");
  EXPECT_NE(parseErr("\"\\ud83d\""), "");
  EXPECT_NE(parseErr("\"\\ude00\""), "");
}

TEST(JsonTest, MalformedInputs) {
  EXPECT_NE(parseErr(""), "");
  EXPECT_NE(parseErr("{"), "");
  EXPECT_NE(parseErr("[1, 2"), "");
  EXPECT_NE(parseErr("{\"a\" 1}"), "");
  EXPECT_NE(parseErr("{\"a\": 1,}"), "");
  EXPECT_NE(parseErr("01"), "");
  EXPECT_NE(parseErr("1 2"), "");
  EXPECT_NE(parseErr("tru"), "");
  EXPECT_NE(parseErr("\"unterminated"), "");
  // Error messages carry the offset.
  EXPECT_NE(parseErr("[1, x]").find("offset"), std::string::npos);
}

TEST(JsonTest, DeepNestingIsBounded) {
  std::string Deep(200, '[');
  Deep += std::string(200, ']');
  EXPECT_NE(parseErr(Deep), "");
  std::string Ok(100, '[');
  Ok += "1";
  Ok += std::string(100, ']');
  parseOk(Ok);
}

} // namespace
