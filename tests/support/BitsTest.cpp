//===- tests/support/BitsTest.cpp - Word-primitive shims ------------------===//

#include "support/Bits.h"

#include <gtest/gtest.h>

using namespace sbi;

TEST(BitsTest, PopcountZeroSingleBitAllOnes) {
  EXPECT_EQ(popcount64(0), 0);
  for (int Bit = 0; Bit < 64; ++Bit)
    EXPECT_EQ(popcount64(uint64_t(1) << Bit), 1) << "bit " << Bit;
  EXPECT_EQ(popcount64(~uint64_t(0)), 64);
}

TEST(BitsTest, PopcountMixedPatterns) {
  EXPECT_EQ(popcount64(0x5555555555555555ull), 32);
  EXPECT_EQ(popcount64(0xAAAAAAAAAAAAAAAAull), 32);
  EXPECT_EQ(popcount64(0x8000000000000001ull), 2);
  EXPECT_EQ(popcount64(0x00FF00FF00FF00FFull), 32);
}

TEST(BitsTest, CountrZeroZeroSingleBitAllOnes) {
  // Zero is defined (64, like std::countr_zero), unlike the raw builtin.
  EXPECT_EQ(countr_zero64(0), 64);
  for (int Bit = 0; Bit < 64; ++Bit)
    EXPECT_EQ(countr_zero64(uint64_t(1) << Bit), Bit) << "bit " << Bit;
  EXPECT_EQ(countr_zero64(~uint64_t(0)), 0);
}

TEST(BitsTest, CountrZeroIgnoresHigherBits) {
  EXPECT_EQ(countr_zero64(0b1100), 2);
  EXPECT_EQ(countr_zero64(0x8000000000000010ull), 4);
}

TEST(BitsTest, PopcountWordsSpans) {
  const uint64_t Words[] = {0, 1, ~uint64_t(0), 0x5555555555555555ull};
  EXPECT_EQ(popcountWords(Words, 0), 0u);
  EXPECT_EQ(popcountWords(Words, 1), 0u);
  EXPECT_EQ(popcountWords(Words, 4), 0u + 1 + 64 + 32);
}

TEST(BitsTest, AndPopcountMatchesManualIntersection) {
  const uint64_t A[] = {~uint64_t(0), 0xF0F0ull, 0};
  const uint64_t B[] = {0x0101ull, 0xFF00ull, ~uint64_t(0)};
  // Word-wise: popcount(0x0101) + popcount(0xF000) + popcount(0).
  EXPECT_EQ(andPopcount(A, B, 3), 2u + 4u + 0u);
  EXPECT_EQ(andPopcount(A, B, 0), 0u);
}
