//===- tests/support/RandomTest.cpp - Rng unit tests ----------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace sbi;

TEST(RandomTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Same, 3);
}

TEST(RandomTest, ReseedRestartsStream) {
  Rng A(7);
  std::vector<uint64_t> First;
  for (int I = 0; I < 16; ++I)
    First.push_back(A.next());
  A.reseed(7);
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(A.next(), First[static_cast<size_t>(I)]);
}

TEST(RandomTest, NextBelowStaysInBounds) {
  Rng R(3);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RandomTest, NextBelowOneIsAlwaysZero) {
  Rng R(5);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(RandomTest, NextBelowIsRoughlyUniform) {
  Rng R(11);
  constexpr uint64_t Buckets = 10;
  constexpr int Draws = 100000;
  std::vector<int> Counts(Buckets, 0);
  for (int I = 0; I < Draws; ++I)
    ++Counts[R.nextBelow(Buckets)];
  for (int Count : Counts) {
    EXPECT_GT(Count, Draws / static_cast<int>(Buckets) * 9 / 10);
    EXPECT_LT(Count, Draws / static_cast<int>(Buckets) * 11 / 10);
  }
}

TEST(RandomTest, NextInRangeCoversEndpoints) {
  Rng R(13);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 5000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomTest, NextInRangeSingleton) {
  Rng R(17);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(R.nextInRange(9, 9), 9);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng R(19);
  double Sum = 0;
  for (int I = 0; I < 10000; ++I) {
    double V = R.nextDouble();
    ASSERT_GE(V, 0.0);
    ASSERT_LT(V, 1.0);
    Sum += V;
  }
  EXPECT_NEAR(Sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliMatchesRate) {
  Rng R(23);
  for (double P : {0.01, 0.25, 0.5, 0.9}) {
    int Hits = 0;
    constexpr int Draws = 50000;
    for (int I = 0; I < Draws; ++I)
      Hits += R.nextBernoulli(P) ? 1 : 0;
    double Rate = static_cast<double>(Hits) / Draws;
    EXPECT_NEAR(Rate, P, 0.02) << "P = " << P;
  }
}

TEST(RandomTest, BernoulliDegenerateRates) {
  Rng R(29);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.nextBernoulli(0.0));
    EXPECT_TRUE(R.nextBernoulli(1.0));
    EXPECT_FALSE(R.nextBernoulli(-1.0));
    EXPECT_TRUE(R.nextBernoulli(2.0));
  }
}

TEST(RandomTest, GeometricSkipMeanMatchesRate) {
  // E[skip] = (1 - p) / p for the number of failures before a success.
  Rng R(31);
  for (double P : {0.5, 0.1, 0.01}) {
    double Sum = 0;
    constexpr int Draws = 20000;
    for (int I = 0; I < Draws; ++I)
      Sum += static_cast<double>(R.nextGeometricSkip(P));
    double Mean = Sum / Draws;
    double Expected = (1.0 - P) / P;
    EXPECT_NEAR(Mean, Expected, Expected * 0.1 + 0.05) << "P = " << P;
  }
}

TEST(RandomTest, GeometricSkipDegenerate) {
  Rng R(37);
  EXPECT_EQ(R.nextGeometricSkip(1.0), 0u);
  EXPECT_EQ(R.nextGeometricSkip(1.5), 0u);
  EXPECT_EQ(R.nextGeometricSkip(0.0), UINT64_MAX);
}

TEST(RandomTest, ShuffleIsAPermutation) {
  Rng R(41);
  std::vector<int> Items = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> Shuffled = Items;
  R.shuffle(Shuffled);
  std::vector<int> Sorted = Shuffled;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted, Items);
}

TEST(RandomTest, ShuffleActuallyMoves) {
  Rng R(43);
  std::vector<int> Items(100);
  for (int I = 0; I < 100; ++I)
    Items[static_cast<size_t>(I)] = I;
  std::vector<int> Shuffled = Items;
  R.shuffle(Shuffled);
  EXPECT_NE(Shuffled, Items);
}

TEST(RandomTest, SplitProducesIndependentStream) {
  Rng A(47);
  Rng B = A.split();
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next() ? 1 : 0;
  EXPECT_LT(Same, 3);
}
