//===- tests/support/StringUtilsTest.cpp - String helper unit tests -------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace sbi;

TEST(FormatTest, BasicSubstitution) {
  EXPECT_EQ(format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format("%s!", "hello"), "hello!");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(FormatTest, EmptyAndLong) {
  EXPECT_EQ(format("%s", ""), "");
  std::string Long(5000, 'x');
  EXPECT_EQ(format("%s", Long.c_str()), Long);
}

TEST(SplitTest, Basic) {
  auto Pieces = splitString("a,b,c", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
  EXPECT_EQ(Pieces[2], "c");
}

TEST(SplitTest, AdjacentSeparators) {
  auto Pieces = splitString("a,,b", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[1], "");
}

TEST(SplitTest, NoSeparator) {
  auto Pieces = splitString("abc", ',');
  ASSERT_EQ(Pieces.size(), 1u);
  EXPECT_EQ(Pieces[0], "abc");
}

TEST(SplitTest, EmptyInput) {
  auto Pieces = splitString("", ',');
  ASSERT_EQ(Pieces.size(), 1u);
  EXPECT_EQ(Pieces[0], "");
}

TEST(SplitTest, LeadingAndTrailing) {
  auto Pieces = splitString(",x,", ',');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "");
  EXPECT_EQ(Pieces[1], "x");
  EXPECT_EQ(Pieces[2], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> Pieces = {"one", "two", "three"};
  EXPECT_EQ(joinStrings(Pieces, ","), "one,two,three");
  EXPECT_EQ(splitString(joinStrings(Pieces, ";"), ';'), Pieces);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"solo"}, ","), "solo");
}

TEST(PadTest, PadRight) {
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padRight("abcdef", 3), "abc"); // Truncates.
  EXPECT_EQ(padRight("", 2), "  ");
}

TEST(PadTest, PadLeft) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef"); // Never truncates.
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(startsWith("__lib_walk", "__lib_"));
  EXPECT_FALSE(startsWith("walk", "__lib_"));
  EXPECT_TRUE(startsWith("anything", ""));
  EXPECT_FALSE(startsWith("", "x"));
}

TEST(ParseUnsignedTest, AcceptsPlainDecimal) {
  uint64_t V = 1;
  EXPECT_TRUE(parseUnsigned("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseUnsigned("42", V));
  EXPECT_EQ(V, 42u);
  EXPECT_TRUE(parseUnsigned("18446744073709551615", V)); // UINT64_MAX.
  EXPECT_EQ(V, UINT64_MAX);
  EXPECT_TRUE(parseUnsigned("007", V)); // Leading zeros are still decimal.
  EXPECT_EQ(V, 7u);
}

TEST(ParseUnsignedTest, RejectsPartialConsumptionAndSigns) {
  // strtoull accepted all of these (stopping at the first bad character,
  // or wrapping negatives), which let `--runs=100x` silently become 100.
  uint64_t V = 99;
  EXPECT_FALSE(parseUnsigned("", V));
  EXPECT_FALSE(parseUnsigned("abc", V));
  EXPECT_FALSE(parseUnsigned("123abc", V));
  EXPECT_FALSE(parseUnsigned("12 ", V));
  EXPECT_FALSE(parseUnsigned(" 12", V));
  EXPECT_FALSE(parseUnsigned("+1", V));
  EXPECT_FALSE(parseUnsigned("-1", V));
  EXPECT_FALSE(parseUnsigned("0x10", V));
  EXPECT_FALSE(parseUnsigned("1.5", V));
  EXPECT_EQ(V, 99u) << "failed parse must not clobber the output";
}

TEST(ParseUnsignedTest, RejectsOverflow) {
  uint64_t V = 99;
  EXPECT_FALSE(parseUnsigned("18446744073709551616", V)); // UINT64_MAX + 1.
  EXPECT_FALSE(parseUnsigned("99999999999999999999", V));
  EXPECT_FALSE(parseUnsigned("340282366920938463463374607431768211456", V));
  EXPECT_EQ(V, 99u);
}
