//===- tests/support/TextTableTest.cpp - Table renderer unit tests --------===//

#include "support/TextTable.h"

#include <gtest/gtest.h>

using namespace sbi;

TEST(TextTableTest, HeaderAndRow) {
  TextTable Table;
  Table.setHeader({"Name", "Count"});
  Table.addRow({"foo", "42"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("foo"), std::string::npos);
  EXPECT_NE(Out.find("42"), std::string::npos);
  // Separator line under the header.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable Table;
  Table.setHeader({"A", "B"});
  Table.addRow({"short", "1"});
  Table.addRow({"a-much-longer-cell", "2"});
  std::string Out = Table.render();
  // Every line should place column B at the same offset; check that both
  // data lines have their digit at the same column.
  size_t FirstLineStart = Out.find("short");
  size_t SecondLineStart = Out.find("a-much-longer-cell");
  ASSERT_NE(FirstLineStart, std::string::npos);
  ASSERT_NE(SecondLineStart, std::string::npos);
  size_t OneAt = Out.find('1', FirstLineStart) - FirstLineStart;
  size_t TwoAt = Out.find('2', SecondLineStart) - SecondLineStart;
  EXPECT_EQ(OneAt, TwoAt);
}

TEST(TextTableTest, NumericCellsRightAligned) {
  TextTable Table;
  Table.setHeader({"N"});
  Table.addRow({"7"});
  Table.addRow({"1234"});
  std::string Out = Table.render();
  // "7" should be padded on the left to width 4.
  EXPECT_NE(Out.find("   7"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable Table;
  Table.setHeader({"A", "B", "C"});
  Table.addRow({"only-one"});
  EXPECT_NO_THROW({ std::string Out = Table.render(); });
}

TEST(TextTableTest, SeparatorRows) {
  TextTable Table;
  Table.setHeader({"Wide"});
  Table.addRow({"x"});
  Table.addSeparator();
  Table.addRow({"y"});
  std::string Out = Table.render();
  // Two separators: one under the header, one explicit.
  size_t First = Out.find("---");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Out.find("---", First + 3), std::string::npos);
}

TEST(TextTableTest, NoTrailingWhitespace) {
  TextTable Table;
  Table.setHeader({"A", "B"});
  Table.addRow({"x", "y"});
  std::string Out = Table.render();
  size_t Pos = 0;
  while ((Pos = Out.find('\n', Pos)) != std::string::npos) {
    if (Pos > 0)
      EXPECT_NE(Out[Pos - 1], ' ') << "trailing space before newline";
    ++Pos;
  }
}

TEST(TextTableTest, NumRows) {
  TextTable Table;
  EXPECT_EQ(Table.numRows(), 0u);
  Table.addRow({"x"});
  Table.addRow({"y"});
  EXPECT_EQ(Table.numRows(), 2u);
}
