//===- tests/runtime/InterpTest.cpp - Interpreter semantics tests ---------===//

#include "runtime/Interp.h"

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

RunOutcome run(const std::string &Source,
               std::vector<std::string> Args = {}, size_t Pad = 4) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  if (!Prog)
    return {};
  RunConfig Config;
  Config.Args = std::move(Args);
  Config.OverrunPad = Pad;
  return runProgram(*Prog, Config);
}

std::string output(const std::string &Source,
                   std::vector<std::string> Args = {}) {
  RunOutcome Outcome = run(Source, std::move(Args));
  EXPECT_EQ(Outcome.Trap, TrapKind::None) << Outcome.TrapMessage;
  return Outcome.Output;
}

} // namespace

TEST(InterpTest, HelloWorld) {
  EXPECT_EQ(output("fn main() { println(\"hello\"); }"), "hello\n");
}

TEST(InterpTest, IntegerArithmetic) {
  EXPECT_EQ(output("fn main() { println(2 + 3 * 4); }"), "14\n");
  EXPECT_EQ(output("fn main() { println((2 + 3) * 4); }"), "20\n");
  EXPECT_EQ(output("fn main() { println(7 / 2); }"), "3\n");
  EXPECT_EQ(output("fn main() { println(-7 / 2); }"), "-3\n");
  EXPECT_EQ(output("fn main() { println(7 % 3); }"), "1\n");
  EXPECT_EQ(output("fn main() { println(-7 % 3); }"), "-1\n");
}

TEST(InterpTest, Comparisons) {
  EXPECT_EQ(output("fn main() { println(1 < 2); println(2 < 1); }"),
            "1\n0\n");
  EXPECT_EQ(output("fn main() { println(2 <= 2); println(3 >= 4); }"),
            "1\n0\n");
  EXPECT_EQ(output("fn main() { println(5 == 5); println(5 != 5); }"),
            "1\n0\n");
}

TEST(InterpTest, EqualityAcrossKinds) {
  EXPECT_EQ(output(R"(fn main() {
  str s = "a";
  println(s == null);
  s = null;
  println(s == null);
  println(null == null);
})"),
            "0\n1\n1\n");
}

TEST(InterpTest, StringEquality) {
  EXPECT_EQ(output(R"(fn main() {
  str a = "xy";
  str b = strcat("x", "y");
  println(a == b);
})"),
            "1\n");
}

TEST(InterpTest, ShortCircuitAnd) {
  // The right operand must not execute when the left is false.
  EXPECT_EQ(output(R"(
int hits = 0;
fn touch() { hits = hits + 1; return 1; }
fn main() {
  int r = 0 && touch();
  println(r);
  println(hits);
})"),
            "0\n0\n");
}

TEST(InterpTest, ShortCircuitOr) {
  EXPECT_EQ(output(R"(
int hits = 0;
fn touch() { hits = hits + 1; return 1; }
fn main() {
  int r = 1 || touch();
  println(r);
  println(hits);
})"),
            "1\n0\n");
}

TEST(InterpTest, UnaryOperators) {
  EXPECT_EQ(output("fn main() { println(-5); println(!0); println(!7); }"),
            "-5\n1\n0\n");
}

TEST(InterpTest, WhileLoop) {
  EXPECT_EQ(output(R"(fn main() {
  int i = 0;
  int sum = 0;
  while (i < 5) { sum = sum + i; i = i + 1; }
  println(sum);
})"),
            "10\n");
}

TEST(InterpTest, ForLoopWithBreakContinue) {
  EXPECT_EQ(output(R"(fn main() {
  int sum = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 6) { break; }
    sum = sum + i;
  }
  println(sum);
})"),
            "9\n"); // 1 + 3 + 5
}

TEST(InterpTest, NestedLoopsBreakInner) {
  EXPECT_EQ(output(R"(fn main() {
  int n = 0;
  for (int i = 0; i < 3; i = i + 1) {
    for (int j = 0; j < 10; j = j + 1) {
      if (j == 2) { break; }
      n = n + 1;
    }
  }
  println(n);
})"),
            "6\n");
}

TEST(InterpTest, FunctionsAndRecursion) {
  EXPECT_EQ(output(R"(
fn fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() { println(fib(10)); })"),
            "55\n");
}

TEST(InterpTest, FunctionWithoutReturnYieldsUnitAndNoExitCode) {
  RunOutcome Outcome = run("fn f() { }\nfn main() { f(); }");
  EXPECT_EQ(Outcome.ExitCode, 0);
  EXPECT_FALSE(Outcome.failed());
}

TEST(InterpTest, MainReturnValueIsExitCode) {
  EXPECT_EQ(run("fn main() { return 3; }").ExitCode, 3);
  EXPECT_TRUE(run("fn main() { return 3; }").failed());
  EXPECT_FALSE(run("fn main() { return 0; }").failed());
}

TEST(InterpTest, ExitIntrinsic) {
  RunOutcome Outcome = run(R"(fn main() {
  println("before");
  exit(5);
  println("after");
})");
  EXPECT_EQ(Outcome.ExitCode, 5);
  EXPECT_EQ(Outcome.Output, "before\n");
  EXPECT_EQ(Outcome.Trap, TrapKind::None);
}

TEST(InterpTest, GlobalsInitializeInOrder) {
  EXPECT_EQ(output(R"(
int a = 2;
int b = a * 10;
fn main() { println(b); })"),
            "20\n");
}

TEST(InterpTest, GlobalDefaults) {
  EXPECT_EQ(output(R"(
int i;
str s;
fn main() { println(i); println(len(s)); })"),
            "0\n0\n");
}

TEST(InterpTest, LocalDefaults) {
  EXPECT_EQ(output(R"(fn main() {
  int i;
  str s;
  arr a;
  rec r;
  println(i);
  println(len(s));
  println(a == null);
  println(r == null);
})"),
            "0\n0\n1\n1\n");
}

TEST(InterpTest, ArraysBasic) {
  EXPECT_EQ(output(R"(fn main() {
  arr a = mkarray(3);
  a[0] = 10;
  a[2] = 30;
  println(a[0] + a[1] + a[2]);
  println(len(a));
})"),
            "40\n3\n");
}

TEST(InterpTest, ArraysHaveReferenceSemantics) {
  EXPECT_EQ(output(R"(
fn poke(arr v) { v[0] = 99; return 0; }
fn main() {
  arr a = mkarray(1);
  poke(a);
  println(a[0]);
})"),
            "99\n");
}

TEST(InterpTest, ArraysHoldMixedValues) {
  EXPECT_EQ(output(R"(fn main() {
  arr a = mkarray(2);
  a[0] = "text";
  a[1] = 7;
  println(a[0]);
  println(a[1]);
})"),
            "text\n7\n");
}

TEST(InterpTest, RecordsBasic) {
  EXPECT_EQ(output(R"(
record Point { x; y; }
fn main() {
  rec p = new Point;
  p.x = 3;
  p.y = 4;
  println(p.x * p.x + p.y * p.y);
})"),
            "25\n");
}

TEST(InterpTest, RecordFieldsDefaultNull) {
  EXPECT_EQ(output(R"(
record Box { payload; }
fn main() {
  rec b = new Box;
  println(b.payload == null);
})"),
            "1\n");
}

TEST(InterpTest, RecordsHaveReferenceSemantics) {
  EXPECT_EQ(output(R"(
record Cell { v; }
fn bump(rec c) { c.v = c.v + 1; return 0; }
fn main() {
  rec c = new Cell;
  c.v = 1;
  bump(c);
  bump(c);
  println(c.v);
})"),
            "3\n");
}

TEST(InterpTest, StringIntrinsics) {
  EXPECT_EQ(output(R"(fn main() {
  str s = "hello";
  println(len(s));
  println(charat(s, 1));
  println(substr(s, 1, 3));
  println(strcmp("a", "b"));
  println(strcmp("b", "a"));
  println(strcmp("same", "same"));
  println(strcat("ab", "cd"));
})"),
            "5\n101\nell\n-1\n1\n0\nabcd\n");
}

TEST(InterpTest, SubstrClamps) {
  EXPECT_EQ(output(R"(fn main() {
  println(substr("abc", 2, 99));
  println(substr("abc", 99, 1));
  println(len(substr("abc", 0, 0)));
})"),
            "c\n\n0\n");
}

TEST(InterpTest, AtoiAndItoa) {
  EXPECT_EQ(output(R"(fn main() {
  println(atoi("123"));
  println(atoi("-45"));
  println(atoi("12ab"));
  println(atoi("junk"));
  println(itoa(789));
  println(itoa(-6));
})"),
            "123\n-45\n12\n0\n789\n-6\n");
}

TEST(InterpTest, MinMaxAbs) {
  EXPECT_EQ(output(R"(fn main() {
  println(min(3, 5));
  println(max(3, 5));
  println(abs(-9));
  println(abs(9));
})"),
            "3\n5\n9\n9\n");
}

TEST(InterpTest, ArgsIntrinsics) {
  EXPECT_EQ(output(R"(fn main() {
  println(nargs());
  println(arg(0));
  println(arg(1));
})",
                   {"first", "second"}),
            "2\nfirst\nsecond\n");
}

TEST(InterpTest, BugMarkersRecorded) {
  RunOutcome Outcome = run(R"(fn main() {
  __bug(3);
  __bug(1);
  __bug(3);
})");
  EXPECT_EQ(Outcome.BugsTriggered, (std::vector<int>{1, 3}));
  // Markers alone do not fail a run.
  EXPECT_FALSE(Outcome.failed());
}

TEST(InterpTest, KindEnforcementOnVarStore) {
  RunOutcome Outcome = run("fn main() { int x = 0; x = \"nope\"; }");
  EXPECT_EQ(Outcome.Trap, TrapKind::KindError);
}

TEST(InterpTest, NullAssignableToStrArrRec) {
  EXPECT_EQ(output(R"(fn main() {
  str s = null;
  arr a = null;
  rec r = null;
  println(s == null);
})"),
            "1\n");
}

TEST(InterpTest, StepsAreCounted) {
  RunOutcome Outcome = run("fn main() { int x = 1 + 2; println(x); }");
  EXPECT_GT(Outcome.Steps, 4u);
}

TEST(InterpTest, OutputCapDoesNotCrash) {
  RunOutcome Outcome = run(R"(fn main() {
  int i = 0;
  while (i < 300000) {
    print("xxxxxxxxxx");
    i = i + 1;
  }
})");
  EXPECT_EQ(Outcome.Trap, TrapKind::None);
  EXPECT_LE(Outcome.Output.size(), (1u << 20));
}

TEST(InterpTest, ForLoopScopeReusesSlots) {
  EXPECT_EQ(output(R"(fn main() {
  int total = 0;
  for (int i = 0; i < 3; i = i + 1) { total = total + i; }
  for (int j = 0; j < 3; j = j + 1) { total = total + j; }
  println(total);
})"),
            "6\n");
}

TEST(InterpTest, DeclReinitializedEachIteration) {
  EXPECT_EQ(output(R"(fn main() {
  int total = 0;
  for (int i = 0; i < 3; i = i + 1) {
    int acc = 0;
    acc = acc + 1;
    total = total + acc;
  }
  println(total);
})"),
            "3\n");
}

TEST(InterpTest, Int64Wraparound) {
  // Overflow wraps (two's complement) instead of being undefined.
  EXPECT_EQ(output(R"(fn main() {
  int big = 9223372036854775807;
  println(big + 1 < 0);
})"),
            "1\n");
}
