//===- tests/runtime/ValueTest.cpp - Value representation tests -----------===//

#include "runtime/Value.h"

#include <gtest/gtest.h>

using namespace sbi;

TEST(ValueTest, DefaultIsUnit) {
  Value V;
  EXPECT_TRUE(V.isUnit());
  EXPECT_EQ(V.kind(), ValueKind::Unit);
}

TEST(ValueTest, IntRoundTrip) {
  Value V = Value::makeInt(-42);
  EXPECT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), -42);
}

TEST(ValueTest, StrRoundTrip) {
  Value V = Value::makeStr("hello");
  EXPECT_TRUE(V.isStr());
  EXPECT_EQ(V.asStr(), "hello");
}

TEST(ValueTest, StringsShareStorage) {
  Value A = Value::makeStr("shared");
  Value B = A;
  EXPECT_EQ(A.strHandle().get(), B.strHandle().get());
}

TEST(ValueTest, NullIsItsOwnKind) {
  Value V = Value::makeNull();
  EXPECT_TRUE(V.isNull());
  EXPECT_FALSE(V.isUnit());
}

TEST(ValueTest, EqualsStructuralForScalars) {
  EXPECT_TRUE(Value::makeInt(3).equals(Value::makeInt(3)));
  EXPECT_FALSE(Value::makeInt(3).equals(Value::makeInt(4)));
  EXPECT_TRUE(Value::makeStr("a").equals(Value::makeStr("a")));
  EXPECT_FALSE(Value::makeStr("a").equals(Value::makeStr("b")));
  EXPECT_TRUE(Value::makeNull().equals(Value::makeNull()));
}

TEST(ValueTest, EqualsFalseAcrossKinds) {
  EXPECT_FALSE(Value::makeInt(0).equals(Value::makeNull()));
  EXPECT_FALSE(Value::makeStr("0").equals(Value::makeInt(0)));
  EXPECT_FALSE(Value().equals(Value::makeInt(0)));
}

TEST(ValueTest, ArrayReferenceEquality) {
  auto Obj = std::make_shared<ArrayObj>();
  Obj->LogicalSize = 1;
  Obj->Data.assign(1, Value::makeInt(0));
  Value A = Value::makeArr(Obj);
  Value B = Value::makeArr(Obj);
  Value C = Value::makeArr(std::make_shared<ArrayObj>());
  EXPECT_TRUE(A.equals(B));
  EXPECT_FALSE(A.equals(C));
}

TEST(ValueTest, RecordReferenceEquality) {
  RecordDecl Decl;
  Decl.Name = "R";
  Decl.Fields = {"x"};
  auto Obj = std::make_shared<RecordObj>();
  Obj->Decl = &Decl;
  Obj->Fields.assign(1, Value::makeNull());
  Value A = Value::makeRec(Obj);
  Value B = A;
  EXPECT_TRUE(A.equals(B));
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value::makeInt(7).toDisplayString(), "7");
  EXPECT_EQ(Value::makeInt(-7).toDisplayString(), "-7");
  EXPECT_EQ(Value::makeStr("s").toDisplayString(), "s");
  EXPECT_EQ(Value::makeNull().toDisplayString(), "null");
  EXPECT_EQ(Value().toDisplayString(), "<unit>");
}

TEST(ValueTest, ArrayDisplayShowsLogicalSize) {
  auto Obj = std::make_shared<ArrayObj>();
  Obj->LogicalSize = 3;
  Obj->Data.assign(7, Value::makeInt(0)); // Padding beyond logical size.
  EXPECT_EQ(Value::makeArr(Obj).toDisplayString(), "<arr:3>");
}

TEST(ValueTest, KindNames) {
  EXPECT_STREQ(valueKindName(ValueKind::Int), "int");
  EXPECT_STREQ(valueKindName(ValueKind::Str), "str");
  EXPECT_STREQ(valueKindName(ValueKind::Null), "null");
  EXPECT_STREQ(valueKindName(ValueKind::Arr), "arr");
  EXPECT_STREQ(valueKindName(ValueKind::Rec), "rec");
  EXPECT_STREQ(valueKindName(ValueKind::Unit), "unit");
}
