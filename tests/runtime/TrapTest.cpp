//===- tests/runtime/TrapTest.cpp - Crash-model tests ----------------------===//
//
// The trap model is the substrate for the paper's failure labels: these
// tests pin down every crash kind, the silent-overrun padding semantics
// that make buffer overruns non-deterministic (Section 3.1), and stack
// capture.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

RunOutcome runWithPad(const std::string &Source, size_t Pad,
                      std::vector<std::string> Args = {}) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  if (!Prog)
    return {};
  RunConfig Config;
  Config.Args = std::move(Args);
  Config.OverrunPad = Pad;
  return runProgram(*Prog, Config);
}

RunOutcome run(const std::string &Source) { return runWithPad(Source, 4); }

} // namespace

TEST(TrapTest, NullFieldRead) {
  RunOutcome Outcome = run(R"(
record R { x; }
fn main() { rec r = null; println(r.x); })");
  EXPECT_EQ(Outcome.Trap, TrapKind::NullDeref);
  EXPECT_TRUE(Outcome.failed());
}

TEST(TrapTest, NullFieldWrite) {
  RunOutcome Outcome = run(R"(
record R { x; }
fn main() { rec r = null; r.x = 1; })");
  EXPECT_EQ(Outcome.Trap, TrapKind::NullDeref);
}

TEST(TrapTest, NullElementAccess) {
  RunOutcome Outcome = run("fn main() { arr a = null; println(a[0]); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::NullDeref);
}

TEST(TrapTest, NullStringIntrinsic) {
  RunOutcome Outcome = run("fn main() { str s = null; println(len(s)); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::NullDeref);
}

TEST(TrapTest, NegativeIndexAlwaysTraps) {
  for (size_t Pad : {0u, 7u}) {
    RunOutcome Outcome = runWithPad(
        "fn main() { arr a = mkarray(4); println(a[0 - 1]); }", Pad);
    EXPECT_EQ(Outcome.Trap, TrapKind::OutOfBounds);
  }
}

TEST(TrapTest, OverrunWithinPaddingIsSilent) {
  // Index 4 on a 4-element array: one past the end. With padding it is a
  // silent corruption; without padding it traps. This is the paper's
  // non-deterministic overrun in miniature.
  const char *Source = R"(fn main() {
  arr a = mkarray(4);
  a[4] = 1;
  println("survived");
})";
  RunOutcome Padded = runWithPad(Source, 4);
  EXPECT_EQ(Padded.Trap, TrapKind::None);
  EXPECT_EQ(Padded.Output, "survived\n");

  RunOutcome Unpadded = runWithPad(Source, 0);
  EXPECT_EQ(Unpadded.Trap, TrapKind::OutOfBounds);
}

TEST(TrapTest, OverrunBeyondPaddingTraps) {
  RunOutcome Outcome = runWithPad(
      "fn main() { arr a = mkarray(4); a[10] = 1; }", 4);
  EXPECT_EQ(Outcome.Trap, TrapKind::OutOfBounds);
}

TEST(TrapTest, PaddingReadsBackStores) {
  RunOutcome Outcome = runWithPad(R"(fn main() {
  arr a = mkarray(2);
  a[2] = 42;
  println(a[2]);
})",
                                  4);
  EXPECT_EQ(Outcome.Trap, TrapKind::None);
  EXPECT_EQ(Outcome.Output, "42\n");
}

TEST(TrapTest, LenReportsLogicalSizeNotPadding) {
  RunOutcome Outcome = runWithPad(
      "fn main() { println(len(mkarray(5))); }", 7);
  EXPECT_EQ(Outcome.Output, "5\n");
}

TEST(TrapTest, DivisionByZero) {
  RunOutcome Outcome = run("fn main() { int x = 0; println(1 / x); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::DivByZero);
}

TEST(TrapTest, RemainderByZero) {
  RunOutcome Outcome = run("fn main() { int x = 0; println(1 % x); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::DivByZero);
}

TEST(TrapTest, Int64MinDivMinusOneDoesNotCrashHost) {
  RunOutcome Outcome = run(R"(fn main() {
  int m = 0 - 9223372036854775807 - 1;
  int d = 0 - 1;
  println(m / d);
  println(m % d);
})");
  EXPECT_EQ(Outcome.Trap, TrapKind::None);
}

TEST(TrapTest, KindErrorOnNonIntArithmetic) {
  RunOutcome Outcome = run("fn main() { str s = \"a\"; println(s + 1); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::KindError);
}

TEST(TrapTest, KindErrorOnNonIntCondition) {
  RunOutcome Outcome = run("fn main() { str s = \"a\"; if (s) { } }");
  EXPECT_EQ(Outcome.Trap, TrapKind::KindError);
}

TEST(TrapTest, KindErrorOnFieldOfNonRecord) {
  RunOutcome Outcome = run("fn main() { int x = 1; println(x.f); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::KindError);
}

TEST(TrapTest, KindErrorOnUnknownField) {
  RunOutcome Outcome = run(R"(
record R { x; }
fn main() { rec r = new R; println(r.nope); })");
  EXPECT_EQ(Outcome.Trap, TrapKind::KindError);
}

TEST(TrapTest, BadArgOnCharatOutOfRange) {
  RunOutcome Outcome = run("fn main() { println(charat(\"ab\", 5)); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::BadArg);
}

TEST(TrapTest, BadArgOnArgOutOfRange) {
  RunOutcome Outcome = run("fn main() { println(arg(3)); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::BadArg);
}

TEST(TrapTest, OutOfMemoryOnNegativeAllocation) {
  RunOutcome Outcome = run("fn main() { arr a = mkarray(0 - 5); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::OutOfMemory);
}

TEST(TrapTest, OutOfMemoryOnAbsurdAllocation) {
  RunOutcome Outcome = run("fn main() { arr a = mkarray(99999999999); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::OutOfMemory);
}

TEST(TrapTest, ExplicitTrap) {
  RunOutcome Outcome = run("fn main() { trap(\"boom\"); }");
  EXPECT_EQ(Outcome.Trap, TrapKind::ExplicitTrap);
  EXPECT_EQ(Outcome.TrapMessage, "boom");
}

TEST(TrapTest, StepLimitStopsRunawayLoop) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze("fn main() { while (1) { } }", Diags);
  ASSERT_NE(Prog, nullptr);
  RunConfig Config;
  Config.StepLimit = 10000;
  RunOutcome Outcome = runProgram(*Prog, Config);
  EXPECT_EQ(Outcome.Trap, TrapKind::StepLimit);
  EXPECT_LE(Outcome.Steps, 10001u);
}

TEST(TrapTest, StackOverflowOnInfiniteRecursion) {
  RunOutcome Outcome = run(R"(
fn spin(int n) { return spin(n + 1); }
fn main() { spin(0); })");
  EXPECT_EQ(Outcome.Trap, TrapKind::StackOverflow);
}

TEST(TrapTest, DeclaredVariablesAlwaysReadInitialized) {
  // Lexical scoping + per-execution declaration initialization means a
  // declared variable can never be read uninitialized, even across
  // sibling blocks that reuse frame slots of different kinds.
  RunOutcome Outcome = run(R"(fn main() {
  { str s = "x"; println(s); }
  { int n; println(n + 0); }
  { arr a; println(a == null); }
})");
  EXPECT_EQ(Outcome.Trap, TrapKind::None);
  EXPECT_EQ(Outcome.Output, "x\n0\n1\n");
}

TEST(TrapTest, StackTraceInnermostFirst) {
  RunOutcome Outcome = run(R"(
fn inner() { trap("deep"); return 0; }
fn middle() { return inner(); }
fn main() { middle(); })");
  ASSERT_EQ(Outcome.StackTrace.size(), 3u);
  EXPECT_EQ(Outcome.StackTrace[0].substr(0, 6), "inner@");
  EXPECT_EQ(Outcome.StackTrace[1].substr(0, 7), "middle@");
  EXPECT_EQ(Outcome.StackTrace[2].substr(0, 5), "main@");
}

TEST(TrapTest, TrapLineIsRecorded) {
  RunOutcome Outcome = run("fn main() {\n  trap(\"x\");\n}");
  EXPECT_EQ(Outcome.TrapLine, 2);
}

TEST(TrapTest, NoStackTraceOnSuccess) {
  RunOutcome Outcome = run("fn main() { println(1); }");
  EXPECT_TRUE(Outcome.StackTrace.empty());
}

TEST(TrapTest, OutputBeforeTrapIsPreserved) {
  RunOutcome Outcome = run(R"(fn main() {
  println("pre");
  trap("bang");
  println("post");
})");
  EXPECT_EQ(Outcome.Output, "pre\n");
}

TEST(TrapTest, BugsRecordedBeforeTrapSurvive) {
  RunOutcome Outcome = run(R"(fn main() {
  __bug(2);
  trap("bang");
})");
  EXPECT_EQ(Outcome.BugsTriggered, (std::vector<int>{2}));
  EXPECT_TRUE(Outcome.crashed());
}
