//===- tests/sa/DataflowTest.cpp - Interval/constant dataflow tests -------===//

#include "sa/Dataflow.h"

#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <map>

using namespace sbi;

namespace {

std::unique_ptr<Program> compile(std::string_view Source) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  return Prog;
}

/// Replays every reachable block of \p Func, collecting the abstract
/// condition of each branch evaluation keyed by node id.
struct BranchSink : EvalSink {
  std::map<int, AbsVal> Conds;
  void onBranch(int NodeId, const AbsVal &Cond) override {
    auto [It, Inserted] = Conds.emplace(NodeId, Cond);
    if (!Inserted)
      It->second = AbsVal::join(It->second, Cond);
  }
};

BranchSink replayFunction(const StaticModel &Model, const FuncDecl *F) {
  BranchSink Sink;
  const Cfg &G = Model.cfg(F);
  for (int B : G.rpo())
    Model.replayBlock(F, B, Sink);
  return Sink;
}

} // namespace

//===----------------------------------------------------------------------===//
// AbsVal lattice algebra
//===----------------------------------------------------------------------===//

TEST(AbsValTest, JoinUnionsIntervalsAndOtherBit) {
  AbsVal A = AbsVal::range(1, 5);
  AbsVal B = AbsVal::range(10, 20);
  AbsVal J = AbsVal::join(A, B);
  EXPECT_TRUE(J.HasInt);
  EXPECT_EQ(J.Lo, 1);
  EXPECT_EQ(J.Hi, 20);
  EXPECT_FALSE(J.HasOther);

  AbsVal WithOther = AbsVal::join(A, AbsVal::other());
  EXPECT_TRUE(WithOther.HasInt);
  EXPECT_TRUE(WithOther.HasOther);

  EXPECT_EQ(AbsVal::join(AbsVal::bottom(), A), A);
  EXPECT_EQ(AbsVal::join(A, AbsVal::bottom()), A);
}

TEST(AbsValTest, WideningJumpsGrownBoundsToExtremes) {
  AbsVal Old = AbsVal::range(0, 10);
  AbsVal GrewHigh = AbsVal::widen(Old, AbsVal::range(0, 11));
  EXPECT_EQ(GrewHigh.Lo, 0);
  EXPECT_EQ(GrewHigh.Hi, INT64_MAX);
  AbsVal GrewLow = AbsVal::widen(Old, AbsVal::range(-1, 10));
  EXPECT_EQ(GrewLow.Lo, INT64_MIN);
  EXPECT_EQ(GrewLow.Hi, 10);
  // A non-growing value widens to itself.
  EXPECT_EQ(AbsVal::widen(Old, AbsVal::range(2, 9)).Lo, 0);
  EXPECT_EQ(AbsVal::widen(Old, AbsVal::range(2, 9)).Hi, 10);
}

TEST(AbsValTest, FeasibilityQueries) {
  EXPECT_TRUE(AbsVal::constant(3).hasNonzeroInt());
  EXPECT_FALSE(AbsVal::constant(3).hasZeroInt());
  EXPECT_TRUE(AbsVal::constant(0).hasZeroInt());
  EXPECT_FALSE(AbsVal::constant(0).hasNonzeroInt());
  EXPECT_TRUE(AbsVal::range(-1, 1).hasZeroInt());
  EXPECT_TRUE(AbsVal::range(-1, 1).hasNonzeroInt());
  EXPECT_FALSE(AbsVal::other().hasZeroInt());
  EXPECT_FALSE(AbsVal::other().hasNonzeroInt());
  EXPECT_TRUE(AbsVal::bottom().isBottom());
}

TEST(AbsValTest, MeetIntervalIntersects) {
  AbsVal V = AbsVal::range(0, 100);
  AbsVal M = V.meetInterval(50, 200, /*KeepOther=*/false);
  EXPECT_TRUE(M.HasInt);
  EXPECT_EQ(M.Lo, 50);
  EXPECT_EQ(M.Hi, 100);
  // Empty intersection drops the int portion entirely.
  AbsVal Empty = V.meetInterval(200, 300, false);
  EXPECT_FALSE(Empty.HasInt);
}

//===----------------------------------------------------------------------===//
// Whole-program model
//===----------------------------------------------------------------------===//

TEST(StaticModelTest, UncalledFunctionIsUnreachable) {
  auto Prog = compile(R"(
fn helper(int x) { return x + 1; }
fn orphan() { return 99; }
fn main() { println(helper(1)); }
)");
  StaticModel Model = StaticModel::build(*Prog);
  EXPECT_TRUE(Model.functionReachable(Prog->findFunction("main")));
  EXPECT_TRUE(Model.functionReachable(Prog->findFunction("helper")));
  EXPECT_FALSE(Model.functionReachable(Prog->findFunction("orphan")));
}

TEST(StaticModelTest, ConstantGlobalIsASingleton) {
  auto Prog = compile(R"(
int CAP = 64;
int counter = 0;
fn main() { counter = counter + 1; println(CAP); }
)");
  StaticModel Model = StaticModel::build(*Prog);
  // CAP is never assigned: its flow-insensitive value is exactly 64.
  AbsVal Cap = Model.globalValue(Prog->Globals[0]->Slot);
  EXPECT_TRUE(Cap.isIntSingleton());
  EXPECT_EQ(Cap.Lo, 64);
  // counter is assigned in main, so it is not a singleton.
  EXPECT_FALSE(Model.globalValue(Prog->Globals[1]->Slot).isIntSingleton());
}

TEST(StaticModelTest, ReturnSummaryOfConstantFunction) {
  auto Prog = compile(R"(
fn seven() { return 7; }
fn main() { println(seven()); }
)");
  StaticModel Model = StaticModel::build(*Prog);
  AbsVal Ret = Model.returnSummary(Prog->findFunction("seven"));
  EXPECT_TRUE(Ret.isIntSingleton());
  EXPECT_EQ(Ret.Lo, 7);
}

TEST(StaticModelTest, RecursiveCycleReturnsTop) {
  auto Prog = compile(R"(
fn odd(int n) {
  if (n == 0) { return 0; }
  return even(n - 1);
}
fn even(int n) {
  if (n == 0) { return 1; }
  return odd(n - 1);
}
fn main() { println(even(nargs())); }
)");
  StaticModel Model = StaticModel::build(*Prog);
  // The odd/even cycle gets a top summary: sound, maximally imprecise.
  AbsVal Ret = Model.returnSummary(Prog->findFunction("even"));
  EXPECT_TRUE(Ret.HasInt);
  EXPECT_EQ(Ret.Lo, INT64_MIN);
  EXPECT_EQ(Ret.Hi, INT64_MAX);
}

TEST(StaticModelTest, ReplayReportsConstantBranchCondition) {
  auto Prog = compile(R"(fn main() {
  int x = 3;
  if (x > 2) { println(1); }
})");
  StaticModel Model = StaticModel::build(*Prog);
  BranchSink Sink = replayFunction(Model, Prog->findFunction("main"));
  // Exactly one branch; x is the constant 3, so the comparison folds to
  // the constant 1 (always true).
  ASSERT_EQ(Sink.Conds.size(), 1u);
  const AbsVal &Cond = Sink.Conds.begin()->second;
  EXPECT_TRUE(Cond.isIntSingleton());
  EXPECT_EQ(Cond.Lo, 1);
}

TEST(StaticModelTest, ReplayKeepsUnknownBranchUnknown) {
  auto Prog = compile(R"(fn main() {
  int argc = nargs();
  if (argc > 2) { println(1); }
})");
  StaticModel Model = StaticModel::build(*Prog);
  BranchSink Sink = replayFunction(Model, Prog->findFunction("main"));
  ASSERT_EQ(Sink.Conds.size(), 1u);
  const AbsVal &Cond = Sink.Conds.begin()->second;
  // A parameter-dependent comparison must keep both outcomes feasible.
  EXPECT_TRUE(Cond.hasZeroInt());
  EXPECT_TRUE(Cond.hasNonzeroInt());
}

TEST(StaticModelTest, BranchRefinementNarrowsTheArms) {
  auto Prog = compile(R"(fn main() {
  int n = nargs();
  if (n > 10) {
    if (n > 5) { println(1); }
  }
})");
  StaticModel Model = StaticModel::build(*Prog);
  BranchSink Sink = replayFunction(Model, Prog->findFunction("main"));
  // The inner test is dominated by n > 10, so the analysis must fold it to
  // constant true: two branches total, one of them the constant 1.
  ASSERT_EQ(Sink.Conds.size(), 2u);
  size_t ConstantTrue = 0;
  for (const auto &[Node, Cond] : Sink.Conds)
    if (Cond.isIntSingleton() && Cond.Lo == 1)
      ++ConstantTrue;
  EXPECT_EQ(ConstantTrue, 1u);
}

TEST(StaticModelTest, DataflowProvesBlocksDeadBeyondCfgReachability) {
  auto Prog = compile(R"(fn main() {
  if (0) { println(1); }
  println(2);
})");
  StaticModel Model = StaticModel::build(*Prog);
  const FuncDecl *Main = Prog->findFunction("main");
  const Cfg &G = Model.cfg(Main);
  // Some CFG-reachable block must have an infeasible converged entry: the
  // then-arm of `if (0)`.
  bool SawInfeasibleReachable = false;
  for (int B : G.rpo())
    if (!Model.blockEntry(Main, B).Feasible)
      SawInfeasibleReachable = true;
  EXPECT_TRUE(SawInfeasibleReachable);
}
