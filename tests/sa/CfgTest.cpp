//===- tests/sa/CfgTest.cpp - Control-flow graph construction tests -------===//

#include "sa/Cfg.h"

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

struct Harness {
  std::unique_ptr<Program> Prog;

  explicit Harness(std::string_view Source) {
    std::vector<Diagnostic> Diags;
    Prog = parseAndAnalyze(Source, Diags);
    EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  }

  Cfg build(const std::string &Func = "main") {
    const FuncDecl *F = Prog->findFunction(Func);
    EXPECT_TRUE(F != nullptr) << Func;
    return Cfg::build(*F);
  }
};

/// Counts blocks with the given terminator kind.
size_t countTerm(const Cfg &G, CfgBlock::Term Kind) {
  size_t N = 0;
  for (size_t B = 0; B < G.numBlocks(); ++B)
    if (G.block(static_cast<int>(B)).Kind == Kind)
      ++N;
  return N;
}

} // namespace

TEST(CfgTest, StraightLineIsOnePathToExit) {
  Harness H("fn main() { int x = 1; x = x + 1; println(x); }");
  Cfg G = H.build();
  // Entry flows to the unique exit; every block is reachable and dominated
  // by the entry.
  EXPECT_EQ(countTerm(G, CfgBlock::Term::Exit), 1u);
  EXPECT_EQ(G.block(G.exit()).Kind, CfgBlock::Term::Exit);
  for (size_t B = 0; B < G.numBlocks(); ++B) {
    EXPECT_TRUE(G.reachable(static_cast<int>(B))) << B;
    EXPECT_TRUE(G.dominates(G.entry(), static_cast<int>(B))) << B;
  }
  EXPECT_FALSE(G.rpo().empty());
  EXPECT_EQ(G.rpo().front(), G.entry());
}

TEST(CfgTest, IfElseBranchAndMerge) {
  Harness H(R"(
fn pick(int c) {
  int x = 0;
  if (c > 0) { x = 1; } else { x = 2; }
  println(x);
}
fn main() { pick(nargs()); }
)");
  Cfg G = H.build("pick");
  // Exactly one two-way branch; its successors are distinct, both
  // reachable, both dominated by the branch block, and neither dominates
  // the other.
  int BranchBlock = -1;
  for (size_t B = 0; B < G.numBlocks(); ++B)
    if (G.block(static_cast<int>(B)).Kind == CfgBlock::Term::Branch)
      BranchBlock = static_cast<int>(B);
  ASSERT_GE(BranchBlock, 0);
  const CfgBlock &Branch = G.block(BranchBlock);
  ASSERT_NE(Branch.Succ[0], -1);
  ASSERT_NE(Branch.Succ[1], -1);
  EXPECT_NE(Branch.Succ[0], Branch.Succ[1]);
  EXPECT_TRUE(Branch.Cond != nullptr);
  EXPECT_GE(Branch.BranchNodeId, 0);
  for (int Arm : Branch.Succ) {
    EXPECT_TRUE(G.reachable(Arm));
    EXPECT_TRUE(G.dominates(BranchBlock, Arm));
  }
  EXPECT_FALSE(G.dominates(Branch.Succ[0], Branch.Succ[1]));
  EXPECT_FALSE(G.dominates(Branch.Succ[1], Branch.Succ[0]));
}

TEST(CfgTest, WhileLoopHasBackEdge) {
  Harness H(R"(fn main() {
  int i = 0;
  while (i < 3) { i = i + 1; }
})");
  Cfg G = H.build();
  // The loop header is a branch block that one of its descendants jumps
  // back to: it must appear in some reachable block's successor list twice
  // over the whole graph (entry edge + back edge), i.e. have >= 2 preds.
  int Header = -1;
  for (size_t B = 0; B < G.numBlocks(); ++B)
    if (G.block(static_cast<int>(B)).Kind == CfgBlock::Term::Branch)
      Header = static_cast<int>(B);
  ASSERT_GE(Header, 0);
  EXPECT_GE(G.block(Header).Preds.size(), 2u);
  // The loop body is dominated by the header.
  EXPECT_TRUE(G.dominates(Header, G.block(Header).Succ[0]));
}

TEST(CfgTest, CodeAfterReturnIsUnreachable) {
  Harness H(R"(fn main() {
  return 1;
  println(0);
})");
  Cfg G = H.build();
  bool SawUnreachable = false;
  for (size_t B = 0; B < G.numBlocks(); ++B)
    if (!G.reachable(static_cast<int>(B))) {
      SawUnreachable = true;
      // Unreachable blocks have no dominator and dominate nothing.
      EXPECT_EQ(G.immediateDominator(static_cast<int>(B)), -1);
      EXPECT_FALSE(G.dominates(G.entry(), static_cast<int>(B)));
    }
  EXPECT_TRUE(SawUnreachable);
}

TEST(CfgTest, BreakLeavesTheLoop) {
  Harness H(R"(fn main() {
  int i = 0;
  while (1) {
    if (i > 5) { break; }
    i = i + 1;
  }
  println(i);
})");
  Cfg G = H.build();
  // The break provides the only loop exit, so the exit block and the
  // trailing println's block are reachable. (Lowering may create orphan
  // helper blocks; only CFG-relevant blocks must be reachable.)
  EXPECT_TRUE(G.reachable(G.exit()));
  bool PrintlnReachable = false;
  for (size_t B = 0; B < G.numBlocks(); ++B) {
    const CfgBlock &Block = G.block(static_cast<int>(B));
    if (!G.reachable(static_cast<int>(B)))
      continue;
    for (const Stmt *S : Block.Items)
      if (S->Kind == StmtKind::Expr)
        PrintlnReachable = true;
  }
  EXPECT_TRUE(PrintlnReachable);
}

TEST(CfgTest, ConditionLessForIsABranchWithNullCond) {
  Harness H(R"(fn main() {
  int i = 0;
  for (;;) {
    if (i > 2) { break; }
    i = i + 1;
  }
})");
  Cfg G = H.build();
  bool SawNullCond = false;
  for (size_t B = 0; B < G.numBlocks(); ++B) {
    const CfgBlock &Block = G.block(static_cast<int>(B));
    if (Block.Kind == CfgBlock::Term::Branch && Block.Cond == nullptr)
      SawNullCond = true;
  }
  // The condition-less for still lowers to a Branch terminator (the runtime
  // instruments it as constant true), with Cond == nullptr.
  EXPECT_TRUE(SawNullCond);
}

TEST(CfgTest, RpoVisitsReachableBlocksExactlyOnce) {
  Harness H(R"(
fn scan(int c) {
  for (int i = 0; i < 4; i = i + 1) {
    if (c == i) { continue; }
    println(i);
  }
  return 0;
}
fn main() { scan(nargs()); }
)");
  Cfg G = H.build("scan");
  std::vector<int> Seen(G.numBlocks(), 0);
  for (int B : G.rpo()) {
    EXPECT_TRUE(G.reachable(B));
    ++Seen[static_cast<size_t>(B)];
  }
  for (size_t B = 0; B < G.numBlocks(); ++B)
    EXPECT_EQ(Seen[B], G.reachable(static_cast<int>(B)) ? 1 : 0) << B;
}
