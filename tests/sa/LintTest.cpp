//===- tests/sa/LintTest.cpp - Static findings rendering tests ------------===//

#include "sa/Lint.h"

#include "lang/Sema.h"
#include "subjects/Subjects.h"

#include <gtest/gtest.h>

#include <map>

using namespace sbi;

namespace {

LintReport lintSource(std::string_view Source) {
  std::vector<Diagnostic> Diags;
  auto Prog = parseAndAnalyze(Source, Diags);
  EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
  return runLint(*Prog);
}

bool hasFinding(const LintReport &Report, LintKind Kind,
                const std::string &MessageFragment) {
  for (const LintFinding &F : Report.Findings)
    if (F.Kind == Kind &&
        F.Message.find(MessageFragment) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(LintTest, CleanProgramHasNoFindings) {
  LintReport Report = lintSource(R"(fn main() {
  int c = nargs();
  int x = 0;
  if (c > 0) { x = 1; }
  println(x);
})");
  EXPECT_TRUE(Report.Findings.empty()) << Report.summary();
}

TEST(LintTest, DeadFunctionIsReported) {
  LintReport Report = lintSource(R"(
fn orphan() { return 1; }
fn main() { println(0); }
)");
  EXPECT_GE(Report.count(LintKind::DeadCode), 1u) << Report.summary();
  EXPECT_TRUE(hasFinding(Report, LintKind::DeadCode, "orphan"));
}

TEST(LintTest, ConstantBranchIsReported) {
  LintReport Report = lintSource(R"(fn main() {
  int x = 5;
  if (x > 3) { println(1); }
})");
  EXPECT_EQ(Report.count(LintKind::ConstantBranch), 1u) << Report.summary();
  EXPECT_TRUE(hasFinding(Report, LintKind::ConstantBranch, "x > 3"));
}

TEST(LintTest, FindingsAreSortedByLine) {
  LintReport Report = lintSource(R"(fn main() {
  int a = 1;
  if (a == 1) { println(1); }
  int b = 2;
  if (b == 2) { println(2); }
})");
  EXPECT_GE(Report.Findings.size(), 2u);
  for (size_t I = 1; I < Report.Findings.size(); ++I)
    EXPECT_LE(Report.Findings[I - 1].Line, Report.Findings[I].Line);
}

TEST(LintTest, SummaryCountsEveryKind) {
  LintReport Report = lintSource(R"(
fn orphan() { return 1; }
fn main() {
  int x = 5;
  if (x > 3) { println(1); }
}
)");
  size_t Total = Report.count(LintKind::DeadCode) +
                 Report.count(LintKind::ConstantBranch) +
                 Report.count(LintKind::UnreachableReturn) +
                 Report.count(LintKind::UseBeforeInit);
  EXPECT_EQ(Total, Report.Findings.size());
  EXPECT_NE(Report.summary().find("findings"), std::string::npos);
}

TEST(LintTest, HumanRenderingIsOneLinePerFinding) {
  LintReport Report = lintSource(R"(fn main() {
  int x = 5;
  if (x > 3) { println(1); }
})");
  std::string Human = renderLintHuman("demo", Report);
  // Header line plus one "  [kind] func:line: message" line per finding.
  size_t Lines = 0;
  for (char C : Human)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 1 + Report.Findings.size());
  EXPECT_NE(Human.find("demo:"), std::string::npos);
  EXPECT_NE(Human.find("[constant-branch]"), std::string::npos);
}

TEST(LintTest, JsonRenderingIsDeterministicAndEscaped) {
  LintReport Report = lintSource(R"(fn main() {
  int x = 5;
  if (x > 3) { println(1); }
})");
  std::string A = renderLintJson("demo", Report);
  std::string B = renderLintJson("demo", Report);
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("\"subject\": \"demo\""), std::string::npos);
  EXPECT_NE(A.find("\"num_findings\": 1"), std::string::npos);
  EXPECT_NE(A.find("\"constant-branch\": 1"), std::string::npos);
}

TEST(LintTest, SubjectFindingCountsAreStable) {
  // The CI smoke job greps these exact summary lines; a change here is a
  // deliberate analysis-precision change and should update both.
  std::map<std::string, size_t> Expected = {{"moss", 1},
                                            {"ccrypt", 0},
                                            {"bc", 0},
                                            {"exif", 0},
                                            {"rhythmbox", 0}};
  for (const Subject *Subj : allSubjects()) {
    std::vector<Diagnostic> Diags;
    auto Prog = parseAndAnalyze(Subj->Source, Diags);
    ASSERT_TRUE(Prog != nullptr) << Subj->Name;
    LintReport Report = runLint(*Prog);
    ASSERT_TRUE(Expected.count(Subj->Name)) << Subj->Name;
    EXPECT_EQ(Report.Findings.size(), Expected[Subj->Name])
        << Subj->Name << ": " << Report.summary();
  }
}
