//===- tests/sa/PruneTest.cpp - Conservative site classification tests ----===//

#include "sa/Prune.h"

#include "lang/Sema.h"
#include "subjects/Subjects.h"

#include <gtest/gtest.h>

using namespace sbi;

namespace {

struct Harness {
  std::unique_ptr<Program> Prog;
  SiteTable Sites;
  PruneResult Prune;

  explicit Harness(std::string_view Source) {
    std::vector<Diagnostic> Diags;
    Prog = parseAndAnalyze(Source, Diags);
    EXPECT_TRUE(Prog != nullptr) << renderDiagnostics(Diags);
    Sites = SiteTable::build(*Prog);
    Prune = computePrune(*Prog, Sites);
    EXPECT_EQ(Prune.numSites(), Sites.numSites());
  }

  /// The classification of the unique branch site whose condition prints
  /// as \p CondText.
  const SitePruneInfo &branchSite(const std::string &CondText) {
    static SitePruneInfo Missing;
    for (uint32_t S = 0; S < Sites.numSites(); ++S) {
      const SiteInfo &Info = Sites.site(S);
      if (Info.SchemeKind != Scheme::Branches)
        continue;
      // Branch sites have two predicates: "<cond> is TRUE" then "is FALSE".
      const PredicateInfo &True = Sites.predicate(Info.FirstPredicate);
      if (True.Text == CondText + " is TRUE")
        return Prune.Sites[S];
    }
    ADD_FAILURE() << "no branch site with condition: " << CondText;
    return Missing;
  }
};

} // namespace

TEST(PruneTest, InputDependentBranchStaysLive) {
  Harness H("fn main() { int c = nargs(); if (c > 0) { println(1); } }");
  EXPECT_EQ(H.branchSite("c > 0").Class, SiteClass::Live);
  EXPECT_EQ(H.Prune.numLive() + H.Prune.numUnreachable() +
                H.Prune.numConstant(),
            H.Prune.numSites());
}

TEST(PruneTest, ConstantTrueBranchIsConstantOutcome) {
  Harness H(R"(fn main() {
  int x = 3;
  if (x > 2) { println(1); }
})");
  const SitePruneInfo &Info = H.branchSite("x > 2");
  ASSERT_EQ(Info.Class, SiteClass::ConstantOutcome);
  // Predicate 0 ("is TRUE") holds on every observation; predicate 1 never.
  EXPECT_EQ(Info.AlwaysTrueMask, 0b01);
}

TEST(PruneTest, ConstantFalseBranchIsConstantOutcome) {
  Harness H(R"(fn main() {
  int x = 1;
  if (x > 2) { println(1); }
})");
  const SitePruneInfo &Info = H.branchSite("x > 2");
  ASSERT_EQ(Info.Class, SiteClass::ConstantOutcome);
  EXPECT_EQ(Info.AlwaysTrueMask, 0b10);
}

TEST(PruneTest, SitesInUncalledFunctionsAreUnreachable) {
  Harness H(R"(
fn orphan(int x) {
  if (x > 0) { return 1; }
  return 0;
}
fn main() { println(2); }
)");
  EXPECT_EQ(H.branchSite("x > 0").Class, SiteClass::Unreachable);
  EXPECT_GT(H.Prune.numUnreachable(), 0u);
}

TEST(PruneTest, SitesBehindConstantFalseGuardAreUnreachable) {
  Harness H(R"(fn main() {
  int c = nargs();
  if (0) {
    if (c > 7) { println(1); }
  }
})");
  // The outer test is ConstantOutcome (observed, always false); the inner
  // site never executes at all.
  EXPECT_EQ(H.branchSite("0").Class, SiteClass::ConstantOutcome);
  EXPECT_EQ(H.branchSite("c > 7").Class, SiteClass::Unreachable);
}

TEST(PruneTest, EnabledMaskMatchesClassification) {
  Harness H(R"(
fn orphan() { return 9; }
fn main() {
  int c = nargs();
  int x = 1;
  if (x == 1) { println(1); }
  if (c > 0) { println(2); }
})");
  std::vector<uint8_t> Mask = H.Prune.siteEnabledMask();
  ASSERT_EQ(Mask.size(), H.Prune.numSites());
  for (uint32_t S = 0; S < H.Prune.numSites(); ++S)
    EXPECT_EQ(Mask[S] != 0, !H.Prune.pruned(S)) << "site " << S;
}

TEST(PruneTest, ObservedNodeMaskCoversExactlyLiveSites) {
  Harness H(R"(fn main() {
  int c = nargs();
  int x = 1;
  if (x == 1) { println(1); }
  if (c > 0) { println(2); }
})");
  std::vector<uint8_t> Nodes =
      H.Prune.observedNodeMask(H.Prog->NumNodeIds, H.Sites);
  ASSERT_EQ(Nodes.size(), static_cast<size_t>(H.Prog->NumNodeIds));
  // A node is marked iff at least one live site is rooted there.
  for (int Node = 0; Node < H.Prog->NumNodeIds; ++Node) {
    bool AnyLive = false;
    auto Range = H.Sites.sitesForNode(Node);
    for (uint32_t S = Range.First; S < Range.First + Range.Count; ++S)
      AnyLive |= !H.Prune.pruned(S);
    EXPECT_EQ(Nodes[static_cast<size_t>(Node)] != 0, AnyLive)
        << "node " << Node;
  }
}

TEST(PruneTest, ConservativeOnDynamicInput) {
  // A branch the analysis cannot fold (intrinsic input) must stay Live even
  // though in practice one arm may dominate.
  Harness H(R"(fn main() {
  int n = nargs();
  if (n == 0) { println(1); }
})");
  EXPECT_EQ(H.branchSite("n == 0").Class, SiteClass::Live);
}

TEST(PruneTest, SubjectsKeepMajorityOfSitesLive) {
  // Real subjects are dominated by genuinely dynamic sites; pruning a
  // majority of them would signal an unsound analysis.
  for (const Subject *Subj : allSubjects()) {
    std::vector<Diagnostic> Diags;
    auto Prog = parseAndAnalyze(Subj->Source, Diags);
    ASSERT_TRUE(Prog != nullptr) << Subj->Name;
    SiteTable Sites = SiteTable::build(*Prog);
    PruneResult Prune = computePrune(*Prog, Sites);
    EXPECT_EQ(Prune.numSites(), Sites.numSites()) << Subj->Name;
    EXPECT_GT(Prune.numLive() * 2, Prune.numSites()) << Subj->Name;
  }
}
