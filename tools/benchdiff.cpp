//===- tools/benchdiff.cpp - Benchmark baseline comparator ----------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
// The CI gate of the perf-regression observatory: compares a freshly
// produced BENCH_*.json against a committed baseline from bench/baselines/
// and exits nonzero when any metric regressed beyond its threshold.
//
//   benchdiff --baseline=FILE --current=FILE [--threshold=PCT]
//             [--rule=SUBSTR:PCT]... [--ignore=SUBSTR]... [--json]
//
// Thresholds are relative and given as fractions (0.25 = 25%). Direction
// is inferred from metric leaf names (obs/BenchDiff.h); exact-match
// metrics (selection counts, bit_identical flags) fail on any change.
//
// Exit status: 0 = within thresholds, 1 = regression/change/missing
// metric, 2 = usage or I/O error.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchDiff.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace sbi;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: benchdiff --baseline=FILE --current=FILE [options]\n"
      "  --threshold=FRAC   default relative threshold (default 0.25)\n"
      "  --rule=SUBSTR:FRAC threshold for metric paths containing SUBSTR\n"
      "                     (first matching rule wins)\n"
      "  --ignore=SUBSTR    skip metric paths containing SUBSTR\n"
      "  --json             machine-readable verdicts on stdout\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

bool parseFraction(const std::string &Text, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Text.c_str(), &End);
  return End && *End == '\0' && !Text.empty() && Out >= 0.0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string BaselinePath, CurrentPath;
  BenchDiffOptions Options;
  bool Json = false;

  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto valueOf = [&](std::string_view Prefix, std::string &Out) {
      if (Arg.substr(0, Prefix.size()) != Prefix)
        return false;
      Out = std::string(Arg.substr(Prefix.size()));
      return true;
    };
    std::string Value;
    if (valueOf("--baseline=", BaselinePath) ||
        valueOf("--current=", CurrentPath)) {
      continue;
    } else if (valueOf("--threshold=", Value)) {
      if (!parseFraction(Value, Options.DefaultThreshold)) {
        std::fprintf(stderr, "benchdiff: bad --threshold value '%s'\n",
                     Value.c_str());
        return usage();
      }
    } else if (valueOf("--rule=", Value)) {
      size_t Colon = Value.rfind(':');
      BenchDiffOptions::Rule Rule;
      if (Colon == std::string::npos || Colon == 0 ||
          !parseFraction(Value.substr(Colon + 1), Rule.Threshold)) {
        std::fprintf(stderr,
                     "benchdiff: bad --rule value '%s' (want SUBSTR:FRAC)\n",
                     Value.c_str());
        return usage();
      }
      Rule.PathSubstr = Value.substr(0, Colon);
      Options.Rules.push_back(std::move(Rule));
    } else if (valueOf("--ignore=", Value)) {
      Options.Ignore.push_back(Value);
    } else if (Arg == "--json") {
      Json = true;
    } else {
      std::fprintf(stderr, "benchdiff: unknown option '%s'\n", Argv[I]);
      return usage();
    }
  }
  if (BaselinePath.empty() || CurrentPath.empty())
    return usage();

  std::string Baseline, Current;
  if (!readFile(BaselinePath, Baseline)) {
    std::fprintf(stderr, "benchdiff: cannot open '%s'\n",
                 BaselinePath.c_str());
    return 2;
  }
  if (!readFile(CurrentPath, Current)) {
    std::fprintf(stderr, "benchdiff: cannot open '%s'\n",
                 CurrentPath.c_str());
    return 2;
  }

  BenchDiffResult Result;
  std::string Error;
  if (!diffBenchJson(Baseline, Current, Options, Result, Error)) {
    std::fprintf(stderr, "benchdiff: %s\n", Error.c_str());
    return 2;
  }

  if (Json)
    std::printf("%s", renderBenchDiffJson(Result).c_str());
  else
    std::printf("%s", renderBenchDiff(Result).c_str());
  return Result.failed() ? 1 : 0;
}
