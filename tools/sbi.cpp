//===- tools/sbi.cpp - Command-line statistical debugger ------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
// The command-line face of the library:
//
//   sbi subjects
//       List the bundled study subjects and their seeded bugs.
//
//   sbi run --subject=NAME [--runs=N] [--seed=S]
//           [--sampling=adaptive|none|uniform:RATE] [--out=FILE]
//       Run a feedback-collection campaign; write the labeled reports to
//       FILE (default: <subject>.reports).
//
//   sbi analyze --subject=NAME [--in=FILE] [--runs=N] [--seed=S]
//               [--policy=all|failing|relabel] [--top=K] [--affinity]
//               [--bugs]
//       Isolate causes. Reads reports from FILE if given, otherwise runs
//       a fresh campaign. --bugs appends ground-truth columns (the seeded
//       subjects record which bug actually occurred per run).
//
//   sbi logreg --subject=NAME [--in=FILE] [--runs=N] [--top=K]
//       The Section 4.4 baseline: l1-regularized logistic regression.
//
//   sbi report --subject=NAME [--in=FILE] [--runs=N] [--seed=S]
//              [--out=FILE] [--top=K] [--bugs]
//       Write the analysis as a self-contained HTML page (the paper's
//       "interactive version of our analysis tools").
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/HtmlReport.h"
#include "harness/Tables.h"
#include "logreg/LogReg.h"
#include "obs/Telemetry.h"
#include "support/StringUtils.h"
#include "support/Thermometer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace sbi;

namespace {

struct CliArgs {
  std::string Command;
  std::string SubjectName;
  std::string InFile;
  std::string OutFile;
  std::string Sampling = "adaptive";
  std::string Policy = "all";
  std::string Engine = "incremental";
  std::string MetricsOut;
  size_t Runs = 4000;
  uint64_t Seed = 20050612;
  size_t Top = 20;
  size_t Threads = 0; // 0 = one per hardware thread.
  bool ShowAffinity = false;
  bool ShowBugs = false;
  bool Trace = false;
  bool ShowProgress = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sbi <command> [options]\n"
      "  subjects\n"
      "  run     --subject=NAME [--runs=N] [--seed=S]\n"
      "          [--sampling=adaptive|none|uniform:RATE] [--out=FILE]\n"
      "  analyze --subject=NAME [--in=FILE] [--runs=N] [--seed=S]\n"
      "          [--policy=all|failing|relabel] [--top=K] [--affinity] "
      "[--bugs]\n"
      "          [--analysis-engine=rescan|incremental] [--trace]\n"
      "  logreg  --subject=NAME [--in=FILE] [--runs=N] [--top=K]\n"
      "  report  --subject=NAME [--in=FILE] [--out=FILE] [--top=K] "
      "[--bugs]\n"
      "common options (any command that runs a campaign):\n"
      "  --threads=N        worker threads for the run loop; 0 = one per\n"
      "                     hardware thread (default; results are\n"
      "                     bit-identical for any N)\n"
      "  --metrics-out=FILE enable telemetry and write the metrics\n"
      "                     registry as JSON on exit\n"
      "  --trace            (analyze) print the iteration-by-iteration\n"
      "                     elimination audit trail\n"
      "  --progress         live progress bar on stderr during the run\n"
      "                     loop\n");
  return 2;
}

bool parseArgs(int Argc, char **Argv, CliArgs &Args) {
  if (Argc < 2)
    return false;
  Args.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto valueOf = [&](std::string_view Prefix,
                       std::string &Out) {
      if (Arg.substr(0, Prefix.size()) != Prefix)
        return false;
      Out = std::string(Arg.substr(Prefix.size()));
      return true;
    };
    std::string Value;
    if (valueOf("--subject=", Args.SubjectName) ||
        valueOf("--in=", Args.InFile) || valueOf("--out=", Args.OutFile) ||
        valueOf("--sampling=", Args.Sampling) ||
        valueOf("--policy=", Args.Policy) ||
        valueOf("--analysis-engine=", Args.Engine) ||
        valueOf("--metrics-out=", Args.MetricsOut))
      continue;
    if (valueOf("--runs=", Value)) {
      Args.Runs = static_cast<size_t>(std::strtoull(Value.c_str(), nullptr,
                                                    10));
    } else if (valueOf("--seed=", Value)) {
      Args.Seed = std::strtoull(Value.c_str(), nullptr, 10);
    } else if (valueOf("--top=", Value)) {
      Args.Top = static_cast<size_t>(std::strtoull(Value.c_str(), nullptr,
                                                   10));
    } else if (valueOf("--threads=", Value)) {
      Args.Threads = static_cast<size_t>(
          std::strtoull(Value.c_str(), nullptr, 10));
    } else if (Arg == "--affinity") {
      Args.ShowAffinity = true;
    } else if (Arg == "--bugs") {
      Args.ShowBugs = true;
    } else if (Arg == "--trace") {
      Args.Trace = true;
    } else if (Arg == "--progress") {
      Args.ShowProgress = true;
    } else {
      std::fprintf(stderr, "sbi: unknown option '%s'\n", Argv[I]);
      return false;
    }
  }
  return true;
}

int cmdSubjects() {
  for (const Subject *Subj : allSubjects()) {
    std::printf("%s  (%s-labeled)\n", Subj->Name.c_str(),
                Subj->UseOutputOracle ? "oracle" : "crash");
    for (const BugSpec &Bug : Subj->Bugs)
      std::printf("  #%d  %-26s  %s\n", Bug.Id, Bug.Kind.c_str(),
                  Bug.Description.c_str());
  }
  return 0;
}

bool configureCampaign(const CliArgs &Args, CampaignOptions &Options) {
  Options.NumRuns = Args.Runs;
  Options.Seed = Args.Seed;
  Options.Threads = Args.Threads;
  if (Args.ShowProgress) {
    // Reuses the bug-thermometer renderer as a progress bar: the '#' band
    // is the completed fraction of a full-length bar. Called from worker
    // threads; one fprintf per call keeps the line updates atomic enough.
    Options.Progress = [](size_t Done, size_t Total) {
      ThermometerSpec Spec;
      Spec.Context = static_cast<double>(Done) / static_cast<double>(Total);
      Spec.RunsObservedTrue = Total;
      std::fprintf(stderr, "\r%s %zu/%zu%s",
                   renderThermometer(Spec, 40, Total).c_str(), Done, Total,
                   Done == Total ? "\n" : "");
    };
  }
  if (Args.Sampling == "adaptive") {
    Options.Mode = SamplingMode::Adaptive;
  } else if (Args.Sampling == "none") {
    Options.Mode = SamplingMode::None;
  } else if (Args.Sampling.rfind("uniform:", 0) == 0) {
    Options.Mode = SamplingMode::Uniform;
    Options.UniformRate = std::strtod(Args.Sampling.c_str() + 8, nullptr);
  } else {
    std::fprintf(stderr, "sbi: bad --sampling value '%s'\n",
                 Args.Sampling.c_str());
    return false;
  }
  return true;
}

/// Runs a campaign or loads reports; either way yields a site table (from
/// the subject's source, which is deterministic) and a report set.
bool obtainReports(const CliArgs &Args, CampaignResult &Result) {
  const Subject *Subj = findSubject(Args.SubjectName);
  if (!Subj) {
    std::fprintf(stderr, "sbi: unknown subject '%s' (try 'sbi subjects')\n",
                 Args.SubjectName.c_str());
    return false;
  }
  if (Args.InFile.empty()) {
    CampaignOptions Options;
    if (!configureCampaign(Args, Options))
      return false;
    std::fprintf(stderr, "sbi: running %zu '%s' inputs...\n", Args.Runs,
                 Subj->Name.c_str());
    Result = runCampaign(*Subj, Options);
    return true;
  }
  // Load reports; rebuild only the static site table.
  Result.Subj = Subj;
  Result.Prog = compileSubjectSource(Subj->Source, Subj->Name);
  Result.Sites = SiteTable::build(*Result.Prog);
  std::ifstream In(Args.InFile);
  if (!In) {
    std::fprintf(stderr, "sbi: cannot open '%s'\n", Args.InFile.c_str());
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  if (!ReportSet::deserialize(Buffer.str(), Result.Reports)) {
    std::fprintf(stderr, "sbi: '%s' is not a valid report file\n",
                 Args.InFile.c_str());
    return false;
  }
  if (Result.Reports.numPredicates() != Result.Sites.numPredicates()) {
    std::fprintf(stderr,
                 "sbi: report file does not match subject '%s' (%u vs %u "
                 "predicates)\n",
                 Subj->Name.c_str(), Result.Reports.numPredicates(),
                 Result.Sites.numPredicates());
    return false;
  }
  return true;
}

int cmdRun(const CliArgs &Args) {
  CampaignResult Result;
  if (!obtainReports(Args, Result))
    return 1;
  std::string OutFile =
      Args.OutFile.empty() ? Result.Subj->Name + ".reports" : Args.OutFile;
  std::ofstream Out(OutFile);
  if (!Out) {
    std::fprintf(stderr, "sbi: cannot write '%s'\n", OutFile.c_str());
    return 1;
  }
  Out << Result.Reports.serialize();
  std::printf("wrote %zu reports (%zu failing, %zu successful) to %s\n",
              Result.Reports.size(), Result.numFailing(),
              Result.numSuccessful(), OutFile.c_str());
  return 0;
}

/// Resolves --analysis-engine; returns false (after complaining) on a bad
/// value.
bool configureEngine(const CliArgs &Args, AnalysisOptions &Options) {
  if (Args.Engine == "incremental")
    Options.Engine = AnalysisEngine::Incremental;
  else if (Args.Engine == "rescan")
    Options.Engine = AnalysisEngine::Rescan;
  else {
    std::fprintf(stderr, "sbi: bad --analysis-engine value '%s'\n",
                 Args.Engine.c_str());
    return false;
  }
  return true;
}

int cmdAnalyze(const CliArgs &Args) {
  CampaignResult Result;
  if (!obtainReports(Args, Result))
    return 1;

  AnalysisOptions Options;
  if (!configureEngine(Args, Options))
    return 1;
  if (Args.Policy == "all")
    Options.Policy = DiscardPolicy::DiscardAllRuns;
  else if (Args.Policy == "failing")
    Options.Policy = DiscardPolicy::DiscardFailingRuns;
  else if (Args.Policy == "relabel")
    Options.Policy = DiscardPolicy::RelabelFailingRuns;
  else {
    std::fprintf(stderr, "sbi: bad --policy value '%s'\n",
                 Args.Policy.c_str());
    return 1;
  }

  CauseIsolator Isolator(Result.Sites, Result.Reports, Options);
  AnalysisResult Analysis = Isolator.run();
  std::printf("%zu reports (%zu failing); %u predicates -> %zu survive "
              "Increase>0 -> %zu selected\n\n",
              Result.Reports.size(), Result.numFailing(),
              Result.Sites.numPredicates(),
              Analysis.PrunedSurvivors.size(), Analysis.Selected.size());

  if (Args.Trace)
    std::printf("%s\n", renderAuditTrail(Result.Sites, Analysis).c_str());

  std::vector<int> BugIds;
  if (Args.ShowBugs && Result.Subj)
    for (const BugSpec &Bug : Result.Subj->Bugs)
      BugIds.push_back(Bug.Id);
  std::printf("%s\n", renderSelectedList(Result.Sites, Result.Reports,
                                         Analysis.Selected, BugIds,
                                         Args.Top)
                          .c_str());

  if (Args.ShowAffinity)
    for (size_t I = 0; I < Analysis.Selected.size() && I < Args.Top; ++I)
      std::printf("%s", renderAffinity(Result.Sites, Analysis.Selected[I])
                            .c_str());
  return 0;
}

int cmdLogReg(const CliArgs &Args) {
  CampaignResult Result;
  if (!obtainReports(Args, Result))
    return 1;
  LogRegModel Model = trainForSparsity(
      Result.Reports, /*MaxActive=*/static_cast<int>(Args.Top) * 3,
      {0.05, 0.02, 0.01, 0.005, 0.002});
  std::printf("trained: %d nonzero weights (%d iterations)\n\n",
              Model.numNonzero(), Model.Iterations);
  std::printf("%-12s %s\n", "Coefficient", "Predicate");
  for (const auto &[Pred, Weight] : Model.topByMagnitude(Args.Top))
    std::printf("%12.6f %s\n", Weight,
                predicateLabel(Result.Sites, Pred).c_str());
  return 0;
}

int cmdReport(const CliArgs &Args) {
  CampaignResult Result;
  if (!obtainReports(Args, Result))
    return 1;
  AnalysisOptions AnalyzeOptions;
  if (!configureEngine(Args, AnalyzeOptions))
    return 1;
  CauseIsolator Isolator(Result.Sites, Result.Reports, AnalyzeOptions);
  AnalysisResult Analysis = Isolator.run();

  HtmlReportOptions Options;
  Options.TopK = Args.Top;
  Options.ShowGroundTruth = Args.ShowBugs;
  std::string Html = renderHtmlReport(Result, Analysis, Options);

  std::string OutFile = Args.OutFile.empty()
                            ? Result.Subj->Name + ".report.html"
                            : Args.OutFile;
  std::ofstream Out(OutFile);
  if (!Out) {
    std::fprintf(stderr, "sbi: cannot write '%s'\n", OutFile.c_str());
    return 1;
  }
  Out << Html;
  std::printf("wrote %zu selected predictors to %s\n",
              Analysis.Selected.size(), OutFile.c_str());
  return 0;
}

int dispatch(const CliArgs &Args) {
  if (Args.Command == "subjects")
    return cmdSubjects();
  if (Args.Command == "run")
    return cmdRun(Args);
  if (Args.Command == "analyze")
    return cmdAnalyze(Args);
  if (Args.Command == "logreg")
    return cmdLogReg(Args);
  if (Args.Command == "report")
    return cmdReport(Args);
  std::fprintf(stderr, "sbi: unknown command '%s'\n", Args.Command.c_str());
  return usage();
}

} // namespace

int main(int Argc, char **Argv) {
  CliArgs Args;
  if (!parseArgs(Argc, Argv, Args))
    return usage();
  if (!Args.MetricsOut.empty())
    Telemetry::setEnabled(true);
  int Code = dispatch(Args);
  if (!Args.MetricsOut.empty() &&
      !Telemetry::writeJson(Args.MetricsOut)) {
    std::fprintf(stderr, "sbi: cannot write metrics to '%s'\n",
                 Args.MetricsOut.c_str());
    if (Code == 0)
      Code = 1;
  }
  return Code;
}
