//===- tools/sbi.cpp - Command-line statistical debugger ------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
// The command-line face of the library:
//
//   sbi subjects
//       List the bundled study subjects and their seeded bugs.
//
//   sbi run --subject=NAME [--runs=N] [--seed=S]
//           [--sampling=adaptive|none|uniform:RATE] [--out=FILE]
//       Run a feedback-collection campaign; write the labeled reports to
//       FILE (default: <subject>.reports).
//
//   sbi analyze --subject=NAME [--in=FILE] [--runs=N] [--seed=S]
//               [--policy=all|failing|relabel] [--top=K] [--affinity]
//               [--bugs]
//       Isolate causes. Reads reports from FILE if given, otherwise runs
//       a fresh campaign. --bugs appends ground-truth columns (the seeded
//       subjects record which bug actually occurred per run).
//
//   sbi logreg --subject=NAME [--in=FILE] [--runs=N] [--top=K]
//       The Section 4.4 baseline: l1-regularized logistic regression.
//
//   sbi report --subject=NAME [--in=FILE] [--runs=N] [--seed=S]
//              [--out=FILE] [--top=K] [--bugs]
//       Write the analysis as a self-contained HTML page (the paper's
//       "interactive version of our analysis tools").
//
//   sbi corpus <convert|info|merge|validate> ...
//       Maintain SBI-CORPUS v2 binary sharded corpora (feedback/Corpus.h).
//       `run --corpus=DIR` spills a campaign straight into shards;
//       `analyze --corpus=DIR` streams them back without materializing a
//       ReportSet.
//
//   sbi lint [--subject=NAME] [--json]
//       Static findings (src/sa) over one subject or all of them: dead
//       code, constant branches, unreachable returns, use-before-init.
//
//   sbi trace summarize --in=FILE [--top=K] [--json]
//       Top spans by self-time from a --trace-out Perfetto trace.
//
//   `run`/`analyze --static-prune` classifies sites with the same analysis
//   and instruments only the Live ones; retained-predicate rankings are
//   bit-identical to the unpruned pipeline at the same seed.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "feedback/Corpus.h"
#include "harness/Campaign.h"
#include "harness/HtmlReport.h"
#include "harness/Tables.h"
#include "logreg/LogReg.h"
#include "obs/Telemetry.h"
#include "obs/TraceSink.h"
#include "obs/TraceSummary.h"
#include "obs/Tracer.h"
#include "sa/Lint.h"
#include "sa/Prune.h"
#include "sa/Verify.h"
#include "support/StringUtils.h"
#include "support/Thermometer.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace sbi;

namespace {

struct CliArgs {
  std::string Command;
  std::string SubCommand; // corpus verb: convert|info|merge|validate.
  std::string SubjectName;
  std::string InFile;
  std::string OutFile;
  std::string CorpusDir;
  std::string Sampling = "adaptive";
  std::string Policy = "all";
  std::string Engine = "incremental";
  std::string ExecEngine = "interp";
  std::string MetricsOut;
  std::string TraceOut;
  std::vector<std::string> Inputs; // Positional args (corpus merge dirs).
  size_t Runs = 4000;
  uint64_t Seed = 20050612;
  size_t Top = 20;
  size_t Threads = 0;            // 0 = one per hardware thread.
  size_t ShardReports = 1024;    // Reports per shard for corpus writers.
  bool ShowAffinity = false;
  bool ShowBugs = false;
  bool Trace = false;
  bool ShowProgress = false;
  bool StaticPrune = false;
  bool Json = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: sbi <command> [options]\n"
      "  subjects\n"
      "  run     --subject=NAME [--runs=N] [--seed=S]\n"
      "          [--sampling=adaptive|none|uniform:RATE] [--out=FILE]\n"
      "          [--static-prune] [--engine=interp|vm]\n"
      "  analyze --subject=NAME [--in=FILE] [--runs=N] [--seed=S]\n"
      "          [--policy=all|failing|relabel] [--top=K] [--affinity] "
      "[--bugs]\n"
      "          [--analysis-engine=rescan|incremental|bitset] "
      "[--static-prune]\n"
      "          [--trace] [--engine=interp|vm]\n"
      "  logreg  --subject=NAME [--in=FILE] [--runs=N] [--top=K]\n"
      "  report  --subject=NAME [--in=FILE] [--out=FILE] [--top=K] "
      "[--bugs]\n"
      "  lint    [--subject=NAME] [--json]\n"
      "  trace   summarize --in=FILE [--top=K] [--json]\n"
      "  corpus  convert  --in=REPORTS --out=DIR [--shard-reports=N]\n"
      "          info     DIR\n"
      "          merge    --out=DIR DIR... [--shard-reports=N]\n"
      "          validate DIR\n"
      "corpus options:\n"
      "  --corpus=DIR       (run) spill reports into an SBI-CORPUS v2\n"
      "                     shard directory instead of a v1 text file;\n"
      "                     (analyze) stream reports back from DIR without\n"
      "                     materializing them in memory\n"
      "  --shard-reports=N  reports per shard when writing (default 1024)\n"
      "common options (any command that runs a campaign):\n"
      "  --threads=N        worker threads for the run loop; 0 = one per\n"
      "                     hardware thread (default; results are\n"
      "                     bit-identical for any N)\n"
      "  --engine=E         execution engine for the subject's runs:\n"
      "                     'interp' (tree-walking reference, default) or\n"
      "                     'vm' (bytecode VM); outcomes, predicate\n"
      "                     counts, and analysis results are identical\n"
      "                     either way (crash backtrace frame labels may\n"
      "                     name different AST nodes)\n"
      "  --metrics-out=FILE enable telemetry and write the metrics\n"
      "                     registry as JSON on exit\n"
      "  --trace            (analyze) print the iteration-by-iteration\n"
      "                     elimination audit trail as text; unrelated to\n"
      "                     --trace-out\n"
      "  --trace-out=FILE   (run/analyze) record timing spans and write\n"
      "                     them as Chrome trace_event JSON on exit; load\n"
      "                     in Perfetto / chrome://tracing, or summarize\n"
      "                     with 'sbi trace summarize --in=FILE'\n"
      "  --static-prune     (run/analyze) statically classify sites and\n"
      "                     instrument only the Live ones; site ids are\n"
      "                     not renumbered, so reports and rankings stay\n"
      "                     comparable with unpruned campaigns\n"
      "  --json             (lint) machine-readable findings\n"
      "  --progress         live progress bar on stderr during the run\n"
      "                     loop\n");
  return 2;
}

bool parseArgs(int Argc, char **Argv, CliArgs &Args) {
  if (Argc < 2)
    return false;
  Args.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    auto valueOf = [&](std::string_view Prefix,
                       std::string &Out) {
      if (Arg.substr(0, Prefix.size()) != Prefix)
        return false;
      Out = std::string(Arg.substr(Prefix.size()));
      return true;
    };
    // Strict full-consumption parse: "--runs=abc" and "--runs=40x" are
    // errors, not silent zeros (the strtoull they replace accepted both).
    auto numberOf = [&](std::string_view Prefix, uint64_t &Out,
                        bool &Failed) {
      std::string Value;
      if (!valueOf(Prefix, Value))
        return false;
      if (!parseUnsigned(Value, Out)) {
        std::fprintf(stderr,
                     "sbi: bad value '%s' for %.*s: expected an unsigned "
                     "decimal integer\n",
                     Value.c_str(), static_cast<int>(Prefix.size() - 1),
                     Prefix.data());
        Failed = true;
      }
      return true;
    };
    if (valueOf("--subject=", Args.SubjectName) ||
        valueOf("--in=", Args.InFile) || valueOf("--out=", Args.OutFile) ||
        valueOf("--corpus=", Args.CorpusDir) ||
        valueOf("--sampling=", Args.Sampling) ||
        valueOf("--policy=", Args.Policy) ||
        valueOf("--analysis-engine=", Args.Engine) ||
        valueOf("--engine=", Args.ExecEngine) ||
        valueOf("--metrics-out=", Args.MetricsOut) ||
        valueOf("--trace-out=", Args.TraceOut))
      continue;
    bool BadNumber = false;
    uint64_t Number = 0;
    if (numberOf("--runs=", Number, BadNumber)) {
      if (BadNumber)
        return false;
      Args.Runs = static_cast<size_t>(Number);
    } else if (numberOf("--seed=", Number, BadNumber)) {
      if (BadNumber)
        return false;
      Args.Seed = Number;
    } else if (numberOf("--top=", Number, BadNumber)) {
      if (BadNumber)
        return false;
      Args.Top = static_cast<size_t>(Number);
    } else if (numberOf("--threads=", Number, BadNumber)) {
      if (BadNumber)
        return false;
      Args.Threads = static_cast<size_t>(Number);
    } else if (numberOf("--shard-reports=", Number, BadNumber)) {
      if (BadNumber)
        return false;
      if (Number == 0 || Number > UINT32_MAX) {
        std::fprintf(stderr,
                     "sbi: --shard-reports must be between 1 and 2^32-1\n");
        return false;
      }
      Args.ShardReports = static_cast<size_t>(Number);
    } else if (!startsWith(Arg, "--")) {
      // Positional operands: the corpus/trace verb and its operands.
      if (Args.Command == "corpus" || Args.Command == "trace") {
        if (Args.SubCommand.empty())
          Args.SubCommand = std::string(Arg);
        else
          Args.Inputs.emplace_back(Arg);
        continue;
      }
      std::fprintf(stderr, "sbi: unexpected argument '%s'\n", Argv[I]);
      return false;
    } else if (Arg == "--affinity") {
      Args.ShowAffinity = true;
    } else if (Arg == "--bugs") {
      Args.ShowBugs = true;
    } else if (Arg == "--trace") {
      Args.Trace = true;
    } else if (Arg == "--static-prune") {
      Args.StaticPrune = true;
    } else if (Arg == "--json") {
      Args.Json = true;
    } else if (Arg == "--progress") {
      Args.ShowProgress = true;
    } else {
      std::fprintf(stderr, "sbi: unknown option '%s'\n", Argv[I]);
      // The two tracing flags are easy to cross: --trace is the textual
      // elimination audit trail, --trace-out=FILE records Perfetto spans.
      if (startsWith(Arg, "--trace"))
        std::fprintf(stderr,
                     "sbi: did you mean --trace (print the elimination "
                     "audit trail) or --trace-out=FILE (write Perfetto "
                     "spans)?\n");
      return false;
    }
  }
  return true;
}

/// One-line prune summary for a campaign that ran with --static-prune.
void printPruneSummary(const CampaignResult &Result) {
  if (!Result.StaticPruned)
    return;
  std::fprintf(stderr,
               "sbi: static prune: %u/%u sites pruned "
               "(%u unreachable, %u constant-outcome, %u live)\n",
               Result.Prune.numPruned(), Result.Prune.numSites(),
               Result.Prune.numUnreachable(), Result.Prune.numConstant(),
               Result.Prune.numLive());
}

int cmdSubjects() {
  for (const Subject *Subj : allSubjects()) {
    std::printf("%s  (%s-labeled)\n", Subj->Name.c_str(),
                Subj->UseOutputOracle ? "oracle" : "crash");
    for (const BugSpec &Bug : Subj->Bugs)
      std::printf("  #%d  %-26s  %s\n", Bug.Id, Bug.Kind.c_str(),
                  Bug.Description.c_str());
  }
  return 0;
}

bool configureCampaign(const CliArgs &Args, CampaignOptions &Options) {
  Options.NumRuns = Args.Runs;
  Options.Seed = Args.Seed;
  Options.Threads = Args.Threads;
  Options.StaticPrune = Args.StaticPrune;
  if (Args.ExecEngine == "interp") {
    Options.Exec = Engine::Interpreter;
  } else if (Args.ExecEngine == "vm") {
    Options.Exec = Engine::VM;
  } else {
    std::fprintf(stderr, "sbi: bad --engine value '%s' (want interp|vm)\n",
                 Args.ExecEngine.c_str());
    return false;
  }
  if (Args.ShowProgress) {
    // Reuses the bug-thermometer renderer as a progress bar: the '#' band
    // is the completed fraction of a full-length bar. Called from worker
    // threads; one fprintf per call keeps the line updates atomic enough.
    Options.Progress = [](size_t Done, size_t Total) {
      ThermometerSpec Spec;
      Spec.Context = static_cast<double>(Done) / static_cast<double>(Total);
      Spec.RunsObservedTrue = Total;
      std::fprintf(stderr, "\r%s %zu/%zu%s",
                   renderThermometer(Spec, 40, Total).c_str(), Done, Total,
                   Done == Total ? "\n" : "");
    };
  }
  if (Args.Sampling == "adaptive") {
    Options.Mode = SamplingMode::Adaptive;
  } else if (Args.Sampling == "none") {
    Options.Mode = SamplingMode::None;
  } else if (Args.Sampling.rfind("uniform:", 0) == 0) {
    Options.Mode = SamplingMode::Uniform;
    Options.UniformRate = std::strtod(Args.Sampling.c_str() + 8, nullptr);
  } else {
    std::fprintf(stderr, "sbi: bad --sampling value '%s'\n",
                 Args.Sampling.c_str());
    return false;
  }
  return true;
}

/// Runs a campaign or loads reports; either way yields a site table (from
/// the subject's source, which is deterministic) and a report set.
bool obtainReports(const CliArgs &Args, CampaignResult &Result) {
  const Subject *Subj = findSubject(Args.SubjectName);
  if (!Subj) {
    std::fprintf(stderr, "sbi: unknown subject '%s' (try 'sbi subjects')\n",
                 Args.SubjectName.c_str());
    return false;
  }
  if (Args.InFile.empty()) {
    CampaignOptions Options;
    if (!configureCampaign(Args, Options))
      return false;
    std::fprintf(stderr, "sbi: running %zu '%s' inputs...\n", Args.Runs,
                 Subj->Name.c_str());
    Result = runCampaign(*Subj, Options);
    printPruneSummary(Result);
    return true;
  }
  // Load reports; rebuild only the static site table.
  Result.Subj = Subj;
  Result.Prog = compileSubjectSource(Subj->Source, Subj->Name);
  Result.Sites = SiteTable::build(*Result.Prog);
  std::ifstream In(Args.InFile);
  if (!In) {
    std::fprintf(stderr, "sbi: cannot open '%s'\n", Args.InFile.c_str());
    return false;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  if (!ReportSet::deserialize(Buffer.str(), Result.Reports)) {
    std::fprintf(stderr, "sbi: '%s' is not a valid report file\n",
                 Args.InFile.c_str());
    return false;
  }
  if (Result.Reports.numPredicates() != Result.Sites.numPredicates()) {
    std::fprintf(stderr,
                 "sbi: report file does not match subject '%s' (%u vs %u "
                 "predicates)\n",
                 Subj->Name.c_str(), Result.Reports.numPredicates(),
                 Result.Sites.numPredicates());
    return false;
  }
  return true;
}

int cmdRun(const CliArgs &Args) {
  if (!Args.CorpusDir.empty()) {
    // Spill mode: workers flush completed reports straight into v2 shards;
    // the full ReportSet is never materialized.
    const Subject *Subj = findSubject(Args.SubjectName);
    if (!Subj) {
      std::fprintf(stderr,
                   "sbi: unknown subject '%s' (try 'sbi subjects')\n",
                   Args.SubjectName.c_str());
      return 1;
    }
    CampaignOptions Options;
    if (!configureCampaign(Args, Options))
      return 1;
    Options.SpillDir = Args.CorpusDir;
    Options.SpillShardReports = Args.ShardReports;
    std::fprintf(stderr, "sbi: running %zu '%s' inputs...\n", Args.Runs,
                 Subj->Name.c_str());
    CampaignResult Result = runCampaign(*Subj, Options);
    printPruneSummary(Result);
    std::printf("spilled %zu reports (%zu failing, %zu successful) into "
                "%zu shards (%llu bytes) under %s\n",
                Result.SpilledReports, Result.numFailing(),
                Result.numSuccessful(), Result.SpilledShards,
                static_cast<unsigned long long>(Result.SpilledBytes),
                Args.CorpusDir.c_str());
    return 0;
  }
  CampaignResult Result;
  if (!obtainReports(Args, Result))
    return 1;
  std::string OutFile =
      Args.OutFile.empty() ? Result.Subj->Name + ".reports" : Args.OutFile;
  std::ofstream Out(OutFile);
  if (!Out) {
    std::fprintf(stderr, "sbi: cannot write '%s'\n", OutFile.c_str());
    return 1;
  }
  Out << Result.Reports.serialize();
  std::printf("wrote %zu reports (%zu failing, %zu successful) to %s\n",
              Result.Reports.size(), Result.numFailing(),
              Result.numSuccessful(), OutFile.c_str());
  return 0;
}

/// Resolves --analysis-engine; returns false (after complaining) on a bad
/// value.
bool configureEngine(const CliArgs &Args, AnalysisOptions &Options) {
  if (Args.Engine == "incremental")
    Options.Engine = AnalysisEngine::Incremental;
  else if (Args.Engine == "rescan")
    Options.Engine = AnalysisEngine::Rescan;
  else if (Args.Engine == "bitset")
    Options.Engine = AnalysisEngine::Bitset;
  else {
    std::fprintf(stderr, "sbi: bad --analysis-engine value '%s'\n",
                 Args.Engine.c_str());
    return false;
  }
  return true;
}

/// Resolves --policy; returns false (after complaining) on a bad value.
bool configurePolicy(const CliArgs &Args, AnalysisOptions &Options) {
  if (Args.Policy == "all")
    Options.Policy = DiscardPolicy::DiscardAllRuns;
  else if (Args.Policy == "failing")
    Options.Policy = DiscardPolicy::DiscardFailingRuns;
  else if (Args.Policy == "relabel")
    Options.Policy = DiscardPolicy::RelabelFailingRuns;
  else {
    std::fprintf(stderr, "sbi: bad --policy value '%s'\n",
                 Args.Policy.c_str());
    return false;
  }
  return true;
}

/// Shared tail of cmdAnalyze: renders the analysis over either source
/// representation (the bug-column renderer is overloaded on it).
template <typename SourceT>
int printAnalysis(const CliArgs &Args, const SiteTable &Sites,
                  const SourceT &Source, const Subject *Subj,
                  size_t NumReports, size_t NumFailing,
                  const AnalysisResult &Analysis) {
  std::printf("%zu reports (%zu failing); %u predicates -> %zu survive "
              "Increase>0 -> %zu selected\n\n",
              NumReports, NumFailing, Sites.numPredicates(),
              Analysis.PrunedSurvivors.size(), Analysis.Selected.size());

  if (Args.Trace)
    std::printf("%s\n", renderAuditTrail(Sites, Analysis).c_str());

  std::vector<int> BugIds;
  if (Args.ShowBugs && Subj)
    for (const BugSpec &Bug : Subj->Bugs)
      BugIds.push_back(Bug.Id);
  std::printf("%s\n", renderSelectedList(Sites, Source, Analysis.Selected,
                                         BugIds, Args.Top)
                          .c_str());

  if (Args.ShowAffinity)
    for (size_t I = 0; I < Analysis.Selected.size() && I < Args.Top; ++I)
      std::printf("%s", renderAffinity(Sites, Analysis.Selected[I]).c_str());
  return 0;
}

int cmdAnalyze(const CliArgs &Args) {
  AnalysisOptions Options;
  if (!configureEngine(Args, Options) || !configurePolicy(Args, Options))
    return usage();
  Options.IndexThreads = Args.Threads;

  if (!Args.CorpusDir.empty()) {
    // Streamed path: shards decode in parallel into a compact profile
    // store; no ReportSet is ever built. Results are bit-identical to the
    // in-memory path (differential-tested).
    const Subject *Subj = findSubject(Args.SubjectName);
    if (!Subj) {
      std::fprintf(stderr,
                   "sbi: unknown subject '%s' (try 'sbi subjects')\n",
                   Args.SubjectName.c_str());
      return 1;
    }
    std::unique_ptr<Program> Prog =
        compileSubjectSource(Subj->Source, Subj->Name);
    SiteTable Sites = SiteTable::build(*Prog);
    RunProfiles Runs;
    CorpusIngestStats Stats;
    std::string Error;
    if (!ingestCorpus(Args.CorpusDir, Runs, Args.Threads, Error, &Stats)) {
      std::fprintf(stderr, "sbi: cannot ingest corpus '%s': %s\n",
                   Args.CorpusDir.c_str(), Error.c_str());
      return 1;
    }
    if (Runs.numPredicates() != Sites.numPredicates()) {
      std::fprintf(stderr,
                   "sbi: corpus does not match subject '%s' (%u vs %u "
                   "predicates)\n",
                   Subj->Name.c_str(), Runs.numPredicates(),
                   Sites.numPredicates());
      return 1;
    }
    std::fprintf(stderr,
                 "sbi: ingested %llu reports from %llu shards "
                 "(%.2f MB in %.3fs, %.1f MB/s)\n",
                 static_cast<unsigned long long>(Stats.Reports),
                 static_cast<unsigned long long>(Stats.Shards),
                 static_cast<double>(Stats.Bytes) / 1e6, Stats.Seconds,
                 Stats.Seconds > 0.0
                     ? static_cast<double>(Stats.Bytes) / 1e6 / Stats.Seconds
                     : 0.0);

    CauseIsolator Isolator(Sites, Runs, Options);
    AnalysisResult Analysis = Isolator.run();
    return printAnalysis(Args, Sites, Runs, Subj, Runs.size(),
                         Runs.numFailing(), Analysis);
  }

  CampaignResult Result;
  if (!obtainReports(Args, Result))
    return 1;

  if (Args.StaticPrune) {
    // Check the static claims against the dynamic record. With --in=FILE
    // the reports typically come from an unpruned reference campaign, which
    // is the strong direction: every pruned site must show zero (or
    // exactly-constant) counts even though it was fully instrumented.
    const PruneResult Prune = Result.StaticPruned
                                  ? Result.Prune
                                  : computePrune(*Result.Prog, Result.Sites);
    if (!Result.StaticPruned)
      std::fprintf(stderr,
                   "sbi: static prune: %u/%u sites pruned "
                   "(%u unreachable, %u constant-outcome, %u live)\n",
                   Prune.numPruned(), Prune.numSites(),
                   Prune.numUnreachable(), Prune.numConstant(),
                   Prune.numLive());
    PruneVerification Verified =
        verifyPruneAgainstReports(Prune, Result.Sites, Result.Reports);
    if (!Verified.Ok) {
      std::fprintf(stderr, "sbi: prune verification FAILED: %s\n",
                   Verified.FirstError.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "sbi: prune verification ok: %llu runs, %llu constant-site "
                 "observations matched the static masks\n",
                 static_cast<unsigned long long>(Verified.RunsChecked),
                 static_cast<unsigned long long>(
                     Verified.ConstantObservationsChecked));
  }

  CauseIsolator Isolator(Result.Sites, Result.Reports, Options);
  AnalysisResult Analysis = Isolator.run();
  return printAnalysis(Args, Result.Sites, Result.Reports, Result.Subj,
                       Result.Reports.size(), Result.numFailing(), Analysis);
}

int cmdLogReg(const CliArgs &Args) {
  CampaignResult Result;
  if (!obtainReports(Args, Result))
    return 1;
  LogRegModel Model = trainForSparsity(
      Result.Reports, /*MaxActive=*/static_cast<int>(Args.Top) * 3,
      {0.05, 0.02, 0.01, 0.005, 0.002});
  std::printf("trained: %d nonzero weights (%d iterations)\n\n",
              Model.numNonzero(), Model.Iterations);
  std::printf("%-12s %s\n", "Coefficient", "Predicate");
  for (const auto &[Pred, Weight] : Model.topByMagnitude(Args.Top))
    std::printf("%12.6f %s\n", Weight,
                predicateLabel(Result.Sites, Pred).c_str());
  return 0;
}

int cmdReport(const CliArgs &Args) {
  CampaignResult Result;
  if (!obtainReports(Args, Result))
    return 1;
  AnalysisOptions AnalyzeOptions;
  if (!configureEngine(Args, AnalyzeOptions))
    return usage();
  CauseIsolator Isolator(Result.Sites, Result.Reports, AnalyzeOptions);
  AnalysisResult Analysis = Isolator.run();

  HtmlReportOptions Options;
  Options.TopK = Args.Top;
  Options.ShowGroundTruth = Args.ShowBugs;
  std::string Html = renderHtmlReport(Result, Analysis, Options);

  std::string OutFile = Args.OutFile.empty()
                            ? Result.Subj->Name + ".report.html"
                            : Args.OutFile;
  std::ofstream Out(OutFile);
  if (!Out) {
    std::fprintf(stderr, "sbi: cannot write '%s'\n", OutFile.c_str());
    return 1;
  }
  Out << Html;
  std::printf("wrote %zu selected predictors to %s\n",
              Analysis.Selected.size(), OutFile.c_str());
  return 0;
}

/// `sbi corpus convert --in=REPORTS --out=DIR`: SBI-REPORTS v1 text to an
/// SBI-CORPUS v2 shard directory.
int cmdCorpusConvert(const CliArgs &Args) {
  if (Args.InFile.empty() || Args.OutFile.empty()) {
    std::fprintf(stderr,
                 "sbi: corpus convert needs --in=REPORTS and --out=DIR\n");
    return usage();
  }
  std::ifstream In(Args.InFile);
  if (!In) {
    std::fprintf(stderr, "sbi: cannot open '%s'\n", Args.InFile.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  ReportSet Set;
  if (!ReportSet::deserialize(Buffer.str(), Set)) {
    std::fprintf(stderr, "sbi: '%s' is not a valid report file\n",
                 Args.InFile.c_str());
    return 1;
  }
  std::string Error;
  if (!writeCorpus(Set, Args.OutFile,
                   static_cast<uint32_t>(Args.ShardReports), Error)) {
    std::fprintf(stderr, "sbi: cannot write corpus '%s': %s\n",
                 Args.OutFile.c_str(), Error.c_str());
    return 1;
  }
  size_t Shards = listCorpusShards(Args.OutFile).size();
  std::printf("converted %zu reports (%zu failing) into %zu shards under "
              "%s\n",
              Set.size(), Set.numFailing(), Shards, Args.OutFile.c_str());
  return 0;
}

/// The corpus directory a corpus verb operates on: its positional operand,
/// or --corpus=DIR.
std::string corpusOperand(const CliArgs &Args) {
  if (!Args.Inputs.empty())
    return Args.Inputs.front();
  return Args.CorpusDir;
}

/// `sbi corpus info DIR`: per-shard and whole-corpus summary.
int cmdCorpusInfo(const CliArgs &Args) {
  std::string Dir = corpusOperand(Args);
  if (Dir.empty()) {
    std::fprintf(stderr, "sbi: corpus info needs a corpus directory\n");
    return usage();
  }
  std::vector<std::string> Shards = listCorpusShards(Dir);
  if (Shards.empty()) {
    std::fprintf(stderr, "sbi: no shard files in '%s'\n", Dir.c_str());
    return 1;
  }
  uint64_t Reports = 0, Bytes = 0;
  uint32_t NumSites = 0, NumPredicates = 0;
  for (const std::string &Path : Shards) {
    CorpusReader Reader;
    std::string Error;
    if (!Reader.open(Path, Error)) {
      std::fprintf(stderr, "sbi: %s: %s\n", Path.c_str(), Error.c_str());
      return 1;
    }
    const CorpusShardHeader &Header = Reader.header();
    std::printf("%s  shard %u  %u reports  %llu bytes\n", Path.c_str(),
                Header.ShardId, Header.NumReports,
                static_cast<unsigned long long>(Reader.shardBytes()));
    Reports += Header.NumReports;
    Bytes += Reader.shardBytes();
    NumSites = Header.NumSites;
    NumPredicates = Header.NumPredicates;
  }
  std::printf("total: %zu shards, %llu reports, %llu bytes "
              "(%u sites, %u predicates)\n",
              Shards.size(), static_cast<unsigned long long>(Reports),
              static_cast<unsigned long long>(Bytes), NumSites,
              NumPredicates);
  return 0;
}

/// `sbi corpus merge --out=DIR DIR...`: streams every input corpus, in
/// argument then shard order, into a freshly numbered output corpus.
/// Memory stays bounded by one shard; dimensions must agree throughout.
int cmdCorpusMerge(const CliArgs &Args) {
  if (Args.OutFile.empty() || Args.Inputs.empty()) {
    std::fprintf(stderr,
                 "sbi: corpus merge needs --out=DIR and at least one input "
                 "corpus directory\n");
    return usage();
  }
  std::error_code DirEc;
  std::filesystem::create_directories(Args.OutFile, DirEc);
  if (DirEc) {
    std::fprintf(stderr, "sbi: cannot create '%s': %s\n",
                 Args.OutFile.c_str(), DirEc.message().c_str());
    return 1;
  }

  CorpusWriter Writer;
  std::string Error;
  uint32_t OutShard = 0;
  uint64_t Written = 0;
  uint32_t NumSites = 0, NumPredicates = 0;
  bool HaveDims = false;
  auto openNext = [&] {
    return Writer.open(Args.OutFile + "/" + corpusShardName(OutShard),
                       OutShard, NumSites, NumPredicates, Error);
  };

  for (const std::string &Dir : Args.Inputs) {
    std::vector<std::string> Shards = listCorpusShards(Dir);
    if (Shards.empty()) {
      std::fprintf(stderr, "sbi: no shard files in '%s'\n", Dir.c_str());
      return 1;
    }
    for (const std::string &Path : Shards) {
      CorpusReader Reader;
      if (!Reader.open(Path, Error)) {
        std::fprintf(stderr, "sbi: %s: %s\n", Path.c_str(), Error.c_str());
        return 1;
      }
      const CorpusShardHeader &Header = Reader.header();
      if (!HaveDims) {
        NumSites = Header.NumSites;
        NumPredicates = Header.NumPredicates;
        HaveDims = true;
      } else if (Header.NumSites != NumSites ||
                 Header.NumPredicates != NumPredicates) {
        std::fprintf(stderr,
                     "sbi: %s: dimension mismatch (%u sites / %u "
                     "predicates, expected %u / %u)\n",
                     Path.c_str(), Header.NumSites, Header.NumPredicates,
                     NumSites, NumPredicates);
        return 1;
      }
      FeedbackReport Report;
      while (Reader.next(Report, Error)) {
        // Roll to a new output shard only once another record exists, so
        // an exact multiple of --shard-reports never leaves a trailing
        // empty shard.
        if (Writer.isOpen() &&
            Writer.reportsWritten() >= Args.ShardReports) {
          if (!Writer.finalize(Error))
            break;
          ++OutShard;
        }
        if (!Writer.isOpen() && !openNext())
          break;
        if (!Writer.append(Report, Error))
          break;
        ++Written;
      }
      if (!Error.empty()) {
        std::fprintf(stderr, "sbi: merge failed at %s: %s\n", Path.c_str(),
                     Error.c_str());
        return 1;
      }
    }
  }
  // An all-empty input set still yields one (empty) shard, keeping the
  // output a well-formed corpus.
  if (!Writer.isOpen() && !openNext()) {
    std::fprintf(stderr, "sbi: merge failed: %s\n", Error.c_str());
    return 1;
  }
  if (!Writer.finalize(Error)) {
    std::fprintf(stderr, "sbi: merge failed: %s\n", Error.c_str());
    return 1;
  }
  std::printf("merged %llu reports from %zu corpora into %u shards under "
              "%s\n",
              static_cast<unsigned long long>(Written), Args.Inputs.size(),
              OutShard + 1, Args.OutFile.c_str());
  return 0;
}

/// `sbi corpus validate DIR`: full decode of every record of every shard;
/// malformed input is reported, never crashes.
int cmdCorpusValidate(const CliArgs &Args) {
  std::string Dir = corpusOperand(Args);
  if (Dir.empty()) {
    std::fprintf(stderr, "sbi: corpus validate needs a corpus directory\n");
    return usage();
  }
  std::vector<std::string> Shards = listCorpusShards(Dir);
  if (Shards.empty()) {
    std::fprintf(stderr, "sbi: no shard files in '%s'\n", Dir.c_str());
    return 1;
  }
  uint64_t Reports = 0;
  for (const std::string &Path : Shards) {
    CorpusReader Reader;
    std::string Error;
    if (!Reader.open(Path, Error)) {
      std::fprintf(stderr, "sbi: %s: INVALID: %s\n", Path.c_str(),
                   Error.c_str());
      return 1;
    }
    FeedbackReport Report;
    uint64_t Decoded = 0;
    while (Reader.next(Report, Error))
      ++Decoded;
    if (!Error.empty()) {
      std::fprintf(stderr, "sbi: %s: INVALID after %llu records: %s\n",
                   Path.c_str(), static_cast<unsigned long long>(Decoded),
                   Error.c_str());
      return 1;
    }
    Reports += Decoded;
  }
  std::printf("ok: %zu shards, %llu reports\n", Shards.size(),
              static_cast<unsigned long long>(Reports));
  return 0;
}

/// `sbi lint [--subject=NAME] [--json]`: static findings over one subject
/// or (default) every subject. Output is deterministic, so CI pins golden
/// per-subject finding counts against the trailing summary lines.
int cmdLint(const CliArgs &Args) {
  std::vector<const Subject *> Subjects;
  if (!Args.SubjectName.empty()) {
    const Subject *Subj = findSubject(Args.SubjectName);
    if (!Subj) {
      std::fprintf(stderr, "sbi: unknown subject '%s' (try 'sbi subjects')\n",
                   Args.SubjectName.c_str());
      return 1;
    }
    Subjects.push_back(Subj);
  } else {
    Subjects = allSubjects();
  }

  if (Args.Json)
    std::printf("[");
  bool First = true;
  for (const Subject *Subj : Subjects) {
    std::unique_ptr<Program> Prog =
        compileSubjectSource(Subj->Source, Subj->Name);
    LintReport Report = runLint(*Prog);
    if (Args.Json) {
      std::printf("%s\n%s", First ? "" : ",",
                  renderLintJson(Subj->Name, Report).c_str());
    } else {
      if (!First)
        std::printf("\n");
      std::printf("%s", renderLintHuman(Subj->Name, Report).c_str());
    }
    First = false;
  }
  if (Args.Json)
    std::printf("\n]\n");
  return 0;
}

/// `sbi trace summarize --in=FILE [--top=K] [--json]`: self-time summary
/// of a Chrome trace_event file produced by --trace-out.
int cmdTraceSummarize(const CliArgs &Args) {
  if (Args.InFile.empty()) {
    std::fprintf(stderr, "sbi: trace summarize needs --in=FILE\n");
    return usage();
  }
  std::ifstream In(Args.InFile);
  if (!In) {
    std::fprintf(stderr, "sbi: cannot open '%s'\n", Args.InFile.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  TraceSummary Summary;
  std::string Error;
  if (!summarizeTrace(Buffer.str(), Summary, Error)) {
    std::fprintf(stderr, "sbi: '%s' is not a valid trace file: %s\n",
                 Args.InFile.c_str(), Error.c_str());
    return 1;
  }
  if (Args.Json)
    std::printf("%s", renderTraceSummaryJson(Summary, Args.Top).c_str());
  else
    std::printf("%s", renderTraceSummary(Summary, Args.Top).c_str());
  return 0;
}

int cmdTrace(const CliArgs &Args) {
  if (Args.SubCommand == "summarize")
    return cmdTraceSummarize(Args);
  std::fprintf(stderr, "sbi: unknown trace verb '%s'\n",
               Args.SubCommand.c_str());
  return usage();
}

int cmdCorpus(const CliArgs &Args) {
  if (Args.SubCommand == "convert")
    return cmdCorpusConvert(Args);
  if (Args.SubCommand == "info")
    return cmdCorpusInfo(Args);
  if (Args.SubCommand == "merge")
    return cmdCorpusMerge(Args);
  if (Args.SubCommand == "validate")
    return cmdCorpusValidate(Args);
  std::fprintf(stderr, "sbi: unknown corpus verb '%s'\n",
               Args.SubCommand.c_str());
  return usage();
}

int dispatch(const CliArgs &Args) {
  if (Args.Command == "subjects")
    return cmdSubjects();
  if (Args.Command == "run")
    return cmdRun(Args);
  if (Args.Command == "analyze")
    return cmdAnalyze(Args);
  if (Args.Command == "logreg")
    return cmdLogReg(Args);
  if (Args.Command == "report")
    return cmdReport(Args);
  if (Args.Command == "corpus")
    return cmdCorpus(Args);
  if (Args.Command == "lint")
    return cmdLint(Args);
  if (Args.Command == "trace")
    return cmdTrace(Args);
  std::fprintf(stderr, "sbi: unknown command '%s'\n", Args.Command.c_str());
  return usage();
}

} // namespace

int main(int Argc, char **Argv) {
  CliArgs Args;
  if (!parseArgs(Argc, Argv, Args))
    return usage();
  if (!Args.MetricsOut.empty())
    Telemetry::setEnabled(true);
  if (!Args.TraceOut.empty())
    Tracer::setEnabled(true);
  int Code = dispatch(Args);
  if (!Args.TraceOut.empty()) {
    if (writeTraceFile(Tracer::instance(), Args.TraceOut)) {
      std::fprintf(stderr,
                   "sbi: wrote %llu trace event(s) (%llu dropped) to %s\n",
                   static_cast<unsigned long long>(
                       Tracer::instance().recordedTotal()),
                   static_cast<unsigned long long>(
                       Tracer::instance().droppedTotal()),
                   Args.TraceOut.c_str());
    } else {
      std::fprintf(stderr, "sbi: cannot write trace to '%s'\n",
                   Args.TraceOut.c_str());
      if (Code == 0)
        Code = 1;
    }
  }
  if (!Args.MetricsOut.empty() &&
      !Telemetry::writeJson(Args.MetricsOut)) {
    std::fprintf(stderr, "sbi: cannot write metrics to '%s'\n",
                 Args.MetricsOut.c_str());
    if (Code == 0)
      Code = 1;
  }
  return Code;
}
