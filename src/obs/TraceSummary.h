//===- obs/TraceSummary.h - Self-time summary of a trace file -------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline analysis of the Chrome trace_event JSON that obs/TraceSink.h
/// emits, backing `sbi trace summarize`: per-span-name total and
/// *self*-time (duration minus the duration of directly nested spans on
/// the same thread), aggregated across threads and sorted by self-time.
/// Self-time is what answers "where did the wall clock actually go" —
/// totals double-count nested work ("campaign" contains everything).
///
//===----------------------------------------------------------------------===//

#ifndef SBI_OBS_TRACESUMMARY_H
#define SBI_OBS_TRACESUMMARY_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbi {

/// Aggregated statistics for one span name.
struct SpanStat {
  std::string Name;
  std::string Cat;
  uint64_t Count = 0;
  /// Sum of span durations (nested work double-counted).
  uint64_t TotalNs = 0;
  /// Sum of durations minus directly enclosed spans on the same thread.
  uint64_t SelfNs = 0;
};

struct TraceSummary {
  /// Sorted by SelfNs descending (ties by name for determinism).
  std::vector<SpanStat> Spans;
  uint64_t SpanEvents = 0;
  uint64_t InstantEvents = 0;
  /// From the file's otherData overflow accounting.
  uint64_t DroppedEvents = 0;
  /// Max end-timestamp across all spans (trace wall-clock extent).
  uint64_t WallNs = 0;
};

/// Parses \p Json (a trace_event document) and computes per-name span
/// statistics. Spans recorded by ScopedSpan nest properly per thread, so
/// self-time falls out of a per-tid interval sweep. Returns false and
/// sets \p Error on malformed input.
bool summarizeTrace(std::string_view Json, TraceSummary &Out,
                    std::string &Error);

/// Human-readable top-N table (all spans when \p TopN == 0).
std::string renderTraceSummary(const TraceSummary &S, size_t TopN);

/// The same data as a machine-readable JSON object.
std::string renderTraceSummaryJson(const TraceSummary &S, size_t TopN);

} // namespace sbi

#endif // SBI_OBS_TRACESUMMARY_H
