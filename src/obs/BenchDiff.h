//===- obs/BenchDiff.h - Benchmark baseline comparison --------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The judgment half of the perf-regression observatory: compares a
/// freshly produced BENCH_*.json against a committed baseline from
/// bench/baselines/ and classifies every leaf metric. Metric direction is
/// inferred from the leaf name — `*_ms`/`*_ns`/`*_us` are lower-is-better,
/// `*per_sec*`/`*_speedup` are higher-is-better, booleans regress on
/// true→false, and everything else must match exactly. Thresholds are
/// relative and per-metric-overridable so noisy wall-clock numbers can be
/// held to a looser standard than, say, selection counts (which must not
/// move at all). tools/benchdiff wraps this for the CI gate.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_OBS_BENCHDIFF_H
#define SBI_OBS_BENCHDIFF_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbi {

enum class BenchVerdict {
  Ok,        ///< Within threshold (or equal / improved-but-close).
  Improved,  ///< Beyond threshold in the favorable direction.
  Regressed, ///< Beyond threshold in the unfavorable direction.
  Changed,   ///< Exact-match metric differs (kind, string, bool→true... ).
  Missing,   ///< Present in baseline, absent in current.
  Added,     ///< Absent in baseline, present in current.
};

struct BenchMetricDiff {
  /// Dotted path from the document root ("scales.32768.elim_ms",
  /// "corpus.v2_read_mb_per_sec"); array elements use numeric components.
  std::string Path;
  BenchVerdict Verdict = BenchVerdict::Ok;
  double Baseline = 0.0;
  double Current = 0.0;
  /// (Current - Baseline) / |Baseline|; 0 when not meaningful.
  double RelDelta = 0.0;
  /// The relative threshold this metric was held to.
  double Threshold = 0.0;
  /// For non-numeric or exact-match diffs, a human description.
  std::string Note;
};

struct BenchDiffOptions {
  /// Relative threshold applied when no rule matches.
  double DefaultThreshold = 0.25;
  /// First rule whose substring occurs in the metric path wins.
  struct Rule {
    std::string PathSubstr;
    double Threshold;
  };
  std::vector<Rule> Rules;
  /// Paths containing any of these substrings are skipped entirely
  /// (environment-dependent values like thread counts or embedded
  /// telemetry).
  std::vector<std::string> Ignore;
};

struct BenchDiffResult {
  std::vector<BenchMetricDiff> Metrics;
  uint64_t NumOk = 0;
  uint64_t NumImproved = 0;
  uint64_t NumRegressed = 0;
  uint64_t NumChanged = 0;
  uint64_t NumMissing = 0;
  uint64_t NumAdded = 0;

  /// The CI gate: regressions, exact-metric changes, and disappeared
  /// metrics all fail; additions and improvements do not.
  bool failed() const { return NumRegressed + NumChanged + NumMissing > 0; }
};

/// Parses both documents and diffs every leaf. Returns false (with
/// \p Error set) only on malformed JSON; comparison verdicts, including
/// failures, are reported through \p Out.
bool diffBenchJson(std::string_view BaselineJson,
                   std::string_view CurrentJson,
                   const BenchDiffOptions &Options, BenchDiffResult &Out,
                   std::string &Error);

/// Human-readable report (one line per non-Ok metric plus a summary).
std::string renderBenchDiff(const BenchDiffResult &R);

/// Machine-readable verdicts for CI logs.
std::string renderBenchDiffJson(const BenchDiffResult &R);

} // namespace sbi

#endif // SBI_OBS_BENCHDIFF_H
