//===- obs/Metrics.cpp - Process-wide metrics registry --------------------===//

#include "obs/Metrics.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace sbi;

size_t Histogram::bucketIndex(uint64_t V) {
  return static_cast<size_t>(std::bit_width(V));
}

uint64_t Histogram::bucketFloor(size_t I) {
  return I == 0 ? 0 : 1ull << (I - 1);
}

void Histogram::record(uint64_t V) {
  Buckets[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(V, std::memory_order_relaxed);
  uint64_t Seen = Min.load(std::memory_order_relaxed);
  while (V < Seen &&
         !Min.compare_exchange_weak(Seen, V, std::memory_order_relaxed))
    ;
  Seen = Max.load(std::memory_order_relaxed);
  while (V > Seen &&
         !Max.compare_exchange_weak(Seen, V, std::memory_order_relaxed))
    ;
}

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}

bool MetricsRegistry::nameTaken(const std::string &Name) const {
  return Counters.count(Name) || Gauges.count(Name) || Labels.count(Name) ||
         Histograms.count(Name);
}

template <typename T>
T &MetricsRegistry::registerIn(std::map<std::string, std::unique_ptr<T>> &Into,
                               const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (nameTaken(Name)) {
    std::fprintf(stderr,
                 "sbi: MetricsRegistry: metric '%s' registered twice; each "
                 "layer must register its metrics once (aliasing would "
                 "silently merge unrelated measurements)\n",
                 Name.c_str());
    std::abort();
  }
  auto &Slot = Into[Name];
  Slot.reset(new T());
  return *Slot;
}

Counter &MetricsRegistry::registerCounter(const std::string &Name) {
  return registerIn(Counters, Name);
}
Gauge &MetricsRegistry::registerGauge(const std::string &Name) {
  return registerIn(Gauges, Name);
}
Label &MetricsRegistry::registerLabel(const std::string &Name) {
  return registerIn(Labels, Name);
}
Histogram &MetricsRegistry::registerHistogram(const std::string &Name) {
  return registerIn(Histograms, Name);
}

const Counter *MetricsRegistry::findCounter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? nullptr : It->second.get();
}
const Gauge *MetricsRegistry::findGauge(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? nullptr : It->second.get();
}
const Label *MetricsRegistry::findLabel(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Labels.find(Name);
  return It == Labels.end() ? nullptr : It->second.get();
}
const Histogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : It->second.get();
}

void MetricsRegistry::recordPhase(const std::string &Path, uint64_t Nanos) {
  std::lock_guard<std::mutex> Lock(Mu);
  PhaseStats &Stats = Phases[Path];
  ++Stats.Count;
  Stats.TotalNanos += Nanos;
}

PhaseStats MetricsRegistry::phase(const std::string &Path) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Phases.find(Path);
  return It == Phases.end() ? PhaseStats{} : It->second;
}

namespace {

void appendEscaped(std::string &Out, const std::string &Text) {
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendKey(std::string &Out, const std::string &Name) {
  Out += '"';
  appendEscaped(Out, Name);
  Out += "\": ";
}

std::string formatDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

} // namespace

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\n";

  Out += "  \"phases\": {";
  bool First = true;
  for (const auto &[Path, Stats] : Phases) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    ";
    appendKey(Out, Path);
    Out += "{\"count\": " + std::to_string(Stats.Count) +
           ", \"total_ms\": " +
           formatDouble(static_cast<double>(Stats.TotalNanos) / 1e6) + "}";
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"counters\": {";
  First = true;
  for (const auto &[Name, C] : Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    ";
    appendKey(Out, Name);
    Out += std::to_string(C->value());
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    ";
    appendKey(Out, Name);
    Out += formatDouble(G->value());
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"labels\": {";
  First = true;
  for (const auto &[Name, L] : Labels) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    ";
    appendKey(Out, Name);
    Out += '"';
    appendEscaped(Out, L->value());
    Out += '"';
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    ";
    appendKey(Out, Name);
    uint64_t Count = H->count();
    Out += "{\"count\": " + std::to_string(Count) +
           ", \"sum\": " + std::to_string(H->sum());
    if (Count > 0)
      Out += ", \"min\": " + std::to_string(H->min()) +
             ", \"max\": " + std::to_string(H->max());
    Out += ", \"buckets\": [";
    bool FirstBucket = true;
    for (size_t I = 0; I < Histogram::NumBuckets; ++I) {
      uint64_t N = H->bucketCount(I);
      if (N == 0)
        continue;
      if (!FirstBucket)
        Out += ", ";
      FirstBucket = false;
      Out += "{\"ge\": " + std::to_string(Histogram::bucketFloor(I)) +
             ", \"count\": " + std::to_string(N) + "}";
    }
    Out += "]}";
  }
  Out += First ? "}\n" : "\n  }\n";

  Out += "}";
  return Out;
}

bool MetricsRegistry::writeJsonFile(const std::string &Path) const {
  std::string Json = toJson();
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  Ok = std::fputc('\n', F) != EOF && Ok;
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}
