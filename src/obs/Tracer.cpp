//===- obs/Tracer.cpp - Span tracing into per-thread ring buffers ---------===//

#include "obs/Tracer.h"

using namespace sbi;

std::atomic<bool> Tracer::EnabledFlag{false};

Tracer &Tracer::instance() {
  static Tracer T;
  return T;
}

uint64_t Tracer::nowNs() {
  // One epoch per process so timestamps from every thread share an origin.
  static const std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

void Tracer::setBufferCapacity(size_t NumEvents) {
  std::lock_guard<std::mutex> Lock(Mu);
  Capacity = NumEvents > 0 ? NumEvents : 1;
}

namespace {
// Cached per-thread buffer pointer plus the tracer epoch it was acquired
// under; reset() bumps the epoch, invalidating every cache at once.
struct TlsSlot {
  TraceBuffer *Buf = nullptr;
  uint64_t Epoch = 0;
};
thread_local TlsSlot Slot;
} // namespace

TraceBuffer &Tracer::threadBuffer() {
  uint64_t Now = Epoch.load(std::memory_order_acquire);
  if (Slot.Buf && Slot.Epoch == Now)
    return *Slot.Buf;
  std::lock_guard<std::mutex> Lock(Mu);
  auto Tid = static_cast<uint32_t>(Buffers.size());
  Buffers.emplace_back(new TraceBuffer(Tid, Capacity));
  Slot.Buf = Buffers.back().get();
  Slot.Epoch = Epoch.load(std::memory_order_relaxed);
  return *Slot.Buf;
}

void Tracer::instant(const char *Name, const char *Cat) {
  if (!enabled())
    return;
  TraceEvent Ev;
  Ev.Name = Name;
  Ev.Cat = Cat;
  Ev.StartNs = nowNs();
  Ev.Instant = true;
  threadBuffer().append(Ev);
}

std::vector<const TraceBuffer *> Tracer::buffers() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<const TraceBuffer *> Out;
  Out.reserve(Buffers.size());
  for (const auto &B : Buffers)
    Out.push_back(B.get());
  return Out;
}

uint64_t Tracer::recordedTotal() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Total = 0;
  for (const auto &B : Buffers)
    Total += B->size();
  return Total;
}

uint64_t Tracer::droppedTotal() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Total = 0;
  for (const auto &B : Buffers)
    Total += B->dropped();
  return Total;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Buffers.clear();
  Epoch.fetch_add(1, std::memory_order_acq_rel);
}
