//===- obs/TraceSummary.cpp - Self-time summary of a trace file -----------===//

#include "obs/TraceSummary.h"

#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace sbi;

namespace {

// One "X" event lifted out of the JSON tree, in integer nanoseconds.
struct Span {
  std::string Name;
  std::string Cat;
  uint32_t Tid = 0;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
};

uint64_t microsFieldToNs(const json::Value &V) {
  // ts/dur are microseconds with fractional nanoseconds; round, don't
  // truncate, so 123.999 doesn't lose a nanosecond.
  return static_cast<uint64_t>(std::llround(V.asNumber() * 1000.0));
}

} // namespace

bool sbi::summarizeTrace(std::string_view Json, TraceSummary &Out,
                         std::string &Error) {
  Out = TraceSummary();

  json::Value Doc;
  if (!json::parse(Json, Doc, Error))
    return false;
  if (!Doc.isObject()) {
    Error = "trace document is not a JSON object";
    return false;
  }
  const json::Value *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray()) {
    Error = "trace document has no traceEvents array";
    return false;
  }
  if (const json::Value *Other = Doc.find("otherData"))
    Out.DroppedEvents =
        static_cast<uint64_t>(Other->numberOr("dropped_events", 0));

  std::vector<Span> Spans;
  for (const json::Value &Ev : Events->array()) {
    if (!Ev.isObject())
      continue;
    std::string Ph = Ev.stringOr("ph", "");
    if (Ph == "i") {
      ++Out.InstantEvents;
      continue;
    }
    if (Ph != "X")
      continue; // Metadata and anything foreign.
    const json::Value *Ts = Ev.find("ts");
    const json::Value *Dur = Ev.find("dur");
    if (!Ts || !Ts->isNumber() || !Dur || !Dur->isNumber()) {
      Error = "complete event missing numeric ts/dur";
      return false;
    }
    Span S;
    S.Name = Ev.stringOr("name", "");
    S.Cat = Ev.stringOr("cat", "");
    S.Tid = static_cast<uint32_t>(Ev.numberOr("tid", 0));
    S.StartNs = microsFieldToNs(*Ts);
    S.DurNs = microsFieldToNs(*Dur);
    Spans.push_back(std::move(S));
    ++Out.SpanEvents;
  }

  // Per-thread stack sweep. ScopedSpan guarantees proper nesting within a
  // thread, so sorting by (start, longer-first) lets a simple stack
  // attribute each span's duration to its innermost enclosing span.
  std::map<uint32_t, std::vector<const Span *>> ByTid;
  for (const Span &S : Spans)
    ByTid[S.Tid].push_back(&S);

  std::map<std::string, SpanStat> Stats;
  for (auto &[Tid, List] : ByTid) {
    (void)Tid;
    std::stable_sort(List.begin(), List.end(),
                     [](const Span *A, const Span *B) {
                       if (A->StartNs != B->StartNs)
                         return A->StartNs < B->StartNs;
                       return A->DurNs > B->DurNs;
                     });
    std::vector<std::pair<const Span *, uint64_t>> Stack; // span, child ns
    auto pop = [&] {
      auto [Done, ChildNs] = Stack.back();
      Stack.pop_back();
      SpanStat &St = Stats[Done->Name];
      if (St.Name.empty()) {
        St.Name = Done->Name;
        St.Cat = Done->Cat;
      }
      ++St.Count;
      St.TotalNs += Done->DurNs;
      // Clock jitter can make children sum past the parent; clamp at 0.
      St.SelfNs += Done->DurNs > ChildNs ? Done->DurNs - ChildNs : 0;
      if (!Stack.empty())
        Stack.back().second += Done->DurNs;
    };
    for (const Span *S : List) {
      while (!Stack.empty() &&
             Stack.back().first->StartNs + Stack.back().first->DurNs <=
                 S->StartNs)
        pop();
      Stack.push_back({S, 0});
      uint64_t End = S->StartNs + S->DurNs;
      Out.WallNs = std::max(Out.WallNs, End);
    }
    while (!Stack.empty())
      pop();
  }

  Out.Spans.reserve(Stats.size());
  for (auto &[Name, St] : Stats) {
    (void)Name;
    Out.Spans.push_back(std::move(St));
  }
  std::stable_sort(Out.Spans.begin(), Out.Spans.end(),
                   [](const SpanStat &A, const SpanStat &B) {
                     if (A.SelfNs != B.SelfNs)
                       return A.SelfNs > B.SelfNs;
                     return A.Name < B.Name;
                   });
  return true;
}

namespace {

std::string ms(uint64_t Ns) {
  return format("%.3f", static_cast<double>(Ns) / 1e6);
}

} // namespace

std::string sbi::renderTraceSummary(const TraceSummary &S, size_t TopN) {
  size_t N = TopN == 0 ? S.Spans.size() : std::min(TopN, S.Spans.size());

  TextTable Table;
  Table.setHeader({"span", "cat", "count", "total_ms", "self_ms", "self_%"});
  uint64_t SelfSum = 0;
  for (const SpanStat &St : S.Spans)
    SelfSum += St.SelfNs;
  for (size_t I = 0; I < N; ++I) {
    const SpanStat &St = S.Spans[I];
    double Pct = SelfSum == 0 ? 0.0
                              : 100.0 * static_cast<double>(St.SelfNs) /
                                    static_cast<double>(SelfSum);
    Table.addRow({St.Name, St.Cat, std::to_string(St.Count), ms(St.TotalNs),
                  ms(St.SelfNs), format("%.1f", Pct)});
  }

  std::string Out = Table.render();
  Out += format("%zu span name(s) shown of %zu; %llu span event(s), %llu "
                "instant(s), %llu dropped; trace extent %s ms\n",
                N, S.Spans.size(),
                static_cast<unsigned long long>(S.SpanEvents),
                static_cast<unsigned long long>(S.InstantEvents),
                static_cast<unsigned long long>(S.DroppedEvents),
                ms(S.WallNs).c_str());
  return Out;
}

std::string sbi::renderTraceSummaryJson(const TraceSummary &S, size_t TopN) {
  size_t N = TopN == 0 ? S.Spans.size() : std::min(TopN, S.Spans.size());
  std::string Out = "{\n";
  Out += format("  \"span_events\": %llu,\n",
                static_cast<unsigned long long>(S.SpanEvents));
  Out += format("  \"instant_events\": %llu,\n",
                static_cast<unsigned long long>(S.InstantEvents));
  Out += format("  \"dropped_events\": %llu,\n",
                static_cast<unsigned long long>(S.DroppedEvents));
  Out += format("  \"wall_ms\": %s,\n", ms(S.WallNs).c_str());
  Out += "  \"spans\": [";
  for (size_t I = 0; I < N; ++I) {
    const SpanStat &St = S.Spans[I];
    Out += I ? ",\n    " : "\n    ";
    Out += format("{\"name\": \"%s\", \"cat\": \"%s\", \"count\": %llu, "
                  "\"total_ms\": %s, \"self_ms\": %s}",
                  St.Name.c_str(), St.Cat.c_str(),
                  static_cast<unsigned long long>(St.Count),
                  ms(St.TotalNs).c_str(), ms(St.SelfNs).c_str());
  }
  Out += N ? "\n  ]\n" : "]\n";
  Out += "}\n";
  return Out;
}
