//===- obs/TraceSink.h - Chrome trace_event JSON export -------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drains the tracer's per-thread buffers into Chrome `trace_event` JSON
/// (the format Perfetto and chrome://tracing load). The emitted document
/// is deterministic for a given set of recorded events: events are sorted
/// by (start, duration desc, tid, sequence), so two flushes of the same
/// buffers are byte-identical regardless of thread scheduling during the
/// run. Flushing also surfaces recorded/dropped totals as metrics-registry
/// gauges so overflow is visible in `--metrics-out` output.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_OBS_TRACESINK_H
#define SBI_OBS_TRACESINK_H

#include <string>

namespace sbi {

class Tracer;

/// Renders every event recorded so far as a Chrome trace_event JSON
/// document: `{"otherData": {...}, "traceEvents": [...]}` with metadata
/// events naming the process and threads, "X" (complete) events for
/// spans, and "i" (instant) events. Timestamps are microseconds with
/// nanosecond precision (three decimals). Also publishes
/// `trace.events_recorded` / `trace.events_dropped` gauges.
std::string traceToJson(const Tracer &T);

/// traceToJson() to a file; false on I/O failure.
bool writeTraceFile(const Tracer &T, const std::string &Path);

} // namespace sbi

#endif // SBI_OBS_TRACESINK_H
