//===- obs/Phase.h - Monotonic phase timers with nested scopes ------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wall-time phase timing over std::chrono::steady_clock. Scopes nest
/// per thread: a ScopedPhase("run_loop") opened inside a
/// ScopedPhase("campaign") accumulates under the path "campaign/run_loop",
/// so the emitted JSON reads as a call tree without any explicit plumbing.
///
///   {
///     ScopedPhase Campaign("campaign");
///     { ScopedPhase Parse("parse"); ... }   // -> "campaign/parse"
///     { ScopedPhase Loop("run_loop"); ... } // -> "campaign/run_loop"
///   }                                       // -> "campaign"
///
/// The default constructor records into MetricsRegistry::global() and is a
/// no-op (one relaxed atomic load) while Telemetry is disabled. Passing an
/// explicit registry always records — that form is for tests and for tools
/// that own a private registry.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_OBS_PHASE_H
#define SBI_OBS_PHASE_H

#include "obs/Telemetry.h"

#include <chrono>

namespace sbi {

class ScopedPhase {
public:
  /// Records into the global registry iff Telemetry::enabled() at entry.
  explicit ScopedPhase(const char *Name)
      : ScopedPhase(Name, Telemetry::enabled() ? &Telemetry::metrics()
                                               : nullptr) {}

  /// Records into \p Registry unconditionally (null: disabled scope).
  ScopedPhase(const char *Name, MetricsRegistry *Registry);

  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

  ~ScopedPhase();

private:
  MetricsRegistry *Registry; // Null when the scope is disabled.
  std::chrono::steady_clock::time_point Start;
};

} // namespace sbi

#endif // SBI_OBS_PHASE_H
