//===- obs/TraceSink.cpp - Chrome trace_event JSON export -----------------===//

#include "obs/TraceSink.h"

#include "obs/Metrics.h"
#include "obs/Telemetry.h"
#include "obs/Tracer.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>

using namespace sbi;

namespace {

// One event plus enough ordering context to make the flush deterministic:
// buffer appends give each event a per-thread sequence number, and the
// global sort key (StartNs, DurNs desc, Tid, Seq) has no ties two distinct
// events can share.
struct OrderedEvent {
  const TraceEvent *Ev;
  uint32_t Tid;
  size_t Seq;
};

void appendEscaped(std::string &Out, const char *Text) {
  for (; *Text; ++Text) {
    char C = *Text;
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      Out += format("\\u%04x", static_cast<unsigned char>(C));
    } else {
      Out += C;
    }
  }
}

// trace_event timestamps are microseconds; keep nanosecond precision as
// three decimals so adjacent VM spans stay distinguishable.
std::string micros(uint64_t Ns) {
  return format("%llu.%03u",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned>(Ns % 1000));
}

void appendArgs(std::string &Out, const TraceEvent &Ev) {
  Out += "\"args\":{";
  for (uint8_t I = 0; I < Ev.NumArgs; ++I) {
    if (I)
      Out += ',';
    Out += '"';
    appendEscaped(Out, Ev.ArgName[I]);
    Out += format("\":%llu", static_cast<unsigned long long>(Ev.ArgVal[I]));
  }
  Out += '}';
}

} // namespace

std::string sbi::traceToJson(const Tracer &T) {
  std::vector<const TraceBuffer *> Buffers = T.buffers();

  std::vector<OrderedEvent> Events;
  uint64_t Dropped = 0;
  for (const TraceBuffer *B : Buffers) {
    size_t N = B->size(); // Acquire: the first N slots are fully written.
    for (size_t I = 0; I < N; ++I)
      Events.push_back({&B->event(I), B->tid(), I});
    Dropped += B->dropped();
  }

  std::stable_sort(Events.begin(), Events.end(),
                   [](const OrderedEvent &A, const OrderedEvent &B) {
                     if (A.Ev->StartNs != B.Ev->StartNs)
                       return A.Ev->StartNs < B.Ev->StartNs;
                     // Longer spans first so parents precede children that
                     // begin at the same tick.
                     if (A.Ev->DurNs != B.Ev->DurNs)
                       return A.Ev->DurNs > B.Ev->DurNs;
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     return A.Seq < B.Seq;
                   });

#if !defined(SBI_TELEMETRY_DISABLED)
  if (Telemetry::enabled()) {
    // Gauges, not counters: flushing twice reports totals, not sums of
    // totals.
    static Gauge &RecordedGauge =
        MetricsRegistry::global().registerGauge("trace.events_recorded");
    static Gauge &DroppedGauge =
        MetricsRegistry::global().registerGauge("trace.events_dropped");
    RecordedGauge.set(static_cast<double>(Events.size()));
    DroppedGauge.set(static_cast<double>(Dropped));
  }
#endif

  std::string Out;
  Out.reserve(128 + Events.size() * 96);
  Out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  Out += format("\"recorded_events\":%llu,\"dropped_events\":%llu",
                static_cast<unsigned long long>(Events.size()),
                static_cast<unsigned long long>(Dropped));
  Out += "},\"traceEvents\":[\n";

  bool First = true;
  auto sep = [&] {
    if (!First)
      Out += ",\n";
    First = false;
  };

  sep();
  Out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{"
         "\"name\":\"sbi\"}}";
  for (const TraceBuffer *B : Buffers) {
    sep();
    Out += format("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"sbi-%u\"}}",
                  B->tid(), B->tid());
  }

  for (const OrderedEvent &E : Events) {
    const TraceEvent &Ev = *E.Ev;
    sep();
    Out += "{\"name\":\"";
    appendEscaped(Out, Ev.Name ? Ev.Name : "");
    Out += "\",\"cat\":\"";
    appendEscaped(Out, Ev.Cat ? Ev.Cat : "");
    Out += format("\",\"pid\":1,\"tid\":%u,\"ts\":%s,", E.Tid,
                  micros(Ev.StartNs).c_str());
    if (Ev.Instant) {
      Out += "\"ph\":\"i\",\"s\":\"t\",";
    } else {
      Out += format("\"ph\":\"X\",\"dur\":%s,", micros(Ev.DurNs).c_str());
    }
    appendArgs(Out, Ev);
    Out += '}';
  }

  Out += "\n]}\n";
  return Out;
}

bool sbi::writeTraceFile(const Tracer &T, const std::string &Path) {
  std::string Json = traceToJson(T);
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}
