//===- obs/Telemetry.h - Telemetry switch and JSON emitter ----------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The facade of the observability layer. Telemetry is off by default and
/// costs nothing on the hot paths when off:
///
///   - Execution engines count steps in a local (they must, for the step
///     limit) and flush into the registry once per run, only when enabled.
///   - ScopedPhase (obs/Phase.h) checks one relaxed atomic and otherwise
///     does no work.
///   - Optional dense instrumentation (the collector's reach counting) is
///     only switched on by layers that checked enabled() first.
///   - O(1)-per-campaign summary gauges are maintained unconditionally so
///     renderers (the HTML report header) always have them.
///
/// Defining SBI_TELEMETRY_DISABLED at compile time removes the engine-side
/// hooks entirely for builds that want a provably untouched hot path.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_OBS_TELEMETRY_H
#define SBI_OBS_TELEMETRY_H

#include "obs/Metrics.h"

#include <atomic>
#include <string>

namespace sbi {

class Telemetry {
public:
  /// Turns the optional instrumentation on or off process-wide.
  static void setEnabled(bool On) {
    EnabledFlag.store(On, std::memory_order_relaxed);
  }
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// The process-wide registry (MetricsRegistry::global()).
  static MetricsRegistry &metrics() { return MetricsRegistry::global(); }

  /// Serializes the process-wide registry to JSON.
  static std::string toJson() { return metrics().toJson(); }

  /// Writes the process-wide registry to \p Path as JSON; false on I/O
  /// failure.
  static bool writeJson(const std::string &Path) {
    return metrics().writeJsonFile(Path);
  }

private:
  static std::atomic<bool> EnabledFlag;
};

} // namespace sbi

#endif // SBI_OBS_TELEMETRY_H
