//===- obs/Tracer.h - Span tracing into per-thread ring buffers -----------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight-recorder half of the observability layer. Where the metrics
/// registry (obs/Metrics.h) answers "how much, in total", the tracer
/// answers "when, on which thread": begin/end spans and instant events
/// with monotonic timestamps, recorded into per-thread fixed-capacity
/// buffers and drained by obs/TraceSink.h into Chrome trace_event JSON
/// that loads in Perfetto / chrome://tracing.
///
/// The contract mirrors Telemetry::enabled():
///
///   - Tracing is off by default; every recording call-site guards on one
///     relaxed atomic load (Tracer::enabled()), so the untraced fast path
///     is a single predictable branch.
///   - Recording is wait-free per thread: each OS thread owns one buffer,
///     appends are plain stores followed by one release store of the
///     count, and no lock is ever taken after a buffer exists. A full
///     buffer drops new events and counts the drops — recording can never
///     block or reallocate mid-campaign.
///   - Name / category / argument-name strings must be string literals
///     (only the pointer is stored). Values are u64.
///
/// ScopedSpan is the RAII recorder: it reads the clock at construction
/// and appends one complete event (begin + duration) at destruction, so a
/// span costs two clock reads and one 64-byte store on the owning
/// thread's buffer. Defining SBI_TELEMETRY_DISABLED removes the engine-
/// side hooks just as it does for metrics.
///
//======----------------------------------------------------------------------===//

#ifndef SBI_OBS_TRACER_H
#define SBI_OBS_TRACER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sbi {

/// One recorded event. 64 bytes; copied into the owning thread's buffer.
struct TraceEvent {
  /// Span or instant name (string literal).
  const char *Name = nullptr;
  /// Category (string literal): "harness", "analysis", "feedback", "vm"...
  const char *Cat = nullptr;
  /// Nanoseconds since the tracer epoch (steady clock).
  uint64_t StartNs = 0;
  /// Span duration; 0 for instants.
  uint64_t DurNs = 0;
  /// Up to two u64 arguments with literal names.
  const char *ArgName[2] = {nullptr, nullptr};
  uint64_t ArgVal[2] = {0, 0};
  uint8_t NumArgs = 0;
  /// True for instant events (rendered as "i" phase, not "X").
  bool Instant = false;
};

/// One thread's fixed-capacity event buffer. Single producer (the owning
/// thread); readers synchronize through the release/acquire count, so a
/// sink may snapshot a buffer while its thread is still recording and see
/// a consistent prefix.
class TraceBuffer {
public:
  uint32_t tid() const { return Tid; }
  size_t capacity() const { return Events.size(); }

  /// Events visible to a reader (acquire; pairs with append's release).
  size_t size() const { return Count.load(std::memory_order_acquire); }
  const TraceEvent &event(size_t I) const { return Events[I]; }

  /// Events rejected because the buffer was full.
  uint64_t dropped() const {
    return Dropped.load(std::memory_order_relaxed);
  }

  /// Owning-thread only. Full buffers drop (and count) new events rather
  /// than wrap: the head of a campaign is worth more than its tail, and
  /// never overwriting keeps readers race-free.
  void append(const TraceEvent &Ev) {
    size_t N = Count.load(std::memory_order_relaxed);
    if (N >= Events.size()) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Events[N] = Ev;
    Count.store(N + 1, std::memory_order_release);
  }

private:
  friend class Tracer;
  TraceBuffer(uint32_t Tid, size_t Capacity)
      : Events(Capacity), Tid(Tid) {}

  std::vector<TraceEvent> Events;
  std::atomic<size_t> Count{0};
  std::atomic<uint64_t> Dropped{0};
  uint32_t Tid;
};

class Tracer {
public:
  /// Turns span recording on or off process-wide.
  static void setEnabled(bool On) {
    EnabledFlag.store(On, std::memory_order_relaxed);
  }
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// The process-wide tracer every ScopedSpan records into.
  static Tracer &instance();

  /// Nanoseconds since the process-wide tracer epoch.
  static uint64_t nowNs();

  /// Capacity, in events, of buffers created after this call (default
  /// 1 << 16 per thread). Existing buffers keep their size.
  void setBufferCapacity(size_t NumEvents);

  /// The calling thread's buffer, created on first use. Buffer creation
  /// takes the registry lock once per thread per epoch; recording after
  /// that is lock-free.
  TraceBuffer &threadBuffer();

  /// Records an instant event on the calling thread.
  void instant(const char *Name, const char *Cat);

  /// Stable snapshot handles for the sink. Buffers are never destroyed
  /// while their epoch is current, so the pointers stay valid until
  /// reset().
  std::vector<const TraceBuffer *> buffers() const;

  /// Totals across all buffers (events recorded, events dropped on
  /// overflow).
  uint64_t recordedTotal() const;
  uint64_t droppedTotal() const;

  /// Test-only: discards every buffer and bumps the epoch so threads
  /// re-acquire on next use. Callers must guarantee no thread is
  /// concurrently recording (the tests record, join, then reset).
  void reset();

private:
  Tracer() = default;

  static std::atomic<bool> EnabledFlag;

  mutable std::mutex Mu;
  std::vector<std::unique_ptr<TraceBuffer>> Buffers;
  size_t Capacity = 1 << 16;
  std::atomic<uint64_t> Epoch{1};
};

/// RAII span recorder: one complete event on the constructing thread's
/// buffer, emitted at destruction. Does nothing (and reads no clock) when
/// tracing is disabled at construction.
class ScopedSpan {
public:
  ScopedSpan(const char *Name, const char *Cat)
      : Buf(Tracer::enabled() ? &Tracer::instance().threadBuffer()
                              : nullptr) {
    if (Buf) {
      Ev.Name = Name;
      Ev.Cat = Cat;
      Ev.StartNs = Tracer::nowNs();
    }
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Attaches a u64 argument (at most two; extras are ignored). \p Name
  /// must be a string literal. Callable any time before destruction.
  void arg(const char *Name, uint64_t Val) {
    if (!Buf || Ev.NumArgs >= 2)
      return;
    Ev.ArgName[Ev.NumArgs] = Name;
    Ev.ArgVal[Ev.NumArgs] = Val;
    ++Ev.NumArgs;
  }

  ~ScopedSpan() {
    if (!Buf)
      return;
    Ev.DurNs = Tracer::nowNs() - Ev.StartNs;
    Buf->append(Ev);
  }

private:
  TraceBuffer *Buf;
  TraceEvent Ev;
};

} // namespace sbi

#endif // SBI_OBS_TRACER_H
