//===- obs/Metrics.h - Process-wide metrics registry ----------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage half of the observability layer: a zero-dependency registry
/// of named instruments that every pipeline stage (campaign driver,
/// analysis engines, execution engines, report renderers) shares.
///
///   - Counter:   monotonically increasing uint64, relaxed-atomic, safe to
///                bump from any number of campaign workers.
///   - Gauge:     a last-write-wins double ("runs per second", realized
///                sampling rates).
///   - Label:     a last-write-wins string (sampling-plan name).
///   - Histogram: log2-bucketed uint64 distribution (per-run step counts,
///                overrun pads, per-worker run counts). Bucket i holds the
///                values whose bit width is i: bucket 0 is exactly {0},
///                bucket 1 is {1}, bucket 2 is [2,3], ... bucket 64 is
///                [2^63, 2^64-1].
///   - Phases:    accumulated wall time per dotted/nested phase path,
///                recorded by obs/Phase.h's ScopedPhase.
///
/// Instruments are registered once by name and live for the process;
/// registering the same name twice aborts with a diagnostic, so two layers
/// can never silently alias one metric. Pipeline code therefore registers
/// through function-local statics and may run any number of campaigns per
/// process. The whole registry serializes to JSON (see toJson) for
/// `sbi --metrics-out=FILE` and the bench binaries.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_OBS_METRICS_H
#define SBI_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace sbi {

class MetricsRegistry;

/// Monotonic event count; relaxed atomics make it safe from any thread.
class Counter {
public:
  void add(uint64_t N = 1) { Val.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Val.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> Val{0};
};

/// Last-write-wins double.
class Gauge {
public:
  void set(double V) { Val.store(V, std::memory_order_relaxed); }
  double value() const { return Val.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> Val{0.0};
};

/// Last-write-wins string (mutex-guarded; set rarely, read at emit time).
class Label {
public:
  void set(std::string V) {
    std::lock_guard<std::mutex> Lock(Mu);
    Val = std::move(V);
  }
  std::string value() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Val;
  }

private:
  friend class MetricsRegistry;
  Label() = default;
  mutable std::mutex Mu;
  std::string Val;
};

/// Log2-bucketed distribution of uint64 samples.
class Histogram {
public:
  /// Bucket indices are bit widths: 0 (value 0) through 64 (top half of
  /// the uint64 range).
  static constexpr size_t NumBuckets = 65;

  /// Index of the bucket \p V falls into (its bit width).
  static size_t bucketIndex(uint64_t V);

  /// Smallest value of bucket \p I (0, 1, 2, 4, 8, ...).
  static uint64_t bucketFloor(size_t I);

  void record(uint64_t V);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Undefined (returns UINT64_MAX / 0 respectively) when count() == 0.
  uint64_t min() const { return Min.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

private:
  friend class MetricsRegistry;
  Histogram() = default;
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// Wall time accumulated under one phase path.
struct PhaseStats {
  uint64_t Count = 0;
  uint64_t TotalNanos = 0;
};

/// Named instruments, registered once each, plus phase timings. One
/// process-wide instance backs the pipeline (global()); tests may create
/// their own isolated registries.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The process-wide registry the pipeline reports into.
  static MetricsRegistry &global();

  /// Each name may be registered exactly once across all four instrument
  /// kinds; a duplicate aborts with a diagnostic naming the metric.
  Counter &registerCounter(const std::string &Name);
  Gauge &registerGauge(const std::string &Name);
  Label &registerLabel(const std::string &Name);
  Histogram &registerHistogram(const std::string &Name);

  /// Lookup by name; null when absent (or registered as another kind).
  const Counter *findCounter(const std::string &Name) const;
  const Gauge *findGauge(const std::string &Name) const;
  const Label *findLabel(const std::string &Name) const;
  const Histogram *findHistogram(const std::string &Name) const;

  /// Adds \p Nanos of wall time under \p Path (phases need no
  /// registration; ScopedPhase composes paths from its nesting).
  void recordPhase(const std::string &Path, uint64_t Nanos);

  /// Phase stats for \p Path; {0,0} when the phase never ran.
  PhaseStats phase(const std::string &Path) const;

  /// The whole registry as one deterministic (name-sorted) JSON object
  /// with "phases", "counters", "gauges", "labels", and "histograms" keys.
  std::string toJson() const;

  /// Writes toJson() (plus a trailing newline) to \p Path; false on I/O
  /// failure.
  bool writeJsonFile(const std::string &Path) const;

private:
  template <typename T>
  T &registerIn(std::map<std::string, std::unique_ptr<T>> &Into,
                const std::string &Name);
  bool nameTaken(const std::string &Name) const;

  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Label>> Labels;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, PhaseStats> Phases;
};

} // namespace sbi

#endif // SBI_OBS_METRICS_H
