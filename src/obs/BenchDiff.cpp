//===- obs/BenchDiff.cpp - Benchmark baseline comparison ------------------===//

#include "obs/BenchDiff.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace sbi;

namespace {

enum class Direction { LowerIsBetter, HigherIsBetter, Exact };

bool endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

/// Last path component ("scales.32768.elim_ms" -> "elim_ms").
std::string_view leafOf(std::string_view Path) {
  size_t Dot = Path.rfind('.');
  return Dot == std::string_view::npos ? Path : Path.substr(Dot + 1);
}

Direction directionOf(std::string_view Path) {
  std::string_view Leaf = leafOf(Path);
  if (Leaf.find("per_sec") != std::string_view::npos ||
      endsWith(Leaf, "_speedup") || endsWith(Leaf, "speedup"))
    return Direction::HigherIsBetter;
  if (endsWith(Leaf, "_ms") || endsWith(Leaf, "_ns") ||
      endsWith(Leaf, "_us") || endsWith(Leaf, "_sec") ||
      endsWith(Leaf, "_bytes"))
    return Direction::LowerIsBetter;
  return Direction::Exact;
}

class Differ {
public:
  Differ(const BenchDiffOptions &Options, BenchDiffResult &Out)
      : Options(Options), Out(Out) {}

  void walk(const std::string &Path, const json::Value *Base,
            const json::Value *Cur) {
    if (ignored(Path))
      return;
    if (!Base) {
      count(emit(Path, BenchVerdict::Added, 0, 0, "only in current"));
      return;
    }
    if (!Cur) {
      count(emit(Path, BenchVerdict::Missing, 0, 0, "only in baseline"));
      return;
    }
    if (Base->isObject() && Cur->isObject()) {
      // Baseline members first (preserving their order), then additions.
      for (const json::Member &M : Base->members())
        walk(join(Path, M.first), &M.second, Cur->find(M.first));
      for (const json::Member &M : Cur->members())
        if (!Base->find(M.first))
          walk(join(Path, M.first), nullptr, &M.second);
      return;
    }
    if (Base->isArray() && Cur->isArray()) {
      size_t N = std::max(Base->array().size(), Cur->array().size());
      for (size_t I = 0; I < N; ++I)
        walk(join(Path, std::to_string(I)),
             I < Base->array().size() ? &Base->array()[I] : nullptr,
             I < Cur->array().size() ? &Cur->array()[I] : nullptr);
      return;
    }
    leaf(Path, *Base, *Cur);
  }

private:
  static std::string join(const std::string &Path, const std::string &Key) {
    return Path.empty() ? Key : Path + "." + Key;
  }

  bool ignored(const std::string &Path) const {
    for (const std::string &Sub : Options.Ignore)
      if (Path.find(Sub) != std::string::npos)
        return true;
    return false;
  }

  double thresholdFor(const std::string &Path) const {
    for (const BenchDiffOptions::Rule &R : Options.Rules)
      if (Path.find(R.PathSubstr) != std::string::npos)
        return R.Threshold;
    return Options.DefaultThreshold;
  }

  BenchMetricDiff &emit(const std::string &Path, BenchVerdict V,
                        double Base, double Cur, std::string Note) {
    Out.Metrics.push_back({Path, V, Base, Cur, 0.0, 0.0, std::move(Note)});
    return Out.Metrics.back();
  }

  void count(const BenchMetricDiff &D) {
    switch (D.Verdict) {
    case BenchVerdict::Ok:
      ++Out.NumOk;
      break;
    case BenchVerdict::Improved:
      ++Out.NumImproved;
      break;
    case BenchVerdict::Regressed:
      ++Out.NumRegressed;
      break;
    case BenchVerdict::Changed:
      ++Out.NumChanged;
      break;
    case BenchVerdict::Missing:
      ++Out.NumMissing;
      break;
    case BenchVerdict::Added:
      ++Out.NumAdded;
      break;
    }
  }

  void leaf(const std::string &Path, const json::Value &Base,
            const json::Value &Cur) {
    // Booleans: a correctness bit flipping off (true -> false) is a
    // regression no threshold excuses; false -> true is an improvement.
    if (Base.isBool() && Cur.isBool()) {
      BenchVerdict V = Base.asBool() == Cur.asBool() ? BenchVerdict::Ok
                       : Base.asBool() ? BenchVerdict::Regressed
                                       : BenchVerdict::Improved;
      count(emit(Path, V, Base.asBool(), Cur.asBool(),
                 V == BenchVerdict::Ok ? "" : "boolean flipped"));
      return;
    }

    if (Base.isNumber() && Cur.isNumber()) {
      double B = Base.asNumber(), C = Cur.asNumber();
      Direction Dir = directionOf(Path);
      double T = thresholdFor(Path);
      BenchMetricDiff D;
      D.Path = Path;
      D.Baseline = B;
      D.Current = C;
      D.Threshold = T;
      D.RelDelta = B != 0.0 ? (C - B) / std::fabs(B) : (C == 0.0 ? 0.0 : 1.0);
      if (Dir == Direction::Exact) {
        D.Verdict = B == C ? BenchVerdict::Ok : BenchVerdict::Changed;
        if (D.Verdict == BenchVerdict::Changed)
          D.Note = "exact-match metric differs";
      } else {
        // Relative-threshold band around the baseline; which side is a
        // regression depends on the metric's direction.
        bool Worse = Dir == Direction::LowerIsBetter ? D.RelDelta > T
                                                     : D.RelDelta < -T;
        bool Better = Dir == Direction::LowerIsBetter ? D.RelDelta < -T
                                                      : D.RelDelta > T;
        D.Verdict = Worse     ? BenchVerdict::Regressed
                    : Better  ? BenchVerdict::Improved
                              : BenchVerdict::Ok;
      }
      Out.Metrics.push_back(D);
      count(Out.Metrics.back());
      return;
    }

    if (Base.isString() && Cur.isString()) {
      bool Same = Base.asString() == Cur.asString();
      count(emit(Path, Same ? BenchVerdict::Ok : BenchVerdict::Changed, 0, 0,
                 Same ? ""
                      : format("\"%s\" -> \"%s\"", Base.asString().c_str(),
                               Cur.asString().c_str())));
      return;
    }

    if (Base.isNull() && Cur.isNull()) {
      count(emit(Path, BenchVerdict::Ok, 0, 0, ""));
      return;
    }

    count(emit(Path, BenchVerdict::Changed, 0, 0, "value kind changed"));
  }

  const BenchDiffOptions &Options;
  BenchDiffResult &Out;
};

const char *verdictName(BenchVerdict V) {
  switch (V) {
  case BenchVerdict::Ok:
    return "ok";
  case BenchVerdict::Improved:
    return "improved";
  case BenchVerdict::Regressed:
    return "REGRESSED";
  case BenchVerdict::Changed:
    return "CHANGED";
  case BenchVerdict::Missing:
    return "MISSING";
  case BenchVerdict::Added:
    return "added";
  }
  return "?";
}

} // namespace

bool sbi::diffBenchJson(std::string_view BaselineJson,
                        std::string_view CurrentJson,
                        const BenchDiffOptions &Options,
                        BenchDiffResult &Out, std::string &Error) {
  Out = BenchDiffResult();
  json::Value Base, Cur;
  if (!json::parse(BaselineJson, Base, Error)) {
    Error = "baseline: " + Error;
    return false;
  }
  if (!json::parse(CurrentJson, Cur, Error)) {
    Error = "current: " + Error;
    return false;
  }
  Differ(Options, Out).walk("", &Base, &Cur);
  return true;
}

std::string sbi::renderBenchDiff(const BenchDiffResult &R) {
  std::string Out;
  for (const BenchMetricDiff &D : R.Metrics) {
    if (D.Verdict == BenchVerdict::Ok)
      continue;
    Out += format("%-10s %s", verdictName(D.Verdict), D.Path.c_str());
    if (D.Verdict == BenchVerdict::Regressed ||
        D.Verdict == BenchVerdict::Improved)
      Out += format("  %.6g -> %.6g (%+.1f%%, threshold %.0f%%)", D.Baseline,
                    D.Current, 100.0 * D.RelDelta, 100.0 * D.Threshold);
    if (!D.Note.empty())
      Out += "  [" + D.Note + "]";
    Out += '\n';
  }
  Out += format("benchdiff: %llu ok, %llu improved, %llu regressed, %llu "
                "changed, %llu missing, %llu added -> %s\n",
                static_cast<unsigned long long>(R.NumOk),
                static_cast<unsigned long long>(R.NumImproved),
                static_cast<unsigned long long>(R.NumRegressed),
                static_cast<unsigned long long>(R.NumChanged),
                static_cast<unsigned long long>(R.NumMissing),
                static_cast<unsigned long long>(R.NumAdded),
                R.failed() ? "FAIL" : "PASS");
  return Out;
}

std::string sbi::renderBenchDiffJson(const BenchDiffResult &R) {
  std::string Out = "{\n";
  Out += format("  \"pass\": %s,\n", R.failed() ? "false" : "true");
  Out += format("  \"ok\": %llu, \"improved\": %llu, \"regressed\": %llu, "
                "\"changed\": %llu, \"missing\": %llu, \"added\": %llu,\n",
                static_cast<unsigned long long>(R.NumOk),
                static_cast<unsigned long long>(R.NumImproved),
                static_cast<unsigned long long>(R.NumRegressed),
                static_cast<unsigned long long>(R.NumChanged),
                static_cast<unsigned long long>(R.NumMissing),
                static_cast<unsigned long long>(R.NumAdded));
  Out += "  \"metrics\": [";
  bool First = true;
  for (const BenchMetricDiff &D : R.Metrics) {
    if (D.Verdict == BenchVerdict::Ok)
      continue;
    Out += First ? "\n    " : ",\n    ";
    First = false;
    Out += format("{\"path\": \"%s\", \"verdict\": \"%s\", \"baseline\": "
                  "%.6g, \"current\": %.6g, \"rel_delta\": %.6g}",
                  D.Path.c_str(), verdictName(D.Verdict), D.Baseline,
                  D.Current, D.RelDelta);
  }
  Out += First ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}
