//===- obs/Phase.cpp - Monotonic phase timers with nested scopes ----------===//

#include "obs/Phase.h"

#include <cassert>
#include <vector>

using namespace sbi;

namespace {

/// The per-thread stack of open phase names; destruction order of
/// ScopedPhase guarantees stack discipline. Disabled scopes push nothing,
/// so a phase opened while telemetry was off never distorts the paths of
/// enabled scopes.
thread_local std::vector<const char *> PhaseStack;

std::string joinedPath() {
  std::string Path;
  for (const char *Name : PhaseStack) {
    if (!Path.empty())
      Path += '/';
    Path += Name;
  }
  return Path;
}

} // namespace

ScopedPhase::ScopedPhase(const char *Name, MetricsRegistry *Registry)
    : Registry(Registry) {
  if (!Registry)
    return;
  PhaseStack.push_back(Name);
  Start = std::chrono::steady_clock::now();
}

ScopedPhase::~ScopedPhase() {
  if (!Registry)
    return;
  auto End = std::chrono::steady_clock::now();
  std::string Path = joinedPath();
  assert(!PhaseStack.empty() && "phase stack underflow");
  PhaseStack.pop_back();
  Registry->recordPhase(
      Path, static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(End -
                                                                     Start)
                    .count()));
}
