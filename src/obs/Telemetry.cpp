//===- obs/Telemetry.cpp - Telemetry switch -------------------------------===//

#include "obs/Telemetry.h"

using namespace sbi;

std::atomic<bool> Telemetry::EnabledFlag{false};
