//===- lang/Lexer.cpp - MicroC lexer --------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace sbi;

const char *sbi::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StrLiteral:
    return "string literal";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwRecord:
    return "'record'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwStr:
    return "'str'";
  case TokenKind::KwArr:
    return "'arr'";
  case TokenKind::KwRec:
    return "'rec'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  }
  return "unknown token";
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  ++Pos;
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (C == '\n') {
      ++Line;
      ++Pos;
    } else if (C == ' ' || C == '\t' || C == '\r') {
      ++Pos;
    } else if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        ++Pos;
    } else if (C == '/' && peek(1) == '*') {
      Pos += 2;
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\n')
          ++Line;
        ++Pos;
      }
      if (Pos < Source.size())
        Pos += 2;
    } else {
      return;
    }
  }
}

Token Lexer::makeToken(TokenKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Line = Line;
  return T;
}

Token Lexer::errorToken(const std::string &Message) {
  Token T = makeToken(TokenKind::Error);
  T.Text = Message;
  return T;
}

Token Lexer::lexNumber() {
  Token T = makeToken(TokenKind::IntLiteral);
  int64_t Value = 0;
  while (std::isdigit(static_cast<unsigned char>(peek()))) {
    Value = Value * 10 + (advance() - '0');
  }
  T.IntValue = Value;
  return T;
}

Token Lexer::lexString() {
  Token T = makeToken(TokenKind::StrLiteral);
  advance(); // Opening quote.
  std::string Value;
  while (true) {
    if (Pos >= Source.size() || peek() == '\n')
      return errorToken("unterminated string literal");
    char C = advance();
    if (C == '"')
      break;
    if (C != '\\') {
      Value += C;
      continue;
    }
    if (Pos >= Source.size())
      return errorToken("unterminated escape sequence");
    char Escape = advance();
    switch (Escape) {
    case 'n':
      Value += '\n';
      break;
    case 't':
      Value += '\t';
      break;
    case '0':
      Value += '\0';
      break;
    case '\\':
    case '"':
      Value += Escape;
      break;
    default:
      return errorToken("unknown escape sequence");
    }
  }
  T.Text = std::move(Value);
  return T;
}

Token Lexer::lexIdentifier() {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"fn", TokenKind::KwFn},           {"record", TokenKind::KwRecord},
      {"int", TokenKind::KwInt},         {"str", TokenKind::KwStr},
      {"arr", TokenKind::KwArr},         {"rec", TokenKind::KwRec},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},     {"for", TokenKind::KwFor},
      {"return", TokenKind::KwReturn},   {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"null", TokenKind::KwNull},       {"new", TokenKind::KwNew},
  };

  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    ++Pos;
  std::string_view Text = Source.substr(Start, Pos - Start);
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second);
  Token T = makeToken(TokenKind::Identifier);
  T.Text = std::string(Text);
  return T;
}

Token Lexer::lex() {
  skipTrivia();
  if (Pos >= Source.size())
    return makeToken(TokenKind::Eof);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier();
  if (C == '"')
    return lexString();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case '[':
    return makeToken(TokenKind::LBracket);
  case ']':
    return makeToken(TokenKind::RBracket);
  case ';':
    return makeToken(TokenKind::Semicolon);
  case ',':
    return makeToken(TokenKind::Comma);
  case '.':
    return makeToken(TokenKind::Dot);
  case '+':
    return makeToken(TokenKind::Plus);
  case '-':
    return makeToken(TokenKind::Minus);
  case '*':
    return makeToken(TokenKind::Star);
  case '/':
    return makeToken(TokenKind::Slash);
  case '%':
    return makeToken(TokenKind::Percent);
  case '=':
    return makeToken(match('=') ? TokenKind::EqualEqual : TokenKind::Assign);
  case '<':
    return makeToken(match('=') ? TokenKind::LessEqual : TokenKind::Less);
  case '>':
    return makeToken(match('=') ? TokenKind::GreaterEqual
                                : TokenKind::Greater);
  case '!':
    return makeToken(match('=') ? TokenKind::NotEqual : TokenKind::Bang);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp);
    return errorToken("expected '&&'");
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe);
    return errorToken("expected '||'");
  default:
    return errorToken("unexpected character");
  }
}

std::vector<Token> Lexer::lexAll(std::string_view Source) {
  Lexer L(Source);
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(L.lex());
    if (Tokens.back().is(TokenKind::Eof) || Tokens.back().is(TokenKind::Error))
      return Tokens;
  }
}
