//===- lang/AstPrinter.h - Render MicroC expressions as source text -------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions back to compact source text. The instrumentation
/// pass uses this to give every predicate the human-readable description
/// the paper's tables show (e.g. "files[filesindex].language > 16").
///
//===----------------------------------------------------------------------===//

#ifndef SBI_LANG_ASTPRINTER_H
#define SBI_LANG_ASTPRINTER_H

#include "lang/AST.h"

#include <string>

namespace sbi {

/// Renders \p E as one-line source text.
std::string exprToString(const Expr &E);

/// Renders \p S as indented source text (trailing newline included).
/// Parser-produced statements reparse to a structurally identical AST
/// (round-trip tested in tests/lang/AstPrinterTest.cpp).
std::string stmtToString(const Stmt &S);

/// Renders a whole program — records, globals, functions in declaration
/// order — as parseable source text with the same round-trip guarantee.
std::string programToString(const Program &Prog);

} // namespace sbi

#endif // SBI_LANG_ASTPRINTER_H
