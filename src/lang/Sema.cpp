//===- lang/Sema.cpp - MicroC semantic analysis ---------------------------===//

#include "lang/Sema.h"

#include "lang/Intrinsics.h"
#include "support/StringUtils.h"

#include <unordered_map>

using namespace sbi;

namespace {

/// One declared variable visible in the current scope chain.
struct Binding {
  std::string Name;
  VarKind Kind;
  VarSlot Slot;
};

class SemaPass {
public:
  SemaPass(Program &Prog, std::vector<Diagnostic> &Diags)
      : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  void error(int Line, const std::string &Message) {
    Diags.push_back({Line, Message});
    Failed = true;
  }

  /// Collects every int-kinded binding currently visible, except \p Exclude.
  std::vector<ScopedIntVar> visibleIntVars(const VarSlot *Exclude) const;

  Binding *findBinding(const std::string &Name);
  void declare(int Line, VarKind Kind, const std::string &Name, VarSlot Slot);

  void checkFunction(FuncDecl &Func);
  void checkStmt(Stmt &S);
  void checkExpr(Expr &E);
  void checkLValue(Expr &E);

  Program &Prog;
  std::vector<Diagnostic> &Diags;
  bool Failed = false;

  /// Scope chain: Scopes[i] holds bindings opened by scope i. Globals live
  /// in Scopes[0].
  std::vector<std::vector<Binding>> Scopes;
  int NextLocalSlot = 0;
  int MaxLocalSlot = 0;
  int LoopDepth = 0;
  std::unordered_map<std::string, const FuncDecl *> FunctionsByName;
};

} // namespace

std::vector<ScopedIntVar>
SemaPass::visibleIntVars(const VarSlot *Exclude) const {
  std::vector<ScopedIntVar> Result;
  for (const auto &Scope : Scopes)
    for (const Binding &B : Scope) {
      if (B.Kind != VarKind::Int)
        continue;
      if (Exclude && B.Slot == *Exclude)
        continue;
      Result.push_back({B.Name, B.Slot});
    }
  return Result;
}

Binding *SemaPass::findBinding(const std::string &Name) {
  for (auto ScopeIt = Scopes.rbegin(); ScopeIt != Scopes.rend(); ++ScopeIt)
    for (auto It = ScopeIt->rbegin(); It != ScopeIt->rend(); ++It)
      if (It->Name == Name)
        return &*It;
  return nullptr;
}

void SemaPass::declare(int Line, VarKind Kind, const std::string &Name,
                       VarSlot Slot) {
  // Shadowing across scopes is allowed; redeclaration in one scope is not.
  for (const Binding &B : Scopes.back())
    if (B.Name == Name) {
      error(Line, format("redeclaration of '%s'", Name.c_str()));
      return;
    }
  Scopes.back().push_back({Name, Kind, Slot});
}

bool SemaPass::run() {
  Scopes.emplace_back(); // Global scope.

  for (const auto &Record : Prog.Records) {
    for (size_t I = 0; I < Record->Fields.size(); ++I)
      for (size_t J = I + 1; J < Record->Fields.size(); ++J)
        if (Record->Fields[I] == Record->Fields[J])
          error(Record->Line, format("duplicate field '%s' in record '%s'",
                                     Record->Fields[I].c_str(),
                                     Record->Name.c_str()));
    for (const auto &Other : Prog.Records)
      if (Other.get() != Record.get() && Other->Name == Record->Name) {
        error(Record->Line,
              format("duplicate record '%s'", Record->Name.c_str()));
        break;
      }
  }

  for (const auto &Func : Prog.Functions) {
    if (lookupIntrinsic(Func->Name))
      error(Func->Line, format("function '%s' shadows a builtin",
                               Func->Name.c_str()));
    if (!FunctionsByName.emplace(Func->Name, Func.get()).second)
      error(Func->Line,
            format("duplicate function '%s'", Func->Name.c_str()));
  }

  int GlobalSlot = 0;
  for (auto &Global : Prog.Globals) {
    // The initializer may only use globals declared earlier, so check it
    // before declaring this one.
    if (Global->Init) {
      checkExpr(*Global->Init);
      if (Global->Kind == VarKind::Int)
        Global->VisibleIntVars = visibleIntVars(/*Exclude=*/nullptr);
    }
    Global->Slot = GlobalSlot++;
    declare(Global->Line, Global->Kind, Global->Name,
            {/*IsGlobal=*/true, Global->Slot});
  }

  for (auto &Func : Prog.Functions)
    checkFunction(*Func);

  const FuncDecl *Main = Prog.findFunction("main");
  if (!Main)
    error(1, "program has no 'main' function");
  else if (!Main->Params.empty())
    error(Main->Line, "'main' must take no parameters");

  return !Failed;
}

void SemaPass::checkFunction(FuncDecl &Func) {
  NextLocalSlot = 0;
  MaxLocalSlot = 0;
  LoopDepth = 0;
  Scopes.emplace_back(); // Parameter scope.

  for (const Param &P : Func.Params)
    declare(Func.Line, P.Kind, P.Name, {/*IsGlobal=*/false, NextLocalSlot++});
  MaxLocalSlot = NextLocalSlot;

  checkStmt(*Func.Body);
  Func.NumLocals = MaxLocalSlot;
  Scopes.pop_back();
}

void SemaPass::checkLValue(Expr &E) {
  checkExpr(E);
  if (E.Kind == ExprKind::VarRef || E.Kind == ExprKind::Index ||
      E.Kind == ExprKind::Field)
    return;
  error(E.Line, "assignment target must be a variable, element, or field");
}

void SemaPass::checkStmt(Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Expr:
    checkExpr(*static_cast<ExprStmt &>(S).E);
    return;

  case StmtKind::Assign: {
    auto &Assign = static_cast<AssignStmt &>(S);
    checkLValue(*Assign.Target);
    checkExpr(*Assign.Value);
    if (Assign.Target->Kind == ExprKind::VarRef) {
      auto &Var = static_cast<VarRefExpr &>(*Assign.Target);
      if (Var.DeclaredKind == VarKind::Int && Var.Slot.isValid()) {
        Assign.TargetIsIntVar = true;
        Assign.VisibleIntVars = visibleIntVars(&Var.Slot);
      }
    }
    return;
  }

  case StmtKind::VarDecl: {
    auto &Decl = static_cast<VarDeclStmt &>(S);
    if (Decl.Init)
      checkExpr(*Decl.Init);
    Decl.Slot = {/*IsGlobal=*/false, NextLocalSlot++};
    MaxLocalSlot = std::max(MaxLocalSlot, NextLocalSlot);
    if (Decl.DeclKind == VarKind::Int && Decl.Init)
      Decl.VisibleIntVars = visibleIntVars(&Decl.Slot);
    declare(Decl.Line, Decl.DeclKind, Decl.Name, Decl.Slot);
    return;
  }

  case StmtKind::Block: {
    auto &Block = static_cast<BlockStmt &>(S);
    int SavedSlot = NextLocalSlot;
    Scopes.emplace_back();
    for (StmtPtr &Child : Block.Body)
      checkStmt(*Child);
    Scopes.pop_back();
    // Slots of block-scoped locals are reused by sibling blocks.
    NextLocalSlot = SavedSlot;
    return;
  }

  case StmtKind::If: {
    auto &If = static_cast<IfStmt &>(S);
    checkExpr(*If.Cond);
    checkStmt(*If.Then);
    if (If.Else)
      checkStmt(*If.Else);
    return;
  }

  case StmtKind::While: {
    auto &While = static_cast<WhileStmt &>(S);
    checkExpr(*While.Cond);
    ++LoopDepth;
    checkStmt(*While.Body);
    --LoopDepth;
    return;
  }

  case StmtKind::For: {
    auto &For = static_cast<ForStmt &>(S);
    int SavedSlot = NextLocalSlot;
    Scopes.emplace_back(); // The init declaration scopes over the loop.
    if (For.Init)
      checkStmt(*For.Init);
    if (For.Cond)
      checkExpr(*For.Cond);
    if (For.Step)
      checkStmt(*For.Step);
    ++LoopDepth;
    checkStmt(*For.Body);
    --LoopDepth;
    Scopes.pop_back();
    NextLocalSlot = SavedSlot;
    return;
  }

  case StmtKind::Return: {
    auto &Return = static_cast<ReturnStmt &>(S);
    if (Return.Value)
      checkExpr(*Return.Value);
    return;
  }

  case StmtKind::Break:
    if (LoopDepth == 0)
      error(S.Line, "'break' outside of a loop");
    return;

  case StmtKind::Continue:
    if (LoopDepth == 0)
      error(S.Line, "'continue' outside of a loop");
    return;
  }
}

void SemaPass::checkExpr(Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::StrLit:
  case ExprKind::NullLit:
    return;

  case ExprKind::VarRef: {
    auto &Var = static_cast<VarRefExpr &>(E);
    Binding *B = findBinding(Var.Name);
    if (!B) {
      error(E.Line, format("use of undeclared variable '%s'",
                           Var.Name.c_str()));
      return;
    }
    Var.Slot = B->Slot;
    Var.DeclaredKind = B->Kind;
    return;
  }

  case ExprKind::Unary:
    checkExpr(*static_cast<UnaryExpr &>(E).Operand);
    return;

  case ExprKind::Binary: {
    auto &Bin = static_cast<BinaryExpr &>(E);
    checkExpr(*Bin.Lhs);
    checkExpr(*Bin.Rhs);
    return;
  }

  case ExprKind::Index: {
    auto &Index = static_cast<IndexExpr &>(E);
    checkExpr(*Index.Base);
    checkExpr(*Index.Subscript);
    return;
  }

  case ExprKind::Field:
    checkExpr(*static_cast<FieldExpr &>(E).Base);
    return;

  case ExprKind::Call: {
    auto &Call = static_cast<CallExpr &>(E);
    for (ExprPtr &Arg : Call.Args)
      checkExpr(*Arg);
    if (const IntrinsicInfo *Info = lookupIntrinsic(Call.Callee)) {
      Call.IntrinsicId = static_cast<int>(Info->Id);
      if (static_cast<int>(Call.Args.size()) != Info->Arity)
        error(E.Line, format("'%s' expects %d argument(s), got %zu",
                             Call.Callee.c_str(), Info->Arity,
                             Call.Args.size()));
      return;
    }
    auto It = FunctionsByName.find(Call.Callee);
    if (It == FunctionsByName.end()) {
      error(E.Line,
            format("call to undefined function '%s'", Call.Callee.c_str()));
      return;
    }
    Call.Target = It->second;
    if (Call.Args.size() != It->second->Params.size())
      error(E.Line, format("'%s' expects %zu argument(s), got %zu",
                           Call.Callee.c_str(), It->second->Params.size(),
                           Call.Args.size()));
    return;
  }

  case ExprKind::New: {
    auto &New = static_cast<NewExpr &>(E);
    New.Record = Prog.findRecord(New.RecordName);
    if (!New.Record)
      error(E.Line,
            format("unknown record '%s'", New.RecordName.c_str()));
    return;
  }
  }
}

bool sbi::analyzeProgram(Program &Prog, std::vector<Diagnostic> &Diags) {
  return SemaPass(Prog, Diags).run();
}

std::unique_ptr<Program>
sbi::parseAndAnalyze(std::string_view Source, std::vector<Diagnostic> &Diags) {
  std::unique_ptr<Program> Prog = Parser::parse(Source, Diags);
  if (!Prog)
    return nullptr;
  if (!analyzeProgram(*Prog, Diags))
    return nullptr;
  return Prog;
}
