//===- lang/Token.h - MicroC token definitions ----------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for MicroC, the small C-like language that stands in for the
/// paper's C subject programs. See lang/Parser.h for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_LANG_TOKEN_H
#define SBI_LANG_TOKEN_H

#include <cstdint>
#include <string>

namespace sbi {

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  StrLiteral,

  // Keywords.
  KwFn,
  KwRecord,
  KwInt,
  KwStr,
  KwArr,
  KwRec,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwNull,
  KwNew,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  AmpAmp,
  PipePipe,
  Bang,

  Eof,
  Error,
};

/// Returns a human-readable spelling for diagnostics ("'<='", "identifier").
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  /// Identifier or string-literal text (unescaped for strings).
  std::string Text;
  /// Value for integer literals.
  int64_t IntValue = 0;
  /// 1-based source line.
  int Line = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace sbi

#endif // SBI_LANG_TOKEN_H
