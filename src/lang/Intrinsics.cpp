//===- lang/Intrinsics.cpp - MicroC builtin functions ---------------------===//

#include "lang/Intrinsics.h"

#include <cassert>

using namespace sbi;

static const IntrinsicInfo Table[] = {
    {Intrinsic::Print, "print", 1, false},
    {Intrinsic::Println, "println", 1, false},
    {Intrinsic::Len, "len", 1, true},
    {Intrinsic::Substr, "substr", 3, false},
    {Intrinsic::Charat, "charat", 2, true},
    {Intrinsic::Strcmp, "strcmp", 2, true},
    {Intrinsic::Strcat, "strcat", 2, false},
    {Intrinsic::Itoa, "itoa", 1, false},
    {Intrinsic::Atoi, "atoi", 1, true},
    {Intrinsic::Mkarray, "mkarray", 1, false},
    {Intrinsic::Arg, "arg", 1, false},
    {Intrinsic::Nargs, "nargs", 0, true},
    {Intrinsic::Exit, "exit", 1, false},
    {Intrinsic::Abs, "abs", 1, true},
    {Intrinsic::Min, "min", 2, true},
    {Intrinsic::Max, "max", 2, true},
    {Intrinsic::BugMark, "__bug", 1, false},
    {Intrinsic::Trap, "trap", 1, false},
};

const IntrinsicInfo *sbi::lookupIntrinsic(const std::string &Name) {
  for (const IntrinsicInfo &Info : Table)
    if (Name == Info.Name)
      return &Info;
  return nullptr;
}

const IntrinsicInfo &sbi::intrinsicInfo(int Which) {
  assert(Which >= 0 &&
         Which < static_cast<int>(sizeof(Table) / sizeof(Table[0])) &&
         "intrinsic id out of range");
  return Table[Which];
}
