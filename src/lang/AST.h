//===- lang/AST.h - MicroC abstract syntax tree ---------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for MicroC. Nodes are tagged structs (Kind enum plus
/// static cast) rather than a virtual-dispatch hierarchy: the interpreter
/// and instrumentation pass both dispatch with switches, which keeps hot
/// paths branch-predictable and the node layout transparent.
///
/// Every node carries a program-unique integer Id (assigned by the parser in
/// creation order). The instrumentation pass keys site tables by these Ids,
/// so the runtime can hand the observer nothing but a node Id and a value.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_LANG_AST_H
#define SBI_LANG_AST_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sbi {

/// Declared storage kind of a variable. MicroC is dynamically checked but
/// statically kinded: the kind drives which assignments get scalar-pairs
/// instrumentation (Int only).
enum class VarKind { Int, Str, Arr, Rec };

const char *varKindName(VarKind Kind);

/// A resolved variable reference: where the storage lives.
struct VarSlot {
  bool IsGlobal = false;
  /// Index into the global table or the function frame.
  int Index = -1;

  bool isValid() const { return Index >= 0; }
  bool operator==(const VarSlot &Other) const {
    return IsGlobal == Other.IsGlobal && Index == Other.Index;
  }
};

/// A record (struct) declaration: a name and ordered field names. Field
/// values are dynamically typed.
struct RecordDecl {
  std::string Name;
  std::vector<std::string> Fields;
  int Line = 0;

  /// Returns the index of \p Field, or -1 if the record has no such field.
  int fieldIndex(const std::string &Field) const {
    for (size_t I = 0; I < Fields.size(); ++I)
      if (Fields[I] == Field)
        return static_cast<int>(I);
    return -1;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  StrLit,
  NullLit,
  VarRef,
  Unary,
  Binary,
  Index,
  Field,
  Call,
  New,
};

enum class UnaryOp { Not, Neg };

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And, // Short-circuit; a branch instrumentation site.
  Or,  // Short-circuit; a branch instrumentation site.
};

const char *binaryOpSpelling(BinaryOp Op);

struct Expr {
  ExprKind Kind;
  /// Program-unique node id assigned at parse time.
  int Id = -1;
  int Line = 0;

  explicit Expr(ExprKind Kind) : Kind(Kind) {}
  virtual ~Expr() = default;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  int64_t Value = 0;
  IntLitExpr() : Expr(ExprKind::IntLit) {}
};

struct StrLitExpr : Expr {
  std::string Value;
  StrLitExpr() : Expr(ExprKind::StrLit) {}
};

struct NullLitExpr : Expr {
  NullLitExpr() : Expr(ExprKind::NullLit) {}
};

struct VarRefExpr : Expr {
  std::string Name;
  /// Filled in by Sema.
  VarSlot Slot;
  VarKind DeclaredKind = VarKind::Int;
  VarRefExpr() : Expr(ExprKind::VarRef) {}
};

struct UnaryExpr : Expr {
  UnaryOp Op = UnaryOp::Not;
  ExprPtr Operand;
  UnaryExpr() : Expr(ExprKind::Unary) {}
};

struct BinaryExpr : Expr {
  BinaryOp Op = BinaryOp::Add;
  ExprPtr Lhs;
  ExprPtr Rhs;
  BinaryExpr() : Expr(ExprKind::Binary) {}
};

struct IndexExpr : Expr {
  ExprPtr Base;
  ExprPtr Subscript;
  IndexExpr() : Expr(ExprKind::Index) {}
};

struct FieldExpr : Expr {
  ExprPtr Base;
  std::string FieldName;
  FieldExpr() : Expr(ExprKind::Field) {}
};

struct FuncDecl;

struct CallExpr : Expr {
  std::string Callee;
  std::vector<ExprPtr> Args;
  /// Resolved by Sema: exactly one of these identifies the target.
  const FuncDecl *Target = nullptr;
  int IntrinsicId = -1;
  CallExpr() : Expr(ExprKind::Call) {}
};

struct NewExpr : Expr {
  std::string RecordName;
  const RecordDecl *Record = nullptr; // Resolved by Sema.
  NewExpr() : Expr(ExprKind::New) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Expr,
  Assign,
  VarDecl,
  Block,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
};

struct Stmt {
  StmtKind Kind;
  int Id = -1;
  int Line = 0;

  explicit Stmt(StmtKind Kind) : Kind(Kind) {}
  virtual ~Stmt() = default;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt : Stmt {
  ExprPtr E;
  ExprStmt() : Stmt(StmtKind::Expr) {}
};

/// A variable visible at a scalar assignment, recorded by Sema so the
/// scalar-pairs instrumentation scheme (Section 2) can enumerate the
/// same-typed in-scope variables y_i for an assignment x = ...
struct ScopedIntVar {
  std::string Name;
  VarSlot Slot;
};

struct AssignStmt : Stmt {
  /// Target lvalue: VarRef, Index, or Field expression.
  ExprPtr Target;
  ExprPtr Value;
  /// True when the target is a VarRef of declared kind Int (set by Sema);
  /// only such assignments receive scalar-pairs instrumentation.
  bool TargetIsIntVar = false;
  /// In-scope int variables other than the target, at this statement.
  std::vector<ScopedIntVar> VisibleIntVars;
  AssignStmt() : Stmt(StmtKind::Assign) {}
};

struct VarDeclStmt : Stmt {
  VarKind DeclKind = VarKind::Int;
  std::string Name;
  ExprPtr Init; // May be null: Int -> 0, Str -> "", Arr/Rec -> null.
  VarSlot Slot; // Resolved by Sema.
  /// For int declarations with initializers: treated as a scalar assignment
  /// for instrumentation purposes, so Sema records visible int vars here too.
  std::vector<ScopedIntVar> VisibleIntVars;
  VarDeclStmt() : Stmt(StmtKind::VarDecl) {}
};

struct BlockStmt : Stmt {
  std::vector<StmtPtr> Body;
  BlockStmt() : Stmt(StmtKind::Block) {}
};

struct IfStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.
  IfStmt() : Stmt(StmtKind::If) {}
};

struct WhileStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Body;
  WhileStmt() : Stmt(StmtKind::While) {}
};

struct ForStmt : Stmt {
  StmtPtr Init; // May be null; VarDecl, Assign, or Expr statement.
  ExprPtr Cond; // May be null (treated as true).
  StmtPtr Step; // May be null; Assign or Expr statement.
  StmtPtr Body;
  ForStmt() : Stmt(StmtKind::For) {}
};

struct ReturnStmt : Stmt {
  ExprPtr Value; // May be null.
  ReturnStmt() : Stmt(StmtKind::Return) {}
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::Break) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::Continue) {}
};

//===----------------------------------------------------------------------===//
// Declarations and the program
//===----------------------------------------------------------------------===//

struct Param {
  VarKind Kind = VarKind::Int;
  std::string Name;
};

struct FuncDecl {
  std::string Name;
  std::vector<Param> Params;
  std::unique_ptr<BlockStmt> Body;
  int Line = 0;
  /// Frame size in slots (params first), set by Sema.
  int NumLocals = 0;
};

struct GlobalDecl {
  VarKind Kind = VarKind::Int;
  std::string Name;
  ExprPtr Init; // May be null; evaluated once at program start.
  int Slot = -1;
  int Line = 0;
  /// Visible int globals declared before this one (for scalar-pairs on
  /// global initializers).
  std::vector<ScopedIntVar> VisibleIntVars;
};

struct Program {
  std::vector<std::unique_ptr<RecordDecl>> Records;
  std::vector<std::unique_ptr<GlobalDecl>> Globals;
  std::vector<std::unique_ptr<FuncDecl>> Functions;
  /// Total number of AST node ids handed out; node ids are < this bound.
  int NumNodeIds = 0;
  /// Number of source lines (for the paper's lines-of-code statistic).
  int NumLines = 0;

  const FuncDecl *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }

  const RecordDecl *findRecord(const std::string &Name) const {
    for (const auto &R : Records)
      if (R->Name == Name)
        return R.get();
    return nullptr;
  }
};

} // namespace sbi

#endif // SBI_LANG_AST_H
