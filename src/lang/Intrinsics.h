//===- lang/Intrinsics.h - MicroC builtin functions -----------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The builtin function table shared by semantic analysis (name/arity
/// resolution), the instrumentation pass (deciding which call sites are
/// scalar-returning and thus get the "returns" scheme), and the interpreter
/// (dispatch).
///
//===----------------------------------------------------------------------===//

#ifndef SBI_LANG_INTRINSICS_H
#define SBI_LANG_INTRINSICS_H

#include <string>

namespace sbi {

enum class Intrinsic {
  Print,   ///< print(v): writes v to the run's output, no newline.
  Println, ///< println(v): print(v) plus '\n'.
  Len,     ///< len(s|a) -> int: string length or array logical size.
  Substr,  ///< substr(s, start, count) -> str; clamps to the string.
  Charat,  ///< charat(s, i) -> int character code; traps out of range.
  Strcmp,  ///< strcmp(a, b) -> int in {-1, 0, 1}.
  Strcat,  ///< strcat(a, b) -> str.
  Itoa,    ///< itoa(i) -> str decimal rendering.
  Atoi,    ///< atoi(s) -> int; parses an optional sign + digits prefix.
  Mkarray, ///< mkarray(n) -> arr of n zero ints; traps if n < 0 or huge.
  Arg,     ///< arg(i) -> str: the i-th run input token; traps out of range.
  Nargs,   ///< nargs() -> int: number of run input tokens.
  Exit,    ///< exit(code): ends the run with the given exit code.
  Abs,     ///< abs(x) -> int.
  Min,     ///< min(a, b) -> int.
  Max,     ///< max(a, b) -> int.
  BugMark, ///< __bug(n): ground-truth marker, invisible to the analysis.
  Trap,    ///< trap(msg): explicit crash (models an unrecoverable fault).
};

struct IntrinsicInfo {
  Intrinsic Id;
  const char *Name;
  int Arity;
  /// True if calls to the intrinsic return an int and therefore qualify as
  /// scalar-returning call sites for the "returns" instrumentation scheme.
  bool ReturnsInt;
};

/// Returns the intrinsic table entry for \p Name, or null if \p Name is not
/// an intrinsic.
const IntrinsicInfo *lookupIntrinsic(const std::string &Name);

/// Returns the table entry for intrinsic id \p Which (total function).
const IntrinsicInfo &intrinsicInfo(int Which);

} // namespace sbi

#endif // SBI_LANG_INTRINSICS_H
