//===- lang/AstPrinter.cpp - Render MicroC expressions as source text -----===//

#include "lang/AstPrinter.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace sbi;

static void printExpr(const Expr &E, std::string &Out);

static void printMaybeParen(const Expr &E, std::string &Out) {
  bool NeedsParens = E.Kind == ExprKind::Binary;
  if (NeedsParens)
    Out += '(';
  printExpr(E, Out);
  if (NeedsParens)
    Out += ')';
}

/// Base of a postfix expression ([] or .): unary operators also need
/// parentheses here — postfix binds tighter, so "(-x)[i]" printed without
/// them would reparse as -(x[i]).
static void printPostfixBase(const Expr &E, std::string &Out) {
  bool NeedsParens =
      E.Kind == ExprKind::Binary || E.Kind == ExprKind::Unary;
  if (NeedsParens)
    Out += '(';
  printExpr(E, Out);
  if (NeedsParens)
    Out += ')';
}

static void printExpr(const Expr &E, std::string &Out) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    Out += format("%lld", static_cast<long long>(
                              static_cast<const IntLitExpr &>(E).Value));
    return;
  case ExprKind::StrLit: {
    Out += '"';
    for (char C : static_cast<const StrLitExpr &>(E).Value) {
      if (C == '\n')
        Out += "\\n";
      else if (C == '\t')
        Out += "\\t";
      else if (C == '"' || C == '\\') {
        Out += '\\';
        Out += C;
      } else {
        Out += C;
      }
    }
    Out += '"';
    return;
  }
  case ExprKind::NullLit:
    Out += "null";
    return;
  case ExprKind::VarRef:
    Out += static_cast<const VarRefExpr &>(E).Name;
    return;
  case ExprKind::Unary: {
    const auto &Unary = static_cast<const UnaryExpr &>(E);
    Out += Unary.Op == UnaryOp::Not ? '!' : '-';
    printMaybeParen(*Unary.Operand, Out);
    return;
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    printMaybeParen(*Bin.Lhs, Out);
    Out += ' ';
    Out += binaryOpSpelling(Bin.Op);
    Out += ' ';
    printMaybeParen(*Bin.Rhs, Out);
    return;
  }
  case ExprKind::Index: {
    const auto &Index = static_cast<const IndexExpr &>(E);
    printPostfixBase(*Index.Base, Out);
    Out += '[';
    printExpr(*Index.Subscript, Out);
    Out += ']';
    return;
  }
  case ExprKind::Field: {
    const auto &Field = static_cast<const FieldExpr &>(E);
    printPostfixBase(*Field.Base, Out);
    Out += '.';
    Out += Field.FieldName;
    return;
  }
  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(E);
    Out += Call.Callee;
    Out += '(';
    for (size_t I = 0; I < Call.Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      printExpr(*Call.Args[I], Out);
    }
    Out += ')';
    return;
  }
  case ExprKind::New:
    Out += "new ";
    Out += static_cast<const NewExpr &>(E).RecordName;
    return;
  }
}

std::string sbi::exprToString(const Expr &E) {
  std::string Out;
  printExpr(E, Out);
  return Out;
}

static const char *kindSpelling(VarKind Kind) {
  switch (Kind) {
  case VarKind::Int:
    return "int";
  case VarKind::Str:
    return "str";
  case VarKind::Arr:
    return "arr";
  case VarKind::Rec:
    return "rec";
  }
  return "?";
}

/// A statement in a for-header position (init/step): no semicolon, no
/// indentation. The parser only places VarDecl, Assign, and Expr here.
static void printSimpleStmt(const Stmt &S, std::string &Out) {
  switch (S.Kind) {
  case StmtKind::VarDecl: {
    const auto &Decl = static_cast<const VarDeclStmt &>(S);
    Out += kindSpelling(Decl.DeclKind);
    Out += ' ';
    Out += Decl.Name;
    if (Decl.Init) {
      Out += " = ";
      printExpr(*Decl.Init, Out);
    }
    return;
  }
  case StmtKind::Assign: {
    const auto &Assign = static_cast<const AssignStmt &>(S);
    printExpr(*Assign.Target, Out);
    Out += " = ";
    printExpr(*Assign.Value, Out);
    return;
  }
  case StmtKind::Expr:
    printExpr(*static_cast<const ExprStmt &>(S).E, Out);
    return;
  default:
    assert(false && "not a simple statement");
  }
}

static void printStmt(const Stmt &S, std::string &Out, int Indent) {
  auto pad = [&] { Out.append(static_cast<size_t>(Indent) * 2, ' '); };
  switch (S.Kind) {
  case StmtKind::Expr:
  case StmtKind::Assign:
  case StmtKind::VarDecl:
    pad();
    printSimpleStmt(S, Out);
    Out += ";\n";
    return;
  case StmtKind::Block: {
    pad();
    Out += "{\n";
    for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Body)
      printStmt(*Child, Out, Indent + 1);
    pad();
    Out += "}\n";
    return;
  }
  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    pad();
    Out += "if (";
    printExpr(*If.Cond, Out);
    Out += ")\n";
    printStmt(*If.Then, Out, Indent + 1);
    if (If.Else) {
      pad();
      Out += "else\n";
      printStmt(*If.Else, Out, Indent + 1);
    }
    return;
  }
  case StmtKind::While: {
    const auto &While = static_cast<const WhileStmt &>(S);
    pad();
    Out += "while (";
    printExpr(*While.Cond, Out);
    Out += ")\n";
    printStmt(*While.Body, Out, Indent + 1);
    return;
  }
  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    pad();
    Out += "for (";
    if (For.Init)
      printSimpleStmt(*For.Init, Out);
    Out += "; ";
    if (For.Cond)
      printExpr(*For.Cond, Out);
    Out += "; ";
    if (For.Step)
      printSimpleStmt(*For.Step, Out);
    Out += ")\n";
    printStmt(*For.Body, Out, Indent + 1);
    return;
  }
  case StmtKind::Return: {
    const auto &Return = static_cast<const ReturnStmt &>(S);
    pad();
    Out += "return";
    if (Return.Value) {
      Out += ' ';
      printExpr(*Return.Value, Out);
    }
    Out += ";\n";
    return;
  }
  case StmtKind::Break:
    pad();
    Out += "break;\n";
    return;
  case StmtKind::Continue:
    pad();
    Out += "continue;\n";
    return;
  }
}

std::string sbi::stmtToString(const Stmt &S) {
  std::string Out;
  printStmt(S, Out, 0);
  return Out;
}

std::string sbi::programToString(const Program &Prog) {
  std::string Out;
  for (const auto &Record : Prog.Records) {
    Out += format("record %s {\n", Record->Name.c_str());
    for (const std::string &Field : Record->Fields)
      Out += format("  %s;\n", Field.c_str());
    Out += "}\n";
  }
  for (const auto &Global : Prog.Globals) {
    Out += kindSpelling(Global->Kind);
    Out += ' ';
    Out += Global->Name;
    if (Global->Init) {
      Out += " = ";
      printExpr(*Global->Init, Out);
    }
    Out += ";\n";
  }
  for (const auto &Func : Prog.Functions) {
    Out += format("fn %s(", Func->Name.c_str());
    for (size_t I = 0; I < Func->Params.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += kindSpelling(Func->Params[I].Kind);
      Out += ' ';
      Out += Func->Params[I].Name;
    }
    Out += ")\n";
    printStmt(*Func->Body, Out, 0);
  }
  return Out;
}
