//===- lang/AstPrinter.cpp - Render MicroC expressions as source text -----===//

#include "lang/AstPrinter.h"

#include "support/StringUtils.h"

using namespace sbi;

static void printExpr(const Expr &E, std::string &Out);

static void printMaybeParen(const Expr &E, std::string &Out) {
  bool NeedsParens = E.Kind == ExprKind::Binary;
  if (NeedsParens)
    Out += '(';
  printExpr(E, Out);
  if (NeedsParens)
    Out += ')';
}

static void printExpr(const Expr &E, std::string &Out) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    Out += format("%lld", static_cast<long long>(
                              static_cast<const IntLitExpr &>(E).Value));
    return;
  case ExprKind::StrLit: {
    Out += '"';
    for (char C : static_cast<const StrLitExpr &>(E).Value) {
      if (C == '\n')
        Out += "\\n";
      else if (C == '\t')
        Out += "\\t";
      else if (C == '"' || C == '\\') {
        Out += '\\';
        Out += C;
      } else {
        Out += C;
      }
    }
    Out += '"';
    return;
  }
  case ExprKind::NullLit:
    Out += "null";
    return;
  case ExprKind::VarRef:
    Out += static_cast<const VarRefExpr &>(E).Name;
    return;
  case ExprKind::Unary: {
    const auto &Unary = static_cast<const UnaryExpr &>(E);
    Out += Unary.Op == UnaryOp::Not ? '!' : '-';
    printMaybeParen(*Unary.Operand, Out);
    return;
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    printMaybeParen(*Bin.Lhs, Out);
    Out += ' ';
    Out += binaryOpSpelling(Bin.Op);
    Out += ' ';
    printMaybeParen(*Bin.Rhs, Out);
    return;
  }
  case ExprKind::Index: {
    const auto &Index = static_cast<const IndexExpr &>(E);
    printMaybeParen(*Index.Base, Out);
    Out += '[';
    printExpr(*Index.Subscript, Out);
    Out += ']';
    return;
  }
  case ExprKind::Field: {
    const auto &Field = static_cast<const FieldExpr &>(E);
    printMaybeParen(*Field.Base, Out);
    Out += '.';
    Out += Field.FieldName;
    return;
  }
  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(E);
    Out += Call.Callee;
    Out += '(';
    for (size_t I = 0; I < Call.Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      printExpr(*Call.Args[I], Out);
    }
    Out += ')';
    return;
  }
  case ExprKind::New:
    Out += "new ";
    Out += static_cast<const NewExpr &>(E).RecordName;
    return;
  }
}

std::string sbi::exprToString(const Expr &E) {
  std::string Out;
  printExpr(E, Out);
  return Out;
}
