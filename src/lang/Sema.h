//===- lang/Sema.h - MicroC semantic analysis -----------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MicroC programs:
///
///   - binds every variable reference to a storage slot (global table or
///     function frame) and records the declared kind;
///   - resolves calls to user functions or intrinsics and checks arity;
///   - resolves 'new' expressions to record declarations;
///   - verifies break/continue appear inside loops and that main() exists;
///   - annotates every scalar (int) assignment and int declaration with the
///     list of in-scope int variables, which the scalar-pairs
///     instrumentation scheme consumes (Section 2 of the paper).
///
/// Runs in place on the AST produced by the parser. Returns false and fills
/// diagnostics on error; a program that passes Sema is safe to interpret.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_LANG_SEMA_H
#define SBI_LANG_SEMA_H

#include "lang/AST.h"
#include "lang/Parser.h"

namespace sbi {

/// Analyzes \p Prog in place. Returns true on success; on failure appends
/// at least one entry to \p Diags.
bool analyzeProgram(Program &Prog, std::vector<Diagnostic> &Diags);

/// Convenience: parse + analyze. Returns null on any error.
std::unique_ptr<Program> parseAndAnalyze(std::string_view Source,
                                         std::vector<Diagnostic> &Diags);

} // namespace sbi

#endif // SBI_LANG_SEMA_H
