//===- lang/Lexer.h - MicroC lexer ----------------------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-pass lexer for MicroC. Supports // and /* */ comments, decimal
/// integer literals, double-quoted strings with \n \t \\ \" \0 escapes, and
/// the operator set listed in lang/Token.h. Errors are reported as Error
/// tokens carrying a message; the lexer never aborts.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_LANG_LEXER_H
#define SBI_LANG_LEXER_H

#include "lang/Token.h"

#include <string_view>
#include <vector>

namespace sbi {

class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  /// Returns the next token, advancing the cursor. After end of input,
  /// returns Eof tokens indefinitely.
  Token lex();

  /// Lexes the entire input, ending with an Eof token.
  static std::vector<Token> lexAll(std::string_view Source);

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() { return Source[Pos++]; }
  bool match(char Expected);
  void skipTrivia();
  Token makeToken(TokenKind Kind);
  Token errorToken(const std::string &Message);
  Token lexNumber();
  Token lexString();
  Token lexIdentifier();

  std::string_view Source;
  size_t Pos = 0;
  int Line = 1;
};

} // namespace sbi

#endif // SBI_LANG_LEXER_H
