//===- lang/Parser.cpp - MicroC recursive-descent parser ------------------===//

#include "lang/Parser.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace sbi;

const char *sbi::varKindName(VarKind Kind) {
  switch (Kind) {
  case VarKind::Int:
    return "int";
  case VarKind::Str:
    return "str";
  case VarKind::Arr:
    return "arr";
  case VarKind::Rec:
    return "rec";
  }
  return "?";
}

const char *sbi::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

std::string sbi::renderDiagnostics(const std::vector<Diagnostic> &Diags) {
  std::string Result;
  for (const Diagnostic &D : Diags)
    Result += format("line %d: %s\n", D.Line, D.Message.c_str());
  return Result;
}

Parser::Parser(std::string_view Source, std::vector<Diagnostic> &Diags)
    : Lex(Source), Diags(Diags) {
  Current = Lex.lex();
}

bool Parser::atKind() const {
  return at(TokenKind::KwInt) || at(TokenKind::KwStr) || at(TokenKind::KwArr) ||
         at(TokenKind::KwRec);
}

Token Parser::take() {
  Token T = Current;
  if (T.is(TokenKind::Error)) {
    error(T.Text);
  } else if (!T.is(TokenKind::Eof)) {
    Current = Lex.lex();
    if (Current.is(TokenKind::Error))
      error(Current.Text);
  }
  return T;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (at(Kind)) {
    take();
    return true;
  }
  error(format("expected %s in %s, found %s", tokenKindName(Kind), Context,
               tokenKindName(Current.Kind)));
  return false;
}

void Parser::error(const std::string &Message) {
  if (!HadError)
    Diags.push_back({Current.Line, Message});
  HadError = true;
}

template <typename T> std::unique_ptr<T> Parser::makeExpr(int Line) {
  auto Node = std::make_unique<T>();
  Node->Id = nextId();
  Node->Line = Line;
  return Node;
}

template <typename T> std::unique_ptr<T> Parser::makeStmt(int Line) {
  auto Node = std::make_unique<T>();
  Node->Id = nextId();
  Node->Line = Line;
  return Node;
}

VarKind Parser::parseKind() {
  TokenKind K = take().Kind;
  switch (K) {
  case TokenKind::KwInt:
    return VarKind::Int;
  case TokenKind::KwStr:
    return VarKind::Str;
  case TokenKind::KwArr:
    return VarKind::Arr;
  case TokenKind::KwRec:
    return VarKind::Rec;
  default:
    error("expected a declaration kind");
    return VarKind::Int;
  }
}

std::unique_ptr<Program> Parser::parse(std::string_view Source,
                                       std::vector<Diagnostic> &Diags) {
  Parser P(Source, Diags);
  auto Prog = P.parseProgram();
  if (P.HadError)
    return nullptr;
  Prog->NumNodeIds = P.NumIds;
  Prog->NumLines =
      static_cast<int>(std::count(Source.begin(), Source.end(), '\n')) + 1;
  return Prog;
}

std::unique_ptr<Program> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  while (!at(TokenKind::Eof) && !HadError) {
    if (at(TokenKind::KwRecord)) {
      if (auto R = parseRecord())
        Prog->Records.push_back(std::move(R));
    } else if (at(TokenKind::KwFn)) {
      if (auto F = parseFunction())
        Prog->Functions.push_back(std::move(F));
    } else if (atKind()) {
      if (auto G = parseGlobal(parseKind()))
        Prog->Globals.push_back(std::move(G));
    } else {
      error(format("expected a declaration, found %s",
                   tokenKindName(Current.Kind)));
    }
  }
  return Prog;
}

std::unique_ptr<RecordDecl> Parser::parseRecord() {
  take(); // 'record'
  auto Record = std::make_unique<RecordDecl>();
  Record->Line = Current.Line;
  if (!at(TokenKind::Identifier)) {
    error("expected record name");
    return nullptr;
  }
  Record->Name = take().Text;
  expect(TokenKind::LBrace, "record declaration");
  while (at(TokenKind::Identifier) && !HadError) {
    Record->Fields.push_back(take().Text);
    expect(TokenKind::Semicolon, "record field");
  }
  expect(TokenKind::RBrace, "record declaration");
  return HadError ? nullptr : std::move(Record);
}

std::unique_ptr<GlobalDecl> Parser::parseGlobal(VarKind Kind) {
  auto Global = std::make_unique<GlobalDecl>();
  Global->Kind = Kind;
  Global->Line = Current.Line;
  if (!at(TokenKind::Identifier)) {
    error("expected global variable name");
    return nullptr;
  }
  Global->Name = take().Text;
  if (at(TokenKind::Assign)) {
    take();
    Global->Init = parseExpr();
  }
  expect(TokenKind::Semicolon, "global declaration");
  return HadError ? nullptr : std::move(Global);
}

std::unique_ptr<FuncDecl> Parser::parseFunction() {
  take(); // 'fn'
  auto Func = std::make_unique<FuncDecl>();
  Func->Line = Current.Line;
  if (!at(TokenKind::Identifier)) {
    error("expected function name");
    return nullptr;
  }
  Func->Name = take().Text;
  expect(TokenKind::LParen, "function declaration");
  if (!at(TokenKind::RParen)) {
    while (true) {
      Param P;
      if (!atKind()) {
        error("expected parameter kind");
        return nullptr;
      }
      P.Kind = parseKind();
      if (!at(TokenKind::Identifier)) {
        error("expected parameter name");
        return nullptr;
      }
      P.Name = take().Text;
      Func->Params.push_back(std::move(P));
      if (!at(TokenKind::Comma))
        break;
      take();
    }
  }
  expect(TokenKind::RParen, "function declaration");
  Func->Body = parseBlock();
  return HadError ? nullptr : std::move(Func);
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  auto Block = makeStmt<BlockStmt>(Current.Line);
  expect(TokenKind::LBrace, "block");
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof) && !HadError)
    if (StmtPtr S = parseStmt())
      Block->Body.push_back(std::move(S));
  expect(TokenKind::RBrace, "block");
  return Block;
}

StmtPtr Parser::parseStmt() {
  if (HadError)
    return nullptr;
  int Line = Current.Line;

  if (atKind())
    return parseVarDecl(parseKind(), /*ConsumeSemicolon=*/true);

  if (at(TokenKind::LBrace))
    return parseBlock();

  if (at(TokenKind::KwIf)) {
    take();
    auto If = makeStmt<IfStmt>(Line);
    expect(TokenKind::LParen, "if statement");
    If->Cond = parseExpr();
    expect(TokenKind::RParen, "if statement");
    If->Then = parseStmt();
    if (at(TokenKind::KwElse)) {
      take();
      If->Else = parseStmt();
    }
    return If;
  }

  if (at(TokenKind::KwWhile)) {
    take();
    auto While = makeStmt<WhileStmt>(Line);
    expect(TokenKind::LParen, "while statement");
    While->Cond = parseExpr();
    expect(TokenKind::RParen, "while statement");
    While->Body = parseStmt();
    return While;
  }

  if (at(TokenKind::KwFor)) {
    take();
    auto For = makeStmt<ForStmt>(Line);
    expect(TokenKind::LParen, "for statement");
    if (!at(TokenKind::Semicolon))
      For->Init = parseSimpleStmt();
    expect(TokenKind::Semicolon, "for statement");
    if (!at(TokenKind::Semicolon))
      For->Cond = parseExpr();
    expect(TokenKind::Semicolon, "for statement");
    if (!at(TokenKind::RParen))
      For->Step = parseSimpleStmt();
    expect(TokenKind::RParen, "for statement");
    For->Body = parseStmt();
    return For;
  }

  if (at(TokenKind::KwReturn)) {
    take();
    auto Return = makeStmt<ReturnStmt>(Line);
    if (!at(TokenKind::Semicolon))
      Return->Value = parseExpr();
    expect(TokenKind::Semicolon, "return statement");
    return Return;
  }

  if (at(TokenKind::KwBreak)) {
    take();
    expect(TokenKind::Semicolon, "break statement");
    return makeStmt<BreakStmt>(Line);
  }

  if (at(TokenKind::KwContinue)) {
    take();
    expect(TokenKind::Semicolon, "continue statement");
    return makeStmt<ContinueStmt>(Line);
  }

  StmtPtr S = parseExprOrAssign();
  expect(TokenKind::Semicolon, "statement");
  return S;
}

StmtPtr Parser::parseVarDecl(VarKind Kind, bool ConsumeSemicolon) {
  auto Decl = makeStmt<VarDeclStmt>(Current.Line);
  Decl->DeclKind = Kind;
  if (!at(TokenKind::Identifier)) {
    error("expected variable name");
    return nullptr;
  }
  Decl->Name = take().Text;
  if (at(TokenKind::Assign)) {
    take();
    Decl->Init = parseExpr();
  }
  if (ConsumeSemicolon)
    expect(TokenKind::Semicolon, "variable declaration");
  return Decl;
}

StmtPtr Parser::parseSimpleStmt() {
  if (atKind())
    return parseVarDecl(parseKind(), /*ConsumeSemicolon=*/false);
  return parseExprOrAssign();
}

StmtPtr Parser::parseExprOrAssign() {
  int Line = Current.Line;
  ExprPtr E = parseExpr();
  if (!at(TokenKind::Assign)) {
    auto S = makeStmt<ExprStmt>(Line);
    S->E = std::move(E);
    return S;
  }
  take(); // '='
  if (E && E->Kind != ExprKind::VarRef && E->Kind != ExprKind::Index &&
      E->Kind != ExprKind::Field)
    error("assignment target must be a variable, element, or field");
  auto Assign = makeStmt<AssignStmt>(Line);
  Assign->Target = std::move(E);
  Assign->Value = parseExpr();
  return Assign;
}

ExprPtr Parser::parseExpr() { return parseBinary(0); }

namespace {
struct OpInfo {
  BinaryOp Op;
  int Precedence;
};
} // namespace

static bool binaryOpFor(TokenKind Kind, OpInfo &Info) {
  switch (Kind) {
  case TokenKind::PipePipe:
    Info = {BinaryOp::Or, 1};
    return true;
  case TokenKind::AmpAmp:
    Info = {BinaryOp::And, 2};
    return true;
  case TokenKind::EqualEqual:
    Info = {BinaryOp::Eq, 3};
    return true;
  case TokenKind::NotEqual:
    Info = {BinaryOp::Ne, 3};
    return true;
  case TokenKind::Less:
    Info = {BinaryOp::Lt, 4};
    return true;
  case TokenKind::LessEqual:
    Info = {BinaryOp::Le, 4};
    return true;
  case TokenKind::Greater:
    Info = {BinaryOp::Gt, 4};
    return true;
  case TokenKind::GreaterEqual:
    Info = {BinaryOp::Ge, 4};
    return true;
  case TokenKind::Plus:
    Info = {BinaryOp::Add, 5};
    return true;
  case TokenKind::Minus:
    Info = {BinaryOp::Sub, 5};
    return true;
  case TokenKind::Star:
    Info = {BinaryOp::Mul, 6};
    return true;
  case TokenKind::Slash:
    Info = {BinaryOp::Div, 6};
    return true;
  case TokenKind::Percent:
    Info = {BinaryOp::Rem, 6};
    return true;
  default:
    return false;
  }
}

ExprPtr Parser::parseBinary(int MinPrecedence) {
  ExprPtr Lhs = parseUnary();
  while (!HadError) {
    OpInfo Info;
    if (!binaryOpFor(Current.Kind, Info) || Info.Precedence < MinPrecedence)
      return Lhs;
    int Line = Current.Line;
    take();
    ExprPtr Rhs = parseBinary(Info.Precedence + 1);
    auto Node = makeExpr<BinaryExpr>(Line);
    Node->Op = Info.Op;
    Node->Lhs = std::move(Lhs);
    Node->Rhs = std::move(Rhs);
    Lhs = std::move(Node);
  }
  return Lhs;
}

ExprPtr Parser::parseUnary() {
  int Line = Current.Line;
  if (at(TokenKind::Bang) || at(TokenKind::Minus)) {
    UnaryOp Op = at(TokenKind::Bang) ? UnaryOp::Not : UnaryOp::Neg;
    take();
    auto Node = makeExpr<UnaryExpr>(Line);
    Node->Op = Op;
    Node->Operand = parseUnary();
    return Node;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (!HadError) {
    int Line = Current.Line;
    if (at(TokenKind::LBracket)) {
      take();
      auto Node = makeExpr<IndexExpr>(Line);
      Node->Base = std::move(E);
      Node->Subscript = parseExpr();
      expect(TokenKind::RBracket, "index expression");
      E = std::move(Node);
    } else if (at(TokenKind::Dot)) {
      take();
      auto Node = makeExpr<FieldExpr>(Line);
      Node->Base = std::move(E);
      if (!at(TokenKind::Identifier)) {
        error("expected field name after '.'");
        return nullptr;
      }
      Node->FieldName = take().Text;
      E = std::move(Node);
    } else {
      return E;
    }
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  int Line = Current.Line;

  if (at(TokenKind::IntLiteral)) {
    auto Node = makeExpr<IntLitExpr>(Line);
    Node->Value = take().IntValue;
    return Node;
  }

  if (at(TokenKind::StrLiteral)) {
    auto Node = makeExpr<StrLitExpr>(Line);
    Node->Value = take().Text;
    return Node;
  }

  if (at(TokenKind::KwNull)) {
    take();
    return makeExpr<NullLitExpr>(Line);
  }

  if (at(TokenKind::KwNew)) {
    take();
    auto Node = makeExpr<NewExpr>(Line);
    if (!at(TokenKind::Identifier)) {
      error("expected record name after 'new'");
      return nullptr;
    }
    Node->RecordName = take().Text;
    return Node;
  }

  if (at(TokenKind::Identifier)) {
    std::string Name = take().Text;
    if (at(TokenKind::LParen)) {
      take();
      auto Call = makeExpr<CallExpr>(Line);
      Call->Callee = std::move(Name);
      if (!at(TokenKind::RParen)) {
        while (true) {
          Call->Args.push_back(parseExpr());
          if (!at(TokenKind::Comma))
            break;
          take();
        }
      }
      expect(TokenKind::RParen, "call expression");
      return Call;
    }
    auto Var = makeExpr<VarRefExpr>(Line);
    Var->Name = std::move(Name);
    return Var;
  }

  if (at(TokenKind::LParen)) {
    take();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "parenthesized expression");
    return E;
  }

  error(format("expected an expression, found %s",
               tokenKindName(Current.Kind)));
  return nullptr;
}
