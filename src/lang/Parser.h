//===- lang/Parser.h - MicroC recursive-descent parser --------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MicroC. The grammar:
///
/// \code
///   program    := (recordDecl | globalDecl | funcDecl)*
///   recordDecl := 'record' IDENT '{' (IDENT ';')* '}'
///   globalDecl := kind IDENT ('=' expr)? ';'
///   kind       := 'int' | 'str' | 'arr' | 'rec'
///   funcDecl   := 'fn' IDENT '(' (kind IDENT (',' kind IDENT)*)? ')' block
///   block      := '{' stmt* '}'
///   stmt       := varDecl | if | while | for | return ';' | 'break' ';'
///              | 'continue' ';' | block | exprOrAssign ';'
///   varDecl    := kind IDENT ('=' expr)? ';'
///   if         := 'if' '(' expr ')' stmt ('else' stmt)?
///   while      := 'while' '(' expr ')' stmt
///   for        := 'for' '(' simple? ';' expr? ';' simple? ')' stmt
///   simple     := varDecl-no-semi | exprOrAssign
///   exprOrAssign := postfixLValue '=' expr | expr
///   expr       := or; or := and ('||' and)*; and := eq ('&&' eq)*
///   eq         := rel (('=='|'!=') rel)*; rel := add (relop add)*
///   add        := mul (('+'|'-') mul)*; mul := unary (('*'|'/'|'%') unary)*
///   unary      := ('!'|'-') unary | postfix
///   postfix    := primary ('[' expr ']' | '.' IDENT)*
///   primary    := INT | STRING | 'null' | 'new' IDENT
///              | IDENT '(' args ')' | IDENT | '(' expr ')'
/// \endcode
///
/// On a syntax error the parser records a diagnostic and stops; partial
/// programs are never returned.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_LANG_PARSER_H
#define SBI_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Lexer.h"

#include <string>
#include <vector>

namespace sbi {

/// One parse or semantic diagnostic.
struct Diagnostic {
  int Line = 0;
  std::string Message;
};

std::string renderDiagnostics(const std::vector<Diagnostic> &Diags);

class Parser {
public:
  /// Parses \p Source. Returns the program, or null after appending at
  /// least one diagnostic to \p Diags.
  static std::unique_ptr<Program> parse(std::string_view Source,
                                        std::vector<Diagnostic> &Diags);

private:
  Parser(std::string_view Source, std::vector<Diagnostic> &Diags);

  const Token &peek() const { return Current; }
  bool at(TokenKind Kind) const { return Current.is(Kind); }
  bool atKind() const;
  Token take();
  bool expect(TokenKind Kind, const char *Context);
  void error(const std::string &Message);
  int nextId() { return NumIds++; }

  template <typename T> std::unique_ptr<T> makeExpr(int Line);
  template <typename T> std::unique_ptr<T> makeStmt(int Line);

  std::unique_ptr<Program> parseProgram();
  std::unique_ptr<RecordDecl> parseRecord();
  std::unique_ptr<GlobalDecl> parseGlobal(VarKind Kind);
  std::unique_ptr<FuncDecl> parseFunction();
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseVarDecl(VarKind Kind, bool ConsumeSemicolon);
  StmtPtr parseSimpleStmt();
  StmtPtr parseExprOrAssign();
  VarKind parseKind();

  ExprPtr parseExpr();
  ExprPtr parseBinary(int MinPrecedence);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  Lexer Lex;
  Token Current;
  std::vector<Diagnostic> &Diags;
  bool HadError = false;
  int NumIds = 0;
};

} // namespace sbi

#endif // SBI_LANG_PARSER_H
