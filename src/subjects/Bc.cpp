//===- subjects/Bc.cpp - The BC study subject ------------------------------===//
//
// Models GNU BC 1.06's reported heap buffer overrun (Section 4.2.2): the
// interpreter's array-name table holds 32 entries; defining a 33rd array
// writes past the table into adjacent heap metadata. The crash happens much
// later, when an unrelated summary routine follows the clobbered metadata,
// so the stack at the crash says nothing about the cause — exactly the
// situation the paper highlights ("no useful information on the stack").
//
// The heap is emulated inside the program (one big int array with
// bump-pointer allocation), so the overrun corrupts program-managed
// metadata rather than interpreter state, and whether the corruption
// crashes depends on what the clobbered cell later makes the summary
// routine read — non-deterministic, like real memory corruption.
//
// Input layout: each arg token is one calculator statement:
//   "v<name>=<n>"       assign scalar variable (name in a..z)
//   "d<id>:<size>"      define array <id> with <size> cells
//   "s<id>:<idx>=<n>"   store into array <id>
//   "p<id>:<idx>"       print an array element
//   "e<name>"           print a scalar variable
//   "q"                 print the summary and quit
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

#include "support/StringUtils.h"

using namespace sbi;

static const char BcTemplate[] = R"mc(
// bc: tiny calculator with an emulated heap, modeled on GNU bc 1.06.
int HEAP_SIZE = 4096;
int A_CAP = 32;
arr heap = null;
int heap_top = 0;
int a_base = 0;      // name table: heap[0 .. A_CAP-1]
int a_count = 0;
int summary_cell = 0; // heap[summary_cell] points at the summary block
int summary_base = 0;
int stmt_count = 0;
int store_count = 0;
arr vars = null;

fn halloc(int n) {
  int p = heap_top;
  if (heap_top + n > HEAP_SIZE) {
    println("bc: out of memory");
    exit(0);
  }
  heap_top = heap_top + n;
  return p;
}

fn heap_init() {
  heap = mkarray(HEAP_SIZE);
  vars = mkarray(26);
  heap_top = A_CAP + 1;
  summary_cell = A_CAP;
  summary_base = halloc(34);
  heap[summary_cell] = summary_base;
  heap[summary_base] = 32;  // number of summary slots that follow
  return 0;
}

fn array_define(int id, int size) {
  if (size < 1) {
    size = 1;
  }
  int hdr = halloc(size + 1);
  heap[hdr] = size;
${DEFINE_CHECK}
  // Record the data pointer in the name table. When a_count reaches A_CAP
  // this write lands on summary_cell, clobbering the summary pointer.
  heap[a_base + a_count] = hdr + 1;
  a_count = a_count + 1;
  return hdr + 1;
}

fn array_slot(int id) {
  if (id < 0) {
    return 0 - 1;
  }
  if (id >= a_count) {
    return 0 - 1;
  }
  return heap[a_base + id];
}

fn array_store(int id, int idx, int value) {
  int base = array_slot(id);
  if (base < 0) {
    return 0;
  }
  int size = heap[base - 1];
  if (idx < 0 || idx >= size) {
    return 0;
  }
  heap[base + idx] = value;
  store_count = store_count + 1;
  return 1;
}

fn array_load(int id, int idx) {
  int base = array_slot(id);
  if (base < 0) {
    return 0;
  }
  int size = heap[base - 1];
  if (idx < 0 || idx >= size) {
    return 0;
  }
  return heap[base + idx];
}

// Parses "<digits>" starting at position p; returns the value (stops at the
// first non-digit).
fn parse_num(str s, int p) {
  int v = 0;
  int i = p;
  while (i < len(s)) {
    int c = charat(s, i);
    if (c < 48 || c > 57) {
      return v;
    }
    v = v * 10 + (c - 48);
    i = i + 1;
  }
  return v;
}

fn find_char(str s, int target) {
  int i = 0;
  while (i < len(s)) {
    if (charat(s, i) == target) {
      return i;
    }
    i = i + 1;
  }
  return 0 - 1;
}

// The block walk lives in "library" code (the __lib_ prefix excludes it
// from instrumentation): in real bc the corrupted metadata was followed
// inside malloc, which the instrumentor never sees. Only the crash itself
// is observable there, exactly as in the paper's study.
fn __lib_block_walk(int sp) {
  int total = 0;
  int i = 0;
  while (i < heap[sp]) {
    total = total + heap[sp + 1 + i];
    i = i + 1;
  }
  return total;
}

// The summary pass runs at quit: it walks the summary block through the
// pointer stored at heap[summary_cell]. After the overrun that pointer is
// an array's data pointer, the "slot count" becomes whatever the user
// stored in that array's first cell, and the walk can run off the heap.
fn print_summary() {
  int total = __lib_block_walk(heap[summary_cell]);
  print("summary ");
  print(a_count);
  print(" arrays ");
  print(store_count);
  print(" stores total ");
  println(total);
  return total;
}

fn run_stmt(str s) {
  stmt_count = stmt_count + 1;
  if (len(s) < 1) {
    return 0;
  }
  int op = charat(s, 0);
  if (op == 118) { // 'v' assign variable: v<name>=<n>
    if (len(s) < 4) {
      return 0;
    }
    int name = charat(s, 1) - 97;
    if (name < 0 || name >= 26) {
      return 0;
    }
    int eq = find_char(s, 61);
    if (eq < 0) {
      return 0;
    }
    vars[name] = parse_num(s, eq + 1);
    return 1;
  }
  if (op == 100) { // 'd' define array: d<id>:<size>
    int colon = find_char(s, 58);
    if (colon < 0) {
      return 0;
    }
    int id = parse_num(s, 1);
    int size = parse_num(s, colon + 1);
    array_define(id, size);
    return 1;
  }
  if (op == 115) { // 's' store: s<id>:<idx>=<n>
    int colon = find_char(s, 58);
    int eq = find_char(s, 61);
    if (colon < 0 || eq < 0) {
      return 0;
    }
    int id = parse_num(s, 1);
    int idx = parse_num(s, colon + 1);
    int value = parse_num(s, eq + 1);
    array_store(id, idx, value);
    return 1;
  }
  if (op == 112) { // 'p' print element: p<id>:<idx>
    int colon = find_char(s, 58);
    if (colon < 0) {
      return 0;
    }
    int id = parse_num(s, 1);
    int idx = parse_num(s, colon + 1);
    println(array_load(id, idx));
    return 1;
  }
  if (op == 101) { // 'e' print variable: e<name>
    if (len(s) < 2) {
      return 0;
    }
    int name = charat(s, 1) - 97;
    if (name < 0 || name >= 26) {
      return 0;
    }
    println(vars[name]);
    return 1;
  }
  if (op == 113) { // 'q' quit
    print_summary();
    exit(0);
  }
  return 0;
}

fn main() {
  heap_init();
  int i = 0;
  int n = nargs();
  while (i < n) {
    run_stmt(arg(i));
    i = i + 1;
  }
  print_summary();
}
)mc";

static std::string buildBcSource(bool Buggy) {
  // Real bc 1.06 fails to grow the array-name table past its initial 32
  // entries ("old_count == 32"); the fixed version refuses further
  // definitions instead of overrunning.
  const char *BuggyCheck = R"(  if (a_count >= A_CAP) {
    __bug(1);
  })";
  const char *FixedCheck = R"(  if (a_count >= A_CAP) {
    println("bc: too many arrays");
    exit(0);
  })";
  return expandTemplate(BcTemplate,
                        {{"DEFINE_CHECK", Buggy ? BuggyCheck : FixedCheck}});
}

static std::vector<std::string> generateBcInput(Rng &R) {
  std::vector<std::string> Args;

  // Number of arrays defined; > 32 with moderate probability so the
  // overrun fires in a sizable minority of runs.
  int NumArrays = static_cast<int>(R.nextInRange(0, 48));
  int NextArrayId = 0;

  auto defineNextArray = [&] {
    int Size = static_cast<int>(R.nextInRange(2, 60));
    Args.push_back(format("d%d:%d", NextArrayId, Size));
    // Stores follow most definitions; large values in low slots are what
    // later turn the clobbered summary pointer into a wild walk.
    int NumStores = static_cast<int>(R.nextInRange(1, 3));
    for (int S = 0; S < NumStores; ++S) {
      int Index = R.nextBernoulli(0.7)
                      ? 0
                      : static_cast<int>(R.nextInRange(1, 4));
      int Value = R.nextBernoulli(0.75)
                      ? static_cast<int>(R.nextInRange(4000, 60000))
                      : static_cast<int>(R.nextInRange(0, 99));
      Args.push_back(format("s%d:%d=%d", NextArrayId, Index, Value));
    }
    ++NextArrayId;
  };

  size_t NumStatements = static_cast<size_t>(R.nextInRange(4, 70));
  for (size_t I = 0; I < NumStatements; ++I) {
    double Roll = R.nextDouble();
    if (Roll < 0.40 && NextArrayId < NumArrays) {
      defineNextArray();
    } else if (Roll < 0.55) {
      Args.push_back(format("v%c=%d", 'a' + static_cast<char>(R.nextBelow(26)),
                            static_cast<int>(R.nextInRange(0, 9999))));
    } else if (Roll < 0.70) {
      Args.push_back(
          format("e%c", 'a' + static_cast<char>(R.nextBelow(26))));
    } else if (Roll < 0.85 && NextArrayId > 0) {
      Args.push_back(format("p%d:%d",
                            static_cast<int>(R.nextBelow(
                                static_cast<uint64_t>(NextArrayId))),
                            static_cast<int>(R.nextInRange(0, 8))));
    } else {
      Args.push_back(format("s%d:%d=%d",
                            static_cast<int>(R.nextInRange(0, 40)),
                            static_cast<int>(R.nextInRange(0, 8)),
                            static_cast<int>(R.nextInRange(0, 999))));
    }
  }
  // Finish any remaining definitions so the drawn array count is realized.
  while (NextArrayId < NumArrays)
    defineNextArray();
  return Args;
}

const Subject &sbi::bcSubject() {
  static const Subject S = [] {
    Subject Subj;
    Subj.Name = "bc";
    Subj.Source = buildBcSource(/*Buggy=*/true);
    Subj.GoldenSource = buildBcSource(/*Buggy=*/false);
    Subj.Bugs = {{1, "buffer overrun",
                  "array-name table is never grown past 32 entries; the "
                  "33rd definition clobbers heap metadata and the crash "
                  "surfaces later in the summary walk",
                  /*Deterministic=*/false, "array_define"}};
    Subj.UseOutputOracle = false;
    Subj.GenerateInput = generateBcInput;
    return Subj;
  }();
  return S;
}
