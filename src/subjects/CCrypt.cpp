//===- subjects/CCrypt.cpp - The CCRYPT study subject ---------------------===//
//
// Models CCRYPT 1.2's known input-validation bug (Section 4.2.1): when the
// tool asks whether to overwrite an existing output file and the response
// read hits end of input, the response pointer is null and is dereferenced
// without a check. The paper's two retained predictors both point at this
// prompt path.
//
// Input layout (arg tokens):
//   arg0 = mode ("-e" or "-d"), arg1 = key, arg2 = "1" if the output file
//   already exists else "0", arg3 = text, arg4.. = optional prompt
//   responses ("y"/"n").
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

using namespace sbi;

static const char CCryptTemplate[] = R"mc(
// ccrypt: toy stream cipher modeled on ccrypt 1.2.
int rounds = 8;
int sched_sum = 0;
arr sched = null;

fn build_schedule(str key) {
  sched = mkarray(16);
  int i = 0;
  int acc = 7;
  while (i < 16) {
    int kc = 0;
    if (len(key) > 0) {
      kc = charat(key, i % len(key));
    }
    acc = (acc * 31 + kc + i) % 251;
    sched[i] = acc;
    sched_sum = sched_sum + acc;
    i = i + 1;
  }
  return sched_sum;
}

fn mix(int c, int r) {
  int v = (c + sched[r % 16]) % 256;
  if (v < 0) {
    v = v + 256;
  }
  return v;
}

fn unmix(int c, int r) {
  int v = (c - sched[r % 16]) % 256;
  if (v < 0) {
    v = v + 256;
  }
  return v;
}

fn transform(str text, int decrypt) {
  int i = 0;
  int checksum = 0;
  while (i < len(text)) {
    int c = charat(text, i);
    int r = 0;
    while (r < rounds) {
      if (decrypt == 1) {
        c = unmix(c, r + i);
      } else {
        c = mix(c, r + i);
      }
      r = r + 1;
    }
    checksum = (checksum * 17 + c) % 65536;
    i = i + 1;
  }
  return checksum;
}

// Reads the overwrite-prompt response; returns null at end of input, like
// fgets at EOF.
fn prompt_response(int respindex) {
  if (respindex < nargs()) {
    return arg(respindex);
  }
  return null;
}

fn main() {
  if (nargs() < 4) {
    println("usage: ccrypt mode key exists text [responses]");
    exit(0);
  }
  str mode = arg(0);
  str key = arg(1);
  int exists = atoi(arg(2));
  str text = arg(3);
  int decrypt = 0;
  if (strcmp(mode, "-d") == 0) {
    decrypt = 1;
  }

  build_schedule(key);

  if (exists == 1) {
    str res = prompt_response(4);
${PROMPT_CHECK}
    int first = charat(res, 0);
    if (first == 110) {
      println("not overwriting");
      exit(0);
    }
  }

  int checksum = transform(text, decrypt);
  print("checksum ");
  println(checksum);
  println(sched_sum);
}
)mc";

static std::string buildCCryptSource(bool Buggy) {
  // The bug: ccrypt reads the prompt response and immediately inspects its
  // first character. At end of input the response is null; the fixed
  // version checks, the buggy one dereferences.
  const char *BuggyCheck = R"(    if (res == null) {
      __bug(1);
    })";
  const char *FixedCheck = R"(    if (res == null) {
      println("end of input; not overwriting");
      exit(0);
    })";
  return expandTemplate(CCryptTemplate,
                        {{"PROMPT_CHECK", Buggy ? BuggyCheck : FixedCheck}});
}

static std::vector<std::string> generateCCryptInput(Rng &R) {
  std::vector<std::string> Args;
  Args.push_back(R.nextBernoulli(0.5) ? "-e" : "-d");

  std::string Key;
  size_t KeyLen = static_cast<size_t>(R.nextInRange(1, 8));
  for (size_t I = 0; I < KeyLen; ++I)
    Key += static_cast<char>('a' + R.nextBelow(26));
  Args.push_back(Key);

  bool Exists = R.nextBernoulli(0.65);
  Args.push_back(Exists ? "1" : "0");

  std::string Text;
  size_t TextLen = static_cast<size_t>(R.nextInRange(0, 80));
  for (size_t I = 0; I < TextLen; ++I)
    Text += static_cast<char>('a' + R.nextBelow(26));
  Args.push_back(Text);

  // Half the time the "user" supplies a response; otherwise the prompt
  // reads end of input and the bug fires.
  if (R.nextBernoulli(0.5))
    Args.push_back(R.nextBernoulli(0.7) ? "y" : "n");
  return Args;
}

const Subject &sbi::ccryptSubject() {
  static const Subject S = [] {
    Subject Subj;
    Subj.Name = "ccrypt";
    Subj.Source = buildCCryptSource(/*Buggy=*/true);
    Subj.GoldenSource = buildCCryptSource(/*Buggy=*/false);
    Subj.Bugs = {{1, "null dereference",
                  "overwrite-prompt response read at end of input is null "
                  "and dereferenced without a check",
                  /*Deterministic=*/true, "main"}};
    Subj.UseOutputOracle = false;
    Subj.GenerateInput = generateCCryptInput;
    return Subj;
  }();
  return S;
}
