//===- subjects/Subjects.h - The five buggy study programs ----------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MicroC reimplementations of the paper's five case-study programs, each
/// seeded with bugs matching the structure of the originals:
///
///   MOSS       9 seeded bugs: buffer overruns (one of which never causes a
///              failure), a null dereference, a missing end-of-list check,
///              a missing out-of-memory check, a data-structure invariant
///              violation, and an output-only comment-handling bug that
///              needs the output oracle (Section 4.1's validation study).
///   CCRYPT     one input-validation bug: reading the overwrite-prompt
///              response at end of input yields null, then dereferences.
///   BC         one heap buffer overrun whose crash happens long after the
///              overrun, in an unrelated function (useless stack).
///   EXIF       three independent crashing bugs with rates spread over two
///              orders of magnitude, including the maker-note loader bug
///              the paper walks through (o + s > buf_size leaves entry
///              data uninitialized; a later save path crashes).
///   RHYTHMBOX  an event-driven program with a dispose/timer race and an
///              unsafe library-API usage pattern.
///
/// Each subject carries a golden (bug-free) variant for output-oracle
/// labeling and a seeded random input generator shaped like the paper's
/// random-input campaigns.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUBJECTS_SUBJECTS_H
#define SBI_SUBJECTS_SUBJECTS_H

#include "support/Random.h"

#include <string>
#include <vector>

namespace sbi {

/// One seeded ground-truth bug.
struct BugSpec {
  int Id = 0; ///< 1-based; matches the __bug(n) markers in the source.
  std::string Kind;
  std::string Description;
  /// Whether the paper's taxonomy would call the bug deterministic with
  /// respect to its best predictor.
  bool Deterministic = false;
  /// The function containing the defect. The stack study compares crash
  /// locations against this: a stack is only useful if the crash names
  /// the cause (Section 6).
  std::string CauseFunction;
};

/// A study program: buggy source, golden source, bugs, input generator.
struct Subject {
  std::string Name;
  std::string Source;
  /// Bug-free variant used as the output oracle; empty when labels come
  /// from crashes alone.
  std::string GoldenSource;
  std::vector<BugSpec> Bugs;
  /// When true, a run whose output differs from the golden run's output is
  /// labeled as failing even if it did not crash.
  bool UseOutputOracle = false;

  /// Draws one random input (the run's arg tokens).
  std::vector<std::string> (*GenerateInput)(Rng &R) = nullptr;
};

const Subject &mossSubject();
const Subject &ccryptSubject();
const Subject &bcSubject();
const Subject &exifSubject();
const Subject &rhythmboxSubject();

/// All five, in the paper's Table 2 order.
std::vector<const Subject *> allSubjects();

/// Looks a subject up by (case-sensitive) name; null when unknown.
const Subject *findSubject(const std::string &Name);

/// Expands a subject source template: every occurrence of "${KEY}" is
/// replaced via \p Substitutions. Asserts that every placeholder resolves.
std::string expandTemplate(
    const std::string &Template,
    const std::vector<std::pair<std::string, std::string>> &Substitutions);

} // namespace sbi

#endif // SBI_SUBJECTS_SUBJECTS_H
