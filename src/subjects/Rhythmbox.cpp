//===- subjects/Rhythmbox.cpp - The RHYTHMBOX study subject ----------------===//
//
// Models RHYTHMBOX 0.6.5 (Section 4.2.4): an interactive, event-driven
// program built on an object library. The interesting state lives in a
// heap-allocated event queue, which is why the paper notes static analysis
// and stack inspection both struggle here. Two seeded bugs:
//
//   bug 1  a race between disposal and a pending timer: dispose() frees an
//          object's private data; a timer event still queued for that
//          object later dereferences it.
//   bug 2  an unsafe object-library usage pattern: reading a property via
//          object_get() while a change signal is still queued (no
//          reference held) corrupts the object's state; the crash surfaces
//          later in the renderer, far from the misuse.
//
// Input layout: each arg token is one UI event:
//   "p"  play (starts the player timer; enqueues a timer tick)
//   "t<k>" explicit timer tick for object k
//   "d<k>" dispose object k
//   "c<k>" property change on object k (queues a change signal and the
//          notify event that will later deliver it)
//   "g<k>" object_get on object k (the unsafe pattern when a signal is
//          still queued)
//   "s"  status-bar render
// with k in 0..3 (0 player, 1 view, 2 library, 3 statusbar).
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

#include "support/StringUtils.h"

using namespace sbi;

static const char RhythmboxTemplate[] = R"mc(
// rhythmbox: event-driven music-player model.
int QCAP = 512;
int NOBJ = 4;
arr queue = null;
int qhead = 0;
int qtail = 0;
int ticks = 0;
int renders = 0;
int gets = 0;
int notifies = 0;
arr objects = null; // of rec Obj
arr styles = null;  // renderer style table, 4 entries

record Obj {
  kind;
  disposed;
  priv;
}

record Priv {
  timer;
  sig_queued;
  state;
  busy;
}

fn enqueue(int code) {
  if (qtail >= QCAP) {
    return 0;
  }
  queue[qtail] = code;
  qtail = qtail + 1;
  return 1;
}

fn make_object(int kind) {
  rec o = new Obj;
  o.kind = kind;
  o.disposed = 0;
  rec p = new Priv;
  p.timer = 0;
  p.sig_queued = 0;
  p.state = kind * 3;
  p.busy = 0;
  o.priv = p;
  return o;
}

fn handle_play() {
  rec player = objects[0];
  if (player.disposed == 1) {
    return 0;
  }
  rec p = player.priv;
  p.timer = 1;
  ticks = ticks + 1;
  // The tick is delivered later through the queue; if the player is
  // disposed in between, the pending tick targets freed data.
  enqueue(10);
  return 1;
}

fn handle_timer(int k) {
  rec o = objects[k];
${TIMER_GUARD}
  rec p = o.priv;
  if (p.timer == 1) {
    p.state = p.state + 1;
    ticks = ticks + 1;
  }
  return p.timer;
}

fn handle_dispose(int k) {
  rec o = objects[k];
  if (o.disposed == 1) {
    return 0;
  }
  o.disposed = 1;
  o.priv = null;
  return 1;
}

fn handle_change(int k) {
  rec o = objects[k];
  if (o.disposed == 1) {
    return 0;
  }
  rec p = o.priv;
  p.sig_queued = 1;
  p.state = p.state + 2;
  // The notify event that will eventually deliver the signal.
  enqueue(40 + k);
  return 1;
}

fn handle_notify(int k) {
  rec o = objects[k];
  if (o.disposed == 1) {
    return 0;
  }
  rec p = o.priv;
  p.sig_queued = 0;
  notifies = notifies + 1;
  return 1;
}

fn handle_get(int k) {
  rec o = objects[k];
  if (o.disposed == 1) {
    return 0;
  }
  rec p = o.priv;
  gets = gets + 1;
${GET_BODY}
  return p.state;
}

fn handle_render() {
  renders = renders + 1;
  int i = 0;
  int acc = 0;
  while (i < NOBJ) {
    rec o = objects[i];
    if (o.disposed == 0) {
      rec p = o.priv;
      int idx = p.state / 1000;
      // After a bug-2 corruption idx leaves the 4-entry style table.
      acc = acc + styles[idx] + p.state % 7;
    }
    i = i + 1;
  }
  return acc;
}

fn dispatch(int code) {
  int kind = code / 10;
  int k = code % 10;
  if (kind == 1) {
    return handle_timer(k);
  }
  if (kind == 2) {
    return handle_dispose(k);
  }
  if (kind == 3) {
    return handle_change(k);
  }
  if (kind == 4) {
    return handle_notify(k);
  }
  if (kind == 5) {
    return handle_get(k);
  }
  if (kind == 6) {
    return handle_render();
  }
  if (kind == 7) {
    return handle_play();
  }
  return 0;
}

fn parse_event(str t) {
  if (len(t) < 1) {
    return 0 - 1;
  }
  int c = charat(t, 0);
  int k = 0;
  if (len(t) > 1) {
    k = charat(t, 1) - 48;
    if (k < 0 || k >= NOBJ) {
      k = 0;
    }
  }
  if (c == 112) { // 'p'
    return 70;
  }
  if (c == 116) { // 't'
    return 10 + k;
  }
  if (c == 100) { // 'd'
    return 20 + k;
  }
  if (c == 99) { // 'c'
    return 30 + k;
  }
  if (c == 103) { // 'g'
    return 50 + k;
  }
  if (c == 115) { // 's'
    return 60;
  }
  return 0 - 1;
}

fn main() {
  queue = mkarray(QCAP);
  objects = mkarray(NOBJ);
  styles = mkarray(4);
  int i = 0;
  while (i < NOBJ) {
    objects[i] = make_object(i);
    styles[i % 4] = i * 11;
    i = i + 1;
  }

  // Seed the queue from the UI script.
  i = 0;
  while (i < nargs()) {
    int code = parse_event(arg(i));
    if (code >= 0) {
      enqueue(code);
    }
    i = i + 1;
  }

  // Main loop: drain the queue, including events the handlers enqueue.
  int processed = 0;
  while (qhead < qtail && processed < 2000) {
    int code = queue[qhead];
    qhead = qhead + 1;
    dispatch(code);
    processed = processed + 1;
  }

  // Final render, like repainting on shutdown.
  handle_render();

  print("ticks ");
  print(ticks);
  print(" gets ");
  print(gets);
  print(" notifies ");
  print(notifies);
  print(" renders ");
  println(renders);
}
)mc";

static std::string buildRhythmboxSource(bool Buggy) {
  // Bug 1: the timer handler must check for disposal before touching priv.
  const char *BuggyTimerGuard = R"(  if (o.disposed == 1) {
    __bug(1);
  })";
  const char *FixedTimerGuard = R"(  if (o.disposed == 1) {
    return 0;
  })";

  // Bug 2: object_get while a change signal is queued corrupts the state
  // the renderer later indexes with. The fix takes a reference (modeled by
  // waiting for delivery) instead of reading through the queued signal.
  const char *BuggyGetBody = R"(  if (p.sig_queued == 1) {
    __bug(2);
    p.state = p.state + 20000;
  })";
  const char *FixedGetBody = R"(  if (p.sig_queued == 1) {
    p.sig_queued = 0;
    notifies = notifies + 1;
  })";

  return expandTemplate(
      RhythmboxTemplate,
      {{"TIMER_GUARD", Buggy ? BuggyTimerGuard : FixedTimerGuard},
       {"GET_BODY", Buggy ? BuggyGetBody : FixedGetBody}});
}

static std::vector<std::string> generateRhythmboxInput(Rng &R) {
  std::vector<std::string> Args;
  size_t NumEvents = static_cast<size_t>(R.nextInRange(6, 40));
  for (size_t I = 0; I < NumEvents; ++I) {
    double Roll = R.nextDouble();
    int K = static_cast<int>(R.nextBelow(4));
    if (Roll < 0.15) {
      Args.push_back("p");
    } else if (Roll < 0.27) {
      Args.push_back(format("t%d", K));
    } else if (Roll < 0.32) {
      Args.push_back(format("d%d", K));
    } else if (Roll < 0.41) {
      Args.push_back(format("c%d", K));
    } else if (Roll < 0.48) {
      Args.push_back(format("g%d", K));
    } else {
      Args.push_back("s");
    }
  }
  return Args;
}

const Subject &sbi::rhythmboxSubject() {
  static const Subject S = [] {
    Subject Subj;
    Subj.Name = "rhythmbox";
    Subj.Source = buildRhythmboxSource(/*Buggy=*/true);
    Subj.GoldenSource = buildRhythmboxSource(/*Buggy=*/false);
    Subj.Bugs = {
        {1, "race condition",
         "a timer tick still queued for a disposed object dereferences its "
         "freed private data",
         /*Deterministic=*/true, "handle_timer"},
        {2, "unsafe API usage",
         "object_get while a change signal is queued corrupts object "
         "state; the renderer crashes later on a wild style index",
         /*Deterministic=*/false, "handle_get"},
    };
    Subj.UseOutputOracle = false;
    Subj.GenerateInput = generateRhythmboxInput;
    return Subj;
  }();
  return S;
}
