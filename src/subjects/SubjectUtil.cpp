//===- subjects/SubjectUtil.cpp - Subject registry and helpers ------------===//

#include "subjects/Subjects.h"

#include <cassert>

using namespace sbi;

std::vector<const Subject *> sbi::allSubjects() {
  return {&mossSubject(), &ccryptSubject(), &bcSubject(), &exifSubject(),
          &rhythmboxSubject()};
}

const Subject *sbi::findSubject(const std::string &Name) {
  for (const Subject *S : allSubjects())
    if (S->Name == Name)
      return S;
  return nullptr;
}

std::string sbi::expandTemplate(
    const std::string &Template,
    const std::vector<std::pair<std::string, std::string>> &Substitutions) {
  std::string Result;
  Result.reserve(Template.size());
  size_t Pos = 0;
  while (Pos < Template.size()) {
    size_t Open = Template.find("${", Pos);
    if (Open == std::string::npos) {
      Result.append(Template, Pos, std::string::npos);
      break;
    }
    Result.append(Template, Pos, Open - Pos);
    size_t Close = Template.find('}', Open + 2);
    assert(Close != std::string::npos && "unterminated ${...} placeholder");
    std::string Key = Template.substr(Open + 2, Close - Open - 2);
    bool Found = false;
    for (const auto &[Name, Value] : Substitutions)
      if (Name == Key) {
        Result += Value;
        Found = true;
        break;
      }
    assert(Found && "unresolved template placeholder");
    (void)Found;
    Pos = Close + 1;
  }
  return Result;
}
