//===- subjects/Exif.cpp - The EXIF study subject --------------------------===//
//
// Models EXIF 0.6.9's three previously unknown crashing bugs (Section
// 4.2.3), with occurrence rates spread over two orders of magnitude:
//
//   bug 1  a tag-count byte is mishandled as signed; a derived length goes
//          negative ("i < 0") and the allocation crashes;
//   bug 2  thumbnail assembly accumulates entry lengths into a 2000-byte
//          buffer without a bound check ("maxlen > 1900");
//   bug 3  the maker-note loader bails out when o + s > buf_size but
//          leaves n.count already incremented and entries[i].data
//          uninitialized; the save path later reads the null data and
//          crashes in a different function with a stack that names only
//          the save path — the exact scenario the paper walks through.
//
// Input layout: a single arg token holding the synthetic image byte stream
// (one char per byte):
//   [0]='E' magic, [1]=#IFD entries, then 4 bytes per entry
//   (tag, type, count, value), then, if any entry has tag 'M', a maker
//   note: [0]=#entries, then 2 bytes per entry (offset, size), then the
//   data area.
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

using namespace sbi;

static const char ExifTemplate[] = R"mc(
// exif: synthetic image-tag parser modeled on exif 0.6.9.
int buf_size = 2000;
int n_entries = 0;
int maxlen = 0;
int mnote_pos = 0;
int mnote_count = 0;
int checksum = 0;
arr entries = null;  // of rec Entry
arr thumb = null;
arr mn_entries = null; // of rec MnEntry

record Entry {
  tag;
  type;
  count;
  value;
  data;
}

record MnEntry {
  offset;
  size;
  data;
}

fn byte_at(str d, int p) {
  return charat(d, p);
}

fn load_entry(str d, int p, int slot) {
  rec en = new Entry;
  en.tag = byte_at(d, p);
  en.type = byte_at(d, p + 1);
  int cnt = byte_at(d, p + 2);
  en.value = byte_at(d, p + 3);
${SIGN_FIX}
  en.count = cnt;
  int cells = cnt * 4;
  // bug 1 fires here: cells went negative and the allocation traps.
  en.data = mkarray(cells);
  int i = 0;
  while (i < cells && i < 64) {
    en.data[i] = (en.value + i * 7) % 256;
    i = i + 1;
  }
  entries[slot] = en;
  if (en.tag == 77) {
    return 1;
  }
  return 0;
}

fn assemble_thumbnail() {
  thumb = mkarray(buf_size);
  maxlen = 0;
  int e = 0;
  while (e < n_entries) {
    rec en = entries[e];
    int l = en.value * 2;
${THUMB_CHECK}
    int k = 0;
    while (k < l) {
      thumb[maxlen + k] = (en.tag + k) % 256;
      k = k + 1;
    }
    maxlen = maxlen + l;
    e = e + 1;
  }
  return maxlen;
}

fn mnote_load(str d, int mpos) {
  int c = byte_at(d, mpos);
  mn_entries = mkarray(c);
  mnote_count = 0;
  int data_base = mpos + 1 + c * 2;
  int mn_buf_size = len(d) - data_base;
  int i = 0;
  while (i < c) {
    int o = byte_at(d, mpos + 1 + i * 2);
    int s = byte_at(d, mpos + 2 + i * 2);
    rec me = new MnEntry;
    me.offset = o;
    me.size = s;
    mn_entries[i] = me;
    mnote_count = i + 1;
    if (o + s > mn_buf_size) {
${MNOTE_BAIL}
    }
    me.data = mkarray(s);
    int k = 0;
    while (k < s) {
      me.data[k] = byte_at(d, data_base + o + k);
      k = k + 1;
    }
    i = i + 1;
  }
  return mnote_count;
}

fn mnote_save() {
  int total = 0;
  int i = 0;
  while (i < mnote_count) {
    rec me = mn_entries[i];
    // The memcpy of the paper's trace: reads me.data, which is null for an
    // entry the loader bailed out on.
    int k = 0;
    while (k < me.size) {
      total = total + me.data[k];
      k = k + 1;
    }
    i = i + 1;
  }
  return total;
}

fn save_entry(int e) {
  rec en = entries[e];
  checksum = (checksum * 13 + en.tag + en.count) % 100000;
  if (en.tag == 77) {
    checksum = (checksum + mnote_save()) % 100000;
  }
  return checksum;
}

fn save_data() {
  int e = 0;
  while (e < n_entries) {
    save_entry(e);
    e = e + 1;
  }
  return checksum;
}

fn main() {
  if (nargs() < 1) {
    println("usage: exif <stream>");
    exit(0);
  }
  str d = arg(0);
  if (len(d) < 2 || byte_at(d, 0) != 69) {
    println("exif: bad magic");
    exit(0);
  }
  n_entries = byte_at(d, 1);
  if (len(d) < 2 + n_entries * 4) {
    println("exif: truncated");
    exit(0);
  }
  entries = mkarray(n_entries);

  int has_mnote = 0;
  int e = 0;
  int p = 2;
  while (e < n_entries) {
    if (load_entry(d, p, e) == 1) {
      has_mnote = 1;
    }
    p = p + 4;
    e = e + 1;
  }

  if (has_mnote == 1) {
    if (p >= len(d)) {
      println("exif: missing maker note");
      exit(0);
    }
    mnote_pos = p;
    mnote_load(d, mnote_pos);
  }

  assemble_thumbnail();
  save_data();

  print("entries ");
  print(n_entries);
  print(" maxlen ");
  print(maxlen);
  print(" checksum ");
  println(checksum);
}
)mc";

static std::string buildExifSource(bool Buggy) {
  // Bug 1: the count byte is "sign extended" instead of treated as
  // unsigned; the fix clamps it.
  const char *BuggySign = R"(  if (cnt >= 128) {
    __bug(1);
    cnt = cnt - 256;
  })";
  const char *FixedSign = "";

  // Bug 2: the bound check exists but the buggy version fails to act on it
  // (the paper's predictor for this bug is the analogous accumulated-length
  // condition, "maxlen > 1900").
  const char *BuggyThumb = R"(    if (maxlen + l > buf_size) {
      __bug(2);
    })";
  const char *FixedThumb = R"(    if (maxlen + l > buf_size) {
      break;
    })";

  // Bug 3: early return without undoing the count increment; the fix
  // restores the count so the save path never sees the dead entry.
  const char *BuggyBail = R"(      __bug(3);
      return mnote_count;)";
  const char *FixedBail = R"(      mnote_count = i;
      return mnote_count;)";

  return expandTemplate(ExifTemplate,
                        {{"SIGN_FIX", Buggy ? BuggySign : FixedSign},
                         {"THUMB_CHECK", Buggy ? BuggyThumb : FixedThumb},
                         {"MNOTE_BAIL", Buggy ? BuggyBail : FixedBail}});
}

static std::vector<std::string> generateExifInput(Rng &R) {
  std::string Stream;
  Stream += 'E';

  int NumEntries = static_cast<int>(R.nextInRange(0, 8));
  Stream += static_cast<char>(NumEntries);

  // ~4% of runs carry an oversized thumbnail profile (bug 2 territory).
  bool BigThumb = R.nextBernoulli(0.035);
  // ~10% of runs have a maker note at all; bug 3 also needs a bad entry.
  bool WantMnote = R.nextBernoulli(0.10);
  bool MnotePlaced = false;

  for (int E = 0; E < NumEntries; ++E) {
    int Tag = static_cast<int>(R.nextInRange(1, 120));
    if (WantMnote && !MnotePlaced && (E == NumEntries - 1 ||
                                      R.nextBernoulli(0.3))) {
      Tag = 77; // maker-note tag
      MnotePlaced = true;
    } else if (Tag == 77) {
      Tag = 78;
    }
    int Type = static_cast<int>(R.nextInRange(1, 12));
    // The count byte: mostly small; ~2.5% in the "negative" range >= 128.
    int Count = R.nextBernoulli(0.018)
                    ? static_cast<int>(R.nextInRange(128, 255))
                    : static_cast<int>(R.nextInRange(0, 20));
    int ValueByte = BigThumb ? static_cast<int>(R.nextInRange(150, 255))
                             : static_cast<int>(R.nextInRange(0, 45));
    Stream += static_cast<char>(Tag);
    Stream += static_cast<char>(Type);
    Stream += static_cast<char>(Count);
    Stream += static_cast<char>(ValueByte);
  }

  if (MnotePlaced) {
    int MnCount = static_cast<int>(R.nextInRange(1, 5));
    Stream += static_cast<char>(MnCount);
    int DataArea = static_cast<int>(R.nextInRange(120, 250));
    for (int I = 0; I < MnCount; ++I) {
      // Bad (o, s) pairs whose sum exceeds the data area are rare; this is
      // what makes bug 3 two orders of magnitude rarer than bug 2.
      bool Bad = R.nextBernoulli(0.02);
      int Offset = Bad ? static_cast<int>(R.nextInRange(150, 255))
                       : static_cast<int>(R.nextInRange(0, 60));
      int Size = Bad ? static_cast<int>(R.nextInRange(100, 255))
                     : static_cast<int>(R.nextInRange(0, 50));
      Stream += static_cast<char>(Offset);
      Stream += static_cast<char>(Size);
    }
    for (int I = 0; I < DataArea; ++I)
      Stream += static_cast<char>(R.nextInRange(1, 255));
  }

  return {Stream};
}

const Subject &sbi::exifSubject() {
  static const Subject S = [] {
    Subject Subj;
    Subj.Name = "exif";
    Subj.Source = buildExifSource(/*Buggy=*/true);
    Subj.GoldenSource = buildExifSource(/*Buggy=*/false);
    Subj.Bugs = {
        {1, "sign error",
         "tag-count byte treated as signed; derived allocation length goes "
         "negative",
         /*Deterministic=*/true, "load_entry"},
        {2, "buffer overrun",
         "thumbnail assembly appends past the 2000-byte buffer when the "
         "accumulated length passes 1900",
         /*Deterministic=*/false, "assemble_thumbnail"},
        {3, "uninitialized data",
         "maker-note loader bails out on o + s > buf_size leaving "
         "entries[i].data null; the save path crashes later",
         /*Deterministic=*/true, "mnote_load"},
    };
    Subj.UseOutputOracle = false;
    Subj.GenerateInput = generateExifInput;
    return Subj;
  }();
  return S;
}
