//===- subjects/Moss.cpp - The MOSS study subject --------------------------===//
//
// Models MOSS, the winnowing-based plagiarism detector used for the paper's
// controlled validation study (Section 4.1), with nine seeded bugs that
// mirror the paper's inventory:
//
//   bug 1  fingerprint-table buffer overrun (long input + small window)
//   bug 2  missing capacity check on the file table (the paper's missing
//          out-of-memory check); rarest bug
//   bug 3  null file record in certain cases (empty document + -b flag)
//   bug 4  token-buffer overrun (total input longer than the token cap)
//   bug 5  missing end-of-list check walking a hash bucket chain; biased
//          against files whose language classification exceeds 16 — the
//          paper's top predictor is "files[filesindex].language > 16"
//   bug 6  violated invariant between two halves of the passage structure
//          (index wraps at the cap while the total keeps counting)
//   bug 7  buffer overrun that never causes a failure in any run (the
//          paper's bug whose column would be all zeros... it overruns a
//          sub-buffer inside a larger allocation)
//   bug 8  present in the source but never triggered (requires the -z
//          flag, which the input generator never emits)
//   bug 9  incorrect comment handling: output-only wrong results, caught
//          by the output oracle against the golden version, never a crash
//
// Input layout: option tokens, then "--", then one token per document:
//   -w<n> winnowing window (1..8)   -k<n> k-gram size (1..6)
//   -c    match comments            -b    bflag
//   -m<n> max matches shown         -z    (never generated; bug 8)
//
//===----------------------------------------------------------------------===//

#include "subjects/Subjects.h"

#include "support/StringUtils.h"

using namespace sbi;

static const char MossTemplate[] = R"mc(
// moss: winnowing document-fingerprint matcher.
int TOKEN_CAP = 1800;
int FP_CAP = 900;
int FILE_CAP = 12;
int PASSAGE_CAP = 80;
int NBUCKETS = 64;

int winnow_window = 4;
int kgram = 3;
int match_comment = 0;
int bflag = 0;
int zflag = 0;
int max_matches = 100;

int nfiles = 0;
int token_index = 0;
int fp_count = 0;
int passage_index = 0;
int passage_total = 0;

arr token_sequence = null;
arr files = null;
arr fp_val = null;
arr fp_file = null;
arr fp_pos = null;
arr bucket_head = null;
arr bucket_next = null;
arr passages = null;
arr win = null;

record File {
  language;
  size;
  start;
  fps_start;
  fps_count;
}

record Passage {
  fileid;
  otherid;
  first_token;
  last_token;
}

fn parse_args() {
  int i = 0;
  while (i < nargs()) {
    str a = arg(i);
    if (strcmp(a, "--") == 0) {
      return i + 1;
    }
    if (len(a) >= 2 && charat(a, 0) == 45) {
      int c = charat(a, 1);
      if (c == 119) { // -w<n>
        winnow_window = atoi(substr(a, 2, 8));
        winnow_window = max(1, min(winnow_window, 8));
      }
      if (c == 107) { // -k<n>
        kgram = atoi(substr(a, 2, 8));
        kgram = max(1, min(kgram, 6));
      }
      if (c == 99) { // -c
        match_comment = 1;
      }
      if (c == 98) { // -b
        bflag = 1;
      }
      if (c == 122) { // -z
        zflag = 1;
      }
      if (c == 109) { // -m<n>
        max_matches = atoi(substr(a, 2, 8));
        max_matches = max(1, max_matches);
      }
    }
    i = i + 1;
  }
  return i;
}

fn classify_language(str doc) {
  if (len(doc) == 0) {
    return 0;
  }
  int c = charat(doc, 0);
  if (c >= 97 && c <= 122) {
    return 1 + c % 16;
  }
  return 17 + c % 3;
}

fn tokenize(int fid, str doc) {
  rec f = files[fid];
  f.start = token_index;
  int i = 0;
  while (i < len(doc)) {
    int c = charat(doc, i);
    int skip = 0;
    if (match_comment == 1 && c == 59) { // ';' starts a comment
${COMMENT_HANDLING}
    }
    if (skip == 0) {
      int tok = c % 64;
      if (tok == 0) {
${WINDOW_SCRATCH}
      }
${TOKEN_CAP_CHECK}
      token_sequence[token_index] = tok;
      token_index = token_index + 1;
    }
    i = i + 1;
  }
  f.size = token_index - f.start;
  return f.size;
}

fn hash_kgram(int start) {
  int h = 0;
  int j = 0;
  while (j < kgram) {
    h = (h * 31 + token_sequence[start + j]) % 9973;
    j = j + 1;
  }
  return h;
}

fn insert_fp(int fid, int val, int pos) {
${FP_CAP_CHECK}
  fp_val[fp_count] = val;
  fp_file[fp_count] = fid;
  fp_pos[fp_count] = pos;
  rec f = files[fid];
${BUCKET_INSERT}
  fp_count = fp_count + 1;
  return 1;
}

fn winnow_file(int fid) {
  rec f = files[fid];
  f.fps_start = fp_count;
  f.fps_count = 0;
  if (f.size < kgram) {
    return 0;
  }
  int nk = f.size - kgram + 1;
  int i = 0;
  while (i < nk) {
    int m = 0 - 1;
    int mpos = i;
    int j = i;
    while (j < i + winnow_window && j < nk) {
      int h = hash_kgram(f.start + j);
      if (m < 0 || h < m) {
        m = h;
        mpos = j;
      }
      j = j + 1;
    }
    if (insert_fp(fid, m, f.start + mpos) == 1) {
      f.fps_count = f.fps_count + 1;
    }
    i = i + winnow_window;
  }
  return f.fps_count;
}

// Finds the first fingerprint entry holding val by walking its hash
// bucket's chain.
fn find_fp(int val) {
  int cur = bucket_head[val % NBUCKETS];
${LOOKUP_LOOP}
  return cur;
}

// Counts chain entries carrying val that belong to file i; always walks
// with an end check (the defect lives in find_fp).
fn chain_count(int i, int val) {
  int cur = bucket_head[val % NBUCKETS];
  int m = 0;
  while (cur >= 0) {
    if (fp_val[cur] == val && fp_file[cur] == i) {
      m = m + 1;
    }
    cur = bucket_next[cur];
  }
  return m;
}

fn add_passage(int i, int j, int pos) {
${PASSAGE_CHECK}
  rec p = new Passage;
  p.fileid = i;
  p.otherid = j;
  p.first_token = pos;
  p.last_token = pos + kgram;
  passages[passage_index] = p;
  passage_index = passage_index + 1;
  passage_total = passage_total + 1;
  return 1;
}

fn compare_pair(int i, int j) {
  rec fi = files[i];
  rec fj = files[j];
  // The missing bucket insertion corrupts this comparison whichever side
  // the language > 16 file is on: probing its fingerprints walks off the
  // chain (crash); counting its matches silently yields zero (wrong
  // output).
  if (fi.fps_count > 0 && fi.language > 16) {
    ${BUG5_MARK}
  }
  if (fj.fps_count > 0 && fj.language > 16) {
    ${BUG5_MARK}
  }
  int matches = 0;
  int k = fj.fps_start;
  int fend = fj.fps_start + fj.fps_count;
  while (k < fend) {
    int val = fp_val[k];
    int probe = find_fp(val);
    if (probe >= 0) {
      int c = chain_count(i, val);
      if (c > 0) {
        matches = matches + c;
        add_passage(i, j, fp_pos[k]);
      }
    }
    k = k + 1;
  }
  return matches;
}

fn report() {
  int t = 0;
  int shown = 0;
  while (t < passage_total && shown < max_matches) {
    rec p = passages[t];
    print("passage ");
    print(p.fileid);
    print(" ");
    print(p.otherid);
    print(" ");
    print(p.first_token);
    print("..");
    println(p.last_token);
    shown = shown + 1;
    t = t + 1;
  }
  return shown;
}

fn read_files(int firstdoc) {
  int i = firstdoc;
  while (i < nargs()) {
${FILE_CAP_CHECK}
    str doc = arg(i);
    rec f = new File;
    f.language = classify_language(doc);
    f.size = 0;
    f.start = 0;
    f.fps_start = 0;
    f.fps_count = 0;
    files[nfiles] = f;
${EMPTY_FILE_HANDLING}
    if (files[nfiles] != null) {
      tokenize(nfiles, doc);
    }
    nfiles = nfiles + 1;
    i = i + 1;
  }
  return nfiles;
}

fn main() {
  token_sequence = mkarray(TOKEN_CAP);
  files = mkarray(FILE_CAP);
  fp_val = mkarray(FP_CAP);
  fp_file = mkarray(FP_CAP);
  fp_pos = mkarray(FP_CAP);
  bucket_head = mkarray(NBUCKETS);
  bucket_next = mkarray(FP_CAP);
  passages = mkarray(PASSAGE_CAP);
  win = mkarray(16);

  int b = 0;
  while (b < NBUCKETS) {
    bucket_head[b] = 0 - 1;
    b = b + 1;
  }

  int firstdoc = parse_args();
  if (zflag == 1) {
${BUG8_BODY}
  }

  read_files(firstdoc);

  int f = 0;
  while (f < nfiles) {
    winnow_file(f);
    f = f + 1;
  }

  int i = 0;
  while (i < nfiles) {
    int j = i + 1;
    while (j < nfiles) {
      int m = compare_pair(i, j);
      print("pair ");
      print(i);
      print(" ");
      print(j);
      print(" matches ");
      println(m);
      j = j + 1;
    }
    i = i + 1;
  }

  report();
  print("files ");
  print(nfiles);
  print(" tokens ");
  print(token_index);
  print(" fps ");
  print(fp_count);
  print(" passages ");
  println(passage_total);
}
)mc";

static std::string buildMossSource(bool Buggy) {
  // Bug 9: the buggy tokenizer drops only the ';' marker, leaking comment
  // bodies into the token stream; the fix skips to the '.' terminator.
  const char *BuggyComment = R"(      __bug(9);
      skip = 1;)";
  const char *FixedComment = R"(      skip = 1;
      i = i + 1;
      while (i < len(doc) && charat(doc, i) != 46) {
        i = i + 1;
      })";

  // Bug 7: a stray write one past the logical window, but inside the
  // 16-cell allocation — a real overrun that can never trap or corrupt
  // anything that is read.
  const char *BuggyScratch = R"(        __bug(7);
        win[winnow_window] = c;)";
  const char *FixedScratch = R"(        win[0] = c;)";

  // Bug 4: missing token-buffer bound check.
  const char *BuggyTokenCap = R"(      if (token_index >= TOKEN_CAP) {
        __bug(4);
      })";
  const char *FixedTokenCap = R"(      if (token_index >= TOKEN_CAP) {
        break;
      })";

  // Bug 1: missing fingerprint-table bound check.
  const char *BuggyFpCap = R"(  if (fp_count >= FP_CAP) {
    __bug(1);
  })";
  const char *FixedFpCap = R"(  if (fp_count >= FP_CAP) {
    return 0;
  })";

  // Bug 5, part 1: fingerprints of language > 16 files are never inserted
  // into the hash chains.
  const char *BuggyBucketInsert = R"(  if (f.language <= 16) {
    bucket_next[fp_count] = bucket_head[val % NBUCKETS];
    bucket_head[val % NBUCKETS] = fp_count;
  })";
  const char *FixedBucketInsert = R"(  bucket_next[fp_count] = bucket_head[val % NBUCKETS];
  bucket_head[val % NBUCKETS] = fp_count;)";

  // Bug 5, part 2: the lookup loop has no end-of-list check, so a probe
  // for a missing value walks off the -1 sentinel.
  const char *BuggyLookup = R"(  while (fp_val[cur] != val) {
    cur = bucket_next[cur];
  })";
  const char *FixedLookup = R"(  while (cur >= 0 && fp_val[cur] != val) {
    cur = bucket_next[cur];
  })";

  // Bug 6: at the passage cap the index silently wraps while the total
  // keeps counting — the two halves of the structure fall out of sync and
  // the report walk reads past the real entries.
  const char *BuggyPassage = R"(  if (passage_index >= PASSAGE_CAP) {
    __bug(6);
    passage_index = 0;
  })";
  const char *FixedPassage = R"(  if (passage_index >= PASSAGE_CAP) {
    return 0;
  })";

  // Bug 2: missing file-table capacity check (missing OOM handling).
  const char *BuggyFileCap = R"(    if (nfiles >= FILE_CAP) {
      __bug(2);
    })";
  const char *FixedFileCap = R"(    if (nfiles >= FILE_CAP) {
      println("moss: too many files");
      exit(0);
    })";

  // Bug 3: an empty document with -b leaves a null file record behind.
  const char *BuggyEmptyFile = R"(    if (len(doc) == 0 && bflag == 1) {
      __bug(3);
      files[nfiles] = null;
    })";
  const char *FixedEmptyFile = "";

  // Bug 8: present but never triggered (the generator never emits -z).
  const char *BuggyBug8 = R"(    __bug(8);
    token_sequence[0 - 1] = 0;)";
  const char *FixedBug8 = R"(    println("moss: -z is unsupported");
    exit(0);)";

  const char *Bug5Mark = Buggy ? "__bug(5);" : "nfiles = nfiles + 0;";

  return expandTemplate(
      MossTemplate,
      {{"COMMENT_HANDLING", Buggy ? BuggyComment : FixedComment},
       {"WINDOW_SCRATCH", Buggy ? BuggyScratch : FixedScratch},
       {"TOKEN_CAP_CHECK", Buggy ? BuggyTokenCap : FixedTokenCap},
       {"FP_CAP_CHECK", Buggy ? BuggyFpCap : FixedFpCap},
       {"BUCKET_INSERT", Buggy ? BuggyBucketInsert : FixedBucketInsert},
       {"LOOKUP_LOOP", Buggy ? BuggyLookup : FixedLookup},
       {"PASSAGE_CHECK", Buggy ? BuggyPassage : FixedPassage},
       {"FILE_CAP_CHECK", Buggy ? BuggyFileCap : FixedFileCap},
       {"EMPTY_FILE_HANDLING", Buggy ? BuggyEmptyFile : FixedEmptyFile},
       {"BUG8_BODY", Buggy ? BuggyBug8 : FixedBug8},
       {"BUG5_MARK", Bug5Mark}});
}

namespace {

/// Tunable input-distribution knobs, shared with tests that verify bug
/// trigger rates.
struct MossProfile {
  double SmallWindowP = 0.5;
  double KgramFlagP = 0.4;
  double CommentFlagP = 0.15;
  double BFlagP = 0.2;
  double MaxMatchFlagP = 0.2;
  double WeirdFirstCharP = 0.03;
  double EmptyDocP = 0.05;
  double LongDocP = 0.065;
  double CommentedDocP = 0.08;
  double ScratchDocP = 0.12;
  double SharedChunkP = 0.5;
  double PlagiarismRingP = 0.08;
};

std::string randomDoc(Rng &R, const MossProfile &Profile) {
  if (R.nextBernoulli(Profile.EmptyDocP))
    return std::string();
  size_t Length = R.nextBernoulli(Profile.LongDocP)
                      ? static_cast<size_t>(R.nextInRange(300, 520))
                      : static_cast<size_t>(R.nextInRange(20, 200));
  std::string Doc;
  Doc.reserve(Length);
  bool Weird = R.nextBernoulli(Profile.WeirdFirstCharP);
  Doc += Weird ? static_cast<char>(R.nextInRange('0', '9'))
               : static_cast<char>('a' + R.nextBelow(26));
  bool HasComments = R.nextBernoulli(Profile.CommentedDocP);
  bool HasScratch = R.nextBernoulli(Profile.ScratchDocP);
  while (Doc.size() < Length) {
    double Roll = R.nextDouble();
    if (HasComments && Roll < 0.015) {
      // A comment: ';' body '.'
      Doc += ';';
      size_t BodyLen = static_cast<size_t>(R.nextInRange(2, 12));
      for (size_t I = 0; I < BodyLen; ++I)
        Doc += static_cast<char>('a' + R.nextBelow(26));
      Doc += '.';
    } else if (HasScratch && Roll < 0.025) {
      Doc += '@'; // Token 0: drives the harmless bug-7 scratch write.
    } else {
      Doc += static_cast<char>('a' + R.nextBelow(26));
    }
  }
  return Doc;
}

} // namespace

static std::vector<std::string> generateMossInput(Rng &R) {
  MossProfile Profile;
  std::vector<std::string> Args;

  if (R.nextBernoulli(Profile.SmallWindowP))
    Args.push_back(format("-w%d", static_cast<int>(R.nextInRange(1, 8))));
  if (R.nextBernoulli(Profile.KgramFlagP))
    Args.push_back(format("-k%d", static_cast<int>(R.nextInRange(2, 5))));
  if (R.nextBernoulli(Profile.CommentFlagP))
    Args.push_back("-c");
  if (R.nextBernoulli(Profile.BFlagP))
    Args.push_back("-b");
  if (R.nextBernoulli(Profile.MaxMatchFlagP))
    Args.push_back(format("-m%d", static_cast<int>(R.nextInRange(20, 200))));
  Args.push_back("--");

  double Roll = R.nextDouble();
  int NumDocs;
  if (Roll < 0.70)
    NumDocs = static_cast<int>(R.nextInRange(2, 5));
  else if (Roll < 0.98)
    NumDocs = static_cast<int>(R.nextInRange(6, 12));
  else
    NumDocs = static_cast<int>(R.nextInRange(13, 15)); // Bug-2 territory.

  std::vector<std::string> Docs;
  Docs.reserve(static_cast<size_t>(NumDocs));
  for (int I = 0; I < NumDocs; ++I)
    Docs.push_back(randomDoc(R, Profile));

  // Cross-pollinate documents so fingerprint matches occur.
  if (Docs.size() >= 2 && R.nextBernoulli(Profile.SharedChunkP)) {
    size_t From = R.nextBelow(Docs.size());
    size_t To = R.nextBelow(Docs.size());
    if (From != To && Docs[From].size() > 30) {
      size_t ChunkLen = std::min<size_t>(
          Docs[From].size() - 1, static_cast<size_t>(R.nextInRange(20, 80)));
      Docs[To] += Docs[From].substr(1, ChunkLen);
    }
  }
  if (Docs.size() >= 3 && R.nextBernoulli(Profile.PlagiarismRingP)) {
    std::string Chunk;
    size_t ChunkLen = static_cast<size_t>(R.nextInRange(80, 150));
    for (size_t I = 0; I < ChunkLen; ++I)
      Chunk += static_cast<char>('a' + R.nextBelow(26));
    for (std::string &Doc : Docs)
      Doc += Chunk;
  }

  for (std::string &Doc : Docs)
    Args.push_back(std::move(Doc));
  return Args;
}

const Subject &sbi::mossSubject() {
  static const Subject S = [] {
    Subject Subj;
    Subj.Name = "moss";
    Subj.Source = buildMossSource(/*Buggy=*/true);
    Subj.GoldenSource = buildMossSource(/*Buggy=*/false);
    Subj.Bugs = {
        {1, "buffer overrun", "fingerprint table written past its capacity",
         false, "insert_fp"},
        {2, "missing capacity check",
         "file table written past its capacity when more than 12 documents "
         "are given",
         false, "read_files"},
        {3, "null dereference",
         "empty document with -b leaves a null file record that the "
         "winnowing pass dereferences",
         true, "read_files"},
        {4, "buffer overrun", "token buffer written past its capacity",
         false, "tokenize"},
        {5, "missing end-of-list check",
         "hash-bucket walk never checks the chain sentinel; probes for "
         "fingerprints of language > 16 files walk off the end",
         true, "find_fp"},
        {6, "invariant violation",
         "passage index wraps at the cap while the passage total keeps "
         "counting; the report walk reads past the real entries",
         false, "add_passage"},
        {7, "harmless buffer overrun",
         "stray write past the logical winnowing window that never causes "
         "a failure",
         false, "tokenize"},
        {8, "never triggered",
         "negative-index write guarded by the -z flag, which the input "
         "distribution never produces",
         false, "main"},
        {9, "incorrect output",
         "comment bodies leak into the token stream under -c, changing "
         "match results without crashing",
         false, "tokenize"},
    };
    Subj.UseOutputOracle = true;
    Subj.GenerateInput = generateMossInput;
    return Subj;
  }();
  return S;
}
