//===- core/BitMatrix.h - Dense bit-matrix aggregation engine -------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third analysis engine (AnalysisEngine::Bitset): F(P)/S(P)/Context
/// counts and the elimination loop's per-iteration updates computed by
/// word-AND + popcount over dense (row x run) bit-matrices instead of
/// posting-list walks.
///
/// The population-level structure of the Section 3.4 loop makes a full
/// predicates x runs matrix unnecessary; two much smaller matrices carry
/// every count the loop can ever ask for:
///
///   * Policies (2)/(3) only ever discard or relabel *failing* runs, and a
///     relabeled run's contributions move F->S wholesale, so S(P) is
///     either frozen (policy 2) or derivable as S0(P) + (F0(P) - F(P))
///     (policy 3). Everything those policies need lives in the *initially
///     failing* column space: a predicate-row matrix (rows for every
///     predicate with F0 > 0) from which one row extraction + AND with the
///     active mask yields the discarded-run set, and a transposed matrix
///     (one bit-row per failing run over the predicate-then-site id space)
///     whose discarded rows are walked bit-by-bit to decrement the counts.
///     Per-iteration cost is therefore proportional to the *discarded
///     postings* — like the incremental engine's — but the walk is a
///     sequential word scan in ascending id order instead of posting-list
///     pointer chasing, and the initial scan is skipped entirely.
///
///   * Policy (1) discards successes too, but its candidate set is the
///     Increase-test survivors (typically ~1% of predicates, Section 3.1),
///     so a full-width matrix restricted to survivor rows (plus their
///     sites) stays small, and the per-iteration sweep (every row AND the
///     discarded-run mask, popcount the result) touches few rows.
///
/// Row-major matrices are runs-major: 64 runs per word, words grouped
/// into BitMatrix::BlockWords-word cache blocks with all rows of one
/// block contiguous, so policy (1)'s sweep streams sequentially through
/// one block-sized tile at a time.
///
/// BitsetIndex is the immutable, shareable build product (the analog of
/// InvertedIndex): the initial full-population aggregates, the survivor
/// list, and both matrices, built in parallel over run chunks. All
/// per-run() mutable state lives in BitsetState (the analog of
/// DeltaAggregates): live Aggregates plus the active-column masks,
/// updated by AND + popcount per selection. Counts are integers
/// throughout, so the engine is bit-identical to rescan and incremental —
/// the same contract the differential tests enforce.
///
/// For very sparse populations (dense cells >> postings) the word sweeps
/// do more work than posting walks; preferIncremental() is the density
/// heuristic CauseIsolator::run() consults to fall back to the
/// incremental engine.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_CORE_BITMATRIX_H
#define SBI_CORE_BITMATRIX_H

#include "core/Aggregator.h"
#include "feedback/RunProfiles.h"
#include "instrument/Sites.h"

#include <cstdint>
#include <vector>

namespace sbi {

/// Dense rows x columns bit matrix in cache-blocked, runs-major layout:
/// columns are grouped into blocks of BlockWords 64-bit words, and within
/// one block every row's words are contiguous. Word o of block B for row R
/// lives at Words[(B * NumRows + R) * BlockWords + o]; a plain column
/// bitvector (mask) indexes the same word as Mask[B * BlockWords + o].
class BitMatrix {
public:
  /// 8 words = 512 columns per block: one row's block slice is a cache
  /// line, and a 4k-row tile is ~256 KiB — streamed once per sweep.
  static constexpr size_t BlockWords = 8;
  static constexpr uint64_t BlockCols = BlockWords * 64;

  BitMatrix() = default;
  BitMatrix(uint32_t NumRows, uint64_t NumCols)
      : Rows(NumRows), Cols(NumCols),
        Blocks((NumCols + BlockCols - 1) / BlockCols),
        Words(static_cast<size_t>(Blocks) * NumRows * BlockWords) {}

  void set(uint32_t Row, uint64_t Col) {
    Words[wordIndex(Row, Col)] |= uint64_t(1) << (Col & 63);
  }
  bool test(uint32_t Row, uint64_t Col) const {
    return (Words[wordIndex(Row, Col)] >> (Col & 63)) & 1;
  }

  uint32_t numRows() const { return Rows; }
  uint64_t numCols() const { return Cols; }
  size_t numBlocks() const { return Blocks; }
  size_t bytes() const { return Words.size() * sizeof(uint64_t); }

  /// The BlockWords words of \p Row within \p Block.
  const uint64_t *blockRow(size_t Block, uint32_t Row) const {
    return Words.data() + (Block * Rows + Row) * BlockWords;
  }
  uint64_t *blockRow(size_t Block, uint32_t Row) {
    return Words.data() + (Block * Rows + Row) * BlockWords;
  }

private:
  size_t wordIndex(uint32_t Row, uint64_t Col) const {
    size_t Block = Col / BlockCols;
    size_t WordInBlock = (Col % BlockCols) / 64;
    return (Block * Rows + Row) * BlockWords + WordInBlock;
  }

  uint32_t Rows = 0;
  uint64_t Cols = 0;
  size_t Blocks = 0;
  std::vector<uint64_t> Words;
};

/// Immutable build product of the bitset engine over one run population.
/// Like InvertedIndex, it depends only on the population (not the policy),
/// is never mutated by run(), and can be shared across analyses via
/// AnalysisOptions::SharedBitset.
class BitsetIndex {
public:
  /// Builds over \p Runs: one parallel counting pass (the initial
  /// full-population aggregation), then one parallel bit-setting pass per
  /// matrix. Run chunks are aligned to 64-column boundaries so workers
  /// own disjoint words; any \p Threads value (0 = one per hardware
  /// thread) yields bit-identical matrices.
  static BitsetIndex build(const RunProfiles &Runs, const SiteTable &Sites,
                           size_t Threads = 0);

  /// Counts over the full population — exactly what Aggregates::compute
  /// returns for RunView::allOf(Runs); computed once at build, so every
  /// policy's run() starts from it without rescanning.
  const Aggregates &initialAggregates() const { return InitialAgg; }

  /// Predicates passing the Increase test over the full population, in id
  /// order (the policy-1 candidate set and every engine's PrunedSurvivors).
  const std::vector<uint32_t> &survivors() const { return Survivors; }

  uint32_t numPredicates() const {
    return static_cast<uint32_t>(PredFailRow.size());
  }
  uint32_t numSites() const { return NumSites; }
  uint64_t numRuns() const { return NumRuns; }
  uint64_t numFailing() const { return NumFailing0; }

  /// Resident bytes of all matrices (for memory accounting in benches).
  size_t matrixBytes() const {
    return FailM.bytes() + FailT.size() * sizeof(uint64_t) + FullM.bytes();
  }

  /// The density heuristic: true when the population is so sparse that
  /// word sweeps would do far more work than posting walks, i.e. the
  /// engine dispatch should fall back to the incremental engine.
  /// \p MinDensity is the posting fill fraction below which dense loses
  /// (AnalysisOptions::BitsetMinDensity); tiny matrices never fall back.
  static bool preferIncremental(const RunProfiles &Runs, double MinDensity);

private:
  friend class BitsetState;

  static constexpr uint32_t NoRow = UINT32_MAX;

  Aggregates InitialAgg{0, 0};
  std::vector<uint32_t> Survivors;

  /// Failing-column predicate matrix (policies 2/3): columns are the
  /// initially failing runs in run order; one row per predicate with
  /// F0 > 0. Only ever read one row at a time — the selected predicate's —
  /// to form the discarded-run mask.
  BitMatrix FailM;
  std::vector<uint32_t> PredFailRow; ///< pred id -> row, NoRow if absent.

  /// Transpose over the same columns: one plain row-major bit-row per
  /// initially failing run, FailTRowWords words wide, over the virtual id
  /// space [0, numPredicates) predicates then [numPredicates, +numSites)
  /// sites. Discarding/relabeling a run walks its row's set bits.
  std::vector<uint64_t> FailT;
  size_t FailTRowWords = 0;

  /// Full-width matrix (policy 1): columns are all runs; rows are the
  /// Increase survivors followed by their sites.
  BitMatrix FullM;
  std::vector<uint32_t> PredFullRow;
  std::vector<uint32_t> SiteFullRow;
  std::vector<uint32_t> FullRowId;
  uint32_t FullPredRows = 0;

  /// Initially-failing runs as a full-column-space bitvector (policy 1
  /// splits discarded runs into F/S by this static label mask).
  std::vector<uint64_t> Fail0Mask;

  uint64_t NumRuns = 0;
  uint64_t NumFailing0 = 0;
  uint32_t NumSites = 0;
};

/// Mutable per-run() state of the bitset engine (the analog of
/// DeltaAggregates): live Aggregates plus the active-column masks. The
/// current counts are always exactly what Aggregates::compute would return
/// for the equivalently mutated RunView.
class BitsetState {
public:
  BitsetState(const BitsetIndex &Index, size_t Threads = 0);

  /// The live counts, interface-compatible with a fresh full scan.
  const Aggregates &aggregates() const { return Agg; }

  /// The three Section 5 policies, applied for selected predicate \p Pred:
  /// each computes the discarded-run set by AND-ing the predicate's row
  /// with the active mask and clears those columns. Policy (1) folds every
  /// survivor row's intersection with the mask into the live counts via
  /// popcount; policies (2)/(3) walk the discarded runs' transposed
  /// bit-rows. Each returns the number of runs discarded (or relabeled) —
  /// identical to the other engines' counts.
  uint64_t discardCoveredRuns(uint32_t Pred);  ///< Proposal (1).
  uint64_t discardFailingRuns(uint32_t Pred);  ///< Proposal (2).
  uint64_t relabelFailingRuns(uint32_t Pred);  ///< Proposal (3).

private:
  uint64_t applyFailingOnly(uint32_t Pred, bool Relabel);

  /// Accumulates popcount(row & DMaskF) and popcount(row & DMaskS) into
  /// RowDeltaF/RowDeltaS for every row of \p M (the full-width survivor
  /// matrix), visiting only dirty blocks; parallel over row ranges when
  /// the sweep is large enough to pay for the threads.
  void sweepRows(const BitMatrix &M, bool WithSuccess);

  const BitsetIndex &Index;
  size_t Threads;
  Aggregates Agg;

  std::vector<uint64_t> ActiveFail; ///< Failing-column space (policies 2/3).
  std::vector<uint64_t> ActiveAll;  ///< Full-column space (policy 1).

  // Per-applyPolicy scratch, sized once.
  std::vector<uint64_t> DMaskF;
  std::vector<uint64_t> DMaskS;
  std::vector<uint32_t> DirtyBlocks;
  std::vector<uint64_t> RowDeltaF;
  std::vector<uint64_t> RowDeltaS;
  std::vector<uint32_t> DiscardedCols;
};

} // namespace sbi

#endif // SBI_CORE_BITMATRIX_H
