//===- core/BitMatrix.cpp - Dense bit-matrix aggregation engine -----------===//

#include "core/BitMatrix.h"

#include "support/Bits.h"
#include "support/Parallel.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace sbi;

namespace {

constexpr size_t BW = BitMatrix::BlockWords;

/// All-ones bitvector over \p Cols columns, padded with zero bits to
/// \p NumWords words (the matrix word space, a whole number of blocks).
std::vector<uint64_t> onesMask(uint64_t Cols, size_t NumWords) {
  std::vector<uint64_t> Mask(NumWords, 0);
  for (uint64_t W = 0; W < Cols / 64; ++W)
    Mask[W] = ~uint64_t(0);
  if (Cols % 64)
    Mask[Cols / 64] = (uint64_t(1) << (Cols % 64)) - 1;
  return Mask;
}

/// Runs [Begin, End) partitioned into \p Workers contiguous chunks whose
/// boundaries are multiples of 64, so parallel bit-setters own disjoint
/// words. Returns Workers+1 boundaries.
std::vector<size_t> alignedChunks(size_t NumItems, size_t Workers) {
  std::vector<size_t> Bounds;
  Bounds.reserve(Workers + 1);
  size_t PerChunk = (NumItems + Workers - 1) / Workers;
  PerChunk = (PerChunk + 63) & ~size_t(63);
  for (size_t W = 0; W <= Workers; ++W)
    Bounds.push_back(std::min(NumItems, W * PerChunk));
  return Bounds;
}

// --- The sweep kernel -------------------------------------------------------
// The engine's hot loop: for a row range, AND each dirty block's row words
// with the discard mask and accumulate popcounts into per-row deltas. The
// build carries no -march flags, so popcount64 is a SWAR reduction — but
// nearly every x86-64 made since 2008 has the POPCNT instruction, worth
// ~4x here. The kernel is therefore compiled twice, once baseline and
// once with target("popcnt"), and dispatched once per process; both
// variants compute identical integers, so bit-identity is unaffected.

struct SweepArgs {
  const BitMatrix *M;
  const std::vector<uint32_t> *DirtyBlocks;
  const uint64_t *DMaskF;
  const uint64_t *DMaskS;
  uint64_t *RowDeltaF;
  uint64_t *RowDeltaS;
  bool WithSuccess;
};

#define SBI_SWEEP_BODY(POP)                                                  \
  for (uint32_t Block : *A.DirtyBlocks) {                                    \
    const uint64_t *MF = A.DMaskF + size_t(Block) * BW;                      \
    const uint64_t *MS = A.DMaskS + size_t(Block) * BW;                      \
    for (uint32_t Row = RowBegin; Row < RowEnd; ++Row) {                     \
      const uint64_t *R = A.M->blockRow(Block, Row);                         \
      uint64_t DF = 0;                                                       \
      for (size_t O = 0; O < BW; ++O)                                        \
        DF += static_cast<uint64_t>(POP(R[O] & MF[O]));                      \
      A.RowDeltaF[Row] += DF;                                                \
      if (A.WithSuccess) {                                                   \
        uint64_t DS = 0;                                                     \
        for (size_t O = 0; O < BW; ++O)                                      \
          DS += static_cast<uint64_t>(POP(R[O] & MS[O]));                    \
        A.RowDeltaS[Row] += DS;                                              \
      }                                                                      \
    }                                                                        \
  }

void sweepRangeGeneric(const SweepArgs &A, uint32_t RowBegin,
                       uint32_t RowEnd) {
  SBI_SWEEP_BODY(popcount64)
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) &&      \
    !defined(__POPCNT__)
#define SBI_DISPATCH_POPCNT 1
__attribute__((target("popcnt"))) void
sweepRangePopcnt(const SweepArgs &A, uint32_t RowBegin, uint32_t RowEnd) {
  SBI_SWEEP_BODY(__builtin_popcountll)
}
#endif

#undef SBI_SWEEP_BODY

using SweepFn = void (*)(const SweepArgs &, uint32_t, uint32_t);

SweepFn resolveSweepKernel() {
#ifdef SBI_DISPATCH_POPCNT
  if (__builtin_cpu_supports("popcnt"))
    return sweepRangePopcnt;
#endif
  return sweepRangeGeneric;
}

const SweepFn SweepKernel = resolveSweepKernel();

} // namespace

BitsetIndex BitsetIndex::build(const RunProfiles &Runs,
                               const SiteTable &Sites, size_t Threads) {
  assert(Sites.numPredicates() == Runs.numPredicates() &&
         "run profiles do not match the site table");
  const uint32_t NumPreds = Runs.numPredicates();
  const uint32_t NumSites = Runs.numSites();
  const size_t NumRuns = Runs.size();

  BitsetIndex Index;
  Index.NumRuns = NumRuns;
  Index.InitialAgg = Aggregates(NumSites, NumPreds);

  // Below ~4k runs the thread spawn/join overhead dominates each pass.
  const size_t Workers = resolveThreadCount(Threads, NumRuns / 4096);

  // --- Pass 1: the initial full-population aggregation -------------------
  // Chunk-local count arrays merged after the join: integer sums in any
  // order, so any worker count yields the exact Aggregates::compute result.
  if (Workers <= 1) {
    Index.InitialAgg = Aggregates::compute(Runs, RunView::allOf(Runs));
  } else {
    struct Partial {
      std::vector<std::array<uint64_t, 2>> SiteObs, PredTrue;
      uint64_t NumF = 0, NumS = 0;
    };
    std::vector<Partial> Partials(Workers);
    std::vector<size_t> Bounds = alignedChunks(NumRuns, Workers);
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (size_t W = 0; W < Workers; ++W)
      Pool.emplace_back([&, W] {
        Partial &Local = Partials[W];
        Local.SiteObs.resize(NumSites);
        Local.PredTrue.resize(NumPreds);
        for (size_t Run = Bounds[W]; Run < Bounds[W + 1]; ++Run) {
          size_t LabelIdx = Runs.failed(Run) ? 0 : 1;
          if (Runs.failed(Run))
            ++Local.NumF;
          else
            ++Local.NumS;
          for (uint32_t Site : Runs.sites(Run))
            ++Local.SiteObs[Site][LabelIdx];
          for (uint32_t Pred : Runs.preds(Run))
            ++Local.PredTrue[Pred][LabelIdx];
        }
      });
    for (std::thread &Worker : Pool)
      Worker.join();
    for (const Partial &Local : Partials) {
      Index.InitialAgg.NumF += Local.NumF;
      Index.InitialAgg.NumS += Local.NumS;
      for (uint32_t Site = 0; Site < NumSites; ++Site) {
        Index.InitialAgg.SiteObs[Site][0] += Local.SiteObs[Site][0];
        Index.InitialAgg.SiteObs[Site][1] += Local.SiteObs[Site][1];
      }
      for (uint32_t Pred = 0; Pred < NumPreds; ++Pred) {
        Index.InitialAgg.PredTrue[Pred][0] += Local.PredTrue[Pred][0];
        Index.InitialAgg.PredTrue[Pred][1] += Local.PredTrue[Pred][1];
      }
    }
  }
  Index.NumFailing0 = Index.InitialAgg.numFailing();

  // --- Row spaces ---------------------------------------------------------
  // Failing-column predicate rows: every predicate that was ever true in a
  // failing run. Full-width rows: the Increase survivors (the policy-1
  // candidate set) plus their sites.
  Index.NumSites = NumSites;
  Index.PredFailRow.assign(NumPreds, NoRow);
  Index.PredFullRow.assign(NumPreds, NoRow);
  Index.SiteFullRow.assign(NumSites, NoRow);

  uint32_t FailPredRows = 0;
  for (uint32_t Pred = 0; Pred < NumPreds; ++Pred) {
    if (Index.InitialAgg.counts(Pred, Sites).F > 0)
      Index.PredFailRow[Pred] = FailPredRows++;
    if (Index.InitialAgg.scores(Pred, Sites).survivesIncreaseTest())
      Index.Survivors.push_back(Pred);
  }

  for (uint32_t Pred : Index.Survivors) {
    Index.PredFullRow[Pred] = static_cast<uint32_t>(Index.FullRowId.size());
    Index.FullRowId.push_back(Pred);
  }
  Index.FullPredRows = static_cast<uint32_t>(Index.FullRowId.size());
  {
    std::vector<uint32_t> SurvivorSites;
    for (uint32_t Pred : Index.Survivors)
      SurvivorSites.push_back(Sites.predicate(Pred).Site);
    std::sort(SurvivorSites.begin(), SurvivorSites.end());
    SurvivorSites.erase(
        std::unique(SurvivorSites.begin(), SurvivorSites.end()),
        SurvivorSites.end());
    for (uint32_t Site : SurvivorSites) {
      Index.SiteFullRow[Site] = static_cast<uint32_t>(Index.FullRowId.size());
      Index.FullRowId.push_back(Site);
    }
  }

  // --- Failing-run column order and the static label mask ----------------
  std::vector<uint32_t> FailingRuns;
  FailingRuns.reserve(Index.NumFailing0);
  for (size_t Run = 0; Run < NumRuns; ++Run)
    if (Runs.failed(Run))
      FailingRuns.push_back(static_cast<uint32_t>(Run));

  Index.FullM = BitMatrix(static_cast<uint32_t>(Index.FullRowId.size()),
                          NumRuns);
  Index.FailM = BitMatrix(FailPredRows, FailingRuns.size());
  Index.FailTRowWords = (size_t(NumPreds) + NumSites + 63) / 64;
  Index.FailT.assign(FailingRuns.size() * Index.FailTRowWords, 0);
  Index.Fail0Mask.assign(Index.FullM.numBlocks() * BW, 0);
  for (size_t Col = 0; Col < FailingRuns.size(); ++Col) {
    uint64_t Run = FailingRuns[Col];
    size_t Block = Run / BitMatrix::BlockCols;
    size_t Word = (Run % BitMatrix::BlockCols) / 64;
    Index.Fail0Mask[Block * BW + Word] |= uint64_t(1) << (Run & 63);
  }

  // --- Pass 2: full-width survivor rows -----------------------------------
  // 64-aligned run chunks own disjoint words; row lookups filter to the
  // survivor rows. Skipped entirely when nothing survives pruning.
  auto fillFull = [&](size_t Begin, size_t End) {
    for (size_t Run = Begin; Run < End; ++Run) {
      for (uint32_t Site : Runs.sites(Run))
        if (uint32_t Row = Index.SiteFullRow[Site]; Row != NoRow)
          Index.FullM.set(Row, Run);
      for (uint32_t Pred : Runs.preds(Run))
        if (uint32_t Row = Index.PredFullRow[Pred]; Row != NoRow)
          Index.FullM.set(Row, Run);
    }
  };
  // --- Pass 3: failing-column structures ----------------------------------
  // Chunked over the failing-run list, so the predicate matrix's
  // 64-alignment is in *column* (failing-rank) space; the transpose's rows
  // are whole per-column, disjoint under any chunking. Predicate rows are
  // always present: a true posting of a failing run implies F0 > 0.
  auto fillFail = [&](size_t Begin, size_t End) {
    for (size_t Col = Begin; Col < End; ++Col) {
      size_t Run = FailingRuns[Col];
      uint64_t *RowT = Index.FailT.data() + Col * Index.FailTRowWords;
      for (uint32_t Site : Runs.sites(Run)) {
        size_t Id = size_t(NumPreds) + Site;
        RowT[Id / 64] |= uint64_t(1) << (Id & 63);
      }
      for (uint32_t Pred : Runs.preds(Run)) {
        Index.FailM.set(Index.PredFailRow[Pred], Col);
        RowT[Pred / 64] |= uint64_t(1) << (Pred & 63);
      }
    }
  };

  if (Workers <= 1) {
    fillFull(0, NumRuns);
    fillFail(0, FailingRuns.size());
  } else {
    auto runParallel = [&](size_t NumItems, auto &&Fill) {
      std::vector<size_t> Bounds = alignedChunks(NumItems, Workers);
      std::vector<std::thread> Pool;
      Pool.reserve(Workers);
      for (size_t W = 0; W < Workers; ++W)
        Pool.emplace_back(
            [&Fill, Begin = Bounds[W], End = Bounds[W + 1]] {
              Fill(Begin, End);
            });
      for (std::thread &Worker : Pool)
        Worker.join();
    };
    runParallel(NumRuns, fillFull);
    runParallel(FailingRuns.size(), fillFail);
  }
  return Index;
}

bool BitsetIndex::preferIncremental(const RunProfiles &Runs,
                                    double MinDensity) {
  const uint64_t Rows =
      uint64_t(Runs.numPredicates()) + uint64_t(Runs.numSites());
  const uint64_t NumRuns = Runs.size();
  if (Rows == 0 || NumRuns == 0)
    return false;
  // Tiny matrices are cheap either way — never fall back below 1 MiB of
  // failing-column matrix, so small campaigns always exercise the bitset
  // path when asked for it.
  const uint64_t FailWords = Rows * ((Runs.numFailing() + 63) / 64);
  if (FailWords * sizeof(uint64_t) < (uint64_t(1) << 20))
    return false;
  const double Density = static_cast<double>(Runs.numPostings()) /
                         (static_cast<double>(Rows) *
                          static_cast<double>(NumRuns));
  return Density < MinDensity;
}

// --- BitsetState ----------------------------------------------------------

BitsetState::BitsetState(const BitsetIndex &Index, size_t Threads)
    : Index(Index), Threads(Threads), Agg(Index.InitialAgg),
      ActiveFail(onesMask(Index.FailM.numCols(),
                          Index.FailM.numBlocks() * BW)),
      ActiveAll(onesMask(Index.FullM.numCols(),
                         Index.FullM.numBlocks() * BW)) {
  DMaskF.resize(ActiveAll.size());
  DMaskS.resize(ActiveAll.size());
  RowDeltaF.resize(Index.FullM.numRows());
  RowDeltaS.resize(Index.FullM.numRows());
}

void BitsetState::sweepRows(const BitMatrix &M, bool WithSuccess) {
  const uint32_t NumRows = M.numRows();
  std::fill(RowDeltaF.begin(), RowDeltaF.begin() + NumRows, 0);
  if (WithSuccess)
    std::fill(RowDeltaS.begin(), RowDeltaS.begin() + NumRows, 0);

  const SweepArgs Args{&M,
                       &DirtyBlocks,
                       DMaskF.data(),
                       DMaskS.data(),
                       RowDeltaF.data(),
                       RowDeltaS.data(),
                       WithSuccess};

  // One worker per ~2M swept words; below that the spawn/join overhead
  // exceeds the sweep itself.
  const size_t Work = DirtyBlocks.size() * BW * NumRows;
  const size_t Workers = resolveThreadCount(Threads, Work >> 21);
  if (Workers <= 1) {
    SweepKernel(Args, 0, NumRows);
    return;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  const uint32_t PerWorker =
      static_cast<uint32_t>((NumRows + Workers - 1) / Workers);
  for (size_t W = 0; W < Workers; ++W) {
    uint32_t Begin = static_cast<uint32_t>(W) * PerWorker;
    uint32_t End = std::min(NumRows, Begin + PerWorker);
    Pool.emplace_back([&Args, Begin, End] { SweepKernel(Args, Begin, End); });
  }
  for (std::thread &Worker : Pool)
    Worker.join();
}

uint64_t BitsetState::discardCoveredRuns(uint32_t Pred) {
  const uint32_t Row = Index.PredFullRow[Pred];
  if (Row == BitsetIndex::NoRow) {
    std::fprintf(stderr,
                 "sbi: BitsetState: predicate %u selected under policy (1) "
                 "but absent from the survivor matrix\n",
                 Pred);
    std::abort();
  }
  const BitMatrix &M = Index.FullM;
  DirtyBlocks.clear();
  uint64_t TotF = 0, TotS = 0;
  for (size_t Block = 0; Block < M.numBlocks(); ++Block) {
    const uint64_t *R = M.blockRow(Block, Row);
    uint64_t *A = ActiveAll.data() + Block * BW;
    const uint64_t *L = Index.Fail0Mask.data() + Block * BW;
    uint64_t Nz = 0;
    for (size_t O = 0; O < BW; ++O) {
      uint64_t D = R[O] & A[O];
      DMaskF[Block * BW + O] = D & L[O];
      DMaskS[Block * BW + O] = D & ~L[O];
      A[O] &= ~D;
      TotF += static_cast<uint64_t>(popcount64(D & L[O]));
      TotS += static_cast<uint64_t>(popcount64(D & ~L[O]));
      Nz |= D;
    }
    if (Nz)
      DirtyBlocks.push_back(static_cast<uint32_t>(Block));
  }
  if (TotF + TotS == 0)
    return 0;

  sweepRows(M, /*WithSuccess=*/true);
  for (uint32_t R = 0; R < M.numRows(); ++R) {
    uint64_t DF = RowDeltaF[R], DS = RowDeltaS[R];
    if (DF == 0 && DS == 0)
      continue;
    uint32_t Id = Index.FullRowId[R];
    if (R < Index.FullPredRows) {
      Agg.PredTrue[Id][0] -= DF;
      Agg.PredTrue[Id][1] -= DS;
    } else {
      Agg.SiteObs[Id][0] -= DF;
      Agg.SiteObs[Id][1] -= DS;
    }
  }
  Agg.NumF -= TotF;
  Agg.NumS -= TotS;
  return TotF + TotS;
}

uint64_t BitsetState::applyFailingOnly(uint32_t Pred, bool Relabel) {
  const uint32_t Row = Index.PredFailRow[Pred];
  if (Row == BitsetIndex::NoRow) {
    std::fprintf(stderr,
                 "sbi: BitsetState: predicate %u selected but never true "
                 "in a failing run\n",
                 Pred);
    std::abort();
  }
  // The discarded set: the selected predicate's failing-column row AND the
  // still-active columns, cleared from the mask and expanded to a column
  // (failing-rank) list.
  const BitMatrix &M = Index.FailM;
  DiscardedCols.clear();
  for (size_t Block = 0; Block < M.numBlocks(); ++Block) {
    const uint64_t *R = M.blockRow(Block, Row);
    uint64_t *A = ActiveFail.data() + Block * BW;
    for (size_t O = 0; O < BW; ++O) {
      uint64_t D = R[O] & A[O];
      if (!D)
        continue;
      A[O] &= ~D;
      const uint32_t Base =
          static_cast<uint32_t>(Block * BitMatrix::BlockCols + O * 64);
      while (D) {
        DiscardedCols.push_back(Base +
                                static_cast<uint32_t>(countr_zero64(D)));
        D &= D - 1;
      }
    }
  }
  const uint64_t Discarded = DiscardedCols.size();
  if (Discarded == 0)
    return 0;

  // Walk each discarded run's transposed bit-row: per-iteration work is
  // proportional to the discarded postings, and the set-bit scan
  // decrements counts in ascending id order.
  const uint32_t NumPreds = static_cast<uint32_t>(Index.PredFailRow.size());
  const size_t RW = Index.FailTRowWords;
  for (uint32_t Col : DiscardedCols) {
    const uint64_t *RowT = Index.FailT.data() + size_t(Col) * RW;
    for (size_t W = 0; W < RW; ++W) {
      uint64_t Bits = RowT[W];
      while (Bits) {
        const uint32_t Id = static_cast<uint32_t>(W * 64) +
                            static_cast<uint32_t>(countr_zero64(Bits));
        Bits &= Bits - 1;
        auto &Counts = Id < NumPreds ? Agg.PredTrue[Id]
                                     : Agg.SiteObs[Id - NumPreds];
        Counts[0] -= 1;
        if (Relabel)
          Counts[1] += 1;
      }
    }
  }
  Agg.NumF -= Discarded;
  if (Relabel)
    Agg.NumS += Discarded;
  return Discarded;
}

uint64_t BitsetState::discardFailingRuns(uint32_t Pred) {
  return applyFailingOnly(Pred, /*Relabel=*/false);
}

uint64_t BitsetState::relabelFailingRuns(uint32_t Pred) {
  return applyFailingOnly(Pred, /*Relabel=*/true);
}
