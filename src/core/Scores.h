//===- core/Scores.h - Failure, Context, Increase, Importance -------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-predicate statistics of Sections 3.1-3.3:
///
///   Failure(P)  = Pr(Crash | P observed to be true)
///               = F(P) / (S(P) + F(P))
///   Context(P)  = Pr(Crash | P observed)
///               = F(P obs) / (S(P obs) + F(P obs))
///   Increase(P) = Failure(P) - Context(P), with a 95% confidence interval;
///                 the pruning test keeps P only when the interval lies
///                 strictly above zero.
///   Importance(P) = harmonic mean of Increase(P) (specificity) and
///                 log(F(P)) / log(NumF) (log-moderated sensitivity),
///                 defined as 0 whenever a division by zero would occur.
///
/// Section 3.2's equivalent hypothesis-test view is also provided: the
/// two-proportion Z statistic on p_f = F(P)/F(P obs) vs
/// p_s = S(P)/S(P obs); Increase(P) > 0 iff p_f > p_s.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_CORE_SCORES_H
#define SBI_CORE_SCORES_H

#include "support/Stats.h"
#include "support/Thermometer.h"

#include <cstdint>

namespace sbi {

/// The four counts behind every score.
struct PredicateCounts {
  uint64_t F = 0;    ///< Failing runs where P observed true.
  uint64_t S = 0;    ///< Successful runs where P observed true.
  uint64_t FObs = 0; ///< Failing runs where P's site was sampled.
  uint64_t SObs = 0; ///< Successful runs where P's site was sampled.

  uint64_t observedTrue() const { return F + S; }
  uint64_t observed() const { return FObs + SObs; }
};

/// Score bundle for one predicate over one run population.
class PredicateScores {
public:
  PredicateScores() = default;
  explicit PredicateScores(PredicateCounts Counts) : Counts(Counts) {}

  const PredicateCounts &counts() const { return Counts; }

  Proportion failureProportion() const { return {Counts.F, Counts.F + Counts.S}; }
  Proportion contextProportion() const {
    return {Counts.FObs, Counts.FObs + Counts.SObs};
  }

  double failure() const { return failureProportion().value(); }
  double context() const { return contextProportion().value(); }

  /// Increase(P) with its 95% confidence interval.
  ScoreInterval increase() const {
    return differenceInterval(failureProportion(), contextProportion());
  }

  /// The pruning test of Section 3.1: keep P iff the Increase interval lies
  /// strictly above zero (and P was ever observed true in a failing run).
  bool survivesIncreaseTest() const {
    return Counts.F > 0 && increase().lowerBound() > 0.0;
  }

  /// Section 3.2's heads-probability estimates and Z statistic.
  Proportion headsFailing() const { return {Counts.F, Counts.FObs}; }
  Proportion headsSuccessful() const { return {Counts.S, Counts.SObs}; }
  double zScore() const {
    return twoProportionZ(headsFailing(), headsSuccessful());
  }

  /// The log-moderated sensitivity term log(F(P)) / log(NumF).
  double sensitivity(uint64_t NumF) const;

  /// Importance(P) over a population with \p NumF failing runs.
  double importance(uint64_t NumF) const;

  /// Delta-method 95% interval for Importance (Section 3.3's suggestion).
  ScoreInterval importanceInterval(uint64_t NumF) const;

  /// The bug-thermometer bands for this predicate (Section 3.3).
  ThermometerSpec thermometer() const;

private:
  PredicateCounts Counts;
};

} // namespace sbi

#endif // SBI_CORE_SCORES_H
