//===- core/Aggregator.cpp - Count aggregation over run populations -------===//

#include "core/Aggregator.h"

#include <cstdio>
#include <cstdlib>

using namespace sbi;

RunView RunView::allOf(const ReportSet &Set) {
  RunView View;
  View.Active.assign(Set.size(), 1);
  View.Failed.resize(Set.size());
  for (size_t I = 0; I < Set.size(); ++I)
    View.Failed[I] = Set[I].Failed ? 1 : 0;
  return View;
}

RunView RunView::allOf(const RunProfiles &Runs) {
  RunView View;
  View.Active.assign(Runs.size(), 1);
  View.Failed.resize(Runs.size());
  for (size_t I = 0; I < Runs.size(); ++I)
    View.Failed[I] = Runs.failed(I) ? 1 : 0;
  return View;
}

size_t RunView::numActive() const {
  size_t N = 0;
  for (uint8_t A : Active)
    N += A;
  return N;
}

size_t RunView::numActiveFailing() const {
  size_t N = 0;
  for (size_t I = 0; I < Active.size(); ++I)
    N += (Active[I] && Failed[I]) ? 1 : 0;
  return N;
}

Aggregates Aggregates::compute(const ReportSet &Set, const RunView &View) {
  // A mismatched view would read out of bounds below, so the check must
  // survive NDEBUG builds (the default RelWithDebInfo configuration strips
  // asserts). Mirrors ReportSet::deserialize's hard rejection of malformed
  // input rather than relying on callers to get it right.
  if (View.Active.size() != Set.size() || View.Failed.size() != Set.size()) {
    std::fprintf(stderr,
                 "sbi: Aggregates::compute: run view (%zu active / %zu "
                 "failed labels) does not match report set (%zu runs)\n",
                 View.Active.size(), View.Failed.size(), Set.size());
    std::abort();
  }
  Aggregates Agg(Set.numSites(), Set.numPredicates());

  for (size_t RunIdx = 0; RunIdx < Set.size(); ++RunIdx) {
    if (!View.Active[RunIdx])
      continue;
    const FeedbackReport &Report = Set[RunIdx];
    size_t LabelIdx = View.Failed[RunIdx] ? 0 : 1;
    if (View.Failed[RunIdx])
      ++Agg.NumF;
    else
      ++Agg.NumS;

    for (const auto &[Site, Count] : Report.Counts.SiteObservations)
      if (Count > 0)
        ++Agg.SiteObs[Site][LabelIdx];
    for (const auto &[Pred, Count] : Report.Counts.TruePredicates)
      if (Count > 0)
        ++Agg.PredTrue[Pred][LabelIdx];
  }
  return Agg;
}

Aggregates Aggregates::compute(const RunProfiles &Runs, const RunView &View) {
  if (View.Active.size() != Runs.size() ||
      View.Failed.size() != Runs.size()) {
    std::fprintf(stderr,
                 "sbi: Aggregates::compute: run view (%zu active / %zu "
                 "failed labels) does not match run profiles (%zu runs)\n",
                 View.Active.size(), View.Failed.size(), Runs.size());
    std::abort();
  }
  Aggregates Agg(Runs.numSites(), Runs.numPredicates());

  for (size_t RunIdx = 0; RunIdx < Runs.size(); ++RunIdx) {
    if (!View.Active[RunIdx])
      continue;
    size_t LabelIdx = View.Failed[RunIdx] ? 0 : 1;
    if (View.Failed[RunIdx])
      ++Agg.NumF;
    else
      ++Agg.NumS;

    for (uint32_t Site : Runs.sites(RunIdx))
      ++Agg.SiteObs[Site][LabelIdx];
    for (uint32_t Pred : Runs.preds(RunIdx))
      ++Agg.PredTrue[Pred][LabelIdx];
  }
  return Agg;
}
