//===- core/Scores.cpp - Failure, Context, Increase, Importance -----------===//

#include "core/Scores.h"

#include <algorithm>
#include <cmath>

using namespace sbi;

double PredicateScores::sensitivity(uint64_t NumF) const {
  if (NumF <= 1 || Counts.F == 0)
    return 0.0;
  double Num = std::log(static_cast<double>(Counts.F));
  double Den = std::log(static_cast<double>(NumF));
  return Num / Den;
}

double PredicateScores::importance(uint64_t NumF) const {
  // failure() - context() is bit-for-bit increase().Value; computing it
  // directly skips the interval's sqrt, which dominates the ranking loops.
  double Inc = failure() - context();
  double Sens = sensitivity(NumF);
  // The harmonic mean is undefined when either term is nonpositive; the
  // paper defines Importance as 0 in that case.
  if (Inc <= 0.0 || Sens <= 0.0)
    return 0.0;
  return 2.0 / (1.0 / Inc + 1.0 / Sens);
}

ScoreInterval PredicateScores::importanceInterval(uint64_t NumF) const {
  double Inc = increase().Value;
  double Sens = sensitivity(NumF);
  if (Inc <= 0.0 || Sens <= 0.0)
    return {0.0, 0.0};

  // Variance of Increase: sum of the two proportion variances (the same
  // approximation the Increase interval uses).
  double VarInc =
      failureProportion().variance() + contextProportion().variance();

  // Variance of log(F)/log(NumF): model F as a binomial count over NumF
  // failing runs with success probability F/NumF, then apply the delta
  // method to t -> log(t)/log(NumF): d/dF = 1 / (F log NumF).
  double FCount = static_cast<double>(Counts.F);
  double NumFD = static_cast<double>(NumF);
  double VarF = FCount * (1.0 - FCount / NumFD);
  double Deriv = 1.0 / (FCount * std::log(NumFD));
  double VarSens = Deriv * Deriv * VarF;

  return harmonicMeanInterval(Inc, VarInc, Sens, VarSens);
}

ThermometerSpec PredicateScores::thermometer() const {
  ThermometerSpec Spec;
  Spec.Context = context();
  ScoreInterval Inc = increase();
  Spec.IncreaseLowerBound = std::max(0.0, Inc.lowerBound());
  Spec.ConfidenceWidth =
      std::max(0.0, std::min(Inc.upperBound(), 1.0 - Spec.Context) -
                        Spec.IncreaseLowerBound);
  Spec.RunsObservedTrue = Counts.observedTrue();
  return Spec;
}
