//===- core/Analysis.cpp - The cause-isolation algorithm ------------------===//

#include "core/Analysis.h"

#include "core/BitMatrix.h"
#include "core/InvertedIndex.h"
#include "obs/Phase.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>
#include <unordered_map>

using namespace sbi;

const char *sbi::discardPolicyName(DiscardPolicy Policy) {
  switch (Policy) {
  case DiscardPolicy::DiscardAllRuns:
    return "discard-all-runs";
  case DiscardPolicy::DiscardFailingRuns:
    return "discard-failing-runs";
  case DiscardPolicy::RelabelFailingRuns:
    return "relabel-failing-runs";
  }
  return "?";
}

const char *sbi::analysisEngineName(AnalysisEngine Engine) {
  switch (Engine) {
  case AnalysisEngine::Rescan:
    return "rescan";
  case AnalysisEngine::Incremental:
    return "incremental";
  case AnalysisEngine::Bitset:
    return "bitset";
  }
  return "?";
}

namespace {

/// Shared comparison core of bitIdentical and prunedRankingsMatch.
/// \p CompareSurvivingCandidates controls whether the trail's candidate
/// counts participate: under policies (2)/(3) the candidate pool is "every
/// predicate with F(P) > 0", which legitimately shrinks when instrumentation
/// is statically pruned, while everything selection-visible stays equal.
bool resultsMatch(const AnalysisResult &A, const AnalysisResult &B,
                  bool CompareSurvivingCandidates) {
  auto sameScores = [](const PredicateScores &X, const PredicateScores &Y) {
    const PredicateCounts &C = X.counts(), &D = Y.counts();
    return C.F == D.F && C.S == D.S && C.FObs == D.FObs && C.SObs == D.SObs;
  };
  if (A.NumInitialPredicates != B.NumInitialPredicates ||
      A.Policy != B.Policy || A.PrunedSurvivors != B.PrunedSurvivors ||
      A.Selected.size() != B.Selected.size() ||
      A.Trail.size() != B.Trail.size())
    return false;
  for (size_t I = 0; I < A.Trail.size(); ++I) {
    const EliminationTraceEntry &X = A.Trail[I], &Y = B.Trail[I];
    if (X.Pred != Y.Pred || X.Counts.F != Y.Counts.F ||
        X.Counts.S != Y.Counts.S || X.Counts.FObs != Y.Counts.FObs ||
        X.Counts.SObs != Y.Counts.SObs || X.Increase != Y.Increase ||
        X.Importance != Y.Importance || X.ActiveRuns != Y.ActiveRuns ||
        X.FailingRuns != Y.FailingRuns ||
        X.RunsDiscarded != Y.RunsDiscarded ||
        (CompareSurvivingCandidates &&
         X.SurvivingCandidates != Y.SurvivingCandidates))
      return false;
  }
  for (size_t I = 0; I < A.Selected.size(); ++I) {
    const SelectedPredicate &X = A.Selected[I], &Y = B.Selected[I];
    if (X.Pred != Y.Pred || !sameScores(X.InitialScores, Y.InitialScores) ||
        X.InitialImportance != Y.InitialImportance ||
        !sameScores(X.EffectiveScores, Y.EffectiveScores) ||
        X.EffectiveImportance != Y.EffectiveImportance ||
        X.ActiveRunsAtSelection != Y.ActiveRunsAtSelection ||
        X.FailingRunsAtSelection != Y.FailingRunsAtSelection ||
        X.Affinity != Y.Affinity)
      return false;
  }
  return true;
}

} // namespace

bool sbi::bitIdentical(const AnalysisResult &A, const AnalysisResult &B) {
  return resultsMatch(A, B, /*CompareSurvivingCandidates=*/true);
}

bool sbi::prunedRankingsMatch(const AnalysisResult &A,
                              const AnalysisResult &B) {
  return resultsMatch(A, B, /*CompareSurvivingCandidates=*/false);
}

CauseIsolator::CauseIsolator(const SiteTable &Sites, const ReportSet &Set,
                             AnalysisOptions Options)
    : Sites(Sites), OwnedRuns(RunProfiles::fromReports(Set)),
      Runs(*OwnedRuns), Options(Options) {
  assert(Sites.numPredicates() == Runs.numPredicates() &&
         "report set does not match the site table");
}

CauseIsolator::CauseIsolator(const SiteTable &Sites, const RunProfiles &Runs,
                             AnalysisOptions Options)
    : Sites(Sites), Runs(Runs), Options(Options) {
  assert(Sites.numPredicates() == Runs.numPredicates() &&
         "run profiles do not match the site table");
}

namespace {

/// Scores \p Candidates against precomputed counts, most important first.
/// Shared by both engines: the rescan path feeds it a fresh full scan, the
/// incremental path the delta-maintained counts — identical integer counts
/// make every derived double, and therefore the order, identical.
std::vector<RankedPredicate>
rankAggregated(const Aggregates &Agg, const SiteTable &Sites,
               const std::vector<uint32_t> &Candidates) {
  uint64_t NumF = Agg.numFailing();

  std::vector<RankedPredicate> Ranked;
  Ranked.reserve(Candidates.size());
  for (uint32_t Pred : Candidates) {
    RankedPredicate Entry;
    Entry.Pred = Pred;
    Entry.Scores = Agg.scores(Pred, Sites);
    Entry.Importance = Entry.Scores.importance(NumF);
    Entry.ImportanceCI = Entry.Scores.importanceInterval(NumF);
    Ranked.push_back(std::move(Entry));
  }

  std::sort(Ranked.begin(), Ranked.end(),
            [](const RankedPredicate &A, const RankedPredicate &B) {
              if (A.Importance != B.Importance)
                return A.Importance > B.Importance;
              if (A.Scores.counts().F != B.Scores.counts().F)
                return A.Scores.counts().F > B.Scores.counts().F;
              return A.Pred < B.Pred;
            });
  return Ranked;
}

/// The entry a full sort would surface first among predicates with F > 0.
struct BestCandidate {
  bool Found = false;
  uint32_t Pred = 0;
  PredicateScores Scores;
  double Importance = 0.0;
};

/// One scoring pass of the incremental engine: evaluates every candidate
/// against the delta-maintained counts, records Importance(P) into
/// \p ImportanceByPred (indexed by predicate id), and returns the maximum
/// under (Importance desc, F desc, Pred asc) restricted to F > 0 — exactly
/// the entry the rescan engine's sorted ranking selects. Skipping the sort,
/// the per-predicate confidence intervals, and the hash map keeps the pass
/// O(|Candidates|) with small constants; the doubles computed are the same,
/// so selection and affinity stay bit-identical across engines.
BestCandidate scoreCandidates(const Aggregates &Agg, const SiteTable &Sites,
                              const std::vector<uint32_t> &Candidates,
                              std::vector<double> &ImportanceByPred) {
  uint64_t NumF = Agg.numFailing();
  BestCandidate Best;
  for (uint32_t Pred : Candidates) {
    PredicateScores Scores = Agg.scores(Pred, Sites);
    double Importance = Scores.importance(NumF);
    ImportanceByPred[Pred] = Importance;
    if (Scores.counts().F == 0 || Importance <= 0.0)
      continue;
    bool Better =
        !Best.Found || Importance > Best.Importance ||
        (Importance == Best.Importance &&
         (Scores.counts().F > Best.Scores.counts().F ||
          (Scores.counts().F == Best.Scores.counts().F && Pred < Best.Pred)));
    if (Better) {
      Best.Found = true;
      Best.Pred = Pred;
      Best.Scores = Scores;
      Best.Importance = Importance;
    }
  }
  return Best;
}

/// Orders affinity drops largest-first with the predicate id as tiebreak —
/// a total order, so both engines produce identical lists — and keeps the
/// top \p TopK.
void sortAndCapDrops(std::vector<std::pair<uint32_t, double>> &Drops,
                     int TopK) {
  std::sort(Drops.begin(), Drops.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (static_cast<int>(Drops.size()) > TopK)
    Drops.resize(static_cast<size_t>(TopK));
}

} // namespace

std::vector<uint32_t> CauseIsolator::prune() const {
  RunView View = RunView::allOf(Runs);
  return survivorsOf(Aggregates::compute(Runs, View));
}

std::vector<uint32_t> CauseIsolator::survivorsOf(const Aggregates &Agg) const {
  std::vector<uint32_t> Survivors;
  for (uint32_t Pred = 0; Pred < Runs.numPredicates(); ++Pred)
    if (Agg.scores(Pred, Sites).survivesIncreaseTest())
      Survivors.push_back(Pred);
  return Survivors;
}

std::vector<RankedPredicate>
CauseIsolator::rank(const std::vector<uint32_t> &Candidates,
                    const RunView &View) const {
  return rankAggregated(Aggregates::compute(Runs, View), Sites, Candidates);
}

uint64_t CauseIsolator::applyPolicy(RunView &View, uint32_t Pred) const {
  uint64_t Touched = 0;
  for (size_t Run = 0; Run < Runs.size(); ++Run) {
    if (!View.Active[Run] || !Runs.observedTrue(Run, Pred))
      continue;
    switch (Options.Policy) {
    case DiscardPolicy::DiscardAllRuns:
      View.Active[Run] = 0;
      ++Touched;
      break;
    case DiscardPolicy::DiscardFailingRuns:
      if (View.Failed[Run]) {
        View.Active[Run] = 0;
        ++Touched;
      }
      break;
    case DiscardPolicy::RelabelFailingRuns:
      if (View.Failed[Run]) {
        View.Failed[Run] = 0;
        ++Touched;
      }
      break;
    }
  }
  return Touched;
}

uint64_t CauseIsolator::applyPolicyBitset(uint32_t Pred,
                                          BitsetState &State) const {
  switch (Options.Policy) {
  case DiscardPolicy::DiscardAllRuns:
    return State.discardCoveredRuns(Pred);
  case DiscardPolicy::DiscardFailingRuns:
    return State.discardFailingRuns(Pred);
  case DiscardPolicy::RelabelFailingRuns:
    return State.relabelFailingRuns(Pred);
  }
  return 0;
}

uint64_t CauseIsolator::applyPolicyIncremental(RunView &View, uint32_t Pred,
                                               const InvertedIndex &Index,
                                               DeltaAggregates &Delta) const {
  uint64_t Touched = 0;
  for (uint32_t Run : Index.runsWhereTrue(Pred)) {
    if (!View.Active[Run])
      continue;
    switch (Options.Policy) {
    case DiscardPolicy::DiscardAllRuns:
      View.Active[Run] = 0;
      Delta.removeRun(Run, View.Failed[Run]);
      ++Touched;
      break;
    case DiscardPolicy::DiscardFailingRuns:
      if (View.Failed[Run]) {
        View.Active[Run] = 0;
        Delta.removeRun(Run, /*Failed=*/true);
        ++Touched;
      }
      break;
    case DiscardPolicy::RelabelFailingRuns:
      if (View.Failed[Run]) {
        View.Failed[Run] = 0;
        Delta.relabelRunAsSuccess(Run);
        ++Touched;
      }
      break;
    }
  }
  return Touched;
}

std::vector<uint32_t>
CauseIsolator::initialCandidatesOf(const Aggregates &Agg) const {
  // Under proposal (1) a predicate and its complement can never both have
  // positive predictive power, so pruning negatives early is safe. Under
  // proposals (2) and (3) a predicate with Increase <= 0 may become a
  // positive predictor once an anti-correlated predictor is selected
  // (Section 5), so only the never-true-in-a-failing-run predicates are
  // dropped.
  if (Options.Policy == DiscardPolicy::DiscardAllRuns)
    return survivorsOf(Agg);
  std::vector<uint32_t> Candidates;
  for (uint32_t Pred = 0; Pred < Runs.numPredicates(); ++Pred)
    if (Agg.counts(Pred, Sites).F > 0)
      Candidates.push_back(Pred);
  return Candidates;
}

AnalysisResult CauseIsolator::run() const {
  ScopedPhase AnalysisPhase("analysis");
  // Trace spans mirror the phase names so `sbi trace summarize` agrees
  // with the registry's phase timers; the per-iteration spans add the
  // resolution phases cannot give (which iteration dominates, and how the
  // candidate pool shrinks).
  ScopedSpan AnalysisSpan("analysis", "analysis");

  // The density fallback: for populations so sparse that dense word sweeps
  // would outweigh posting walks, the bitset engine defers to the
  // incremental one (identical results either way). A caller-provided
  // BitsetIndex pins the engine — the build is already paid for.
  AnalysisEngine Engine = Options.Engine;
  if (Engine == AnalysisEngine::Bitset && !Options.SharedBitset &&
      BitsetIndex::preferIncremental(Runs, Options.BitsetMinDensity))
    Engine = AnalysisEngine::Incremental;
  const bool Incremental = Engine == AnalysisEngine::Incremental;
  const bool Bitset = Engine == AnalysisEngine::Bitset;
  // Both live engines share the sort-free scoring path; they differ only
  // in how the counts are kept current after each selection.
  const bool Live = Incremental || Bitset;

  AnalysisResult Result;
  Result.NumInitialPredicates = Runs.numPredicates();
  Result.Policy = Options.Policy;

  RunView View = RunView::allOf(Runs);

  // The live engines pay a build up front, then touch only the selected
  // predicate's runs (incremental: its posting list; bitset: its row AND
  // the active mask) per iteration. The rescan engine keeps the
  // paper-literal shape: a full aggregation pass per ranking. A caller
  // analyzing the same population repeatedly can pass a prebuilt
  // index/bitset; neither is ever mutated, so sharing is safe.
  std::optional<InvertedIndex> OwnedIndex;
  const InvertedIndex *Index = nullptr;
  std::optional<DeltaAggregates> Delta;
  std::optional<BitsetIndex> OwnedBitset;
  const BitsetIndex *BIndex = nullptr;
  std::optional<BitsetState> BState;
  // An owned posting-list build reads the same immutable RunProfiles as
  // the initial scan, so it runs on a worker concurrently with the scan
  // below instead of serializing in front of it; the "index_build" phase
  // then measures only the residual join wait.
  std::thread IndexBuilder;

  if (Incremental) {
    if (Options.SharedIndex) {
      Index = Options.SharedIndex;
      if (Index->numPredicates() != Runs.numPredicates() ||
          Index->numSites() != Runs.numSites()) {
        std::fprintf(stderr,
                     "sbi: CauseIsolator::run: shared index (%u sites / %u "
                     "predicates) was not built over this run population "
                     "(%u sites / %u predicates)\n",
                     Index->numSites(), Index->numPredicates(),
                     Runs.numSites(), Runs.numPredicates());
        std::abort();
      }
    } else {
      IndexBuilder = std::thread([this, &OwnedIndex] {
        OwnedIndex.emplace(InvertedIndex::build(Runs, Options.IndexThreads));
      });
    }
  } else if (Bitset) {
    ScopedPhase IndexPhase("index_build");
    ScopedSpan IndexSpan("index_build", "analysis");
    if (Options.SharedBitset) {
      BIndex = Options.SharedBitset;
      if (BIndex->numPredicates() != Runs.numPredicates() ||
          BIndex->numSites() != Runs.numSites() ||
          BIndex->numRuns() != Runs.size()) {
        std::fprintf(stderr,
                     "sbi: CauseIsolator::run: shared bitset index was not "
                     "built over this run population\n");
        std::abort();
      }
    } else {
      OwnedBitset.emplace(
          BitsetIndex::build(Runs, Sites, Options.IndexThreads));
      BIndex = &*OwnedBitset;
    }
    BState.emplace(*BIndex, Options.IndexThreads);
  }

  // Initial (full-population) scores, shown as the "initial thermometer".
  // The bitset build already fused this scan into its counting pass.
  std::optional<ScopedPhase> ScanPhase;
  std::optional<ScopedSpan> ScanSpan;
  ScanPhase.emplace("initial_scan");
  ScanSpan.emplace("initial_scan", "analysis");
  if (Incremental)
    Delta.emplace(Runs, View);
  Aggregates InitialAgg = Bitset        ? BIndex->initialAggregates()
                          : Incremental ? Delta->aggregates()
                                        : Aggregates::compute(Runs, View);
  uint64_t InitialNumF = InitialAgg.numFailing();

  Result.PrunedSurvivors =
      Bitset ? BIndex->survivors() : survivorsOf(InitialAgg);
  std::vector<uint32_t> Candidates = initialCandidatesOf(InitialAgg);
  ScanSpan.reset();
  ScanPhase.reset();

  if (IndexBuilder.joinable()) {
    ScopedPhase IndexPhase("index_build");
    ScopedSpan IndexSpan("index_build", "analysis");
    IndexBuilder.join();
    Index = &*OwnedIndex;
  }

  ScopedPhase EliminationPhase("elimination");
  ScopedSpan EliminationSpan("elimination", "analysis");

  // The live engines' current counts: delta-maintained or popcount-
  // maintained, always exactly what a fresh full scan would produce.
  auto liveAgg = [&]() -> const Aggregates & {
    return Bitset ? BState->aggregates() : Delta->aggregates();
  };

  // Rescan engine: the paper-literal fully sorted ranking, rebuilt from a
  // full aggregation pass per iteration. Live engines: one importance
  // value per predicate (all affinity needs) plus the would-be-first entry,
  // both maintained by a single sort-free scoring pass per iteration.
  std::vector<RankedPredicate> Ranked;
  std::vector<double> CurImportance, NextImportance;
  BestCandidate Best;
  if (Live) {
    CurImportance.resize(Runs.numPredicates());
    NextImportance.resize(Runs.numPredicates());
    Best = scoreCandidates(liveAgg(), Sites, Candidates, CurImportance);
  } else {
    Ranked = rank(Candidates, View);
  }

  for (int Iteration = 0; Iteration < Options.MaxSelections; ++Iteration) {
    // One span per elimination iteration, shared by all three engines:
    // the loop body is common, only the count-maintenance differs.
    ScopedSpan IterSpan("elimination_iter", "analysis");
    IterSpan.arg("candidates", Candidates.size());
    // Under relabeling every run stays active, so active = F + S in every
    // engine; the live counts give the totals without a view scan.
    uint64_t ActiveRuns = Live ? liveAgg().numFailing() +
                                     liveAgg().numSuccessful()
                               : View.numActive();
    uint64_t FailingRuns =
        Live ? liveAgg().numFailing() : View.numActiveFailing();
    IterSpan.arg("active_runs", ActiveRuns);
    if (Candidates.empty() || FailingRuns == 0)
      break;

    // Select the top-ranked predicate that still covers at least one
    // active failing run (Lemma 3.1's coverage argument rests on F(P) > 0)
    // and has strictly positive Importance. A zero-Importance predicate has
    // no positive Increase over the current population, so selecting it
    // explains nothing; the strict gate also guarantees that predicates
    // with Increase identically zero — notably always-true-when-observed
    // predicates, whose Failure and Context are the same ratio over every
    // sub-population — can never enter the output list, which is what lets
    // static pruning drop them without perturbing the rankings.
    SelectedPredicate Selected;
    if (Live) {
      if (!Best.Found)
        break;
      Selected.Pred = Best.Pred;
      Selected.EffectiveScores = Best.Scores;
      Selected.EffectiveImportance = Best.Importance;
    } else {
      const RankedPredicate *Top = nullptr;
      for (const RankedPredicate &Entry : Ranked)
        if (Entry.Scores.counts().F > 0 && Entry.Importance > 0.0) {
          Top = &Entry;
          break;
        }
      if (!Top)
        break;
      Selected.Pred = Top->Pred;
      Selected.EffectiveScores = Top->Scores;
      Selected.EffectiveImportance = Top->Importance;
    }
    Selected.InitialScores = InitialAgg.scores(Selected.Pred, Sites);
    Selected.InitialImportance = Selected.InitialScores.importance(InitialNumF);
    Selected.ActiveRunsAtSelection = ActiveRuns;
    Selected.FailingRunsAtSelection = FailingRuns;

    uint64_t RunsDiscarded =
        Bitset        ? applyPolicyBitset(Selected.Pred, *BState)
        : Incremental ? applyPolicyIncremental(View, Selected.Pred, *Index,
                                               *Delta)
                      : applyPolicy(View, Selected.Pred);
    Candidates.erase(
        std::remove(Candidates.begin(), Candidates.end(), Selected.Pred),
        Candidates.end());

    // The audit-trail entry for this iteration: selection rationale plus
    // the policy's effect, derived entirely from engine-shared counts so
    // both engines emit identical trails.
    EliminationTraceEntry Trace;
    Trace.Pred = Selected.Pred;
    Trace.Counts = Selected.EffectiveScores.counts();
    Trace.Increase = Selected.EffectiveScores.increase().Value;
    Trace.Importance = Selected.EffectiveImportance;
    Trace.ActiveRuns = ActiveRuns;
    Trace.FailingRuns = FailingRuns;
    Trace.RunsDiscarded = RunsDiscarded;
    Trace.SurvivingCandidates = Candidates.size();
    Result.Trail.push_back(Trace);

    // Affinity(P -> Q): how much Q's Importance fell when P's runs were
    // removed. Large drops indicate Q predicts (a subset of) P's bug.
    if (Live) {
      Best = scoreCandidates(liveAgg(), Sites, Candidates, NextImportance);
      if (Options.ComputeAffinity) {
        std::vector<std::pair<uint32_t, double>> Drops;
        for (uint32_t Pred : Candidates) {
          double Drop = CurImportance[Pred] - NextImportance[Pred];
          if (Drop > 0.0)
            Drops.emplace_back(Pred, Drop);
        }
        sortAndCapDrops(Drops, Options.AffinityTopK);
        Selected.Affinity = std::move(Drops);
      }
      std::swap(CurImportance, NextImportance);
    } else {
      std::vector<RankedPredicate> NextRanked = rank(Candidates, View);
      if (Options.ComputeAffinity) {
        std::unordered_map<uint32_t, double> After;
        After.reserve(NextRanked.size());
        for (const RankedPredicate &Entry : NextRanked)
          After.emplace(Entry.Pred, Entry.Importance);

        std::vector<std::pair<uint32_t, double>> Drops;
        for (const RankedPredicate &Entry : Ranked) {
          auto It = After.find(Entry.Pred);
          if (It == After.end())
            continue;
          double Drop = Entry.Importance - It->second;
          if (Drop > 0.0)
            Drops.emplace_back(Entry.Pred, Drop);
        }
        sortAndCapDrops(Drops, Options.AffinityTopK);
        Selected.Affinity = std::move(Drops);
      }
      Ranked = std::move(NextRanked);
    }

    Result.Selected.push_back(std::move(Selected));
  }

  return Result;
}
