//===- core/Analysis.cpp - The cause-isolation algorithm ------------------===//

#include "core/Analysis.h"

#include <algorithm>
#include <unordered_map>

using namespace sbi;

const char *sbi::discardPolicyName(DiscardPolicy Policy) {
  switch (Policy) {
  case DiscardPolicy::DiscardAllRuns:
    return "discard-all-runs";
  case DiscardPolicy::DiscardFailingRuns:
    return "discard-failing-runs";
  case DiscardPolicy::RelabelFailingRuns:
    return "relabel-failing-runs";
  }
  return "?";
}

CauseIsolator::CauseIsolator(const SiteTable &Sites, const ReportSet &Set,
                             AnalysisOptions Options)
    : Sites(Sites), Set(Set), Options(Options) {
  assert(Sites.numPredicates() == Set.numPredicates() &&
         "report set does not match the site table");
}

std::vector<uint32_t> CauseIsolator::prune() const {
  RunView View = RunView::allOf(Set);
  Aggregates Agg = Aggregates::compute(Set, View);
  std::vector<uint32_t> Survivors;
  for (uint32_t Pred = 0; Pred < Set.numPredicates(); ++Pred)
    if (Agg.scores(Pred, Sites).survivesIncreaseTest())
      Survivors.push_back(Pred);
  return Survivors;
}

std::vector<RankedPredicate>
CauseIsolator::rank(const std::vector<uint32_t> &Candidates,
                    const RunView &View) const {
  Aggregates Agg = Aggregates::compute(Set, View);
  uint64_t NumF = Agg.numFailing();

  std::vector<RankedPredicate> Ranked;
  Ranked.reserve(Candidates.size());
  for (uint32_t Pred : Candidates) {
    RankedPredicate Entry;
    Entry.Pred = Pred;
    Entry.Scores = Agg.scores(Pred, Sites);
    Entry.Importance = Entry.Scores.importance(NumF);
    Entry.ImportanceCI = Entry.Scores.importanceInterval(NumF);
    Ranked.push_back(std::move(Entry));
  }

  std::sort(Ranked.begin(), Ranked.end(),
            [](const RankedPredicate &A, const RankedPredicate &B) {
              if (A.Importance != B.Importance)
                return A.Importance > B.Importance;
              if (A.Scores.counts().F != B.Scores.counts().F)
                return A.Scores.counts().F > B.Scores.counts().F;
              return A.Pred < B.Pred;
            });
  return Ranked;
}

void CauseIsolator::applyPolicy(RunView &View, uint32_t Pred) const {
  for (size_t Run = 0; Run < Set.size(); ++Run) {
    if (!View.Active[Run] || !Set[Run].observedTrue(Pred))
      continue;
    switch (Options.Policy) {
    case DiscardPolicy::DiscardAllRuns:
      View.Active[Run] = 0;
      break;
    case DiscardPolicy::DiscardFailingRuns:
      if (View.Failed[Run])
        View.Active[Run] = 0;
      break;
    case DiscardPolicy::RelabelFailingRuns:
      if (View.Failed[Run])
        View.Failed[Run] = 0;
      break;
    }
  }
}

std::vector<uint32_t> CauseIsolator::initialCandidates() const {
  // Under proposal (1) a predicate and its complement can never both have
  // positive predictive power, so pruning negatives early is safe. Under
  // proposals (2) and (3) a predicate with Increase <= 0 may become a
  // positive predictor once an anti-correlated predictor is selected
  // (Section 5), so only the never-true-in-a-failing-run predicates are
  // dropped.
  if (Options.Policy == DiscardPolicy::DiscardAllRuns)
    return prune();
  RunView View = RunView::allOf(Set);
  Aggregates Agg = Aggregates::compute(Set, View);
  std::vector<uint32_t> Candidates;
  for (uint32_t Pred = 0; Pred < Set.numPredicates(); ++Pred)
    if (Agg.counts(Pred, Sites).F > 0)
      Candidates.push_back(Pred);
  return Candidates;
}

AnalysisResult CauseIsolator::run() const {
  AnalysisResult Result;
  Result.NumInitialPredicates = Set.numPredicates();
  Result.PrunedSurvivors = prune();

  RunView View = RunView::allOf(Set);
  std::vector<uint32_t> Candidates = initialCandidates();

  // Initial (full-population) scores, shown as the "initial thermometer".
  Aggregates InitialAgg = Aggregates::compute(Set, View);
  uint64_t InitialNumF = InitialAgg.numFailing();

  std::vector<RankedPredicate> Ranked = rank(Candidates, View);

  for (int Iteration = 0; Iteration < Options.MaxSelections; ++Iteration) {
    if (Candidates.empty() || View.numActiveFailing() == 0)
      break;

    // Select the top-ranked predicate that still covers at least one
    // active failing run; Lemma 3.1's coverage argument rests on F(P) > 0.
    const RankedPredicate *Best = nullptr;
    for (const RankedPredicate &Entry : Ranked)
      if (Entry.Scores.counts().F > 0) {
        Best = &Entry;
        break;
      }
    if (!Best)
      break;

    SelectedPredicate Selected;
    Selected.Pred = Best->Pred;
    Selected.InitialScores = InitialAgg.scores(Best->Pred, Sites);
    Selected.InitialImportance = Selected.InitialScores.importance(InitialNumF);
    Selected.EffectiveScores = Best->Scores;
    Selected.EffectiveImportance = Best->Importance;
    Selected.ActiveRunsAtSelection = View.numActive();
    Selected.FailingRunsAtSelection = View.numActiveFailing();

    applyPolicy(View, Best->Pred);
    Candidates.erase(
        std::remove(Candidates.begin(), Candidates.end(), Best->Pred),
        Candidates.end());

    std::vector<RankedPredicate> NextRanked = rank(Candidates, View);

    if (Options.ComputeAffinity) {
      // Affinity(P -> Q): how much Q's Importance fell when P's runs were
      // removed. Large drops indicate Q predicts (a subset of) P's bug.
      std::unordered_map<uint32_t, double> After;
      After.reserve(NextRanked.size());
      for (const RankedPredicate &Entry : NextRanked)
        After.emplace(Entry.Pred, Entry.Importance);

      std::vector<std::pair<uint32_t, double>> Drops;
      for (const RankedPredicate &Entry : Ranked) {
        auto It = After.find(Entry.Pred);
        if (It == After.end())
          continue;
        double Drop = Entry.Importance - It->second;
        if (Drop > 0.0)
          Drops.emplace_back(Entry.Pred, Drop);
      }
      std::sort(Drops.begin(), Drops.end(),
                [](const auto &A, const auto &B) {
                  if (A.second != B.second)
                    return A.second > B.second;
                  return A.first < B.first;
                });
      if (static_cast<int>(Drops.size()) > Options.AffinityTopK)
        Drops.resize(static_cast<size_t>(Options.AffinityTopK));
      Selected.Affinity = std::move(Drops);
    }

    Result.Selected.push_back(std::move(Selected));
    Ranked = std::move(NextRanked);
  }

  return Result;
}
