//===- core/Analysis.h - The cause-isolation algorithm --------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full Section 3 pipeline:
///
///   1. Pruning: discard every predicate whose 95% interval on Increase(P)
///      does not lie strictly above zero. This typically removes ~99% of
///      predicates.
///   2. Iterative redundancy elimination (Section 3.4): rank survivors by
///      Importance, select the top predicate, discard the runs it explains
///      (per one of the three Section 5 policies), and repeat. Lemma 3.1:
///      every bug whose profile intersects the selected predicates' covered
///      runs retains at least one predictor on the output list.
///   3. Affinity lists: for each selected predicate P, how much each other
///      predicate's Importance dropped when P's runs were removed — large
///      drops mean "probably the same bug".
///
//===----------------------------------------------------------------------===//

#ifndef SBI_CORE_ANALYSIS_H
#define SBI_CORE_ANALYSIS_H

#include "core/Aggregator.h"
#include "core/Scores.h"
#include "feedback/Report.h"
#include "feedback/RunProfiles.h"
#include "instrument/Sites.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace sbi {

class InvertedIndex;
class DeltaAggregates;
class BitsetIndex;
class BitsetState;

/// The three run-discarding proposals of Section 5.
enum class DiscardPolicy {
  DiscardAllRuns,     ///< (1) Remove every run with R(P) = 1 (the default).
  DiscardFailingRuns, ///< (2) Remove only failing runs with R(P) = 1.
  RelabelFailingRuns, ///< (3) Relabel failing runs with R(P) = 1 as passes.
};

const char *discardPolicyName(DiscardPolicy Policy);

/// How run() re-aggregates counts after each selection.
enum class AnalysisEngine {
  Rescan,      ///< Full report-set scan per iteration (reference).
  Incremental, ///< Inverted index + delta-updated counts (default).
  Bitset,      ///< Dense bit-matrices, word-AND + popcount per iteration.
};

const char *analysisEngineName(AnalysisEngine Engine);

struct AnalysisOptions {
  DiscardPolicy Policy = DiscardPolicy::DiscardAllRuns;
  /// All engines produce bit-identical AnalysisResults (differential
  /// tested); Rescan survives as the reference implementation.
  AnalysisEngine Engine = AnalysisEngine::Incremental;
  /// Hard cap on elimination iterations (each selects one predicate).
  int MaxSelections = 60;
  /// How many affinity entries to keep per selected predicate.
  int AffinityTopK = 10;
  bool ComputeAffinity = true;
  /// Worker threads for the one-time inverted-index or bit-matrix build
  /// (and the bitset engine's large row sweeps); 0 means one per hardware
  /// thread. Irrelevant under AnalysisEngine::Rescan.
  size_t IndexThreads = 0;
  /// Optional prebuilt index over the same ReportSet, letting callers that
  /// analyze one report set repeatedly (e.g. once per policy) pay the build
  /// once. The index is immutable — all per-run() mutable state lives in
  /// DeltaAggregates — and must outlive the isolator. When null the
  /// incremental engine builds its own.
  const InvertedIndex *SharedIndex = nullptr;
  /// The bitset-engine analog of SharedIndex: a prebuilt BitsetIndex over
  /// the same run population (immutable; mutable state lives in
  /// BitsetState). Passing one also pins the engine — the density fallback
  /// below is skipped, since the build is already paid for.
  const BitsetIndex *SharedBitset = nullptr;
  /// Posting fill fraction below which AnalysisEngine::Bitset falls back
  /// to the incremental engine (dense word sweeps would outweigh posting
  /// walks); see BitsetIndex::preferIncremental.
  double BitsetMinDensity = 1.0 / 256;
};

/// One ranked predicate with its scores over some run population.
struct RankedPredicate {
  uint32_t Pred = 0;
  PredicateScores Scores;
  double Importance = 0.0;
  ScoreInterval ImportanceCI;
};

/// One predicate chosen by the elimination algorithm.
struct SelectedPredicate {
  uint32_t Pred = 0;
  /// Scores over the full original population ("initial thermometer").
  PredicateScores InitialScores;
  double InitialImportance = 0.0;
  /// Scores over the population at selection time ("effective
  /// thermometer"), reflecting dilution by earlier selections.
  PredicateScores EffectiveScores;
  double EffectiveImportance = 0.0;
  uint64_t ActiveRunsAtSelection = 0;
  uint64_t FailingRunsAtSelection = 0;
  /// (predicate, importance drop) pairs, largest drop first.
  std::vector<std::pair<uint32_t, double>> Affinity;
};

/// One elimination iteration of the audit trail: why the loop picked this
/// predicate and what applying the discard policy did to the population.
/// Both engines fill it from the same integer counts, so a trail is
/// bit-identical (and renders byte-identical) across engines — the same
/// contract bitIdentical() enforces for selections.
struct EliminationTraceEntry {
  uint32_t Pred = 0;
  /// Effective F/S/FObs/SObs at selection time.
  PredicateCounts Counts;
  /// Point value of Increase(P) over the population at selection time.
  double Increase = 0.0;
  /// Effective Importance(P) — the value the selection maximized.
  double Importance = 0.0;
  /// Population before the discard policy was applied.
  uint64_t ActiveRuns = 0;
  uint64_t FailingRuns = 0;
  /// Runs the policy discarded (or, under relabeling, relabeled).
  uint64_t RunsDiscarded = 0;
  /// Candidate predicates remaining after this selection.
  uint64_t SurvivingCandidates = 0;
};

struct AnalysisResult {
  uint32_t NumInitialPredicates = 0;
  /// The discard policy the elimination ran under.
  DiscardPolicy Policy = DiscardPolicy::DiscardAllRuns;
  /// Predicates surviving the Increase test, in id order.
  std::vector<uint32_t> PrunedSurvivors;
  /// Elimination output in selection order.
  std::vector<SelectedPredicate> Selected;
  /// Per-iteration audit trail, parallel to Selected.
  std::vector<EliminationTraceEntry> Trail;
};

/// Exact (bit-level, including every score double) equality of two
/// analysis results, audit trail included; the contract the rescan and
/// incremental engines are differential-tested against.
bool bitIdentical(const AnalysisResult &A, const AnalysisResult &B);

/// bitIdentical minus the trail's SurvivingCandidates counts — the contract
/// between a statically pruned campaign and its unpruned reference. Pruned
/// predicates can never be selected (zero or identically-zero-Increase
/// Importance), but under the discard policies that keep every F(P) > 0
/// predicate as a candidate they do inflate the unpruned candidate pool, so
/// only that trail field may differ.
bool prunedRankingsMatch(const AnalysisResult &A, const AnalysisResult &B);

/// Runs pruning + elimination + affinity over one run population, held
/// either as a materialized ReportSet or as the compact RunProfiles store
/// the streamed-corpus path produces. Both constructors feed the same
/// engine code the same integers, so results (audit trail included) are
/// bit-identical across the two representations.
class CauseIsolator {
public:
  CauseIsolator(const SiteTable &Sites, const ReportSet &Set,
                AnalysisOptions Options = {});

  /// Analysis over a profile store directly (the --corpus path); \p Runs
  /// must outlive the isolator.
  CauseIsolator(const SiteTable &Sites, const RunProfiles &Runs,
                AnalysisOptions Options = {});

  /// Stage 1 only: ids of predicates passing the Increase test, over the
  /// full population.
  std::vector<uint32_t> prune() const;

  /// Scores every predicate in \p Candidates over \p View, most important
  /// first. Ties break toward larger F(P), then smaller id (determinism).
  std::vector<RankedPredicate> rank(const std::vector<uint32_t> &Candidates,
                                    const RunView &View) const;

  /// The full pipeline.
  AnalysisResult run() const;

private:
  /// Predicates passing the Increase test under precomputed counts.
  std::vector<uint32_t> survivorsOf(const Aggregates &Agg) const;

  /// The elimination loop's starting candidates. Policy (1) uses the
  /// Increase survivors; policies (2)/(3) keep every predicate with
  /// F(P) > 0, because a nonpositive-Increase predicate may become
  /// positive once an anti-correlated predictor is selected (Section 5).
  std::vector<uint32_t> initialCandidatesOf(const Aggregates &Agg) const;

  /// Applies the discard policy for \p Pred; returns how many runs it
  /// discarded (or relabeled).
  uint64_t applyPolicy(RunView &View, uint32_t Pred) const;

  /// Policy application that walks only the selected predicate's posting
  /// list and folds each touched run into \p Delta. Returns the number of
  /// runs discarded (or relabeled), identical to applyPolicy's count.
  uint64_t applyPolicyIncremental(RunView &View, uint32_t Pred,
                                  const InvertedIndex &Index,
                                  DeltaAggregates &Delta) const;

  /// Policy application by word-AND + popcount over \p State's matrices;
  /// returns the same count as the other two overloads.
  uint64_t applyPolicyBitset(uint32_t Pred, BitsetState &State) const;

  const SiteTable &Sites;
  /// Set only by the ReportSet constructor; declared before Runs so the
  /// reference can bind to it in member-initialization order.
  std::optional<RunProfiles> OwnedRuns;
  const RunProfiles &Runs;
  AnalysisOptions Options;
};

} // namespace sbi

#endif // SBI_CORE_ANALYSIS_H
