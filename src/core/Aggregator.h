//===- core/Aggregator.h - Count aggregation over run populations ---------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a set of sparse feedback reports into the per-predicate counts
/// F(P), S(P), F(P observed), S(P observed) that all scores derive from.
/// The elimination algorithm re-aggregates after every selection over a
/// shrinking (or relabeled) run population, so aggregation is phrased over
/// a RunView: an activity mask plus current failure labels.
///
/// Aggregation accepts either source representation: a materialized
/// ReportSet or the compact RunProfiles store the streamed-corpus path
/// produces. Both consider an entry "observed" iff its count is positive,
/// so the two overloads yield identical integer counts — the foundation of
/// the in-memory vs. streamed bit-identity contract.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_CORE_AGGREGATOR_H
#define SBI_CORE_AGGREGATOR_H

#include "core/Scores.h"
#include "feedback/Report.h"
#include "feedback/RunProfiles.h"
#include "instrument/Sites.h"

#include <array>
#include <vector>

namespace sbi {

/// Which runs participate in an aggregation and with which labels. The
/// elimination policies of Section 5 mutate this view rather than the
/// underlying reports.
struct RunView {
  std::vector<uint8_t> Active; ///< 1 = run participates.
  std::vector<uint8_t> Failed; ///< Current label (may differ from report's).

  static RunView allOf(const ReportSet &Set);
  static RunView allOf(const RunProfiles &Runs);

  size_t numActive() const;
  size_t numActiveFailing() const;
};

/// Dense aggregate counts for every site and predicate.
class Aggregates {
public:
  Aggregates(uint32_t NumSites, uint32_t NumPredicates)
      : SiteObs(NumSites), PredTrue(NumPredicates) {}

  /// Aggregates \p Set under \p View.
  static Aggregates compute(const ReportSet &Set, const RunView &View);

  /// Aggregates a run-profile store under \p View; produces exactly the
  /// counts the ReportSet overload would for the set the profiles came
  /// from (zero-count entries are dropped at profile construction).
  static Aggregates compute(const RunProfiles &Runs, const RunView &View);

  uint64_t numFailing() const { return NumF; }
  uint64_t numSuccessful() const { return NumS; }

  /// The four-count bundle for predicate \p PredId; \p Sites maps the
  /// predicate to its enclosing site.
  PredicateCounts counts(uint32_t PredId, const SiteTable &Sites) const {
    const PredicateInfo &Pred = Sites.predicate(PredId);
    PredicateCounts Counts;
    Counts.F = PredTrue[PredId][0];
    Counts.S = PredTrue[PredId][1];
    Counts.FObs = SiteObs[Pred.Site][0];
    Counts.SObs = SiteObs[Pred.Site][1];
    return Counts;
  }

  PredicateScores scores(uint32_t PredId, const SiteTable &Sites) const {
    return PredicateScores(counts(PredId, Sites));
  }

private:
  /// [0] = failing runs, [1] = successful runs.
  std::vector<std::array<uint64_t, 2>> SiteObs;
  std::vector<std::array<uint64_t, 2>> PredTrue;
  uint64_t NumF = 0;
  uint64_t NumS = 0;

  /// DeltaAggregates (core/InvertedIndex.h) keeps these counts live under
  /// run discarding instead of recomputing them from scratch; the bitset
  /// engine (core/BitMatrix.h) does the same with popcount deltas, and
  /// its parallel build fills a fresh instance chunk by chunk.
  friend class DeltaAggregates;
  friend class BitsetIndex;
  friend class BitsetState;
};

} // namespace sbi

#endif // SBI_CORE_AGGREGATOR_H
