//===- core/InvertedIndex.cpp - Incremental aggregation engine ------------===//

#include "core/InvertedIndex.h"

#include "support/Parallel.h"

#include <algorithm>
#include <thread>

using namespace sbi;

namespace {

/// Shared chunked builder: \p ForEachObservation(Run, SiteFn, PredFn) must
/// invoke the callbacks for every observed site / true predicate of the
/// run, ascending. Runs are partitioned into contiguous chunks, one worker
/// per chunk, and chunk-local lists concatenated in run order, so any
/// worker count yields the same index.
template <typename ForEachFn>
void buildPostings(std::vector<std::vector<uint32_t>> &PredRuns,
                   std::vector<std::vector<uint32_t>> &SiteRuns,
                   size_t NumRuns, size_t Threads,
                   const ForEachFn &ForEachObservation) {
  // Below ~4k runs the thread spawn/join overhead dominates the scan.
  size_t Workers = resolveThreadCount(Threads, NumRuns / 4096);
  if (Workers <= 1) {
    for (size_t Run = 0; Run < NumRuns; ++Run)
      ForEachObservation(
          Run, [&](uint32_t Site) { SiteRuns[Site].push_back(Run); },
          [&](uint32_t Pred) { PredRuns[Pred].push_back(Run); });
    return;
  }

  struct ChunkLists {
    std::vector<std::vector<uint32_t>> PredRuns;
    std::vector<std::vector<uint32_t>> SiteRuns;
  };
  std::vector<ChunkLists> Chunks(Workers);
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  const size_t ChunkSize = (NumRuns + Workers - 1) / Workers;
  for (size_t W = 0; W < Workers; ++W)
    Pool.emplace_back([&, W] {
      ChunkLists &Local = Chunks[W];
      Local.PredRuns.resize(PredRuns.size());
      Local.SiteRuns.resize(SiteRuns.size());
      const size_t Begin = W * ChunkSize;
      const size_t End = std::min(NumRuns, Begin + ChunkSize);
      for (size_t Run = Begin; Run < End; ++Run)
        ForEachObservation(
            Run,
            [&](uint32_t Site) { Local.SiteRuns[Site].push_back(Run); },
            [&](uint32_t Pred) { Local.PredRuns[Pred].push_back(Run); });
    });
  for (std::thread &Worker : Pool)
    Worker.join();

  // Concatenation is parallel too: each final list is owned by exactly one
  // merge worker (lists partitioned by id over a virtual pred-then-site
  // space), and each is assembled in chunk order, so the result is the
  // same as a serial merge and the concatenation no longer serializes the
  // build behind one core.
  const size_t NumPreds = PredRuns.size();
  const size_t NumLists = NumPreds + SiteRuns.size();
  auto mergeLists = [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      std::vector<uint32_t> &Out =
          I < NumPreds ? PredRuns[I] : SiteRuns[I - NumPreds];
      size_t Total = 0;
      for (const ChunkLists &Local : Chunks)
        Total += (I < NumPreds ? Local.PredRuns[I]
                               : Local.SiteRuns[I - NumPreds])
                     .size();
      Out.reserve(Total);
      for (const ChunkLists &Local : Chunks) {
        const std::vector<uint32_t> &Src =
            I < NumPreds ? Local.PredRuns[I] : Local.SiteRuns[I - NumPreds];
        Out.insert(Out.end(), Src.begin(), Src.end());
      }
    }
  };
  const size_t MergeWorkers = resolveThreadCount(Threads, NumLists / 1024);
  if (MergeWorkers <= 1) {
    mergeLists(0, NumLists);
    return;
  }
  std::vector<std::thread> MergePool;
  MergePool.reserve(MergeWorkers);
  const size_t ListsPerWorker = (NumLists + MergeWorkers - 1) / MergeWorkers;
  for (size_t W = 0; W < MergeWorkers; ++W) {
    size_t Begin = W * ListsPerWorker;
    size_t End = std::min(NumLists, Begin + ListsPerWorker);
    MergePool.emplace_back([&mergeLists, Begin, End] {
      mergeLists(Begin, End);
    });
  }
  for (std::thread &Worker : MergePool)
    Worker.join();
}

} // namespace

InvertedIndex InvertedIndex::build(const ReportSet &Set, size_t Threads) {
  InvertedIndex Index;
  Index.PredRuns.resize(Set.numPredicates());
  Index.SiteRuns.resize(Set.numSites());
  buildPostings(Index.PredRuns, Index.SiteRuns, Set.size(), Threads,
                [&Set](size_t Run, auto &&SiteFn, auto &&PredFn) {
                  const FeedbackReport &Report = Set[Run];
                  for (const auto &[Site, Count] :
                       Report.Counts.SiteObservations)
                    if (Count > 0)
                      SiteFn(Site);
                  for (const auto &[Pred, Count] :
                       Report.Counts.TruePredicates)
                    if (Count > 0)
                      PredFn(Pred);
                });
  return Index;
}

InvertedIndex InvertedIndex::build(const RunProfiles &Runs, size_t Threads) {
  InvertedIndex Index;
  Index.PredRuns.resize(Runs.numPredicates());
  Index.SiteRuns.resize(Runs.numSites());
  buildPostings(Index.PredRuns, Index.SiteRuns, Runs.size(), Threads,
                [&Runs](size_t Run, auto &&SiteFn, auto &&PredFn) {
                  for (uint32_t Site : Runs.sites(Run))
                    SiteFn(Site);
                  for (uint32_t Pred : Runs.preds(Run))
                    PredFn(Pred);
                });
  return Index;
}

size_t InvertedIndex::numPostings() const {
  size_t N = 0;
  for (const auto &Runs : PredRuns)
    N += Runs.size();
  for (const auto &Runs : SiteRuns)
    N += Runs.size();
  return N;
}

void DeltaAggregates::removeRun(size_t Run, bool Failed) {
  const size_t LabelIdx = Failed ? 0 : 1;
  if (Failed)
    --Agg.NumF;
  else
    --Agg.NumS;
  for (uint32_t Site : Runs.sites(Run))
    --Agg.SiteObs[Site][LabelIdx];
  for (uint32_t Pred : Runs.preds(Run))
    --Agg.PredTrue[Pred][LabelIdx];
}

void DeltaAggregates::relabelRunAsSuccess(size_t Run) {
  --Agg.NumF;
  ++Agg.NumS;
  for (uint32_t Site : Runs.sites(Run)) {
    --Agg.SiteObs[Site][0];
    ++Agg.SiteObs[Site][1];
  }
  for (uint32_t Pred : Runs.preds(Run)) {
    --Agg.PredTrue[Pred][0];
    ++Agg.PredTrue[Pred][1];
  }
}
