//===- core/InvertedIndex.cpp - Incremental aggregation engine ------------===//

#include "core/InvertedIndex.h"

#include "support/Parallel.h"

#include <algorithm>
#include <thread>

using namespace sbi;

InvertedIndex InvertedIndex::build(const ReportSet &Set, size_t Threads) {
  InvertedIndex Index;
  Index.PredRuns.resize(Set.numPredicates());
  Index.SiteRuns.resize(Set.numSites());

  const size_t NumRuns = Set.size();
  // Below ~4k runs the thread spawn/join overhead dominates the scan.
  size_t Workers = resolveThreadCount(Threads, NumRuns / 4096);
  if (Workers <= 1) {
    for (size_t Run = 0; Run < NumRuns; ++Run) {
      const FeedbackReport &Report = Set[Run];
      for (const auto &[Site, Count] : Report.Counts.SiteObservations)
        if (Count > 0)
          Index.SiteRuns[Site].push_back(static_cast<uint32_t>(Run));
      for (const auto &[Pred, Count] : Report.Counts.TruePredicates)
        if (Count > 0)
          Index.PredRuns[Pred].push_back(static_cast<uint32_t>(Run));
    }
    return Index;
  }

  // Each worker indexes a contiguous run chunk into private lists; chunks
  // are then concatenated in chunk order, which keeps every posting list
  // sorted and makes the result independent of the worker count.
  struct ChunkLists {
    std::vector<std::vector<uint32_t>> PredRuns;
    std::vector<std::vector<uint32_t>> SiteRuns;
  };
  std::vector<ChunkLists> Chunks(Workers);
  std::vector<std::thread> Pool;
  Pool.reserve(Workers);
  const size_t ChunkSize = (NumRuns + Workers - 1) / Workers;
  for (size_t W = 0; W < Workers; ++W)
    Pool.emplace_back([&, W] {
      ChunkLists &Local = Chunks[W];
      Local.PredRuns.resize(Set.numPredicates());
      Local.SiteRuns.resize(Set.numSites());
      const size_t Begin = W * ChunkSize;
      const size_t End = std::min(NumRuns, Begin + ChunkSize);
      for (size_t Run = Begin; Run < End; ++Run) {
        const FeedbackReport &Report = Set[Run];
        for (const auto &[Site, Count] : Report.Counts.SiteObservations)
          if (Count > 0)
            Local.SiteRuns[Site].push_back(static_cast<uint32_t>(Run));
        for (const auto &[Pred, Count] : Report.Counts.TruePredicates)
          if (Count > 0)
            Local.PredRuns[Pred].push_back(static_cast<uint32_t>(Run));
      }
    });
  for (std::thread &Worker : Pool)
    Worker.join();

  for (const ChunkLists &Local : Chunks) {
    for (size_t Pred = 0; Pred < Local.PredRuns.size(); ++Pred)
      Index.PredRuns[Pred].insert(Index.PredRuns[Pred].end(),
                                  Local.PredRuns[Pred].begin(),
                                  Local.PredRuns[Pred].end());
    for (size_t Site = 0; Site < Local.SiteRuns.size(); ++Site)
      Index.SiteRuns[Site].insert(Index.SiteRuns[Site].end(),
                                  Local.SiteRuns[Site].begin(),
                                  Local.SiteRuns[Site].end());
  }
  return Index;
}

size_t InvertedIndex::numPostings() const {
  size_t N = 0;
  for (const auto &Runs : PredRuns)
    N += Runs.size();
  for (const auto &Runs : SiteRuns)
    N += Runs.size();
  return N;
}

void DeltaAggregates::removeRun(size_t Run, bool Failed) {
  const FeedbackReport &Report = Set[Run];
  const size_t LabelIdx = Failed ? 0 : 1;
  if (Failed)
    --Agg.NumF;
  else
    --Agg.NumS;
  for (const auto &[Site, Count] : Report.Counts.SiteObservations)
    if (Count > 0)
      --Agg.SiteObs[Site][LabelIdx];
  for (const auto &[Pred, Count] : Report.Counts.TruePredicates)
    if (Count > 0)
      --Agg.PredTrue[Pred][LabelIdx];
}

void DeltaAggregates::relabelRunAsSuccess(size_t Run) {
  const FeedbackReport &Report = Set[Run];
  --Agg.NumF;
  ++Agg.NumS;
  for (const auto &[Site, Count] : Report.Counts.SiteObservations)
    if (Count > 0) {
      --Agg.SiteObs[Site][0];
      ++Agg.SiteObs[Site][1];
    }
  for (const auto &[Pred, Count] : Report.Counts.TruePredicates)
    if (Count > 0) {
      --Agg.PredTrue[Pred][0];
      ++Agg.PredTrue[Pred][1];
    }
}
