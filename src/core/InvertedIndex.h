//===- core/InvertedIndex.h - Incremental aggregation engine --------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The elimination loop of Section 3.4 re-ranks every surviving predicate
/// over a shrinking run population after each selection. Doing that by
/// rescanning every feedback report per iteration is
/// O(selections x candidates x runs) — the dominant cost at the paper's
/// 32,000-run scale. This module makes the loop incremental:
///
///   InvertedIndex    one-time posting lists, built in parallel across
///                    worker threads: for each predicate P, the sorted run
///                    ids with R(P) = 1; for each site, the sorted run ids
///                    that sampled the site at least once.
///
///   DeltaAggregates  mutable F/S/FObs/SObs counts, initialized by a single
///                    full scan and then updated by *subtracting* (or
///                    relabeling) one discarded run's sparse contributions
///                    at a time, instead of rescanning the whole ReportSet.
///
/// All counts are integers, so subtract-then-score is bit-identical to
/// recompute-then-score; the differential tests in tests/core and
/// tests/integration hold the two engines to identical AnalysisResults.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_CORE_INVERTEDINDEX_H
#define SBI_CORE_INVERTEDINDEX_H

#include "core/Aggregator.h"
#include "feedback/Report.h"
#include "feedback/RunProfiles.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace sbi {

/// Per-predicate and per-site posting lists of run indices.
class InvertedIndex {
public:
  /// Builds the index over \p Set. Runs are partitioned into contiguous
  /// chunks, one worker thread per chunk, and chunk-local lists are
  /// concatenated in run order, so any \p Threads value (0 = one per
  /// hardware thread) yields the same index.
  static InvertedIndex build(const ReportSet &Set, size_t Threads = 0);

  /// Same contract over the compact RunProfiles store (the streamed-corpus
  /// ingestion path); a profile store converted from \p Set yields a
  /// bit-identical index.
  static InvertedIndex build(const RunProfiles &Runs, size_t Threads = 0);

  /// Sorted run ids where predicate \p Pred was observed true (R(P) = 1).
  const std::vector<uint32_t> &runsWhereTrue(uint32_t Pred) const {
    return PredRuns[Pred];
  }

  /// Sorted run ids where site \p Site was sampled at least once.
  const std::vector<uint32_t> &runsObservingSite(uint32_t Site) const {
    return SiteRuns[Site];
  }

  uint32_t numPredicates() const {
    return static_cast<uint32_t>(PredRuns.size());
  }
  uint32_t numSites() const { return static_cast<uint32_t>(SiteRuns.size()); }

  /// Total posting-list entries (for memory accounting in benches).
  size_t numPostings() const;

private:
  std::vector<std::vector<uint32_t>> PredRuns;
  std::vector<std::vector<uint32_t>> SiteRuns;
};

/// Aggregate counts kept live under run discarding/relabeling. Starts as a
/// full-scan Aggregates snapshot and is mutated one run at a time; the
/// current state is always exactly what Aggregates::compute would return
/// for the mutated RunView.
class DeltaAggregates {
public:
  /// Runs off a profile store directly (no copies; \p Runs must outlive
  /// the aggregates).
  DeltaAggregates(const RunProfiles &Runs, const RunView &View)
      : Runs(Runs), Agg(Aggregates::compute(Runs, View)) {}

  /// Convenience for ReportSet callers: converts (and owns) a profile
  /// copy, then behaves exactly like the RunProfiles constructor.
  DeltaAggregates(const ReportSet &Set, const RunView &View)
      : Owned(RunProfiles::fromReports(Set)), Runs(*Owned),
        Agg(Aggregates::compute(*Owned, View)) {}

  /// The live counts, interface-compatible with a fresh full scan.
  const Aggregates &aggregates() const { return Agg; }

  /// Subtracts run \p Run's contributions. \p Failed must be the label the
  /// run currently has in the view (which may differ from the report's own
  /// bit under the relabeling policy).
  void removeRun(size_t Run, bool Failed);

  /// Moves run \p Run's contributions from the failing to the successful
  /// buckets (Section 5, proposal 3). The run must currently be labeled
  /// failing.
  void relabelRunAsSuccess(size_t Run);

private:
  std::optional<RunProfiles> Owned; ///< Before Runs: bound in init order.
  const RunProfiles &Runs;
  Aggregates Agg;
};

} // namespace sbi

#endif // SBI_CORE_INVERTEDINDEX_H
