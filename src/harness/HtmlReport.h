//===- harness/HtmlReport.h - Static HTML analysis reports ----------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper repeatedly refers to "the interactive version of our analysis
/// tools": ranked predictor lists with colored bug thermometers, where
/// each predicate links to its affinity list. This module renders the same
/// experience as a single self-contained static HTML page (no scripts, no
/// external assets): the run summary, the selected predictors with initial
/// and effective thermometers (red Increase band, pink confidence band,
/// black context band, as in the paper's color rendering), and one
/// affinity section per predictor, anchor-linked from the main table.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_HARNESS_HTMLREPORT_H
#define SBI_HARNESS_HTMLREPORT_H

#include "core/Analysis.h"
#include "harness/Campaign.h"

#include <string>

namespace sbi {

struct HtmlReportOptions {
  std::string Title = "Statistical debugging report";
  /// Maximum selected predicates shown (0 = all).
  size_t TopK = 0;
  /// When true and the campaign carries ground truth, append per-bug
  /// failing-run columns (Table 3 style).
  bool ShowGroundTruth = false;
  /// Thermometer width in pixels.
  int ThermometerWidth = 220;
};

/// Renders a full analysis as one self-contained HTML document.
std::string renderHtmlReport(const SiteTable &Sites, const ReportSet &Set,
                             const AnalysisResult &Analysis,
                             const HtmlReportOptions &Options = {});

/// Convenience overload pulling subject metadata (name, bug inventory)
/// from a campaign.
std::string renderHtmlReport(const CampaignResult &Campaign,
                             const AnalysisResult &Analysis,
                             HtmlReportOptions Options = {});

} // namespace sbi

#endif // SBI_HARNESS_HTMLREPORT_H
