//===- harness/Campaign.h - End-to-end experiment campaigns ---------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one subject program through the full pipeline the paper's studies
/// use: build the instrumentation site table, choose a sampling plan
/// (optionally the nonuniform plan trained on preliminary runs, Section 4),
/// execute N random inputs, label each run by crash/exit status and — for
/// subjects with an output oracle — by comparing output against the golden
/// (bug-free) build on the same input, and collect the labeled feedback
/// reports.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_HARNESS_CAMPAIGN_H
#define SBI_HARNESS_CAMPAIGN_H

#include "feedback/Report.h"
#include "instrument/Collector.h"
#include "instrument/Sites.h"
#include "lang/Sema.h"
#include "sa/Prune.h"
#include "subjects/Subjects.h"

#include <functional>
#include <memory>
#include <string>

namespace sbi {

enum class SamplingMode {
  None,    ///< Complete monitoring (rate 1.0 everywhere).
  Uniform, ///< One fixed rate for every site (the paper's 1/100).
  Adaptive ///< Nonuniform rates trained on preliminary runs (Section 4).
};

/// Which execution engine runs the subject. The two are observably
/// equivalent — differential-tested down to bit-identical sampled
/// feedback reports — so campaigns may use either. The tree-walker is the
/// default (its values live in host-stack temporaries and it currently
/// outruns the boxed-value stack VM by ~35%); the VM exists as an
/// independent second implementation that keeps the semantics honest.
enum class Engine {
  Interpreter, ///< Tree-walking reference interpreter (default).
  VM           ///< Bytecode virtual machine.
};

struct CampaignOptions {
  size_t NumRuns = 4000;
  uint64_t Seed = 20050612; // PLDI 2005's opening day.
  SamplingMode Mode = SamplingMode::Adaptive;
  double UniformRate = 0.01;
  /// Training executions for the adaptive plan (the paper used 1,000).
  size_t TrainingRuns = 300;
  double TargetSamples = 100.0;
  double MinRate = 0.01;
  /// Per-run silent-overrun padding is drawn uniformly from
  /// [0, MaxOverrunPad].
  size_t MaxOverrunPad = 7;
  uint64_t StepLimit = 5'000'000;
  Engine Exec = Engine::Interpreter;
  /// Worker threads for the main run loop. Per-run seeds derive from the
  /// run index, so any thread count produces bit-identical reports
  /// (tested); 0 means "one per hardware thread".
  size_t Threads = 1;
  /// Optional progress sink for the main run loop, called with
  /// (runs completed, total runs) roughly every 0.5% of runs and once at
  /// completion. Invoked from worker threads — must be thread-safe.
  std::function<void(size_t Done, size_t Total)> Progress;
  /// Static predicate pruning (src/sa): classify every site before the
  /// campaign and instrument only the Live ones. Site ids are not
  /// renumbered, so reports and rankings stay directly comparable with an
  /// unpruned campaign at the same seed; the retained predicates' rankings
  /// are bit-identical (prunedRankingsMatch, differential-tested).
  bool StaticPrune = false;
  /// Spill mode: when non-empty, workers flush completed reports into
  /// SBI-CORPUS v2 shards under this directory instead of materializing
  /// CampaignResult::Reports, bounding memory by Threads x
  /// SpillShardReports rather than NumRuns. Shard K holds runs
  /// [K*SpillShardReports, (K+1)*SpillShardReports) in run order, so the
  /// corpus bytes are identical for any thread count and reading the
  /// shards back in filename order reproduces the in-memory run order.
  std::string SpillDir;
  /// Reports per shard in spill mode.
  size_t SpillShardReports = 1024;
};

struct CampaignResult {
  const Subject *Subj = nullptr;
  std::unique_ptr<Program> Prog;
  std::unique_ptr<Program> Golden;
  SiteTable Sites;
  SamplingPlan Plan = SamplingPlan::full(0);
  ReportSet Reports;
  int LinesOfCode = 0;
  /// Filled when Options.StaticPrune was set: the per-site classification
  /// the campaign instrumented under (Prune.Sites is empty otherwise).
  bool StaticPruned = false;
  PruneResult Prune;
  /// Per bug id: number of runs in which the bug triggered, and in how
  /// many of those the run was labeled failing.
  struct BugStats {
    int BugId = 0;
    size_t Triggered = 0;
    size_t TriggeredAndFailed = 0;
  };
  std::vector<BugStats> Bugs;

  /// Spill-mode accounting (Options.SpillDir non-empty): Reports stays
  /// empty — the corpus directory is the output — but run totals, failure
  /// labels, and per-bug stats are still tallied as the reports stream out.
  size_t SpilledShards = 0;
  size_t SpilledReports = 0;
  size_t SpilledFailing = 0;
  uint64_t SpilledBytes = 0;

  size_t numFailing() const {
    return Reports.size() ? Reports.numFailing() : SpilledFailing;
  }
  size_t numSuccessful() const {
    return Reports.size() ? Reports.numSuccessful()
                          : SpilledReports - SpilledFailing;
  }
};

/// Runs the full campaign. Aborts (assert) if the subject's sources fail to
/// parse — subject programs are part of this repository and must be valid.
CampaignResult runCampaign(const Subject &Subj,
                           const CampaignOptions &Options = {});

/// Parses and analyzes a subject source, asserting success.
std::unique_ptr<Program> compileSubjectSource(const std::string &Source,
                                              const std::string &Name);

} // namespace sbi

#endif // SBI_HARNESS_CAMPAIGN_H
