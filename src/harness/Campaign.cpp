//===- harness/Campaign.cpp - End-to-end experiment campaigns -------------===//

#include "harness/Campaign.h"

#include "runtime/Interp.h"
#include "support/Parallel.h"
#include "support/StringUtils.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace sbi;

std::unique_ptr<Program>
sbi::compileSubjectSource(const std::string &Source, const std::string &Name) {
  std::vector<Diagnostic> Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "subject '%s' failed to compile:\n%s", Name.c_str(),
                 renderDiagnostics(Diags).c_str());
    std::abort();
  }
  return Prog;
}

namespace {

/// Derives a per-run seed stream from the campaign seed.
uint64_t mixSeed(uint64_t Seed, uint64_t Stream, uint64_t Run) {
  uint64_t X = Seed ^ (Stream * 0x9e3779b97f4a7c15ULL) ^
               (Run * 0xc2b2ae3d27d4eb4fULL);
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

std::string joinStack(const std::vector<std::string> &Frames) {
  std::string Sig;
  for (size_t I = 0; I < Frames.size(); ++I) {
    if (I != 0)
      Sig += '>';
    Sig += Frames[I];
  }
  return Sig;
}

} // namespace

CampaignResult sbi::runCampaign(const Subject &Subj,
                                const CampaignOptions &Options) {
  CampaignResult Result;
  Result.Subj = &Subj;
  Result.Prog = compileSubjectSource(Subj.Source, Subj.Name);
  if (Subj.UseOutputOracle)
    Result.Golden =
        compileSubjectSource(Subj.GoldenSource, Subj.Name + "-golden");
  Result.LinesOfCode = Result.Prog->NumLines;
  Result.Sites = SiteTable::build(*Result.Prog);

  // Both engines produce bit-identical reports (differential-tested).
  CompiledProgram Bytecode, GoldenBytecode;
  if (Options.Exec == Engine::VM) {
    Bytecode = compileProgram(*Result.Prog);
    if (Result.Golden)
      GoldenBytecode = compileProgram(*Result.Golden);
  }
  auto executeBuggy = [&](const RunConfig &Config) {
    return Options.Exec == Engine::VM ? runCompiled(Bytecode, Config)
                                      : runProgram(*Result.Prog, Config);
  };
  auto executeGolden = [&](const RunConfig &Config) {
    return Options.Exec == Engine::VM
               ? runCompiled(GoldenBytecode, Config)
               : runProgram(*Result.Golden, Config);
  };

  // --- Choose the sampling plan -----------------------------------------
  if (Options.Mode == SamplingMode::None) {
    Result.Plan = SamplingPlan::full(Result.Sites.numSites());
  } else if (Options.Mode == SamplingMode::Uniform) {
    Result.Plan =
        SamplingPlan::uniform(Result.Sites.numSites(), Options.UniformRate);
  } else {
    // Train per-site reach counts on preliminary runs (Section 4: rates
    // inversely proportional to observed execution frequency).
    ReportCollector Trainer(Result.Sites,
                            SamplingPlan::full(Result.Sites.numSites()));
    std::vector<double> TotalReaches(Result.Sites.numSites(), 0.0);
    for (size_t Run = 0; Run < Options.TrainingRuns; ++Run) {
      Rng InputRng(mixSeed(Options.Seed, /*Stream=*/100, Run));
      RunConfig Config;
      Config.Args = Subj.GenerateInput(InputRng);
      Config.OverrunPad = static_cast<size_t>(
          InputRng.nextBelow(Options.MaxOverrunPad + 1));
      Config.StepLimit = Options.StepLimit;
      Config.Observer = &Trainer;
      Trainer.beginRun(mixSeed(Options.Seed, /*Stream=*/101, Run));
      executeBuggy(Config);
      RawReport Raw = Trainer.takeReport();
      for (const auto &[Site, Count] : Raw.SiteObservations)
        TotalReaches[Site] += static_cast<double>(Count);
    }
    std::vector<double> MeanReach(Result.Sites.numSites(), 0.0);
    if (Options.TrainingRuns > 0)
      for (size_t Site = 0; Site < MeanReach.size(); ++Site)
        MeanReach[Site] = TotalReaches[Site] /
                          static_cast<double>(Options.TrainingRuns);
    Result.Plan = SamplingPlan::adaptive(MeanReach, Options.TargetSamples,
                                         Options.MinRate);
  }

  // --- Main campaign -----------------------------------------------------
  // Each run is fully determined by (campaign seed, run index), so the
  // loop parallelizes into bit-identical results for any thread count:
  // workers fill pre-sized slots and share nothing but read-only state.
  std::vector<FeedbackReport> Collected(Options.NumRuns);

  auto oneRun = [&](size_t Run, ReportCollector &Collector) {
    Rng InputRng(mixSeed(Options.Seed, /*Stream=*/1, Run));
    RunConfig Config;
    Config.Args = Subj.GenerateInput(InputRng);
    Config.OverrunPad =
        static_cast<size_t>(InputRng.nextBelow(Options.MaxOverrunPad + 1));
    Config.StepLimit = Options.StepLimit;
    Config.Observer = &Collector;

    Collector.beginRun(mixSeed(Options.Seed, /*Stream=*/2, Run));
    RunOutcome Outcome = executeBuggy(Config);

    FeedbackReport Report;
    Report.Counts = Collector.takeReport();
    Report.Failed = Outcome.failed();
    Report.Trap = Outcome.Trap;
    Report.ExitCode = Outcome.ExitCode;
    Report.StackSignature = joinStack(Outcome.StackTrace);
    for (int Bug : Outcome.BugsTriggered)
      Report.BugMask |= FeedbackReport::bugBit(Bug);

    // Output oracle: compare against the golden build on the same input.
    if (!Report.Failed && Subj.UseOutputOracle) {
      RunConfig GoldenConfig;
      GoldenConfig.Args = Config.Args;
      GoldenConfig.OverrunPad = Config.OverrunPad;
      GoldenConfig.StepLimit = Options.StepLimit;
      RunOutcome GoldenOutcome = executeGolden(GoldenConfig);
      assert(!GoldenOutcome.crashed() && "golden build must never crash");
      if (GoldenOutcome.Output != Outcome.Output)
        Report.Failed = true;
    }
    Collected[Run] = std::move(Report);
  };

  // hardware_concurrency() may legitimately return 0; resolveThreadCount
  // clamps so a campaign never launches zero workers.
  size_t Threads = resolveThreadCount(Options.Threads, Options.NumRuns);
  if (Threads <= 1) {
    ReportCollector Collector(Result.Sites, Result.Plan);
    for (size_t Run = 0; Run < Options.NumRuns; ++Run)
      oneRun(Run, Collector);
  } else {
    std::vector<std::thread> Workers;
    Workers.reserve(Threads);
    for (size_t T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        ReportCollector Collector(Result.Sites, Result.Plan);
        for (size_t Run = T; Run < Options.NumRuns; Run += Threads)
          oneRun(Run, Collector);
      });
    for (std::thread &Worker : Workers)
      Worker.join();
  }

  Result.Reports =
      ReportSet(Result.Sites.numSites(), Result.Sites.numPredicates());
  for (FeedbackReport &Report : Collected)
    Result.Reports.add(std::move(Report));

  // Ground-truth stats derive from the recorded bug masks.
  for (const BugSpec &Bug : Subj.Bugs) {
    CampaignResult::BugStats Stats;
    Stats.BugId = Bug.Id;
    for (const FeedbackReport &Report : Result.Reports.reports())
      if (Report.hasBug(Bug.Id)) {
        ++Stats.Triggered;
        if (Report.Failed)
          ++Stats.TriggeredAndFailed;
      }
    Result.Bugs.push_back(Stats);
  }

  return Result;
}
