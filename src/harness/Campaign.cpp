//===- harness/Campaign.cpp - End-to-end experiment campaigns -------------===//

#include "harness/Campaign.h"

#include "feedback/Corpus.h"
#include "obs/Phase.h"
#include "obs/Telemetry.h"
#include "obs/Tracer.h"
#include "runtime/Interp.h"
#include "support/Parallel.h"
#include "support/StringUtils.h"
#include "vm/Compiler.h"
#include "vm/VM.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>

using namespace sbi;

std::unique_ptr<Program>
sbi::compileSubjectSource(const std::string &Source, const std::string &Name) {
  std::vector<Diagnostic> Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "subject '%s' failed to compile:\n%s", Name.c_str(),
                 renderDiagnostics(Diags).c_str());
    std::abort();
  }
  return Prog;
}

namespace {

/// Derives a per-run seed stream from the campaign seed.
uint64_t mixSeed(uint64_t Seed, uint64_t Stream, uint64_t Run) {
  uint64_t X = Seed ^ (Stream * 0x9e3779b97f4a7c15ULL) ^
               (Run * 0xc2b2ae3d27d4eb4fULL);
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

std::string joinStack(const std::vector<std::string> &Frames) {
  std::string Sig;
  for (size_t I = 0; I < Frames.size(); ++I) {
    if (I != 0)
      Sig += '>';
    Sig += Frames[I];
  }
  return Sig;
}

/// Mean planned sampling rate over the sites of one scheme; 1.0 for a
/// scheme with no sites (vacuously complete monitoring).
double meanPlannedRate(const SiteTable &Sites, const SamplingPlan &Plan,
                       Scheme Kind) {
  double Total = 0.0;
  size_t Count = 0;
  for (uint32_t Site = 0; Site < Sites.numSites(); ++Site)
    if (Sites.site(Site).SchemeKind == Kind) {
      Total += Plan.rate(Site);
      ++Count;
    }
  return Count == 0 ? 1.0 : Total / static_cast<double>(Count);
}

} // namespace

CampaignResult sbi::runCampaign(const Subject &Subj,
                                const CampaignOptions &Options) {
  ScopedPhase CampaignPhase("campaign");
  // Trace spans mirror the phase names exactly so `sbi trace summarize`
  // totals line up with the registry's phase timers.
  ScopedSpan CampaignSpan("campaign", "harness");
  CampaignSpan.arg("runs", Options.NumRuns);
  const bool Obs = Telemetry::enabled();
  MetricsRegistry &Metrics = Telemetry::metrics();
  // Summary gauges are maintained unconditionally — an O(1) cost per
  // campaign that lets renderers (the HTML report header) rely on them.
  // Everything per-run or per-reach below is gated on Telemetry::enabled().
  // Function-local statics register each metric once per process; gauges
  // and the label describe the most recent campaign, counters and
  // histograms accumulate across campaigns.
  static Gauge &RunsGauge = Metrics.registerGauge("campaign.runs");
  static Gauge &FailingGauge = Metrics.registerGauge("campaign.failing");
  static Gauge &WallMsGauge = Metrics.registerGauge("campaign.wall_ms");
  static Gauge &RunsPerSecGauge =
      Metrics.registerGauge("campaign.runs_per_sec");
  static Label &SamplingLabel =
      Metrics.registerLabel("campaign.sampling_mode");
  static Counter &RunsTotal = Metrics.registerCounter("campaign.runs_total");
  static Counter &TrainingRunsTotal =
      Metrics.registerCounter("campaign.training_runs_total");
  static Histogram &StepHist =
      Metrics.registerHistogram("campaign.run_steps");
  static Histogram &PadHist =
      Metrics.registerHistogram("campaign.overrun_pad");
  static Histogram &WorkerHist =
      Metrics.registerHistogram("campaign.runs_per_worker");
  auto WallStart = std::chrono::steady_clock::now();

  std::optional<ScopedPhase> ParsePhase;
  std::optional<ScopedSpan> ParseSpan;
  ParsePhase.emplace("parse");
  ParseSpan.emplace("parse", "harness");
  CampaignResult Result;
  Result.Subj = &Subj;
  Result.Prog = compileSubjectSource(Subj.Source, Subj.Name);
  if (Subj.UseOutputOracle)
    Result.Golden =
        compileSubjectSource(Subj.GoldenSource, Subj.Name + "-golden");
  Result.LinesOfCode = Result.Prog->NumLines;
  Result.Sites = SiteTable::build(*Result.Prog);

  // Static pruning: classify sites up front and instrument only the Live
  // ones. The per-site mask feeds every collector (including the trainer);
  // the per-node mask lets the VM compiler skip observation opcodes. Site
  // ids are never renumbered.
  std::vector<uint8_t> EnabledSites;
  const std::vector<uint8_t> *SiteMask = nullptr;
  std::vector<uint8_t> ObservedNodes;
  if (Options.StaticPrune) {
    ScopedPhase PrunePhase("static_prune");
    ScopedSpan PruneSpan("static_prune", "harness");
    Result.StaticPruned = true;
    Result.Prune = computePrune(*Result.Prog, Result.Sites);
    EnabledSites = Result.Prune.siteEnabledMask();
    SiteMask = &EnabledSites;
    ObservedNodes =
        Result.Prune.observedNodeMask(Result.Prog->NumNodeIds, Result.Sites);
  }

  // Both engines produce bit-identical reports (differential-tested).
  CompiledProgram Bytecode, GoldenBytecode;
  if (Options.Exec == Engine::VM) {
    CompileOptions CompOpts;
    if (Options.StaticPrune)
      CompOpts.ObservedNodes = &ObservedNodes;
    Bytecode = compileProgram(*Result.Prog, CompOpts);
    // The golden build runs without an observer, so it compiles unpruned.
    if (Result.Golden)
      GoldenBytecode = compileProgram(*Result.Golden);
  }
  ParseSpan.reset();
  ParsePhase.reset();
  auto executeBuggy = [&](const RunConfig &Config) {
    return Options.Exec == Engine::VM ? runCompiled(Bytecode, Config)
                                      : runProgram(*Result.Prog, Config);
  };
  auto executeGolden = [&](const RunConfig &Config) {
    return Options.Exec == Engine::VM
               ? runCompiled(GoldenBytecode, Config)
               : runProgram(*Result.Golden, Config);
  };

  // --- Choose the sampling plan -----------------------------------------
  std::optional<ScopedPhase> PlanPhase;
  std::optional<ScopedSpan> PlanSpan;
  PlanPhase.emplace("plan_training");
  PlanSpan.emplace("plan_training", "harness");
  if (Options.Mode == SamplingMode::None) {
    Result.Plan = SamplingPlan::full(Result.Sites.numSites());
  } else if (Options.Mode == SamplingMode::Uniform) {
    Result.Plan =
        SamplingPlan::uniform(Result.Sites.numSites(), Options.UniformRate);
  } else {
    // Train per-site reach counts on preliminary runs (Section 4: rates
    // inversely proportional to observed execution frequency).
    // The trainer honors the prune mask too: masked sites report zero
    // reaches (their rate is irrelevant — they are never instrumented),
    // while retained sites' reach counts are unchanged by construction, so
    // the adaptive rates of retained sites match the unpruned campaign's.
    ReportCollector Trainer(Result.Sites,
                            SamplingPlan::full(Result.Sites.numSites()),
                            SiteMask);
    std::vector<double> TotalReaches(Result.Sites.numSites(), 0.0);
    for (size_t Run = 0; Run < Options.TrainingRuns; ++Run) {
      Rng InputRng(mixSeed(Options.Seed, /*Stream=*/100, Run));
      RunConfig Config;
      Config.Args = Subj.GenerateInput(InputRng);
      Config.OverrunPad = static_cast<size_t>(
          InputRng.nextBelow(Options.MaxOverrunPad + 1));
      Config.StepLimit = Options.StepLimit;
      Config.Observer = &Trainer;
      Trainer.beginRun(mixSeed(Options.Seed, /*Stream=*/101, Run));
      executeBuggy(Config);
      RawReport Raw = Trainer.takeReport();
      for (const auto &[Site, Count] : Raw.SiteObservations)
        TotalReaches[Site] += static_cast<double>(Count);
    }
    std::vector<double> MeanReach(Result.Sites.numSites(), 0.0);
    if (Options.TrainingRuns > 0)
      for (size_t Site = 0; Site < MeanReach.size(); ++Site)
        MeanReach[Site] = TotalReaches[Site] /
                          static_cast<double>(Options.TrainingRuns);
    Result.Plan = SamplingPlan::adaptive(MeanReach, Options.TargetSamples,
                                         Options.MinRate);
    if (Obs)
      TrainingRunsTotal.add(Options.TrainingRuns);
  }
  PlanSpan.reset();
  PlanPhase.reset();

  // --- Main campaign -----------------------------------------------------
  // Each run is fully determined by (campaign seed, run index), so the
  // loop parallelizes into bit-identical results for any thread count:
  // workers fill pre-sized slots (or, in spill mode, whole shards) and
  // share nothing but read-only state.
  const bool Spill = !Options.SpillDir.empty();
  std::vector<FeedbackReport> Collected(Spill ? 0 : Options.NumRuns);

  std::atomic<size_t> RunsCompleted{0};
  const size_t ProgressStride = std::max<size_t>(1, Options.NumRuns / 200);

  auto oneRun = [&](size_t Run, ReportCollector &Collector) {
    Rng InputRng(mixSeed(Options.Seed, /*Stream=*/1, Run));
    RunConfig Config;
    Config.Args = Subj.GenerateInput(InputRng);
    Config.OverrunPad =
        static_cast<size_t>(InputRng.nextBelow(Options.MaxOverrunPad + 1));
    Config.StepLimit = Options.StepLimit;
    Config.Observer = &Collector;

    Collector.beginRun(mixSeed(Options.Seed, /*Stream=*/2, Run));
    RunOutcome Outcome = executeBuggy(Config);
    if (Obs) {
      RunsTotal.add(1);
      StepHist.record(Outcome.Steps);
      PadHist.record(Config.OverrunPad);
    }

    FeedbackReport Report;
    Report.Counts = Collector.takeReport();
    Report.Failed = Outcome.failed();
    Report.Trap = Outcome.Trap;
    Report.ExitCode = Outcome.ExitCode;
    Report.StackSignature = joinStack(Outcome.StackTrace);
    for (int Bug : Outcome.BugsTriggered)
      Report.BugMask |= FeedbackReport::bugBit(Bug);

    // Output oracle: compare against the golden build on the same input.
    if (!Report.Failed && Subj.UseOutputOracle) {
      RunConfig GoldenConfig;
      GoldenConfig.Args = Config.Args;
      GoldenConfig.OverrunPad = Config.OverrunPad;
      GoldenConfig.StepLimit = Options.StepLimit;
      RunOutcome GoldenOutcome = executeGolden(GoldenConfig);
      assert(!GoldenOutcome.crashed() && "golden build must never crash");
      if (GoldenOutcome.Output != Outcome.Output)
        Report.Failed = true;
    }

    if (Options.Progress) {
      size_t Done = RunsCompleted.fetch_add(1, std::memory_order_relaxed) + 1;
      if (Done % ProgressStride == 0 || Done == Options.NumRuns)
        Options.Progress(Done, Options.NumRuns);
    }
    return Report;
  };

  // Realized sampling rates need per-scheme reach counts, which only the
  // collectors see; workers merge their counts here after the loop.
  ReportCollector::ReachStats MergedReaches;
  std::mutex ReachMu;
  auto mergeReaches = [&](const ReportCollector &Collector) {
    const ReportCollector::ReachStats &S = Collector.reachStats();
    std::lock_guard<std::mutex> Lock(ReachMu);
    for (size_t K = 0; K < S.Reaches.size(); ++K) {
      MergedReaches.Reaches[K] += S.Reaches[K];
      MergedReaches.Samples[K] += S.Samples[K];
      MergedReaches.ExpectedSamples[K] += S.ExpectedSamples[K];
    }
  };

  // Spill mode shares nothing across shards, so per-worker tallies (failure
  // labels, per-bug ground truth, bytes) merge here after the loop — the
  // reports themselves are already on disk by then.
  struct SpillTally {
    size_t Failing = 0;
    uint64_t Bytes = 0;
    std::vector<CampaignResult::BugStats> Bugs;
  };
  SpillTally MergedSpill;
  std::mutex SpillMu;
  std::string SpillError;
  auto tallySpilledReport = [&](SpillTally &Tally,
                                const FeedbackReport &Report) {
    if (Report.Failed)
      ++Tally.Failing;
    for (size_t B = 0; B < Tally.Bugs.size(); ++B)
      if (Report.hasBug(Tally.Bugs[B].BugId)) {
        ++Tally.Bugs[B].Triggered;
        if (Report.Failed)
          ++Tally.Bugs[B].TriggeredAndFailed;
      }
  };
  auto newSpillTally = [&] {
    SpillTally Tally;
    for (const BugSpec &Bug : Subj.Bugs)
      Tally.Bugs.push_back({Bug.Id, 0, 0});
    return Tally;
  };
  auto mergeSpill = [&](const SpillTally &Tally) {
    std::lock_guard<std::mutex> Lock(SpillMu);
    MergedSpill.Failing += Tally.Failing;
    MergedSpill.Bytes += Tally.Bytes;
    for (size_t B = 0; B < Tally.Bugs.size(); ++B) {
      MergedSpill.Bugs[B].Triggered += Tally.Bugs[B].Triggered;
      MergedSpill.Bugs[B].TriggeredAndFailed +=
          Tally.Bugs[B].TriggeredAndFailed;
    }
  };
  // One whole shard per worker iteration: runs [K*S, (K+1)*S) encode into
  // shard K in run order, making the corpus bytes thread-count-invariant.
  auto spillShard = [&](size_t Shard, size_t ShardSize,
                        ReportCollector &Collector, SpillTally &Tally) {
    const size_t Begin = Shard * ShardSize;
    const size_t End = std::min(Options.NumRuns, Begin + ShardSize);
    ScopedSpan ShardSpan("spill_shard", "harness");
    ShardSpan.arg("shard", Shard);
    ShardSpan.arg("reports", End - Begin);
    CorpusWriter Writer;
    std::string Error;
    std::string Path = Options.SpillDir + "/" +
                       corpusShardName(static_cast<uint32_t>(Shard));
    bool Ok = Writer.open(Path, static_cast<uint32_t>(Shard),
                          Result.Sites.numSites(),
                          Result.Sites.numPredicates(), Error);
    for (size_t Run = Begin; Ok && Run < End; ++Run) {
      FeedbackReport Report = oneRun(Run, Collector);
      tallySpilledReport(Tally, Report);
      Ok = Writer.append(Report, Error);
    }
    Ok = Writer.finalize(Error) && Ok;
    if (Ok) {
      Tally.Bytes += Writer.bytesWritten();
      return true;
    }
    std::lock_guard<std::mutex> Lock(SpillMu);
    if (SpillError.empty())
      SpillError = Path + ": " + Error;
    return false;
  };

  auto RunLoopStart = std::chrono::steady_clock::now();
  {
    ScopedPhase RunLoopPhase("run_loop");
    ScopedSpan RunLoopSpan("run_loop", "harness");
    if (Spill) {
      MergedSpill = newSpillTally();
      std::error_code DirEc;
      std::filesystem::create_directories(Options.SpillDir, DirEc);
      if (DirEc) {
        std::fprintf(stderr, "sbi: cannot create spill directory '%s': %s\n",
                     Options.SpillDir.c_str(), DirEc.message().c_str());
        std::abort();
      }
      const size_t ShardSize = std::max<size_t>(1, Options.SpillShardReports);
      // An empty campaign still emits one (empty) shard so the directory is
      // a well-formed corpus.
      const size_t NumShards =
          std::max<size_t>(1, (Options.NumRuns + ShardSize - 1) / ShardSize);
      size_t Threads = resolveThreadCount(Options.Threads, NumShards);
      if (Threads <= 1) {
        ReportCollector Collector(Result.Sites, Result.Plan, SiteMask);
        if (Obs)
          Collector.enableReachStats();
        SpillTally Tally = newSpillTally();
        for (size_t Shard = 0; Shard < NumShards; ++Shard)
          if (!spillShard(Shard, ShardSize, Collector, Tally))
            break;
        mergeSpill(Tally);
        if (Obs) {
          mergeReaches(Collector);
          WorkerHist.record(Options.NumRuns);
        }
      } else {
        std::vector<std::thread> Workers;
        Workers.reserve(Threads);
        for (size_t T = 0; T < Threads; ++T)
          Workers.emplace_back([&, T] {
            ScopedSpan WorkerSpan("worker", "harness");
            WorkerSpan.arg("worker", T);
            ReportCollector Collector(Result.Sites, Result.Plan, SiteMask);
            if (Obs)
              Collector.enableReachStats();
            SpillTally Tally = newSpillTally();
            size_t RunsByThisWorker = 0;
            for (size_t Shard = T; Shard < NumShards; Shard += Threads) {
              if (!spillShard(Shard, ShardSize, Collector, Tally))
                break;
              RunsByThisWorker +=
                  std::min(Options.NumRuns, (Shard + 1) * ShardSize) -
                  std::min(Options.NumRuns, Shard * ShardSize);
            }
            mergeSpill(Tally);
            if (Obs) {
              mergeReaches(Collector);
              WorkerHist.record(RunsByThisWorker);
            }
            WorkerSpan.arg("runs", RunsByThisWorker);
          });
        for (std::thread &Worker : Workers)
          Worker.join();
      }
      if (!SpillError.empty()) {
        std::fprintf(stderr, "sbi: corpus spill failed: %s\n",
                     SpillError.c_str());
        std::abort();
      }
      Result.SpilledShards = NumShards;
      Result.SpilledReports = Options.NumRuns;
      Result.SpilledFailing = MergedSpill.Failing;
      Result.SpilledBytes = MergedSpill.Bytes;
    } else {
      // hardware_concurrency() may legitimately return 0; resolveThreadCount
      // clamps so a campaign never launches zero workers.
      size_t Threads = resolveThreadCount(Options.Threads, Options.NumRuns);
      if (Threads <= 1) {
        ReportCollector Collector(Result.Sites, Result.Plan, SiteMask);
        if (Obs)
          Collector.enableReachStats();
        for (size_t Run = 0; Run < Options.NumRuns; ++Run)
          Collected[Run] = oneRun(Run, Collector);
        if (Obs) {
          mergeReaches(Collector);
          WorkerHist.record(Options.NumRuns);
        }
      } else {
        std::vector<std::thread> Workers;
        Workers.reserve(Threads);
        for (size_t T = 0; T < Threads; ++T)
          Workers.emplace_back([&, T] {
            ScopedSpan WorkerSpan("worker", "harness");
            WorkerSpan.arg("worker", T);
            ReportCollector Collector(Result.Sites, Result.Plan, SiteMask);
            if (Obs)
              Collector.enableReachStats();
            size_t RunsByThisWorker = 0;
            for (size_t Run = T; Run < Options.NumRuns; Run += Threads) {
              Collected[Run] = oneRun(Run, Collector);
              ++RunsByThisWorker;
            }
            if (Obs) {
              mergeReaches(Collector);
              WorkerHist.record(RunsByThisWorker);
            }
            WorkerSpan.arg("runs", RunsByThisWorker);
          });
        for (std::thread &Worker : Workers)
          Worker.join();
      }
    }
  }
  double RunLoopSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    RunLoopStart)
          .count();

  {
    ScopedPhase LabelPhase("label");
    ScopedSpan LabelSpan("label", "harness");
    Result.Reports =
        ReportSet(Result.Sites.numSites(), Result.Sites.numPredicates());
    if (Spill) {
      // Reports already live on disk; the tallies collected as they
      // streamed out are the ground truth.
      Result.Bugs = std::move(MergedSpill.Bugs);
    } else {
      for (FeedbackReport &Report : Collected)
        Result.Reports.add(std::move(Report));

      // Ground-truth stats derive from the recorded bug masks.
      for (const BugSpec &Bug : Subj.Bugs) {
        CampaignResult::BugStats Stats;
        Stats.BugId = Bug.Id;
        for (const FeedbackReport &Report : Result.Reports.reports())
          if (Report.hasBug(Bug.Id)) {
            ++Stats.Triggered;
            if (Report.Failed)
              ++Stats.TriggeredAndFailed;
          }
        Result.Bugs.push_back(Stats);
      }
    }
  }

  // --- Campaign summary --------------------------------------------------
  RunsGauge.set(static_cast<double>(Options.NumRuns));
  FailingGauge.set(static_cast<double>(Result.numFailing()));
  SamplingLabel.set(Result.Plan.name());
  double WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    WallStart)
          .count();
  WallMsGauge.set(WallSeconds * 1e3);
  if (RunLoopSeconds > 0.0)
    RunsPerSecGauge.set(static_cast<double>(Options.NumRuns) /
                        RunLoopSeconds);
  if (Spill) {
    static Gauge &SpillShardsGauge =
        Metrics.registerGauge("campaign.spill.shards");
    static Gauge &SpillBytesGauge =
        Metrics.registerGauge("campaign.spill.bytes");
    SpillShardsGauge.set(static_cast<double>(Result.SpilledShards));
    SpillBytesGauge.set(static_cast<double>(Result.SpilledBytes));
  }

  if (Obs) {
    // Planned vs. realized sampling rate per instrumentation scheme.
    // Realized = samples/reaches over the whole campaign; drift from the
    // planned mean is how one validates the fair-coin machinery at scale.
    static const char *SchemeNames[3] = {"branches", "returns",
                                         "scalar_pairs"};
    static Gauge *PlannedGauges[3] = {nullptr, nullptr, nullptr};
    static Gauge *RealizedGauges[3] = {nullptr, nullptr, nullptr};
    for (size_t K = 0; K < 3; ++K) {
      if (!PlannedGauges[K]) {
        PlannedGauges[K] = &Metrics.registerGauge(
            format("campaign.sampling.%s.planned_rate", SchemeNames[K]));
        RealizedGauges[K] = &Metrics.registerGauge(
            format("campaign.sampling.%s.realized_rate", SchemeNames[K]));
      }
      if (MergedReaches.Reaches[K] > 0) {
        // Reach-weighted planned rate: under a fair Bernoulli coin the
        // realized rate converges to it, so any drift is a sampler bug.
        double Reaches = static_cast<double>(MergedReaches.Reaches[K]);
        PlannedGauges[K]->set(MergedReaches.ExpectedSamples[K] / Reaches);
        RealizedGauges[K]->set(
            static_cast<double>(MergedReaches.Samples[K]) / Reaches);
      } else {
        // Scheme never reached: fall back to the plan's unweighted mean.
        PlannedGauges[K]->set(meanPlannedRate(Result.Sites, Result.Plan,
                                              static_cast<Scheme>(K)));
      }
    }
  }

  return Result;
}
