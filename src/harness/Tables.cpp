//===- harness/Tables.cpp - Paper-table rendering and derived studies -----===//

#include "harness/Tables.h"

#include "support/StringUtils.h"
#include "support/TextTable.h"
#include "support/Thermometer.h"

#include <algorithm>
#include <map>
#include <set>

using namespace sbi;

static constexpr size_t ThermometerWidth = 24;

std::string sbi::predicateLabel(const SiteTable &Sites, uint32_t PredId) {
  const PredicateInfo &Pred = Sites.predicate(PredId);
  const SiteInfo &Site = Sites.site(Pred.Site);
  return format("%s  [%s @ %s:%d]", Pred.Text.c_str(),
                schemeName(Site.SchemeKind), Site.Function.c_str(),
                Site.Line);
}

static std::string formatInterval(const ScoreInterval &Interval) {
  return format("%.3f +- %.3f", Interval.Value, Interval.HalfWidth);
}

std::string sbi::renderRankedList(const SiteTable &Sites,
                                  const std::vector<RankedPredicate> &Ranked,
                                  size_t TopK, uint64_t NumF) {
  uint64_t MaxRuns = 1;
  for (const RankedPredicate &Entry : Ranked)
    MaxRuns = std::max(MaxRuns, Entry.Scores.counts().observedTrue());

  TextTable Table;
  Table.setHeader({"Thermometer", "Context", "Increase", "Importance", "S",
                   "F", "F+S", "Predicate"});
  size_t Rows = TopK == 0 ? Ranked.size() : std::min(TopK, Ranked.size());
  for (size_t I = 0; I < Rows; ++I) {
    const RankedPredicate &Entry = Ranked[I];
    const PredicateCounts &Counts = Entry.Scores.counts();
    Table.addRow({renderThermometer(Entry.Scores.thermometer(),
                                    ThermometerWidth, MaxRuns),
                  format("%.3f", Entry.Scores.context()),
                  formatInterval(Entry.Scores.increase()),
                  format("%.3f", Entry.Scores.importance(NumF)),
                  format("%llu", static_cast<unsigned long long>(Counts.S)),
                  format("%llu", static_cast<unsigned long long>(Counts.F)),
                  format("%llu", static_cast<unsigned long long>(
                                     Counts.observedTrue())),
                  predicateLabel(Sites, Entry.Pred)});
  }
  if (Rows < Ranked.size())
    Table.addRow({format("... %zu additional predicates follow",
                         Ranked.size() - Rows)});
  return Table.render();
}

size_t sbi::failingRunsWithPredAndBug(const ReportSet &Set, uint32_t PredId,
                                      int BugId) {
  size_t N = 0;
  for (const FeedbackReport &Report : Set.reports())
    if (Report.Failed && Report.hasBug(BugId) && Report.observedTrue(PredId))
      ++N;
  return N;
}

size_t sbi::failingRunsWithPredAndBug(const RunProfiles &Runs,
                                      uint32_t PredId, int BugId) {
  size_t N = 0;
  for (size_t Run = 0; Run < Runs.size(); ++Run)
    if (Runs.failed(Run) && Runs.hasBug(Run, BugId) &&
        Runs.observedTrue(Run, PredId))
      ++N;
  return N;
}

/// Shared body of the two renderSelectedList overloads; \p Source only
/// feeds failingRunsWithPredAndBug for the bug columns.
template <typename SourceT>
static std::string
renderSelectedListImpl(const SiteTable &Sites, const SourceT &Source,
                       const std::vector<SelectedPredicate> &Selected,
                       const std::vector<int> &BugIds, size_t TopK) {
  uint64_t MaxRuns = 1;
  for (const SelectedPredicate &Entry : Selected)
    MaxRuns = std::max(MaxRuns, Entry.InitialScores.counts().observedTrue());

  TextTable Table;
  std::vector<std::string> Header = {"Initial", "Effective", "Imp", "F", "S",
                                     "Predicate"};
  for (int Bug : BugIds)
    Header.push_back(format("#%d", Bug));
  Table.setHeader(std::move(Header));

  size_t Rows = TopK == 0 ? Selected.size() : std::min(TopK, Selected.size());
  for (size_t I = 0; I < Rows; ++I) {
    const SelectedPredicate &Entry = Selected[I];
    std::vector<std::string> Row = {
        renderThermometer(Entry.InitialScores.thermometer(),
                          ThermometerWidth, MaxRuns),
        renderThermometer(Entry.EffectiveScores.thermometer(),
                          ThermometerWidth, MaxRuns),
        format("%.3f", Entry.InitialImportance),
        format("%llu", static_cast<unsigned long long>(
                           Entry.InitialScores.counts().F)),
        format("%llu", static_cast<unsigned long long>(
                           Entry.InitialScores.counts().S)),
        predicateLabel(Sites, Entry.Pred)};
    for (int Bug : BugIds)
      Row.push_back(
          format("%zu", failingRunsWithPredAndBug(Source, Entry.Pred, Bug)));
    Table.addRow(std::move(Row));
  }
  return Table.render();
}

std::string
sbi::renderSelectedList(const SiteTable &Sites, const ReportSet &Set,
                        const std::vector<SelectedPredicate> &Selected,
                        const std::vector<int> &BugIds, size_t TopK) {
  return renderSelectedListImpl(Sites, Set, Selected, BugIds, TopK);
}

std::string
sbi::renderSelectedList(const SiteTable &Sites, const RunProfiles &Runs,
                        const std::vector<SelectedPredicate> &Selected,
                        const std::vector<int> &BugIds, size_t TopK) {
  return renderSelectedListImpl(Sites, Runs, Selected, BugIds, TopK);
}

std::string sbi::renderAffinity(const SiteTable &Sites,
                                const SelectedPredicate &Selected) {
  std::string Out = format("affinity of %s:\n",
                           predicateLabel(Sites, Selected.Pred).c_str());
  for (const auto &[Pred, Drop] : Selected.Affinity)
    Out += format("  drop %.3f  %s\n", Drop,
                  predicateLabel(Sites, Pred).c_str());
  if (Selected.Affinity.empty())
    Out += "  (no related predicates)\n";
  return Out;
}

std::string sbi::renderAuditTrail(const SiteTable &Sites,
                                  const AnalysisResult &Analysis) {
  std::string Out =
      format("elimination audit trail (policy %s): %u predicates, %zu "
             "survive Increase>0, %zu selected\n",
             discardPolicyName(Analysis.Policy),
             Analysis.NumInitialPredicates, Analysis.PrunedSurvivors.size(),
             Analysis.Trail.size());
  for (size_t I = 0; I < Analysis.Trail.size(); ++I) {
    const EliminationTraceEntry &Entry = Analysis.Trail[I];
    Out += format(
        "iter %3zu: select P%-6u F=%llu S=%llu FObs=%llu SObs=%llu "
        "Increase=%.6f Importance=%.6f | %llu/%llu runs active/failing -> "
        "%llu %s, %llu candidates remain | %s\n",
        I + 1, Entry.Pred, static_cast<unsigned long long>(Entry.Counts.F),
        static_cast<unsigned long long>(Entry.Counts.S),
        static_cast<unsigned long long>(Entry.Counts.FObs),
        static_cast<unsigned long long>(Entry.Counts.SObs), Entry.Increase,
        Entry.Importance, static_cast<unsigned long long>(Entry.ActiveRuns),
        static_cast<unsigned long long>(Entry.FailingRuns),
        static_cast<unsigned long long>(Entry.RunsDiscarded),
        Analysis.Policy == DiscardPolicy::RelabelFailingRuns ? "relabeled"
                                                             : "discarded",
        static_cast<unsigned long long>(Entry.SurvivingCandidates),
        predicateLabel(Sites, Entry.Pred).c_str());
  }
  return Out;
}

std::vector<std::pair<int, uint32_t>>
sbi::choosePredictorPerBug(const ReportSet &Set,
                           const std::vector<SelectedPredicate> &Selected,
                           const std::vector<int> &BugIds) {
  std::vector<std::pair<int, uint32_t>> Result;
  for (int Bug : BugIds) {
    uint32_t BestPred = 0;
    size_t BestOverlap = 0;
    bool Found = false;
    for (const SelectedPredicate &Entry : Selected) {
      size_t Overlap = failingRunsWithPredAndBug(Set, Entry.Pred, Bug);
      if (Overlap > BestOverlap) {
        BestOverlap = Overlap;
        BestPred = Entry.Pred;
        Found = true;
      }
    }
    if (Found)
      Result.emplace_back(Bug, BestPred);
  }
  return Result;
}

std::vector<size_t> sbi::defaultMinRunsGrid(size_t NumRuns) {
  std::vector<size_t> Grid;
  for (size_t N = 100; N <= 1000 && N <= NumRuns; N += 100)
    Grid.push_back(N);
  for (size_t N = 2000; N <= 25000 && N <= NumRuns; N += 1000)
    Grid.push_back(N);
  if (Grid.empty() || Grid.back() != NumRuns)
    Grid.push_back(NumRuns);
  return Grid;
}

std::vector<MinRunsRow> sbi::computeMinimumRuns(
    const SiteTable &Sites, const ReportSet &Set,
    const std::vector<std::pair<int, uint32_t>> &Predictors,
    const std::vector<size_t> &Grid, double Threshold) {
  // Incremental prefix aggregation: walk the runs once, checkpointing the
  // chosen predicates' counts at each grid size.
  struct Tracker {
    int BugId;
    uint32_t Pred;
    uint32_t Site;
    PredicateCounts Counts;
    std::vector<PredicateCounts> AtGrid;
    std::vector<uint64_t> NumFAtGrid;
  };
  std::vector<Tracker> Trackers;
  for (const auto &[Bug, Pred] : Predictors)
    Trackers.push_back(
        {Bug, Pred, Sites.predicate(Pred).Site, {}, {}, {}});

  uint64_t NumF = 0;
  size_t GridIdx = 0;
  for (size_t Run = 0; Run < Set.size() && GridIdx < Grid.size(); ++Run) {
    const FeedbackReport &Report = Set[Run];
    if (Report.Failed)
      ++NumF;
    for (Tracker &T : Trackers) {
      if (Report.siteObserved(T.Site)) {
        if (Report.Failed)
          ++T.Counts.FObs;
        else
          ++T.Counts.SObs;
      }
      if (Report.observedTrue(T.Pred)) {
        if (Report.Failed)
          ++T.Counts.F;
        else
          ++T.Counts.S;
      }
    }
    while (GridIdx < Grid.size() && Run + 1 == Grid[GridIdx]) {
      for (Tracker &T : Trackers) {
        T.AtGrid.push_back(T.Counts);
        T.NumFAtGrid.push_back(NumF);
      }
      ++GridIdx;
    }
  }

  // Full-population importance for each predictor.
  RunView View = RunView::allOf(Set);
  Aggregates Agg = Aggregates::compute(Set, View);

  std::vector<MinRunsRow> Rows;
  for (Tracker &T : Trackers) {
    MinRunsRow Row;
    Row.BugId = T.BugId;
    Row.Pred = T.Pred;
    Row.FullImportance =
        Agg.scores(T.Pred, Sites).importance(Agg.numFailing());
    for (size_t G = 0; G < T.AtGrid.size(); ++G) {
      PredicateScores Scores(T.AtGrid[G]);
      double ImportanceN = Scores.importance(T.NumFAtGrid[G]);
      if (Row.FullImportance - ImportanceN < Threshold) {
        Row.MinRuns = Grid[G];
        Row.FAtMinRuns = T.AtGrid[G].F;
        break;
      }
    }
    Rows.push_back(Row);
  }
  return Rows;
}

std::string sbi::crashFunctionOf(const std::string &Location) {
  size_t At = Location.find('@');
  return At == std::string::npos ? Location : Location.substr(0, At);
}

std::vector<StackStudyRow>
sbi::computeStackStudy(const ReportSet &Set, const std::vector<int> &BugIds,
                       const std::vector<std::string> &CauseFunctions) {
  // Crash location = innermost stack frame of a crashed run.
  auto locationOf = [](const FeedbackReport &Report) {
    size_t Sep = Report.StackSignature.find('>');
    return Sep == std::string::npos ? Report.StackSignature
                                    : Report.StackSignature.substr(0, Sep);
  };

  // Per crash location: total crashed runs and crashed runs per bug.
  std::map<std::string, size_t> LocationRuns;
  std::map<std::string, std::map<int, size_t>> LocationRunsWithBug;
  for (const FeedbackReport &Report : Set.reports()) {
    if (Report.Trap == TrapKind::None || Report.StackSignature.empty())
      continue;
    std::string Loc = locationOf(Report);
    ++LocationRuns[Loc];
    for (int Bug : BugIds)
      if (Report.hasBug(Bug))
        ++LocationRunsWithBug[Loc][Bug];
  }

  std::vector<StackStudyRow> Rows;
  for (size_t BugIdx = 0; BugIdx < BugIds.size(); ++BugIdx) {
    int Bug = BugIds[BugIdx];
    StackStudyRow Row;
    Row.BugId = Bug;
    std::string Cause =
        BugIdx < CauseFunctions.size() ? CauseFunctions[BugIdx] : "";
    std::set<std::string> Locations, Signatures;
    for (const FeedbackReport &Report : Set.reports()) {
      if (Report.Trap == TrapKind::None || !Report.hasBug(Bug) ||
          Report.StackSignature.empty())
        continue;
      ++Row.CrashingRuns;
      std::string Loc = locationOf(Report);
      if (!Cause.empty() && crashFunctionOf(Loc) == Cause)
        ++Row.CrashesNamingCause;
      Locations.insert(Loc);
      Signatures.insert(Report.StackSignature);
    }
    Row.DistinctLocations = Locations.size();
    Row.DistinctSignatures = Signatures.size();
    // Unique: this bug crashes at exactly one location, and every crash at
    // that location involves this bug ("crash location present iff the
    // corresponding bug was actually triggered", Section 6).
    if (Locations.size() == 1) {
      const std::string &Loc = *Locations.begin();
      Row.UniqueLocation = LocationRunsWithBug[Loc][Bug] == LocationRuns[Loc];
    }
    Rows.push_back(Row);
  }
  return Rows;
}
