//===- harness/Tables.h - Paper-table rendering and derived studies -------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers the bench binaries share to print the paper's tables: ranked
/// predicate lists with bug thermometers (Table 1), elimination output with
/// initial/effective thermometers and ground-truth bug columns (Tables
/// 3-7), the minimum-runs study (Table 8), and the stack-trace clustering
/// study discussed in Section 6.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_HARNESS_TABLES_H
#define SBI_HARNESS_TABLES_H

#include "core/Analysis.h"
#include "harness/Campaign.h"

#include <string>
#include <vector>

namespace sbi {

/// "text (scheme @ function:line)" for one predicate.
std::string predicateLabel(const SiteTable &Sites, uint32_t PredId);

/// Renders a Table 1-style ranked list: thermometer, Context, Increase with
/// its CI, S, F, F+S, predicate text. \p TopK rows (0 = all).
std::string renderRankedList(const SiteTable &Sites,
                             const std::vector<RankedPredicate> &Ranked,
                             size_t TopK, uint64_t NumF);

/// Renders Tables 3-7: elimination output with initial and effective
/// thermometers; when \p BugIds is nonempty, appends one column per bug
/// counting failing runs that both exhibit the bug and observe the
/// predicate true (Table 3's right-hand matrix).
std::string renderSelectedList(const SiteTable &Sites, const ReportSet &Set,
                               const std::vector<SelectedPredicate> &Selected,
                               const std::vector<int> &BugIds,
                               size_t TopK = 0);

/// Same rendering over the compact RunProfiles store (the --corpus path);
/// profiles carry the failure labels, truth bits, and bug masks the bug
/// columns need, so output is byte-identical to the ReportSet overload.
std::string renderSelectedList(const SiteTable &Sites,
                               const RunProfiles &Runs,
                               const std::vector<SelectedPredicate> &Selected,
                               const std::vector<int> &BugIds,
                               size_t TopK = 0);

/// Renders a selected predicate's affinity list (the interactive tool's
/// per-predicate view).
std::string renderAffinity(const SiteTable &Sites,
                           const SelectedPredicate &Selected);

/// Renders the elimination audit trail (`sbi analyze --trace`): one line
/// per iteration with the selected predicate, its F/S/FObs/SObs counts,
/// Increase and Importance at selection time, the runs the discard policy
/// removed (or relabeled), and the surviving candidate count. Built only
/// from AnalysisResult::Trail, which both engines fill identically, so the
/// rendering is byte-identical across engines (differential-tested).
std::string renderAuditTrail(const SiteTable &Sites,
                             const AnalysisResult &Analysis);

/// Failing runs in which predicate \p PredId was observed true and bug
/// \p BugId triggered.
size_t failingRunsWithPredAndBug(const ReportSet &Set, uint32_t PredId,
                                 int BugId);
size_t failingRunsWithPredAndBug(const RunProfiles &Runs, uint32_t PredId,
                                 int BugId);

/// For each bug, the selected predicate that best covers its failing runs
/// (the per-bug "natural" predictor of Section 4.3). Bugs with no covering
/// selected predicate are omitted.
std::vector<std::pair<int, uint32_t>>
choosePredictorPerBug(const ReportSet &Set,
                      const std::vector<SelectedPredicate> &Selected,
                      const std::vector<int> &BugIds);

/// Table 8: the minimum-runs study.
struct MinRunsRow {
  int BugId = 0;
  uint32_t Pred = 0;
  /// Smallest grid N with Importance_full - Importance_N < Threshold;
  /// 0 if no grid point qualifies.
  size_t MinRuns = 0;
  /// F(P) among the first MinRuns runs.
  uint64_t FAtMinRuns = 0;
  double FullImportance = 0.0;
};

std::vector<MinRunsRow>
computeMinimumRuns(const SiteTable &Sites, const ReportSet &Set,
                   const std::vector<std::pair<int, uint32_t>> &Predictors,
                   const std::vector<size_t> &Grid, double Threshold = 0.2);

/// The paper's default N grid: 100..1000 step 100, then 2000..25000 step
/// 1000, clipped to the set size.
std::vector<size_t> defaultMinRunsGrid(size_t NumRuns);

/// Extracts the function name from a "func@line" crash location.
std::string crashFunctionOf(const std::string &Location);

/// Section 6's stack study: is the industry heuristic (cluster crashes by
/// stack) enough to separate the bugs?
struct StackStudyRow {
  int BugId = 0;
  size_t CrashingRuns = 0;
  /// Distinct crash locations (top stack frame) across this bug's crashes.
  size_t DistinctLocations = 0;
  /// Distinct full-stack signatures across this bug's crashes.
  size_t DistinctSignatures = 0;
  /// True iff some crash location appears in a run exactly when this bug
  /// triggered — the "truly unique signature stack" of Section 6.
  bool UniqueLocation = false;
  /// Crashes whose top frame is inside the bug's cause function. A unique
  /// crash location that never names the cause (BC's malloc crash, EXIF's
  /// save-path crash) is still useless for debugging.
  size_t CrashesNamingCause = 0;
};

/// \p CauseFunctions maps bug id -> defect-carrying function name ("" if
/// unknown); pass Subject::Bugs-derived data for the seeded subjects.
std::vector<StackStudyRow>
computeStackStudy(const ReportSet &Set, const std::vector<int> &BugIds,
                  const std::vector<std::string> &CauseFunctions = {});

} // namespace sbi

#endif // SBI_HARNESS_TABLES_H
