//===- harness/HtmlReport.cpp - Static HTML analysis reports --------------===//

#include "harness/HtmlReport.h"

#include "harness/Tables.h"
#include "obs/Telemetry.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace sbi;

namespace {

std::string escapeHtml(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// One thermometer as nested divs: black Context band, red Increase lower
/// bound, pink confidence band, white remainder — the paper's color key.
std::string thermometerHtml(const ThermometerSpec &Spec, int FullWidth,
                            uint64_t MaxRuns) {
  double LogMax = std::log1p(static_cast<double>(MaxRuns));
  double LogThis = std::log1p(static_cast<double>(Spec.RunsObservedTrue));
  int Length = LogMax <= 0.0
                   ? 0
                   : static_cast<int>(std::lround(FullWidth * LogThis /
                                                  LogMax));
  Length = std::clamp(Length, Spec.RunsObservedTrue > 0 ? 4 : 0, FullWidth);

  auto band = [&](double Fraction) {
    return static_cast<int>(std::lround(
        std::clamp(Fraction, 0.0, 1.0) * Length));
  };
  int Context = band(Spec.Context);
  int Increase = std::min(band(Spec.IncreaseLowerBound), Length - Context);
  int Confidence =
      std::min(band(Spec.ConfidenceWidth), Length - Context - Increase);
  int White = Length - Context - Increase - Confidence;

  std::string Out = format(
      "<span class=\"thermo\" style=\"width:%dpx\" title=\"Context %.3f, "
      "Increase lower bound %.3f, observed true in %llu runs\">",
      FullWidth, Spec.Context, Spec.IncreaseLowerBound,
      static_cast<unsigned long long>(Spec.RunsObservedTrue));
  auto piece = [&](const char *Class, int Width) {
    if (Width > 0)
      Out += format("<span class=\"%s\" style=\"width:%dpx\"></span>",
                    Class, Width);
  };
  piece("ctx", Context);
  piece("inc", Increase);
  piece("ci", Confidence);
  piece("succ", White);
  Out += "</span>";
  return Out;
}

const char *StyleSheet = R"css(
body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 72em;
       color: #1a1a1a; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 4px 10px; border-bottom: 1px solid #ddd;
         font-size: 0.92em; }
th { background: #f4f4f4; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f6f6f6; padding: 1px 4px; border-radius: 3px; }
.thermo { display: inline-flex; height: 14px; border: 1px solid #999;
          vertical-align: middle; background: #fff; }
.thermo span { display: inline-block; height: 100%; }
.ctx { background: #111; } .inc { background: #d22; }
.ci { background: #f9b7c0; } .succ { background: #fff; }
.affinity { margin: 0.4em 0 1.4em 1em; }
.small { color: #666; font-size: 0.85em; }
a.anchor { text-decoration: none; color: #2a6; }
.summary { display: flex; gap: 2.2em; background: #f4f4f4; padding: 8px
           14px; border-radius: 6px; font-size: 0.92em; }
.summary b { display: block; font-size: 1.2em; }
)css";

} // namespace

std::string sbi::renderHtmlReport(const SiteTable &Sites,
                                  const ReportSet &Set,
                                  const AnalysisResult &Analysis,
                                  const HtmlReportOptions &Options) {
  size_t Rows = Options.TopK == 0
                    ? Analysis.Selected.size()
                    : std::min(Options.TopK, Analysis.Selected.size());

  uint64_t MaxRuns = 1;
  for (const SelectedPredicate &Entry : Analysis.Selected)
    MaxRuns = std::max(MaxRuns, Entry.InitialScores.counts().observedTrue());

  std::string Out;
  Out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  Out += format("<title>%s</title>\n<style>%s</style></head>\n<body>\n",
                escapeHtml(Options.Title).c_str(), StyleSheet);
  Out += format("<h1>%s</h1>\n", escapeHtml(Options.Title).c_str());
  Out += format(
      "<p>%zu runs: <b>%zu failing</b>, %zu successful &mdash; %u "
      "instrumented predicates, %zu survive the <i>Increase</i> test, "
      "%zu selected by iterative elimination.</p>\n",
      Set.size(), Set.numFailing(), Set.numSuccessful(),
      Analysis.NumInitialPredicates, Analysis.PrunedSurvivors.size(),
      Analysis.Selected.size());
  Out += "<p class=\"small\">Thermometer key (paper Section 3.3): black = "
         "Context, red = Increase lower bound, pink = 95% confidence "
         "band, white = successful runs; length is log-scaled in the "
         "number of runs where the predicate was observed true.</p>\n";

  // --- Main ranked table ---------------------------------------------------
  Out += "<h2>Selected failure predictors</h2>\n<table>\n<tr>"
         "<th>#</th><th>Initial</th><th>Effective</th>"
         "<th class=\"num\">Importance</th><th class=\"num\">F</th>"
         "<th class=\"num\">S</th><th>Predicate</th><th>Site</th></tr>\n";
  for (size_t I = 0; I < Rows; ++I) {
    const SelectedPredicate &Entry = Analysis.Selected[I];
    const PredicateInfo &Pred = Sites.predicate(Entry.Pred);
    const SiteInfo &Site = Sites.site(Pred.Site);
    Out += format(
        "<tr><td class=\"num\"><a class=\"anchor\" "
        "href=\"#affinity-%zu\">%zu</a></td><td>%s</td><td>%s</td>"
        "<td class=\"num\">%.3f</td><td class=\"num\">%llu</td>"
        "<td class=\"num\">%llu</td><td><code>%s</code></td>"
        "<td class=\"small\">%s @ %s:%d</td></tr>\n",
        I, I + 1,
        thermometerHtml(Entry.InitialScores.thermometer(),
                        Options.ThermometerWidth, MaxRuns)
            .c_str(),
        thermometerHtml(Entry.EffectiveScores.thermometer(),
                        Options.ThermometerWidth, MaxRuns)
            .c_str(),
        Entry.InitialImportance,
        static_cast<unsigned long long>(Entry.InitialScores.counts().F),
        static_cast<unsigned long long>(Entry.InitialScores.counts().S),
        escapeHtml(Pred.Text).c_str(), schemeName(Site.SchemeKind),
        escapeHtml(Site.Function).c_str(), Site.Line);
  }
  Out += "</table>\n";

  // --- Affinity sections ---------------------------------------------------
  Out += "<h2>Affinity lists</h2>\n<p class=\"small\">For each selected "
         "predicate: related predicates ranked by how much their "
         "importance drops when the selected predicate's runs are removed "
         "&mdash; large drops mean &ldquo;probably the same "
         "bug&rdquo;.</p>\n";
  for (size_t I = 0; I < Rows; ++I) {
    const SelectedPredicate &Entry = Analysis.Selected[I];
    Out += format("<h3 id=\"affinity-%zu\">%zu. <code>%s</code></h3>\n", I,
                  I + 1,
                  escapeHtml(Sites.predicate(Entry.Pred).Text).c_str());
    if (Entry.Affinity.empty()) {
      Out += "<p class=\"affinity small\">no related predicates</p>\n";
      continue;
    }
    Out += "<table class=\"affinity\">\n<tr><th class=\"num\">Drop</th>"
           "<th>Predicate</th><th>Site</th></tr>\n";
    for (const auto &[Pred, Drop] : Entry.Affinity) {
      const PredicateInfo &Info = Sites.predicate(Pred);
      const SiteInfo &Site = Sites.site(Info.Site);
      Out += format("<tr><td class=\"num\">%.3f</td>"
                    "<td><code>%s</code></td>"
                    "<td class=\"small\">%s @ %s:%d</td></tr>\n",
                    Drop, escapeHtml(Info.Text).c_str(),
                    schemeName(Site.SchemeKind),
                    escapeHtml(Site.Function).c_str(), Site.Line);
    }
    Out += "</table>\n";
  }

  Out += "</body></html>\n";
  return Out;
}

std::string sbi::renderHtmlReport(const CampaignResult &Campaign,
                                  const AnalysisResult &Analysis,
                                  HtmlReportOptions Options) {
  if (Campaign.Subj && Options.Title == "Statistical debugging report")
    Options.Title =
        format("Statistical debugging report: %s",
               Campaign.Subj->Name.c_str());

  std::string Out = renderHtmlReport(Campaign.Sites, Campaign.Reports,
                                     Analysis, Options);

  // Compact run-summary header from the metrics registry. The campaign
  // driver maintains these gauges unconditionally; when the reports were
  // loaded from a file instead (no campaign ran this process), the gauges
  // are absent and the header is simply omitted.
  const MetricsRegistry &Metrics = Telemetry::metrics();
  if (const Gauge *Runs = Metrics.findGauge("campaign.runs")) {
    const Gauge *Failing = Metrics.findGauge("campaign.failing");
    const Gauge *WallMs = Metrics.findGauge("campaign.wall_ms");
    const Gauge *RunsPerSec = Metrics.findGauge("campaign.runs_per_sec");
    const Label *Mode = Metrics.findLabel("campaign.sampling_mode");
    std::string Box = "<div class=\"summary\">";
    Box += format("<span><b>%.0f</b>runs</span>", Runs->value());
    if (Failing)
      Box += format("<span><b>%.0f</b>failing</span>", Failing->value());
    if (Mode)
      Box += format("<span><b>%s</b>sampling</span>",
                    escapeHtml(Mode->value()).c_str());
    if (WallMs)
      Box += format("<span><b>%.0f&thinsp;ms</b>campaign wall time</span>",
                    WallMs->value());
    if (RunsPerSec && RunsPerSec->value() > 0.0)
      Box += format("<span><b>%.0f</b>runs/sec</span>",
                    RunsPerSec->value());
    Box += "</div>\n";
    size_t At = Out.find("</h1>\n");
    if (At != std::string::npos)
      Out.insert(At + 6, Box);
  }

  if (!Options.ShowGroundTruth || !Campaign.Subj)
    return Out;

  // Splice a ground-truth section in before </body>.
  std::string Truth = "<h2>Ground truth (seeded subjects only)</h2>\n"
                      "<table>\n<tr><th>Bug</th><th>Kind</th>"
                      "<th class=\"num\">Triggered</th>"
                      "<th class=\"num\">Failing</th></tr>\n";
  for (const auto &Stats : Campaign.Bugs) {
    const BugSpec &Spec =
        Campaign.Subj->Bugs[static_cast<size_t>(Stats.BugId - 1)];
    Truth += format("<tr><td>#%d</td><td>%s</td><td class=\"num\">%zu</td>"
                    "<td class=\"num\">%zu</td></tr>\n",
                    Stats.BugId, escapeHtml(Spec.Kind).c_str(),
                    Stats.Triggered, Stats.TriggeredAndFailed);
  }
  Truth += "</table>\n";
  size_t At = Out.rfind("</body>");
  if (At != std::string::npos)
    Out.insert(At, Truth);
  return Out;
}
