//===- sa/Prune.h - Conservative predicate-site pruning -------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies every instrumentation site before a campaign runs:
///
///   Live            — the analysis cannot bound the site's outcomes; it is
///                     instrumented exactly as before.
///   Unreachable     — the site's observation provably never fires (dead
///                     code, a condition that always traps, a call that
///                     never returns an int, ...). F(P) = S(P) = 0 for all
///                     its predicates in every run.
///   ConstantOutcome — the site fires, but each of its predicates is either
///                     true on *every* observation or on none (e.g. a
///                     branch whose condition is provably nonzero, or a
///                     scalar pair whose intervals admit exactly one of
///                     <, =, >).
///
/// Pruned (non-Live) sites are dropped from instrumentation entirely: the
/// collector masks them out and the VM compiler skips their observation
/// opcodes. Site ids are never renumbered, so reports, shards, and rankings
/// from pruned and unpruned campaigns stay directly comparable.
///
/// Why this cannot change the analysis (the Lemma 3.1 argument, DESIGN.md):
/// an Unreachable predicate has F(P) = S(P) = 0, so Failure(P) is 0/0-
/// guarded out and Importance(P) = 0. An always-true-when-observed
/// predicate P has F(P) = F(P observed) and S(P) = S(P observed) over any
/// sub-population of runs, so Increase(P) = Failure(P) - Context(P) is
/// exactly 0.0 in IEEE doubles, hence Importance(P) = 0. Never-true
/// predicates have F(P) = 0. None of them can be a top-ranked predictor or
/// survive the Increase test, so removing them leaves every selection,
/// every affinity list, and every retained predicate's scores bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SA_PRUNE_H
#define SBI_SA_PRUNE_H

#include "instrument/Sites.h"
#include "sa/Dataflow.h"

#include <cstdint>
#include <vector>

namespace sbi {

enum class SiteClass : uint8_t { Live, Unreachable, ConstantOutcome };

const char *siteClassName(SiteClass C);

struct SitePruneInfo {
  SiteClass Class = SiteClass::Live;
  /// ConstantOutcome only: bit i set means predicate (FirstPredicate + i)
  /// is true on every observation of the site; a clear bit means it is
  /// true on none.
  uint8_t AlwaysTrueMask = 0;
};

struct PruneResult {
  /// Indexed by site id; same length as SiteTable::numSites().
  std::vector<SitePruneInfo> Sites;

  bool pruned(uint32_t Site) const {
    return Sites[Site].Class != SiteClass::Live;
  }
  uint32_t numSites() const { return static_cast<uint32_t>(Sites.size()); }
  uint32_t numLive() const;
  uint32_t numUnreachable() const;
  uint32_t numConstant() const;
  uint32_t numPruned() const { return numSites() - numLive(); }

  /// Per-site instrumentation mask for the collector: 1 = keep observing.
  std::vector<uint8_t> siteEnabledMask() const;

  /// Per-AST-node mask for the VM compiler: 1 = at least one live site is
  /// rooted at this node, so its observation opcode must be emitted.
  /// Indexed by node id, sized \p NumNodeIds.
  std::vector<uint8_t> observedNodeMask(int NumNodeIds,
                                        const SiteTable &Table) const;
};

/// Runs the static analysis and classifies every site of \p Table.
PruneResult computePrune(const Program &Prog, const SiteTable &Table);

/// Same, reusing an already-built model (lint and prune share one).
PruneResult computePrune(const StaticModel &Model, const SiteTable &Table);

} // namespace sbi

#endif // SBI_SA_PRUNE_H
