//===- sa/Lint.cpp - Static findings over MicroC subjects -----------------===//

#include "sa/Lint.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

namespace sbi {

const char *lintKindName(LintKind Kind) {
  switch (Kind) {
  case LintKind::DeadCode:
    return "dead-code";
  case LintKind::ConstantBranch:
    return "constant-branch";
  case LintKind::UnreachableReturn:
    return "unreachable-return";
  case LintKind::UseBeforeInit:
    return "use-before-init";
  }
  return "?";
}

size_t LintReport::count(LintKind Kind) const {
  return static_cast<size_t>(
      std::count_if(Findings.begin(), Findings.end(),
                    [&](const LintFinding &F) { return F.Kind == Kind; }));
}

std::string LintReport::summary() const {
  return format("%zu findings (%zu dead-code, %zu constant-branch, "
                "%zu unreachable-return, %zu use-before-init)",
                Findings.size(), count(LintKind::DeadCode),
                count(LintKind::ConstantBranch),
                count(LintKind::UnreachableReturn),
                count(LintKind::UseBeforeInit));
}

namespace {

/// Collects use-before-init reads during a replay sweep; deduplicated per
/// (function, slot) at the first read encountered in block order.
class UseBeforeInitSink : public EvalSink {
public:
  UseBeforeInitSink(const FuncDecl &Func, std::set<int> &SeenSlots,
                    std::vector<LintFinding> &Out)
      : Func(Func), SeenSlots(SeenSlots), Out(Out) {}

  void onVarRead(const VarRefExpr &Ref, bool MaybeDefault) override {
    if (!MaybeDefault || Ref.Slot.IsGlobal)
      return;
    if (!SeenSlots.insert(Ref.Slot.Index).second)
      return;
    Out.push_back(
        {LintKind::UseBeforeInit, Func.Name, Ref.Line,
         format("variable '%s' may be read before any explicit "
                "initialization (falls back to the implicit default)",
                Ref.Name.c_str())});
  }

private:
  const FuncDecl &Func;
  std::set<int> &SeenSlots;
  std::vector<LintFinding> &Out;
};

/// "x > 0 is TRUE" -> "x > 0" (the builder's predicate text for a branch
/// site is the condition text plus the outcome suffix).
std::string branchConditionText(const std::string &PredText) {
  const std::string Suffix = " is TRUE";
  if (PredText.size() > Suffix.size() &&
      PredText.compare(PredText.size() - Suffix.size(), Suffix.size(),
                       Suffix) == 0)
    return PredText.substr(0, PredText.size() - Suffix.size());
  return PredText;
}

void lintDeadBlocks(const StaticModel &Model, const FuncDecl &Func,
                    std::vector<LintFinding> &Out) {
  const Cfg &G = Model.cfg(&Func);
  auto alive = [&](int B) {
    return Model.blockEntry(&Func, B).Feasible;
  };
  for (size_t B = 0; B < G.numBlocks(); ++B) {
    int Id = static_cast<int>(B);
    if (alive(Id))
      continue;
    const CfgBlock &Blk = G.block(Id);
    // Every dead return is its own finding.
    if (Blk.Kind == CfgBlock::Term::Return)
      Out.push_back({LintKind::UnreachableReturn, Func.Name, Blk.Ret->Line,
                     "return statement is unreachable"});
    // Dead-code findings only at region roots: a dead block with no
    // predecessors (code after return/break/continue) or with at least one
    // live predecessor (the dead arm of a decided branch). Interior blocks
    // of a dead region stay quiet so one region yields one finding.
    bool Root = Blk.Preds.empty();
    for (int P : Blk.Preds)
      Root = Root || alive(P);
    if (!Root)
      continue;
    if (!Blk.Items.empty())
      Out.push_back({LintKind::DeadCode, Func.Name, Blk.Items.front()->Line,
                     "statement is unreachable"});
    else if (Blk.Kind == CfgBlock::Term::Branch)
      Out.push_back({LintKind::DeadCode, Func.Name, Blk.BranchLine,
                     "conditional is unreachable"});
  }
}

} // namespace

LintReport runLint(const StaticModel &Model, const SiteTable &Table,
                   const PruneResult &Prune) {
  LintReport Report;
  const Program &Prog = Model.program();

  for (const auto &Func : Prog.Functions) {
    if (!Model.functionReachable(Func.get())) {
      if (Func->Name != "main")
        Report.Findings.push_back(
            {LintKind::DeadCode, Func->Name, Func->Line,
             format("function '%s' is never called", Func->Name.c_str())});
      continue;
    }
    lintDeadBlocks(Model, *Func, Report.Findings);
    std::set<int> SeenSlots;
    UseBeforeInitSink Sink(*Func, SeenSlots, Report.Findings);
    const Cfg &G = Model.cfg(Func.get());
    for (size_t B = 0; B < G.numBlocks(); ++B)
      Model.replayBlock(Func.get(), static_cast<int>(B), Sink);
  }

  // Constant branches come straight from the prune classification.
  for (const SiteInfo &Site : Table.sites()) {
    if (Site.SchemeKind != Scheme::Branches)
      continue;
    const SitePruneInfo &Info = Prune.Sites[Site.Id];
    if (Info.Class != SiteClass::ConstantOutcome)
      continue;
    bool AlwaysTrue = (Info.AlwaysTrueMask & 1u) != 0;
    std::string Cond =
        branchConditionText(Table.predicate(Site.FirstPredicate).Text);
    Report.Findings.push_back(
        {LintKind::ConstantBranch, Site.Function, Site.Line,
         format("branch condition '%s' is always %s", Cond.c_str(),
                AlwaysTrue ? "true" : "false")});
  }

  std::stable_sort(Report.Findings.begin(), Report.Findings.end(),
                   [](const LintFinding &A, const LintFinding &B) {
                     if (A.Line != B.Line)
                       return A.Line < B.Line;
                     if (A.Kind != B.Kind)
                       return static_cast<int>(A.Kind) <
                              static_cast<int>(B.Kind);
                     return A.Message < B.Message;
                   });
  return Report;
}

LintReport runLint(const Program &Prog) {
  StaticModel Model = StaticModel::build(Prog);
  SiteTable Table = SiteTable::build(Prog);
  PruneResult Prune = computePrune(Model, Table);
  return runLint(Model, Table, Prune);
}

std::string renderLintHuman(const std::string &SubjectName,
                            const LintReport &Report) {
  std::string Out =
      format("%s: %s\n", SubjectName.c_str(), Report.summary().c_str());
  for (const LintFinding &F : Report.Findings)
    Out += format("  [%s] %s:%d: %s\n", lintKindName(F.Kind),
                  F.Function.c_str(), F.Line, F.Message.c_str());
  return Out;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

} // namespace

std::string renderLintJson(const std::string &SubjectName,
                           const LintReport &Report) {
  std::string Out = "{\n";
  Out += format("  \"subject\": \"%s\",\n", jsonEscape(SubjectName).c_str());
  Out += format("  \"num_findings\": %zu,\n", Report.Findings.size());
  Out += "  \"counts\": {";
  const LintKind Kinds[] = {LintKind::DeadCode, LintKind::ConstantBranch,
                            LintKind::UnreachableReturn,
                            LintKind::UseBeforeInit};
  bool First = true;
  for (LintKind K : Kinds) {
    Out += format("%s\"%s\": %zu", First ? "" : ", ", lintKindName(K),
                  Report.count(K));
    First = false;
  }
  Out += "},\n  \"findings\": [";
  for (size_t I = 0; I < Report.Findings.size(); ++I) {
    const LintFinding &F = Report.Findings[I];
    Out += I == 0 ? "\n" : ",\n";
    Out += format("    {\"kind\": \"%s\", \"function\": \"%s\", "
                  "\"line\": %d, \"message\": \"%s\"}",
                  lintKindName(F.Kind), jsonEscape(F.Function).c_str(),
                  F.Line, jsonEscape(F.Message).c_str());
  }
  Out += Report.Findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}

} // namespace sbi
