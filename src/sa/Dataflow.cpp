//===- sa/Dataflow.cpp - Interval/constant dataflow over MicroC CFGs ------===//

#include "sa/Dataflow.h"

#include "lang/Intrinsics.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>
#include <optional>

namespace sbi {

//===----------------------------------------------------------------------===//
// AbsVal lattice
//===----------------------------------------------------------------------===//

AbsVal AbsVal::join(const AbsVal &A, const AbsVal &B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  AbsVal R;
  R.HasOther = A.HasOther || B.HasOther;
  if (A.HasInt && B.HasInt) {
    R.HasInt = true;
    R.Lo = std::min(A.Lo, B.Lo);
    R.Hi = std::max(A.Hi, B.Hi);
  } else if (A.HasInt) {
    R.HasInt = true;
    R.Lo = A.Lo;
    R.Hi = A.Hi;
  } else if (B.HasInt) {
    R.HasInt = true;
    R.Lo = B.Lo;
    R.Hi = B.Hi;
  }
  return R;
}

AbsVal AbsVal::widen(const AbsVal &Old, const AbsVal &New) {
  AbsVal J = join(Old, New);
  if (Old.HasInt && J.HasInt) {
    if (J.Lo < Old.Lo)
      J.Lo = INT64_MIN;
    if (J.Hi > Old.Hi)
      J.Hi = INT64_MAX;
  }
  return J;
}

AbsVal AbsVal::meetInterval(int64_t MeetLo, int64_t MeetHi,
                            bool KeepOther) const {
  AbsVal R;
  R.HasOther = HasOther && KeepOther;
  if (HasInt) {
    R.Lo = std::max(Lo, MeetLo);
    R.Hi = std::min(Hi, MeetHi);
    R.HasInt = R.Lo <= R.Hi;
  }
  if (!R.HasInt) {
    R.Lo = 0;
    R.Hi = 0;
  }
  return R;
}

bool AbsEnv::joinFrom(const AbsEnv &Other, bool Widen) {
  if (!Other.Feasible)
    return false;
  if (!Feasible) {
    *this = Other;
    return true;
  }
  assert(Locals.size() == Other.Locals.size());
  bool Changed = false;
  for (size_t I = 0; I < Locals.size(); ++I) {
    AbsVal Next = Widen ? AbsVal::widen(Locals[I], Other.Locals[I])
                        : AbsVal::join(Locals[I], Other.Locals[I]);
    if (Next != Locals[I]) {
      Locals[I] = Next;
      Changed = true;
    }
    if (Other.MaybeDefault[I] && !MaybeDefault[I]) {
      MaybeDefault[I] = 1;
      Changed = true;
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Abstract interpreter
//===----------------------------------------------------------------------===//

namespace {

/// "The branch outcome set {CanFalse, CanTrue} as an abstract value".
AbsVal boolRange(bool CanFalse, bool CanTrue) {
  if (!CanFalse && !CanTrue)
    return AbsVal::bottom();
  return AbsVal::range(CanTrue && !CanFalse ? 1 : 0, CanTrue ? 1 : 0);
}

/// Wrapping arithmetic over intervals: exact corner arithmetic in 128 bits;
/// any corner outside int64 means the concrete op can wrap, and the result
/// widens to the full range (sound for the runtime's two's-complement wrap).
AbsVal arithRange(BinaryOp Op, const AbsVal &L, const AbsVal &R) {
  if (!L.HasInt || !R.HasInt)
    return AbsVal::bottom();
  using I128 = __int128;
  I128 Corners[4];
  switch (Op) {
  case BinaryOp::Add:
    Corners[0] = Corners[1] = I128(L.Lo) + R.Lo;
    Corners[2] = Corners[3] = I128(L.Hi) + R.Hi;
    break;
  case BinaryOp::Sub:
    Corners[0] = Corners[1] = I128(L.Lo) - R.Hi;
    Corners[2] = Corners[3] = I128(L.Hi) - R.Lo;
    break;
  case BinaryOp::Mul:
    Corners[0] = I128(L.Lo) * R.Lo;
    Corners[1] = I128(L.Lo) * R.Hi;
    Corners[2] = I128(L.Hi) * R.Lo;
    Corners[3] = I128(L.Hi) * R.Hi;
    break;
  default:
    assert(false && "not a wrapping arithmetic op");
    return AbsVal::topInt();
  }
  I128 Min = Corners[0], Max = Corners[0];
  for (I128 C : Corners) {
    Min = std::min(Min, C);
    Max = std::max(Max, C);
  }
  if (Min < I128(INT64_MIN) || Max > I128(INT64_MAX))
    return AbsVal::topInt();
  return AbsVal::range(static_cast<int64_t>(Min), static_cast<int64_t>(Max));
}

AbsVal compareRange(BinaryOp Op, const AbsVal &L, const AbsVal &R) {
  // Ordered comparisons trap on non-ints, so only the int portions matter.
  if (!L.HasInt || !R.HasInt)
    return AbsVal::bottom();
  bool CanTrue = false, CanFalse = false;
  switch (Op) {
  case BinaryOp::Lt:
    CanTrue = L.Lo < R.Hi;
    CanFalse = L.Hi >= R.Lo;
    break;
  case BinaryOp::Le:
    CanTrue = L.Lo <= R.Hi;
    CanFalse = L.Hi > R.Lo;
    break;
  case BinaryOp::Gt:
    CanTrue = L.Hi > R.Lo;
    CanFalse = L.Lo <= R.Hi;
    break;
  case BinaryOp::Ge:
    CanTrue = L.Hi >= R.Lo;
    CanFalse = L.Lo < R.Hi;
    break;
  default:
    assert(false && "not an ordered comparison");
  }
  return boolRange(CanFalse, CanTrue);
}

/// Equality is defined on every kind pair (Value::equals), so non-int
/// portions participate: two may-be-non-int values can compare either way,
/// and an int never equals a non-int.
AbsVal equalityRange(BinaryOp Op, const AbsVal &L, const AbsVal &R) {
  if (L.isBottom() || R.isBottom())
    return AbsVal::bottom();
  bool CanEq = false, CanNe = false;
  if (L.HasInt && R.HasInt) {
    bool Intersect = L.Lo <= R.Hi && R.Lo <= L.Hi;
    CanEq = CanEq || Intersect;
    CanNe = CanNe || !(L.isIntSingleton() && R.isIntSingleton() && L.Lo == R.Lo);
  }
  if (L.HasOther && R.HasOther) {
    CanEq = true;
    CanNe = true;
  }
  if ((L.HasInt && R.HasOther) || (L.HasOther && R.HasInt))
    CanNe = true;
  if (Op == BinaryOp::Ne)
    std::swap(CanEq, CanNe);
  return boolRange(/*CanFalse=*/CanNe, /*CanTrue=*/CanEq);
}

/// A literal-shaped constant: an int literal or a negated int literal (the
/// parser represents -1 as Neg(IntLit 1)), folded with the runtime's
/// wrapping negation.
std::optional<int64_t> constLit(const Expr *E) {
  if (!E)
    return std::nullopt;
  if (E->Kind == ExprKind::IntLit)
    return static_cast<const IntLitExpr *>(E)->Value;
  if (E->Kind == ExprKind::Unary) {
    const auto &U = static_cast<const UnaryExpr &>(*E);
    if (U.Op == UnaryOp::Neg)
      if (auto V = constLit(U.Operand.get()))
        return static_cast<int64_t>(0 - static_cast<uint64_t>(*V));
  }
  return std::nullopt;
}

int64_t satAdd1(int64_t V) { return V == INT64_MAX ? V : V + 1; }
int64_t satSub1(int64_t V) { return V == INT64_MIN ? V : V + -1; }

/// The abstract transfer functions, parameterized over the interprocedural
/// facts (global values + return summaries) so the same code serves the
/// model builder's fixpoints and StaticModel::replayBlock.
class AbsInterp {
public:
  using SummaryFn = std::function<AbsVal(const FuncDecl *)>;

  AbsInterp(const std::vector<AbsVal> &Globals, SummaryFn Summary)
      : Globals(Globals), Summary(std::move(Summary)) {}

  AbsVal evalExpr(const Expr &E, const AbsEnv &Env, EvalSink *Sink) const;

  /// Transfers one straight-line statement; returns false when execution
  /// provably never completes it (the rest of the block is dead).
  bool transferItem(const Stmt &S, AbsEnv &Env, EvalSink *Sink) const;

  bool transferItems(const CfgBlock &B, AbsEnv &Env, EvalSink *Sink) const {
    for (const Stmt *S : B.Items)
      if (!transferItem(*S, Env, Sink))
        return false;
    return true;
  }

  /// Evaluates a Branch terminator's condition (constant 1 when absent) and
  /// reports it to the sink as the branch site's observation.
  AbsVal evalBranchCond(const CfgBlock &B, const AbsEnv &Env,
                        EvalSink *Sink) const {
    assert(B.Kind == CfgBlock::Term::Branch);
    AbsVal C = B.Cond ? evalExpr(*B.Cond, Env, Sink) : AbsVal::constant(1);
    if (Sink)
      Sink->onBranch(B.BranchNodeId, C);
    return C;
  }

  /// Refines \p Env with the knowledge that \p Cond evaluated truthy
  /// (\p Taken) or falsy (!\p Taken) without trapping.
  void refineEdge(const Expr *Cond, bool Taken, AbsEnv &Env) const;

private:
  AbsVal evalCall(const CallExpr &Call, const AbsEnv &Env,
                  EvalSink *Sink) const;
  AbsVal intrinsicResult(int IntrinsicId,
                         const std::vector<AbsVal> &Args) const;
  void refineLocal(const VarRefExpr &Ref, const AbsVal &NewVal,
                   AbsEnv &Env) const;

  const std::vector<AbsVal> &Globals;
  SummaryFn Summary;
};

AbsVal AbsInterp::evalExpr(const Expr &E, const AbsEnv &Env,
                           EvalSink *Sink) const {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return AbsVal::constant(static_cast<const IntLitExpr &>(E).Value);
  case ExprKind::StrLit:
  case ExprKind::NullLit:
  case ExprKind::New:
    return AbsVal::other();
  case ExprKind::VarRef: {
    const auto &Ref = static_cast<const VarRefExpr &>(E);
    if (Ref.Slot.IsGlobal)
      return Globals[static_cast<size_t>(Ref.Slot.Index)];
    size_t Idx = static_cast<size_t>(Ref.Slot.Index);
    if (Sink)
      Sink->onVarRead(Ref, Env.MaybeDefault[Idx] != 0);
    return Env.Locals[Idx];
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    AbsVal V = evalExpr(*U.Operand, Env, Sink);
    if (U.Op == UnaryOp::Not)
      // Truthiness traps on non-ints; only the int portion flows on.
      return boolRange(/*CanFalse=*/V.hasNonzeroInt(),
                       /*CanTrue=*/V.hasZeroInt());
    // Neg wraps only at INT64_MIN.
    if (!V.HasInt)
      return AbsVal::bottom();
    if (V.Lo == INT64_MIN)
      return AbsVal::topInt();
    return AbsVal::range(-V.Hi, -V.Lo);
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    if (Bin.Op == BinaryOp::And || Bin.Op == BinaryOp::Or) {
      AbsVal L = evalExpr(*Bin.Lhs, Env, Sink);
      // The short-circuit test is itself a branch site on the lhs value.
      if (Sink)
        Sink->onBranch(Bin.Id, L);
      bool LhsTrue = L.hasNonzeroInt();
      bool LhsFalse = L.hasZeroInt();
      AbsVal Res = AbsVal::bottom();
      bool ShortVal = Bin.Op == BinaryOp::Or;
      if (Bin.Op == BinaryOp::And ? LhsFalse : LhsTrue)
        Res = AbsVal::join(Res, AbsVal::constant(ShortVal ? 1 : 0));
      // The rhs only runs (and its inner sites only fire) when the lhs
      // does not short-circuit.
      if (Bin.Op == BinaryOp::And ? LhsTrue : LhsFalse) {
        AbsVal R = evalExpr(*Bin.Rhs, Env, Sink);
        Res = AbsVal::join(
            Res, boolRange(/*CanFalse=*/R.hasZeroInt(),
                           /*CanTrue=*/R.hasNonzeroInt()));
      }
      return Res;
    }
    AbsVal L = evalExpr(*Bin.Lhs, Env, Sink);
    AbsVal R = evalExpr(*Bin.Rhs, Env, Sink);
    switch (Bin.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
      return arithRange(Bin.Op, L, R);
    case BinaryOp::Div:
      // Traps on zero divisors; INT64_MIN / -1 wraps. Not worth bounding.
      if (!L.HasInt || !R.HasInt || R == AbsVal::constant(0))
        return AbsVal::bottom();
      return AbsVal::topInt();
    case BinaryOp::Rem:
      if (!L.HasInt || !R.HasInt || R == AbsVal::constant(0))
        return AbsVal::bottom();
      return AbsVal::topInt();
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return compareRange(Bin.Op, L, R);
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      return equalityRange(Bin.Op, L, R);
    default:
      assert(false && "unhandled binary op");
      return AbsVal::top();
    }
  }
  case ExprKind::Index: {
    const auto &Idx = static_cast<const IndexExpr &>(E);
    AbsVal Base = evalExpr(*Idx.Base, Env, Sink);
    AbsVal Sub = evalExpr(*Idx.Subscript, Env, Sink);
    if (Base.isBottom() || Sub.isBottom())
      return AbsVal::bottom();
    return AbsVal::top(); // Array elements are dynamically typed.
  }
  case ExprKind::Field: {
    const auto &Fld = static_cast<const FieldExpr &>(E);
    AbsVal Base = evalExpr(*Fld.Base, Env, Sink);
    if (Base.isBottom())
      return AbsVal::bottom();
    return AbsVal::top();
  }
  case ExprKind::Call:
    return evalCall(static_cast<const CallExpr &>(E), Env, Sink);
  }
  assert(false && "unhandled expression kind");
  return AbsVal::top();
}

AbsVal AbsInterp::evalCall(const CallExpr &Call, const AbsEnv &Env,
                           EvalSink *Sink) const {
  std::vector<AbsVal> Args;
  Args.reserve(Call.Args.size());
  for (const auto &Arg : Call.Args) {
    AbsVal V = evalExpr(*Arg, Env, Sink);
    if (V.isBottom())
      return AbsVal::bottom();
    Args.push_back(V);
  }
  AbsVal Result = Call.Target ? Summary(Call.Target)
                              : intrinsicResult(Call.IntrinsicId, Args);
  // A bottom result means the callee provably never returns normally, so
  // the returns-scheme observation after the call never fires either.
  if (Sink && !Result.isBottom())
    Sink->onCallReturn(Call, Result);
  return Result;
}

AbsVal AbsInterp::intrinsicResult(int IntrinsicId,
                                  const std::vector<AbsVal> &Args) const {
  switch (static_cast<Intrinsic>(IntrinsicId)) {
  case Intrinsic::Len:
  case Intrinsic::Nargs:
    return AbsVal::range(0, INT64_MAX);
  case Intrinsic::Strcmp:
    return AbsVal::range(-1, 1);
  case Intrinsic::Min:
  case Intrinsic::Max: {
    if (Args.size() != 2 || !Args[0].HasInt || !Args[1].HasInt)
      return AbsVal::topInt();
    const AbsVal &A = Args[0], &B = Args[1];
    if (static_cast<Intrinsic>(IntrinsicId) == Intrinsic::Min)
      return AbsVal::range(std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi));
    return AbsVal::range(std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
  }
  case Intrinsic::Abs: {
    if (Args.size() != 1 || !Args[0].HasInt || Args[0].Lo == INT64_MIN)
      return AbsVal::topInt();
    const AbsVal &A = Args[0];
    int64_t Lo = A.Lo >= 0 ? A.Lo : (A.Hi <= 0 ? -A.Hi : 0);
    return AbsVal::range(Lo, std::max(-A.Lo, A.Hi));
  }
  default:
    return intrinsicInfo(IntrinsicId).ReturnsInt ? AbsVal::topInt()
                                                 : AbsVal::other();
  }
}

bool AbsInterp::transferItem(const Stmt &S, AbsEnv &Env,
                             EvalSink *Sink) const {
  switch (S.Kind) {
  case StmtKind::Expr: {
    AbsVal V = evalExpr(*static_cast<const ExprStmt &>(S).E, Env, Sink);
    return !V.isBottom();
  }
  case StmtKind::Assign: {
    const auto &Assign = static_cast<const AssignStmt &>(S);
    // The runtime evaluates the value first, then resolves the target.
    AbsVal V = evalExpr(*Assign.Value, Env, Sink);
    if (V.isBottom())
      return false;
    switch (Assign.Target->Kind) {
    case ExprKind::VarRef: {
      const auto &Ref = static_cast<const VarRefExpr &>(*Assign.Target);
      // Kind-enforced store: only the declared-kind portion survives; if
      // none of the value can match, the store always traps.
      AbsVal Stored = Ref.DeclaredKind == VarKind::Int
                          ? V.intOnly()
                          : (V.HasOther ? AbsVal::other() : AbsVal::bottom());
      if (Stored.isBottom())
        return false;
      if (!Ref.Slot.IsGlobal) {
        size_t Idx = static_cast<size_t>(Ref.Slot.Index);
        Env.Locals[Idx] = Stored;
        Env.MaybeDefault[Idx] = 0;
      }
      if (Sink && Assign.TargetIsIntVar)
        Sink->onScalarStore(S, Stored, Env);
      return true;
    }
    case ExprKind::Index: {
      const auto &Idx = static_cast<const IndexExpr &>(*Assign.Target);
      return !evalExpr(*Idx.Base, Env, Sink).isBottom() &&
             !evalExpr(*Idx.Subscript, Env, Sink).isBottom();
    }
    case ExprKind::Field:
      return !evalExpr(*static_cast<const FieldExpr &>(*Assign.Target).Base,
                       Env, Sink)
                  .isBottom();
    default:
      assert(false && "invalid assignment target survived Sema");
      return true;
    }
  }
  case StmtKind::VarDecl: {
    const auto &Decl = static_cast<const VarDeclStmt &>(S);
    assert(!Decl.Slot.IsGlobal && "local declaration with global slot");
    size_t Idx = static_cast<size_t>(Decl.Slot.Index);
    if (!Decl.Init) {
      Env.Locals[Idx] = Decl.DeclKind == VarKind::Int ? AbsVal::constant(0)
                                                      : AbsVal::other();
      Env.MaybeDefault[Idx] = 1;
      return true;
    }
    AbsVal V = evalExpr(*Decl.Init, Env, Sink);
    if (V.isBottom())
      return false;
    AbsVal Stored = Decl.DeclKind == VarKind::Int
                        ? V.intOnly()
                        : (V.HasOther ? AbsVal::other() : AbsVal::bottom());
    if (Stored.isBottom())
      return false;
    Env.Locals[Idx] = Stored;
    Env.MaybeDefault[Idx] = 0;
    if (Sink && Decl.DeclKind == VarKind::Int)
      Sink->onScalarStore(S, Stored, Env);
    return true;
  }
  default:
    assert(false && "non-straight-line statement in block items");
    return true;
  }
}

void AbsInterp::refineLocal(const VarRefExpr &Ref, const AbsVal &NewVal,
                            AbsEnv &Env) const {
  if (Ref.Slot.IsGlobal)
    return; // Globals are flow-insensitive; no refinement.
  Env.Locals[static_cast<size_t>(Ref.Slot.Index)] = NewVal;
}

void AbsInterp::refineEdge(const Expr *Cond, bool Taken, AbsEnv &Env) const {
  if (!Cond)
    return;
  switch (Cond->Kind) {
  case ExprKind::VarRef: {
    const auto &Ref = static_cast<const VarRefExpr &>(*Cond);
    if (Ref.Slot.IsGlobal)
      return;
    AbsVal V = Env.Locals[static_cast<size_t>(Ref.Slot.Index)];
    // Surviving the truthiness test implies the value was an int.
    if (!Taken) {
      refineLocal(Ref, V.meetInterval(0, 0, /*KeepOther=*/false), Env);
      return;
    }
    AbsVal NV = V.intOnly();
    // "Nonzero" is not an interval; trim zeros at the boundaries.
    if (NV.HasInt && NV.Lo == 0 && NV.Hi == 0)
      NV.HasInt = false;
    else if (NV.HasInt && NV.Lo == 0)
      NV.Lo = 1;
    else if (NV.HasInt && NV.Hi == 0)
      NV.Hi = -1;
    refineLocal(Ref, NV, Env);
    return;
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(*Cond);
    if (U.Op == UnaryOp::Not)
      refineEdge(U.Operand.get(), !Taken, Env);
    return;
  }
  case ExprKind::Binary:
    break;
  default:
    return;
  }

  const auto &Bin = static_cast<const BinaryExpr &>(*Cond);
  if (Bin.Op == BinaryOp::And && Taken) {
    refineEdge(Bin.Lhs.get(), true, Env);
    refineEdge(Bin.Rhs.get(), true, Env);
    return;
  }
  if (Bin.Op == BinaryOp::Or && !Taken) {
    refineEdge(Bin.Lhs.get(), false, Env);
    refineEdge(Bin.Rhs.get(), false, Env);
    return;
  }

  // x REL c / c REL x with a literal-shaped constant.
  const VarRefExpr *Var = nullptr;
  std::optional<int64_t> Lit;
  bool VarOnLeft = true;
  if (Bin.Lhs->Kind == ExprKind::VarRef && (Lit = constLit(Bin.Rhs.get()))) {
    Var = static_cast<const VarRefExpr *>(Bin.Lhs.get());
  } else if (Bin.Rhs->Kind == ExprKind::VarRef &&
             (Lit = constLit(Bin.Lhs.get()))) {
    Var = static_cast<const VarRefExpr *>(Bin.Rhs.get());
    VarOnLeft = false;
  }
  if (!Var || Var->Slot.IsGlobal)
    return;
  AbsVal V = Env.Locals[static_cast<size_t>(Var->Slot.Index)];
  int64_t C = *Lit;

  // Normalize to "var REL C".
  BinaryOp Op = Bin.Op;
  if (!VarOnLeft) {
    switch (Op) {
    case BinaryOp::Lt: Op = BinaryOp::Gt; break;
    case BinaryOp::Le: Op = BinaryOp::Ge; break;
    case BinaryOp::Gt: Op = BinaryOp::Lt; break;
    case BinaryOp::Ge: Op = BinaryOp::Le; break;
    default: break; // Eq/Ne are symmetric.
    }
  }
  // Fold the negation of an ordered comparison into its dual.
  if (!Taken) {
    switch (Op) {
    case BinaryOp::Lt: Op = BinaryOp::Ge; break;
    case BinaryOp::Le: Op = BinaryOp::Gt; break;
    case BinaryOp::Gt: Op = BinaryOp::Le; break;
    case BinaryOp::Ge: Op = BinaryOp::Lt; break;
    case BinaryOp::Eq: Op = BinaryOp::Ne; break;
    case BinaryOp::Ne: Op = BinaryOp::Eq; break;
    default: return;
    }
  }

  switch (Op) {
  case BinaryOp::Lt:
    refineLocal(*Var, V.meetInterval(INT64_MIN, satSub1(C), false), Env);
    return;
  case BinaryOp::Le:
    refineLocal(*Var, V.meetInterval(INT64_MIN, C, false), Env);
    return;
  case BinaryOp::Gt:
    refineLocal(*Var, V.meetInterval(satAdd1(C), INT64_MAX, false), Env);
    return;
  case BinaryOp::Ge:
    refineLocal(*Var, V.meetInterval(C, INT64_MAX, false), Env);
    return;
  case BinaryOp::Eq:
    // Equal to an int constant implies the value IS that int.
    refineLocal(*Var, V.meetInterval(C, C, false), Env);
    return;
  case BinaryOp::Ne: {
    // Not-equal keeps non-int possibilities (an str compares unequal to
    // any int without trapping); trim the constant at interval boundaries.
    AbsVal NV = V;
    if (NV.HasInt && NV.Lo == C && NV.Hi == C)
      NV.HasInt = false;
    else if (NV.HasInt && NV.Lo == C)
      NV.Lo = satAdd1(C);
    else if (NV.HasInt && NV.Hi == C)
      NV.Hi = satSub1(C);
    refineLocal(*Var, NV, Env);
    return;
  }
  default:
    return;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Whole-program model construction
//===----------------------------------------------------------------------===//

namespace {

/// Walks every expression in a statement subtree.
void forEachExpr(const Expr &E, const std::function<void(const Expr &)> &Fn);

void forEachExprChild(const Expr &E,
                      const std::function<void(const Expr &)> &Fn) {
  switch (E.Kind) {
  case ExprKind::Unary:
    forEachExpr(*static_cast<const UnaryExpr &>(E).Operand, Fn);
    return;
  case ExprKind::Binary:
    forEachExpr(*static_cast<const BinaryExpr &>(E).Lhs, Fn);
    forEachExpr(*static_cast<const BinaryExpr &>(E).Rhs, Fn);
    return;
  case ExprKind::Index:
    forEachExpr(*static_cast<const IndexExpr &>(E).Base, Fn);
    forEachExpr(*static_cast<const IndexExpr &>(E).Subscript, Fn);
    return;
  case ExprKind::Field:
    forEachExpr(*static_cast<const FieldExpr &>(E).Base, Fn);
    return;
  case ExprKind::Call:
    for (const auto &Arg : static_cast<const CallExpr &>(E).Args)
      forEachExpr(*Arg, Fn);
    return;
  default:
    return;
  }
}

void forEachExpr(const Expr &E, const std::function<void(const Expr &)> &Fn) {
  Fn(E);
  forEachExprChild(E, Fn);
}

void forEachStmtExpr(const Stmt &S,
                     const std::function<void(const Expr &)> &Fn) {
  switch (S.Kind) {
  case StmtKind::Expr:
    forEachExpr(*static_cast<const ExprStmt &>(S).E, Fn);
    return;
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    forEachExpr(*A.Target, Fn);
    forEachExpr(*A.Value, Fn);
    return;
  }
  case StmtKind::VarDecl: {
    const auto &D = static_cast<const VarDeclStmt &>(S);
    if (D.Init)
      forEachExpr(*D.Init, Fn);
    return;
  }
  case StmtKind::Block:
    for (const auto &Child : static_cast<const BlockStmt &>(S).Body)
      forEachStmtExpr(*Child, Fn);
    return;
  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    forEachExpr(*If.Cond, Fn);
    forEachStmtExpr(*If.Then, Fn);
    if (If.Else)
      forEachStmtExpr(*If.Else, Fn);
    return;
  }
  case StmtKind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    forEachExpr(*W.Cond, Fn);
    forEachStmtExpr(*W.Body, Fn);
    return;
  }
  case StmtKind::For: {
    const auto &F = static_cast<const ForStmt &>(S);
    if (F.Init)
      forEachStmtExpr(*F.Init, Fn);
    if (F.Cond)
      forEachExpr(*F.Cond, Fn);
    if (F.Step)
      forEachStmtExpr(*F.Step, Fn);
    forEachStmtExpr(*F.Body, Fn);
    return;
  }
  case StmtKind::Return: {
    const auto &R = static_cast<const ReturnStmt &>(S);
    if (R.Value)
      forEachExpr(*R.Value, Fn);
    return;
  }
  default:
    return;
  }
}

constexpr int WidenThreshold = 20;

} // namespace

class ModelBuilder {
public:
  ModelBuilder(StaticModel &M, const Program &Prog) : M(M), Prog(Prog) {}

  void run() {
    M.Prog = &Prog;
    computeGlobals();
    computeCallGraph();
    computeReachability();
    // Tarjan emits SCCs callees-first (reverse topological order of the
    // condensation), which is exactly the summary evaluation order.
    for (const auto &SCC : stronglyConnectedComponents())
      processSCC(SCC);
  }

private:
  StaticModel &M;
  const Program &Prog;
  std::map<const FuncDecl *, std::vector<const FuncDecl *>> CallEdges;
  std::vector<const FuncDecl *> Roots;
  std::vector<const FuncDecl *> ReachableFuncs; // Deterministic order.
  std::map<const FuncDecl *, AbsVal> Summaries;

  void computeGlobals() {
    // A global is a known constant when it is never the target of an
    // assignment anywhere in the program and its initializer is a foldable
    // literal (or absent). Everything else is top-by-kind.
    std::vector<uint8_t> Assigned(Prog.Globals.size(), 0);
    for (const auto &F : Prog.Functions)
      forEachStmtAssigns(*F->Body, Assigned);
    M.GlobalVals.resize(Prog.Globals.size());
    for (const auto &G : Prog.Globals) {
      size_t Slot = static_cast<size_t>(G->Slot);
      if (G->Kind != VarKind::Int) {
        M.GlobalVals[Slot] = AbsVal::other();
        continue;
      }
      std::optional<int64_t> Init =
          G->Init ? constLit(G->Init.get()) : std::optional<int64_t>(0);
      M.GlobalVals[Slot] = (Init && !Assigned[Slot])
                               ? AbsVal::constant(*Init)
                               : AbsVal::topInt();
    }
  }

  static void forEachStmtAssigns(const Stmt &S, std::vector<uint8_t> &Out) {
    switch (S.Kind) {
    case StmtKind::Assign: {
      const auto &A = static_cast<const AssignStmt &>(S);
      if (A.Target->Kind == ExprKind::VarRef) {
        const auto &Ref = static_cast<const VarRefExpr &>(*A.Target);
        if (Ref.Slot.IsGlobal)
          Out[static_cast<size_t>(Ref.Slot.Index)] = 1;
      }
      return;
    }
    case StmtKind::Block:
      for (const auto &Child : static_cast<const BlockStmt &>(S).Body)
        forEachStmtAssigns(*Child, Out);
      return;
    case StmtKind::If: {
      const auto &If = static_cast<const IfStmt &>(S);
      forEachStmtAssigns(*If.Then, Out);
      if (If.Else)
        forEachStmtAssigns(*If.Else, Out);
      return;
    }
    case StmtKind::While:
      forEachStmtAssigns(*static_cast<const WhileStmt &>(S).Body, Out);
      return;
    case StmtKind::For: {
      const auto &F = static_cast<const ForStmt &>(S);
      if (F.Init)
        forEachStmtAssigns(*F.Init, Out);
      if (F.Step)
        forEachStmtAssigns(*F.Step, Out);
      forEachStmtAssigns(*F.Body, Out);
      return;
    }
    default:
      return;
    }
  }

  void computeCallGraph() {
    auto collectCalls = [&](const FuncDecl *From, const Expr &E) {
      if (E.Kind == ExprKind::Call) {
        const auto &Call = static_cast<const CallExpr &>(E);
        if (Call.Target) {
          if (From)
            CallEdges[From].push_back(Call.Target);
          else
            Roots.push_back(Call.Target);
        }
      }
    };
    for (const auto &F : Prog.Functions)
      forEachStmtExpr(*F->Body, [&](const Expr &E) { collectCalls(F.get(), E); });
    // Global initializers run at startup: anything they call is a root.
    for (const auto &G : Prog.Globals)
      if (G->Init)
        forEachExpr(*G->Init,
                    [&](const Expr &E) { collectCalls(nullptr, E); });
    if (const FuncDecl *Main = Prog.findFunction("main"))
      Roots.push_back(Main);
  }

  void computeReachability() {
    std::map<const FuncDecl *, bool> Seen;
    std::vector<const FuncDecl *> Work(Roots);
    for (const FuncDecl *F : Work)
      Seen[F] = true;
    while (!Work.empty()) {
      const FuncDecl *F = Work.back();
      Work.pop_back();
      for (const FuncDecl *Callee : CallEdges[F])
        if (!Seen[Callee]) {
          Seen[Callee] = true;
          Work.push_back(Callee);
        }
    }
    for (const auto &F : Prog.Functions)
      if (Seen[F.get()])
        ReachableFuncs.push_back(F.get());
  }

  std::vector<std::vector<const FuncDecl *>> stronglyConnectedComponents() {
    std::vector<std::vector<const FuncDecl *>> SCCs;
    std::map<const FuncDecl *, int> Index, Low;
    std::map<const FuncDecl *, bool> OnStack;
    std::vector<const FuncDecl *> Stack;
    int NextIndex = 0;

    std::function<void(const FuncDecl *)> strongConnect =
        [&](const FuncDecl *F) {
          Index[F] = Low[F] = NextIndex++;
          Stack.push_back(F);
          OnStack[F] = true;
          for (const FuncDecl *G : CallEdges[F]) {
            if (!Index.count(G)) {
              strongConnect(G);
              Low[F] = std::min(Low[F], Low[G]);
            } else if (OnStack[G]) {
              Low[F] = std::min(Low[F], Index[G]);
            }
          }
          if (Low[F] == Index[F]) {
            std::vector<const FuncDecl *> SCC;
            const FuncDecl *Member;
            do {
              Member = Stack.back();
              Stack.pop_back();
              OnStack[Member] = false;
              SCC.push_back(Member);
            } while (Member != F);
            SCCs.push_back(std::move(SCC));
          }
        };

    for (const FuncDecl *F : ReachableFuncs)
      if (!Index.count(F))
        strongConnect(F);
    return SCCs;
  }

  bool hasSelfLoop(const FuncDecl *F) {
    for (const FuncDecl *G : CallEdges[F])
      if (G == F)
        return true;
    return false;
  }

  void processSCC(const std::vector<const FuncDecl *> &SCC) {
    bool Recursive = SCC.size() > 1 || hasSelfLoop(SCC.front());
    if (Recursive)
      // A recursive cycle may compute anything; top keeps the summaries
      // sound without iterating the cycle.
      for (const FuncDecl *F : SCC)
        Summaries[F] = AbsVal::top();
    for (const FuncDecl *F : SCC) {
      AbsVal Ret = analyzeFunction(*F);
      if (!Recursive)
        Summaries[F] = Ret;
      M.Funcs.at(F).Return = Summaries[F];
    }
  }

  AbsInterp interp() const {
    return AbsInterp(M.GlobalVals, [this](const FuncDecl *F) {
      auto It = Summaries.find(F);
      return It != Summaries.end() ? It->second : AbsVal::top();
    });
  }

  /// Runs the intraprocedural fixpoint for \p F, stores the converged
  /// block-entry environments, and returns the function's abstract return
  /// value under the current summaries.
  AbsVal analyzeFunction(const FuncDecl &F) {
    auto [It, Inserted] = M.Funcs.try_emplace(&F);
    StaticModel::FuncAnalysis &A = It->second;
    assert(Inserted && "function analyzed twice");
    A.G = Cfg::build(F);
    size_t N = A.G.numBlocks();
    A.BlockEntry.assign(N, AbsEnv{});

    AbsEnv Entry;
    Entry.Feasible = true;
    // Parameter binding is unchecked (any value can arrive) and slots past
    // the parameters are overwritten by their declarations before any
    // well-scoped read, so top is both sound and precise here.
    Entry.Locals.assign(static_cast<size_t>(F.NumLocals), AbsVal::top());
    Entry.MaybeDefault.assign(static_cast<size_t>(F.NumLocals), 0);
    A.BlockEntry[static_cast<size_t>(A.G.entry())] = Entry;

    AbsInterp I = interp();
    std::vector<int> JoinCount(N, 0);
    std::deque<int> Work{A.G.entry()};
    std::vector<uint8_t> InWork(N, 0);
    InWork[static_cast<size_t>(A.G.entry())] = 1;

    auto propagate = [&](int To, const AbsEnv &Env) {
      size_t T = static_cast<size_t>(To);
      bool Widen = ++JoinCount[T] > WidenThreshold;
      if (A.BlockEntry[T].joinFrom(Env, Widen) && !InWork[T]) {
        InWork[T] = 1;
        Work.push_back(To);
      }
    };

    while (!Work.empty()) {
      int B = Work.front();
      Work.pop_front();
      InWork[static_cast<size_t>(B)] = 0;
      AbsEnv Env = A.BlockEntry[static_cast<size_t>(B)];
      if (!Env.Feasible)
        continue;
      const CfgBlock &Blk = A.G.block(B);
      if (!I.transferItems(Blk, Env, nullptr))
        continue; // Execution dies inside the block.
      switch (Blk.Kind) {
      case CfgBlock::Term::Goto:
        propagate(Blk.Succ[0], Env);
        break;
      case CfgBlock::Term::Branch: {
        AbsVal C = I.evalBranchCond(Blk, Env, nullptr);
        if (C.hasNonzeroInt()) {
          AbsEnv TrueEnv = Env;
          I.refineEdge(Blk.Cond, true, TrueEnv);
          propagate(Blk.Succ[0], TrueEnv);
        }
        if (C.hasZeroInt()) {
          AbsEnv FalseEnv = Env;
          I.refineEdge(Blk.Cond, false, FalseEnv);
          propagate(Blk.Succ[1], FalseEnv);
        }
        break;
      }
      case CfgBlock::Term::Return:
      case CfgBlock::Term::Exit:
        break;
      }
    }

    // Collect the return summary from the converged environments.
    AbsVal Ret = AbsVal::bottom();
    for (size_t B = 0; B < N; ++B) {
      if (!A.BlockEntry[B].Feasible)
        continue;
      const CfgBlock &Blk = A.G.block(static_cast<int>(B));
      AbsEnv Env = A.BlockEntry[B];
      if (!I.transferItems(Blk, Env, nullptr))
        continue;
      if (Blk.Kind == CfgBlock::Term::Return) {
        AbsVal V = Blk.Ret->Value ? I.evalExpr(*Blk.Ret->Value, Env, nullptr)
                                  : AbsVal::other(); // return; yields unit
        Ret = AbsVal::join(Ret, V);
      } else if (Blk.Kind == CfgBlock::Term::Goto &&
                 Blk.Succ[0] == A.G.exit()) {
        Ret = AbsVal::join(Ret, AbsVal::other()); // Fall-off-end unit.
      }
    }
    return Ret;
  }
};

StaticModel StaticModel::build(const Program &Prog) {
  StaticModel M;
  ModelBuilder(M, Prog).run();
  return M;
}

AbsVal StaticModel::returnSummary(const FuncDecl *F) const {
  auto It = Funcs.find(F);
  return It != Funcs.end() ? It->second.Return : AbsVal::top();
}

void StaticModel::replayBlock(const FuncDecl *F, int Block,
                              EvalSink &Sink) const {
  const FuncAnalysis &A = Funcs.at(F);
  const AbsEnv &Entry = A.BlockEntry[static_cast<size_t>(Block)];
  if (!Entry.Feasible)
    return;
  AbsInterp I(GlobalVals,
              [this](const FuncDecl *G) { return returnSummary(G); });
  AbsEnv Env = Entry;
  const CfgBlock &Blk = A.G.block(Block);
  if (!I.transferItems(Blk, Env, &Sink))
    return;
  if (Blk.Kind == CfgBlock::Term::Branch)
    I.evalBranchCond(Blk, Env, &Sink);
  else if (Blk.Kind == CfgBlock::Term::Return && Blk.Ret->Value)
    I.evalExpr(*Blk.Ret->Value, Env, &Sink);
}

} // namespace sbi
