//===- sa/Verify.cpp - Dynamic verification of prune claims ---------------===//

#include "sa/Verify.h"

#include "support/StringUtils.h"

#include <algorithm>

namespace sbi {

namespace {

uint32_t lookupCount(const std::vector<std::pair<uint32_t, uint32_t>> &Pairs,
                     uint32_t Id) {
  auto It = std::lower_bound(
      Pairs.begin(), Pairs.end(), Id,
      [](const std::pair<uint32_t, uint32_t> &P, uint32_t Key) {
        return P.first < Key;
      });
  return (It != Pairs.end() && It->first == Id) ? It->second : 0;
}

} // namespace

PruneVerification verifyPruneAgainstReports(const PruneResult &Prune,
                                            const SiteTable &Table,
                                            const ReportSet &Reports) {
  PruneVerification V;
  auto fail = [&](std::string Message) {
    if (V.Ok) {
      V.Ok = false;
      V.FirstError = std::move(Message);
    }
  };

  for (size_t Run = 0; Run < Reports.size(); ++Run) {
    const RawReport &R = Reports[Run].Counts;
    ++V.RunsChecked;

    for (const auto &[SiteId, Obs] : R.SiteObservations) {
      if (SiteId >= Prune.numSites() || Obs == 0)
        continue;
      const SitePruneInfo &Info = Prune.Sites[SiteId];
      if (Info.Class == SiteClass::Live)
        continue;
      const SiteInfo &Site = Table.site(SiteId);
      if (Info.Class == SiteClass::Unreachable) {
        fail(format("run %zu: site %u (%s, %s:%d) observed %u times but "
                    "classified unreachable",
                    Run, SiteId, schemeName(Site.SchemeKind),
                    Site.Function.c_str(), Site.Line, Obs));
        continue;
      }
      // ConstantOutcome: every always-true predicate must be true on all
      // Obs observations; every other predicate on none.
      bool Matched = true;
      for (uint32_t I = 0; I < Site.NumPredicates; ++I) {
        uint32_t Pred = Site.FirstPredicate + I;
        uint32_t Expected =
            (Info.AlwaysTrueMask & (1u << I)) != 0 ? Obs : 0;
        uint32_t Actual = lookupCount(R.TruePredicates, Pred);
        if (Actual != Expected) {
          Matched = false;
          fail(format("run %zu: predicate %u at constant site %u (%s:%d) "
                      "counted true %u times, statically expected %u",
                      Run, Pred, SiteId, Site.Function.c_str(), Site.Line,
                      Actual, Expected));
        }
      }
      if (Matched)
        ++V.ConstantObservationsChecked;
    }

    // Belt and braces: a true count for a pruned site's predicate must not
    // exist without a matching site observation entry either.
    for (const auto &[PredId, Count] : R.TruePredicates) {
      if (Count == 0 || PredId >= Table.numPredicates())
        continue;
      uint32_t SiteId = Table.predicate(PredId).Site;
      if (Prune.Sites[SiteId].Class == SiteClass::Unreachable)
        fail(format("run %zu: predicate %u true %u times but its site %u "
                    "is classified unreachable",
                    Run, PredId, Count, SiteId));
    }
  }
  return V;
}

} // namespace sbi
