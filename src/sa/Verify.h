//===- sa/Verify.h - Dynamic verification of prune claims -----------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks a PruneResult's static claims against the dynamic record of an
/// (ideally unpruned, fully monitored) reference campaign:
///
///   - Unreachable sites must have zero observations and zero true counts
///     in every run.
///   - ConstantOutcome sites may be observed, but each always-true
///     predicate's true count must equal the site's observation count and
///     each never-true predicate's count must be zero — in every run.
///
/// A failure here means the static analysis was unsound for this program;
/// the differential tests and `sbi analyze --static-prune` both run it.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SA_VERIFY_H
#define SBI_SA_VERIFY_H

#include "feedback/Report.h"
#include "sa/Prune.h"

#include <cstdint>
#include <string>

namespace sbi {

struct PruneVerification {
  bool Ok = true;
  /// Reports inspected.
  uint64_t RunsChecked = 0;
  /// Observations of ConstantOutcome sites whose predicate counts matched
  /// the static always-true mask exactly.
  uint64_t ConstantObservationsChecked = 0;
  /// First mismatch, empty when Ok.
  std::string FirstError;
};

PruneVerification verifyPruneAgainstReports(const PruneResult &Prune,
                                            const SiteTable &Table,
                                            const ReportSet &Reports);

} // namespace sbi

#endif // SBI_SA_VERIFY_H
