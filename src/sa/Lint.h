//===- sa/Lint.h - Static findings over MicroC subjects -------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `sbi lint`: surfaces what the static-analysis subsystem proves about a
/// subject as human-readable findings —
///
///   dead-code          — never-called functions and statements no feasible
///                        path reaches
///   constant-branch    — branch conditions with only one feasible outcome
///   unreachable-return — return statements in dead code
///   use-before-init    — reads of a variable that may still hold its
///                        declaration's implicit default
///
/// The same facts drive predicate pruning (sa/Prune.h); lint is the
/// developer-facing rendering, with deterministic ordering so CI can pin
/// golden finding counts per subject.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SA_LINT_H
#define SBI_SA_LINT_H

#include "sa/Prune.h"

#include <cstddef>
#include <string>
#include <vector>

namespace sbi {

enum class LintKind {
  DeadCode,
  ConstantBranch,
  UnreachableReturn,
  UseBeforeInit,
};

const char *lintKindName(LintKind Kind);

struct LintFinding {
  LintKind Kind = LintKind::DeadCode;
  std::string Function;
  int Line = 0;
  std::string Message;
};

struct LintReport {
  /// Sorted by (line, kind, message); deterministic across runs.
  std::vector<LintFinding> Findings;

  size_t count(LintKind Kind) const;
  /// One-line summary: "N findings (a dead-code, b constant-branch, ...)".
  std::string summary() const;
};

/// Lints \p Prog using an existing model/table/prune triple (shared with
/// the campaign's pruning pass).
LintReport runLint(const StaticModel &Model, const SiteTable &Table,
                   const PruneResult &Prune);

/// Convenience: builds the model, a default site table, and the prune
/// classification, then lints.
LintReport runLint(const Program &Prog);

/// Human-readable rendering, one finding per line.
std::string renderLintHuman(const std::string &SubjectName,
                            const LintReport &Report);

/// Deterministic JSON rendering.
std::string renderLintJson(const std::string &SubjectName,
                           const LintReport &Report);

} // namespace sbi

#endif // SBI_SA_LINT_H
