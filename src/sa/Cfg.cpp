//===- sa/Cfg.cpp - Control-flow graph construction -----------------------===//

#include "sa/Cfg.h"

#include <algorithm>
#include <cassert>

namespace sbi {

int CfgBlock::line() const {
  if (!Items.empty())
    return Items.front()->Line;
  if (Kind == Term::Branch)
    return BranchLine;
  if (Kind == Term::Return && Ret)
    return Ret->Line;
  return 0;
}

/// Recursive AST -> CFG lowering. Blocks are created eagerly; edges whose
/// target is not yet known (break/continue, forward joins) are written once
/// the target block exists, which the structured lowering order guarantees
/// before any edge is read.
class CfgBuilder {
public:
  explicit CfgBuilder(Cfg &G) : G(G) {}

  void run(const FuncDecl &Func) {
    G.Func = &Func;
    int Entry = newBlock();
    (void)Entry;
    assert(Entry == 0 && "entry must be block 0");
    G.ExitBlock = newBlock();
    block(G.ExitBlock).Kind = CfgBlock::Term::Exit;
    Cur = 0;
    lowerStmt(*Func.Body);
    // Falling off the end of the function is an implicit unit return.
    setGoto(Cur, G.ExitBlock);
    computePreds();
    G.computeDerived();
  }

private:
  Cfg &G;
  int Cur = 0;
  std::vector<int> BreakTargets;
  std::vector<int> ContinueTargets;

  CfgBlock &block(int Id) { return G.Blocks[static_cast<size_t>(Id)]; }

  int newBlock() {
    G.Blocks.emplace_back();
    return static_cast<int>(G.Blocks.size()) - 1;
  }

  void setGoto(int From, int To) {
    CfgBlock &B = block(From);
    assert(B.Kind == CfgBlock::Term::Goto && B.Succ[0] < 0 &&
           "terminator already set");
    B.Succ[0] = To;
  }

  void setBranch(int From, const Expr *Cond, int NodeId, int Line,
                 int TrueTo, int FalseTo) {
    CfgBlock &B = block(From);
    assert(B.Kind == CfgBlock::Term::Goto && B.Succ[0] < 0 &&
           "terminator already set");
    B.Kind = CfgBlock::Term::Branch;
    B.Cond = Cond;
    B.BranchNodeId = NodeId;
    B.BranchLine = Line;
    B.Succ[0] = TrueTo;
    B.Succ[1] = FalseTo;
  }

  void lowerStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Expr:
    case StmtKind::Assign:
    case StmtKind::VarDecl:
      block(Cur).Items.push_back(&S);
      return;
    case StmtKind::Block:
      for (const auto &Child : static_cast<const BlockStmt &>(S).Body)
        lowerStmt(*Child);
      return;
    case StmtKind::If: {
      const auto &If = static_cast<const IfStmt &>(S);
      int ThenB = newBlock();
      int Join = newBlock();
      int ElseB = If.Else ? newBlock() : Join;
      setBranch(Cur, If.Cond.get(), If.Id, If.Line, ThenB, ElseB);
      Cur = ThenB;
      lowerStmt(*If.Then);
      setGoto(Cur, Join);
      if (If.Else) {
        Cur = ElseB;
        lowerStmt(*If.Else);
        setGoto(Cur, Join);
      }
      Cur = Join;
      return;
    }
    case StmtKind::While: {
      const auto &While = static_cast<const WhileStmt &>(S);
      int CondB = newBlock();
      int BodyB = newBlock();
      int ExitB = newBlock();
      setGoto(Cur, CondB);
      setBranch(CondB, While.Cond.get(), While.Id, While.Line, BodyB, ExitB);
      BreakTargets.push_back(ExitB);
      ContinueTargets.push_back(CondB);
      Cur = BodyB;
      lowerStmt(*While.Body);
      setGoto(Cur, CondB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = ExitB;
      return;
    }
    case StmtKind::For: {
      const auto &For = static_cast<const ForStmt &>(S);
      if (For.Init)
        lowerStmt(*For.Init);
      int CondB = newBlock();
      int BodyB = newBlock();
      int StepB = newBlock();
      int ExitB = newBlock();
      setGoto(Cur, CondB);
      // A missing condition is instrumented as the constant-true branch
      // "1"; Cond stays null here and the dataflow pass treats it as 1.
      setBranch(CondB, For.Cond.get(), For.Id, For.Line, BodyB, ExitB);
      BreakTargets.push_back(ExitB);
      ContinueTargets.push_back(StepB);
      Cur = BodyB;
      lowerStmt(*For.Body);
      setGoto(Cur, StepB);
      BreakTargets.pop_back();
      ContinueTargets.pop_back();
      Cur = StepB;
      if (For.Step)
        lowerStmt(*For.Step);
      setGoto(Cur, CondB);
      Cur = ExitB;
      return;
    }
    case StmtKind::Return: {
      CfgBlock &B = block(Cur);
      assert(B.Kind == CfgBlock::Term::Goto && B.Succ[0] < 0);
      B.Kind = CfgBlock::Term::Return;
      B.Ret = &static_cast<const ReturnStmt &>(S);
      B.Succ[0] = G.ExitBlock;
      Cur = newBlock(); // Anything that follows is unreachable.
      return;
    }
    case StmtKind::Break:
      assert(!BreakTargets.empty() && "break outside loop survived Sema");
      setGoto(Cur, BreakTargets.back());
      Cur = newBlock();
      return;
    case StmtKind::Continue:
      assert(!ContinueTargets.empty() &&
             "continue outside loop survived Sema");
      setGoto(Cur, ContinueTargets.back());
      Cur = newBlock();
      return;
    }
    assert(false && "unhandled statement kind");
  }

  void computePreds() {
    for (size_t B = 0; B < G.Blocks.size(); ++B) {
      const CfgBlock &Blk = G.Blocks[B];
      int NumSucc = Blk.Kind == CfgBlock::Term::Branch ? 2
                    : Blk.Kind == CfgBlock::Term::Exit ? 0
                                                       : 1;
      for (int I = 0; I < NumSucc; ++I) {
        int To = Blk.Succ[I];
        assert(To >= 0 && "unpatched edge");
        // A branch with identical arms contributes one predecessor entry.
        if (I == 1 && To == Blk.Succ[0])
          continue;
        G.Blocks[static_cast<size_t>(To)].Preds.push_back(
            static_cast<int>(B));
      }
    }
  }
};

Cfg Cfg::build(const FuncDecl &Func) {
  Cfg G;
  CfgBuilder Builder(G);
  Builder.run(Func);
  return G;
}

void Cfg::computeDerived() {
  size_t N = Blocks.size();
  Reachable.assign(N, 0);
  Rpo.clear();
  Idom.assign(N, -1);

  // Iterative DFS from the entry; postorder gives RPO when reversed.
  std::vector<int> PostOrder;
  PostOrder.reserve(N);
  std::vector<std::pair<int, int>> Stack; // (block, next successor index)
  Stack.emplace_back(entry(), 0);
  Reachable[static_cast<size_t>(entry())] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    const CfgBlock &Blk = Blocks[static_cast<size_t>(B)];
    int NumSucc = Blk.Kind == CfgBlock::Term::Branch ? 2
                  : Blk.Kind == CfgBlock::Term::Exit ? 0
                                                     : 1;
    if (NextSucc < NumSucc) {
      int To = Blk.Succ[NextSucc++];
      if (!Reachable[static_cast<size_t>(To)]) {
        Reachable[static_cast<size_t>(To)] = 1;
        Stack.emplace_back(To, 0);
      }
    } else {
      PostOrder.push_back(B);
      Stack.pop_back();
    }
  }
  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());

  // Cooper-Harvey-Kennedy iterative dominators over RPO numbers.
  std::vector<int> RpoNumber(N, -1);
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoNumber[static_cast<size_t>(Rpo[I])] = static_cast<int>(I);

  auto intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoNumber[static_cast<size_t>(A)] >
             RpoNumber[static_cast<size_t>(B)])
        A = Idom[static_cast<size_t>(A)];
      while (RpoNumber[static_cast<size_t>(B)] >
             RpoNumber[static_cast<size_t>(A)])
        B = Idom[static_cast<size_t>(B)];
    }
    return A;
  };

  Idom[static_cast<size_t>(entry())] = entry();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B : Rpo) {
      if (B == entry())
        continue;
      int NewIdom = -1;
      for (int P : Blocks[static_cast<size_t>(B)].Preds) {
        if (!Reachable[static_cast<size_t>(P)] ||
            Idom[static_cast<size_t>(P)] < 0)
          continue;
        NewIdom = NewIdom < 0 ? P : intersect(P, NewIdom);
      }
      if (NewIdom >= 0 && Idom[static_cast<size_t>(B)] != NewIdom) {
        Idom[static_cast<size_t>(B)] = NewIdom;
        Changed = true;
      }
    }
  }
  // Store the conventional "entry has no idom" form for the public API.
  Idom[static_cast<size_t>(entry())] = -1;
}

bool Cfg::dominates(int A, int B) const {
  if (!reachable(A) || !reachable(B))
    return false;
  int Walk = B;
  while (Walk >= 0) {
    if (Walk == A)
      return true;
    Walk = Idom[static_cast<size_t>(Walk)];
  }
  return false;
}

} // namespace sbi
