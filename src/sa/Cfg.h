//===- sa/Cfg.h - Control-flow graphs over the MicroC AST -----------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function control-flow graphs built directly over the MicroC AST, the
/// foundation of the static-analysis subsystem (src/sa). MicroC control flow
/// is fully structured (if/while/for/break/continue/return, no goto), so the
/// lowering is a single recursive walk: straight-line statements accumulate
/// into basic blocks, and every conditional becomes a two-way Branch
/// terminator carrying the AST node id of its branch instrumentation site.
///
/// On top of the raw graph the Cfg computes entry reachability, a reverse
/// postorder of the reachable subgraph, and immediate dominators
/// (Cooper-Harvey-Kennedy over RPO numbers) — the queries the predicate
/// pruning pass, `sbi lint`, and future static-prior ranking work share.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SA_CFG_H
#define SBI_SA_CFG_H

#include "lang/AST.h"

#include <cstdint>
#include <vector>

namespace sbi {

/// One basic block: zero or more straight-line statements (Expr, Assign,
/// VarDecl) followed by a terminator.
struct CfgBlock {
  enum class Term : uint8_t {
    Goto,   ///< Unconditional edge to Succ[0].
    Branch, ///< Conditional: Succ[0] when the condition is truthy, Succ[1]
            ///< otherwise. Cond may be null (a condition-less `for`, which
            ///< the runtime treats — and instruments — as constant true).
    Return, ///< Explicit return; edge to the exit block.
    Exit,   ///< The function's unique exit block.
  };

  std::vector<const Stmt *> Items;
  Term Kind = Term::Goto;
  int Succ[2] = {-1, -1};
  /// Branch terminators only.
  const Expr *Cond = nullptr;
  /// AST node id owning the branch instrumentation site (the If/While/For
  /// statement id, matching SiteTable::sitesForNode).
  int BranchNodeId = -1;
  int BranchLine = 0;
  /// Return terminators only.
  const ReturnStmt *Ret = nullptr;
  /// Predecessor block ids, filled after lowering.
  std::vector<int> Preds;

  /// A representative source line for diagnostics: the first item's line,
  /// else the terminator's.
  int line() const;
};

/// The control-flow graph of one function.
class Cfg {
public:
  /// Lowers \p Func (which must have passed Sema). The graph references
  /// \p Func's AST and must not outlive it.
  static Cfg build(const FuncDecl &Func);

  const FuncDecl &function() const { return *Func; }
  size_t numBlocks() const { return Blocks.size(); }
  const CfgBlock &block(int Id) const { return Blocks[static_cast<size_t>(Id)]; }
  int entry() const { return 0; }
  int exit() const { return ExitBlock; }

  /// True when \p Block is reachable from the entry along CFG edges
  /// (ignoring branch feasibility — that refinement is the dataflow pass's
  /// job).
  bool reachable(int Block) const {
    return Reachable[static_cast<size_t>(Block)] != 0;
  }

  /// Reverse postorder of the reachable subgraph; Rpo.front() == entry().
  const std::vector<int> &rpo() const { return Rpo; }

  /// Immediate dominator of \p Block (-1 for the entry and for unreachable
  /// blocks).
  int immediateDominator(int Block) const {
    return Idom[static_cast<size_t>(Block)];
  }

  /// True when \p A dominates \p B (every entry path to B passes through
  /// A). Reflexive; false when either block is unreachable.
  bool dominates(int A, int B) const;

private:
  friend class CfgBuilder;

  const FuncDecl *Func = nullptr;
  std::vector<CfgBlock> Blocks;
  int ExitBlock = -1;
  std::vector<uint8_t> Reachable;
  std::vector<int> Rpo;
  std::vector<int> Idom;

  void computeDerived();
};

} // namespace sbi

#endif // SBI_SA_CFG_H
