//===- sa/Prune.cpp - Conservative predicate-site pruning -----------------===//

#include "sa/Prune.h"

#include <algorithm>
#include <cassert>

namespace sbi {

const char *siteClassName(SiteClass C) {
  switch (C) {
  case SiteClass::Live:
    return "live";
  case SiteClass::Unreachable:
    return "unreachable";
  case SiteClass::ConstantOutcome:
    return "constant";
  }
  return "?";
}

uint32_t PruneResult::numLive() const {
  return static_cast<uint32_t>(
      std::count_if(Sites.begin(), Sites.end(), [](const SitePruneInfo &S) {
        return S.Class == SiteClass::Live;
      }));
}

uint32_t PruneResult::numUnreachable() const {
  return static_cast<uint32_t>(
      std::count_if(Sites.begin(), Sites.end(), [](const SitePruneInfo &S) {
        return S.Class == SiteClass::Unreachable;
      }));
}

uint32_t PruneResult::numConstant() const {
  return static_cast<uint32_t>(
      std::count_if(Sites.begin(), Sites.end(), [](const SitePruneInfo &S) {
        return S.Class == SiteClass::ConstantOutcome;
      }));
}

std::vector<uint8_t> PruneResult::siteEnabledMask() const {
  std::vector<uint8_t> Mask(Sites.size(), 0);
  for (size_t I = 0; I < Sites.size(); ++I)
    Mask[I] = Sites[I].Class == SiteClass::Live ? 1 : 0;
  return Mask;
}

std::vector<uint8_t>
PruneResult::observedNodeMask(int NumNodeIds, const SiteTable &Table) const {
  std::vector<uint8_t> Mask(static_cast<size_t>(NumNodeIds), 0);
  for (const SiteInfo &Site : Table.sites())
    if (Sites[Site.Id].Class == SiteClass::Live && Site.NodeId >= 0 &&
        static_cast<size_t>(Site.NodeId) < Mask.size())
      Mask[static_cast<size_t>(Site.NodeId)] = 1;
  return Mask;
}

namespace {

// Bit positions within a six-way (returns / scalar-pairs) site, matching
// the builder's predicate order Lt, Le, Gt, Ge, Eq, Ne.
constexpr uint8_t SixLt = 1u << 0;
constexpr uint8_t SixLe = 1u << 1;
constexpr uint8_t SixGt = 1u << 2;
constexpr uint8_t SixGe = 1u << 3;
constexpr uint8_t SixEq = 1u << 4;
constexpr uint8_t SixNe = 1u << 5;

// Branch sites: predicate order IsTrue, IsFalse.
constexpr uint8_t BranchTrue = 1u << 0;
constexpr uint8_t BranchFalse = 1u << 1;

/// Accumulated may-happen facts per site across the classification sweep.
struct SiteFacts {
  bool Observed = false;
  // Branch sites.
  bool CanTrue = false;
  bool CanFalse = false;
  // Six-way sites: which of <, =, > between value and comparand are
  // feasible on some observation.
  bool RelLt = false;
  bool RelEq = false;
  bool RelGt = false;
};

class PruneSink : public EvalSink {
public:
  PruneSink(const SiteTable &Table, const StaticModel &Model,
            std::vector<SiteFacts> &Facts)
      : Table(Table), Model(Model), Facts(Facts) {}

  void onBranch(int NodeId, const AbsVal &Cond) override {
    SiteTable::SiteRange Range = Table.sitesForNode(NodeId);
    for (uint32_t S = Range.First; S < Range.First + Range.Count; ++S) {
      const SiteInfo &Site = Table.site(S);
      if (Site.SchemeKind != Scheme::Branches)
        continue;
      SiteFacts &F = Facts[S];
      // The observation fires only when the truthiness test survives,
      // i.e. when the condition is an int.
      if (!Cond.HasInt)
        continue;
      F.Observed = true;
      F.CanTrue = F.CanTrue || Cond.hasNonzeroInt();
      F.CanFalse = F.CanFalse || Cond.hasZeroInt();
    }
  }

  void onCallReturn(const CallExpr &Call, const AbsVal &Result) override {
    SiteTable::SiteRange Range = Table.sitesForNode(Call.Id);
    for (uint32_t S = Range.First; S < Range.First + Range.Count; ++S) {
      const SiteInfo &Site = Table.site(S);
      if (Site.SchemeKind != Scheme::Returns)
        continue;
      // Returns-scheme observations fire only for int results; the
      // comparand is the constant 0.
      if (!Result.HasInt)
        continue;
      recordSixWay(Facts[S], Result, AbsVal::constant(0));
    }
  }

  void onScalarStore(const Stmt &S, const AbsVal &Stored,
                     const AbsEnv &After) override {
    SiteTable::SiteRange Range = Table.sitesForNode(S.Id);
    for (uint32_t Id = Range.First; Id < Range.First + Range.Count; ++Id) {
      const SiteInfo &Site = Table.site(Id);
      if (Site.SchemeKind != Scheme::ScalarPairs)
        continue;
      if (!Stored.HasInt)
        continue;
      AbsVal Cmp;
      if (Site.PairIsConstant) {
        Cmp = AbsVal::constant(Site.PairConstant);
      } else if (Site.PairVar.IsGlobal) {
        Cmp = Model.globalValue(Site.PairVar.Index);
      } else {
        Cmp = After.Locals[static_cast<size_t>(Site.PairVar.Index)];
      }
      // The collector skips the whole observation when the comparand is
      // not an int, so a never-int comparand means a never-observed site.
      if (!Cmp.HasInt)
        continue;
      recordSixWay(Facts[Id], Stored, Cmp);
    }
  }

private:
  static void recordSixWay(SiteFacts &F, const AbsVal &Val,
                           const AbsVal &Cmp) {
    F.Observed = true;
    F.RelLt = F.RelLt || Val.Lo < Cmp.Hi;
    F.RelGt = F.RelGt || Val.Hi > Cmp.Lo;
    F.RelEq = F.RelEq || (Val.Lo <= Cmp.Hi && Cmp.Lo <= Val.Hi);
  }

  const SiteTable &Table;
  const StaticModel &Model;
  std::vector<SiteFacts> &Facts;
};

SitePruneInfo classify(const SiteInfo &Site, const SiteFacts &F) {
  SitePruneInfo Info;
  if (!F.Observed) {
    Info.Class = SiteClass::Unreachable;
    return Info;
  }
  if (Site.SchemeKind == Scheme::Branches) {
    if (F.CanTrue && F.CanFalse)
      return Info; // Live.
    Info.Class = SiteClass::ConstantOutcome;
    Info.AlwaysTrueMask = F.CanTrue ? BranchTrue : BranchFalse;
    return Info;
  }
  // Six-way sites are constant only when exactly one relation is feasible;
  // then every one of the six predicates has a constant outcome.
  int NumRels = (F.RelLt ? 1 : 0) + (F.RelEq ? 1 : 0) + (F.RelGt ? 1 : 0);
  assert(NumRels >= 1 && "observed six-way site with no feasible relation");
  if (NumRels != 1)
    return Info; // Live.
  Info.Class = SiteClass::ConstantOutcome;
  if (F.RelLt)
    Info.AlwaysTrueMask = SixLt | SixLe | SixNe;
  else if (F.RelEq)
    Info.AlwaysTrueMask = SixLe | SixGe | SixEq;
  else
    Info.AlwaysTrueMask = SixGt | SixGe | SixNe;
  return Info;
}

} // namespace

PruneResult computePrune(const StaticModel &Model, const SiteTable &Table) {
  std::vector<SiteFacts> Facts(Table.numSites());
  PruneSink Sink(Table, Model, Facts);
  for (const auto &Func : Model.program().Functions) {
    if (!Model.functionReachable(Func.get()))
      continue;
    const Cfg &G = Model.cfg(Func.get());
    for (size_t B = 0; B < G.numBlocks(); ++B)
      Model.replayBlock(Func.get(), static_cast<int>(B), Sink);
  }

  PruneResult Result;
  Result.Sites.resize(Table.numSites());
  for (uint32_t S = 0; S < Table.numSites(); ++S)
    Result.Sites[S] = classify(Table.site(S), Facts[S]);
  return Result;
}

PruneResult computePrune(const Program &Prog, const SiteTable &Table) {
  StaticModel Model = StaticModel::build(Prog);
  return computePrune(Model, Table);
}

} // namespace sbi
