//===- sa/Dataflow.h - Interval/constant dataflow over MicroC CFGs --------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse-conditional constant-propagation and interval analysis over the
/// CFGs of sa/Cfg.h, the engine behind conservative predicate pruning
/// (sa/Prune.h) and `sbi lint` (sa/Lint.h).
///
/// The abstract value lattice tracks, per MicroC value, an optional signed
/// 64-bit interval (the value may be an int in [Lo, Hi]) plus a "may be a
/// non-int" bit covering str/arr/rec/null/unit. This split mirrors how the
/// runtime gates every observation: semTruthy traps on non-ints before
/// onBranch fires, and scalar stores/returns only reach the observer with
/// int values — so only the int portion of an abstract value ever needs to
/// be precise for a ConstantOutcome claim, and the non-int bit only feeds
/// reachability (a trapped evaluation observes nothing).
///
/// Everything here over-approximates the concrete collecting semantics:
/// arithmetic that can wrap widens to the full interval, unknown calls and
/// heap loads return top, globals assigned anywhere are top, and recursive
/// call cycles get top return summaries. The conservatism argument for
/// pruning (DESIGN.md) leans on exactly this direction: the analysis may
/// call a site Live that never fires, but never the reverse.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SA_DATAFLOW_H
#define SBI_SA_DATAFLOW_H

#include "sa/Cfg.h"

#include <cstdint>
#include <map>
#include <vector>

namespace sbi {

/// Abstract MicroC value: an optional int interval plus a may-be-non-int
/// bit. Bottom (= "no value reaches here") is both flags clear.
struct AbsVal {
  bool HasInt = false;
  /// Valid iff HasInt; saturating bounds — the full int64 range is the top
  /// interval, so no separate infinity encoding is needed.
  int64_t Lo = 0;
  int64_t Hi = 0;
  /// The value may be a str, arr, rec, null, or unit.
  bool HasOther = false;

  static AbsVal bottom() { return {}; }
  static AbsVal other() { return {false, 0, 0, true}; }
  static AbsVal constant(int64_t V) { return {true, V, V, false}; }
  static AbsVal range(int64_t Lo, int64_t Hi) { return {true, Lo, Hi, false}; }
  static AbsVal topInt() { return range(INT64_MIN, INT64_MAX); }
  /// Any value at all: full int range or any non-int.
  static AbsVal top() { return {true, INT64_MIN, INT64_MAX, true}; }

  bool isBottom() const { return !HasInt && !HasOther; }
  /// The int portion contains a nonzero value (the branch-true outcome is
  /// feasible).
  bool hasNonzeroInt() const { return HasInt && !(Lo == 0 && Hi == 0); }
  /// The int portion contains zero (the branch-false outcome is feasible).
  bool hasZeroInt() const { return HasInt && Lo <= 0 && 0 <= Hi; }
  bool isIntSingleton() const { return HasInt && Lo == Hi; }
  /// Drops the non-int portion (what survives a kind-enforcing int store or
  /// an int-gated observation).
  AbsVal intOnly() const { return {HasInt, Lo, Hi, false}; }

  bool operator==(const AbsVal &O) const {
    if (HasInt != O.HasInt || HasOther != O.HasOther)
      return false;
    return !HasInt || (Lo == O.Lo && Hi == O.Hi);
  }
  bool operator!=(const AbsVal &O) const { return !(*this == O); }

  static AbsVal join(const AbsVal &A, const AbsVal &B);
  /// Classic interval widening: any bound that grew jumps to its extreme.
  static AbsVal widen(const AbsVal &Old, const AbsVal &New);
  /// Intersects the int portion with [Lo, Hi]; the non-int bit is kept or
  /// dropped by the caller via KeepOther.
  AbsVal meetInterval(int64_t Lo, int64_t Hi, bool KeepOther) const;
};

/// Abstract frame state at a program point.
struct AbsEnv {
  /// False for the bottom environment (block never entered).
  bool Feasible = false;
  /// One entry per frame slot (params first), indexed like VarSlot::Index.
  std::vector<AbsVal> Locals;
  /// Per slot: the value may still be the declaration's implicit default
  /// (no explicit initializer or assignment has executed since the decl).
  /// Feeds the use-before-init lint.
  std::vector<uint8_t> MaybeDefault;

  /// Joins \p Other in; returns true when anything changed. When \p Widen
  /// is set, interval bounds that grew jump to their extremes.
  bool joinFrom(const AbsEnv &Other, bool Widen);
};

/// Callback interface for the classification sweep: the abstract
/// interpreter reports every instrumentation-relevant evaluation it can
/// prove feasible. Implementations must treat "never called for node N" as
/// "node N's observation never fires" — the interpreter only suppresses
/// callbacks on paths it has proven dead (trap or non-termination), which
/// is exactly the conservative direction.
class EvalSink {
public:
  virtual ~EvalSink() = default;
  /// A branch test (if/while/for or a short-circuit &&/||) evaluates its
  /// condition to \p Cond. Observation fires only for the int portion.
  virtual void onBranch(int NodeId, const AbsVal &Cond) { (void)NodeId, (void)Cond; }
  /// A call expression completes with abstract result \p Result.
  virtual void onCallReturn(const CallExpr &Call, const AbsVal &Result) {
    (void)Call, (void)Result;
  }
  /// An int-variable store (assignment or initialized int decl) stores
  /// \p Stored; \p After is the frame state after the store (what the
  /// scalar-pairs observer reads its comparands from).
  virtual void onScalarStore(const Stmt &S, const AbsVal &Stored,
                             const AbsEnv &After) {
    (void)S, (void)Stored, (void)After;
  }
  /// A local variable read; \p MaybeDefault is set when the value may still
  /// be the declaration's implicit default.
  virtual void onVarRead(const VarRefExpr &Ref, bool MaybeDefault) {
    (void)Ref, (void)MaybeDefault;
  }
};

/// Whole-program analysis results: one CFG + converged block-entry
/// environments per reachable function, flow-insensitive global values, and
/// interprocedural return summaries (computed callee-first over the SCC
/// condensation of the direct call graph; recursive cycles get top).
class StaticModel {
public:
  static StaticModel build(const Program &Prog);

  const Program &program() const { return *Prog; }

  /// True when \p F is transitively callable from main or from a global
  /// initializer. Unreachable functions are not analyzed; every site inside
  /// one is trivially never observed.
  bool functionReachable(const FuncDecl *F) const {
    return Funcs.count(F) != 0;
  }

  /// The CFG of a reachable function.
  const Cfg &cfg(const FuncDecl *F) const { return Funcs.at(F).G; }

  /// Converged entry environment of \p Block (Feasible == false when the
  /// dataflow proved the block dead even though CFG edges reach it).
  const AbsEnv &blockEntry(const FuncDecl *F, int Block) const {
    return Funcs.at(F).BlockEntry[static_cast<size_t>(Block)];
  }

  /// Abstract return value of a reachable function (bottom when the
  /// function provably never returns normally).
  AbsVal returnSummary(const FuncDecl *F) const;

  /// Flow-insensitive value of a global slot: a singleton for globals that
  /// are never assigned and have a constant-foldable (or absent)
  /// initializer, top-by-kind otherwise.
  AbsVal globalValue(int SlotIndex) const {
    return GlobalVals[static_cast<size_t>(SlotIndex)];
  }

  /// Re-runs the transfer function over one reachable block from its
  /// converged entry environment, reporting every feasible evaluation to
  /// \p Sink. This is how the pruning/lint sweeps consume the fixpoint.
  void replayBlock(const FuncDecl *F, int Block, EvalSink &Sink) const;

private:
  struct FuncAnalysis {
    Cfg G;
    std::vector<AbsEnv> BlockEntry;
    AbsVal Return = AbsVal::bottom();
  };

  friend class ModelBuilder;

  const Program *Prog = nullptr;
  std::vector<AbsVal> GlobalVals; // Indexed by global slot.
  std::map<const FuncDecl *, FuncAnalysis> Funcs;
};

} // namespace sbi

#endif // SBI_SA_DATAFLOW_H
