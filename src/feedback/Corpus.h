//===- feedback/Corpus.h - SBI-CORPUS v2 binary sharded feedback corpus ---===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper aggregates ~32,000 feedback reports per subject and the
/// project's north star is ingestion from millions of users; the
/// line-oriented SBI-REPORTS v1 text format (feedback/Report.h) does not
/// scale to that — it must be parsed in full into one in-memory ReportSet
/// before anything can run. SBI-CORPUS v2 is the binary, sharded,
/// streaming-friendly replacement:
///
///   A *corpus* is a directory of shard files named `shard-NNNNNN.sbic`,
///   read in lexicographic filename order. Each shard is self-describing
///   and independently decodable, so ingestion parallelizes one task per
///   shard and memory stays bounded by the largest shard, not the corpus.
///
///   Shard layout (all integers little-endian):
///
///     Header (32 bytes)
///       0   8  magic "SBICORP2"
///       8   4  format version (2)
///      12   4  flags (reserved, 0)
///      16   4  shard id
///      20   4  number of sites
///      24   4  number of predicates
///      28   4  number of records (patched by finalize())
///
///     Records (back to back)
///       u8      record flags: bit0 = run failed, bit1 = has stack signature
///       u8      trap kind
///       varint  zigzag(exit code)
///       varint  ground-truth bug mask
///       [varint length + bytes]   stack signature, if bit1
///       varint  site pair count, then delta-encoded pairs: the first site
///               id as a varint, every later id as the gap to its
///               predecessor (>= 1, ids are strictly ascending), each id
///               followed by its varint observation count (>= 1 — writers
///               drop zero-count entries, which the analysis already
///               treats as unobserved)
///       varint  predicate pair count + pairs, same encoding
///
///     Footer
///       u64 x records   absolute file offset of each record, so readers
///                       can seek to any record without decoding its
///                       predecessors
///       Trailer (24 bytes)
///         u64  footer start offset
///         u32  record count (must equal the header's)
///         u32  FNV-1a hash of the record region
///         8    magic "SBICFTR2"
///
/// Varints are LEB128 (7 bits per byte, low first), at most 10 bytes.
/// Readers reject, never crash on, malformed input: truncation anywhere,
/// bad magic/version, zero deltas or counts, out-of-range ids, offsets
/// that disagree with record boundaries, and hash or record-count
/// mismatches all fail with a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_FEEDBACK_CORPUS_H
#define SBI_FEEDBACK_CORPUS_H

#include "feedback/Report.h"
#include "feedback/RunProfiles.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace sbi {

/// The fixed-size shard header.
struct CorpusShardHeader {
  uint32_t ShardId = 0;
  uint32_t NumSites = 0;
  uint32_t NumPredicates = 0;
  uint32_t NumReports = 0;
};

inline constexpr char CorpusMagic[8] = {'S', 'B', 'I', 'C', 'O', 'R', 'P', '2'};
inline constexpr char CorpusFooterMagic[8] = {'S', 'B', 'I', 'C',
                                              'F', 'T', 'R', '2'};
inline constexpr uint32_t CorpusVersion = 2;
inline constexpr size_t CorpusHeaderSize = 32;
inline constexpr size_t CorpusTrailerSize = 24;

/// Writes one shard, streaming: open, append one report at a time (records
/// are flushed as they come, nothing is buffered beyond the current
/// record), finalize to emit the footer and patch the header's record
/// count. Normalizes on write: zero-count pairs are dropped; unsorted,
/// duplicate, or out-of-range ids are an error, not silently reordered.
class CorpusWriter {
public:
  CorpusWriter() = default;
  ~CorpusWriter();
  CorpusWriter(const CorpusWriter &) = delete;
  CorpusWriter &operator=(const CorpusWriter &) = delete;

  bool open(const std::string &Path, uint32_t ShardId, uint32_t NumSites,
            uint32_t NumPredicates, std::string &Error);
  bool append(const FeedbackReport &Report, std::string &Error);
  /// Emits footer + trailer and patches the header. The writer is closed
  /// afterwards regardless of the outcome.
  bool finalize(std::string &Error);

  bool isOpen() const { return Stream != nullptr; }
  uint32_t reportsWritten() const { return NumReports; }
  /// Bytes emitted so far (header + records; footer only after finalize).
  uint64_t bytesWritten() const { return Offset; }

private:
  std::FILE *Stream = nullptr;
  std::string Path;
  uint32_t ShardId = 0;
  uint32_t NumSites = 0;
  uint32_t NumPredicates = 0;
  uint32_t NumReports = 0;
  uint64_t Offset = 0;
  uint32_t BodyHash = 0;
  std::vector<uint64_t> RecordOffsets;
  std::string Scratch; // Current record's encoding buffer.
};

/// Reads and validates one shard. The shard is loaded into memory once
/// (memory is bounded by shard size, not corpus size) and records decode
/// lazily: sequentially via next()/nextInto(), or from any index after
/// seek() using the footer offsets.
class CorpusReader {
public:
  bool open(const std::string &Path, std::string &Error);

  const CorpusShardHeader &header() const { return Header; }
  uint64_t shardBytes() const { return Data.size(); }

  /// Decodes the next record into a full FeedbackReport. Returns false at
  /// the end of the shard (Error empty) or on malformed input (Error set).
  bool next(FeedbackReport &Out, std::string &Error);

  /// Decodes the next record straight into \p Out (one beginRun plus id
  /// appends — no FeedbackReport materialization); provenance other than
  /// the failure label and bug mask is skipped. Same return contract as
  /// next().
  bool nextInto(RunProfiles &Out, std::string &Error);

  /// Repositions the sequential cursor onto record \p Record.
  bool seek(uint32_t Record);

private:
  template <typename Sink>
  bool decodeRecord(Sink &&Out, std::string &Error);

  CorpusShardHeader Header;
  std::string Data;
  std::vector<uint64_t> Offsets; // One per record; footer-backed.
  uint64_t FooterStart = 0;
  uint32_t Cursor = 0; // Next record to decode.
};

/// Shard files of \p Dir (entries matching shard-*.sbic), sorted by
/// filename — the canonical record order of a corpus.
std::vector<std::string> listCorpusShards(const std::string &Dir);

/// Canonical shard filename for \p ShardId ("shard-000042.sbic").
std::string corpusShardName(uint32_t ShardId);

/// Writes \p Set as a v2 corpus of \p ReportsPerShard-record shards under
/// \p Dir (created if needed). The record order equals the set order.
bool writeCorpus(const ReportSet &Set, const std::string &Dir,
                 uint32_t ReportsPerShard, std::string &Error);

/// Materializes a full ReportSet from a corpus (the v2 -> v1 conversion
/// path; analysis should prefer ingestCorpus). All shards must agree on
/// the site/predicate dimensions.
bool readCorpus(const std::string &Dir, ReportSet &Out, std::string &Error);

/// Ingestion throughput accounting, also mirrored into telemetry when
/// enabled (phase "corpus_ingest", counters corpus.ingest.*).
struct CorpusIngestStats {
  uint64_t Shards = 0;
  uint64_t Reports = 0;
  uint64_t Bytes = 0;
  double Seconds = 0.0;
};

/// Streams every shard of \p Dir into a RunProfiles store without ever
/// materializing a ReportSet: shards decode in parallel (one ingestion
/// task per shard, \p Threads workers resolved via support/Parallel) into
/// per-shard profiles that are concatenated in filename order, so the
/// result — and every analysis over it — is bit-identical to the
/// in-memory path for any thread count.
bool ingestCorpus(const std::string &Dir, RunProfiles &Out, size_t Threads,
                  std::string &Error, CorpusIngestStats *Stats = nullptr);

} // namespace sbi

#endif // SBI_FEEDBACK_CORPUS_H
