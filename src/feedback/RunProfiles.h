//===- feedback/RunProfiles.h - Compact run-major observation store -------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis of Section 3 consumes only three facts per run: the failure
/// label, which sites were observed (sampled at least once), and which
/// predicates were observed true — counts beyond "at least once" and the
/// per-run provenance (trap kind, stack signature) never reach it. This
/// module stores exactly that in CSR (compressed sparse row) form: two flat
/// id arrays with per-run offsets, a failure bitvector, and the ground-truth
/// bug masks the table renderers want. Compared to a materialized ReportSet
/// it halves the bytes per posting (ids only, no counts) and drops the
/// per-report vector and string overhead, which is what lets `sbi analyze`
/// stream an SBI-CORPUS v2 directory shard by shard instead of rebuilding
/// FeedbackReports.
///
/// Every aggregation engine (core/Aggregator, core/InvertedIndex,
/// core/Analysis) runs off this structure; ReportSet-based entry points
/// convert via fromReports(), so the in-memory and streamed-corpus paths
/// execute the same code over the same integers and stay bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_FEEDBACK_RUNPROFILES_H
#define SBI_FEEDBACK_RUNPROFILES_H

#include "feedback/Report.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace sbi {

/// Sorted, duplicate-free ids for one run: [First, Last).
struct IdSpan {
  const uint32_t *First = nullptr;
  const uint32_t *Last = nullptr;

  const uint32_t *begin() const { return First; }
  const uint32_t *end() const { return Last; }
  size_t size() const { return static_cast<size_t>(Last - First); }
};

/// Run-major observation structure in CSR form. Append-only: build it with
/// beginRun/addSite/addPred (streaming decode) or fromReports (in-memory
/// conversion), then read spans per run.
class RunProfiles {
public:
  RunProfiles() = default;
  RunProfiles(uint32_t NumSites, uint32_t NumPredicates)
      : NumSitesVal(NumSites), NumPredicatesVal(NumPredicates) {}

  /// Converts a report set; entries with zero counts are dropped, matching
  /// what observedTrue/siteObserved and Aggregates::compute consider
  /// "observed".
  static RunProfiles fromReports(const ReportSet &Set);

  // --- Streaming construction --------------------------------------------
  /// Opens run slot size(); subsequent addSite/addPred calls append to it.
  void beginRun(bool Failed, uint64_t BugMask = 0);
  /// \p Site must be strictly greater than the current run's last site id.
  void addSite(uint32_t Site) { SiteIds.push_back(Site); }
  /// \p Pred must be strictly greater than the current run's last pred id.
  void addPred(uint32_t Pred) { PredIds.push_back(Pred); }
  /// Appends one report (zero-count entries dropped).
  void addReport(const FeedbackReport &Report);
  /// Concatenates \p Other's runs after this one's (shard concatenation in
  /// shard-id order). Dimensions must match.
  void append(RunProfiles &&Other);

  void reserveRuns(size_t Runs);

  // --- Read interface -----------------------------------------------------
  size_t size() const { return FailedBits.size(); }
  uint32_t numSites() const { return NumSitesVal; }
  uint32_t numPredicates() const { return NumPredicatesVal; }

  bool failed(size_t Run) const { return FailedBits[Run] != 0; }
  uint64_t bugMask(size_t Run) const { return BugMasks[Run]; }
  bool hasBug(size_t Run, int BugId) const {
    return (BugMasks[Run] & FeedbackReport::bugBit(BugId)) != 0;
  }

  IdSpan sites(size_t Run) const {
    return {SiteIds.data() + SiteOffsets[Run],
            SiteIds.data() + (Run + 1 < SiteOffsets.size()
                                  ? SiteOffsets[Run + 1]
                                  : SiteIds.size())};
  }
  IdSpan preds(size_t Run) const {
    return {PredIds.data() + PredOffsets[Run],
            PredIds.data() + (Run + 1 < PredOffsets.size()
                                  ? PredOffsets[Run + 1]
                                  : PredIds.size())};
  }

  /// R(P) = 1 for run \p Run? Binary search over the run's sorted pred ids.
  bool observedTrue(size_t Run, uint32_t Pred) const;

  size_t numFailing() const;
  /// Total posting entries (sites + preds) across all runs.
  size_t numPostings() const { return SiteIds.size() + PredIds.size(); }

private:
  uint32_t NumSitesVal = 0;
  uint32_t NumPredicatesVal = 0;
  /// Start of run I's slice in SiteIds/PredIds; size() entries (the end of
  /// the last run is the array size).
  std::vector<uint64_t> SiteOffsets;
  std::vector<uint64_t> PredOffsets;
  std::vector<uint32_t> SiteIds;
  std::vector<uint32_t> PredIds;
  std::vector<uint8_t> FailedBits;
  std::vector<uint64_t> BugMasks;
};

} // namespace sbi

#endif // SBI_FEEDBACK_RUNPROFILES_H
