//===- feedback/Report.h - Labeled feedback reports -----------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A feedback report R (Section 1) is one bit saying whether the run
/// succeeded or failed plus, for each predicate P, whether P was observed
/// and whether it was observed to be true. This module stores reports
/// sparsely, together with per-run provenance the experiments (but never
/// the analysis) may consult: trap kind, stack signature, and the
/// ground-truth set of bugs that actually occurred in the run.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_FEEDBACK_REPORT_H
#define SBI_FEEDBACK_REPORT_H

#include "instrument/Collector.h"
#include "runtime/Interp.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sbi {

/// One labeled run.
struct FeedbackReport {
  /// The outcome bit the analysis is allowed to see.
  bool Failed = false;

  /// Sparse observation counts (the analysis input).
  RawReport Counts;

  // --- Provenance, hidden from the analysis ---
  TrapKind Trap = TrapKind::None;
  int ExitCode = 0;
  /// "func@line>func@line>..." innermost first; empty when no crash.
  std::string StackSignature;
  /// Bit n set iff ground-truth bug id n (1-based, 1 <= n <= 63)
  /// occurred. Bit 0 is never set: it is not a valid bug id.
  uint64_t BugMask = 0;

  /// True iff predicate \p PredId was observed true at least once, i.e.
  /// R(P) = 1.
  bool observedTrue(uint32_t PredId) const;

  /// True iff the site \p SiteId was sampled at least once ("P observed").
  bool siteObserved(uint32_t SiteId) const;

  /// Mask bit for ground-truth bug id \p BugId. Bug ids are 1-based and at
  /// most 63; any id outside [1, 63] maps to no bit at all (0), so an
  /// out-of-contract id can neither alias a valid id's bit (the old
  /// `& 63` masking made id 64 collide with bit 0) nor register as
  /// present via hasBug().
  static uint64_t bugBit(int BugId) {
    if (BugId < 1 || BugId > 63)
      return 0;
    return 1ull << BugId;
  }
  bool hasBug(int BugId) const { return (BugMask & bugBit(BugId)) != 0; }
};

/// A set of feedback reports over one program's predicate space.
class ReportSet {
public:
  ReportSet() = default;
  ReportSet(uint32_t NumSites, uint32_t NumPredicates)
      : NumSites(NumSites), NumPredicates(NumPredicates) {}

  void add(FeedbackReport Report) { Reports.push_back(std::move(Report)); }

  size_t size() const { return Reports.size(); }
  const FeedbackReport &operator[](size_t I) const { return Reports[I]; }
  const std::vector<FeedbackReport> &reports() const { return Reports; }

  uint32_t numSites() const { return NumSites; }
  uint32_t numPredicates() const { return NumPredicates; }

  size_t numFailing() const;
  size_t numSuccessful() const { return size() - numFailing(); }

  /// Serializes to the "SBI-REPORTS v1" line format.
  std::string serialize() const;

  /// Parses a serialized set; returns false (leaving *this untouched) on
  /// malformed input.
  static bool deserialize(const std::string &Text, ReportSet &Out);

private:
  uint32_t NumSites = 0;
  uint32_t NumPredicates = 0;
  std::vector<FeedbackReport> Reports;
};

} // namespace sbi

#endif // SBI_FEEDBACK_REPORT_H
