//===- feedback/RunProfiles.cpp - Compact run-major observation store -----===//

#include "feedback/RunProfiles.h"

#include <algorithm>

using namespace sbi;

RunProfiles RunProfiles::fromReports(const ReportSet &Set) {
  RunProfiles Out(Set.numSites(), Set.numPredicates());
  Out.reserveRuns(Set.size());
  for (const FeedbackReport &Report : Set.reports())
    Out.addReport(Report);
  return Out;
}

void RunProfiles::beginRun(bool Failed, uint64_t BugMask) {
  SiteOffsets.push_back(SiteIds.size());
  PredOffsets.push_back(PredIds.size());
  FailedBits.push_back(Failed ? 1 : 0);
  BugMasks.push_back(BugMask);
}

void RunProfiles::addReport(const FeedbackReport &Report) {
  beginRun(Report.Failed, Report.BugMask);
  for (const auto &[Site, Count] : Report.Counts.SiteObservations)
    if (Count > 0)
      addSite(Site);
  for (const auto &[Pred, Count] : Report.Counts.TruePredicates)
    if (Count > 0)
      addPred(Pred);
}

void RunProfiles::append(RunProfiles &&Other) {
  const uint64_t SiteBase = SiteIds.size();
  const uint64_t PredBase = PredIds.size();
  for (uint64_t Offset : Other.SiteOffsets)
    SiteOffsets.push_back(SiteBase + Offset);
  for (uint64_t Offset : Other.PredOffsets)
    PredOffsets.push_back(PredBase + Offset);
  SiteIds.insert(SiteIds.end(), Other.SiteIds.begin(), Other.SiteIds.end());
  PredIds.insert(PredIds.end(), Other.PredIds.begin(), Other.PredIds.end());
  FailedBits.insert(FailedBits.end(), Other.FailedBits.begin(),
                    Other.FailedBits.end());
  BugMasks.insert(BugMasks.end(), Other.BugMasks.begin(),
                  Other.BugMasks.end());
}

void RunProfiles::reserveRuns(size_t Runs) {
  SiteOffsets.reserve(Runs);
  PredOffsets.reserve(Runs);
  FailedBits.reserve(Runs);
  BugMasks.reserve(Runs);
}

bool RunProfiles::observedTrue(size_t Run, uint32_t Pred) const {
  IdSpan Span = preds(Run);
  return std::binary_search(Span.begin(), Span.end(), Pred);
}

size_t RunProfiles::numFailing() const {
  size_t N = 0;
  for (uint8_t F : FailedBits)
    N += F;
  return N;
}
