//===- feedback/Report.cpp - Labeled feedback reports ---------------------===//

#include "feedback/Report.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <sstream>

using namespace sbi;

bool FeedbackReport::observedTrue(uint32_t PredId) const {
  const auto &V = Counts.TruePredicates;
  auto It = std::lower_bound(
      V.begin(), V.end(), PredId,
      [](const std::pair<uint32_t, uint32_t> &Entry, uint32_t Id) {
        return Entry.first < Id;
      });
  return It != V.end() && It->first == PredId && It->second > 0;
}

bool FeedbackReport::siteObserved(uint32_t SiteId) const {
  const auto &V = Counts.SiteObservations;
  auto It = std::lower_bound(
      V.begin(), V.end(), SiteId,
      [](const std::pair<uint32_t, uint32_t> &Entry, uint32_t Id) {
        return Entry.first < Id;
      });
  return It != V.end() && It->first == SiteId && It->second > 0;
}

size_t ReportSet::numFailing() const {
  size_t N = 0;
  for (const FeedbackReport &R : Reports)
    N += R.Failed ? 1 : 0;
  return N;
}

std::string ReportSet::serialize() const {
  std::string Out;
  Out += "SBI-REPORTS v1\n";
  Out += format("%u %u %zu\n", NumSites, NumPredicates, Reports.size());
  for (const FeedbackReport &R : Reports) {
    Out += format("R %d %d %d %llu %s\n", R.Failed ? 1 : 0,
                  static_cast<int>(R.Trap), R.ExitCode,
                  static_cast<unsigned long long>(R.BugMask),
                  R.StackSignature.empty() ? "-" : R.StackSignature.c_str());
    Out += format("S %zu", R.Counts.SiteObservations.size());
    for (const auto &[Site, Count] : R.Counts.SiteObservations)
      Out += format(" %u:%u", Site, Count);
    Out += '\n';
    Out += format("P %zu", R.Counts.TruePredicates.size());
    for (const auto &[Pred, Count] : R.Counts.TruePredicates)
      Out += format(" %u:%u", Pred, Count);
    Out += '\n';
  }
  return Out;
}

bool ReportSet::deserialize(const std::string &Text, ReportSet &Out) {
  std::istringstream In(Text);
  std::string Header;
  if (!std::getline(In, Header) || Header != "SBI-REPORTS v1")
    return false;

  ReportSet Result;
  size_t NumReports = 0;
  if (!(In >> Result.NumSites >> Result.NumPredicates >> NumReports))
    return false;

  auto readPairs = [&](char Tag,
                       std::vector<std::pair<uint32_t, uint32_t>> &V) {
    std::string Mark;
    size_t N = 0;
    if (!(In >> Mark >> N) || Mark.size() != 1 || Mark[0] != Tag)
      return false;
    V.reserve(N);
    for (size_t I = 0; I < N; ++I) {
      std::string Entry;
      if (!(In >> Entry))
        return false;
      size_t Colon = Entry.find(':');
      if (Colon == std::string::npos)
        return false;
      V.emplace_back(
          static_cast<uint32_t>(std::stoul(Entry.substr(0, Colon))),
          static_cast<uint32_t>(std::stoul(Entry.substr(Colon + 1))));
    }
    return true;
  };

  for (size_t I = 0; I < NumReports; ++I) {
    FeedbackReport R;
    std::string Mark;
    int FailedInt = 0;
    int TrapInt = 0;
    unsigned long long Mask = 0;
    std::string Sig;
    if (!(In >> Mark >> FailedInt >> TrapInt >> R.ExitCode >> Mask >> Sig) ||
        Mark != "R")
      return false;
    R.Failed = FailedInt != 0;
    R.Trap = static_cast<TrapKind>(TrapInt);
    R.BugMask = Mask;
    R.StackSignature = Sig == "-" ? std::string() : Sig;
    if (!readPairs('S', R.Counts.SiteObservations) ||
        !readPairs('P', R.Counts.TruePredicates))
      return false;
    Result.Reports.push_back(std::move(R));
  }
  Out = std::move(Result);
  return true;
}
