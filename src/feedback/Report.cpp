//===- feedback/Report.cpp - Labeled feedback reports ---------------------===//

#include "feedback/Report.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <string_view>

using namespace sbi;

bool FeedbackReport::observedTrue(uint32_t PredId) const {
  const auto &V = Counts.TruePredicates;
  auto It = std::lower_bound(
      V.begin(), V.end(), PredId,
      [](const std::pair<uint32_t, uint32_t> &Entry, uint32_t Id) {
        return Entry.first < Id;
      });
  return It != V.end() && It->first == PredId && It->second > 0;
}

bool FeedbackReport::siteObserved(uint32_t SiteId) const {
  const auto &V = Counts.SiteObservations;
  auto It = std::lower_bound(
      V.begin(), V.end(), SiteId,
      [](const std::pair<uint32_t, uint32_t> &Entry, uint32_t Id) {
        return Entry.first < Id;
      });
  return It != V.end() && It->first == SiteId && It->second > 0;
}

size_t ReportSet::numFailing() const {
  size_t N = 0;
  for (const FeedbackReport &R : Reports)
    N += R.Failed ? 1 : 0;
  return N;
}

/// Normalized copy of a sparse pair list for serialization: zero-count
/// entries are dropped (observedTrue/siteObserved already treat them as
/// unobserved, so writing them only bloats the file and would round-trip a
/// set into one that compares unequal), and the result is sorted by id —
/// deserialize rejects unsorted input, so a hand-assembled set with
/// out-of-order entries must not produce an unreadable file.
static std::vector<std::pair<uint32_t, uint32_t>>
normalizedPairs(const std::vector<std::pair<uint32_t, uint32_t>> &Pairs) {
  std::vector<std::pair<uint32_t, uint32_t>> Out;
  Out.reserve(Pairs.size());
  for (const auto &Pair : Pairs)
    if (Pair.second > 0)
      Out.push_back(Pair);
  if (!std::is_sorted(Out.begin(), Out.end()))
    std::sort(Out.begin(), Out.end());
  return Out;
}

std::string ReportSet::serialize() const {
  std::string Out;
  Out += "SBI-REPORTS v1\n";
  Out += format("%u %u %zu\n", NumSites, NumPredicates, Reports.size());
  for (const FeedbackReport &R : Reports) {
    Out += format("R %d %d %d %llu %s\n", R.Failed ? 1 : 0,
                  static_cast<int>(R.Trap), R.ExitCode,
                  static_cast<unsigned long long>(R.BugMask),
                  R.StackSignature.empty() ? "-" : R.StackSignature.c_str());
    std::vector<std::pair<uint32_t, uint32_t>> Sites =
        normalizedPairs(R.Counts.SiteObservations);
    Out += format("S %zu", Sites.size());
    for (const auto &[Site, Count] : Sites)
      Out += format(" %u:%u", Site, Count);
    Out += '\n';
    std::vector<std::pair<uint32_t, uint32_t>> Preds =
        normalizedPairs(R.Counts.TruePredicates);
    Out += format("P %zu", Preds.size());
    for (const auto &[Pred, Count] : Preds)
      Out += format(" %u:%u", Pred, Count);
    Out += '\n';
  }
  return Out;
}

bool ReportSet::deserialize(const std::string &Text, ReportSet &Out) {
  std::istringstream In(Text);
  std::string Header;
  if (!std::getline(In, Header) || Header != "SBI-REPORTS v1")
    return false;

  ReportSet Result;
  size_t NumReports = 0;
  if (!(In >> Result.NumSites >> Result.NumPredicates >> NumReports))
    return false;

  // Exception-free bounded parse of "<id>:<count>"; std::stoul would throw
  // (and previously crashed the caller) on oversized or non-numeric input.
  auto parseU32 = [](std::string_view Text, uint32_t &Out) {
    auto [Ptr, Ec] =
        std::from_chars(Text.data(), Text.data() + Text.size(), Out);
    return Ec == std::errc() && Ptr == Text.data() + Text.size();
  };

  // Entries must be strictly increasing ids below MaxId: the in-memory
  // representation relies on sorted, duplicate-free sparse lists (the
  // observedTrue/siteObserved binary searches), and aggregation indexes
  // dense count arrays with these ids.
  auto readPairs = [&](char Tag, uint32_t MaxId,
                       std::vector<std::pair<uint32_t, uint32_t>> &V) {
    std::string Mark;
    size_t N = 0;
    if (!(In >> Mark >> N) || Mark.size() != 1 || Mark[0] != Tag)
      return false;
    if (N > MaxId) // More entries than distinct ids exist.
      return false;
    V.reserve(N);
    for (size_t I = 0; I < N; ++I) {
      std::string Entry;
      if (!(In >> Entry))
        return false;
      size_t Colon = Entry.find(':');
      if (Colon == std::string::npos || Colon == 0 ||
          Colon + 1 >= Entry.size())
        return false;
      uint32_t Id = 0, Count = 0;
      if (!parseU32(std::string_view(Entry).substr(0, Colon), Id) ||
          !parseU32(std::string_view(Entry).substr(Colon + 1), Count))
        return false;
      if (Id >= MaxId)
        return false;
      if (!V.empty() && Id <= V.back().first)
        return false;
      V.emplace_back(Id, Count);
    }
    return true;
  };

  for (size_t I = 0; I < NumReports; ++I) {
    FeedbackReport R;
    std::string Mark;
    int FailedInt = 0;
    int TrapInt = 0;
    unsigned long long Mask = 0;
    std::string Sig;
    if (!(In >> Mark >> FailedInt >> TrapInt >> R.ExitCode >> Mask >> Sig) ||
        Mark != "R")
      return false;
    R.Failed = FailedInt != 0;
    R.Trap = static_cast<TrapKind>(TrapInt);
    R.BugMask = Mask;
    R.StackSignature = Sig == "-" ? std::string() : Sig;
    if (!readPairs('S', Result.NumSites, R.Counts.SiteObservations) ||
        !readPairs('P', Result.NumPredicates, R.Counts.TruePredicates))
      return false;
    Result.Reports.push_back(std::move(R));
  }
  Out = std::move(Result);
  return true;
}
